package authmem

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func TestFacadePersistResume(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m := newMem(t, cfg)
	data := make([]byte, BlockSize)
	rand.New(rand.NewSource(3)).Read(data)
	if err := m.Write(0x400, data); err != nil {
		t.Fatal(err)
	}

	var img bytes.Buffer
	digest, err := m.Persist(&img)
	if err != nil {
		t.Fatal(err)
	}

	// "Power cycle": a fresh Memory from the image, same key.
	m2, err := Resume(cfg, bytes.NewReader(img.Bytes()), &digest)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if _, err := m2.Read(0x400, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost across persist/resume")
	}
}

func TestFacadeResumeRollbackPinned(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m := newMem(t, cfg)
	if err := m.Write(0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	var old bytes.Buffer
	if _, err := m.Persist(&old); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, bytes.Repeat([]byte{9}, BlockSize)); err != nil {
		t.Fatal(err)
	}
	var cur bytes.Buffer
	digest, err := m.Persist(&cur)
	if err != nil {
		t.Fatal(err)
	}
	var ie *IntegrityError
	if _, err := Resume(cfg, bytes.NewReader(old.Bytes()), &digest); !errors.As(err, &ie) {
		t.Fatalf("pinned rollback not detected: %v", err)
	}
}

func TestFacadeResumeBadConfig(t *testing.T) {
	if _, err := Resume(Config{}, bytes.NewReader(nil), nil); err == nil {
		t.Fatal("invalid config should fail")
	}
}
