package main

import "runtime"

// benchEnv is the measurement environment stamped into every BENCH_*.json
// report. Committed baselines travel between machines and containers, so
// each report records what it ran on: the toolchain, the scheduler width,
// and — critically for any scaling claim — how many CPUs actually existed.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

func captureEnv() benchEnv {
	return benchEnv{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}
