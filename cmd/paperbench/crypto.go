package main

// -crypto: tracked crypto-backend comparison. Every registered backend
// (internal/crypto: ttable, stdlib, batch8) runs the same four shapes:
//
//   - kernel.pad4k:     one 4KB counter group's keystream via PadBatch
//   - kernel.tagbatch4k: one group's 64 MAC tags via TagBatch
//   - seal.group:       WriteBlocks of one 4KB group through a Memory
//                       (encrypt + MAC + ECC lane + deferred tree), the
//                       write-pipeline flush shape
//   - reencrypt.sweep:  128 rewrites of one block under the split-counter
//                       scheme — the minor counter overflows once per op,
//                       so each op contains exactly one 64-block group
//                       re-encryption sweep (verify + decrypt + re-pad +
//                       reseal of the whole group)
//
// The T-table backend is measured first and becomes the baseline columns,
// so the speedup column reads "vs ttable" — same machine, same run, same
// shapes. The JSON matches the BENCH_hotpath.json format.

import (
	"fmt"
	"math/rand"
	"testing"

	"authmem"
	"authmem/internal/crypto"
	"authmem/internal/stats"
)

func runCrypto(outPath string, quick bool) {
	fmt.Println("=== Crypto backends: batch kernels and group seal/re-encrypt cost ===")
	regionBytes := uint64(64 << 20)
	if quick {
		regionBytes = 8 << 20
	}
	key := benchKeyMaterial()
	const groupBlocks = 64
	groupBytes := groupBlocks * authmem.BlockSize

	rep := hotReport{
		Note: "One entry per shape per crypto backend; baseline columns are the " +
			"ttable (from-scratch T-table AES) backend measured live in the same " +
			"run, so speedup_x reads 'vs ttable'. kernel.* are raw Stream/MAC " +
			"batch kernels over one 4KB counter group; seal.group is a full " +
			"WriteBlocks group seal; reencrypt.sweep is 128 rewrites containing " +
			"exactly one 64-block overflow re-encryption sweep.",
		benchEnv: captureEnv(),
	}

	// ttable first: its numbers are every other backend's baseline.
	names := []string{"ttable"}
	for _, n := range crypto.Names() {
		if n != "ttable" {
			names = append(names, n)
		}
	}
	ttableNs := map[string]float64{}

	measure := func(op func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			op(b)
		})
	}
	add := func(shape, backend string, r testing.BenchmarkResult) {
		name := shape + "/" + backend
		e := hotEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if backend == "ttable" {
			ttableNs[shape] = e.NsPerOp
		} else if base := ttableNs[shape]; base > 0 && e.NsPerOp > 0 {
			e.BaselineNs = base
			e.Speedup = base / e.NsPerOp
		}
		rep.Entries = append(rep.Entries, e)
		if e.Speedup > 0 {
			fmt.Printf("  %-26s %10.1f ns/op  %2d allocs/op  (%5.2fx vs ttable)\n",
				name, e.NsPerOp, e.AllocsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-26s %10.1f ns/op  %2d allocs/op\n",
				name, e.NsPerOp, e.AllocsPerOp)
		}
	}

	group := make([]byte, groupBytes)
	rand.New(rand.NewSource(7)).Read(group)
	padBuf := make([]byte, groupBytes)
	tags := make([]uint64, groupBlocks)

	for _, backend := range names {
		be, err := crypto.Lookup(backend)
		if err != nil {
			fatal(err)
		}

		// Raw kernels: no pad cache, so the AES work itself is measured
		// (a re-encryption sweep's new-counter pads are always cold).
		ks, err := be.NewStream(key[24:40])
		if err != nil {
			fatal(err)
		}
		mk, err := be.NewMAC(key[:24])
		if err != nil {
			fatal(err)
		}
		add("kernel.pad4k", backend, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := ks.PadBatch(padBuf, 0, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("kernel.tagbatch4k", backend, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := mk.TagBatch(tags, group, 0, uint64(i)+1); err != nil {
					b.Fatal(err)
				}
			}
		}))

		// Full-engine shapes through the public API.
		newMem := func(scheme authmem.CounterScheme) *authmem.Memory {
			cfg := authmem.DefaultConfig(regionBytes)
			cfg.Scheme = scheme
			cfg.Key = key
			cfg.CryptoBackend = backend
			m, err := authmem.New(cfg)
			if err != nil {
				fatal(err)
			}
			if err := m.EnableWritePipeline(0); err != nil {
				fatal(err)
			}
			return m
		}

		sealMem := newMem(authmem.DeltaEncoding)
		add("seal.group", backend, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) * uint64(groupBytes)) % regionBytes
				if err := sealMem.WriteBlocks(addr, group); err != nil {
					b.Fatal(err)
				}
			}
		}))

		sweepMem := newMem(authmem.SplitCounter)
		block := group[:authmem.BlockSize]
		add("reencrypt.sweep", backend, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// 128 rewrites overflow the 7-bit minor counter exactly
				// once: one full 64-block group re-encryption per op.
				for w := 0; w < 128; w++ {
					if err := sweepMem.Write(0, block); err != nil {
						b.Fatal(err)
					}
				}
			}
		}))
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
