package main

// -parallel: tracked multi-goroutine throughput benchmark for the sharded
// engine, writing BENCH_parallel.json.
//
// Workload: G goroutines issue random single-block reads over a fixed hot
// set — four 2MB stripes spread across a 32MB region — against (a) the
// single-lock SyncMemory baseline and (b) ShardedMemory at 1/2/4/8 shards.
// The hot set and the read sequence are identical for every configuration;
// only the engine architecture changes.
//
// Why throughput scales with shard count even on one CPU: each shard owns
// private on-chip state — a 512-entry verified-counter cache (Table 1's
// 32KB metadata cache budget) and a 2MB verified-block cache (its slice of
// the cache hierarchy above the encryption engine) — so the aggregate
// trusted capacity grows linearly with the partition count. At 4 shards
// each hot stripe fits its shard's caches exactly: nearly every read is
// served as already-verified plaintext and bypasses the Merkle walk, the
// MAC, and the AES pad that dominate the single-lock baseline's read path.
// At 1-2 shards the four stripes alias in the smaller aggregate cache and
// only 25-50% of reads hit, which is the expected intermediate curve. On
// multi-core hardware the per-shard locks add true lock-level parallelism
// on top of this cache scaling; GOMAXPROCS is recorded in the report so the
// committed numbers are interpretable.

import (
	"fmt"
	"math/rand"
	"time"

	"authmem"
	"authmem/internal/stats"
)

const (
	parRegionBytes = 32 << 20 // protected region
	parStripeBytes = 2 << 20  // one hot stripe (= one shard cache's coverage)
	parStripes     = 4        // stripes at 0, 8, 16, 24 MB
	parStripeGap   = 8 << 20
	parGoroutines  = 4
	parReadsPerG   = 150_000
)

// parDevice is the read surface both architectures expose.
type parDevice interface {
	Write(addr uint64, block []byte) error
	Read(addr uint64, dst []byte) (authmem.ReadInfo, error)
}

// parEntry is one configuration's measured throughput.
type parEntry struct {
	Config      string  `json:"config"`
	Shards      int     `json:"shards,omitempty"`
	Goroutines  int     `json:"goroutines"`
	Reads       uint64  `json:"reads"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	ReadsPerSec float64 `json:"reads_per_sec"`
	NsPerRead   float64 `json:"ns_per_read"`
	SpeedupX    float64 `json:"speedup_vs_single_lock,omitempty"`
	CacheHits   uint64  `json:"meta_cache_hits,omitempty"`
	CacheMisses uint64  `json:"meta_cache_misses,omitempty"`
	DataHits    uint64  `json:"data_cache_hits,omitempty"`
	DataMisses  uint64  `json:"data_cache_misses,omitempty"`
}

type parReport struct {
	Note string `json:"note"`
	benchEnv
	RegionBytes uint64     `json:"region_bytes"`
	HotBytes    uint64     `json:"hot_bytes"`
	Entries     []parEntry `json:"entries"`
}

// parHotAddrs returns the hot-set block addresses: four 2MB stripes.
func parHotAddrs() []uint64 {
	var addrs []uint64
	for s := 0; s < parStripes; s++ {
		base := uint64(s) * parStripeGap
		for off := uint64(0); off < parStripeBytes; off += authmem.BlockSize {
			addrs = append(addrs, base+off)
		}
	}
	return addrs
}

// parPrefill writes every hot block (resident + warm caches on first read).
func parPrefill(dev parDevice, addrs []uint64) error {
	blk := make([]byte, authmem.BlockSize)
	for _, a := range addrs {
		for i := range blk {
			blk[i] = byte(a >> 6)
		}
		if err := dev.Write(a, blk); err != nil {
			return err
		}
	}
	// One warm-up pass so counter caches (where present) are populated
	// before the clock starts — steady-state throughput is the claim.
	dst := make([]byte, authmem.BlockSize)
	for _, a := range addrs {
		if _, err := dev.Read(a, dst); err != nil {
			return err
		}
	}
	return nil
}

// parMeasure runs the fixed read workload and returns reads and wall time.
func parMeasure(dev parDevice, addrs []uint64) (uint64, time.Duration, error) {
	errs := make(chan error, parGoroutines)
	start := time.Now()
	for g := 0; g < parGoroutines; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(g) + 1))
			dst := make([]byte, authmem.BlockSize)
			n := len(addrs)
			for i := 0; i < parReadsPerG; i++ {
				if _, err := dev.Read(addrs[rng.Intn(n)], dst); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < parGoroutines; g++ {
		if err := <-errs; err != nil {
			return 0, 0, err
		}
	}
	return uint64(parGoroutines) * parReadsPerG, time.Since(start), nil
}

func runParallel(outPath string) {
	fmt.Println("=== Parallel: sharded-engine read throughput vs the single-lock baseline ===")
	fmt.Printf("    %d goroutines, %d random single-block reads each, hot set %d MB of %d MB\n",
		parGoroutines, parReadsPerG, parStripes*parStripeBytes>>20, parRegionBytes>>20)

	cfg := authmem.DefaultConfig(parRegionBytes)
	cfg.Key = benchKeyMaterial()
	addrs := parHotAddrs()

	rep := parReport{
		Note: "Identical hot set and read sequence per configuration; only the engine " +
			"architecture varies. Sharded throughput scaling on a single CPU comes from " +
			"private per-shard on-chip state: a verified-counter cache (32KB Table 1 " +
			"budget) plus a 2MB verified-block cache per shard, so the aggregate trusted " +
			"capacity grows with the partition count and at 4 shards the hot set is served " +
			"as already-verified plaintext. On multi-core hardware the per-shard locks add " +
			"lock-level parallelism on top. gomaxprocs records the measurement environment.",
		benchEnv:    captureEnv(),
		RegionBytes: parRegionBytes,
		HotBytes:    parStripes * parStripeBytes,
	}

	measure := func(name string, shards int, dev parDevice, st func() authmem.EngineStats) {
		if err := parPrefill(dev, addrs); err != nil {
			fatal(fmt.Errorf("parallel %s prefill: %w", name, err))
		}
		warm := st()
		reads, elapsed, err := parMeasure(dev, addrs)
		if err != nil {
			fatal(fmt.Errorf("parallel %s: %w", name, err))
		}
		after := st()
		e := parEntry{
			Config:      name,
			Shards:      shards,
			Goroutines:  parGoroutines,
			Reads:       reads,
			ElapsedNs:   elapsed.Nanoseconds(),
			ReadsPerSec: float64(reads) / elapsed.Seconds(),
			NsPerRead:   float64(elapsed.Nanoseconds()) / float64(reads),
			CacheHits:   after.MetaCacheHits - warm.MetaCacheHits,
			CacheMisses: after.MetaCacheMisses - warm.MetaCacheMisses,
			DataHits:    after.DataCacheHits - warm.DataCacheHits,
			DataMisses:  after.DataCacheMisses - warm.DataCacheMisses,
		}
		if len(rep.Entries) > 0 {
			e.SpeedupX = e.ReadsPerSec / rep.Entries[0].ReadsPerSec
		}
		rep.Entries = append(rep.Entries, e)
		if e.SpeedupX > 0 {
			fmt.Printf("  %-22s %12.0f reads/s  %7.1f ns/read  (%.2fx vs single lock)\n",
				name, e.ReadsPerSec, e.NsPerRead, e.SpeedupX)
		} else {
			fmt.Printf("  %-22s %12.0f reads/s  %7.1f ns/read\n", name, e.ReadsPerSec, e.NsPerRead)
		}
	}

	sm, err := authmem.NewSync(cfg)
	if err != nil {
		fatal(err)
	}
	measure("single-lock", 0, sm, sm.Stats)

	for _, shards := range []int{1, 2, 4, 8} {
		shm, err := authmem.NewSharded(cfg, shards)
		if err != nil {
			fatal(err)
		}
		measure(fmt.Sprintf("sharded-%d", shards), shards, shm, shm.Stats)
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
