// Command paperbench regenerates every table and figure in the paper's
// evaluation section:
//
//	-fig1    storage overhead breakdown (Figure 1)
//	-fig3    fault-pattern error-handling matrix (Figure 3)
//	-fig8    normalized IPC across design points (Figure 8)
//	-table2  re-encryptions per 10^9 cycles per counter scheme (Table 2)
//	-all     everything above
//
// Scale knobs: -ops (Figure 8 memory ops per core), -writebacks (Table 2
// stream length), -trials (Figure 3 injections), -runs (Table 2 averaging
// runs, as the paper averages three executions).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/fault"
	"authmem/internal/sim"
	"authmem/internal/stats"
	"authmem/internal/workload"
)

func main() {
	fig1 := flag.Bool("fig1", false, "reproduce Figure 1 (storage overhead)")
	fig3 := flag.Bool("fig3", false, "reproduce Figure 3 (fault handling)")
	fig8 := flag.Bool("fig8", false, "reproduce Figure 8 (IPC impact)")
	table2 := flag.Bool("table2", false, "reproduce Table 2 (re-encryption rate)")
	hotpath := flag.Bool("hotpath", false, "run hot-path microbenchmarks and write the tracked JSON baseline")
	hotpathOut := flag.String("hotpath-out", "BENCH_hotpath.json", "output path for -hotpath")
	parallel := flag.Bool("parallel", false, "run the sharded-engine parallel throughput sweep and write the tracked JSON baseline")
	parallelOut := flag.String("parallel-out", "BENCH_parallel.json", "output path for -parallel")
	writepath := flag.Bool("writepath", false, "run the write-pipeline benchmarks (deferred vs eager Merkle maintenance) and write the tracked JSON baseline")
	writepathOut := flag.String("writepath-out", "BENCH_writepath.json", "output path for -writepath")
	cores := flag.Bool("cores", false, "run the core-scaling matrix for the lock-free read path (GOMAXPROCS x shards x readers) and write the tracked JSON baseline")
	coresOut := flag.String("cores-out", "BENCH_cores.json", "output path for -cores")
	srvBench := flag.Bool("server", false, "run the serving-layer benchmarks (loopback and TCP through the client/server stack) and write the tracked JSON baseline")
	srvBenchOut := flag.String("server-out", "BENCH_server.json", "output path for -server")
	cryptoBench := flag.Bool("crypto", false, "run the crypto-backend comparison (ttable vs stdlib vs batch8 batch kernels and group seal/re-encrypt) and write the tracked JSON baseline")
	cryptoBenchOut := flag.String("crypto-out", "BENCH_crypto.json", "output path for -crypto")
	eccBench := flag.Bool("ecc", false, "run the ECC-codec comparison (secded vs residue vs macsecded check-bit kernels and engine seal/read) and write the tracked JSON baseline")
	eccBenchOut := flag.String("ecc-out", "BENCH_ecc.json", "output path for -ecc")
	persist := flag.Bool("persist", false, "run the incremental-persistence benchmark (AppendDelta vs full Persist across dirty fractions, plus WAL replay) and write the tracked JSON baseline")
	persistOut := flag.String("persist-out", "BENCH_persist.json", "output path for -persist")
	clusterBench := flag.Bool("cluster", false, "run the distributed cluster benchmark (1/2/4-node quorum throughput vs a direct single node) and write the tracked JSON baseline")
	clusterBenchOut := flag.String("cluster-out", "BENCH_cluster.json", "output path for -cluster")
	quick := flag.Bool("quick", false, "shrink the -writepath/-server workloads for a fast smoke run")
	all := flag.Bool("all", false, "reproduce everything")
	ops := flag.Uint64("ops", 1_000_000, "Figure 8: memory ops per core")
	writebacks := flag.Uint64("writebacks", 16_000_000, "Table 2: writeback stream length")
	trials := flag.Int("trials", 2000, "Figure 3: injections per cell")
	runs := flag.Int("runs", 3, "Table 2: runs to average (paper averages 3)")
	seed := flag.Int64("seed", 1, "base PRNG seed")
	csvDir := flag.String("csv", "", "also write each result as CSV into this directory")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected benchmarks to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected benchmarks to this file")
	flag.Parse()
	outDir = *csvDir

	any := *fig1 || *fig3 || *fig8 || *table2 || *hotpath || *parallel || *writepath || *cores || *srvBench || *cryptoBench || *eccBench || *persist || *clusterBench || *all
	if !any {
		flag.Usage()
		os.Exit(2)
	}
	if *all {
		*fig1, *fig3, *fig8, *table2, *hotpath, *parallel, *writepath, *cores, *srvBench, *cryptoBench, *eccBench, *persist, *clusterBench = true, true, true, true, true, true, true, true, true, true, true, true, true
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC() // settled live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}
	if *hotpath {
		runHotpath(*hotpathOut)
	}
	if *parallel {
		runParallel(*parallelOut)
	}
	if *writepath {
		runWritepath(*writepathOut, *quick)
	}
	if *cores {
		runCores(*coresOut, *quick)
	}
	if *srvBench {
		runServer(*srvBenchOut, *quick)
	}
	if *cryptoBench {
		runCrypto(*cryptoBenchOut, *quick)
	}
	if *eccBench {
		runECCBench(*eccBenchOut, *quick)
	}
	if *persist {
		runPersistBench(*persistOut, *quick)
	}
	if *clusterBench {
		runClusterBench(*clusterBenchOut, *quick)
	}
	if *fig1 {
		runFig1()
	}
	if *fig3 {
		runFig3(*trials, *seed)
	}
	if *table2 {
		runTable2(*writebacks, *runs, *seed)
	}
	if *fig8 {
		runFig8(*ops, *seed)
	}
}

func runFig1() {
	fmt.Println("=== Figure 1: storage overhead (512MB protected region) ===")
	tb := stats.NewTable("design point", "counters%", "tree%", "MACs%", "total%", "tree levels")
	points := []struct {
		name      string
		scheme    ctr.Kind
		placement core.MACPlacement
	}{
		{"baseline (mono + inline MAC)", ctr.Monolithic, core.MACInline},
		{"split + inline MAC", ctr.Split, core.MACInline},
		{"proposed (delta + MAC-in-ECC)", ctr.Delta, core.MACInECC},
		{"dual-length + MAC-in-ECC", ctr.DualLength, core.MACInECC},
	}
	pct := func(n uint64, o core.Overhead) string {
		return stats.Pct(100 * float64(n) / float64(o.RegionBytes))
	}
	rows := [][]string{{"design", "counters_pct", "tree_pct", "macs_pct", "total_pct", "tree_levels"}}
	for _, p := range points {
		o, err := core.ComputeOverhead(core.Default(p.scheme, p.placement))
		if err != nil {
			fatal(err)
		}
		tb.AddRow(p.name, pct(o.CounterBytes, o), pct(o.TreeBytes, o), pct(o.MACBytes, o),
			stats.Pct(o.EncryptionOverheadPct()), o.TreeLevels)
		rows = append(rows, []string{p.name,
			fmt.Sprintf("%.4f", 100*float64(o.CounterBytes)/float64(o.RegionBytes)),
			fmt.Sprintf("%.4f", 100*float64(o.TreeBytes)/float64(o.RegionBytes)),
			fmt.Sprintf("%.4f", 100*float64(o.MACBytes)/float64(o.RegionBytes)),
			fmt.Sprintf("%.4f", o.EncryptionOverheadPct()),
			fmt.Sprintf("%d", o.TreeLevels)})
	}
	fmt.Print(tb)
	writeCSV("fig1", rows)
	fmt.Println("paper: baseline ~22% -> proposed ~2% (~10x); tree 5 -> 4 levels")
	fmt.Println()
}

func runFig3(trials int, seed int64) {
	fmt.Printf("=== Figure 3: fault handling (%d trials/cell; corrected/detected/miscorrected %%) ===\n", trials)
	tb := stats.NewTable("fault pattern", "SEC-DED(72,64)", "MAC-in-ECC")
	rows := [][]string{{"pattern", "secded_corrected", "secded_detected", "secded_miscorrected",
		"macecc_corrected", "macecc_detected", "macecc_miscorrected"}}
	for _, class := range fault.Classes() {
		sec := fault.InjectSECDED(class, trials, seed)
		mec, err := fault.InjectMACECC(class, trials, seed, 2)
		if err != nil {
			fatal(err)
		}
		row := func(r fault.Result) string {
			return fmt.Sprintf("%5.1f /%5.1f /%5.1f",
				r.CorrectedPct(), r.DetectedPct(), r.MiscorrectedPct())
		}
		tb.AddRow(class.String(), row(sec), row(mec))
		rows = append(rows, []string{class.String(),
			fmt.Sprintf("%.2f", sec.CorrectedPct()), fmt.Sprintf("%.2f", sec.DetectedPct()),
			fmt.Sprintf("%.2f", sec.MiscorrectedPct()),
			fmt.Sprintf("%.2f", mec.CorrectedPct()), fmt.Sprintf("%.2f", mec.DetectedPct()),
			fmt.Sprintf("%.2f", mec.MiscorrectedPct())})
	}
	fmt.Print(tb)
	writeCSV("fig3", rows)
	fmt.Println()
}

func runTable2(writebacks uint64, runs int, seed int64) {
	fmt.Printf("=== Table 2: re-encryptions per 10^9 cycles (avg of %d runs, %dM writebacks each) ===\n",
		runs, writebacks/1_000_000)
	paper := map[string][3]int{
		"facesim": {880, 113, 176}, "dedup": {725, 51, 14}, "canneal": {167, 167, 128},
		"vips": {77, 77, 24}, "ferret": {33, 23, 5}, "fluidanimate": {4, 4, 0},
		"freqmine": {3, 0, 0}, "raytrace": {2, 2, 0}, "swaptions": {0, 0, 0},
		"blackscholes": {0, 0, 0}, "bodytrack": {0, 0, 0},
	}
	tb := stats.NewTable("program", "split-7", "7-bit delta", "dual-length", "paper (s/d/dl)")
	rows := [][]string{{"program", "split", "delta", "dual",
		"paper_split", "paper_delta", "paper_dual"}}
	for _, app := range workload.Apps() {
		var vals [3]float64
		for i, k := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
			var sum float64
			for r := 0; r < runs; r++ {
				res, err := sim.MeasureReencryption(app, k, writebacks, seed+int64(r))
				if err != nil {
					fatal(err)
				}
				sum += res.PerBillionCycles
			}
			vals[i] = sum / float64(runs)
		}
		p := paper[app.Name]
		tb.AddRow(app.Name, vals[0], vals[1], vals[2],
			fmt.Sprintf("%d / %d / %d", p[0], p[1], p[2]))
		rows = append(rows, []string{app.Name,
			fmt.Sprintf("%.2f", vals[0]), fmt.Sprintf("%.2f", vals[1]),
			fmt.Sprintf("%.2f", vals[2]),
			fmt.Sprintf("%d", p[0]), fmt.Sprintf("%d", p[1]), fmt.Sprintf("%d", p[2])})
	}
	fmt.Print(tb)
	writeCSV("table2", rows)
	fmt.Println()
}

func runFig8(ops uint64, seed int64) {
	fmt.Printf("=== Figure 8: normalized IPC (vs no encryption; %d mem ops/core) ===\n", ops)
	points := sim.StandardDesignPoints()
	tb := stats.NewTable("program", "bmt", "mac-ecc", "proposed", "gain over bmt")
	rows := [][]string{{"program", "bmt", "mac_ecc", "proposed", "gain_pct"}}
	var sumGain float64
	var n int
	type mech struct {
		hit        float64
		txns       float64
		treeLevels int
		count      int
	}
	mechs := map[string]*mech{}
	for _, app := range workload.Apps() {
		if !app.MemorySensitive {
			continue
		}
		norm, results, err := sim.NormalizedIPC(app, points, ops, seed)
		if err != nil {
			fatal(err)
		}
		for _, r := range results {
			if r.Design == "no-encryption" {
				continue
			}
			m := mechs[r.Design]
			if m == nil {
				m = &mech{}
				mechs[r.Design] = m
			}
			m.hit += r.MetaHitRate
			if r.CPU.L3Misses > 0 {
				m.txns += float64(r.Timing.Transactions()) / float64(r.CPU.L3Misses)
			}
			m.treeLevels = r.TreeLevels
			m.count++
		}
		gain := 100 * (norm["proposed"]/norm["bmt"] - 1)
		sumGain += gain
		n++
		tb.AddRow(app.Name,
			fmt.Sprintf("%.3f", norm["bmt"]),
			fmt.Sprintf("%.3f", norm["mac-ecc"]),
			fmt.Sprintf("%.3f", norm["proposed"]),
			fmt.Sprintf("+%.1f%%", gain))
		rows = append(rows, []string{app.Name,
			fmt.Sprintf("%.4f", norm["bmt"]), fmt.Sprintf("%.4f", norm["mac-ecc"]),
			fmt.Sprintf("%.4f", norm["proposed"]), fmt.Sprintf("%.2f", gain)})
	}
	fmt.Print(tb)
	writeCSV("fig8", rows)
	fmt.Printf("mean IPC gain over BMT across memory-sensitive apps: +%.1f%%\n\n", sumGain/float64(n))

	// Mechanism summary: where the gains come from (§5.2's discussion).
	mtb := stats.NewTable("design", "tree read depth", "metadata cache hit rate", "DRAM txns per L3 miss")
	for _, name := range []string{"bmt", "mac-ecc", "proposed"} {
		m := mechs[name]
		if m == nil || m.count == 0 {
			continue
		}
		mtb.AddRow(name, m.treeLevels,
			fmt.Sprintf("%.3f", m.hit/float64(m.count)),
			fmt.Sprintf("%.2f", m.txns/float64(m.count)))
	}
	fmt.Print(mtb)
	fmt.Println("paper: proposed improves IPC by 1%-28% over BMT (average ~5% across the suite;")
	fmt.Println("the four compute-bound apps are unaffected and omitted, as in the paper).")
}

// outDir, when non-empty, receives one CSV per experiment.
var outDir string

// writeCSV emits rows (header first) to <outDir>/<name>.csv when -csv is set.
func writeCSV(name string, rows [][]string) {
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fatal(err)
	}
	path := filepath.Join(outDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		fatal(err)
	}
	w.Flush()
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperbench:", err)
	os.Exit(1)
}
