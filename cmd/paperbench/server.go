package main

// -server: tracked serving-layer benchmark. Measures end-to-end throughput
// and latency of the wire protocol through the full client/server stack —
// both over an in-process loopback pipe (protocol cost with no kernel
// sockets) and over real TCP on localhost — at 1, 4, and 16 pipelined
// connections, and writes BENCH_server.json so serving-path regressions are
// reviewable in diffs like any other result.

import (
	"fmt"
	"net"
	"sync"
	"time"

	"authmem"
	"authmem/client"
	"authmem/internal/server"
	"authmem/internal/stats"
	"authmem/internal/wire"
)

// serverEntry is one (transport, connections, op) cell in BENCH_server.json.
type serverEntry struct {
	Transport    string  `json:"transport"` // loopback | tcp
	Conns        int     `json:"conns"`
	PipelineEach int     `json:"pipeline_depth_per_conn"`
	Op           string  `json:"op"` // write | read
	SpanBlocks   int     `json:"span_blocks"`
	Ops          int     `json:"ops"`
	NsPerOp      float64 `json:"ns_per_op"`
	OpsPerSec    float64 `json:"ops_per_sec"`
	MBPerSec     float64 `json:"mb_per_sec"`
	AvgLatencyUs float64 `json:"avg_latency_us"`
}

type serverReport struct {
	Note string `json:"note"`
	benchEnv
	RegionBytes uint64        `json:"region_bytes"`
	Shards      int           `json:"shards"`
	Entries     []serverEntry `json:"entries"`
}

func runServer(outPath string, quick bool) {
	fmt.Println("=== Serving layer: client/server throughput and latency ===")
	regionBytes := uint64(64 << 20)
	opsPerCell := 30_000
	if quick {
		regionBytes = 8 << 20
		opsPerCell = 3_000
	}
	const (
		shards     = 4
		spanBlocks = 4
		depth      = 8 // concurrent requests per connection
	)

	cfg := authmem.DefaultConfig(regionBytes)
	cfg.Key = benchKeyMaterial()
	mem, err := authmem.NewSharded(cfg, shards)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{Backend: mem, RequestTimeout: -1})
	if err != nil {
		fatal(err)
	}
	defer srv.Close()

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatal(err)
	}
	go srv.Serve(l)
	tcpAddr := l.Addr().String()

	rep := serverReport{
		Note: fmt.Sprintf("End-to-end wire-protocol ops (%d-block spans) through the "+
			"client pool: loopback is an in-process net.Pipe (no kernel sockets), "+
			"tcp is localhost. Each connection pipelines %d requests.", spanBlocks, depth),
		benchEnv:    captureEnv(),
		RegionBytes: regionBytes,
		Shards:      shards,
	}

	transports := []struct {
		name string
		opts client.Options
	}{
		{"loopback", client.Options{Dial: srv.DialLoopback}},
		{"tcp", client.Options{Addr: tcpAddr}},
	}
	for _, tr := range transports {
		for _, conns := range []int{1, 4, 16} {
			opts := tr.opts
			opts.Conns = conns
			opts.MaxInflight = depth + 2
			c, err := client.New(opts)
			if err != nil {
				fatal(err)
			}
			for _, op := range []string{"write", "read"} {
				e := benchServerCell(c, mem.Size(), tr.name, conns, depth, op, spanBlocks, opsPerCell)
				rep.Entries = append(rep.Entries, e)
				fmt.Printf("  %-8s conns=%-2d %-5s  %9.0f ops/s  %8.1f MB/s  %7.1f us/op\n",
					e.Transport, e.Conns, e.Op, e.OpsPerSec, e.MBPerSec, e.AvgLatencyUs)
			}
			c.Close()
		}
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// benchServerCell drives one cell: conns*depth workers issue span-sized ops
// over disjoint block ranges and the wall clock prices the whole batch.
func benchServerCell(c *client.Client, size uint64, transport string, conns, depth int, op string, spanBlocks, totalOps int) serverEntry {
	workers := conns * depth
	perWorker := totalOps / workers
	if perWorker == 0 {
		perWorker = 1
	}
	totalOps = perWorker * workers
	spanBytes := spanBlocks * wire.BlockBytes
	// Disjoint per-worker windows so reads always hit written blocks.
	window := (size / uint64(workers)) / uint64(spanBytes) // spans per worker
	if window > 256 {
		window = 256
	}

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * (size / uint64(workers))
			buf := make([]byte, spanBytes)
			for i := range buf {
				buf[i] = byte(w + i)
			}
			for i := 0; i < perWorker; i++ {
				addr := base + uint64(i)%window*uint64(spanBytes)
				var err error
				if op == "write" {
					_, err = c.Write(addr, buf)
				} else {
					_, err = c.Read(addr, buf)
				}
				if err != nil {
					errCh <- fmt.Errorf("%s %s at %#x: %w", transport, op, addr, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fatal(err)
	}

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(totalOps)
	return serverEntry{
		Transport:    transport,
		Conns:        conns,
		PipelineEach: depth,
		Op:           op,
		SpanBlocks:   spanBlocks,
		Ops:          totalOps,
		NsPerOp:      nsPerOp,
		OpsPerSec:    float64(totalOps) / elapsed.Seconds(),
		MBPerSec:     float64(totalOps) * float64(spanBytes) / (1 << 20) / elapsed.Seconds(),
		AvgLatencyUs: nsPerOp * float64(conns*depth) / 1e3,
	}
}
