package main

// -ecc: tracked ECC-codec comparison. Every registered codec (internal/ecc:
// secded, residue, macsecded) runs the same four shapes:
//
//   - kernel.encode4k: check-bit generation for one 4KB group (64 blocks).
//     Block codecs run EncodeInto; macsecded runs MAC tag + PackLane, since
//     its "check bits" are the packed MAC+Hamming lane.
//   - kernel.verify4k: clean-path verification of one 4KB group. Block
//     codecs run DecodeAndCorrect; macsecded runs the lane verifier's
//     VerifyAndCorrect (hardware-check short circuit included).
//   - seal.group:      WriteBlocks of one 4KB group through a Memory built
//     with the codec (placement implied by CarriesMAC).
//   - read.hot:        warm single-block Read through the same Memory.
//
// secded is measured first and becomes the baseline columns, so speedup_x
// reads "vs secded" — same machine, same run, same shapes. The JSON matches
// the BENCH_hotpath.json format.

import (
	"fmt"
	"math/rand"
	"testing"

	"authmem"
	"authmem/internal/ecc"
	"authmem/internal/mac"
	"authmem/internal/stats"
)

func runECCBench(outPath string, quick bool) {
	fmt.Println("=== ECC codecs: check-bit kernels and engine seal/read cost ===")
	regionBytes := uint64(64 << 20)
	if quick {
		regionBytes = 8 << 20
	}
	key := benchKeyMaterial()
	const groupBlocks = 64
	groupBytes := groupBlocks * authmem.BlockSize

	rep := hotReport{
		Note: "One entry per shape per ECC codec; baseline columns are the " +
			"secded (Hamming SEC-DED) codec measured live in the same run, so " +
			"speedup_x reads 'vs secded'. kernel.* cover one 4KB group's check " +
			"bits (encode) and clean-path verification; seal.group and read.hot " +
			"go through a full Memory with the codec's implied MAC placement.",
		benchEnv: captureEnv(),
	}

	// secded first: its numbers are every other codec's baseline.
	names := []string{ecc.DefaultBlockCodec}
	for _, n := range ecc.Names() {
		if n != ecc.DefaultBlockCodec {
			names = append(names, n)
		}
	}
	secdedNs := map[string]float64{}

	measure := func(op func(b *testing.B)) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			op(b)
		})
	}
	add := func(shape, codec string, r testing.BenchmarkResult) {
		name := shape + "/" + codec
		e := hotEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if codec == ecc.DefaultBlockCodec {
			secdedNs[shape] = e.NsPerOp
		} else if base := secdedNs[shape]; base > 0 && e.NsPerOp > 0 {
			e.BaselineNs = base
			e.Speedup = base / e.NsPerOp
		}
		rep.Entries = append(rep.Entries, e)
		if e.Speedup > 0 {
			fmt.Printf("  %-28s %10.1f ns/op  %2d allocs/op  (%5.2fx vs secded)\n",
				name, e.NsPerOp, e.AllocsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-28s %10.1f ns/op  %2d allocs/op\n",
				name, e.NsPerOp, e.AllocsPerOp)
		}
	}

	group := make([]byte, groupBytes)
	rand.New(rand.NewSource(7)).Read(group)

	for _, codec := range names {
		cod, err := ecc.Lookup(codec)
		if err != nil {
			fatal(err)
		}

		switch c := cod.(type) {
		case ecc.BlockCodec:
			check := make([]byte, groupBlocks*c.CheckBytes())
			cb := c.CheckBytes()
			for blk := 0; blk < groupBlocks; blk++ {
				if err := c.EncodeInto(check[blk*cb:(blk+1)*cb], group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize]); err != nil {
					fatal(err)
				}
			}
			add("kernel.encode4k", codec, measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < groupBlocks; blk++ {
						if err := c.EncodeInto(check[blk*cb:(blk+1)*cb], group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}))
			add("kernel.verify4k", codec, measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < groupBlocks; blk++ {
						out, err := c.DecodeAndCorrect(group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize], check[blk*cb:(blk+1)*cb])
						if err != nil {
							b.Fatal(err)
						}
						if !out.Clean() {
							b.Fatal("clean block flagged")
						}
					}
				}
			}))
		case ecc.MACCodec:
			mk, err := mac.NewKey(key[:24])
			if err != nil {
				fatal(err)
			}
			ver, err := c.NewVerifier(mk, 2)
			if err != nil {
				fatal(err)
			}
			lanes := make([]uint64, groupBlocks)
			for blk := 0; blk < groupBlocks; blk++ {
				tag, err := mk.Tag(group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize], uint64(blk)*authmem.BlockSize, 1)
				if err != nil {
					fatal(err)
				}
				lanes[blk] = c.PackLane(tag, group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize])
			}
			add("kernel.encode4k", codec, measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < groupBlocks; blk++ {
						ct := group[blk*authmem.BlockSize : (blk+1)*authmem.BlockSize]
						tag, err := mk.Tag(ct, uint64(blk)*authmem.BlockSize, 1)
						if err != nil {
							b.Fatal(err)
						}
						lanes[blk] = c.PackLane(tag, ct)
					}
				}
			}))
			add("kernel.verify4k", codec, measure(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for blk := 0; blk < groupBlocks; blk++ {
						_, out, err := ver.VerifyAndCorrect(group[blk*authmem.BlockSize:(blk+1)*authmem.BlockSize], lanes[blk], uint64(blk)*authmem.BlockSize, 1)
						if err != nil {
							b.Fatal(err)
						}
						if !out.OK {
							b.Fatal("clean lane flagged")
						}
					}
				}
			}))
		}

		// Full-engine shapes through the public API, placement implied by
		// the codec family.
		cfg := authmem.DefaultConfig(regionBytes)
		cfg.Key = key
		cfg.ECCCodec = codec
		if cod.CarriesMAC() {
			cfg.Placement = authmem.MACInECC
		} else {
			cfg.Placement = authmem.InlineMAC
		}
		m, err := authmem.New(cfg)
		if err != nil {
			fatal(err)
		}
		if err := m.EnableWritePipeline(0); err != nil {
			fatal(err)
		}
		add("seal.group", codec, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) * uint64(groupBytes)) % regionBytes
				if err := m.WriteBlocks(addr, group); err != nil {
					b.Fatal(err)
				}
			}
		}))
		block := make([]byte, authmem.BlockSize)
		if err := m.Write(0, group[:authmem.BlockSize]); err != nil {
			fatal(err)
		}
		add("read.hot", codec, measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(0, block); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
