package main

// -writepath: tracked write-path benchmark. Compares the deferred-Merkle
// write pipeline (dirty-leaf write combining + epoch flush) against the
// eager baseline, which recomputes the tree path inside every Write. The
// baseline columns are measured live in the same run — same machine, same
// shapes — so the speedup column is always honest, and the JSON matches the
// BENCH_hotpath.json format so diffs review the same way.
//
// The region is paper-sized (512MB) by default: the speedup is the ratio of
// tree-path MACs saved per write, so it needs the real tree depth, not a
// test-sized stub. -quick shrinks the region for CI smoke runs.

import (
	"fmt"
	"math/rand"
	"testing"

	"authmem"
	"authmem/internal/stats"
)

func runWritepath(outPath string, quick bool) {
	fmt.Println("=== Write path: deferred Merkle maintenance vs eager baseline ===")
	regionBytes := uint64(512 << 20)
	if quick {
		regionBytes = 8 << 20
	}
	key := benchKeyMaterial()
	rep := hotReport{
		Note: "Baseline columns are the eager write path (tree path recomputed " +
			"inside every Write), measured live in the same run over the same " +
			fmt.Sprintf("%dMB region; the main columns run the write pipeline.", regionBytes>>20),
		benchEnv: captureEnv(),
	}

	newMem := func(scheme authmem.CounterScheme, pipeline bool) *authmem.Memory {
		cfg := authmem.DefaultConfig(regionBytes)
		cfg.Scheme = scheme
		cfg.Key = key
		m, err := authmem.New(cfg)
		if err != nil {
			fatal(err)
		}
		if pipeline {
			if err := m.EnableWritePipeline(0); err != nil {
				fatal(err)
			}
		}
		return m
	}

	data := make([]byte, authmem.BlockSize)
	rand.New(rand.NewSource(3)).Read(data)
	span := make([]byte, 64*authmem.BlockSize)
	rand.New(rand.NewSource(4)).Read(span)

	// measure runs one shape against one memory and returns the result.
	measure := func(m *authmem.Memory, op func(m *authmem.Memory, i int) error) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := op(m, i); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// add benchmarks one workload twice — eagerOp against an eager memory,
	// pipedOp against a pipelined one — and records the pipelined numbers
	// with the eager run as the baseline columns. Both ops must move the
	// same number of bytes per iteration for the speedup to mean anything.
	add := func(name string, scheme authmem.CounterScheme,
		eagerOp, pipedOp func(m *authmem.Memory, i int) error) {
		eager := measure(newMem(scheme, false), eagerOp)
		piped := measure(newMem(scheme, true), pipedOp)
		e := hotEntry{
			Name:         name,
			NsPerOp:      float64(piped.NsPerOp()),
			AllocsPerOp:  piped.AllocsPerOp(),
			BytesPerOp:   piped.AllocedBytesPerOp(),
			BaselineNs:   float64(eager.NsPerOp()),
			BaselineAllo: eager.AllocsPerOp(),
		}
		if e.NsPerOp > 0 {
			e.Speedup = e.BaselineNs / e.NsPerOp
		}
		rep.Entries = append(rep.Entries, e)
		fmt.Printf("  %-32s %10.1f ns/op  %2d allocs/op  (eager %10.1f ns/op, %5.2fx)\n",
			name, e.NsPerOp, e.AllocsPerOp, e.BaselineNs, e.Speedup)
	}

	// Rewrite-hot-group: one op rewrites the hot 4KB group. The eager
	// baseline is what a caller without the combiner does — 64 per-block
	// writes, each paying a full root-to-leaf tree recompute. The pipeline
	// takes the combining write path: seal work coalesced into one keystream
	// pad batch per group, one dirty-leaf mark, zero tree work until the
	// epoch flush. This is the pipeline's headline shape.
	rewriteGroup := func(m *authmem.Memory, i int) error {
		for j := uint64(0); j < 64; j++ {
			if err := m.Write(j*authmem.BlockSize, span[j*authmem.BlockSize:(j+1)*authmem.BlockSize]); err != nil {
				return err
			}
		}
		return nil
	}
	rewriteGroupSpan := func(m *authmem.Memory, i int) error {
		return m.WriteBlocks(0, span)
	}
	add("writepath.hotgroup/delta-macecc", authmem.DeltaEncoding, rewriteGroup, rewriteGroupSpan)
	// Per-block view of the same leaf: a single hot-group Write through the
	// pipeline skips only the tree walk (the seal is irreducible), and the
	// combined-write fast path must not allocate. Monolithic never
	// re-encrypts, so the fast path is all this shape measures.
	hotWrite := func(m *authmem.Memory, i int) error {
		return m.Write(uint64(i%64)*authmem.BlockSize, data)
	}
	add("writepath.hotblock/delta-macecc", authmem.DeltaEncoding, hotWrite, hotWrite)
	add("writepath.hotblock/mono-macecc", authmem.Monolithic, hotWrite, hotWrite)
	// Write-burst: a sequential store stream over a 4MB window. Each leaf
	// combines 64 consecutive writes, and full leaves flush in batched
	// epochs that share interior-node rehashes.
	burstBlocks := uint64(1 << 16)
	if burstBlocks*authmem.BlockSize > regionBytes {
		burstBlocks = regionBytes / authmem.BlockSize
	}
	burst := func(m *authmem.Memory, i int) error {
		return m.Write(uint64(i)%burstBlocks*authmem.BlockSize, data)
	}
	add("writepath.burst/delta-macecc", authmem.DeltaEncoding, burst, burst)
	// Span-write: 64-block WriteBlocks spans rotating over 16 groups. The
	// eager span path already commits each leaf once per span, so this
	// measures what deferral adds on top of batching.
	spanWrite := func(m *authmem.Memory, i int) error {
		return m.WriteBlocks(uint64(i%16)*uint64(len(span)), span)
	}
	add("writepath.span/delta-macecc", authmem.DeltaEncoding, spanWrite, spanWrite)

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
