package main

// -cluster: tracked distributed-serving benchmark. Prices the striped,
// quorum-verified cluster client against the same region served by a single
// direct client: read/write throughput at 1, 2, and 4 nodes, and the quorum
// overhead (replica fan-out + answer comparison + root pinning) as a
// percentage over the direct single-node path. Written to BENCH_cluster.json
// so cluster-path regressions are reviewable in diffs like any other result.

import (
	"fmt"
	"sync"
	"time"

	"authmem"
	"authmem/client"
	"authmem/cluster"
	"authmem/internal/server"
	"authmem/internal/stats"
	"authmem/internal/wire"
)

// clusterEntry is one (topology, op) cell in BENCH_cluster.json.
type clusterEntry struct {
	Topology    string  `json:"topology"` // direct | cluster
	Nodes       int     `json:"nodes"`
	Replication int     `json:"replication"`
	Op          string  `json:"op"`
	SpanBlocks  int     `json:"span_blocks"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	MBPerSec    float64 `json:"mb_per_sec"`
	// QuorumOverheadPct is this cell's ns/op over the direct single-node
	// cell for the same op, in percent (0 for the direct cells).
	QuorumOverheadPct float64 `json:"quorum_overhead_pct"`
}

type clusterReport struct {
	Note string `json:"note"`
	benchEnv
	RegionBytes  uint64         `json:"region_bytes"`
	StripeBlocks int            `json:"stripe_blocks"`
	Entries      []clusterEntry `json:"entries"`
}

func runClusterBench(outPath string, quick bool) {
	fmt.Println("=== Cluster: striped quorum client vs direct single node ===")
	regionBytes := uint64(16 << 20)
	opsPerCell := 12_000
	if quick {
		regionBytes = 4 << 20
		opsPerCell = 1_500
	}
	const (
		spanBlocks   = 4
		stripeBlocks = 64
		workers      = 8
	)

	rep := clusterReport{
		Note: fmt.Sprintf("End-to-end %d-block ops over in-process loopback nodes. "+
			"direct is one client on one memserved; cluster/N stripes the region over N nodes "+
			"(R=min(2,N)) with root-pinned quorum reads and fan-out writes. "+
			"quorum_overhead_pct compares each cell's ns/op to the direct cell.", spanBlocks),
		benchEnv:     captureEnv(),
		RegionBytes:  regionBytes,
		StripeBlocks: stripeBlocks,
	}

	// Direct baseline: one node, one plain client, no quorum layer.
	base := map[string]float64{}
	{
		h := newBenchNode("direct0", regionBytes)
		defer h.close()
		c, err := client.New(client.Options{Dial: h.srv.DialLoopback, Conns: 2, MaxInflight: workers + 2})
		if err != nil {
			fatal(err)
		}
		for _, op := range []string{"write", "read"} {
			e := benchClusterCell(func(addr uint64, buf []byte) error {
				var err error
				if op == "write" {
					_, err = c.Write(addr, buf)
				} else {
					_, err = c.Read(addr, buf)
				}
				return err
			}, "direct", 1, 1, op, spanBlocks, opsPerCell, regionBytes, workers)
			base[op] = e.NsPerOp
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("  direct   n=1 R=1 %-5s  %9.0f ops/s  %8.1f MB/s\n", e.Op, e.OpsPerSec, e.MBPerSec)
		}
		c.Close()
	}

	for _, nodeCount := range []int{1, 2, 4} {
		var nodes []cluster.Node
		var handles []*benchNode
		for i := 0; i < nodeCount; i++ {
			h := newBenchNode(fmt.Sprintf("bench%d", i), regionBytes)
			handles = append(handles, h)
			nodes = append(nodes, cluster.Node{Name: h.name, Dial: h.srv.DialLoopback})
		}
		repl := min(2, nodeCount)
		cl, err := cluster.New(cluster.Options{
			Nodes:        nodes,
			Size:         regionBytes,
			StripeBlocks: stripeBlocks,
			Replication:  repl,
			Client:       client.Options{Conns: 2, MaxInflight: workers + 2},
		})
		if err != nil {
			fatal(err)
		}
		for _, op := range []string{"write", "read"} {
			e := benchClusterCell(func(addr uint64, buf []byte) error {
				var err error
				if op == "write" {
					_, err = cl.Write(addr, buf)
				} else {
					_, err = cl.Read(addr, buf)
				}
				return err
			}, "cluster", nodeCount, repl, op, spanBlocks, opsPerCell, regionBytes, workers)
			e.QuorumOverheadPct = 100 * (e.NsPerOp - base[op]) / base[op]
			rep.Entries = append(rep.Entries, e)
			fmt.Printf("  cluster  n=%d R=%d %-5s  %9.0f ops/s  %8.1f MB/s  %+6.1f%% vs direct\n",
				nodeCount, repl, e.Op, e.OpsPerSec, e.MBPerSec, e.QuorumOverheadPct)
		}
		cl.Close()
		for _, h := range handles {
			h.close()
		}
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// benchNode is one loopback memserved for the cluster benchmark.
type benchNode struct {
	name string
	srv  *server.Server
}

func newBenchNode(name string, regionBytes uint64) *benchNode {
	cfg := authmem.DefaultConfig(regionBytes)
	cfg.Key = benchKeyMaterial()
	mem, err := authmem.NewSharded(cfg, 4)
	if err != nil {
		fatal(err)
	}
	srv, err := server.New(server.Config{Backend: mem, NodeID: name, RequestTimeout: -1})
	if err != nil {
		fatal(err)
	}
	return &benchNode{name: name, srv: srv}
}

func (n *benchNode) close() { n.srv.Close() }

// benchClusterCell drives one cell: workers goroutines issue span-sized ops
// over disjoint block windows; reads run against windows the same cell's
// warm-up pass wrote.
func benchClusterCell(do func(addr uint64, buf []byte) error, topology string, nodes, repl int, op string, spanBlocks, totalOps int, size uint64, workers int) clusterEntry {
	perWorker := totalOps / workers
	if perWorker == 0 {
		perWorker = 1
	}
	totalOps = perWorker * workers
	spanBytes := spanBlocks * wire.BlockBytes
	window := (size / uint64(workers)) / uint64(spanBytes)
	if window > 256 {
		window = 256
	}

	// Read cells need no warm-up: the write cell runs first in each
	// topology and covers exactly these windows.
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w) * (size / uint64(workers))
			buf := make([]byte, spanBytes)
			for i := range buf {
				buf[i] = byte(w + i)
			}
			for i := 0; i < perWorker; i++ {
				addr := base + uint64(i)%window*uint64(spanBytes)
				if err := do(addr, buf); err != nil {
					errCh <- fmt.Errorf("%s/%d %s at %#x: %w", topology, nodes, op, addr, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	for err := range errCh {
		fatal(err)
	}

	nsPerOp := float64(elapsed.Nanoseconds()) / float64(totalOps)
	return clusterEntry{
		Topology:    topology,
		Nodes:       nodes,
		Replication: repl,
		Op:          op,
		SpanBlocks:  spanBlocks,
		Ops:         totalOps,
		NsPerOp:     nsPerOp,
		OpsPerSec:   float64(totalOps) / elapsed.Seconds(),
		MBPerSec:    float64(totalOps) * float64(spanBytes) / (1 << 20) / elapsed.Seconds(),
	}
}
