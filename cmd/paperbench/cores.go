package main

// -cores: tracked core-scaling benchmark for the lock-free read path,
// writing BENCH_cores.json.
//
// The matrix crosses GOMAXPROCS (1/2/4) with shard count (1/4) and, on the
// main cell, reader-goroutine count and the lock-free/locked mode switch
// (ShardedMemory.SetLockFreeReads). The workload is fixed across every
// cell: random single-block reads over a hot set sized to sit fully
// resident in the per-shard verified-block caches at BOTH shard counts (the
// stripes are staggered so they never alias in the direct-mapped cache), so
// the matrix isolates synchronization cost from cache capacity — the
// capacity story is -parallel's job.
//
// What the committed numbers do and do not claim: num_cpu is recorded in
// the report, and on a single-CPU container the GOMAXPROCS axis measures
// scheduler multiplexing, not hardware parallelism — throughput is flat and
// that is the honest result. The lock-free property itself is machine-
// independent and is evidenced by counters, not wall clock: a warm cell
// retires every read as a LockFreeHit with slow_path_reads == 0 (zero shard
// -lock acquisitions), and the same cell re-run with the fast path disabled
// gives the locked-baseline ratio. On multi-core hardware the same binary
// turns the eliminated lock acquisitions into real scaling; the JSON is
// interpretable either way because the environment rides along.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"authmem"
	"authmem/internal/stats"
)

const (
	coresRegionBytes = 32 << 20
	coresStripeBytes = 512 << 10 // per-stripe hot span
	coresStripes     = 4
	coresStripeGap   = 8 << 20 // == shard size at 4 shards
	coresReads       = 400_000 // total reads per cell, split across readers
	coresQuickReads  = 40_000
)

type coresEntry struct {
	Shards         int     `json:"shards"`
	GOMAXPROCS     int     `json:"gomaxprocs"`
	Goroutines     int     `json:"goroutines"`
	LockFree       bool    `json:"lock_free"`
	Reads          uint64  `json:"reads"`
	ElapsedNs      int64   `json:"elapsed_ns"`
	ReadsPerSec    float64 `json:"reads_per_sec"`
	NsPerRead      float64 `json:"ns_per_read"`
	LockFreeHits   uint64  `json:"lock_free_hits"`
	SeqlockRetries uint64  `json:"seqlock_retries"`
	SlowPathReads  uint64  `json:"slow_path_reads"`
}

type coresReport struct {
	Note string `json:"note"`
	benchEnv
	RegionBytes uint64       `json:"region_bytes"`
	HotBytes    uint64       `json:"hot_bytes"`
	Entries     []coresEntry `json:"entries"`
	// Summary ratios from the matrix (shards=4, 4 readers throughout).
	ScalingGMP4v1   float64 `json:"warm_scaling_gomaxprocs_4_vs_1"`
	LockFreeSpeedup float64 `json:"lockfree_vs_locked_speedup"`
}

// coresHotAddrs returns the staggered hot set: stripe k starts at
// k*(gap+stripe), so at 4 shards stripe k lives wholly inside shard k, and
// at 1 shard the four stripes map to disjoint line ranges of the single
// direct-mapped block cache. Fully resident either way.
func coresHotAddrs() []uint64 {
	var addrs []uint64
	for s := uint64(0); s < coresStripes; s++ {
		base := s * (coresStripeGap + coresStripeBytes)
		for off := uint64(0); off < coresStripeBytes; off += authmem.BlockSize {
			addrs = append(addrs, base+off)
		}
	}
	return addrs
}

// coresMeasure runs one cell: reads random warm blocks from g goroutines.
func coresMeasure(dev *authmem.ShardedMemory, addrs []uint64, g int, reads uint64) (time.Duration, error) {
	errs := make(chan error, g)
	per := reads / uint64(g)
	start := time.Now()
	for i := 0; i < g; i++ {
		go func(i int) {
			rng := rand.New(rand.NewSource(int64(i) + 7))
			dst := make([]byte, authmem.BlockSize)
			n := len(addrs)
			for r := uint64(0); r < per; r++ {
				if _, err := dev.Read(addrs[rng.Intn(n)], dst); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < g; i++ {
		if err := <-errs; err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func runCores(outPath string, quick bool) {
	fmt.Println("=== Cores: lock-free read path scaling matrix ===")
	reads := uint64(coresReads)
	gmps := []int{1, 2, 4}
	if quick {
		reads = coresQuickReads
		gmps = []int{1, 4}
	}
	fmt.Printf("    hot set %d KB (%d staggered stripes), %d warm reads per cell, num_cpu=%d\n",
		coresStripes*coresStripeBytes>>10, coresStripes, reads, runtime.NumCPU())

	cfg := authmem.DefaultConfig(coresRegionBytes)
	cfg.Key = benchKeyMaterial()
	addrs := coresHotAddrs()

	rep := coresReport{
		Note: "Fixed warm random-read workload; the hot set is staggered so it is " +
			"fully resident in the per-shard verified-block caches at every shard " +
			"count, isolating synchronization cost from cache capacity. lock_free=true " +
			"cells serve reads via the seqlock probe with zero shard-lock acquisitions " +
			"(slow_path_reads stays 0 and lock_free_hits covers every read); " +
			"lock_free=false re-runs the identical cell through the locked slow path. " +
			"On a host where num_cpu < gomaxprocs the GOMAXPROCS axis measures " +
			"scheduler multiplexing, not hardware parallelism — the lock-elimination " +
			"evidence is the counters and the lockfree/locked ratio, which do not " +
			"depend on core count.",
		benchEnv:    captureEnv(),
		RegionBytes: coresRegionBytes,
		HotBytes:    coresStripes * coresStripeBytes,
	}
	prevGMP := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevGMP)

	cell := func(dev *authmem.ShardedMemory, shards, gmp, g int, lockFree bool) coresEntry {
		runtime.GOMAXPROCS(gmp)
		dev.SetLockFreeReads(lockFree)
		warm := dev.Stats()
		elapsed, err := coresMeasure(dev, addrs, g, reads)
		if err != nil {
			fatal(fmt.Errorf("cores cell shards=%d gmp=%d g=%d: %w", shards, gmp, g, err))
		}
		after := dev.Stats()
		n := reads / uint64(g) * uint64(g)
		e := coresEntry{
			Shards:         shards,
			GOMAXPROCS:     gmp,
			Goroutines:     g,
			LockFree:       lockFree,
			Reads:          n,
			ElapsedNs:      elapsed.Nanoseconds(),
			ReadsPerSec:    float64(n) / elapsed.Seconds(),
			NsPerRead:      float64(elapsed.Nanoseconds()) / float64(n),
			LockFreeHits:   after.LockFreeHits - warm.LockFreeHits,
			SeqlockRetries: after.SeqlockRetries - warm.SeqlockRetries,
			SlowPathReads:  after.SlowPathReads - warm.SlowPathReads,
		}
		rep.Entries = append(rep.Entries, e)
		mode := "lock-free"
		if !lockFree {
			mode = "locked   "
		}
		fmt.Printf("  shards=%d gmp=%d g=%d %s %11.0f reads/s  %6.1f ns/read  hits=%d slow=%d retries=%d\n",
			shards, gmp, g, mode, e.ReadsPerSec, e.NsPerRead, e.LockFreeHits, e.SlowPathReads, e.SeqlockRetries)
		return e
	}

	var gmp1, gmp4, locked4 *coresEntry
	for _, shards := range []int{1, 4} {
		dev, err := authmem.NewSharded(cfg, shards)
		if err != nil {
			fatal(err)
		}
		if err := parPrefill(dev, addrs); err != nil {
			fatal(fmt.Errorf("cores prefill shards=%d: %w", shards, err))
		}
		for _, gmp := range gmps {
			e := cell(dev, shards, gmp, 4, true)
			if shards == 4 && gmp == 1 {
				gmp1 = &e
			}
			if shards == 4 && gmp == 4 {
				gmp4 = &e
			}
			le := cell(dev, shards, gmp, 4, false)
			if shards == 4 && gmp == 4 {
				locked4 = &le
			}
		}
		if shards == 4 && !quick {
			// Reader-count minor axis at full scheduler width.
			runtime.GOMAXPROCS(4)
			for _, g := range []int{1, 8} {
				cell(dev, shards, 4, g, true)
			}
		}
	}
	if gmp1 != nil && gmp4 != nil {
		rep.ScalingGMP4v1 = gmp4.ReadsPerSec / gmp1.ReadsPerSec
	}
	if gmp4 != nil && locked4 != nil {
		rep.LockFreeSpeedup = gmp4.ReadsPerSec / locked4.ReadsPerSec
	}
	fmt.Printf("  summary: gmp 1->4 scaling %.2fx (num_cpu=%d), lock-free vs locked %.2fx\n",
		rep.ScalingGMP4v1, rep.NumCPU, rep.LockFreeSpeedup)

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}
