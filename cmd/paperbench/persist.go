package main

// -persist: tracked incremental-persistence benchmark (BENCH_persist.json).
//
// The claim under test: AppendDelta is O(dirty groups) while Persist is
// O(region), so checkpointing a lightly-dirty region through the delta log
// should beat a full snapshot by orders of magnitude. The sweep dirties
// 0.1%, 1%, 10%, and 100% of the region's 4KB groups, measures one full
// Persist and one AppendDelta epoch at each point, and reports the time and
// byte ratios. The replay section then drives a 10k-op trace through epoch
// appends and times ResumeIncremental from base+log back to a root-verified
// engine — the recovery cost a daemon restart actually pays.

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"time"

	"authmem"
	"authmem/internal/stats"
)

// persistPoint is one dirty-fraction measurement in BENCH_persist.json.
type persistPoint struct {
	DirtyFraction float64 `json:"dirty_fraction"`
	DirtyGroups   int     `json:"dirty_groups"`
	FullNs        float64 `json:"full_persist_ns"`
	FullBytes     int64   `json:"full_persist_bytes"`
	DeltaNs       float64 `json:"delta_ns"`
	DeltaBytes    int64   `json:"delta_bytes"`
	SpeedupX      float64 `json:"speedup_x"`
	BytesRatioX   float64 `json:"bytes_ratio_x"`
}

type persistReplay struct {
	Ops          int     `json:"ops"`
	Epochs       int     `json:"epochs"`
	LogBytes     int64   `json:"log_bytes"`
	GroupRecords int     `json:"group_records"`
	ReplayNs     float64 `json:"replay_ns"`
	OpsPerSec    float64 `json:"replayed_ops_per_sec"`
	RootVerified bool    `json:"root_verified"`
}

type persistReport struct {
	Note string `json:"note"`
	benchEnv
	RegionBytes uint64         `json:"region_bytes"`
	GroupBytes  int            `json:"group_bytes"`
	Points      []persistPoint `json:"points"`
	Replay      persistReplay  `json:"replay"`
}

// countWriter measures what a persist path writes without buffering it.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func runPersistBench(outPath string, quick bool) {
	fmt.Println("=== Incremental persistence: AppendDelta vs full Persist ===")
	regionBytes := uint64(64 << 20)
	replayOps := 10_000
	runs := 5
	if quick {
		regionBytes = 8 << 20
		replayOps = 2_000
		runs = 2
	}
	const groupBytes = 64 * authmem.BlockSize // ctr.GroupBlocks
	totalGroups := int(regionBytes) / groupBytes

	cfg := authmem.DefaultConfig(regionBytes)
	cfg.Key = benchKeyMaterial()
	m, err := authmem.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := m.EnableWritePipeline(0); err != nil {
		fatal(err)
	}
	m.EnableDeltaTracking()

	// Prefill every group so a full Persist carries a fully-populated
	// region — the O(region) cost the delta path is measured against.
	rng := rand.New(rand.NewSource(42))
	blk := make([]byte, authmem.BlockSize)
	for g := 0; g < totalGroups; g++ {
		rng.Read(blk)
		if err := m.Write(uint64(g)*uint64(groupBytes), blk); err != nil {
			fatal(err)
		}
	}

	rep := persistReport{
		Note: "speedup_x is full-Persist time over one AppendDelta epoch at " +
			"the given dirty fraction, same engine, same run; bytes_ratio_x " +
			"compares image size to delta-epoch log growth. replay drives a " +
			"random write trace through epoch appends and times " +
			"ResumeIncremental (base + log -> root-verified engine).",
		benchEnv:    captureEnv(),
		RegionBytes: regionBytes,
		GroupBytes:  groupBytes,
	}

	// One full-persist measurement serves every point: its cost does not
	// depend on the dirty set. Best of `runs` to shed scheduler noise.
	fullNs, fullBytes := math.MaxFloat64, int64(0)
	for r := 0; r < runs; r++ {
		var cw countWriter
		start := time.Now()
		if _, err := m.Persist(&cw); err != nil {
			fatal(err)
		}
		if ns := float64(time.Since(start).Nanoseconds()); ns < fullNs {
			fullNs = ns
		}
		fullBytes = cw.n
	}

	dirtyAndAppend := func(frac float64) (float64, int64, int) {
		groups := int(float64(totalGroups) * frac)
		if groups < 1 {
			groups = 1
		}
		bestNs, deltaBytes, dirtied := math.MaxFloat64, int64(0), 0
		for r := 0; r < runs; r++ {
			// Drain marks left by earlier runs, then dirty exactly the
			// target groups (one block each — a group is dirty however
			// little of it changed).
			var cw countWriter
			dl, err := m.NewDeltaLog(&cw)
			if err != nil {
				fatal(err)
			}
			if _, err := m.AppendDelta(dl); err != nil {
				fatal(err)
			}
			stride := totalGroups / groups
			for g := 0; g < groups; g++ {
				rng.Read(blk)
				if err := m.Write(uint64(g*stride)*uint64(groupBytes), blk); err != nil {
					fatal(err)
				}
			}
			pre := cw.n
			start := time.Now()
			st, err := m.AppendDelta(dl)
			if err != nil {
				fatal(err)
			}
			if ns := float64(time.Since(start).Nanoseconds()); ns < bestNs {
				bestNs = ns
			}
			deltaBytes = cw.n - pre
			dirtied = st.Groups
		}
		return bestNs, deltaBytes, dirtied
	}

	for _, frac := range []float64{0.001, 0.01, 0.10, 1.0} {
		ns, db, groups := dirtyAndAppend(frac)
		p := persistPoint{
			DirtyFraction: frac,
			DirtyGroups:   groups,
			FullNs:        fullNs,
			FullBytes:     fullBytes,
			DeltaNs:       ns,
			DeltaBytes:    db,
			SpeedupX:      fullNs / ns,
			BytesRatioX:   float64(fullBytes) / float64(db),
		}
		rep.Points = append(rep.Points, p)
		fmt.Printf("  dirty %6.1f%% (%5d groups): full %8.2fms vs delta %8.3fms  (%7.1fx time, %7.1fx bytes)\n",
			frac*100, groups, fullNs/1e6, ns/1e6, p.SpeedupX, p.BytesRatioX)
	}

	rep.Replay = runReplayBench(cfg, replayOps)
	fmt.Printf("  replay: %d ops over %d epochs, %d group records, %.2fms (%.0f ops/s), root verified: %v\n",
		rep.Replay.Ops, rep.Replay.Epochs, rep.Replay.GroupRecords,
		rep.Replay.ReplayNs/1e6, rep.Replay.OpsPerSec, rep.Replay.RootVerified)

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// runReplayBench builds a base + multi-epoch delta log from a random write
// trace, then times the verified resume.
func runReplayBench(cfg authmem.Config, ops int) persistReplay {
	// A smaller region keeps the base-resume share modest so the number
	// reflects log replay, which is what scales with the trace.
	cfg.Size = 8 << 20
	m, err := authmem.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := m.EnableWritePipeline(0); err != nil {
		fatal(err)
	}
	m.EnableDeltaTracking()

	var base, log bytes.Buffer
	if _, err := m.Persist(&base); err != nil {
		fatal(err)
	}
	dl, err := m.NewDeltaLog(&log)
	if err != nil {
		fatal(err)
	}

	const epochs = 10
	perEpoch := ops / epochs
	rng := rand.New(rand.NewSource(99))
	blk := make([]byte, authmem.BlockSize)
	blocks := cfg.Size / authmem.BlockSize
	groupRecords := 0
	var pin authmem.RootDigest
	for e := 0; e < epochs; e++ {
		for i := 0; i < perEpoch; i++ {
			rng.Read(blk)
			addr := (uint64(rng.Intn(int(blocks)))) * authmem.BlockSize
			if err := m.Write(addr, blk); err != nil {
				fatal(err)
			}
		}
		st, err := m.AppendDelta(dl)
		if err != nil {
			fatal(err)
		}
		groupRecords += st.Groups
		pin = st.Root
	}

	start := time.Now()
	_, rp, err := authmem.ResumeIncremental(cfg, bytes.NewReader(base.Bytes()), bytes.NewReader(log.Bytes()), &pin)
	elapsed := time.Since(start)
	if err != nil {
		fatal(err)
	}
	return persistReplay{
		Ops:          epochs * perEpoch,
		Epochs:       rp.Epochs,
		LogBytes:     int64(log.Len()),
		GroupRecords: groupRecords,
		ReplayNs:     float64(elapsed.Nanoseconds()),
		OpsPerSec:    float64(epochs*perEpoch) / elapsed.Seconds(),
		RootVerified: rp.Status == authmem.RecoveryClean && rp.Root == pin,
	}
}
