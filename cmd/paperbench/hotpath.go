package main

// -hotpath: tracked hot-path benchmark baseline. Runs the engine's
// microbenchmarks (crypto primitives plus per-scheme read/write paths) via
// testing.Benchmark and writes BENCH_hotpath.json, so performance changes
// are reviewable in diffs like any other result. Entries carry the
// pre-optimization numbers (recorded at the seed revision of this
// repository, same shapes, single-core container) where available, and the
// derived speedup.

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"

	"authmem"
	"authmem/internal/gf64"
	"authmem/internal/keystream"
	"authmem/internal/mac"
	"authmem/internal/stats"
)

// hotEntry is one benchmark result in BENCH_hotpath.json.
type hotEntry struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"alloc_bytes_per_op"`
	BaselineNs   float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllo int64   `json:"baseline_allocs_per_op,omitempty"`
	Speedup      float64 `json:"speedup_x,omitempty"`
}

type hotReport struct {
	Note string `json:"note"`
	benchEnv
	Entries []hotEntry `json:"entries"`
}

// seedBaselines holds ns/op and allocs/op measured at the seed revision of
// this repository (pre table-driven GF(2^64), pre T-table AES, pre arena),
// same benchmark shapes, same container. Zero means "not recorded then".
var seedBaselines = map[string]struct {
	ns     float64
	allocs int64
}{
	"gf64.Mul":                  {101.4, 0},
	"gf64.Horner8":              {789.5, 0},
	"mac.Tag":                   {1989, 2},
	"keystream.XOR":             {4597, 2},
	"memory.Write/delta-macecc": {10098, 8},
	"memory.Read/delta-macecc":  {8799, 6},
}

func runHotpath(outPath string) {
	fmt.Println("=== Hot path: tracked microbenchmark baseline ===")
	rep := hotReport{
		Note: "Baseline columns were measured at the seed revision (before the " +
			"table-driven GF(2^64) MAC, T-table AES, keystream batching, and the " +
			"flat block arena) with identical benchmark shapes on the same machine.",
		benchEnv: captureEnv(),
	}
	add := func(name string, r testing.BenchmarkResult) {
		e := hotEntry{
			Name:        name,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if base, ok := seedBaselines[name]; ok {
			e.BaselineNs = base.ns
			e.BaselineAllo = base.allocs
			if e.NsPerOp > 0 {
				e.Speedup = base.ns / e.NsPerOp
			}
		}
		rep.Entries = append(rep.Entries, e)
		if e.Speedup > 0 {
			fmt.Printf("  %-28s %10.1f ns/op  %2d allocs/op  (%5.1fx vs seed)\n",
				name, e.NsPerOp, e.AllocsPerOp, e.Speedup)
		} else {
			fmt.Printf("  %-28s %10.1f ns/op  %2d allocs/op\n", name, e.NsPerOp, e.AllocsPerOp)
		}
	}

	add("gf64.Mul", testing.Benchmark(func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc = gf64.Mul(acc^0x0123456789ABCDEF, 0xFEDCBA9876543210)
		}
		sinkU64 = acc
	}))
	tbl := gf64.NewTable(0x0123456789ABCDEF)
	add("gf64.MulTable", testing.Benchmark(func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc = tbl.Mul(acc ^ 0xFEDCBA9876543210)
		}
		sinkU64 = acc
	}))
	msg := make([]byte, 64)
	rand.New(rand.NewSource(1)).Read(msg)
	words := make([]uint64, 8)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(msg[i*8:])
	}
	add("gf64.Horner8", testing.Benchmark(func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc ^= gf64.Horner(0x0123456789ABCDEF, words)
		}
		sinkU64 = acc
	}))

	key := benchKeyMaterial()
	mk, err := mac.NewKey(key[:24])
	if err != nil {
		fatal(err)
	}
	add("mac.Tag", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var acc uint64
		for i := 0; i < b.N; i++ {
			tag, err := mk.Tag(msg, 0x1000, uint64(i))
			if err != nil {
				b.Fatal(err)
			}
			acc ^= tag
		}
		sinkU64 = acc
	}))

	ks, err := keystream.New(key[24:40])
	if err != nil {
		fatal(err)
	}
	buf := make([]byte, keystream.BlockSize)
	add("keystream.XOR", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ks.XOR(buf, buf, 0x2000, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	group := make([]byte, 64*keystream.BlockSize)
	add("keystream.XORBlocks64", testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ks.XORBlocks(group, group, 0, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}))

	points := []struct {
		name      string
		scheme    authmem.CounterScheme
		placement authmem.MACPlacement
	}{
		{"mono-inline", authmem.Monolithic, authmem.InlineMAC},
		{"mono-macecc", authmem.Monolithic, authmem.MACInECC},
		{"split-macecc", authmem.SplitCounter, authmem.MACInECC},
		{"delta-inline", authmem.DeltaEncoding, authmem.InlineMAC},
		{"delta-macecc", authmem.DeltaEncoding, authmem.MACInECC},
		{"dual-macecc", authmem.DualLengthDelta, authmem.MACInECC},
	}
	for _, p := range points {
		newMem := func() *authmem.Memory {
			cfg := authmem.DefaultConfig(1 << 20)
			cfg.Scheme = p.scheme
			cfg.Placement = p.placement
			cfg.Key = key
			m, err := authmem.New(cfg)
			if err != nil {
				fatal(err)
			}
			return m
		}
		const blocks = 1024
		add("memory.Write/"+p.name, testing.Benchmark(func(b *testing.B) {
			m := newMem()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Write(uint64(i%blocks)*authmem.BlockSize, msg); err != nil {
					b.Fatal(err)
				}
			}
		}))
		add("memory.Read/"+p.name, testing.Benchmark(func(b *testing.B) {
			m := newMem()
			for i := 0; i < blocks; i++ {
				if err := m.Write(uint64(i)*authmem.BlockSize, msg); err != nil {
					b.Fatal(err)
				}
			}
			dst := make([]byte, authmem.BlockSize)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(uint64(i%blocks)*authmem.BlockSize, dst); err != nil {
					b.Fatal(err)
				}
			}
		}))
		span := make([]byte, 64*authmem.BlockSize)
		rand.New(rand.NewSource(6)).Read(span)
		add("memory.WriteBlocks/"+p.name, testing.Benchmark(func(b *testing.B) {
			m := newMem()
			b.ReportAllocs()
			b.SetBytes(int64(len(span)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := uint64(i%16) * uint64(len(span))
				if err := m.WriteBlocks(addr, span); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	if err := stats.WriteJSON(outPath, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", outPath)
}

// sinkU64 defeats dead-code elimination in the primitive loops.
var sinkU64 uint64

func benchKeyMaterial() []byte {
	k := make([]byte, authmem.KeySize)
	for i := range k {
		k[i] = byte(i + 1)
	}
	return k
}
