// Durable mode: -wal <dir> keeps the served region on disk as a base
// snapshot plus per-shard delta logs, checkpointed in the background at
// -checkpoint-interval. A restart replays the logs through the verified
// resume path and refuses to start on rollback — the daemon never silently
// serves stale state.
//
// Directory layout (one generation live at a time):
//
//	base-<gen>.img        sharded base image
//	wal-<gen>-<shard>.log sealed delta log, one per shard
//	MANIFEST              sealed pin: generation + per-shard (epoch, root)
//
// The manifest is the trust anchor. It is HMAC-sealed under a key derived
// from the device secret and rewritten (write-temp, fsync, rename, fsync
// dir) after every checkpoint epoch, so its per-shard (epoch, root) pins
// always name durable log state. Recovery accepts a log with MORE committed
// epochs than the manifest pins (a crash between log fsync and manifest
// rename) but refuses fewer or a different root — that is a rollback.
//
// Writers never append to a recovered log: startup always folds into a
// fresh generation (new base, empty logs, manifest at epoch 0), so every
// log is written by exactly one process start. The background loop appends
// an epoch per interval when dirty groups exist and folds into a new
// generation when the logs outgrow the fold threshold.
package main

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"authmem"
)

var manifestMagic = [8]byte{'A', 'M', 'E', 'M', 'M', 'A', 'N', '1'}

const manifestName = "MANIFEST"

// manifest is the sealed durable pin: which generation's files are live and
// how many epochs of each shard's log are trusted, with the root each pin
// must hash to.
type manifest struct {
	Gen    uint64
	Epochs []uint64             // committed epochs per shard
	Roots  []authmem.RootDigest // root at Epochs[i] per shard
}

func manifestKey(deviceKey []byte) []byte {
	h := sha256.New()
	h.Write([]byte("authmem/manifest/seal/v1"))
	h.Write(deviceKey)
	return h.Sum(nil)
}

func (m *manifest) marshal(key []byte) []byte {
	var buf bytes.Buffer
	buf.Write(manifestMagic[:])
	var u [8]byte
	binary.LittleEndian.PutUint64(u[:], m.Gen)
	buf.Write(u[:])
	binary.LittleEndian.PutUint64(u[:], uint64(len(m.Epochs)))
	buf.Write(u[:])
	for i := range m.Epochs {
		binary.LittleEndian.PutUint64(u[:], m.Epochs[i])
		buf.Write(u[:])
		buf.Write(m.Roots[i][:])
	}
	mac := hmac.New(sha256.New, key)
	mac.Write(buf.Bytes())
	buf.Write(mac.Sum(nil))
	return buf.Bytes()
}

var errManifestSeal = errors.New("manifest seal verification failed (wrong key or tampered pin)")

func parseManifest(data, key []byte) (*manifest, error) {
	if len(data) < 8+8+8+sha256.Size {
		return nil, fmt.Errorf("manifest too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:8], manifestMagic[:]) {
		return nil, fmt.Errorf("bad manifest magic")
	}
	body, seal := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	mac := hmac.New(sha256.New, key)
	mac.Write(body)
	if !hmac.Equal(mac.Sum(nil), seal) {
		return nil, errManifestSeal
	}
	m := &manifest{Gen: binary.LittleEndian.Uint64(body[8:16])}
	shards := binary.LittleEndian.Uint64(body[16:24])
	want := 24 + int(shards)*(8+len(authmem.RootDigest{}))
	if shards > 1<<16 || len(body) != want {
		return nil, fmt.Errorf("manifest body %d bytes, want %d for %d shards", len(body), want, shards)
	}
	off := 24
	for i := 0; i < int(shards); i++ {
		m.Epochs = append(m.Epochs, binary.LittleEndian.Uint64(body[off:off+8]))
		var r authmem.RootDigest
		copy(r[:], body[off+8:off+8+len(r)])
		m.Roots = append(m.Roots, r)
		off += 8 + len(r)
	}
	return m, nil
}

// writeManifest commits the pin atomically: temp file, fsync, rename over
// MANIFEST, fsync the directory. Everything the manifest points at must be
// durable before this is called.
func writeManifest(dir string, m *manifest, key []byte) error {
	path := filepath.Join(dir, manifestName)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(m.marshal(key)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func basePath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("base-%d.img", gen))
}

func walPath(dir string, gen uint64, shard int) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d-%d.log", gen, shard))
}

// rootAt returns a recovered shard's root after `epochs` committed epochs.
func rootAt(rep *authmem.RecoveryReport, epochs uint64) (authmem.RootDigest, bool) {
	if epochs == 0 {
		return rep.BaseRoot, true
	}
	if int(epochs) > len(rep.EpochRoots) {
		return authmem.RootDigest{}, false
	}
	return rep.EpochRoots[epochs-1], true
}

type durableOptions struct {
	dir       string
	interval  time.Duration
	foldBytes int64 // fold when logs exceed this; 0 = max(base/4, 1MB)
	logf      func(format string, args ...any)
}

// durableStore owns the on-disk generation behind a ShardedMemory: the open
// log files, the epoch/root pins, and the fold machinery. All disk-side
// state is guarded by mu; the memory itself takes its own shard locks.
type durableStore struct {
	mem  *authmem.ShardedMemory
	opts durableOptions
	key  []byte // manifest seal key

	mu      sync.Mutex
	gen     uint64
	baseLen int64
	logFs   []*os.File
	logs    []*authmem.DeltaLog
	man     *manifest
	closed  bool
}

// openDurable builds (or recovers) the region from opts.dir and leaves it
// checkpointed into a fresh generation with open, empty delta logs.
func openDurable(cfg authmem.Config, shards int, opts durableOptions) (*durableStore, error) {
	if opts.logf == nil {
		opts.logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(opts.dir, 0o755); err != nil {
		return nil, err
	}
	d := &durableStore{opts: opts, key: manifestKey(cfg.Key)}

	manData, err := os.ReadFile(filepath.Join(opts.dir, manifestName))
	switch {
	case errors.Is(err, os.ErrNotExist):
		opts.logf("durable: no manifest in %s, starting fresh", opts.dir)
		mem, err := authmem.NewSharded(cfg, shards)
		if err != nil {
			return nil, err
		}
		mem.EnableDeltaTracking()
		d.mem = mem
	case err != nil:
		return nil, err
	default:
		man, err := parseManifest(manData, d.key)
		if err != nil {
			return nil, fmt.Errorf("durable: %w", err)
		}
		if len(man.Epochs) != shards {
			return nil, fmt.Errorf("durable: manifest pins %d shards, daemon configured for %d", len(man.Epochs), shards)
		}
		mem, err := d.recover(cfg, shards, man)
		if err != nil {
			return nil, err
		}
		d.mem = mem
		d.gen = man.Gen
	}

	// Fold into a fresh generation so this process start owns its logs
	// end to end — recovered logs are never appended to.
	if err := d.checkpoint(); err != nil {
		return nil, fmt.Errorf("durable: initial checkpoint: %w", err)
	}
	return d, nil
}

// recover resumes the manifest's generation through the verified incremental
// path, then checks every shard's recovered history against the sealed pins.
func (d *durableStore) recover(cfg authmem.Config, shards int, man *manifest) (*authmem.ShardedMemory, error) {
	base, err := os.Open(basePath(d.opts.dir, man.Gen))
	if err != nil {
		return nil, fmt.Errorf("durable: manifest names generation %d but %w", man.Gen, err)
	}
	defer base.Close()
	wals := make([]io.Reader, shards)
	for i := 0; i < shards; i++ {
		f, err := os.Open(walPath(d.opts.dir, man.Gen, i))
		if errors.Is(err, os.ErrNotExist) {
			continue // shard never got a log written; pin must be epoch 0
		}
		if err != nil {
			return nil, err
		}
		defer f.Close()
		wals[i] = f
	}

	mem, reports, err := authmem.ResumeShardedIncremental(cfg, shards, base, wals, nil)
	if err != nil {
		return nil, fmt.Errorf("durable: recovery refused: %w", err)
	}
	for i, rep := range reports {
		// The log may run ahead of the manifest (crash between log fsync
		// and manifest rename): extra sealed epochs are trusted. Fewer
		// epochs than the pin, or a different root at the pinned epoch,
		// is a rollback and the daemon refuses to serve.
		if uint64(rep.Epochs) < man.Epochs[i] {
			return nil, fmt.Errorf("durable: shard %d recovered only %d epochs, manifest pins %d — rollback", i, rep.Epochs, man.Epochs[i])
		}
		got, ok := rootAt(rep, man.Epochs[i])
		if !ok || got != man.Roots[i] {
			return nil, fmt.Errorf("durable: shard %d root at pinned epoch %d does not match manifest — rollback", i, man.Epochs[i])
		}
		if rep.Status != authmem.RecoveryClean || uint64(rep.Epochs) > man.Epochs[i] {
			d.opts.logf("durable: shard %d: %s, %d epochs (%d pinned), %d groups, %d dropped %s",
				i, rep.Status, rep.Epochs, man.Epochs[i], rep.Groups, rep.Dropped, rep.Reason)
		}
	}
	d.opts.logf("durable: recovered generation %d (%d shards) to verified roots", man.Gen, shards)
	return mem, nil
}

// checkpoint folds the whole region into a new generation: fresh base image,
// fresh empty logs, manifest pinned at epoch 0. Shards are persisted one at
// a time under their own locks, so traffic on other shards keeps flowing.
// Caller must NOT hold d.mu... it is taken here.
func (d *durableStore) checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *durableStore) checkpointLocked() error {
	gen := d.gen + 1
	shards := d.mem.Shards()
	baseF, err := os.Create(basePath(d.opts.dir, gen))
	if err != nil {
		return err
	}
	if err := d.mem.BeginShardedImage(baseF); err != nil {
		baseF.Close()
		return err
	}
	newLogFs := make([]*os.File, shards)
	newLogs := make([]*authmem.DeltaLog, shards)
	man := &manifest{Gen: gen, Epochs: make([]uint64, shards), Roots: make([]authmem.RootDigest, shards)}
	fail := func(err error) error {
		baseF.Close()
		for _, f := range newLogFs {
			if f != nil {
				f.Close()
			}
		}
		return err
	}
	for i := 0; i < shards; i++ {
		logF, err := os.Create(walPath(d.opts.dir, gen, i))
		if err != nil {
			return fail(err)
		}
		newLogFs[i] = logF
		root, dl, err := d.mem.CheckpointShard(i, baseF, logF)
		if err != nil {
			return fail(err)
		}
		newLogs[i] = dl
		man.Roots[i] = root
		if err := logF.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := baseF.Sync(); err != nil {
		return fail(err)
	}
	baseLen, err := baseF.Seek(0, io.SeekCurrent)
	if err != nil {
		return fail(err)
	}
	if err := baseF.Close(); err != nil {
		return fail(err)
	}
	// The new generation is durable; the manifest rename is the commit
	// point. A crash before it leaves the old generation live and the new
	// files inert (they are recreated with O_TRUNC next time).
	if err := writeManifest(d.opts.dir, man, d.key); err != nil {
		for _, f := range newLogFs {
			f.Close()
		}
		return err
	}
	oldGen, oldLogs := d.gen, d.logFs
	d.gen, d.man, d.baseLen = gen, man, baseLen
	d.logFs, d.logs = newLogFs, newLogs
	for _, f := range oldLogs {
		if f != nil {
			f.Close()
		}
	}
	d.pruneLocked(oldGen)
	d.opts.logf("durable: checkpointed generation %d (%d bytes base)", gen, baseLen)
	return nil
}

// pruneLocked removes superseded generation files; best effort.
func (d *durableStore) pruneLocked(oldGen uint64) {
	if oldGen == d.gen {
		return
	}
	os.Remove(basePath(d.opts.dir, oldGen))
	for i := 0; i < d.mem.Shards(); i++ {
		os.Remove(walPath(d.opts.dir, oldGen, i))
	}
}

// appendEpoch seals one delta epoch across all shards and re-pins the
// manifest. When nothing is dirty it is a no-op — the logs and manifest
// already name current state. When the logs outgrow the fold threshold the
// epoch is taken as a full checkpoint instead.
func (d *durableStore) appendEpoch() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errors.New("durable: store closed")
	}
	if d.mem.DirtyGroups() == 0 {
		return nil
	}
	threshold := d.opts.foldBytes
	if threshold <= 0 {
		threshold = d.baseLen / 4
		if threshold < 1<<20 {
			threshold = 1 << 20
		}
	}
	var logBytes int64
	for _, l := range d.logs {
		logBytes += l.Offset()
	}
	if logBytes >= threshold {
		return d.checkpointLocked()
	}

	man := &manifest{Gen: d.gen, Epochs: make([]uint64, len(d.logs)), Roots: make([]authmem.RootDigest, len(d.logs))}
	var groups int
	for i, l := range d.logs {
		st, err := d.mem.AppendDeltaShard(i, l)
		if err != nil {
			return fmt.Errorf("durable: shard %d append: %w", i, err)
		}
		if err := d.logFs[i].Sync(); err != nil {
			return err
		}
		man.Epochs[i] = st.Epoch + 1
		man.Roots[i] = st.Root
		groups += st.Groups
	}
	if err := writeManifest(d.opts.dir, man, d.key); err != nil {
		return err
	}
	d.man = man
	d.opts.logf("durable: epoch sealed (%d dirty groups, logs %d bytes)", groups, logBytes)
	return nil
}

// run is the background checkpoint loop; it exits when stop is closed.
func (d *durableStore) run(stop <-chan struct{}) {
	t := time.NewTicker(d.opts.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := d.appendEpoch(); err != nil {
				d.opts.logf("durable: checkpoint epoch failed: %v", err)
			}
		case <-stop:
			return
		}
	}
}

// close seals a final epoch (the drain already quiesced traffic), commits
// the manifest, and closes the log files.
func (d *durableStore) close() error {
	if err := d.appendEpoch(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	var firstErr error
	for _, f := range d.logFs {
		if f != nil {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	d.logFs = nil
	return firstErr
}
