package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"authmem"
	"authmem/internal/wal"
)

func durableTestConfig(t *testing.T) authmem.Config {
	t.Helper()
	cfg := authmem.DefaultConfig(1 << 20)
	cfg.Key = bytes.Repeat([]byte{0x5a}, authmem.KeySize)
	return cfg
}

func durableBlock(seed byte) []byte {
	b := make([]byte, authmem.BlockSize)
	for i := range b {
		b[i] = seed ^ byte(i*7)
	}
	return b
}

// writeSpread writes distinct blocks across all four shards and returns the
// address -> content oracle.
func writeSpread(t *testing.T, mem *authmem.ShardedMemory, seed byte, n int) map[uint64][]byte {
	t.Helper()
	oracle := make(map[uint64][]byte)
	shardSize := mem.ShardSize()
	for i := 0; i < n; i++ {
		addr := uint64(i%4)*shardSize + uint64(i/4)*authmem.BlockSize
		blk := durableBlock(seed + byte(i))
		if err := mem.Write(addr, blk); err != nil {
			t.Fatalf("write %#x: %v", addr, err)
		}
		oracle[addr] = blk
	}
	return oracle
}

func checkOracle(t *testing.T, mem *authmem.ShardedMemory, oracle map[uint64][]byte) {
	t.Helper()
	buf := make([]byte, authmem.BlockSize)
	for addr, want := range oracle {
		if _, err := mem.Read(addr, buf); err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %#x did not survive the durability cycle", addr)
		}
	}
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	opts := durableOptions{dir: dir, interval: time.Second}

	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := writeSpread(t, d.mem, 1, 64)
	if err := d.appendEpoch(); err != nil {
		t.Fatal(err)
	}
	// More traffic after the sealed epoch; close() must fold it in too.
	for addr, blk := range writeSpread(t, d.mem, 101, 32) {
		oracle[addr] = blk
	}
	root := d.mem.RootDigest()
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	d2, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := d2.mem.RootDigest(); got != root {
		t.Fatal("recovered root differs from the root at shutdown")
	}
	checkOracle(t, d2.mem, oracle)
	// The reopen folded into a fresh generation: exactly one base image on
	// disk, and its logs are writable going forward.
	imgs, _ := filepath.Glob(filepath.Join(dir, "base-*.img"))
	if len(imgs) != 1 {
		t.Fatalf("found %d base images after fold, want 1: %v", len(imgs), imgs)
	}
	writeSpread(t, d2.mem, 200, 8)
	if err := d2.close(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableFoldsWhenLogsGrow(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	// Absurdly low threshold: the second epoch must trigger a fold.
	opts := durableOptions{dir: dir, interval: time.Second, foldBytes: 1}

	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	gen0 := d.gen
	oracle := writeSpread(t, d.mem, 7, 48)
	if err := d.appendEpoch(); err != nil {
		t.Fatal(err)
	}
	for addr, blk := range writeSpread(t, d.mem, 9, 4) {
		oracle[addr] = blk
	}
	if err := d.appendEpoch(); err != nil {
		t.Fatal(err)
	}
	if d.gen == gen0 {
		t.Fatal("fold threshold never triggered a new generation")
	}
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	d2, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatalf("reopen after fold: %v", err)
	}
	checkOracle(t, d2.mem, oracle)
	d2.close()
}

func TestDurableTamperedManifestRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	opts := durableOptions{dir: dir, interval: time.Second}
	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	writeSpread(t, d.mem, 3, 16)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x01 // inside the sealed body
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openDurable(cfg, 4, opts); !errors.Is(err, errManifestSeal) {
		t.Fatalf("tampered manifest: got %v, want seal failure", err)
	}
}

func TestDurableRollbackRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	opts := durableOptions{dir: dir, interval: time.Second}
	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	writeSpread(t, d.mem, 5, 64) // dirties all four shards
	if err := d.appendEpoch(); err != nil {
		t.Fatal(err)
	}
	gen := d.gen
	if err := d.close(); err != nil {
		t.Fatal(err)
	}

	// Roll shard 0's log back to empty while the manifest pins epoch >= 1:
	// a classic replay-old-state attack. The daemon must refuse to start.
	if err := os.Truncate(walPath(dir, gen, 0), int64(wal.HeaderSize)); err != nil {
		t.Fatal(err)
	}
	_, err = openDurable(cfg, 4, opts)
	if err == nil {
		t.Fatal("rolled-back shard log accepted")
	}
	if !strings.Contains(err.Error(), "rollback") {
		t.Fatalf("want a rollback refusal, got: %v", err)
	}
}

func TestDurableStaleManifestAccepted(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	opts := durableOptions{dir: dir, interval: time.Second}
	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	oracle := writeSpread(t, d.mem, 11, 64)
	if err := d.appendEpoch(); err != nil {
		t.Fatal(err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	for addr, blk := range writeSpread(t, d.mem, 77, 64) {
		oracle[addr] = blk
	}
	root := d.mem.RootDigest()
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	// Crash window: logs carry epoch 2 but the manifest rename never
	// happened. Extra sealed epochs beyond the pin are trusted — recovery
	// lands on the LOG's newest state, not the manifest's older pin.
	if err := os.WriteFile(filepath.Join(dir, manifestName), stale, 0o644); err != nil {
		t.Fatal(err)
	}
	d2, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatalf("stale manifest (log ahead) refused: %v", err)
	}
	if got := d2.mem.RootDigest(); got != root {
		t.Fatal("recovery with a stale manifest did not reach the newest sealed epoch")
	}
	checkOracle(t, d2.mem, oracle)
	d2.close()
}

func TestDurableWrongKeyRefused(t *testing.T) {
	dir := t.TempDir()
	cfg := durableTestConfig(t)
	opts := durableOptions{dir: dir, interval: time.Second}
	d, err := openDurable(cfg, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	writeSpread(t, d.mem, 13, 16)
	if err := d.close(); err != nil {
		t.Fatal(err)
	}
	bad := cfg
	bad.Key = bytes.Repeat([]byte{0xa5}, authmem.KeySize)
	if _, err := openDurable(bad, 4, opts); err == nil {
		t.Fatal("wrong device key accepted")
	}
}
