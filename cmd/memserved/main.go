// Command memserved serves an authenticated, encrypted memory region over
// TCP using the internal/wire protocol. It is the daemon half of the
// client package: readers and writers connect, pipeline block requests, and
// get the engine's integrity verdicts (MAC_FAIL, QUARANTINED, RECOVERED,
// OVERFLOW_SWEPT) as first-class wire statuses.
//
// Serve a 64MB region on the default port:
//
//	memserved -dev-key -addr :7348
//
// SIGINT/SIGTERM trigger a graceful drain: in-flight requests complete,
// connections close, and the region reaches its FlushAll quiescent point
// before the process exits.
//
// The -connect mode is a smoke client (used by CI): it dials a running
// daemon, pushes pipelined writes, reads them back through the verifying
// path, flushes, and exits non-zero on any mismatch.
package main

import (
	"bytes"
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"authmem"
	"authmem/client"
	"authmem/cluster"
	"authmem/internal/ecc"
	"authmem/internal/server"
	"authmem/internal/wire"
)

func main() {
	var (
		addr      = flag.String("addr", ":7348", "TCP listen address (serve mode) ")
		nodeID    = flag.String("node-id", "", "stable node identity reported in the HELLO handshake (cluster placement hashes it; default: random)")
		size      = flag.Uint64("size", 64<<20, "protected region size in bytes")
		shards    = flag.Int("shards", 4, "shard count (power of two; 1 = single locked engine)")
		scheme    = flag.String("scheme", "delta", "counter scheme: delta, split, or mono")
		eccCodec  = flag.String("ecc", "", "ECC codec: macsecded, secded, or residue (non-MAC codecs imply inline MAC placement; default: $AUTHMEM_ECC_CODEC, then macsecded)")
		crypto    = flag.String("crypto", "", "crypto backend: ttable, stdlib, or batch8 (default: $AUTHMEM_CRYPTO_BACKEND, then ttable)")
		keyHex    = flag.String("key-hex", "", "device key, hex-encoded (40 bytes)")
		devKey    = flag.Bool("dev-key", false, "use a fixed all-zeros development key (NOT for real data)")
		inflight  = flag.Int("inflight", 64, "per-connection in-flight request cap")
		workers   = flag.Int("workers", 0, "engine worker pool size (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request queue deadline (0 disables)")
		drain     = flag.Duration("drain-grace", 200*time.Millisecond, "drain window for pipelined requests at shutdown")
		sweep     = flag.Bool("sweep-status", false, "report counter-overflow sweeps as OVERFLOW_SWEPT")
		statsEach = flag.Duration("stats-every", 0, "log a stats snapshot at this interval (0 disables)")
		walDir    = flag.String("wal", "", "durable mode: directory for base snapshot + sealed delta logs (empty disables)")
		ckptEvery = flag.Duration("checkpoint-interval", 5*time.Second, "durable mode: background delta-epoch interval")
		foldBytes = flag.Int64("fold-bytes", 0, "durable mode: fold logs into a new base beyond this many bytes (0 = base/4)")

		connect    = flag.String("connect", "", "smoke-client mode: dial this address instead of serving")
		smokeConns = flag.Int("smoke-conns", 2, "smoke client: pooled connections")
		smokeOps   = flag.Int("smoke-ops", 256, "smoke client: write+read pairs per worker")

		clusterConnect = flag.String("cluster-connect", "", "cluster smoke mode: comma-separated name=addr members to stripe across (name must match each node's -node-id)")
		clusterPhase   = flag.String("cluster-phase", "write", "cluster smoke phase: write (populate+verify+attest) or verify (re-read the write phase's pattern, tolerating a downed node)")
	)
	flag.Parse()
	log.SetPrefix("memserved: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	if *clusterConnect != "" {
		if err := runClusterSmoke(*clusterConnect, *clusterPhase, *smokeOps); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *connect != "" {
		if err := runSmoke(*connect, *smokeConns, *smokeOps); err != nil {
			log.Fatal(err)
		}
		return
	}

	key, err := resolveKey(*keyHex, *devKey)
	if err != nil {
		log.Fatal(err)
	}
	var (
		backend server.Backend
		desc    string
		store   *durableStore
	)
	if *walDir != "" {
		// Durable mode always runs the sharded backend (a 1-shard region
		// is valid) so the checkpoint machinery has one code path.
		cfg, eccDesc, cryptoDesc, err := buildMemConfig(*size, *scheme, *eccCodec, *crypto, key)
		if err != nil {
			log.Fatal(err)
		}
		if *shards < 1 {
			log.Fatalf("-shards: %d", *shards)
		}
		store, err = openDurable(cfg, *shards, durableOptions{
			dir:       *walDir,
			interval:  *ckptEvery,
			foldBytes: *foldBytes,
			logf:      log.Printf,
		})
		if err != nil {
			log.Fatal(err)
		}
		backend = store.mem
		desc = fmt.Sprintf("%dMB %s region across %d shards (%s ecc, %s), durable in %s every %v",
			*size>>20, *scheme, *shards, eccDesc, cryptoDesc, *walDir, *ckptEvery)
	} else {
		backend, desc, err = buildBackend(*size, *shards, *scheme, *eccCodec, *crypto, key)
		if err != nil {
			log.Fatal(err)
		}
	}

	cfg := server.Config{
		Backend:        backend,
		NodeID:         *nodeID,
		MaxInflight:    *inflight,
		Workers:        *workers,
		RequestTimeout: *timeout,
		DrainGrace:     *drain,
		SweepStatus:    *sweep,
		Logf:           log.Printf,
	}
	if *timeout == 0 {
		cfg.RequestTimeout = -1
	}
	if *statsEach > 0 {
		cfg.MetricsInterval = *statsEach
		cfg.OnMetrics = func(snap wire.StatsSnapshot) {
			log.Printf("stats: reads=%d writes=%d blocks_r=%d blocks_w=%d busy=%d macfail=%d quarantined=%d recovered=%d conns=%d",
				snap.Server.ReadOps, snap.Server.WriteOps,
				snap.Server.BlocksRead, snap.Server.BlocksWritten,
				snap.Server.BusyRejected, snap.Server.MACFails,
				snap.Server.Quarantined, snap.Server.Recovered,
				snap.Server.ConnsOpened-snap.Server.ConnsClosed)
		}
	}
	srv, err := server.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()
	var stopCkpt chan struct{}
	if store != nil {
		stopCkpt = make(chan struct{})
		go store.run(stopCkpt)
	}
	log.Printf("serving %s on %s (%d-byte blocks, protocol v%d)", desc, *addr, wire.BlockBytes, wire.Version)

	select {
	case sig := <-sigCh:
		log.Printf("%v: draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-serveErr; err != nil && err != server.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
		if store != nil {
			// Traffic is quiesced; seal what the drain left dirty so the
			// manifest pins the exact final state.
			close(stopCkpt)
			if err := store.close(); err != nil {
				log.Fatalf("final checkpoint: %v", err)
			}
			log.Printf("final epoch sealed; manifest pinned")
		}
		log.Printf("drained to quiescent point; bye")
	case err := <-serveErr:
		log.Fatalf("serve: %v", err)
	}
}

func resolveKey(keyHex string, devKey bool) ([]byte, error) {
	switch {
	case keyHex != "":
		key, err := hex.DecodeString(keyHex)
		if err != nil {
			return nil, fmt.Errorf("-key-hex: %w", err)
		}
		if len(key) != authmem.KeySize {
			return nil, fmt.Errorf("-key-hex: got %d bytes, want %d", len(key), authmem.KeySize)
		}
		return key, nil
	case devKey:
		return make([]byte, authmem.KeySize), nil
	default:
		return nil, fmt.Errorf("a key is required: pass -key-hex (%d bytes) or -dev-key", authmem.KeySize)
	}
}

// buildMemConfig resolves the flag surface into an authmem.Config plus the
// human-readable codec/crypto labels used in the serve banner.
func buildMemConfig(size uint64, scheme, eccCodec, crypto string, key []byte) (authmem.Config, string, string, error) {
	cfg := authmem.DefaultConfig(size)
	cfg.Key = key
	cfg.CryptoBackend = crypto
	switch scheme {
	case "delta":
		cfg.Scheme = authmem.DeltaEncoding
	case "split":
		cfg.Scheme = authmem.SplitCounter
	case "mono":
		cfg.Scheme = authmem.Monolithic
	default:
		return cfg, "", "", fmt.Errorf("-scheme: unknown scheme %q (want delta, split, or mono)", scheme)
	}
	eccDesc := "macsecded"
	if eccCodec != "" {
		// The codec decides the placement: a block codec (secded, residue)
		// stores check bytes beside inline MAC tags, macsecded carries the
		// MAC inside the ECC lane.
		cod, err := ecc.Lookup(eccCodec)
		if err != nil {
			return cfg, "", "", fmt.Errorf("-ecc: %w", err)
		}
		cfg.ECCCodec = eccCodec
		if cod.CarriesMAC() {
			cfg.Placement = authmem.MACInECC
		} else {
			cfg.Placement = authmem.InlineMAC
		}
		eccDesc = cod.Name()
	}
	if crypto == "" {
		crypto = "default crypto"
	} else {
		crypto += " crypto"
	}
	return cfg, eccDesc, crypto, nil
}

func buildBackend(size uint64, shards int, scheme, eccCodec, crypto string, key []byte) (server.Backend, string, error) {
	cfg, eccDesc, crypto, err := buildMemConfig(size, scheme, eccCodec, crypto, key)
	if err != nil {
		return nil, "", err
	}
	if shards > 1 {
		m, err := authmem.NewSharded(cfg, shards)
		if err != nil {
			return nil, "", err
		}
		return m, fmt.Sprintf("%dMB %s region across %d shards (%s ecc, %s)", size>>20, scheme, shards, eccDesc, crypto), nil
	}
	m, err := authmem.NewSync(cfg)
	if err != nil {
		return nil, "", err
	}
	return m, fmt.Sprintf("%dMB %s region (single engine, %s ecc, %s)", size>>20, scheme, eccDesc, crypto), nil
}

// runClusterSmoke is the CI cluster smoke client. The write phase stripes a
// deterministic pattern across the members, reads every span back through
// the quorum path, and attests the combined root. The verify phase re-reads
// the same pattern — typically after CI has killed one member — and passes
// as long as every quorum read still returns the exact pattern, degraded or
// not; any wrong byte or unresolved read fails it.
func runClusterSmoke(spec, phase string, ops int) error {
	var nodes []cluster.Node
	for _, part := range strings.Split(spec, ",") {
		name, addr, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" || addr == "" {
			return fmt.Errorf("-cluster-connect: %q is not name=addr", part)
		}
		nodes = append(nodes, cluster.Node{Name: name, Addr: addr})
	}
	const (
		region     = 8 << 20
		spanBlocks = 8
	)
	cl, err := cluster.New(cluster.Options{
		Nodes:  nodes,
		Size:   region,
		Client: client.Options{Conns: 2, MaxInflight: 32},
		// The verify phase runs after CI killed a member: reads must
		// still verify through the surviving quorum.
		AllowDead: phase == "verify",
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	span := spanBlocks * wire.BlockBytes
	if ops*span > region {
		ops = region / span
	}
	pattern := func(i int, buf []byte) {
		for j := range buf {
			buf[j] = byte(i*131 + j*7 + 5)
		}
	}
	want := make([]byte, span)
	got := make([]byte, span)
	start := time.Now()

	if phase == "write" {
		for i := 0; i < ops; i++ {
			pattern(i, want)
			if _, err := cl.Write(uint64(i*span), want); err != nil {
				return fmt.Errorf("cluster write %d: %w", i, err)
			}
		}
	}
	var degraded, outvoted int
	for i := 0; i < ops; i++ {
		pattern(i, want)
		info, err := cl.Read(uint64(i*span), got)
		if err != nil {
			return fmt.Errorf("cluster read %d: %w", i, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("cluster read %d: payload mismatch (verdict %s)", i, info.Verdict)
		}
		if info.Degraded {
			degraded++
		}
		if info.Verdict != cluster.VerdictClean {
			outvoted++
		}
	}
	switch phase {
	case "write":
		att, err := cl.Attest()
		if err != nil {
			return fmt.Errorf("attest: %w", err)
		}
		log.Printf("cluster smoke OK (%s): %d spans across %d nodes in %v; combined root %x",
			phase, ops, len(nodes), time.Since(start).Round(time.Millisecond), att.Combined[:8])
	case "verify":
		st := cl.Stats()
		log.Printf("cluster smoke OK (%s): %d spans verified in %v; degraded=%d outvoted=%d repairs=%d",
			phase, ops, time.Since(start).Round(time.Millisecond), degraded, outvoted, st.Repairs)
	default:
		return fmt.Errorf("-cluster-phase: %q (want write or verify)", phase)
	}
	return nil
}

// runSmoke is the CI smoke client: concurrent workers pipeline writes and
// verifying reads over a pooled connection, then flush and fetch stats.
func runSmoke(addr string, conns, ops int) error {
	c, err := client.New(client.Options{Addr: addr, Conns: conns, MaxInflight: 32})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, wire.BlockBytes)
			data := make([]byte, wire.BlockBytes)
			base := uint64(w) * 1 << 20
			for i := 0; i < ops; i++ {
				addr := base + uint64(i%1024)*wire.BlockBytes
				for j := range data {
					data[j] = byte(w*131 + i + j)
				}
				if _, err := c.Write(addr, data); err != nil {
					errCh <- fmt.Errorf("worker %d write %#x: %w", w, addr, err)
					return
				}
				if _, err := c.Read(addr, buf); err != nil {
					errCh <- fmt.Errorf("worker %d read %#x: %w", w, addr, err)
					return
				}
				for j := range buf {
					if buf[j] != data[j] {
						errCh <- fmt.Errorf("worker %d: byte %d mismatch at %#x", w, j, addr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}
	if err := c.Flush(); err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	if _, err := c.RootDigest(); err != nil {
		return fmt.Errorf("root digest: %w", err)
	}
	snap, err := c.ServerStats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	total := workers * ops * 2
	log.Printf("smoke OK: %d ops in %v; server ledger: reads=%d writes=%d busy=%d macfail=%d",
		total, time.Since(start).Round(time.Millisecond),
		snap.Server.ReadOps, snap.Server.WriteOps,
		snap.Server.BusyRejected, snap.Server.MACFails)
	return nil
}
