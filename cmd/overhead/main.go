// Command overhead reproduces Figure 1: the storage overhead of
// authenticated memory encryption under the baseline and the proposed
// design points, plus the integrity-tree geometry (§5.2's 5-level vs
// 4-level trees).
//
// Usage:
//
//	overhead [-region bytes] [-onchip bytes]
package main

import (
	"flag"
	"fmt"
	"os"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/stats"
)

func main() {
	region := flag.Uint64("region", 512<<20, "protected region size in bytes")
	onchip := flag.Int("onchip", 3<<10, "on-chip tree root SRAM budget in bytes")
	flag.Parse()

	type point struct {
		name      string
		scheme    ctr.Kind
		placement core.MACPlacement
		dataTree  bool
	}
	points := []point{
		{"classic Merkle tree over data", ctr.Monolithic, core.MACInline, true},
		{"baseline (56b ctr + inline MAC)", ctr.Monolithic, core.MACInline, false},
		{"split counters + inline MAC", ctr.Split, core.MACInline, false},
		{"delta + inline MAC", ctr.Delta, core.MACInline, false},
		{"monolithic + MAC-in-ECC", ctr.Monolithic, core.MACInECC, false},
		{"proposed (delta + MAC-in-ECC)", ctr.Delta, core.MACInECC, false},
		{"dual-length + MAC-in-ECC", ctr.DualLength, core.MACInECC, false},
	}

	fmt.Printf("Figure 1: encryption metadata storage overhead, %s protected region\n\n",
		stats.FormatBytes(*region))
	tb := stats.NewTable("design point", "counters", "tree", "MACs", "total", "overhead", "tree levels")
	for _, p := range points {
		cfg := core.Default(p.scheme, p.placement)
		cfg.RegionBytes = *region
		cfg.OnChipTreeBytes = *onchip
		cfg.DataTree = p.dataTree
		o, err := core.ComputeOverhead(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		tb.AddRow(p.name,
			stats.FormatBytes(o.CounterBytes),
			stats.FormatBytes(o.TreeBytes),
			stats.FormatBytes(o.MACBytes),
			stats.FormatBytes(o.EncryptionOverheadBytes()),
			stats.Pct(o.EncryptionOverheadPct()),
			o.TreeLevels)
	}
	fmt.Print(tb)
	fmt.Printf("\nECC DIMM provisioning (present either way): %s (12.5%%)\n",
		stats.FormatBytes(*region/8))
	fmt.Println("\nPaper: baseline ~22% total; proposed ~2% (a ~10x reduction), and the")
	fmt.Println("off-chip tree shrinks from 5 to 4 levels at 512MB with a 3KB root (§5.2).")
}
