// Command overhead reproduces Figure 1: the storage overhead of
// authenticated memory encryption under the baseline and the proposed
// design points, plus the integrity-tree geometry (§5.2's 5-level vs
// 4-level trees).
//
// Usage:
//
//	overhead [-region bytes] [-onchip bytes]
package main

import (
	"flag"
	"fmt"
	"os"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/stats"
)

func main() {
	region := flag.Uint64("region", 512<<20, "protected region size in bytes")
	onchip := flag.Int("onchip", 3<<10, "on-chip tree root SRAM budget in bytes")
	flag.Parse()

	type point struct {
		name      string
		scheme    ctr.Kind
		placement core.MACPlacement
		dataTree  bool
		codec     string // "" = placement default
	}
	points := []point{
		{"classic Merkle tree over data", ctr.Monolithic, core.MACInline, true, ""},
		{"baseline (56b ctr + inline MAC)", ctr.Monolithic, core.MACInline, false, ""},
		{"split counters + inline MAC", ctr.Split, core.MACInline, false, ""},
		{"delta + inline MAC", ctr.Delta, core.MACInline, false, ""},
		{"delta + inline MAC + residue", ctr.Delta, core.MACInline, false, "residue"},
		{"monolithic + MAC-in-ECC", ctr.Monolithic, core.MACInECC, false, ""},
		{"proposed (delta + MAC-in-ECC)", ctr.Delta, core.MACInECC, false, ""},
		{"dual-length + MAC-in-ECC", ctr.DualLength, core.MACInECC, false, ""},
	}

	fmt.Printf("Figure 1: encryption metadata storage overhead, %s protected region\n\n",
		stats.FormatBytes(*region))
	tb := stats.NewTable("design point", "codec", "counters", "tree", "MACs", "total", "overhead", "check bits", "tree levels")
	for _, p := range points {
		cfg := core.Default(p.scheme, p.placement)
		cfg.RegionBytes = *region
		cfg.OnChipTreeBytes = *onchip
		cfg.DataTree = p.dataTree
		cfg.ECCCodec = p.codec
		o, err := core.ComputeOverhead(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		// Check-bit storage is derived from the selected codec, not a
		// fixed SEC-DED(72,64) geometry: 12.5% for the 8-byte codes,
		// 6.25% for the 4-byte residue code.
		checkPct := 100 * float64(o.ECCBytes) / float64(o.RegionBytes)
		tb.AddRow(p.name,
			o.Codec,
			stats.FormatBytes(o.CounterBytes),
			stats.FormatBytes(o.TreeBytes),
			stats.FormatBytes(o.MACBytes),
			stats.FormatBytes(o.EncryptionOverheadBytes()),
			stats.Pct(o.EncryptionOverheadPct()),
			fmt.Sprintf("%s (%s)", stats.FormatBytes(o.ECCBytes), stats.Pct(checkPct)),
			o.TreeLevels)
	}
	fmt.Print(tb)
	fmt.Println("\nThe check-bit column is what the codec stores per block: the standard")
	fmt.Println("ECC DIMM provisions 12.5% either way, which the 8-byte codecs (secded,")
	fmt.Println("macsecded) fill exactly; the 4-byte residue code needs only half of it.")
	fmt.Println("\nPaper: baseline ~22% total; proposed ~2% (a ~10x reduction), and the")
	fmt.Println("off-chip tree shrinks from 5 to 4 levels at 512MB with a 3KB root (§5.2).")
}
