// Command overhead reproduces Figure 1: the storage overhead of
// authenticated memory encryption under the baseline and the proposed
// design points, plus the integrity-tree geometry (§5.2's 5-level vs
// 4-level trees).
//
// Usage:
//
//	overhead [-region bytes] [-onchip bytes]
package main

import (
	"flag"
	"fmt"
	"os"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/stats"
)

func main() {
	region := flag.Uint64("region", 512<<20, "protected region size in bytes")
	onchip := flag.Int("onchip", 3<<10, "on-chip tree root SRAM budget in bytes")
	flag.Parse()

	type point struct {
		name      string
		scheme    ctr.Kind
		placement core.MACPlacement
		dataTree  bool
		codec     string // "" = placement default
	}
	points := []point{
		{"classic Merkle tree over data", ctr.Monolithic, core.MACInline, true, ""},
		{"baseline (56b ctr + inline MAC)", ctr.Monolithic, core.MACInline, false, ""},
		{"split counters + inline MAC", ctr.Split, core.MACInline, false, ""},
		{"delta + inline MAC", ctr.Delta, core.MACInline, false, ""},
		{"delta + inline MAC + residue", ctr.Delta, core.MACInline, false, "residue"},
		{"monolithic + MAC-in-ECC", ctr.Monolithic, core.MACInECC, false, ""},
		{"proposed (delta + MAC-in-ECC)", ctr.Delta, core.MACInECC, false, ""},
		{"dual-length + MAC-in-ECC", ctr.DualLength, core.MACInECC, false, ""},
	}

	fmt.Printf("Figure 1: encryption metadata storage overhead, %s protected region\n\n",
		stats.FormatBytes(*region))
	tb := stats.NewTable("design point", "codec", "counters", "tree", "MACs", "total", "overhead", "check bits", "tree levels")
	for _, p := range points {
		cfg := core.Default(p.scheme, p.placement)
		cfg.RegionBytes = *region
		cfg.OnChipTreeBytes = *onchip
		cfg.DataTree = p.dataTree
		cfg.ECCCodec = p.codec
		o, err := core.ComputeOverhead(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		// Check-bit storage is derived from the selected codec, not a
		// fixed SEC-DED(72,64) geometry: 12.5% for the 8-byte codes,
		// 6.25% for the 4-byte residue code.
		checkPct := 100 * float64(o.ECCBytes) / float64(o.RegionBytes)
		tb.AddRow(p.name,
			o.Codec,
			stats.FormatBytes(o.CounterBytes),
			stats.FormatBytes(o.TreeBytes),
			stats.FormatBytes(o.MACBytes),
			stats.FormatBytes(o.EncryptionOverheadBytes()),
			stats.Pct(o.EncryptionOverheadPct()),
			fmt.Sprintf("%s (%s)", stats.FormatBytes(o.ECCBytes), stats.Pct(checkPct)),
			o.TreeLevels)
	}
	fmt.Print(tb)
	fmt.Println("\nThe check-bit column is what the codec stores per block: the standard")
	fmt.Println("ECC DIMM provisions 12.5% either way, which the 8-byte codecs (secded,")
	fmt.Println("macsecded) fill exactly; the 4-byte residue code needs only half of it.")
	fmt.Println("\nPaper: baseline ~22% total; proposed ~2% (a ~10x reduction), and the")
	fmt.Println("off-chip tree shrinks from 5 to 4 levels at 512MB with a 3KB root (§5.2).")

	durabilityPlane()
}

// durabilityPlane measures what the persistence layer stores on top of the
// in-DRAM accounting above: the full base snapshot and the sealed delta-log
// records, per design point. A small fully-populated region is built live —
// the image and record sizes are per-block/per-group geometry, so the
// measured figures scale linearly to any region size.
func durabilityPlane() {
	const region = 4 << 20
	const groupBytes = 64 * core.BlockBytes

	type point struct {
		name      string
		scheme    ctr.Kind
		placement core.MACPlacement
		codec     string
	}
	points := []point{
		{"baseline (mono + inline MAC)", ctr.Monolithic, core.MACInline, ""},
		{"delta + inline MAC", ctr.Delta, core.MACInline, ""},
		{"delta + inline MAC + residue", ctr.Delta, core.MACInline, "residue"},
		{"proposed (delta + MAC-in-ECC)", ctr.Delta, core.MACInECC, ""},
	}

	fmt.Println("\nDurability plane: base snapshot and sealed WAL record storage")
	fmt.Println()
	tb := stats.NewTable("design point", "snapshot", "snap/region", "group span", "WAL/dirty group", "WAL overhead", "epoch heartbeat")
	for _, p := range points {
		cfg := core.Default(p.scheme, p.placement)
		cfg.RegionBytes = region
		cfg.ECCCodec = p.codec
		eng, err := core.NewEngine(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		blk := make([]byte, core.BlockBytes)
		for i := range blk {
			blk[i] = byte(i * 13)
		}
		for addr := uint64(0); addr < region; addr += core.BlockBytes {
			if err := eng.Write(addr, blk); err != nil {
				fmt.Fprintln(os.Stderr, "overhead:", err)
				os.Exit(1)
			}
		}
		eng.EnableDeltaTracking()

		var snap countWriter
		if _, err := eng.Persist(&snap); err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		var log countWriter
		w, err := eng.NewDeltaWriter(&log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		// One epoch with exactly one fully-populated dirty group, then an
		// empty epoch: the difference isolates the per-group record, the
		// empty epoch is the sealed commit heartbeat.
		if err := eng.Write(0, blk); err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		st, err := eng.AppendDelta(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		hb, err := eng.AppendDelta(w)
		if err != nil {
			fmt.Fprintln(os.Stderr, "overhead:", err)
			os.Exit(1)
		}
		groupRec := st.Bytes - hb.Bytes
		// A dirty-set "group" is one counter-metadata block's span: 4KB
		// for the grouped schemes, 8 blocks (512B) for monolithic, whose
		// counters pack 8 to a metadata block.
		span := uint64(groupBytes)
		if p.scheme == ctr.Monolithic {
			span = 8 * core.BlockBytes
		}
		tb.AddRow(p.name,
			stats.FormatBytes(uint64(snap.n)),
			stats.Pct(100*float64(snap.n)/float64(region)),
			stats.FormatBytes(span),
			stats.FormatBytes(uint64(groupRec)),
			stats.Pct(100*float64(groupRec)/float64(span)),
			fmt.Sprintf("%d B", hb.Bytes))
	}
	fmt.Print(tb)
	fmt.Println("\nWAL overhead is sealed-record bytes per dirty group relative to the")
	fmt.Println("span it covers: ciphertext + counter image + per-block metadata")
	fmt.Println("lane + check bytes (inline placements), plus 48B of framing and seal.")
	fmt.Println("The residue(32) point stores 4B checks per block in the log, halving the")
	fmt.Println("check-bit share of each record, exactly as in the DRAM accounting above.")
	fmt.Println("The heartbeat is what an idle checkpoint epoch appends: one sealed")
	fmt.Println("commit record pinning the root digest.")
}

// countWriter measures what a persist path writes without buffering it.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
