// Command faultinject exercises the design's fault handling at two scales.
//
// The default mode reproduces Figure 3: how standard SEC-DED ECC, the
// detection-only residue code, and the proposed MAC-in-ECC scheme handle
// different bit-flip fault patterns on a single isolated block. For each
// fault class it reports the fraction of injected faults that were
// corrected, detected-but-uncorrectable, or silently miscorrected.
//
// The -campaign mode runs the end-to-end fault-injection campaign engine
// (internal/campaign): a randomized workload drives a full engine while
// faults land in every attacker-reachable storage plane — ciphertext, the
// ECC/MAC lane, counter blocks, tree nodes, and persisted images reloaded
// mid-run — and every read is checked against a differential shadow
// oracle. The structured JSON report is written to -out; the process exits
// nonzero if any read silently returned wrong data.
//
// The -concurrent mode runs the campaign's sharded-engine phase: several
// worker goroutines, each owning a disjoint slice of the block space that
// straddles shard boundaries, drive parallel faulted traffic against a
// ShardedEngine, and the run ends with a sharded persist/resume sweep. The
// safety bar is the same: zero silent escapes.
//
// The -strike mode targets the lock-free read path specifically: reader
// goroutines hammer a fixed warm hot set through the zero-lock seqlock
// probe while a striker lands faults on those same lines and recovers the
// victims. Any read that returns non-oracle bytes with a success verdict —
// i.e. a fault masked by a stale-but-trusted cache line — fails the run.
//
// Usage:
//
//	faultinject [-trials n] [-seed s] [-budget 0|1|2]
//	faultinject -campaign [-trials n] [-seed s] [-budget 0|1|2]
//	           [-scheme delta] [-placement macecc] [-ecc codec] [-app facesim]
//	           [-rate 0.15] [-burst 4] [-out CAMPAIGN_report.json]
//	faultinject -concurrent [-trials n] [-seed s] [-shards 4] [-workers 3]
//	           [-scheme delta] [-placement macecc] [-ecc codec]
//	           [-rate 0.15] [-burst 4] [-out CONCURRENT_report.json]
//	faultinject -strike [-trials n] [-seed s] [-shards 4] [-workers 3]
//	           [-scheme delta] [-placement macecc] [-ecc codec]
//	           [-burst 4] [-out STRIKE_report.json]
//
// -ecc selects the ECC codec for campaign engines (secded, macsecded,
// residue — see internal/ecc). Because a codec either carries the MAC or
// doesn't, -ecc also implies the placement: macsecded forces -placement
// macecc, secded/residue force -placement inline.
package main

import (
	"flag"
	"fmt"
	"os"

	"strings"

	"authmem/internal/campaign"
	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/ecc"
	"authmem/internal/fault"
	"authmem/internal/stats"
)

func main() {
	runCampaign := flag.Bool("campaign", false, "run the end-to-end campaign instead of the Figure 3 table")
	runConcurrent := flag.Bool("concurrent", false, "run the concurrent sharded-engine campaign phase")
	runStrike := flag.Bool("strike", false, "run the lock-free read-path strike phase")
	runCluster := flag.Bool("cluster", false, "run the distributed cluster campaign phase")
	nodes := flag.Int("nodes", 3, "memserved node count for -cluster (>= 3)")
	repl := flag.Int("repl", 2, "replicas per stripe for -cluster")
	shards := flag.Int("shards", 4, "shard count for -concurrent (power of two)")
	workers := flag.Int("workers", 3, "traffic goroutines for -concurrent")
	trials := flag.Int("trials", 2000, "fault injections per cell (Figure 3) or total memory operations (-campaign)")
	seed := flag.Int64("seed", 1, "PRNG seed (campaigns replay exactly under the same seed and flags)")
	budget := flag.Int("budget", 2, "MAC-in-ECC flip-and-check budget (bits)")
	scheme := flag.String("scheme", "delta", "campaign counter scheme: monolithic|split|delta|dual")
	placement := flag.String("placement", "macecc", "campaign MAC placement: inline|macecc")
	eccName := flag.String("ecc", "", fmt.Sprintf("campaign ECC codec: %s (implies placement; default: placement's default)",
		strings.Join(ecc.Names(), "|")))
	backend := flag.String("backend", "", "crypto backend for campaign engines: ttable|stdlib|batch8 (default: $AUTHMEM_CRYPTO_BACKEND, then ttable)")
	app := flag.String("app", "facesim", "campaign workload application (see internal/workload)")
	rate := flag.Float64("rate", 0.15, "campaign per-operation fault probability")
	burst := flag.Int("burst", 4, "campaign max bit flips per fault event")
	out := flag.String("out", "CAMPAIGN_report.json", "campaign JSON report path")
	flag.Parse()

	if *runCluster {
		mainCluster(*trials, *seed, *nodes, *repl, *rate, *burst, *out)
		return
	}
	if *runStrike {
		ecfg := engineConfig(*scheme, *placement, *eccName, *backend, *budget)
		mainStrike(ecfg, *trials, *seed, *burst, *shards, *workers, *out)
		return
	}
	if *runConcurrent {
		ecfg := engineConfig(*scheme, *placement, *eccName, *backend, *budget)
		mainConcurrent(ecfg, *trials, *seed, *rate, *burst, *shards, *workers, *out)
		return
	}
	if *runCampaign {
		ecfg := engineConfig(*scheme, *placement, *eccName, *backend, *budget)
		mainCampaign(ecfg, *trials, *seed, *app, *rate, *burst, *out)
		return
	}

	fmt.Printf("Figure 3: error handling by fault pattern (%d trials per cell)\n", *trials)
	fmt.Printf("cells are corrected%% / detected%% / miscorrected%%\n\n")

	tb := stats.NewTable("fault pattern", "SEC-DED(72,64)", "residue(32)",
		fmt.Sprintf("MAC-in-ECC (budget %d)", *budget))
	for _, class := range fault.Classes() {
		sec := fault.InjectSECDED(class, *trials, *seed)
		res := fault.InjectResidue(class, *trials, *seed)
		mec, err := fault.InjectMACECC(class, *trials, *seed, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultinject:", err)
			os.Exit(1)
		}
		tb.AddRow(class.String(), cell(sec), cell(res), cell(mec))
	}
	fmt.Print(tb)
	fmt.Println("\nReading the table (paper §3.3-§3.4):")
	fmt.Println(" - two flips in ONE word: only MAC-in-ECC corrects (flip-and-check)")
	fmt.Println(" - one flip in each of many words: only SEC-DED corrects")
	fmt.Println(" - >=3 flips in one word: SEC-DED can silently miscorrect;")
	fmt.Println("   MAC-in-ECC always detects (full error detection on data)")
	fmt.Println(" - residue(32) corrects nothing but stores half the check bits;")
	fmt.Println("   its miscorrected cells are residue-aliasing blind spots, which")
	fmt.Println("   the engine's end-to-end MAC still catches")
}

// engineConfig resolves the campaign design point from the command line.
// When -ecc names a codec, the codec decides the placement (a codec either
// carries the MAC in the ECC lane or it does not); an explicit conflicting
// -placement is rejected rather than silently overridden.
func engineConfig(scheme, placement, eccName, backend string, budget int) core.Config {
	kind, ok := schemes[scheme]
	if !ok {
		fatalf("unknown scheme %q (monolithic|split|delta|dual)", scheme)
	}
	var place core.MACPlacement
	switch placement {
	case "inline":
		place = core.MACInline
	case "macecc":
		place = core.MACInECC
	default:
		fatalf("unknown placement %q (inline|macecc)", placement)
	}
	if eccName != "" {
		cod, err := ecc.Lookup(eccName)
		if err != nil {
			fatalf("%v", err)
		}
		implied := core.MACInline
		if cod.CarriesMAC() {
			implied = core.MACInECC
		}
		if isFlagSet("placement") && place != implied {
			fatalf("-ecc %s implies -placement %s, got -placement %s",
				cod.Name(), placementFlag(implied), placement)
		}
		place = implied
	}
	ecfg := core.Default(kind, place)
	ecfg.CorrectBits = budget
	ecfg.CryptoBackend = backend
	ecfg.ECCCodec = eccName
	return ecfg
}

func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func placementFlag(p core.MACPlacement) string {
	if p == core.MACInECC {
		return "macecc"
	}
	return "inline"
}

func cell(r fault.Result) string {
	return fmt.Sprintf("%5.1f / %5.1f / %5.1f",
		r.CorrectedPct(), r.DetectedPct(), r.MiscorrectedPct())
}

var schemes = map[string]ctr.Kind{
	"monolithic": ctr.Monolithic,
	"split":      ctr.Split,
	"delta":      ctr.Delta,
	"dual":       ctr.DualLength,
}

func mainCampaign(ecfg core.Config, ops int, seed int64, app string, rate float64, burst int, out string) {
	cfg := campaign.Default(ecfg, ops, seed)
	cfg.App = app
	cfg.FaultRate = rate
	cfg.BurstMax = burst

	fmt.Printf("Campaign: %s / %s / %s, budget %d, ~%d ops across %d planes, seed %d\n",
		ecfg.Scheme, ecfg.Placement, ecfg.CodecName(), ecfg.CorrectBits, ops, len(campaign.Planes()), seed)
	rep, err := campaign.Run(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	tb := stats.NewTable("plane", "ops", "faults", "flips", "clean", "corrected", "recovered", "halted", "SILENT")
	for _, pr := range rep.Planes {
		tb.AddRow(pr.Plane, pr.Ops, pr.FaultEvents, pr.BitsFlipped,
			pr.Outcomes["clean"], pr.Outcomes["corrected"], pr.Outcomes["recovered"],
			pr.Outcomes["halted"], pr.Outcomes["silent"])
	}
	fmt.Print(tb)
	fmt.Printf("\nrecovery: %d metadata repairs, %d/%d retry recoveries, %d quarantines, %d scrub passes\n",
		rep.MetadataRepairs, rep.RetryRecoveries, rep.RetriedReads, rep.Quarantined, rep.ScrubPasses)

	// Durability plane: persist-crash + WAL-corruption strikes against the
	// incremental-persistence artifacts, flat and sharded.
	pcfg := campaign.DefaultPersistCrash(ecfg, ops/50+campaignMinStrikes, seed)
	pcfg.BurstMax = burst
	fmt.Printf("\nPersist-crash phase: %d epochs, %d strikes per arrangement (flat + sharded)\n",
		pcfg.Epochs, pcfg.Trials)
	pc, err := campaign.RunPersistCrash(pcfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.PersistCrash = pc
	pt := stats.NewTable("strike", "trials")
	for kind, n := range pc.Strikes {
		pt.AddRow(kind, n)
	}
	for _, o := range campaign.Outcomes() {
		pt.AddRow("outcome:"+o.String(), pc.Outcomes[o.String()])
	}
	fmt.Print(pt)

	// Distributed plane: node-level faults against the quorum cluster.
	ccfg := campaign.DefaultCluster(ops/10, seed)
	fmt.Printf("\nCluster phase: %d nodes, R=%d, ~%d quorum ops across %d scenarios\n",
		ccfg.Nodes, ccfg.Replication, ccfg.Ops, len(campaign.ClusterScenarios()))
	cc, err := campaign.RunCluster(ccfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep.Cluster = cc
	printClusterReport(cc)

	if err := stats.WriteJSON(out, rep); err != nil {
		fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote %s\n", out)

	if !rep.Passed() {
		fmt.Fprintf(os.Stderr, "faultinject: FAIL: %d live + %d durability + %d cluster silent escape(s) — replay with -seed %d\n",
			rep.SilentEscapes, pc.SilentEscapes, cc.SilentEscapes, seed)
		os.Exit(1)
	}
	fmt.Printf("PASS: %d operations, %d fault events, %d persist-crash strikes, %d cluster ops, 0 silent corruption escapes\n",
		rep.Ops, rep.FaultEvents, pc.FlatTrials+pc.ShardedTrials, cc.Ops)
}

func printClusterReport(cc *campaign.ClusterReport) {
	ct := stats.NewTable("scenario", "ops", "faults", "clean", "recovered", "halted", "SILENT", "converged")
	for _, s := range cc.Scenarios {
		ct.AddRow(s.Scenario, s.Ops, s.FaultEvents,
			s.Outcomes["clean"], s.Outcomes["recovered"], s.Outcomes["halted"], s.Outcomes["silent"], s.Converged)
	}
	fmt.Print(ct)
	fmt.Printf("\nquorum: %d outvoted (fault %d, unreachable %d, stale %d, epoch %d, root %d, majority %d), %d unresolved, %d repairs, %d stripes rebalanced\n",
		cc.Stats.OutvotedFault+cc.Stats.OutvotedUnreachable+cc.Stats.OutvotedStale+cc.Stats.OutvotedEpoch+cc.Stats.OutvotedRoot+cc.Stats.OutvotedMajority,
		cc.Stats.OutvotedFault, cc.Stats.OutvotedUnreachable, cc.Stats.OutvotedStale, cc.Stats.OutvotedEpoch,
		cc.Stats.OutvotedRoot, cc.Stats.OutvotedMajority, cc.Stats.Unresolved, cc.Stats.Repairs, cc.Stats.RebalancedStripes)
}

func mainCluster(ops int, seed int64, nodes, repl int, rate float64, burst int, out string) {
	cfg := campaign.DefaultCluster(ops, seed)
	cfg.Nodes = nodes
	cfg.Replication = repl
	cfg.FaultRate = rate
	cfg.BurstMax = burst

	fmt.Printf("Cluster campaign: %d nodes, R=%d, ~%d quorum ops, seed %d\n", nodes, repl, cfg.Ops, seed)
	rep, err := campaign.RunCluster(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	printClusterReport(rep)

	if err := stats.WriteJSON(out, rep); err != nil {
		fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote %s\n", out)

	if !rep.Passed() {
		fmt.Fprintf(os.Stderr, "faultinject: FAIL: %d silent escape(s) across the cluster (converged=%v) — replay with -seed %d\n",
			rep.SilentEscapes, rep.SilentEscapes == 0, seed)
		os.Exit(1)
	}
	fmt.Printf("PASS: %d cluster ops, %d fault events, 0 silent corruption escapes, attested %s…\n",
		rep.Ops, rep.FaultEvents, rep.AttestedRoot[:12])
}

// campaignMinStrikes floors the persist-crash strike budget so even a
// -trials smoke run exercises every strike kind in both arrangements.
const campaignMinStrikes = 20

func mainConcurrent(ecfg core.Config, ops int, seed int64, rate float64, burst, shards, workers int, out string) {
	cfg := campaign.DefaultConcurrent(ecfg, ops, seed)
	cfg.FaultRate = rate
	cfg.BurstMax = burst
	cfg.Shards = shards
	cfg.Workers = workers

	fmt.Printf("Concurrent campaign: %s / %s / %s, budget %d, %d shards x %d workers, ~%d ops, seed %d\n",
		ecfg.Scheme, ecfg.Placement, ecfg.CodecName(), ecfg.CorrectBits, shards, workers, cfg.OpsPerWorker*workers, seed)
	rep, err := campaign.RunConcurrent(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	tb := stats.NewTable("metric", "value")
	tb.AddRow("ops", rep.Ops)
	tb.AddRow("span reads", rep.SpanReads)
	tb.AddRow("fault events", rep.FaultEvents)
	tb.AddRow("bits flipped", rep.BitsFlipped)
	for _, o := range campaign.Outcomes() {
		tb.AddRow(o.String(), rep.Outcomes[o.String()])
	}
	tb.AddRow("resume sweep", rep.ResumeOutcome)
	fmt.Print(tb)
	fmt.Printf("\nrecovery: %d metadata repairs, %d/%d retry recoveries, %d quarantines\n",
		rep.MetadataRepairs, rep.RetryRecoveries, rep.RetriedReads, rep.Quarantined)

	if err := stats.WriteJSON(out, rep); err != nil {
		fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote %s\n", out)

	if !rep.Passed() {
		fmt.Fprintf(os.Stderr, "faultinject: FAIL: %d silent escape(s) under concurrent traffic — replay with -seed %d\n",
			rep.SilentEscapes, seed)
		os.Exit(1)
	}
	fmt.Printf("PASS: %d concurrent operations, %d fault events, 0 silent corruption escapes\n", rep.Ops, rep.FaultEvents)
}

func mainStrike(ecfg core.Config, ops int, seed int64, burst, shards, readers int, out string) {
	cfg := campaign.DefaultStrike(ecfg, ops, seed)
	cfg.BurstMax = burst
	cfg.Shards = shards
	cfg.Readers = readers

	fmt.Printf("Strike campaign: %s / %s / %s, budget %d, %d shards x %d lock-free readers, %d strikes, seed %d\n",
		ecfg.Scheme, ecfg.Placement, ecfg.CodecName(), ecfg.CorrectBits, shards, readers, cfg.Strikes, seed)
	rep, err := campaign.RunStrike(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	tb := stats.NewTable("metric", "value")
	tb.AddRow("read ops", rep.ReadOps)
	tb.AddRow("fault events", rep.FaultEvents)
	tb.AddRow("bits flipped", rep.BitsFlipped)
	for _, o := range campaign.Outcomes() {
		tb.AddRow(o.String(), rep.Outcomes[o.String()])
	}
	tb.AddRow("final sweep", rep.FinalSweep)
	tb.AddRow("lock-free hits", rep.LockFreeHits)
	tb.AddRow("seqlock retries", rep.SeqlockRetries)
	tb.AddRow("slow-path reads", rep.SlowPathReads)
	fmt.Print(tb)
	fmt.Printf("\nrecovery: %d metadata repairs, %d retry recoveries, %d quarantines\n",
		rep.MetadataRepairs, rep.RetryRecoveries, rep.Quarantined)

	if err := stats.WriteJSON(out, rep); err != nil {
		fatalf("writing report: %v", err)
	}
	fmt.Printf("wrote %s\n", out)

	if !rep.Passed() {
		fmt.Fprintf(os.Stderr, "faultinject: FAIL: %d silent escape(s) under lock-free readers (final sweep %s) — replay with -seed %d\n",
			rep.SilentEscapes, rep.FinalSweep, seed)
		os.Exit(1)
	}
	fmt.Printf("PASS: %d lock-free reads (%d warm hits), %d strikes, 0 silent corruption escapes\n",
		rep.ReadOps, rep.LockFreeHits, rep.FaultEvents)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultinject: "+format+"\n", args...)
	os.Exit(1)
}
