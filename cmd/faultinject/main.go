// Command faultinject reproduces Figure 3: how standard SEC-DED ECC and the
// proposed MAC-in-ECC scheme handle different bit-flip fault patterns.
//
// For each fault class it reports the fraction of injected faults that were
// corrected, detected-but-uncorrectable, or silently miscorrected.
//
// Usage:
//
//	faultinject [-trials n] [-seed s] [-budget 0|1|2]
package main

import (
	"flag"
	"fmt"
	"os"

	"authmem/internal/fault"
	"authmem/internal/stats"
)

func main() {
	trials := flag.Int("trials", 2000, "fault injections per (scheme, class) cell")
	seed := flag.Int64("seed", 1, "PRNG seed")
	budget := flag.Int("budget", 2, "MAC-in-ECC flip-and-check budget (bits)")
	flag.Parse()

	fmt.Printf("Figure 3: error handling by fault pattern (%d trials per cell)\n", *trials)
	fmt.Printf("cells are corrected%% / detected%% / miscorrected%%\n\n")

	tb := stats.NewTable("fault pattern", "SEC-DED(72,64)", fmt.Sprintf("MAC-in-ECC (budget %d)", *budget))
	for _, class := range fault.Classes() {
		sec := fault.InjectSECDED(class, *trials, *seed)
		mec, err := fault.InjectMACECC(class, *trials, *seed, *budget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultinject:", err)
			os.Exit(1)
		}
		tb.AddRow(class.String(), cell(sec), cell(mec))
	}
	fmt.Print(tb)
	fmt.Println("\nReading the table (paper §3.3-§3.4):")
	fmt.Println(" - two flips in ONE word: only MAC-in-ECC corrects (flip-and-check)")
	fmt.Println(" - one flip in each of many words: only SEC-DED corrects")
	fmt.Println(" - >=3 flips in one word: SEC-DED can silently miscorrect;")
	fmt.Println("   MAC-in-ECC always detects (full error detection on data)")
}

func cell(r fault.Result) string {
	return fmt.Sprintf("%5.1f / %5.1f / %5.1f",
		r.CorrectedPct(), r.DetectedPct(), r.MiscorrectedPct())
}
