// Command memsim runs one PARSEC-like workload on the Table 1 system under
// a chosen memory-encryption design point and reports IPC and traffic
// detail — the single-experiment form of cmd/paperbench's Figure 8 sweep.
//
// Usage:
//
//	memsim -app canneal -design proposed [-ops 1000000] [-seed 1]
//	memsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"authmem/internal/core"
	"authmem/internal/cpu"
	"authmem/internal/dram"
	"authmem/internal/sim"
	"authmem/internal/stats"
	"authmem/internal/trace"
	"authmem/internal/workload"
)

func main() {
	appName := flag.String("app", "canneal", "workload (one of the 11 PARSEC-like apps)")
	design := flag.String("design", "proposed", "design point: no-encryption, bmt, mac-ecc, proposed")
	ops := flag.Uint64("ops", 1_000_000, "memory operations per core")
	seed := flag.Int64("seed", 1, "trace seed")
	traceFiles := flag.String("trace", "", "comma-separated per-core trace files (overrides -app/-ops)")
	list := flag.Bool("list", false, "list workloads and design points")
	flag.Parse()

	points := sim.StandardDesignPoints()
	if *list {
		var names []string
		for _, a := range workload.Apps() {
			names = append(names, a.Name)
		}
		fmt.Println("workloads:    ", strings.Join(names, " "))
		names = names[:0]
		for _, p := range points {
			names = append(names, p.Name)
		}
		fmt.Println("design points:", strings.Join(names, " "))
		return
	}

	var point *sim.DesignPoint
	for i := range points {
		if points[i].Name == *design {
			point = &points[i]
		}
	}
	if point == nil {
		fmt.Fprintf(os.Stderr, "memsim: unknown design %q (try -list)\n", *design)
		os.Exit(1)
	}

	var r sim.IPCResult
	if *traceFiles != "" {
		var err error
		r, err = runTraceFiles(strings.Split(*traceFiles, ","), *point)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memsim:", err)
			os.Exit(1)
		}
		fmt.Printf("trace replay on %s (%d cores)\n\n", r.Design, len(strings.Split(*traceFiles, ",")))
	} else {
		app, ok := workload.ByName(*appName)
		if !ok {
			fmt.Fprintf(os.Stderr, "memsim: unknown app %q (try -list)\n", *appName)
			os.Exit(1)
		}
		var err error
		r, err = sim.MeasureIPC(app, *point, *ops, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memsim:", err)
			os.Exit(1)
		}
		fmt.Printf("%s on %s (%d mem ops/core, 4 cores)\n\n", r.App, r.Design, *ops)
	}
	tb := stats.NewTable("metric", "value")
	tb.AddRow("IPC (per core)", fmt.Sprintf("%.4f", r.IPC))
	tb.AddRow("instructions", r.CPU.Instructions)
	tb.AddRow("cycles", r.CPU.Cycles)
	tb.AddRow("load stall cycles", r.CPU.LoadStallCycles)
	tb.AddRow("L3 misses", r.CPU.L3Misses)
	tb.AddRow("L3 writebacks", r.CPU.Writebacks)
	if r.TreeLevels > 0 {
		tb.AddRow("tree read depth", r.TreeLevels)
		tb.AddRow("metadata cache hit rate", fmt.Sprintf("%.3f", r.MetaHitRate))
		tb.AddRow("DRAM data reads", r.Timing.DataReads)
		tb.AddRow("DRAM data writes", r.Timing.DataWrites)
		tb.AddRow("DRAM counter reads", r.Timing.CounterReads)
		tb.AddRow("DRAM tree reads", r.Timing.TreeReads)
		tb.AddRow("DRAM MAC reads", r.Timing.MACReads)
		tb.AddRow("metadata writebacks", r.Timing.MetaWrites)
		tb.AddRow("group re-encryptions", r.Timing.ReencryptOps)
		tb.AddRow("total DRAM transactions", r.Timing.Transactions())
	}
	tb.AddRow("DRAM row-hit rate", fmt.Sprintf("%.3f", r.DRAM.RowHitRate()))
	tb.AddRow("DRAM avg read latency", fmt.Sprintf("%.1f cycles", r.DRAM.AvgReadLatency()))
	tb.AddRow("DRAM read latency p50/p95/p99",
		fmt.Sprintf("<=%d / <=%d / <=%d", r.ReadLatencyP50, r.ReadLatencyP95, r.ReadLatencyP99))
	tb.AddRow("DRAM refreshes", r.DRAM.Refreshes)
	tb.AddRow("DRAM dynamic energy", fmt.Sprintf("%.3f mJ", r.DRAM.EnergyMJ()))
	fmt.Print(tb)
}

// runTraceFiles replays one trace file per core on the Table 1 system
// under the given design point.
func runTraceFiles(paths []string, point sim.DesignPoint) (sim.IPCResult, error) {
	cpuCfg := cpu.Table1()
	cpuCfg.Cores = len(paths)
	gens := make([]trace.Generator, len(paths))
	readers := make([]*trace.Reader, len(paths))
	for i, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return sim.IPCResult{}, err
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			return sim.IPCResult{}, fmt.Errorf("%s: %w", p, err)
		}
		gens[i], readers[i] = r, r
	}
	mem := dram.MustNew(dram.DDR3_1600(4))
	tm, err := core.NewTimingModel(point.Config, mem)
	if err != nil {
		return sim.IPCResult{}, err
	}
	sys, err := cpu.New(cpuCfg, gens, tm)
	if err != nil {
		return sim.IPCResult{}, err
	}
	res := sys.Run()
	for i, r := range readers {
		if err := r.Err(); err != nil {
			return sim.IPCResult{}, fmt.Errorf("%s: %w", paths[i], err)
		}
	}
	lat := mem.ReadLatencyHistogram()
	out := sim.IPCResult{
		App:            "trace-replay",
		Design:         point.Name,
		IPC:            res.IPC,
		CPU:            res,
		Timing:         tm.Stats(),
		MetaHitRate:    tm.MetadataCacheStats().HitRate(),
		DRAM:           mem.Stats(),
		ReadLatencyP50: lat.Percentile(0.50),
		ReadLatencyP95: lat.Percentile(0.95),
		ReadLatencyP99: lat.Percentile(0.99),
	}
	if !point.Config.DisableEncryption {
		out.TreeLevels = tm.OffChipTreeLevels() + 1
	}
	return out, nil
}
