// Command tracegen materializes the synthetic workload traces into the
// binary trace-file format, so runs can be archived, diffed, or replayed by
// external tools (and by memsim's -trace flag).
//
// Usage:
//
//	tracegen -app facesim -ops 1000000 -out facesim   # facesim.core{0..3}.trc
//	tracegen -stats facesim.core0.trc                 # analyze a trace file
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"authmem/internal/trace"
	"authmem/internal/workload"
)

func main() {
	appName := flag.String("app", "canneal", "workload to materialize")
	ops := flag.Uint64("ops", 1_000_000, "memory operations per core")
	seed := flag.Int64("seed", 1, "trace seed")
	cores := flag.Int("cores", 4, "number of per-core trace files")
	out := flag.String("out", "", "output file prefix (default: the app name)")
	statsFile := flag.String("stats", "", "analyze an existing trace file instead of generating")
	list := flag.Bool("list", false, "list workloads")
	flag.Parse()

	if *statsFile != "" {
		if err := analyze(*statsFile); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		var names []string
		for _, a := range workload.Apps() {
			names = append(names, a.Name)
		}
		fmt.Println(strings.Join(names, " "))
		return
	}
	app, ok := workload.ByName(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracegen: unknown app %q (try -list)\n", *appName)
		os.Exit(1)
	}
	prefix := *out
	if prefix == "" {
		prefix = app.Name
	}
	for core := 0; core < *cores; core++ {
		path := fmt.Sprintf("%s.core%d.trc", prefix, core)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		w, err := trace.NewWriter(f)
		if err != nil {
			fatal(err)
		}
		n, err := trace.Copy(w, app.TraceGen(core, *ops, *seed))
		if err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d records\n", path, n)
	}
}

// analyze prints summary statistics of a trace file: mix, footprint,
// locality shape.
func analyze(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var (
		records, stores uint64
		gaps            uint64
		minAddr         = ^uint64(0)
		maxAddr         uint64
		lines           = make(map[uint64]struct{})
		seqPairs        uint64
		lastLine        uint64
		haveLast        bool
	)
	for {
		rec, ok := r.Next()
		if !ok {
			break
		}
		records++
		gaps += uint64(rec.Gap)
		if rec.Op == trace.Store {
			stores++
		}
		if rec.Addr < minAddr {
			minAddr = rec.Addr
		}
		if rec.Addr > maxAddr {
			maxAddr = rec.Addr
		}
		line := rec.Addr >> 6
		lines[line] = struct{}{}
		if haveLast && (line == lastLine || line == lastLine+1) {
			seqPairs++
		}
		lastLine, haveLast = line, true
	}
	if err := r.Err(); err != nil {
		return err
	}
	if records == 0 {
		return fmt.Errorf("%s: empty trace", path)
	}
	fmt.Printf("%s:\n", path)
	fmt.Printf("  records:           %d\n", records)
	fmt.Printf("  instructions:      %d (mean gap %.2f)\n",
		records+gaps, float64(gaps)/float64(records))
	fmt.Printf("  store fraction:    %.3f\n", float64(stores)/float64(records))
	fmt.Printf("  address range:     [%#x, %#x]\n", minAddr, maxAddr)
	fmt.Printf("  unique 64B lines:  %d (%.1f MiB touched)\n",
		len(lines), float64(len(lines))*64/(1<<20))
	fmt.Printf("  sequentiality:     %.3f (same/next-line pairs)\n",
		float64(seqPairs)/float64(records))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
