package authmem

import (
	"fmt"
	"sync"
	"testing"
)

// TestSyncMemoryConcurrentScrub hammers a shared SyncMemory with
// simultaneous reads, writes, batched I/O, and scrub passes — including
// ParallelScrub, whose internal workers must not race with the wrapper's
// locking. Run under -race in CI; the assertions here are secondary to the
// race detector's.
func TestSyncMemoryConcurrentScrub(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers    = 4
		blocksEach = 64
		iters      = 100
	)
	errs := make(chan error, writers+2)
	var wg sync.WaitGroup

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * blocksEach * BlockSize
			buf := make([]byte, 4*BlockSize)
			dst := make([]byte, 4*BlockSize)
			for i := 0; i < iters; i++ {
				addr := base + uint64(i%(blocksEach-4))*BlockSize
				for j := range buf {
					buf[j] = byte(g ^ i ^ j)
				}
				if err := m.WriteBlocks(addr, buf); err != nil {
					errs <- err
					return
				}
				if err := m.ReadBlocks(addr, dst); err != nil {
					errs <- err
					return
				}
				if dst[0] != buf[0] || dst[len(dst)-1] != buf[len(buf)-1] {
					errs <- fmt.Errorf("goroutine %d: stale batched read", g)
					return
				}
				if _, err := m.Read(addr, dst[:BlockSize]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Two scrubbers run throughout: serial and sharded.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := m.Scrub(); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := m.ParallelScrub(0); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Nothing scrubbed should ever have flagged: no faults were injected.
	if st := m.Stats(); st.ScrubFlagged != 0 || st.IntegrityFailures != 0 {
		t.Fatalf("clean run reported faults: %+v", st)
	}
}
