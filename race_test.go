package authmem

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestSyncMemoryConcurrentScrub hammers a shared SyncMemory with
// simultaneous reads, writes, batched I/O, and scrub passes — including
// ParallelScrub, whose internal workers must not race with the wrapper's
// locking. Run under -race in CI; the assertions here are secondary to the
// race detector's.
func TestSyncMemoryConcurrentScrub(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers    = 4
		blocksEach = 64
		iters      = 100
	)
	errs := make(chan error, writers+2)
	var wg sync.WaitGroup

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(g) * blocksEach * BlockSize
			buf := make([]byte, 4*BlockSize)
			dst := make([]byte, 4*BlockSize)
			for i := 0; i < iters; i++ {
				addr := base + uint64(i%(blocksEach-4))*BlockSize
				for j := range buf {
					buf[j] = byte(g ^ i ^ j)
				}
				if err := m.WriteBlocks(addr, buf); err != nil {
					errs <- err
					return
				}
				if err := m.ReadBlocks(addr, dst); err != nil {
					errs <- err
					return
				}
				if dst[0] != buf[0] || dst[len(dst)-1] != buf[len(buf)-1] {
					errs <- fmt.Errorf("goroutine %d: stale batched read", g)
					return
				}
				if _, err := m.Read(addr, dst[:BlockSize]); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	// Two scrubbers run throughout: serial and sharded.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := m.Scrub(); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters/4; i++ {
			if _, err := m.ParallelScrub(0); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Nothing scrubbed should ever have flagged: no faults were injected.
	if st := m.Stats(); st.ScrubFlagged != 0 || st.IntegrityFailures != 0 {
		t.Fatalf("clean run reported faults: %+v", st)
	}
}

// TestSyncMemoryQuarantineRace exercises the quarantine/retry path under
// contention: one block is corrupted beyond the correction budget and driven
// into quarantine, then concurrent ReadRecover readers hammer it (the
// quarantine fast-fail path) while a scrubber sweeps the region (including
// the still-corrupt quarantined block) and a writer stores to neighbors and
// eventually releases the quarantine with a fresh write. The quarantine map
// and retry bookkeeping are engine state mutated on the READ path, so this
// is exactly the shape that shakes out a lock that only covers writes. Run
// under -race.
func TestSyncMemoryQuarantineRace(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	m, err := NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const (
		victim  = uint64(7 * BlockSize)
		blocks  = 64
		readers = 4
		iters   = 200
	)
	buf := make([]byte, BlockSize)
	for b := 0; b < blocks; b++ {
		for j := range buf {
			buf[j] = byte(b ^ j)
		}
		if err := m.Write(uint64(b)*BlockSize, buf); err != nil {
			t.Fatal(err)
		}
	}

	// Single-threaded setup phase: corrupt the victim beyond any budget and
	// drive it into quarantine.
	m.Locked(func(raw *Memory) {
		for bit := 0; bit < 41; bit++ {
			if err := raw.FlipDataBit(victim, bit*12%512); err != nil {
				t.Fatal(err)
			}
		}
	})
	if _, err := m.ReadRecover(victim, buf); err == nil {
		t.Fatal("corrupted victim read succeeded")
	}
	if !m.Quarantined(victim) {
		t.Fatal("victim not quarantined after failed recovery")
	}

	var released sync.WaitGroup
	released.Add(1)
	fresh := make([]byte, BlockSize)
	for j := range fresh {
		fresh[j] = 0xC3
	}

	errs := make(chan error, readers+2)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, BlockSize)
			for i := 0; i < iters; i++ {
				// Hammer the quarantined block: before release every
				// read must fail with QuarantineError; after release it
				// must serve the writer's fresh data.
				_, err := m.ReadRecover(victim, dst)
				if err != nil {
					var qe *QuarantineError
					if !errors.As(err, &qe) {
						errs <- fmt.Errorf("reader %d: non-quarantine error: %v", g, err)
						return
					}
				} else if dst[0] != 0xC3 {
					errs <- fmt.Errorf("reader %d: stale post-release data %#x", g, dst[0])
					return
				}
				// And a healthy neighbor, via the same recovery path.
				nb := uint64((g*13+i)%blocks) * BlockSize
				if nb == victim {
					nb += BlockSize
				}
				if _, err := m.ReadRecover(nb, dst); err != nil {
					errs <- fmt.Errorf("reader %d: neighbor read: %v", g, err)
					return
				}
			}
		}(g)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/8; i++ {
			// The quarantined block is still corrupt in DRAM; the scrub
			// pass must tolerate it (counted uncorrectable, no error).
			if _, err := m.Scrub(); err != nil {
				errs <- fmt.Errorf("scrubber: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer released.Done()
		src := make([]byte, BlockSize)
		for i := 0; i < iters/2; i++ {
			b := uint64(i % blocks)
			if b == victim/BlockSize {
				continue
			}
			for j := range src {
				src[j] = byte(i ^ j)
			}
			if err := m.Write(b*BlockSize, src); err != nil {
				errs <- fmt.Errorf("writer: %v", err)
				return
			}
		}
		// Fresh write releases the quarantine mid-flight.
		if err := m.Write(victim, fresh); err != nil {
			errs <- fmt.Errorf("writer: release: %v", err)
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	released.Wait()
	if m.Quarantined(victim) {
		t.Fatal("victim still quarantined after release write")
	}
	if _, err := m.ReadRecover(victim, buf); err != nil {
		t.Fatalf("post-release read: %v", err)
	}
	if buf[0] != 0xC3 {
		t.Fatalf("post-release data wrong: %#x", buf[0])
	}
	if list := m.QuarantineList(); len(list) != 0 {
		t.Fatalf("quarantine list not empty: %v", list)
	}
}

// TestShardedMemoryLockFreeRace drives the public ShardedMemory API the way
// a multi-core host would: lock-free warm readers on every shard racing
// writers that keep re-stamping the same lines, while a fault goroutine
// flips bits across all four planes and recovers the victims. The seqlock
// caches under Read/ReadBlocks are the subject — run under -race; the
// assertions (no stale plaintext after a fault, fast path actually engaged)
// are secondary to the race detector's. The core-level stress
// (internal/core TestLockFreeConcurrentStress) additionally checks torn and
// stale version stamps; this test pins the public wrapper and the
// Flip*/ReadRecover entry points to the same protocol.
func TestShardedMemoryLockFreeRace(t *testing.T) {
	cfg := testConfig(DeltaEncoding, MACInECC)
	s, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !s.LockFreeReads() {
		t.Fatal("lock-free reads are not the default")
	}
	const (
		blocks  = 256 // spread across all 4 shards
		readers = 3
		iters   = 400
	)
	stride := s.ShardSize() / BlockSize // blocks per shard
	addr := func(i int) uint64 {
		// Interleave across shards so neighbors in i land on different locks.
		return (uint64(i%4)*stride + uint64(i)/4) * BlockSize
	}
	for i := 0; i < blocks; i++ {
		buf := make([]byte, BlockSize)
		for j := range buf {
			buf[j] = byte(i ^ j)
		}
		if err := s.Write(addr(i), buf); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(chan error, readers+2)
	var wg sync.WaitGroup

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]byte, 4*BlockSize)
			for i := 0; i < iters; i++ {
				// Warm single-block read: lock-free on a quiet line, slow
				// path (or loud error) on one under attack — never garbage.
				k := (g*31 + i*7) % blocks
				if _, err := s.Read(addr(k), dst[:BlockSize]); err != nil {
					continue // loud fault outcome; the fault goroutine repairs
				}
				// Span read inside one shard through the warm-prefix path.
				base := (uint64((g+i)%4)*stride + uint64(i%32)) * BlockSize
				_ = s.ReadBlocks(base, dst)
			}
		}(g)
	}

	wg.Add(1)
	go func() { // writer: re-stamps lines the readers are probing
		defer wg.Done()
		src := make([]byte, BlockSize)
		for i := 0; i < iters; i++ {
			k := (i * 13) % blocks
			for j := range src {
				src[j] = byte(i ^ j ^ 0x5A)
			}
			if err := s.Write(addr(k), src); err != nil {
				errs <- fmt.Errorf("writer: %v", err)
				return
			}
		}
	}()

	wg.Add(1)
	go func() { // fault plane rotation + loud recovery + resync
		defer wg.Done()
		buf := make([]byte, BlockSize)
		for i := 0; i < iters/4; i++ {
			k := (i*29 + 5) % blocks
			a := addr(k)
			var err error
			switch i % 4 {
			case 0:
				err = s.FlipDataBit(a, (i*17)%512)
			case 1:
				err = s.FlipECCBit(a, (i*11)%64)
			case 2: // two-bit data burst: beyond SECDED, into the retry ladder
				if err = s.FlipDataBit(a, (i*7)%512); err == nil {
					err = s.FlipDataBit(a, (i*7+101)%512)
				}
			case 3:
				err = s.FlipCounterBit(a, (i*23)%512)
			}
			if err != nil {
				errs <- fmt.Errorf("fault: %v", err)
				return
			}
			if _, err := s.ReadRecover(a, buf); err != nil {
				// Unrecoverable (e.g. MAC+data burst): release via rewrite.
				for j := range buf {
					buf[j] = byte(k ^ j ^ 0x5A)
				}
				if werr := s.Write(a, buf); werr != nil {
					errs <- fmt.Errorf("fault resync: %v", werr)
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.LockFreeHits == 0 {
		t.Fatal("no lock-free hits: the warm-read fast path never engaged")
	}
	// Final sweep: every line must still verify (possibly after repair).
	dst := make([]byte, BlockSize)
	for i := 0; i < blocks; i++ {
		if _, err := s.ReadRecover(addr(i), dst); err != nil {
			for j := range dst {
				dst[j] = byte(i ^ j)
			}
			if werr := s.Write(addr(i), dst); werr != nil {
				t.Fatalf("final resync blk %d: %v", i, werr)
			}
		}
	}
	if s.QuarantineCount() != 0 {
		t.Fatalf("quarantines survived the final resync: %v", s.QuarantineList())
	}
}
