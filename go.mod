module authmem

go 1.22
