package authmem

import (
	"fmt"
	"io"
)

// This file provides byte-granular access over the block-granular Memory,
// implementing io.ReaderAt and io.WriterAt. Hardware works in 64-byte
// blocks; software rarely does. Unaligned writes perform verified
// read-modify-write on the boundary blocks, exactly as a memory controller
// handles partial-line writes; the aligned interior of a transfer goes
// through the batched ReadBlocks/WriteBlocks path, which verifies and
// commits counter metadata once per covering metadata block instead of once
// per data block.

var (
	_ io.ReaderAt = (*Memory)(nil)
	_ io.WriterAt = (*Memory)(nil)
)

// ReadAt reads len(p) bytes starting at byte offset off, verifying and
// decrypting every touched block. It implements io.ReaderAt.
func (m *Memory) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	// Leading partial block.
	if start := uint64(off) % BlockSize; start != 0 && n < len(p) {
		addr := uint64(off) &^ (BlockSize - 1)
		if _, err := m.Read(addr, block[:]); err != nil {
			return n, err
		}
		n += copy(p, block[start:])
	}
	// Aligned interior, batched.
	if full := (len(p) - n) &^ (BlockSize - 1); full > 0 {
		if err := m.eng.ReadBlocks(uint64(off)+uint64(n), p[n:n+full]); err != nil {
			return n, err
		}
		n += full
	}
	// Trailing partial block.
	if n < len(p) {
		addr := uint64(off) + uint64(n)
		if _, err := m.Read(addr, block[:]); err != nil {
			return n, err
		}
		n += copy(p[n:], block[:])
	}
	return n, nil
}

// WriteAt writes len(p) bytes starting at byte offset off. Boundary blocks
// are read, verified, merged, and re-encrypted; the fully covered interior
// is written through the batched path. It implements io.WriterAt.
func (m *Memory) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	// Leading partial block: read-modify-write.
	if start := uint64(off) % BlockSize; start != 0 && n < len(p) {
		addr := uint64(off) &^ (BlockSize - 1)
		if _, err := m.Read(addr, block[:]); err != nil {
			return n, err
		}
		span := copy(block[start:], p)
		if err := m.Write(addr, block[:]); err != nil {
			return n, err
		}
		n += span
	}
	// Aligned interior, batched.
	if full := (len(p) - n) &^ (BlockSize - 1); full > 0 {
		if err := m.eng.WriteBlocks(uint64(off)+uint64(n), p[n:n+full]); err != nil {
			return n, err
		}
		n += full
	}
	// Trailing partial block: read-modify-write.
	if n < len(p) {
		addr := uint64(off) + uint64(n)
		if _, err := m.Read(addr, block[:]); err != nil {
			return n, err
		}
		span := copy(block[:], p[n:])
		if err := m.Write(addr, block[:]); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}
