package authmem

import (
	"fmt"
	"io"
)

// This file provides byte-granular access over the block-granular devices,
// implementing io.ReaderAt and io.WriterAt. Hardware works in 64-byte
// blocks; software rarely does. Unaligned writes perform verified
// read-modify-write on the boundary blocks, exactly as a memory controller
// handles partial-line writes; the aligned interior of a transfer goes
// through the batched ReadBlocks/WriteBlocks path, which verifies and
// commits counter metadata once per covering metadata block instead of once
// per data block.
//
// The same helpers serve every block device in the package — Memory and
// ShardedMemory — so the partial-block semantics cannot drift between them.

var (
	_ io.ReaderAt = (*Memory)(nil)
	_ io.WriterAt = (*Memory)(nil)
	_ io.ReaderAt = (*ShardedMemory)(nil)
	_ io.WriterAt = (*ShardedMemory)(nil)
)

// blockDevice is the block-granular surface the byte-granular helpers build
// on. Memory and ShardedMemory both satisfy it.
type blockDevice interface {
	Read(addr uint64, dst []byte) (ReadInfo, error)
	Write(addr uint64, block []byte) error
	ReadBlocks(addr uint64, dst []byte) error
	WriteBlocks(addr uint64, src []byte) error
}

// readAt implements io.ReaderAt semantics over a blockDevice.
func readAt(d blockDevice, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	// Leading partial block.
	if start := uint64(off) % BlockSize; start != 0 && n < len(p) {
		addr := uint64(off) &^ (BlockSize - 1)
		if _, err := d.Read(addr, block[:]); err != nil {
			return n, err
		}
		n += copy(p, block[start:])
	}
	// Aligned interior, batched.
	if full := (len(p) - n) &^ (BlockSize - 1); full > 0 {
		if err := d.ReadBlocks(uint64(off)+uint64(n), p[n:n+full]); err != nil {
			return n, err
		}
		n += full
	}
	// Trailing partial block.
	if n < len(p) {
		addr := uint64(off) + uint64(n)
		if _, err := d.Read(addr, block[:]); err != nil {
			return n, err
		}
		n += copy(p[n:], block[:])
	}
	return n, nil
}

// writeAt implements io.WriterAt semantics over a blockDevice.
func writeAt(d blockDevice, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	// Leading partial block: read-modify-write.
	if start := uint64(off) % BlockSize; start != 0 && n < len(p) {
		addr := uint64(off) &^ (BlockSize - 1)
		if _, err := d.Read(addr, block[:]); err != nil {
			return n, err
		}
		span := copy(block[start:], p)
		if err := d.Write(addr, block[:]); err != nil {
			return n, err
		}
		n += span
	}
	// Aligned interior, batched.
	if full := (len(p) - n) &^ (BlockSize - 1); full > 0 {
		if err := d.WriteBlocks(uint64(off)+uint64(n), p[n:n+full]); err != nil {
			return n, err
		}
		n += full
	}
	// Trailing partial block: read-modify-write.
	if n < len(p) {
		addr := uint64(off) + uint64(n)
		if _, err := d.Read(addr, block[:]); err != nil {
			return n, err
		}
		span := copy(block[:], p[n:])
		if err := d.Write(addr, block[:]); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}

// ReadAt reads len(p) bytes starting at byte offset off, verifying and
// decrypting every touched block. It implements io.ReaderAt.
func (m *Memory) ReadAt(p []byte, off int64) (int, error) { return readAt(m, p, off) }

// WriteAt writes len(p) bytes starting at byte offset off. Boundary blocks
// are read, verified, merged, and re-encrypted; the fully covered interior
// is written through the batched path. It implements io.WriterAt.
func (m *Memory) WriteAt(p []byte, off int64) (int, error) { return writeAt(m, p, off) }

// ReadAt reads len(p) bytes starting at byte offset off. Cross-shard spans
// fan out concurrently; partial boundary blocks use verified
// read-modify-write. It implements io.ReaderAt.
func (s *ShardedMemory) ReadAt(p []byte, off int64) (int, error) { return readAt(s, p, off) }

// WriteAt writes len(p) bytes starting at byte offset off. Cross-shard
// spans fan out concurrently; note that the boundary read-modify-write and
// the interior span are separate operations, so a concurrent writer to the
// same bytes can interleave between them — the usual WriterAt contract for
// overlapping writers. It implements io.WriterAt.
func (s *ShardedMemory) WriteAt(p []byte, off int64) (int, error) { return writeAt(s, p, off) }
