package authmem

import (
	"fmt"
	"io"
)

// This file provides byte-granular access over the block-granular Memory,
// implementing io.ReaderAt and io.WriterAt. Hardware works in 64-byte
// blocks; software rarely does. Unaligned writes perform verified
// read-modify-write on the boundary blocks, exactly as a memory controller
// handles partial-line writes.

var (
	_ io.ReaderAt = (*Memory)(nil)
	_ io.WriterAt = (*Memory)(nil)
)

// ReadAt reads len(p) bytes starting at byte offset off, verifying and
// decrypting every touched block. It implements io.ReaderAt.
func (m *Memory) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	for n < len(p) {
		addr := (uint64(off) + uint64(n)) &^ (BlockSize - 1)
		if _, err := m.Read(addr, block[:]); err != nil {
			return n, err
		}
		start := uint64(off) + uint64(n) - addr
		n += copy(p[n:], block[start:])
	}
	return n, nil
}

// WriteAt writes len(p) bytes starting at byte offset off. Boundary blocks
// are read, verified, merged, and re-encrypted; fully covered blocks are
// written directly. It implements io.WriterAt.
func (m *Memory) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("authmem: negative offset %d", off)
	}
	var block [BlockSize]byte
	n := 0
	for n < len(p) {
		pos := uint64(off) + uint64(n)
		addr := pos &^ (BlockSize - 1)
		start := pos - addr
		span := BlockSize - int(start)
		if rem := len(p) - n; rem < span {
			span = rem
		}
		if start != 0 || span != BlockSize {
			// Partial block: read-modify-write.
			if _, err := m.Read(addr, block[:]); err != nil {
				return n, err
			}
		}
		copy(block[start:], p[n:n+span])
		if err := m.Write(addr, block[:]); err != nil {
			return n, err
		}
		n += span
	}
	return n, nil
}
