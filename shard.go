package authmem

import (
	"io"

	"authmem/internal/core"
)

// ShardedMemory is an authenticated encrypted memory partitioned into N
// independent shards for parallel access by concurrent goroutines.
//
// Where SyncMemory serializes every operation behind one lock, a
// ShardedMemory gives each shard — a contiguous 1/N slice of the region —
// its own lock, ciphertext arena, counter state, quarantine set, verified-
// counter cache, and Merkle subtree. Accesses to different shards never
// contend, and multi-block spans that cross shard boundaries are split and
// served concurrently. A small trusted combining layer hashes the per-shard
// subtree roots into the single root digest used for persist/resume, so the
// whole memory still pins to one trusted value.
//
// Shard isolation is cryptographic as well as structural: each shard's keys
// are derived from the master key and the shard's position, so ciphertext
// or metadata moved between shards can never verify. A 1-shard
// ShardedMemory is bit-compatible with Memory, including persisted images.
//
// It is safe for concurrent use. Error addresses, quarantine lists, and
// statistics are all reported in the global address space.
type ShardedMemory struct {
	eng *core.ShardedEngine
}

// NewSharded builds a ShardedMemory with the given shard count. shards must
// be a power of two, and the region must divide into 4KB-block-group-
// aligned shards.
func NewSharded(cfg Config, shards int) (*ShardedMemory, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	eng, err := core.NewShardedEngine(icfg, shards)
	if err != nil {
		return nil, err
	}
	return &ShardedMemory{eng: eng}, nil
}

// Shards returns the shard count.
func (s *ShardedMemory) Shards() int { return s.eng.Shards() }

// ShardSize returns each shard's slice of the region in bytes.
func (s *ShardedMemory) ShardSize() uint64 { return s.eng.ShardBytes() }

// Size returns the protected region size in bytes.
func (s *ShardedMemory) Size() uint64 { return s.eng.ShardBytes() * uint64(s.eng.Shards()) }

// ShardOf returns the index of the shard owning addr.
func (s *ShardedMemory) ShardOf(addr uint64) int { return s.eng.ShardOf(addr) }

// SetLockFreeReads enables or disables the zero-lock warm-read fast path
// (enabled by default) — a benchmarking/diagnosis switch; see
// core.ShardedEngine.SetLockFreeReads. Call before concurrent traffic.
func (s *ShardedMemory) SetLockFreeReads(enabled bool) { s.eng.SetLockFreeReads(enabled) }

// LockFreeReads reports whether the warm-read fast path is enabled.
func (s *ShardedMemory) LockFreeReads() bool { return s.eng.LockFreeReads() }

// Write encrypts and stores one 64-byte block, locking only the owning
// shard. See Memory.Write.
func (s *ShardedMemory) Write(addr uint64, block []byte) error {
	return s.eng.Write(addr, block)
}

// Read verifies and decrypts one 64-byte block, locking only the owning
// shard. See Memory.Read.
func (s *ShardedMemory) Read(addr uint64, dst []byte) (ReadInfo, error) {
	return s.eng.Read(addr, dst)
}

// WriteBlocks stores a contiguous span of blocks. A span crossing shard
// boundaries is split and the per-shard segments are written concurrently.
// On error the lowest-addressed failure is returned; segments in other
// shards may have completed (span atomicity is per shard, as with
// independent memory channels). See Memory.WriteBlocks.
func (s *ShardedMemory) WriteBlocks(addr uint64, src []byte) error {
	return s.eng.WriteBlocks(addr, src)
}

// ReadBlocks reads a contiguous span of blocks, fanning cross-shard spans
// out concurrently. See WriteBlocks for the error semantics and
// Memory.ReadBlocks for the single-shard behaviour.
func (s *ShardedMemory) ReadBlocks(addr uint64, dst []byte) error {
	return s.eng.ReadBlocks(addr, dst)
}

// ReadRecover reads with the recovery ladder, locking only the owning
// shard. See Memory.ReadRecover.
func (s *ShardedMemory) ReadRecover(addr uint64, dst []byte) (RecoverInfo, error) {
	return s.eng.ReadRecover(addr, dst)
}

// SetRecoveryPolicy replaces the recovery policy on every shard.
func (s *ShardedMemory) SetRecoveryPolicy(p RecoveryPolicy) { s.eng.SetRecoveryPolicy(p) }

// RecoveryPolicy reports the policy currently in force.
func (s *ShardedMemory) RecoveryPolicy() RecoveryPolicy { return s.eng.RecoveryPolicy() }

// Quarantined reports whether the block at addr is quarantined.
func (s *ShardedMemory) Quarantined(addr uint64) bool { return s.eng.Quarantined(addr) }

// QuarantineCount returns the total quarantined blocks without allocating.
func (s *ShardedMemory) QuarantineCount() int { return s.eng.QuarantineCount() }

// QuarantineList returns global quarantined block indices in ascending
// order, or nil when the quarantine is empty.
func (s *ShardedMemory) QuarantineList() []uint64 { return s.eng.QuarantineList() }

// Stats merges per-shard engine statistics into region-wide totals.
func (s *ShardedMemory) Stats() EngineStats { return s.eng.Stats() }

// CounterStats merges per-shard counter-scheme events. See
// Memory.CounterStats.
func (s *ShardedMemory) CounterStats() CounterStats { return s.eng.SchemeStats() }

// Scrub runs one patrol-scrub pass shard by shard. See Memory.Scrub.
func (s *ShardedMemory) Scrub() (ScrubReport, error) { return s.eng.Scrub() }

// ParallelScrub scrubs all shards concurrently — here the shards themselves
// are the parallelism, one goroutine per shard.
func (s *ShardedMemory) ParallelScrub() (ScrubReport, error) { return s.eng.ParallelScrub() }

// The adversary/fault interface, routed to the owning shard. Addresses are
// global; each flip locks only the shard it lands in.

// FlipDataBit flips one stored ciphertext bit of the block at addr.
func (s *ShardedMemory) FlipDataBit(addr uint64, bit int) error {
	return s.eng.TamperCiphertext(addr, bit)
}

// FlipECCBit flips one of a block's 64 ECC-lane bits (MACInECC placement).
func (s *ShardedMemory) FlipECCBit(addr uint64, bit int) error {
	return s.eng.TamperECCLane(addr, bit)
}

// FlipMACBit flips one stored MAC-tag bit (InlineMAC placement).
func (s *ShardedMemory) FlipMACBit(addr uint64, bit int) error {
	return s.eng.TamperInlineTag(addr, bit)
}

// FlipCheckBit flips one bit of a block's codec check bytes (InlineMAC
// placement; bit range is the codec's CheckBytes*8).
func (s *ShardedMemory) FlipCheckBit(addr uint64, bit int) error {
	return s.eng.TamperCheckBit(addr, bit)
}

// FlipCounterBit flips one bit of the counter block covering addr.
func (s *ShardedMemory) FlipCounterBit(addr uint64, bit int) error {
	return s.eng.TamperCounterForAddr(addr, bit)
}

// WithShard locks shard i and runs fn against a Memory view of just that
// shard — the sharded analogue of SyncMemory.Locked, giving attack and
// fault experiments the full single-shard surface (snapshots, tree-node
// flips, counter stats) without racing concurrent traffic. Addresses inside
// fn are shard-local (subtract i*ShardSize() from global addresses). fn
// must not retain the Memory after returning.
func (s *ShardedMemory) WithShard(i int, fn func(m *Memory)) {
	s.eng.WithShard(i, func(eng *core.Engine) { fn(&Memory{eng: eng}) })
}

// FlushAll forces every shard's deferred Merkle maintenance to land, with
// the shards flushing concurrently. Each shard runs the write pipeline by
// default (writes combine into dirty tree leaves, flushed in epochs), and
// flushes itself at its epoch bound and before persist/root export; FlushAll
// is the explicit region-wide quiescent point.
func (s *ShardedMemory) FlushAll() error { return s.eng.FlushAll() }

// RootDigest returns the combining layer's trusted digest over all shard
// subtree roots — the value Persist returns, available without serializing.
func (s *ShardedMemory) RootDigest() RootDigest { return s.eng.RootDigest() }

// Persist writes the sharded NVMM image (format v2: per-shard sections
// under one header; a 1-shard memory writes a Memory-compatible v1 image)
// and returns the combined root digest. Store the digest in trusted
// storage, as with Memory.Persist — it pins every shard section against
// rollback.
func (s *ShardedMemory) Persist(w io.Writer) (RootDigest, error) { return s.eng.Persist(w) }

// ResumeSharded rebuilds a ShardedMemory from a persisted image under the
// same Config and shard count. A v1 (Memory) image is accepted when shards
// is 1. If expectRoot is non-nil the recombined root must match it.
func ResumeSharded(cfg Config, shards int, r io.Reader, expectRoot *RootDigest) (*ShardedMemory, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	eng, err := core.ResumeSharded(icfg, shards, r, expectRoot)
	if err != nil {
		return nil, err
	}
	return &ShardedMemory{eng: eng}, nil
}
