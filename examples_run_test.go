package authmem_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example program end to end — the examples
// are part of the public contract, so they must keep running clean.
// Skipped under -short (each invocation pays a build).
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples exec test")
	}
	examples := []string{"quickstart", "secure_kvstore", "fault_injection", "nvmm_wear", "tree_designs"}
	for _, name := range examples {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			done := make(chan struct{})
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			var out strings.Builder
			cmd.Stdout, cmd.Stderr = &out, &out
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			go func() {
				select {
				case <-done:
				case <-time.After(3 * time.Minute):
					_ = cmd.Process.Kill()
				}
			}()
			err := cmd.Wait()
			close(done)
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out.String())
			}
			if out.Len() == 0 {
				t.Fatalf("example %s produced no output", name)
			}
			// Examples log.Fatal on any broken security property, so a
			// clean exit with output is the assertion; but also reject
			// obvious distress words in what they printed.
			for _, bad := range []string{"undetected", "succeeded!", "panic"} {
				if strings.Contains(out.String(), bad) {
					t.Fatalf("example %s output flags a failure:\n%s", name, out.String())
				}
			}
		})
	}
}
