// Package authmem is an authenticated, encrypted memory — a from-scratch
// reproduction of "Reducing the Overhead of Authenticated Memory Encryption
// Using Delta Encoding and ECC Memory" (Yitbarek & Austin, DAC 2018).
//
// A Memory behaves like a 64-byte-block RAM whose off-chip contents an
// attacker fully controls: every block is AES-CTR encrypted under a
// per-block write counter, authenticated with a 56-bit Carter-Wegman MAC,
// and protected against replay by a Bonsai Merkle tree over the counters.
// The package implements the paper's two optimizations:
//
//   - MAC-in-ECC: MACs live in the 8 ECC bytes an ECC DIMM reserves per
//     block (with a 7-bit Hamming code over the MAC and a scrub parity
//     bit), doubling as the memory's error-detection and -correction code.
//   - Delta-encoded counters: 4KB block-groups share a 56-bit reference;
//     per-block 7-bit deltas (or 6-bit with a dual-length extension), with
//     reset/re-encode optimizations that minimize group re-encryptions.
//
// Tamper, fault-injection, snapshot/replay, and scrubbing APIs are exposed
// so the security and reliability claims can be exercised directly; see the
// examples directory.
//
// The simulation side of the reproduction (DDR3 timing, the 4-core CPU
// model, PARSEC-like workloads, and the Figure/Table harnesses) lives under
// cmd/paperbench and the internal packages.
package authmem

import (
	"fmt"
	"io"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// BlockSize is the protection granularity in bytes. All addresses passed to
// Memory must be multiples of it.
const BlockSize = core.BlockBytes

// CounterScheme selects how per-block write counters are stored.
type CounterScheme int

const (
	// Monolithic stores one 56-bit counter per block (the SGX baseline,
	// ~11% counter storage overhead, never re-encrypts).
	Monolithic CounterScheme = iota
	// SplitCounter is the split-counter baseline: a shared 64-bit major
	// counter plus a 7-bit minor per block (1.56% overhead, frequent
	// group re-encryptions).
	SplitCounter
	// DeltaEncoding is the paper's scheme: a 56-bit reference plus 7-bit
	// deltas with reset and re-encode optimizations.
	DeltaEncoding
	// DualLengthDelta is the paper's 6-bit variant with a one-shot
	// 4-bit-per-delta group extension.
	DualLengthDelta
)

func (s CounterScheme) kind() (ctr.Kind, error) {
	switch s {
	case Monolithic:
		return ctr.Monolithic, nil
	case SplitCounter:
		return ctr.Split, nil
	case DeltaEncoding:
		return ctr.Delta, nil
	case DualLengthDelta:
		return ctr.DualLength, nil
	default:
		return 0, fmt.Errorf("authmem: unknown counter scheme %d", int(s))
	}
}

// String names the scheme.
func (s CounterScheme) String() string {
	k, err := s.kind()
	if err != nil {
		return fmt.Sprintf("CounterScheme(%d)", int(s))
	}
	return k.String()
}

// MACPlacement selects where MAC tags are stored.
type MACPlacement int

const (
	// MACInECC stores MACs in the ECC lane (the paper's proposal):
	// no dedicated MAC storage, MACs arrive with the data, and the MAC
	// doubles as the error-correction code.
	MACInECC MACPlacement = iota
	// InlineMAC stores MACs in a dedicated region (the baseline); data
	// is separately protected by standard SEC-DED ECC.
	InlineMAC
)

// Config configures a Memory. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Size is the protected region in bytes (multiple of BlockSize,
	// at least one 4KB block-group).
	Size uint64
	// Scheme selects counter storage.
	Scheme CounterScheme
	// Placement selects MAC storage.
	Placement MACPlacement
	// Key is the device secret: 40 bytes (24 for the MAC, 16 for
	// AES-128 encryption). Required.
	Key []byte
	// CorrectBits bounds MAC-in-ECC flip-and-check correction (0..2,
	// default 2 — the paper's practical limit).
	CorrectBits int
	// OnChipTreeBytes is the trusted SRAM budget for the tree root
	// (default 3KB, as in the paper).
	OnChipTreeBytes int
	// MetadataCacheBytes/Ways size the counter/MAC cache used by the
	// timing model (defaults 32KB / 8); they do not affect functional
	// behaviour.
	MetadataCacheBytes int
	MetadataCacheWays  int
	// ClassicDataTree switches from the Bonsai Merkle tree to the
	// pre-2007 design with the integrity tree over the data blocks
	// themselves — ~60x more tree storage and a tree walk per access.
	// Provided as the comparative baseline the paper's §2.2 discusses.
	ClassicDataTree bool
	// CryptoBackend selects the cipher/MAC implementation: "ttable"
	// (from-scratch T-table AES, the default), "stdlib" (crypto/aes,
	// picks up AES-NI), or "batch8" (crypto/aes with batch kernels sized
	// for whole counter groups). Empty consults the
	// AUTHMEM_CRYPTO_BACKEND environment variable, then defaults to
	// "ttable". All backends produce bit-identical stored images, so a
	// region written under one verifies under any other.
	CryptoBackend string
	// ECCCodec selects the check-lane codec. Under MACInECC the only
	// codec is "macsecded" (the paper's MAC+Hamming+parity lane); under
	// InlineMAC choose "secded" (8 check bytes, corrects single-bit
	// faults) or "residue" (4 check bytes, detection only — half the
	// check storage). Unlike crypto backends, codecs change the stored
	// format and the protection guarantees: an explicit codec that does
	// not match Placement is a configuration error, and a persisted image
	// only resumes under the codec that wrote it. Empty consults the
	// AUTHMEM_ECC_CODEC environment variable (ignored when incompatible
	// with Placement), then the placement's default.
	ECCCodec string
}

// KeySize is the required Config.Key length.
const KeySize = core.KeyMaterialLen

// DefaultConfig returns the paper's recommended configuration
// (delta-encoded counters + MAC-in-ECC) for a region of the given size.
// The key must still be set by the caller.
func DefaultConfig(size uint64) Config {
	return Config{
		Size:               size,
		Scheme:             DeltaEncoding,
		Placement:          MACInECC,
		CorrectBits:        2,
		OnChipTreeBytes:    3 << 10,
		MetadataCacheBytes: 32 << 10,
		MetadataCacheWays:  8,
	}
}

func (c Config) internal() (core.Config, error) {
	kind, err := c.Scheme.kind()
	if err != nil {
		return core.Config{}, err
	}
	placement := core.MACInECC
	if c.Placement == InlineMAC {
		placement = core.MACInline
	}
	cfg := core.Config{
		RegionBytes:        c.Size,
		Scheme:             kind,
		Placement:          placement,
		MetadataCacheBytes: c.MetadataCacheBytes,
		MetadataCacheWays:  c.MetadataCacheWays,
		OnChipTreeBytes:    c.OnChipTreeBytes,
		CorrectBits:        c.CorrectBits,
		KeyMaterial:        c.Key,
		DataTree:           c.ClassicDataTree,
		CryptoBackend:      c.CryptoBackend,
		ECCCodec:           c.ECCCodec,
	}
	if cfg.MetadataCacheBytes == 0 {
		cfg.MetadataCacheBytes = 32 << 10
	}
	if cfg.MetadataCacheWays == 0 {
		cfg.MetadataCacheWays = 8
	}
	if cfg.OnChipTreeBytes == 0 {
		cfg.OnChipTreeBytes = 3 << 10
	}
	return cfg, nil
}

// Memory is an authenticated encrypted memory.
//
// It is not safe for concurrent use; wrap it with a mutex if shared.
type Memory struct {
	eng *core.Engine
}

// New builds a Memory.
func New(cfg Config) (*Memory, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(icfg)
	if err != nil {
		return nil, err
	}
	return &Memory{eng: eng}, nil
}

// ReadInfo reports repairs applied during a read.
type ReadInfo = core.ReadInfo

// IntegrityError is returned when authentication or freshness checking
// fails: the data in DRAM is not what this Memory last wrote.
type IntegrityError = core.IntegrityError

// EngineStats aggregates engine events (reads, writes, corrections,
// integrity failures).
type EngineStats = core.EngineStats

// ScrubReport summarizes one patrol-scrub pass.
type ScrubReport = core.ScrubReport

// CounterStats aggregates counter-scheme events (resets, re-encodes,
// re-encryptions).
type CounterStats = ctr.Stats

// BlockSnapshot captures a block's DRAM-visible state for replay
// experiments.
type BlockSnapshot = core.BlockSnapshot

// RecoveryPolicy bounds what ReadRecover may attempt before quarantining a
// block: bounded re-reads (transient-fault absorption) and counter-metadata
// repair from trusted on-chip state.
type RecoveryPolicy = core.RecoveryPolicy

// RecoverInfo extends ReadInfo with what ReadRecover did to serve the read.
type RecoverInfo = core.RecoverInfo

// QuarantineError is returned for reads of a block ReadRecover has poisoned
// after exhausting its recovery budget. A fresh Write releases the block.
type QuarantineError = core.QuarantineError

// DefaultRecoveryPolicy returns the policy a new Memory starts with.
func DefaultRecoveryPolicy() RecoveryPolicy { return core.DefaultRecoveryPolicy() }

// Write encrypts and stores one 64-byte block at the aligned address.
func (m *Memory) Write(addr uint64, block []byte) error {
	return m.eng.Write(addr, block)
}

// Read verifies and decrypts one 64-byte block into dst. Correctable memory
// faults are repaired transparently (and reported in ReadInfo); tampering
// or uncorrectable faults return an *IntegrityError.
func (m *Memory) Read(addr uint64, dst []byte) (ReadInfo, error) {
	return m.eng.Read(addr, dst)
}

// WriteBlocks encrypts and stores a span of contiguous blocks starting at
// the aligned address. Each touched counter block is committed once, after
// the last write it covers — substantially cheaper than per-block Write for
// streaming stores. len(src) must be a positive multiple of BlockSize.
func (m *Memory) WriteBlocks(addr uint64, src []byte) error {
	return m.eng.WriteBlocks(addr, src)
}

// ReadBlocks verifies and decrypts a span of contiguous blocks starting at
// the aligned address into dst, verifying counter metadata once per
// covering metadata block. len(dst) must be a positive multiple of
// BlockSize.
func (m *Memory) ReadBlocks(addr uint64, dst []byte) error {
	return m.eng.ReadBlocks(addr, dst)
}

// ReadRecover is Read plus the engine's recovery ladder: on an integrity
// failure it repairs counter metadata from trusted state when the failure is
// in the counter plane, re-reads a bounded number of times to absorb
// transient faults, and finally quarantines the block (subsequent reads
// return a *QuarantineError until a fresh Write releases it). RecoverInfo
// reports which rungs fired.
func (m *Memory) ReadRecover(addr uint64, dst []byte) (RecoverInfo, error) {
	return m.eng.ReadRecover(addr, dst)
}

// EnableWritePipeline turns on the deferred-Merkle write pipeline: writes
// stage their counter-block image in trusted state and mark the tree leaf
// dirty instead of rehashing its path, and dirty leaves are flushed in
// batches — once per epoch, however many writes they combined. maxDirty
// bounds the dirty set (<= 0 selects the default); the pipeline flushes
// itself at that bound, on a cold read of a dirty leaf, and before any
// state leaves the trust boundary (Persist, RootDigest, Scrub). A faulted
// dirty leaf is detected, never laundered: the tree is only ever fed images
// re-packed from the trusted counter state machine.
func (m *Memory) EnableWritePipeline(maxDirty int) error {
	return m.eng.EnableWritePipeline(maxDirty)
}

// Flush forces any deferred Merkle maintenance to land now, leaving the
// integrity tree consistent with every accepted write. A no-op when the
// write pipeline is off or the dirty set is empty.
func (m *Memory) Flush() error { return m.eng.Flush() }

// FlushAll is Flush under the name the sharded engine uses, so Memory,
// SyncMemory, and ShardedMemory expose one uniform quiescent-point API and
// code written against the smallest device (the network server, generic
// drivers) runs unchanged against all three.
func (m *Memory) FlushAll() error { return m.eng.Flush() }

// Size returns the protected region size in bytes.
func (m *Memory) Size() uint64 { return m.eng.Config().RegionBytes }

// EnableParallelReencrypt fans counter-overflow group re-encryptions out
// across a pool of workers (>= 2; lower disables the pool). The result is
// bit-identical to the serial sweep. Not available with ClassicDataTree,
// whose per-block seal updates shared tree state.
func (m *Memory) EnableParallelReencrypt(workers int) error {
	return m.eng.EnableParallelReencrypt(workers)
}

// SetRecoveryPolicy replaces the recovery policy used by ReadRecover.
func (m *Memory) SetRecoveryPolicy(p RecoveryPolicy) { m.eng.SetRecoveryPolicy(p) }

// RecoveryPolicy reports the policy currently in force.
func (m *Memory) RecoveryPolicy() RecoveryPolicy { return m.eng.RecoveryPolicy() }

// Quarantined reports whether the block at addr is quarantined.
func (m *Memory) Quarantined(addr uint64) bool { return m.eng.Quarantined(addr) }

// QuarantineCount returns the number of quarantined blocks without
// allocating.
func (m *Memory) QuarantineCount() int { return m.eng.QuarantineCount() }

// QuarantineList returns the quarantined block indices in ascending order.
func (m *Memory) QuarantineList() []uint64 { return m.eng.QuarantineList() }

// Stats reports cumulative engine events.
func (m *Memory) Stats() EngineStats { return m.eng.Stats() }

// CounterStats reports counter-scheme events: writes, resets, re-encodes,
// extensions, and group re-encryptions (the NVMM-wear driver).
func (m *Memory) CounterStats() CounterStats { return m.eng.SchemeStats() }

// Scrub runs one patrol-scrubber pass (MAC-in-ECC placement only): the
// per-block parity bit screens for single-bit faults cheaply; flagged
// blocks are verified and repaired.
func (m *Memory) Scrub() (ScrubReport, error) { return m.eng.Scrub() }

// ParallelScrub runs a patrol-scrub pass with the read-only parity screen
// sharded across workers goroutines (GOMAXPROCS when workers <= 0); flagged
// blocks are then repaired serially. The result is identical to Scrub.
func (m *Memory) ParallelScrub(workers int) (ScrubReport, error) {
	return m.eng.ParallelScrub(workers)
}

// The adversary/fault interface. These touch exactly the state an attacker
// with physical DRAM access could: ciphertext, ECC bits, MAC tags, counter
// blocks, and off-chip tree nodes.

// FlipDataBit flips one stored ciphertext bit of the block at addr.
func (m *Memory) FlipDataBit(addr uint64, bit int) error {
	return m.eng.TamperCiphertext(addr, bit)
}

// FlipECCBit flips one of a block's 64 ECC-lane bits (MACInECC placement).
func (m *Memory) FlipECCBit(addr uint64, bit int) error {
	return m.eng.TamperECCLane(addr, bit)
}

// FlipMACBit flips one stored MAC-tag bit (InlineMAC placement).
func (m *Memory) FlipMACBit(addr uint64, bit int) error {
	return m.eng.TamperInlineTag(addr, bit)
}

// FlipCheckBit flips one bit of a block's codec check bytes (InlineMAC
// placement). The valid bit range is the codec's CheckBytes*8: 64 for
// "secded", 32 for "residue".
func (m *Memory) FlipCheckBit(addr uint64, bit int) error {
	return m.eng.TamperCheckBit(addr, bit)
}

// FlipCounterBit flips one bit of the counter block covering addr.
func (m *Memory) FlipCounterBit(addr uint64, bit int) error {
	return m.eng.TamperCounterBlock(m.metadataBlock(addr), bit)
}

// FlipTreeNodeBit flips one bit of an off-chip integrity-tree node.
func (m *Memory) FlipTreeNodeBit(level int, index uint64, bit int) error {
	return m.eng.TamperTreeNode(tree.NodeID{Level: level, Index: index}, bit)
}

// Snapshot captures the DRAM-visible state of one block for a replay
// attack experiment.
func (m *Memory) Snapshot(addr uint64) (BlockSnapshot, error) {
	return m.eng.Snapshot(addr)
}

// Replay restores a snapshot into DRAM (data + MAC + counter block), the
// classic rollback attack. A subsequent Read must fail.
func (m *Memory) Replay(s BlockSnapshot) error { return m.eng.Replay(s) }

// Splice plants a snapshot's ciphertext and MAC bits at a different
// address — the block-relocation attack. Address-bound MACs catch it.
func (m *Memory) Splice(s BlockSnapshot, addr uint64) error { return m.eng.Splice(s, addr) }

func (m *Memory) metadataBlock(addr uint64) uint64 {
	// One metadata block per 4KB group for grouped schemes, per 8 blocks
	// for monolithic; derive from the engine's scheme geometry via the
	// overhead calculator to avoid exposing internal state.
	blk := addr / BlockSize
	switch m.eng.Config().Scheme {
	case ctr.Monolithic:
		return blk / 8
	default:
		return blk / ctr.GroupBlocks
	}
}

// RootDigest pins the integrity tree's trusted root across power cycles.
type RootDigest = core.RootDigest

// RootDigest returns the trusted root digest over the current state — the
// value Persist would return — without serializing the image. Any deferred
// write-pipeline maintenance is flushed first, so the digest always covers
// every accepted write.
func (m *Memory) RootDigest() RootDigest { return m.eng.RootDigest() }

// Persist writes the memory's NVMM image (ciphertext, ECC/MAC bits, counter
// blocks, integrity tree) to w and returns the root digest. Store the
// digest in trusted storage: resuming without pinning it leaves whole-image
// rollback undetectable.
func (m *Memory) Persist(w io.Writer) (RootDigest, error) {
	return m.eng.Persist(w)
}

// Resume rebuilds a Memory from a persisted image under the same Config
// (including the key, which is never stored in the image). If expectRoot is
// non-nil the restored tree root must match it. All counter metadata is
// verified against the tree before the memory is usable; data blocks verify
// on demand.
func Resume(cfg Config, r io.Reader, expectRoot *RootDigest) (*Memory, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return nil, err
	}
	eng, err := core.Resume(icfg, r, expectRoot)
	if err != nil {
		return nil, err
	}
	return &Memory{eng: eng}, nil
}

// Overhead reports the storage cost of a configuration (Figure 1).
type Overhead = core.Overhead

// ComputeOverhead derives the storage breakdown for a configuration.
func ComputeOverhead(cfg Config) (Overhead, error) {
	icfg, err := cfg.internal()
	if err != nil {
		return Overhead{}, err
	}
	return core.ComputeOverhead(icfg)
}
