package dram

import (
	"testing"
)

func mem(t testing.TB) *Memory {
	t.Helper()
	m, err := New(DDR3_1600(4))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := DDR3_1600(4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.Banks = -1 },
		func(c *Config) { c.RowBytes = 100 },
		func(c *Config) { c.RowBytes = 32 },
		func(c *Config) { c.CL = 0 },
		func(c *Config) { c.CWL = 0 },
		func(c *Config) { c.TRCD = 0 },
		func(c *Config) { c.TRP = 0 },
		func(c *Config) { c.TRC = 0 },
		func(c *Config) { c.Burst = 0 },
		func(c *Config) { c.CPUCyclesPerDRAMCycle = 0 },
	}
	for i, mut := range mutations {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d should invalidate config", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New with zero config should fail")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic")
		}
	}()
	MustNew(Config{})
}

func TestColdReadLatency(t *testing.T) {
	m := mem(t)
	done := m.Access(0, 0, false)
	// Row empty: tRCD + CL + burst, times the clock ratio.
	want := uint64(11+11+4) * 4
	if done != want {
		t.Fatalf("cold read completes at %d, want %d", done, want)
	}
	if m.Stats().RowEmpty != 1 || m.Stats().Reads != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
	if m.IdleReadLatencyCPU() != want {
		t.Fatalf("IdleReadLatencyCPU = %d", m.IdleReadLatencyCPU())
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	m := mem(t)
	m.Access(0, 0, false) // opens a row on channel 0

	// Same block again, much later: row hit, only CL + burst.
	t0 := uint64(10000)
	hitDone := m.Access(t0, 0, false)
	hitLat := hitDone - t0

	// Same bank, different row: precharge + activate + CL.
	rowBytes := uint64(m.Config().RowBytes)
	banks := uint64(m.Config().Banks)
	channels := uint64(m.Config().Channels)
	conflictAddr := rowBytes * banks * channels // same channel 0, bank 0, row 1
	if ch, bk, row := m.mapAddr(conflictAddr); ch != 0 || bk != 0 || row != 1 {
		t.Fatalf("address mapping: ch=%d bk=%d row=%d", ch, bk, row)
	}
	t1 := uint64(20000)
	missDone := m.Access(t1, conflictAddr, false)
	missLat := missDone - t1

	if hitLat >= missLat {
		t.Fatalf("row hit (%d) not faster than conflict (%d)", hitLat, missLat)
	}
	wantHit := uint64(11+4) * 4
	if hitLat != wantHit {
		t.Fatalf("row hit latency %d, want %d", hitLat, wantHit)
	}
	if m.Stats().RowHits != 1 || m.Stats().RowMisses != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestChannelInterleaving(t *testing.T) {
	m := mem(t)
	seen := map[int]bool{}
	for blk := uint64(0); blk < 8; blk++ {
		ch, _, _ := m.mapAddr(blk * 64)
		seen[ch] = true
	}
	if len(seen) != 4 {
		t.Fatalf("8 consecutive blocks hit %d channels, want 4", len(seen))
	}
}

func TestParallelChannelsOverlap(t *testing.T) {
	// Two simultaneous requests on different channels should both finish
	// at cold latency; on the same channel+bank they serialize.
	m := mem(t)
	d0 := m.Access(0, 0, false)  // channel 0
	d1 := m.Access(0, 64, false) // channel 1
	if d0 != d1 {
		t.Fatalf("independent channels interfered: %d vs %d", d0, d1)
	}

	m2 := mem(t)
	e0 := m2.Access(0, 0, false)
	e1 := m2.Access(0, 4*64, false) // same channel 0, same row
	if e1 <= e0 {
		t.Fatalf("same-bank back-to-back reads did not serialize: %d then %d", e0, e1)
	}
}

func TestBankConflictRespectsTRC(t *testing.T) {
	m := mem(t)
	cfg := m.Config()
	// Two row conflicts in a row on one bank: the second activate must
	// wait out tRC from the first.
	rowStride := uint64(cfg.RowBytes * cfg.Banks * cfg.Channels)
	m.Access(0, 0, false)
	d1 := m.Access(0, rowStride, false)
	d2 := m.Access(0, 2*rowStride, false)
	if d2-d1 < uint64(cfg.TRC)*uint64(cfg.CPUCyclesPerDRAMCycle)/2 {
		t.Fatalf("activates %d apart look too close for tRC", d2-d1)
	}
	if m.Stats().RowMisses != 2 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestWriteUsesCWL(t *testing.T) {
	m := mem(t)
	done := m.Access(0, 0, true)
	want := uint64(11+8+4) * 4 // tRCD + CWL + burst
	if done != want {
		t.Fatalf("cold write completes at %d, want %d", done, want)
	}
	if m.Stats().Writes != 1 || m.Stats().Reads != 0 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

func TestBusSerializesBursts(t *testing.T) {
	// Many same-cycle row hits on one channel, different banks: each
	// burst occupies the shared data bus, so completions spread out by at
	// least Burst cycles.
	m := mem(t)
	cfg := m.Config()
	// Warm up one row in every bank of channel 0.
	for b := 0; b < cfg.Banks; b++ {
		addr := uint64(b) * uint64(cfg.RowBytes) * uint64(cfg.Channels)
		m.Access(0, addr, false)
	}
	var last uint64
	t0 := uint64(100000)
	for b := 0; b < cfg.Banks; b++ {
		addr := uint64(b) * uint64(cfg.RowBytes) * uint64(cfg.Channels)
		done := m.Access(t0, addr, false)
		if b > 0 && done < last+uint64(cfg.Burst)*uint64(cfg.CPUCyclesPerDRAMCycle) {
			t.Fatalf("bank %d burst overlaps previous: %d after %d", b, done, last)
		}
		last = done
	}
}

func TestStatsAverages(t *testing.T) {
	var s Stats
	if s.AvgReadLatency() != 0 || s.RowHitRate() != 0 {
		t.Fatal("idle stats should be zero")
	}
	s = Stats{Reads: 2, TotalReadLatency: 200, RowHits: 3, RowEmpty: 1}
	if s.AvgReadLatency() != 100 {
		t.Fatalf("avg latency %v", s.AvgReadLatency())
	}
	if s.RowHitRate() != 0.75 {
		t.Fatalf("row hit rate %v", s.RowHitRate())
	}
}

func TestResetStats(t *testing.T) {
	m := mem(t)
	m.Access(0, 0, false)
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("stats survived reset")
	}
	// Bank state must survive: the next access to the same row is a hit.
	m.Access(1000, 0, false)
	if m.Stats().RowHits != 1 {
		t.Fatal("bank state lost by ResetStats")
	}
}

func TestMonotonicCompletionUnderLoad(t *testing.T) {
	// A saturating random stream must never complete before it was issued.
	m := mem(t)
	var now uint64
	for i := 0; i < 20000; i++ {
		addr := uint64(i*97%4096) * 64
		done := m.Access(now, addr, i%4 == 0)
		if done < now {
			t.Fatalf("request issued at %d completed at %d", now, done)
		}
		now += 2
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := mem(t)
	cfg := m.Config()
	// Cold read: one activate + one read burst.
	m.Access(0, 0, false)
	want := cfg.EnergyActivatePJ + cfg.EnergyReadBurstPJ
	if got := m.Stats().EnergyPJ; got != want {
		t.Fatalf("cold read energy %d, want %d", got, want)
	}
	// Row-hit read: just a burst.
	m.Access(1000, 0, false)
	want += cfg.EnergyReadBurstPJ
	if got := m.Stats().EnergyPJ; got != want {
		t.Fatalf("hit read energy %d, want %d", got, want)
	}
	// Row-hit write: a write burst.
	m.Access(2000, 0, true)
	want += cfg.EnergyWriteBurstPJ
	if got := m.Stats().EnergyPJ; got != want {
		t.Fatalf("write energy %d, want %d", got, want)
	}
	// A refresh adds its charge.
	m.Access(uint64(cfg.TREFI)*uint64(cfg.CPUCyclesPerDRAMCycle)+100000, 0, false)
	st := m.Stats()
	if st.Refreshes == 0 {
		t.Fatal("expected a refresh")
	}
	want += st.Refreshes*cfg.EnergyRefreshPJ + cfg.EnergyActivatePJ + cfg.EnergyReadBurstPJ
	if st.EnergyPJ != want {
		t.Fatalf("post-refresh energy %d, want %d", st.EnergyPJ, want)
	}
	if st.EnergyMJ() != float64(want)/1e9 {
		t.Fatal("EnergyMJ conversion wrong")
	}
}

func TestEnergyDisabled(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.EnergyActivatePJ, cfg.EnergyReadBurstPJ = 0, 0
	cfg.EnergyWriteBurstPJ, cfg.EnergyRefreshPJ = 0, 0
	m := MustNew(cfg)
	m.Access(0, 0, false)
	m.Access(0, 64, true)
	if m.Stats().EnergyPJ != 0 {
		t.Fatal("zeroed constants should disable energy tracking")
	}
}

func TestWriteBufferPostsImmediately(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.WriteBufferDepth = 8
	m := MustNew(cfg)
	if done := m.Access(1000, 0, true); done != 1000 {
		t.Fatalf("posted write acked at %d, want 1000", done)
	}
	if st := m.Stats(); st.Writes != 1 || st.WriteDrains != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBufferDrainsBeforeLaterRead(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.WriteBufferDepth = 8
	m := MustNew(cfg)
	m.Access(0, 0, true) // posted
	// A read far in the future: the write has long drained; the read
	// sees a row hit from the drained write's activate.
	m.Access(20000, 0, false)
	st := m.Stats()
	if st.WriteDrains != 1 {
		t.Fatalf("write not drained: %+v", st)
	}
	if st.RowHits != 1 {
		t.Fatalf("drained write should have opened the row: %+v", st)
	}
}

func TestWriteBufferFullForcesDrain(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.WriteBufferDepth = 2
	m := MustNew(cfg)
	// Three back-to-back writes at the same cycle: the third must force
	// a drain of the first.
	m.Access(0, 0, true)
	m.Access(0, 64, true)
	m.Access(0, 128, true)
	st := m.Stats()
	if st.WriteDrainsForced != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Writes != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBufferImprovesReadLatencyUnderWrites(t *testing.T) {
	// Interleaved write bursts + reads: with a write buffer, reads should
	// see lower average latency than with write-through.
	run := func(depth int) float64 {
		cfg := DDR3_1600(1)
		cfg.WriteBufferDepth = depth
		m := MustNew(cfg)
		var now uint64
		for i := 0; i < 3000; i++ {
			// A write burst, then a demand read right behind it.
			for w := 0; w < 4; w++ {
				m.Access(now, uint64(1000+i*4+w)*64, true)
			}
			done := m.Access(now, uint64(i%64)*64, false)
			now = done + 50
		}
		return m.Stats().AvgReadLatency()
	}
	through, buffered := run(0), run(32)
	if buffered >= through {
		t.Fatalf("write buffer did not help reads: buffered %.1f vs through %.1f",
			buffered, through)
	}
}

func TestRefreshValidation(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.TRFC = cfg.TREFI
	if err := cfg.Validate(); err == nil {
		t.Fatal("tRFC >= tREFI should fail")
	}
	cfg = DDR3_1600(1)
	cfg.TREFI = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative tREFI should fail")
	}
}

func TestRefreshStallsRequests(t *testing.T) {
	m := mem(t)
	cfg := m.Config()
	ratio := uint64(cfg.CPUCyclesPerDRAMCycle)
	// A request landing exactly at the first refresh boundary waits out
	// tRFC before its activate.
	at := uint64(cfg.TREFI) * ratio
	done := m.Access(at, 0, false)
	wantMin := at + uint64(cfg.TRFC)*ratio
	if done < wantMin {
		t.Fatalf("request during refresh completed at %d, want >= %d", done, wantMin)
	}
	st := m.Stats()
	if st.Refreshes != 1 || st.RefreshStallCycles == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRefreshClosesRows(t *testing.T) {
	m := mem(t)
	cfg := m.Config()
	ratio := uint64(cfg.CPUCyclesPerDRAMCycle)
	m.Access(0, 0, false) // opens a row
	// Well past a refresh: the re-access must be a row-empty activate,
	// not a row hit.
	m.Access(2*uint64(cfg.TREFI)*ratio, 0, false)
	if st := m.Stats(); st.RowHits != 0 || st.RowEmpty != 2 {
		t.Fatalf("refresh did not close rows: %+v", st)
	}
}

func TestRefreshCatchUpIsO1(t *testing.T) {
	// A request after a huge idle gap must account all missed refreshes
	// in one step (and not hang).
	m := mem(t)
	cfg := m.Config()
	gap := uint64(cfg.TREFI) * 1_000_000 * uint64(cfg.CPUCyclesPerDRAMCycle)
	m.Access(gap, 0, false)
	if st := m.Stats(); st.Refreshes != 1_000_000 {
		t.Fatalf("refreshes %d, want 1000000", st.Refreshes)
	}
}

func TestRefreshDisabled(t *testing.T) {
	cfg := DDR3_1600(1)
	cfg.TREFI, cfg.TRFC = 0, 0
	m := MustNew(cfg)
	m.Access(1<<40, 0, false)
	if m.Stats().Refreshes != 0 {
		t.Fatal("disabled refresh still fired")
	}
}

func BenchmarkAccessStream(b *testing.B) {
	m := MustNew(DDR3_1600(4))
	var now uint64
	for i := 0; i < b.N; i++ {
		now = m.Access(now, uint64(i)*64, false)
	}
}

func BenchmarkAccessRandom(b *testing.B) {
	m := MustNew(DDR3_1600(4))
	var now uint64
	for i := 0; i < b.N; i++ {
		addr := uint64((i*2654435761)%(1<<20)) * 64
		now = m.Access(now, addr, false)
	}
}
