// Package dram implements a DDR3-style DRAM timing model — the DRAMSim2
// substitute of this reproduction.
//
// The model tracks, per channel, a set of banks with open-row state and a
// shared data bus, and prices each 64-byte access with standard DDR timing
// components: row-activate (tRCD), column access (CL / CWL), precharge
// (tRP), row-cycle minimum (tRC), and burst occupancy. This is coarser than
// DRAMSim2 (no command-bus contention, no refresh, FCFS per bank), but it
// preserves exactly what the paper's results depend on: every extra
// metadata transaction (counter read, tree-node read, MAC read) pays a
// realistic, contention-sensitive DRAM latency, and removing transactions
// (MAC-in-ECC) saves that latency and the bus occupancy.
//
// The 72-bit ECC lane of Figure 2 is modeled structurally: a data burst
// carries its block's 8 ECC bytes at no additional cost, so a controller
// using MAC-in-ECC simply issues no MAC transaction at all.
package dram

import (
	"fmt"

	"authmem/internal/stats"
)

// Config describes the DRAM geometry and timing in memory-clock cycles.
type Config struct {
	// Channels is the number of independent channels (Table 1: 4).
	Channels int
	// Banks is the number of banks per channel.
	Banks int
	// RowBytes is the row-buffer (page) size per bank.
	RowBytes int

	// CL is the CAS (read column) latency.
	CL int
	// CWL is the CAS write latency.
	CWL int
	// TRCD is the row-to-column delay (activate latency).
	TRCD int
	// TRP is the precharge latency.
	TRP int
	// TRC is the minimum activate-to-activate interval for one bank.
	TRC int
	// Burst is the data-bus occupancy of one 64-byte transfer
	// (BL8 on a 64-bit bus = 4 memory clocks).
	Burst int

	// WriteBufferDepth enables a read-priority write buffer of the given
	// depth per channel: writes acknowledge immediately and drain when
	// the bus is otherwise idle, as real controllers schedule them. A
	// read arriving at a full buffer first waits for a forced drain.
	// 0 keeps the simple write-through model.
	WriteBufferDepth int

	// TREFI is the all-bank refresh interval in memory cycles
	// (DDR3: 7.8us = 6240 cycles at 800MHz). 0 disables refresh.
	TREFI int
	// TRFC is the refresh cycle time during which a channel's banks are
	// unavailable (DDR3 4Gb: ~208 cycles).
	TRFC int

	// CPUCyclesPerDRAMCycle converts to core cycles (3.2GHz core over
	// 800MHz DDR3-1600 memory clock = 4).
	CPUCyclesPerDRAMCycle int

	// Energy-per-event constants in picojoules, for the §4.1 energy-
	// efficiency accounting (typical DDR3 values derived from IDD
	// currents; zero disables energy tracking). Each row activation
	// includes its precharge; bursts are per 64-byte transfer.
	EnergyActivatePJ   uint64
	EnergyReadBurstPJ  uint64
	EnergyWriteBurstPJ uint64
	EnergyRefreshPJ    uint64
}

// DDR3_1600 returns the timing used in the paper's Table 1 setup:
// DDR3-1600 (800MHz memory clock), CL-tRCD-tRP = 11-11-11, with the stated
// number of channels and a 3.2GHz core clock.
func DDR3_1600(channels int) Config {
	return Config{
		Channels:              channels,
		Banks:                 8,
		RowBytes:              8 << 10,
		CL:                    11,
		CWL:                   8,
		TRCD:                  11,
		TRP:                   11,
		TRC:                   39,
		Burst:                 4,
		TREFI:                 6240,
		TRFC:                  208,
		CPUCyclesPerDRAMCycle: 4,
		// DDR3-1600 ballpark: ~20nJ per ACT+PRE, ~4nJ per RD burst,
		// ~4.5nJ per WR burst, ~120nJ per all-bank refresh.
		EnergyActivatePJ:   20000,
		EnergyReadBurstPJ:  4000,
		EnergyWriteBurstPJ: 4500,
		EnergyRefreshPJ:    120000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return fmt.Errorf("dram: channels must be positive")
	case c.Banks <= 0:
		return fmt.Errorf("dram: banks must be positive")
	case c.RowBytes < 64 || c.RowBytes&(c.RowBytes-1) != 0:
		return fmt.Errorf("dram: row size %d invalid", c.RowBytes)
	case c.CL <= 0 || c.CWL <= 0 || c.TRCD <= 0 || c.TRP <= 0 || c.TRC <= 0 || c.Burst <= 0:
		return fmt.Errorf("dram: timing parameters must be positive")
	case c.TREFI < 0 || c.TRFC < 0:
		return fmt.Errorf("dram: refresh parameters must be non-negative")
	case c.TREFI > 0 && c.TRFC >= c.TREFI:
		return fmt.Errorf("dram: tRFC %d must be below tREFI %d", c.TRFC, c.TREFI)
	case c.CPUCyclesPerDRAMCycle <= 0:
		return fmt.Errorf("dram: clock ratio must be positive")
	}
	return nil
}

// Stats counts DRAM events.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64 // conflict: another row was open
	RowEmpty  uint64 // bank was precharged
	// BusBusyDRAMCycles accumulates data-bus occupancy across channels.
	BusBusyDRAMCycles uint64
	// TotalReadLatency accumulates read latency in CPU cycles, for
	// average-latency reporting.
	TotalReadLatency uint64
	// Refreshes counts all-bank refresh operations issued.
	Refreshes uint64
	// RefreshStallCycles accumulates memory cycles requests spent waiting
	// out refresh windows.
	RefreshStallCycles uint64
	// WriteDrains counts buffered writes serviced; WriteDrainsForced are
	// the subset that had to run at request time because the buffer was
	// full.
	WriteDrains       uint64
	WriteDrainsForced uint64
	// EnergyPJ accumulates DRAM dynamic energy in picojoules
	// (activations, bursts, refreshes) when the config's energy
	// constants are set.
	EnergyPJ uint64
}

// EnergyMJ returns accumulated DRAM energy in millijoules.
func (s Stats) EnergyMJ() float64 { return float64(s.EnergyPJ) / 1e9 }

// AvgReadLatency returns the mean read latency in CPU cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

// RowHitRate returns row-buffer hits over all accesses.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowEmpty
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

type bank struct {
	rowOpen      bool
	openRow      uint64
	readyCycle   uint64 // earliest next column command
	lastActivate uint64
	hasActivated bool
}

type channel struct {
	banks       []bank
	busFreeAt   uint64 // memory-clock cycle the data bus frees up
	nextRefresh uint64 // memory-clock cycle of the next all-bank refresh
	writeQueue  []queuedWrite
}

type queuedWrite struct {
	addr     uint64
	enqueued uint64 // memory-clock cycle of arrival
}

// Memory is a multi-channel DRAM timing model. Not safe for concurrent use.
type Memory struct {
	cfg   Config
	chans []channel
	stats Stats
	lat   stats.Histogram // read latencies in CPU cycles

	blocksPerRow uint64
}

// New builds a Memory from a validated Config.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Memory{cfg: cfg, blocksPerRow: uint64(cfg.RowBytes / 64)}
	m.chans = make([]channel, cfg.Channels)
	for i := range m.chans {
		m.chans[i].banks = make([]bank, cfg.Banks)
		m.chans[i].nextRefresh = uint64(cfg.TREFI)
	}
	return m, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Memory {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the memory geometry.
func (m *Memory) Config() Config { return m.cfg }

// mapAddr decomposes a byte address into channel, bank, and row.
// Consecutive 64-byte blocks interleave across channels (maximizing
// channel-level parallelism for streams), then across row-sized chunks
// over banks.
func (m *Memory) mapAddr(addr uint64) (ch, bk int, row uint64) {
	blk := addr / 64
	ch = int(blk % uint64(m.cfg.Channels))
	within := blk / uint64(m.cfg.Channels)
	rowIdx := within / m.blocksPerRow
	bk = int(rowIdx % uint64(m.cfg.Banks))
	row = rowIdx / uint64(m.cfg.Banks)
	return ch, bk, row
}

// Access issues one 64-byte transaction at CPU cycle `cpuNow` and returns
// the CPU cycle at which the transfer completes. With a write buffer
// configured, writes acknowledge immediately and drain in the background;
// reads get bus priority (the standard controller policy that keeps
// metadata writebacks and re-encryption streams off the critical path).
func (m *Memory) Access(cpuNow uint64, addr uint64, write bool) uint64 {
	cfg := m.cfg
	now := cpuNow / uint64(cfg.CPUCyclesPerDRAMCycle)
	chIdx, _, _ := m.mapAddr(addr)
	ch := &m.chans[chIdx]

	if cfg.WriteBufferDepth > 0 {
		m.lazyDrain(ch, now)
		if write {
			if len(ch.writeQueue) >= cfg.WriteBufferDepth {
				// Full: force-drain the oldest to make room.
				m.serviceOldestWrite(ch, now)
				m.stats.WriteDrainsForced++
			}
			ch.writeQueue = append(ch.writeQueue, queuedWrite{addr: addr, enqueued: now})
			m.stats.Writes++
			return cpuNow // posted write: immediate ack
		}
	}

	done := m.serviceAt(ch, now, addr, write)
	doneCPU := done * uint64(cfg.CPUCyclesPerDRAMCycle)
	if write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
		m.stats.TotalReadLatency += doneCPU - cpuNow
		m.lat.Observe(doneCPU - cpuNow)
	}
	return doneCPU
}

// lazyDrain services queued writes that could have used the bus before
// `now` (the channel was idle), in arrival order.
func (m *Memory) lazyDrain(ch *channel, now uint64) {
	for len(ch.writeQueue) > 0 && ch.busFreeAt < now {
		m.serviceOldestWrite(ch, now)
	}
}

// serviceOldestWrite pops and performs the channel's oldest queued write.
func (m *Memory) serviceOldestWrite(ch *channel, now uint64) {
	w := ch.writeQueue[0]
	ch.writeQueue = ch.writeQueue[1:]
	start := w.enqueued
	if ch.busFreeAt > start {
		start = ch.busFreeAt
	}
	if start > now {
		start = now // forced drains happen at request time
	}
	m.serviceAt(ch, start, w.addr, true)
	m.stats.WriteDrains++
}

// serviceAt runs one transaction through the bank state machine and the
// shared bus, returning the completion memory cycle.
func (m *Memory) serviceAt(ch *channel, now uint64, addr uint64, write bool) uint64 {
	cfg := m.cfg
	_, bkIdx, row := m.mapAddr(addr)
	b := &ch.banks[bkIdx]

	start := now
	if b.readyCycle > start {
		start = b.readyCycle
	}
	start = m.applyRefresh(ch, start)

	var colReady uint64
	switch {
	case b.rowOpen && b.openRow == row:
		m.stats.RowHits++
		colReady = start
	case b.rowOpen:
		m.stats.RowMisses++
		// Precharge, then activate (respecting tRC from the last
		// activate), then tRCD.
		act := start + uint64(cfg.TRP)
		if b.hasActivated && b.lastActivate+uint64(cfg.TRC) > act {
			act = b.lastActivate + uint64(cfg.TRC)
		}
		b.lastActivate, b.hasActivated = act, true
		colReady = act + uint64(cfg.TRCD)
		m.stats.EnergyPJ += cfg.EnergyActivatePJ
	default:
		m.stats.RowEmpty++
		act := start
		if b.hasActivated && b.lastActivate+uint64(cfg.TRC) > act {
			act = b.lastActivate + uint64(cfg.TRC)
		}
		b.lastActivate, b.hasActivated = act, true
		colReady = act + uint64(cfg.TRCD)
		m.stats.EnergyPJ += cfg.EnergyActivatePJ
	}
	b.rowOpen, b.openRow = true, row

	cas := uint64(cfg.CL)
	if write {
		cas = uint64(cfg.CWL)
		m.stats.EnergyPJ += cfg.EnergyWriteBurstPJ
	} else {
		m.stats.EnergyPJ += cfg.EnergyReadBurstPJ
	}
	dataStart := colReady + cas
	if ch.busFreeAt > dataStart {
		dataStart = ch.busFreeAt
	}
	done := dataStart + uint64(cfg.Burst)
	ch.busFreeAt = done
	b.readyCycle = colReady + uint64(cfg.Burst) // next column command

	m.stats.BusBusyDRAMCycles += uint64(cfg.Burst)
	return done
}

// ReadLatencyHistogram exposes the distribution of read latencies (CPU
// cycles) for percentile reporting.
func (m *Memory) ReadLatencyHistogram() *stats.Histogram { return &m.lat }

// applyRefresh models DDR all-bank refresh: every tREFI the channel spends
// tRFC unavailable with all rows closed. A request landing inside a refresh
// window waits it out; long-idle channels catch up in O(1).
func (m *Memory) applyRefresh(ch *channel, start uint64) uint64 {
	trefi, trfc := uint64(m.cfg.TREFI), uint64(m.cfg.TRFC)
	if trefi == 0 {
		return start
	}
	if start < ch.nextRefresh {
		return start
	}
	// Count refreshes due by `start` without iterating.
	missed := (start-ch.nextRefresh)/trefi + 1
	m.stats.Refreshes += missed
	m.stats.EnergyPJ += missed * m.cfg.EnergyRefreshPJ
	last := ch.nextRefresh + (missed-1)*trefi
	ch.nextRefresh = last + trefi
	// Refresh closes every row in the channel.
	for i := range ch.banks {
		ch.banks[i].rowOpen = false
	}
	if start < last+trfc {
		m.stats.RefreshStallCycles += last + trfc - start
		start = last + trfc
	}
	return start
}

// Stats returns cumulative event counts.
func (m *Memory) Stats() Stats { return m.stats }

// ResetStats zeroes counters and the latency histogram without touching
// bank state.
func (m *Memory) ResetStats() {
	m.stats = Stats{}
	m.lat = stats.Histogram{}
}

// IdleReadLatencyCPU returns the no-contention read latency in CPU cycles
// for a row-empty access: activate + CAS + burst. Useful as a reference
// point in reports.
func (m *Memory) IdleReadLatencyCPU() uint64 {
	return uint64(m.cfg.TRCD+m.cfg.CL+m.cfg.Burst) * uint64(m.cfg.CPUCyclesPerDRAMCycle)
}
