package keystream

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func testCipher(t testing.TB) *Cipher {
	t.Helper()
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i + 1)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key should fail", n)
		}
	}
	// 24/32-byte keys are valid AES variants and should be accepted.
	for _, n := range []int{24, 32} {
		if _, err := New(make([]byte, n)); err != nil {
			t.Errorf("New with %d-byte key failed: %v", n, err)
		}
	}
}

func TestPadSizeChecks(t *testing.T) {
	c := testCipher(t)
	if err := c.Pad(make([]byte, 32), 0, 0); err == nil {
		t.Fatal("short dst should fail")
	}
	if err := c.XOR(make([]byte, 64), make([]byte, 32), 0, 0); err == nil {
		t.Fatal("short src should fail")
	}
}

func TestXORRoundTrip(t *testing.T) {
	c := testCipher(t)
	f := func(seed int64, addr, ctr uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := make([]byte, BlockSize)
		rng.Read(pt)
		ct := make([]byte, BlockSize)
		if err := c.XOR(ct, pt, addr, ctr); err != nil {
			return false
		}
		back := make([]byte, BlockSize)
		if err := c.XOR(back, ct, addr, ctr); err != nil {
			return false
		}
		return bytes.Equal(back, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestXORInPlace(t *testing.T) {
	c := testCipher(t)
	pt := make([]byte, BlockSize)
	rand.New(rand.NewSource(1)).Read(pt)
	buf := append([]byte(nil), pt...)
	if err := c.XOR(buf, buf, 7, 9); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(buf, pt) {
		t.Fatal("in-place XOR left plaintext unchanged")
	}
	if err := c.XOR(buf, buf, 7, 9); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, pt) {
		t.Fatal("in-place round trip failed")
	}
}

func TestPadUniqueAcrossAddresses(t *testing.T) {
	c := testCipher(t)
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	if err := c.Pad(a, 0x1000, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Pad(b, 0x1040, 5); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("same pad for different addresses")
	}
}

func TestPadUniqueAcrossCounters(t *testing.T) {
	c := testCipher(t)
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	if err := c.Pad(a, 0x1000, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.Pad(b, 0x1000, 6); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("same pad for different counters")
	}
}

func TestPadLanesDistinct(t *testing.T) {
	// The four 16-byte AES lanes within one pad must differ, otherwise
	// the pad would leak equality of plaintext quarters.
	c := testCipher(t)
	pad := make([]byte, BlockSize)
	if err := c.Pad(pad, 0x2000, 3); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(pad[i*16:(i+1)*16], pad[j*16:(j+1)*16]) {
				t.Fatalf("pad lanes %d and %d identical", i, j)
			}
		}
	}
}

func TestPadDeterministic(t *testing.T) {
	c := testCipher(t)
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	if err := c.Pad(a, 42, 42); err != nil {
		t.Fatal(err)
	}
	if err := c.Pad(b, 42, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("pad is not deterministic")
	}
}

// TestPadByteDistribution is a coarse statistical sanity check: over many
// pads, each byte position should be close to uniform (chi-square over 256
// bins stays below a generous threshold).
func TestPadByteDistribution(t *testing.T) {
	c := testCipher(t)
	const pads = 4096
	var counts [256]uint64
	buf := make([]byte, BlockSize)
	for i := 0; i < pads; i++ {
		if err := c.Pad(buf, uint64(i)*64, uint64(i)); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			counts[b]++
		}
	}
	total := float64(pads * BlockSize)
	expected := total / 256
	var chi2 float64
	for _, n := range counts {
		d := float64(n) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom; mean 255, stddev ~22.6. 400 is ~6 sigma.
	if chi2 > 400 {
		t.Fatalf("keystream bytes non-uniform: chi2 = %.1f", chi2)
	}
}

// TestPadBitBalance checks the monobit property: about half of all
// keystream bits are set.
func TestPadBitBalance(t *testing.T) {
	c := testCipher(t)
	var ones, total int
	buf := make([]byte, BlockSize)
	for i := 0; i < 2048; i++ {
		if err := c.Pad(buf, uint64(i)*64, 7); err != nil {
			t.Fatal(err)
		}
		for _, b := range buf {
			for bit := 0; bit < 8; bit++ {
				if b>>uint(bit)&1 == 1 {
					ones++
				}
				total++
			}
		}
	}
	frac := float64(ones) / float64(total)
	if frac < 0.495 || frac > 0.505 {
		t.Fatalf("keystream bit balance %.4f, want ~0.5", frac)
	}
}

// TestPadNMatchesPad proves the batch pad equal to per-block Pad calls.
func TestPadNMatchesPad(t *testing.T) {
	c := testCipher(t)
	for _, nblocks := range []int{1, 2, 7, 64} {
		batch := make([]byte, nblocks*BlockSize)
		if err := c.PadN(batch, 0x8000, 11); err != nil {
			t.Fatal(err)
		}
		one := make([]byte, BlockSize)
		for i := 0; i < nblocks; i++ {
			if err := c.Pad(one, 0x8000+uint64(i)*BlockSize, 11); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(one, batch[i*BlockSize:(i+1)*BlockSize]) {
				t.Fatalf("PadN block %d of %d differs from Pad", i, nblocks)
			}
		}
	}
}

func TestPadNSizeChecks(t *testing.T) {
	c := testCipher(t)
	for _, n := range []int{0, 32, 65, 100} {
		if err := c.PadN(make([]byte, n), 0, 0); err == nil {
			t.Errorf("PadN with %d bytes should fail", n)
		}
	}
	if err := c.XORBlocks(make([]byte, 64), make([]byte, 128), 0, 0); err == nil {
		t.Error("XORBlocks length mismatch should fail")
	}
	if err := c.XORBlocks(make([]byte, 96), make([]byte, 96), 0, 0); err == nil {
		t.Error("XORBlocks non-multiple length should fail")
	}
}

// TestXORBlocksMatchesScalarXOR proves the batch XOR equal to per-block
// scalar XOR, in both the separate-buffer and the exactly-aliasing
// (dst == src) arrangements, with and without the pad cache.
func TestXORBlocksMatchesScalarXOR(t *testing.T) {
	for _, cached := range []bool{false, true} {
		c := testCipher(t)
		if cached {
			if err := c.EnablePadCache(64); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(9))
		for _, nblocks := range []int{1, 3, 64} {
			src := make([]byte, nblocks*BlockSize)
			rng.Read(src)
			const addr, ctr = 0x4000, 21

			// Reference: scalar XOR block by block.
			want := make([]byte, len(src))
			for i := 0; i < nblocks; i++ {
				if err := c.XOR(want[i*BlockSize:(i+1)*BlockSize],
					src[i*BlockSize:(i+1)*BlockSize], addr+uint64(i)*BlockSize, ctr); err != nil {
					t.Fatal(err)
				}
			}

			// Separate dst.
			got := make([]byte, len(src))
			if err := c.XORBlocks(got, src, addr, ctr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("cached=%v n=%d: XORBlocks differs from scalar XOR", cached, nblocks)
			}

			// Exact aliasing: dst == src.
			alias := append([]byte(nil), src...)
			if err := c.XORBlocks(alias, alias, addr, ctr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(alias, want) {
				t.Fatalf("cached=%v n=%d: aliased XORBlocks differs from scalar XOR", cached, nblocks)
			}
			// And the round trip must restore the plaintext.
			if err := c.XORBlocks(alias, alias, addr, ctr); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(alias, src) {
				t.Fatalf("cached=%v n=%d: aliased round trip failed", cached, nblocks)
			}
		}
	}
}

// TestPadCacheHitsAndCorrectness checks the direct-mapped cache returns
// bit-identical pads and actually hits on the re-encryption access shape.
func TestPadCacheHitsAndCorrectness(t *testing.T) {
	cold := testCipher(t)
	warm := testCipher(t)
	if err := warm.EnablePadCache(128); err != nil {
		t.Fatal(err)
	}
	a := make([]byte, BlockSize)
	b := make([]byte, BlockSize)
	// Sweep 64 contiguous blocks under one counter twice — the second
	// sweep must hit and agree with the uncached cipher.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 64; i++ {
			addr := uint64(i) * BlockSize
			if err := cold.Pad(a, addr, 5); err != nil {
				t.Fatal(err)
			}
			if err := warm.Pad(b, addr, 5); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("pass %d block %d: cached pad differs", pass, i)
			}
		}
	}
	st := warm.CacheStats()
	if st.Hits == 0 {
		t.Fatalf("expected cache hits on the second sweep, got %+v", st)
	}
	if st.Hits+st.Misses != 2*64 {
		t.Fatalf("hits+misses = %d, want 128", st.Hits+st.Misses)
	}
}

func TestEnablePadCacheRejectsBadSizes(t *testing.T) {
	c := testCipher(t)
	for _, n := range []int{-1, 0, 3, 100} {
		if err := c.EnablePadCache(n); err == nil {
			t.Errorf("EnablePadCache(%d) should fail", n)
		}
	}
}

func BenchmarkPad(b *testing.B) {
	c := testCipher(b)
	pad := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		if err := c.Pad(pad, uint64(i)*64, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXOR(b *testing.B) {
	c := testCipher(b)
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		if err := c.XOR(buf, buf, uint64(i)*64, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXORBlocks64(b *testing.B) {
	c := testCipher(b)
	buf := make([]byte, 64*BlockSize)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.XORBlocks(buf, buf, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXORCachedReread(b *testing.B) {
	c := testCipher(b)
	if err := c.EnablePadCache(512); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c.XOR(buf, buf, uint64(i%256)*64, 3); err != nil {
			b.Fatal(err)
		}
	}
}

// TestGoldenPad pins the keystream for a fixed key and seed. Persisted NVMM
// images embed ciphertext produced by this pad; a change here breaks stored
// images.
func TestGoldenPad(t *testing.T) {
	c := testCipher(t)
	pad := make([]byte, BlockSize)
	if err := c.Pad(pad, 0x40, 7); err != nil {
		t.Fatal(err)
	}
	const want = "68e1bce720b39ac16ab3b68ed709071d"
	if got := hex.EncodeToString(pad[:16]); got != want {
		t.Fatalf("pad prefix %s, want %s", got, want)
	}
}
