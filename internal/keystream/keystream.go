// Package keystream implements the counter-mode encryption pad used for
// memory encryption.
//
// As in §2.1 of the paper, each 64-byte block is encrypted by XOR with a
// keystream generated from AES over (physical address, counter) seeds. The
// address makes pads unique across blocks; the counter makes them unique
// across writes to the same block. The critical security invariant —
// never reuse a (address, counter) pair under one key — is what the
// counter schemes in internal/ctr exist to maintain.
//
// Two hot-path facilities mirror what the paper's hardware gets for free:
//
//   - PadN/XORBlocks batch APIs amortize per-call overhead across a run of
//     contiguous blocks, the access shape of group re-encryption sweeps
//     (64 blocks re-padded under one counter) and of multi-block I/O.
//   - A small direct-mapped pad cache keyed by (addr, counter) models the
//     controller's pad precomputation: a pad generated at write time is
//     still there when the block is read back, or when a re-encryption
//     sweep decrypts what was just written.
//
// The cache holds key-derived pads, so callers that share a Cipher across
// goroutines must not enable it (the Engine, which serializes accesses,
// does).
package keystream

import (
	"encoding/binary"
	"fmt"

	"authmem/internal/aes"
)

// BlockSize is the encryption granularity in bytes (one cache line).
const BlockSize = 64

// lanes is the number of AES blocks per pad.
const lanes = BlockSize / aes.BlockSize

// padEntry is one direct-mapped cache slot.
type padEntry struct {
	addr    uint64
	counter uint64
	valid   bool
	pad     [BlockSize]byte
}

// CacheStats reports pad-cache effectiveness.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Cipher generates 64-byte keystream pads with AES-128.
//
// The block cipher is held as the concrete *aes.Cipher so the per-lane AES
// calls devirtualize and their buffers stay on the stack; Pad and XOR are
// allocation-free.
type Cipher struct {
	blk *aes.Cipher

	// cache is the optional direct-mapped pad cache; nil when disabled.
	cache     []padEntry
	cacheMask uint64
	stats     CacheStats
}

// New creates a Cipher from a 16-byte AES-128 key (24/32 bytes select
// AES-192/256). The block cipher is the repository's own FIPS-197
// implementation (internal/aes), cross-validated against crypto/aes.
func New(key []byte) (*Cipher, error) {
	blk, err := aes.New(key)
	if err != nil {
		return nil, fmt.Errorf("keystream: %w", err)
	}
	return &Cipher{blk: blk}, nil
}

// EnablePadCache attaches a direct-mapped pad cache of the given number of
// entries (a power of two; 64 bytes of pad per entry). Re-enabling resizes
// and clears the cache. The cache makes the Cipher unsafe for concurrent
// use.
func (c *Cipher) EnablePadCache(entries int) error {
	if entries <= 0 || entries&(entries-1) != 0 {
		return fmt.Errorf("keystream: cache entries %d not a power of two", entries)
	}
	c.cache = make([]padEntry, entries)
	c.cacheMask = uint64(entries - 1)
	c.stats = CacheStats{}
	return nil
}

// CacheStats returns pad-cache hit/miss counts since EnablePadCache.
func (c *Cipher) CacheStats() CacheStats { return c.stats }

// slot maps (addr, counter) to a cache index. Addresses are block-aligned,
// so the low 6 bits carry no information; a Fibonacci mix of both inputs
// spreads sweeps (sequential addr, fixed counter) and rewrites (fixed addr,
// rising counter) across the sets.
func (c *Cipher) slot(addr, counter uint64) *padEntry {
	h := (addr>>6 ^ counter*0x9E3779B97F4A7C15) * 0x9E3779B97F4A7C15
	return &c.cache[(h>>32)&c.cacheMask]
}

// generate writes the four-lane AES pad for (addr, counter) into dst,
// which must be at least BlockSize bytes.
func (c *Cipher) generate(dst []byte, addr, counter uint64) {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:8], addr)
	for lane := 0; lane < lanes; lane++ {
		// Mix the lane index into the top byte of the counter half so
		// the four AES inputs are distinct. Counters are at most 56
		// bits, so the top byte is free.
		binary.LittleEndian.PutUint64(in[8:], counter|uint64(lane)<<56)
		c.blk.Encrypt(dst[lane*16:(lane+1)*16], in[:])
	}
}

// lookup returns the cached or freshly generated pad for (addr, counter).
// With the cache disabled it generates into scratch and returns it.
func (c *Cipher) lookup(scratch *[BlockSize]byte, addr, counter uint64) *[BlockSize]byte {
	if c.cache == nil {
		c.generate(scratch[:], addr, counter)
		return scratch
	}
	e := c.slot(addr, counter)
	if e.valid && e.addr == addr && e.counter == counter {
		c.stats.Hits++
		return &e.pad
	}
	c.stats.Misses++
	c.generate(e.pad[:], addr, counter)
	e.addr, e.counter, e.valid = addr, counter, true
	return &e.pad
}

// Pad writes the 64-byte keystream for (addr, counter) into dst.
// The pad is four AES blocks over (addr, counter, lane) tuples.
func (c *Cipher) Pad(dst []byte, addr, counter uint64) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("keystream: dst must be %d bytes, got %d", BlockSize, len(dst))
	}
	var scratch [BlockSize]byte
	copy(dst, c.lookup(&scratch, addr, counter)[:])
	return nil
}

// PadN writes the keystreams of len(dst)/BlockSize contiguous blocks into
// dst: block i gets the pad for (addr + i*BlockSize, counter). This is the
// pad shape of a group re-encryption sweep, which re-pads a whole group
// under one shared counter. len(dst) must be a positive multiple of
// BlockSize.
func (c *Cipher) PadN(dst []byte, addr, counter uint64) error {
	if len(dst) == 0 || len(dst)%BlockSize != 0 {
		return fmt.Errorf("keystream: dst length %d not a positive multiple of %d", len(dst), BlockSize)
	}
	var scratch [BlockSize]byte
	for off := 0; off < len(dst); off += BlockSize {
		copy(dst[off:off+BlockSize], c.lookup(&scratch, addr+uint64(off), counter)[:])
	}
	return nil
}

// XOR applies the keystream for (addr, counter) to src, writing into dst.
// dst and src may alias; both must be 64 bytes. Calling XOR twice with the
// same seeds is the identity, so the same call path encrypts and decrypts.
func (c *Cipher) XOR(dst, src []byte, addr, counter uint64) error {
	if len(src) != BlockSize || len(dst) != BlockSize {
		return fmt.Errorf("keystream: src/dst must be %d bytes", BlockSize)
	}
	var scratch [BlockSize]byte
	xorBlock(dst, src, c.lookup(&scratch, addr, counter))
	return nil
}

// XORBlocks applies the keystreams of len(src)/BlockSize contiguous blocks
// to src, writing into dst: block i is XORed with the pad for
// (addr + i*BlockSize, counter). dst and src must have equal length, a
// positive multiple of BlockSize, and may alias exactly (dst == src);
// partially overlapping buffers are not supported.
func (c *Cipher) XORBlocks(dst, src []byte, addr, counter uint64) error {
	if len(src) != len(dst) {
		return fmt.Errorf("keystream: src/dst length mismatch (%d vs %d)", len(src), len(dst))
	}
	if len(src) == 0 || len(src)%BlockSize != 0 {
		return fmt.Errorf("keystream: length %d not a positive multiple of %d", len(src), BlockSize)
	}
	var scratch [BlockSize]byte
	for off := 0; off < len(src); off += BlockSize {
		pad := c.lookup(&scratch, addr+uint64(off), counter)
		xorBlock(dst[off:off+BlockSize], src[off:off+BlockSize], pad)
	}
	return nil
}

// PadBatch is the batch-kernel name for PadN: backends with wide kernels
// generate several blocks' pads per dispatch, and the conformance suite
// holds every backend's batch kernel bit-equal to N scalar Pad calls. The
// T-table path has no wider kernel than its scalar loop, so the alias *is*
// the kernel here.
func (c *Cipher) PadBatch(dst []byte, addr, counter uint64) error {
	return c.PadN(dst, addr, counter)
}

// XORBlocksBatch is the batch-kernel name for XORBlocks (see PadBatch).
func (c *Cipher) XORBlocksBatch(dst, src []byte, addr, counter uint64) error {
	return c.XORBlocks(dst, src, addr, counter)
}

// xorBlock XORs one 64-byte block word-wise. dst and src may be the same
// slice.
func xorBlock(dst, src []byte, pad *[BlockSize]byte) {
	_ = src[BlockSize-1]
	_ = dst[BlockSize-1]
	for i := 0; i < BlockSize; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(pad[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
}
