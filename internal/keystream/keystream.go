// Package keystream implements the counter-mode encryption pad used for
// memory encryption.
//
// As in §2.1 of the paper, each 64-byte block is encrypted by XOR with a
// keystream generated from AES over (physical address, counter) seeds. The
// address makes pads unique across blocks; the counter makes them unique
// across writes to the same block. The critical security invariant —
// never reuse a (address, counter) pair under one key — is what the
// counter schemes in internal/ctr exist to maintain.
package keystream

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"authmem/internal/aes"
)

// BlockSize is the encryption granularity in bytes (one cache line).
const BlockSize = 64

// Cipher generates 64-byte keystream pads with AES-128.
type Cipher struct {
	blk cipher.Block
}

// New creates a Cipher from a 16-byte AES-128 key (24/32 bytes select
// AES-192/256). The block cipher is the repository's own FIPS-197
// implementation (internal/aes), cross-validated against crypto/aes.
func New(key []byte) (*Cipher, error) {
	blk, err := aes.New(key)
	if err != nil {
		return nil, fmt.Errorf("keystream: %w", err)
	}
	return &Cipher{blk: blk}, nil
}

// Pad writes the 64-byte keystream for (addr, counter) into dst.
// The pad is four AES blocks over (addr, counter, lane) tuples.
func (c *Cipher) Pad(dst []byte, addr, counter uint64) error {
	if len(dst) != BlockSize {
		return fmt.Errorf("keystream: dst must be %d bytes, got %d", BlockSize, len(dst))
	}
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:8], addr)
	for lane := 0; lane < 4; lane++ {
		// Mix the lane index into the top byte of the counter half so
		// the four AES inputs are distinct. Counters are at most 56
		// bits, so the top byte is free.
		binary.LittleEndian.PutUint64(in[8:], counter|uint64(lane)<<56)
		c.blk.Encrypt(dst[lane*16:(lane+1)*16], in[:])
	}
	return nil
}

// XOR applies the keystream for (addr, counter) to src, writing into dst.
// dst and src may alias; both must be 64 bytes. Calling XOR twice with the
// same seeds is the identity, so the same call path encrypts and decrypts.
func (c *Cipher) XOR(dst, src []byte, addr, counter uint64) error {
	if len(src) != BlockSize || len(dst) != BlockSize {
		return fmt.Errorf("keystream: src/dst must be %d bytes", BlockSize)
	}
	var pad [BlockSize]byte
	if err := c.Pad(pad[:], addr, counter); err != nil {
		return err
	}
	for i := range pad {
		dst[i] = src[i] ^ pad[i]
	}
	return nil
}
