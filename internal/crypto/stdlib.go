package crypto

import (
	stdaes "crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"authmem/internal/gf64"
	"authmem/internal/keystream"
	"authmem/internal/mac"
)

// The "stdlib" backend: the same pad and MAC constructions as the T-table
// path, but the AES permutation comes from crypto/aes, whose assembly picks
// up AES-NI (amd64) or the ARMv8 crypto extensions for free. The GF(2^64)
// polynomial hash has no standard-library equivalent, so it reuses the
// windowed gf64 tables.
//
// cipher.Block is an interface, so any buffer passed to Encrypt escapes to
// the heap. All scratch therefore lives in the stream/MAC structs (heap-
// allocated once at construction), which is what keeps Pad/Tag at 0
// allocs/op — and what makes instances single-owner: see the package
// comment's concurrency contract.

// lanes is the number of 16-byte AES blocks per 64-byte pad.
const lanes = BlockSize / stdaes.BlockSize

type stdlibBackend struct{}

func init() { Register(stdlibBackend{}) }

func (stdlibBackend) Name() string { return "stdlib" }

func (stdlibBackend) NewStream(key []byte) (Stream, error) {
	blk, err := stdaes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	return &stdlibStream{blk: blk}, nil
}

func (stdlibBackend) NewMAC(material []byte) (MAC, error) {
	m := &stdlibMAC{}
	if err := m.init(material); err != nil {
		return nil, err
	}
	return m, nil
}

// stdlibStream generates pads with crypto/aes. Nonce layout is identical to
// keystream.Cipher: LE64(addr) ‖ LE64(counter | lane<<56).
type stdlibStream struct {
	blk   cipher.Block
	cache padCache

	// nonce and scratch are the per-call buffers; struct-resident so the
	// interface Encrypt calls cost no allocations.
	nonce   [stdaes.BlockSize]byte
	scratch [BlockSize]byte
}

// generate writes the four-lane pad for (addr, counter) into dst.
func (s *stdlibStream) generate(dst []byte, addr, counter uint64) {
	binary.LittleEndian.PutUint64(s.nonce[:8], addr)
	for lane := 0; lane < lanes; lane++ {
		binary.LittleEndian.PutUint64(s.nonce[8:], counter|uint64(lane)<<56)
		s.blk.Encrypt(dst[lane*16:(lane+1)*16], s.nonce[:])
	}
}

// lookup returns the cached or freshly generated pad for (addr, counter).
func (s *stdlibStream) lookup(addr, counter uint64) *[BlockSize]byte {
	if !s.cache.enabled() {
		s.generate(s.scratch[:], addr, counter)
		return &s.scratch
	}
	e := s.cache.slot(addr, counter)
	if e.valid && e.addr == addr && e.counter == counter {
		s.cache.stats.Hits++
		return &e.pad
	}
	s.cache.stats.Misses++
	s.generate(e.pad[:], addr, counter)
	e.addr, e.counter, e.valid = addr, counter, true
	return &e.pad
}

func (s *stdlibStream) EnablePadCache(entries int) error { return s.cache.enable(entries) }

func (s *stdlibStream) CacheStats() keystream.CacheStats { return s.cache.stats }

func (s *stdlibStream) Pad(dst []byte, addr, counter uint64) error {
	if err := checkBlockLen(len(dst), "dst"); err != nil {
		return err
	}
	copy(dst, s.lookup(addr, counter)[:])
	return nil
}

func (s *stdlibStream) PadN(dst []byte, addr, counter uint64) error {
	if err := checkSpanLen(len(dst)); err != nil {
		return err
	}
	for off := 0; off < len(dst); off += BlockSize {
		copy(dst[off:off+BlockSize], s.lookup(addr+uint64(off), counter)[:])
	}
	return nil
}

func (s *stdlibStream) XOR(dst, src []byte, addr, counter uint64) error {
	if err := checkBlockLen(len(src), "src"); err != nil {
		return err
	}
	if err := checkBlockLen(len(dst), "dst"); err != nil {
		return err
	}
	xorPad(dst, src, s.lookup(addr, counter))
	return nil
}

func (s *stdlibStream) XORBlocks(dst, src []byte, addr, counter uint64) error {
	if len(src) != len(dst) {
		return fmt.Errorf("crypto: src/dst length mismatch (%d vs %d)", len(src), len(dst))
	}
	if err := checkSpanLen(len(src)); err != nil {
		return err
	}
	for off := 0; off < len(src); off += BlockSize {
		xorPad(dst[off:off+BlockSize], src[off:off+BlockSize], s.lookup(addr+uint64(off), counter))
	}
	return nil
}

// The scalar path has no wider kernel, so the batch entry points are the
// span loops themselves (bit-equality with true batch kernels is what the
// conformance suite checks).
func (s *stdlibStream) PadBatch(dst []byte, addr, counter uint64) error {
	return s.PadN(dst, addr, counter)
}

func (s *stdlibStream) XORBlocksBatch(dst, src []byte, addr, counter uint64) error {
	return s.XORBlocks(dst, src, addr, counter)
}

// blockWords is the number of 64-bit words hashed per block.
const blockWords = BlockSize / 8

// stdlibMAC mirrors mac.Key — same hash-point derivation, same per-word
// power tables, same PRF nonce — over a crypto/aes PRF.
type stdlibMAC struct {
	h   uint64
	blk cipher.Block
	pow [blockWords]*gf64.Table

	// PRF scratch, struct-resident for the interface Encrypt call.
	in, out [stdaes.BlockSize]byte
}

func (m *stdlibMAC) init(material []byte) error {
	if len(material) != 24 {
		return fmt.Errorf("crypto: MAC key material must be 24 bytes, got %d", len(material))
	}
	h := binary.LittleEndian.Uint64(material[:8])
	if h == 0 {
		h = 1 // same zero-point substitution as mac.NewKey
	}
	blk, err := stdaes.NewCipher(material[8:24])
	if err != nil {
		return fmt.Errorf("crypto: %w", err)
	}
	m.h, m.blk = h, blk
	for i := 0; i < blockWords; i++ {
		m.pow[i] = gf64.NewTable(gf64.Pow(h, uint64(blockWords-i)))
	}
	return nil
}

func (m *stdlibMAC) HashPoint() uint64 { return m.h }

// prf computes PRF_k(addr, counter): one AES block over the nonce, low 64
// bits.
func (m *stdlibMAC) prf(addr, counter uint64) uint64 {
	binary.LittleEndian.PutUint64(m.in[:8], addr)
	binary.LittleEndian.PutUint64(m.in[8:], counter)
	m.blk.Encrypt(m.out[:], m.in[:])
	return binary.LittleEndian.Uint64(m.out[:8])
}

func (m *stdlibMAC) Tag(ciphertext []byte, addr, counter uint64) (uint64, error) {
	if err := checkBlockLen(len(ciphertext), "ciphertext"); err != nil {
		return 0, err
	}
	var hash uint64
	for i := 0; i < blockWords; i++ {
		hash ^= m.pow[i].Mul(binary.LittleEndian.Uint64(ciphertext[i*8:]))
	}
	return (hash ^ m.prf(addr, counter)) & mac.TagMask, nil
}

func (m *stdlibMAC) Verify(ciphertext []byte, addr, counter, tag uint64) (bool, error) {
	want, err := m.Tag(ciphertext, addr, counter)
	if err != nil {
		return false, err
	}
	return want == tag&mac.TagMask, nil
}

func (m *stdlibMAC) TagBatch(tags []uint64, ciphertexts []byte, addr, counter uint64) error {
	if len(ciphertexts) != len(tags)*BlockSize {
		return fmt.Errorf("crypto: ciphertexts must be %d bytes for %d tags, got %d",
			len(tags)*BlockSize, len(tags), len(ciphertexts))
	}
	for i := range tags {
		t, err := m.Tag(ciphertexts[i*BlockSize:(i+1)*BlockSize], addr+uint64(i*BlockSize), counter)
		if err != nil {
			return err
		}
		tags[i] = t
	}
	return nil
}
