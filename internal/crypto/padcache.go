package crypto

import (
	"encoding/binary"
	"fmt"

	"authmem/internal/keystream"
)

// Shared pad-cache machinery for the crypto/aes-backed streams. The
// geometry, slot hash, and hit/miss accounting are identical to the cache
// inside keystream.Cipher so PadCacheStats means the same thing under every
// backend — the conformance suite asserts the counters match stat-for-stat.

// padEntry is one direct-mapped cache slot.
type padEntry struct {
	addr    uint64
	counter uint64
	valid   bool
	pad     [BlockSize]byte
}

// padCache is a direct-mapped (addr, counter) -> pad cache. The zero value
// is a disabled cache.
type padCache struct {
	entries []padEntry
	mask    uint64
	stats   keystream.CacheStats
}

func (p *padCache) enable(entries int) error {
	if entries <= 0 || entries&(entries-1) != 0 {
		return fmt.Errorf("crypto: cache entries %d not a power of two", entries)
	}
	p.entries = make([]padEntry, entries)
	p.mask = uint64(entries - 1)
	p.stats = keystream.CacheStats{}
	return nil
}

func (p *padCache) enabled() bool { return p.entries != nil }

// slot maps (addr, counter) to a cache entry — the same Fibonacci mix as
// keystream.Cipher, so both caches see identical conflict patterns.
func (p *padCache) slot(addr, counter uint64) *padEntry {
	h := (addr>>6 ^ counter*0x9E3779B97F4A7C15) * 0x9E3779B97F4A7C15
	return &p.entries[(h>>32)&p.mask]
}

// xorPad XORs one 64-byte block with a pad, word-wise. dst and src may be
// the same slice.
func xorPad(dst, src []byte, pad *[BlockSize]byte) {
	_ = src[BlockSize-1]
	_ = dst[BlockSize-1]
	for i := 0; i < BlockSize; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(pad[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
}

// Argument checks shared by the stream implementations; messages mirror
// keystream's so error-path tests are backend-agnostic.

func checkBlockLen(n int, what string) error {
	if n != BlockSize {
		return fmt.Errorf("crypto: %s must be %d bytes, got %d", what, BlockSize, n)
	}
	return nil
}

func checkSpanLen(n int) error {
	if n == 0 || n%BlockSize != 0 {
		return fmt.Errorf("crypto: length %d not a positive multiple of %d", n, BlockSize)
	}
	return nil
}
