package crypto

import (
	stdaes "crypto/aes"
	"encoding/binary"
	"fmt"

	"authmem/internal/mac"
)

// The "batch8" backend: crypto/aes with batch kernels sized for whole
// counter groups. The span entry points (PadBatch/XORBlocksBatch, and the
// PadN/XORBlocks they implement, plus the MAC's TagBatch) process blocks in
// chunks of 8 — 32 AES lanes for the pads, 8 PRF blocks for the tags. Each
// chunk first assembles every nonce into one staging buffer, then runs the
// cipher dispatches back to back: the bounds checks, nonce packing, and
// cache probes are hoisted out of the encrypt loop, so the superscalar
// AES-NI units see nothing but Encrypt calls — the software analogue of
// Sealer's batch-oriented in-SRAM AES engine, and the shape a group
// re-encryption sweep (64 contiguous blocks, one shared counter) wants.
//
// Cache interplay: the batch kernels probe the pad cache per block exactly
// like the scalar path (same Hits/Misses accounting) and batch-generate
// only the misses, inserting each generated pad so read-after-write still
// hits. Two blocks of one chunk can collide on a direct-mapped slot; the
// loser of the collision is generated into chunk-local scratch instead so
// both blocks still get correct pads.

// batchBlocks is the kernel width in 64-byte blocks.
const batchBlocks = 8

type batch8Backend struct{}

func init() { Register(batch8Backend{}) }

func (batch8Backend) Name() string { return "batch8" }

func (batch8Backend) NewStream(key []byte) (Stream, error) {
	blk, err := stdaes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto: %w", err)
	}
	return &batch8Stream{stdlibStream: stdlibStream{blk: blk}}, nil
}

func (batch8Backend) NewMAC(material []byte) (MAC, error) {
	m := &batch8MAC{}
	if err := m.init(material); err != nil {
		return nil, err
	}
	return m, nil
}

// batch8Stream inherits the scalar path (Pad, XOR, cache) from
// stdlibStream and overrides the span entry points with the chunked kernel.
type batch8Stream struct {
	stdlibStream

	// Chunk staging: nonceBuf holds the packed AES inputs of every missed
	// lane; padHome[i] points at block i's resolved pad (cache entry or
	// chunkPad scratch); missAddr/missDst list the blocks to generate.
	nonceBuf [batchBlocks * lanes * stdaes.BlockSize]byte
	padHome  [batchBlocks]*[BlockSize]byte
	missAddr [batchBlocks]uint64
	missDst  [batchBlocks]*[BlockSize]byte
	missIdx  [batchBlocks]int
	chunkPad [batchBlocks][BlockSize]byte
}

// stagePads resolves the pads of n (≤ batchBlocks) contiguous blocks
// starting at addr under one counter: cache hits resolve to their entries,
// misses are batch-generated. On return padHome[0..n) hold the pads.
func (s *batch8Stream) stagePads(addr, counter uint64, n int) {
	m := 0
	for i := 0; i < n; i++ {
		a := addr + uint64(i*BlockSize)
		if !s.cache.enabled() {
			s.padHome[i] = &s.chunkPad[i]
			s.missAddr[m], s.missDst[m], s.missIdx[m] = a, &s.chunkPad[i], i
			m++
			continue
		}
		e := s.cache.slot(a, counter)
		if e.valid && e.addr == a && e.counter == counter {
			s.cache.stats.Hits++
			s.padHome[i] = &e.pad
			continue
		}
		s.cache.stats.Misses++
		// Direct-mapped collision inside this chunk: an earlier miss
		// already claimed this entry, and generation is deferred, so
		// letting both share it would leave one block with the other's
		// pad. The serial path resolves collisions by overwriting — the
		// later block ends up resident — so mirror that: divert the
		// earlier miss to chunk-local scratch and claim the entry here.
		// Keeping the residency order identical keeps future hit/miss
		// counts bit-equal to the scalar backends.
		for j := 0; j < m; j++ {
			if s.missDst[j] == &e.pad {
				prev := s.missIdx[j]
				s.missDst[j] = &s.chunkPad[prev]
				s.padHome[prev] = &s.chunkPad[prev]
				break
			}
		}
		e.addr, e.counter, e.valid = a, counter, true
		s.padHome[i] = &e.pad
		s.missAddr[m], s.missDst[m], s.missIdx[m] = a, &e.pad, i
		m++
	}
	if m == 0 {
		return
	}
	// Pack every missed lane's nonce, then dispatch the AES lanes in one
	// tight loop.
	for j := 0; j < m; j++ {
		base := j * lanes * stdaes.BlockSize
		binary.LittleEndian.PutUint64(s.nonceBuf[base:], s.missAddr[j])
		for lane := 1; lane < lanes; lane++ {
			copy(s.nonceBuf[base+lane*16:base+lane*16+8], s.nonceBuf[base:base+8])
		}
		for lane := 0; lane < lanes; lane++ {
			binary.LittleEndian.PutUint64(s.nonceBuf[base+lane*16+8:], counter|uint64(lane)<<56)
		}
	}
	for j := 0; j < m; j++ {
		dst := s.missDst[j]
		base := j * lanes * stdaes.BlockSize
		for lane := 0; lane < lanes; lane++ {
			s.blk.Encrypt(dst[lane*16:(lane+1)*16], s.nonceBuf[base+lane*16:base+(lane+1)*16])
		}
	}
}

func (s *batch8Stream) PadN(dst []byte, addr, counter uint64) error {
	if err := checkSpanLen(len(dst)); err != nil {
		return err
	}
	nBlocks := len(dst) / BlockSize
	for base := 0; base < nBlocks; base += batchBlocks {
		n := nBlocks - base
		if n > batchBlocks {
			n = batchBlocks
		}
		s.stagePads(addr+uint64(base*BlockSize), counter, n)
		for i := 0; i < n; i++ {
			off := (base + i) * BlockSize
			copy(dst[off:off+BlockSize], s.padHome[i][:])
		}
	}
	return nil
}

func (s *batch8Stream) XORBlocks(dst, src []byte, addr, counter uint64) error {
	if len(src) != len(dst) {
		return fmt.Errorf("crypto: src/dst length mismatch (%d vs %d)", len(src), len(dst))
	}
	if err := checkSpanLen(len(src)); err != nil {
		return err
	}
	nBlocks := len(src) / BlockSize
	for base := 0; base < nBlocks; base += batchBlocks {
		n := nBlocks - base
		if n > batchBlocks {
			n = batchBlocks
		}
		s.stagePads(addr+uint64(base*BlockSize), counter, n)
		for i := 0; i < n; i++ {
			off := (base + i) * BlockSize
			xorPad(dst[off:off+BlockSize], src[off:off+BlockSize], s.padHome[i])
		}
	}
	return nil
}

func (s *batch8Stream) PadBatch(dst []byte, addr, counter uint64) error {
	return s.PadN(dst, addr, counter)
}

func (s *batch8Stream) XORBlocksBatch(dst, src []byte, addr, counter uint64) error {
	return s.XORBlocks(dst, src, addr, counter)
}

// batch8MAC inherits the scalar Tag/Verify from stdlibMAC and overrides
// TagBatch with a chunked kernel: the 8 PRF nonces of a chunk are packed
// and encrypted back to back, then each block's polynomial hash folds in
// its PRF word.
type batch8MAC struct {
	stdlibMAC

	nonceBuf [batchBlocks * stdaes.BlockSize]byte
	prfBuf   [batchBlocks * stdaes.BlockSize]byte
}

func (m *batch8MAC) TagBatch(tags []uint64, ciphertexts []byte, addr, counter uint64) error {
	if len(ciphertexts) != len(tags)*BlockSize {
		return fmt.Errorf("crypto: ciphertexts must be %d bytes for %d tags, got %d",
			len(tags)*BlockSize, len(tags), len(ciphertexts))
	}
	for base := 0; base < len(tags); base += batchBlocks {
		n := len(tags) - base
		if n > batchBlocks {
			n = batchBlocks
		}
		for i := 0; i < n; i++ {
			off := i * stdaes.BlockSize
			binary.LittleEndian.PutUint64(m.nonceBuf[off:], addr+uint64((base+i)*BlockSize))
			binary.LittleEndian.PutUint64(m.nonceBuf[off+8:], counter)
		}
		for i := 0; i < n; i++ {
			off := i * stdaes.BlockSize
			m.blk.Encrypt(m.prfBuf[off:off+stdaes.BlockSize], m.nonceBuf[off:off+stdaes.BlockSize])
		}
		for i := 0; i < n; i++ {
			ct := ciphertexts[(base+i)*BlockSize : (base+i+1)*BlockSize]
			var hash uint64
			for w := 0; w < blockWords; w++ {
				hash ^= m.pow[w].Mul(binary.LittleEndian.Uint64(ct[w*8:]))
			}
			tags[base+i] = (hash ^ binary.LittleEndian.Uint64(m.prfBuf[i*stdaes.BlockSize:])) & mac.TagMask
		}
	}
	return nil
}
