package crypto_test

// Differential fuzzing across crypto backends. The conformance suite diffs
// the backends over fixed grids; these targets let the fuzzer hunt for
// (key, addr, counter, data) combinations where an optimized backend
// diverges from the ttable reference — lane-byte aliasing in the nonce
// layout, chunk-boundary bugs in batch8's 8-block kernels, carry bugs in
// the GF(2^64) dot product. Committed seeds under testdata/fuzz pin the
// known-tricky shapes (zero hash key, max 56-bit counter, partial chunks);
// CI runs each target for a short smoke window on every push.

import (
	"bytes"
	"testing"

	"authmem/internal/crypto"
)

// fuzzKeyMaterial expands a seed byte into 40 bytes of key material.
// keySeed==0 produces an all-zero hash key, exercising the h==0 -> 1
// substitution every backend must apply identically.
func fuzzKeyMaterial(keySeed byte) []byte {
	k := make([]byte, 40)
	if keySeed == 0 {
		return k
	}
	for i := range k {
		k[i] = byte(i)*7 ^ keySeed
	}
	return k
}

// FuzzBackendPadEquivalence: every backend's keystream and XOR output over
// an arbitrary span must be bit-identical to the ttable reference, cached
// and uncached, batched and scalar.
func FuzzBackendPadEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0), uint8(1), []byte{})
	f.Add(uint8(1), uint64(64), uint64(1), uint8(8), []byte("delta"))
	f.Add(uint8(7), uint64(1)<<40, uint64(1)<<56-1, uint8(9), bytes.Repeat([]byte{0xA5}, 64))
	f.Add(uint8(255), uint64(0xFFFFFFC0), uint64(127), uint8(64), []byte{0, 255})

	f.Fuzz(func(t *testing.T, keySeed uint8, addr, counter uint64, nBlocks uint8, data []byte) {
		n := int(nBlocks)%64 + 1
		span := n * crypto.BlockSize
		key := fuzzKeyMaterial(keySeed)

		src := make([]byte, span)
		for i := range src {
			if len(data) > 0 {
				src[i] = data[i%len(data)]
			}
		}

		type backendState struct {
			name   string
			plain  crypto.Stream
			cached crypto.Stream
		}
		var ref *backendState
		var others []*backendState
		for _, name := range crypto.Names() {
			be, err := crypto.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := be.NewStream(key[24:40])
			if err != nil {
				t.Fatal(err)
			}
			cached, err := be.NewStream(key[24:40])
			if err != nil {
				t.Fatal(err)
			}
			if err := cached.EnablePadCache(16); err != nil {
				t.Fatal(err)
			}
			bs := &backendState{name: name, plain: plain, cached: cached}
			if name == "ttable" {
				ref = bs
			} else {
				others = append(others, bs)
			}
		}

		wantPad := make([]byte, span)
		if err := ref.plain.PadBatch(wantPad, addr, counter); err != nil {
			t.Fatalf("ttable: PadBatch: %v", err)
		}
		wantCT := make([]byte, span)
		if err := ref.cached.XORBlocksBatch(wantCT, src, addr, counter); err != nil {
			t.Fatalf("ttable: XORBlocksBatch: %v", err)
		}
		// Single-block scalar path against the batch path's first block.
		wantOne := make([]byte, crypto.BlockSize)
		if err := ref.plain.Pad(wantOne, addr, counter); err != nil {
			t.Fatalf("ttable: Pad: %v", err)
		}
		if !bytes.Equal(wantOne, wantPad[:crypto.BlockSize]) {
			t.Fatalf("ttable: scalar Pad differs from PadBatch block 0")
		}

		got := make([]byte, span)
		for _, bs := range others {
			if err := bs.plain.PadBatch(got, addr, counter); err != nil {
				t.Fatalf("%s: PadBatch: %v", bs.name, err)
			}
			if !bytes.Equal(got, wantPad) {
				t.Errorf("%s: PadBatch(addr=%#x ctr=%#x n=%d) diverges from ttable",
					bs.name, addr, counter, n)
			}
			if err := bs.cached.XORBlocksBatch(got, src, addr, counter); err != nil {
				t.Fatalf("%s: XORBlocksBatch: %v", bs.name, err)
			}
			if !bytes.Equal(got, wantCT) {
				t.Errorf("%s: cached XORBlocksBatch(addr=%#x ctr=%#x n=%d) diverges from ttable",
					bs.name, addr, counter, n)
			}
			if err := bs.plain.Pad(got[:crypto.BlockSize], addr, counter); err != nil {
				t.Fatalf("%s: Pad: %v", bs.name, err)
			}
			if !bytes.Equal(got[:crypto.BlockSize], wantOne) {
				t.Errorf("%s: scalar Pad(addr=%#x ctr=%#x) diverges from ttable",
					bs.name, addr, counter)
			}
		}
	})
}

// FuzzBatchMACEquivalence: TagBatch over an arbitrary contiguous span must
// match ttable's tags and every backend's own scalar Tag calls, and a tag
// minted by one backend must Verify under all others.
func FuzzBatchMACEquivalence(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0), []byte{})
	f.Add(uint8(3), uint64(64), uint64(1)<<56-1, []byte("ciphertext"))
	f.Add(uint8(9), uint64(4096), uint64(127), bytes.Repeat([]byte{0xFF}, 512))
	f.Add(uint8(42), uint64(1)<<39, uint64(1)<<55, bytes.Repeat([]byte{1, 2, 3}, 170))

	f.Fuzz(func(t *testing.T, keySeed uint8, addr, counter uint64, data []byte) {
		n := len(data)/crypto.BlockSize + 1
		if n > 64 {
			n = 64
		}
		span := n * crypto.BlockSize
		cts := make([]byte, span)
		for i := range cts {
			if len(data) > 0 {
				cts[i] = data[i%len(data)]
			}
		}
		key := fuzzKeyMaterial(keySeed)

		macs := make(map[string]crypto.MAC)
		for _, name := range crypto.Names() {
			be, err := crypto.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			mk, err := be.NewMAC(key[:24])
			if err != nil {
				t.Fatal(err)
			}
			macs[name] = mk
		}

		want := make([]uint64, n)
		if err := macs["ttable"].TagBatch(want, cts, addr, counter); err != nil {
			t.Fatalf("ttable: TagBatch: %v", err)
		}
		got := make([]uint64, n)
		for name, mk := range macs {
			if err := mk.TagBatch(got, cts, addr, counter); err != nil {
				t.Fatalf("%s: TagBatch: %v", name, err)
			}
			for i := 0; i < n; i++ {
				if got[i] != want[i] {
					t.Errorf("%s: TagBatch block %d (addr=%#x ctr=%#x) = %#x, ttable %#x",
						name, i, addr, counter, got[i], want[i])
				}
				blockAddr := addr + uint64(i*crypto.BlockSize)
				scalar, err := mk.Tag(cts[i*crypto.BlockSize:(i+1)*crypto.BlockSize], blockAddr, counter)
				if err != nil {
					t.Fatalf("%s: Tag block %d: %v", name, i, err)
				}
				if scalar != got[i] {
					t.Errorf("%s: scalar Tag block %d = %#x, TagBatch %#x", name, i, scalar, got[i])
				}
				ok, err := mk.Verify(cts[i*crypto.BlockSize:(i+1)*crypto.BlockSize], blockAddr, counter, want[i])
				if err != nil || !ok {
					t.Errorf("%s: Verify of ttable tag for block %d failed (%v, %v)", name, i, ok, err)
				}
			}
		}
	})
}
