package crypto

import (
	"authmem/internal/keystream"
	"authmem/internal/mac"
)

// ttableBackend is the from-scratch T-table path: keystream.Cipher and
// mac.Key already implement Stream and MAC, so the backend is just their
// constructors. It stays the default — portable, dependency-free, and the
// reference every other backend is held bit-equal to.
type ttableBackend struct{}

func init() { Register(ttableBackend{}) }

func (ttableBackend) Name() string { return "ttable" }

func (ttableBackend) NewStream(key []byte) (Stream, error) {
	return keystream.New(key)
}

func (ttableBackend) NewMAC(material []byte) (MAC, error) {
	return mac.NewKey(material)
}
