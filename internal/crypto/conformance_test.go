package crypto_test

// Cross-backend differential conformance suite.
//
// Every registered backend must produce BIT-IDENTICAL keystream pads,
// ciphertexts, and MAC tags for the same key material and (addr, counter)
// inputs — images sealed by one backend must verify under another, since a
// deployment can switch backends between restarts. The ttable backend (the
// original from-scratch path) is the reference; every other backend is
// diffed against it over randomized and adversarial input grids, batch
// kernels are diffed against N scalar calls, and pad-cache hit/miss
// accounting must match the serial reference exactly (batch8 resolves
// intra-chunk cache collisions in serial residency order precisely so this
// holds).

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"authmem/internal/crypto"
)

const blockSize = crypto.BlockSize

func testKeyMaterial(seed byte) []byte {
	k := make([]byte, 40)
	for i := range k {
		k[i] = byte(i)*3 + seed
	}
	return k
}

// interestingPairs returns (addr, counter) pairs mixing boundary values
// (zero, max 56-bit counter, high addresses, lane-byte edge cases) with
// seeded random draws.
func interestingPairs(rng *rand.Rand, n int) [][2]uint64 {
	pairs := [][2]uint64{
		{0, 0},
		{0, 1},
		{64, 1},
		{64, (1 << 56) - 1},                  // max counter: lane bits must not collide
		{1 << 32, 1 << 55},                   // high counter bit vs lane byte
		{(1 << 40) - 64, 0x00FFFFFFFFFFFFFF}, // all-ones 56-bit counter
		{0xFFFFFFC0, 127},                    // split-counter overflow edge
	}
	for i := 0; i < n; i++ {
		addr := (rng.Uint64() << 6) & 0xFFFFFFFFFF // block-aligned, 40-bit
		ctr := rng.Uint64() & ((1 << 56) - 1)
		pairs = append(pairs, [2]uint64{addr, ctr})
	}
	return pairs
}

func newStreams(t *testing.T, key []byte, cacheEntries int) map[string]crypto.Stream {
	t.Helper()
	streams := make(map[string]crypto.Stream)
	for _, name := range crypto.Names() {
		be, err := crypto.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		ks, err := be.NewStream(key[24:40])
		if err != nil {
			t.Fatalf("%s: NewStream: %v", name, err)
		}
		if cacheEntries > 0 {
			if err := ks.EnablePadCache(cacheEntries); err != nil {
				t.Fatalf("%s: EnablePadCache(%d): %v", name, cacheEntries, err)
			}
		}
		streams[name] = ks
	}
	return streams
}

func newMACs(t *testing.T, key []byte) map[string]crypto.MAC {
	t.Helper()
	macs := make(map[string]crypto.MAC)
	for _, name := range crypto.Names() {
		be, err := crypto.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		mk, err := be.NewMAC(key[:24])
		if err != nil {
			t.Fatalf("%s: NewMAC: %v", name, err)
		}
		macs[name] = mk
	}
	return macs
}

// TestBackendRegistry checks that all three shipped backends are registered
// and that lookup resolves names, the env default, and rejects unknowns.
func TestBackendRegistry(t *testing.T) {
	names := crypto.Names()
	for _, want := range []string{"batch8", "stdlib", "ttable"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, names)
		}
	}
	for _, name := range names {
		be, err := crypto.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Errorf("Lookup(%q).Name() = %q", name, be.Name())
		}
	}
	if _, err := crypto.Lookup("no-such-backend"); err == nil {
		t.Error("Lookup of unknown backend did not fail")
	}
	t.Setenv(crypto.EnvBackend, "stdlib")
	be, err := crypto.Lookup("")
	if err != nil {
		t.Fatalf(`Lookup("") with env set: %v`, err)
	}
	if be.Name() != "stdlib" {
		t.Errorf(`Lookup("") with %s=stdlib -> %q`, crypto.EnvBackend, be.Name())
	}
	t.Setenv(crypto.EnvBackend, "")
	be, err = crypto.Lookup("")
	if err != nil {
		t.Fatalf(`Lookup(""): %v`, err)
	}
	if be.Name() != crypto.DefaultBackend {
		t.Errorf(`Lookup("") -> %q, want default %q`, be.Name(), crypto.DefaultBackend)
	}
}

// TestPadConformance: single-block pads bit-equal across all backends over
// the input grid, cached and uncached.
func TestPadConformance(t *testing.T) {
	for _, cacheEntries := range []int{0, 64} {
		t.Run(fmt.Sprintf("cache=%d", cacheEntries), func(t *testing.T) {
			key := testKeyMaterial(1)
			streams := newStreams(t, key, cacheEntries)
			ref := streams["ttable"]
			pairs := interestingPairs(rand.New(rand.NewSource(11)), 64)

			want := make([]byte, blockSize)
			got := make([]byte, blockSize)
			for _, p := range pairs {
				addr, ctr := p[0], p[1]
				if err := ref.Pad(want, addr, ctr); err != nil {
					t.Fatalf("ttable: Pad(%#x,%d): %v", addr, ctr, err)
				}
				for name, ks := range streams {
					if name == "ttable" {
						continue
					}
					if err := ks.Pad(got, addr, ctr); err != nil {
						t.Fatalf("%s: Pad(%#x,%d): %v", name, addr, ctr, err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s: Pad(%#x,%d) differs from ttable\n got %x\nwant %x",
							name, addr, ctr, got, want)
					}
				}
			}
		})
	}
}

// TestXORRoundTrip: encrypt with one backend, decrypt with every other.
// This is the deployment-critical property — a region sealed under ttable
// must decrypt under batch8 after a restart with a different backend.
func TestXORRoundTrip(t *testing.T) {
	key := testKeyMaterial(2)
	streams := newStreams(t, key, 0)
	rng := rand.New(rand.NewSource(22))
	pairs := interestingPairs(rng, 16)

	pt := make([]byte, blockSize)
	ct := make([]byte, blockSize)
	back := make([]byte, blockSize)
	for _, p := range pairs {
		addr, ctr := p[0], p[1]
		rng.Read(pt)
		for encName, enc := range streams {
			if err := enc.XOR(ct, pt, addr, ctr); err != nil {
				t.Fatalf("%s: XOR: %v", encName, err)
			}
			for decName, dec := range streams {
				if err := dec.XOR(back, ct, addr, ctr); err != nil {
					t.Fatalf("%s: XOR: %v", decName, err)
				}
				if !bytes.Equal(back, pt) {
					t.Fatalf("seal %s / open %s: round trip failed at (%#x,%d)",
						encName, decName, addr, ctr)
				}
			}
		}
	}
}

// TestBatchMatchesScalar: for every backend, PadN / PadBatch over an
// n-block span must equal n independent Pad calls, and XORBlocks /
// XORBlocksBatch must equal per-block XOR — across span lengths that
// exercise partial batch8 chunks (1..8) and whole-group spans (64).
func TestBatchMatchesScalar(t *testing.T) {
	key := testKeyMaterial(3)
	rng := rand.New(rand.NewSource(33))
	lengths := []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 63, 64}
	pairs := interestingPairs(rng, 8)

	for _, name := range crypto.Names() {
		t.Run(name, func(t *testing.T) {
			streams := newStreams(t, key, 0)
			ks := streams[name]
			for _, n := range lengths {
				span := n * blockSize
				src := make([]byte, span)
				rng.Read(src)
				wantPad := make([]byte, span)
				gotPad := make([]byte, span)
				wantCT := make([]byte, span)
				gotCT := make([]byte, span)

				for _, p := range pairs {
					addr, ctr := p[0], p[1]
					for i := 0; i < n; i++ {
						off := i * blockSize
						blkAddr := addr + uint64(off)
						if err := ks.Pad(wantPad[off:off+blockSize], blkAddr, ctr); err != nil {
							t.Fatalf("Pad block %d: %v", i, err)
						}
						if err := ks.XOR(wantCT[off:off+blockSize], src[off:off+blockSize], blkAddr, ctr); err != nil {
							t.Fatalf("XOR block %d: %v", i, err)
						}
					}
					for kernel, fn := range map[string]func(dst []byte, addr, counter uint64) error{
						"PadN":     ks.PadN,
						"PadBatch": ks.PadBatch,
					} {
						if err := fn(gotPad, addr, ctr); err != nil {
							t.Fatalf("%s n=%d: %v", kernel, n, err)
						}
						if !bytes.Equal(gotPad, wantPad) {
							t.Fatalf("%s n=%d at (%#x,%d) differs from %d scalar Pads", kernel, n, addr, ctr, n)
						}
					}
					for kernel, fn := range map[string]func(dst, src []byte, addr, counter uint64) error{
						"XORBlocks":      ks.XORBlocks,
						"XORBlocksBatch": ks.XORBlocksBatch,
					} {
						if err := fn(gotCT, src, addr, ctr); err != nil {
							t.Fatalf("%s n=%d: %v", kernel, n, err)
						}
						if !bytes.Equal(gotCT, wantCT) {
							t.Fatalf("%s n=%d at (%#x,%d) differs from %d scalar XORs", kernel, n, addr, ctr, n)
						}
					}
				}
			}
		})
	}
}

// TestMACConformance: tags bit-equal across backends, Verify accepts every
// other backend's tags and rejects flipped ones, hash points match.
func TestMACConformance(t *testing.T) {
	for _, seed := range []byte{0, 4, 9} { // seed 0: all-zero hash-key bytes exercise the h==0 -> 1 substitution
		t.Run(fmt.Sprintf("key=%d", seed), func(t *testing.T) {
			key := testKeyMaterial(seed)
			if seed == 0 {
				for i := 0; i < 8; i++ {
					key[i] = 0
				}
			}
			macs := newMACs(t, key)
			ref := macs["ttable"]
			rng := rand.New(rand.NewSource(44))
			pairs := interestingPairs(rng, 32)

			ct := make([]byte, blockSize)
			for _, p := range pairs {
				addr, ctr := p[0], p[1]
				rng.Read(ct)
				want, err := ref.Tag(ct, addr, ctr)
				if err != nil {
					t.Fatalf("ttable: Tag: %v", err)
				}
				for name, mk := range macs {
					if mk.HashPoint() != ref.HashPoint() {
						t.Fatalf("%s: HashPoint %#x != ttable %#x", name, mk.HashPoint(), ref.HashPoint())
					}
					got, err := mk.Tag(ct, addr, ctr)
					if err != nil {
						t.Fatalf("%s: Tag: %v", name, err)
					}
					if got != want {
						t.Fatalf("%s: Tag(%#x,%d) = %#x, want ttable's %#x", name, addr, ctr, got, want)
					}
					ok, err := mk.Verify(ct, addr, ctr, want)
					if err != nil || !ok {
						t.Fatalf("%s: Verify of ttable tag = %v, %v", name, ok, err)
					}
					ok, err = mk.Verify(ct, addr, ctr, want^1)
					if err != nil || ok {
						t.Fatalf("%s: Verify accepted a corrupted tag", name)
					}
				}
			}
		})
	}
}

// TestTagBatchMatchesScalar: TagBatch over n contiguous blocks equals n
// scalar Tag calls for every backend, across partial-chunk lengths.
func TestTagBatchMatchesScalar(t *testing.T) {
	key := testKeyMaterial(5)
	macs := newMACs(t, key)
	rng := rand.New(rand.NewSource(55))
	pairs := interestingPairs(rng, 8)
	lengths := []int{1, 2, 7, 8, 9, 16, 63, 64}

	for name, mk := range macs {
		t.Run(name, func(t *testing.T) {
			for _, n := range lengths {
				cts := make([]byte, n*blockSize)
				rng.Read(cts)
				tags := make([]uint64, n)
				for _, p := range pairs {
					addr, ctr := p[0], p[1]
					if err := mk.TagBatch(tags, cts, addr, ctr); err != nil {
						t.Fatalf("TagBatch n=%d: %v", n, err)
					}
					for i := 0; i < n; i++ {
						want, err := mk.Tag(cts[i*blockSize:(i+1)*blockSize], addr+uint64(i*blockSize), ctr)
						if err != nil {
							t.Fatalf("Tag block %d: %v", i, err)
						}
						if tags[i] != want {
							t.Fatalf("TagBatch n=%d block %d at (%#x,%d): %#x, scalar %#x",
								n, i, addr, ctr, tags[i], want)
						}
					}
				}
			}
		})
	}
}

// TestTagBatchCrossBackend: whole-group TagBatch output identical across
// backends (the re-encryption sweep shape: 64 blocks, one counter).
func TestTagBatchCrossBackend(t *testing.T) {
	key := testKeyMaterial(6)
	macs := newMACs(t, key)
	rng := rand.New(rand.NewSource(66))
	const n = 64
	cts := make([]byte, n*blockSize)
	rng.Read(cts)

	for _, p := range interestingPairs(rng, 8) {
		addr, ctr := p[0], p[1]
		want := make([]uint64, n)
		if err := macs["ttable"].TagBatch(want, cts, addr, ctr); err != nil {
			t.Fatalf("ttable: TagBatch: %v", err)
		}
		got := make([]uint64, n)
		for name, mk := range macs {
			if name == "ttable" {
				continue
			}
			if err := mk.TagBatch(got, cts, addr, ctr); err != nil {
				t.Fatalf("%s: TagBatch: %v", name, err)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: TagBatch block %d at (%#x,%d): %#x, ttable %#x",
						name, i, addr, ctr, got[i], want[i])
				}
			}
		}
	}
}

// TestCacheStatsParity: identical access sequences must produce identical
// hit/miss accounting on every backend. The cache is deliberately small
// (16 entries) and the address set larger (48 blocks), so direct-mapped
// collisions — including multiple misses landing on one slot inside a
// single batch8 chunk — occur constantly; residency order after a batch
// must match the serial reference for subsequent counts to line up.
func TestCacheStatsParity(t *testing.T) {
	key := testKeyMaterial(7)
	streams := newStreams(t, key, 16)
	rng := rand.New(rand.NewSource(77))

	dst := make([]byte, 8*blockSize)
	want := make([]byte, 8*blockSize)
	ref := streams["ttable"]
	for round := 0; round < 200; round++ {
		addr := uint64(rng.Intn(48)) * blockSize
		ctr := uint64(rng.Intn(4) + 1)
		n := rng.Intn(8) + 1
		if err := ref.PadBatch(want[:n*blockSize], addr, ctr); err != nil {
			t.Fatalf("ttable: PadBatch: %v", err)
		}
		for name, ks := range streams {
			if name == "ttable" {
				continue
			}
			if err := ks.PadBatch(dst[:n*blockSize], addr, ctr); err != nil {
				t.Fatalf("%s: PadBatch: %v", name, err)
			}
			if !bytes.Equal(dst[:n*blockSize], want[:n*blockSize]) {
				t.Fatalf("%s: cached PadBatch differs at round %d (addr=%#x ctr=%d n=%d)",
					name, round, addr, ctr, n)
			}
		}
	}
	refStats := ref.CacheStats()
	if refStats.Hits == 0 || refStats.Misses == 0 {
		t.Fatalf("degenerate access pattern: stats %+v", refStats)
	}
	for name, ks := range streams {
		if s := ks.CacheStats(); s != refStats {
			t.Errorf("%s: cache stats %+v, ttable %+v", name, s, refStats)
		}
	}
}

// TestErrorConformance: every backend rejects the same malformed inputs.
func TestErrorConformance(t *testing.T) {
	key := testKeyMaterial(8)
	streams := newStreams(t, key, 0)
	macs := newMACs(t, key)
	short := make([]byte, blockSize-1)
	ragged := make([]byte, blockSize+1)
	for name, ks := range streams {
		if err := ks.Pad(short, 0, 0); err == nil {
			t.Errorf("%s: Pad accepted %d bytes", name, len(short))
		}
		if err := ks.PadN(ragged, 0, 0); err == nil {
			t.Errorf("%s: PadN accepted ragged span", name)
		}
		if err := ks.XORBlocksBatch(ragged, ragged, 0, 0); err == nil {
			t.Errorf("%s: XORBlocksBatch accepted ragged span", name)
		}
		if err := ks.EnablePadCache(3); err == nil {
			t.Errorf("%s: EnablePadCache accepted non-power-of-two", name)
		}
	}
	for name, mk := range macs {
		if _, err := mk.Tag(short, 0, 0); err == nil {
			t.Errorf("%s: Tag accepted %d bytes", name, len(short))
		}
		if err := mk.TagBatch(make([]uint64, 2), make([]byte, blockSize), 0, 0); err == nil {
			t.Errorf("%s: TagBatch accepted mismatched tag/ciphertext lengths", name)
		}
	}
	for _, be := range []string{"ttable", "stdlib", "batch8"} {
		b, err := crypto.Lookup(be)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.NewStream(make([]byte, 7)); err == nil {
			t.Errorf("%s: NewStream accepted a 7-byte key", be)
		}
		if _, err := b.NewMAC(make([]byte, 23)); err == nil {
			t.Errorf("%s: NewMAC accepted 23-byte material", be)
		}
	}
}
