// Package crypto puts the engine's cipher and MAC kernels behind one
// pluggable Backend interface.
//
// The paper's delta+ECC scheme spends its residual overhead in exactly two
// kernels: the AES-CTR keystream (internal/keystream) and the GF(2^64)
// Carter-Wegman MAC (internal/mac). Sealer (PAPERS.md) motivates treating
// the cipher as a swappable, batch-oriented engine rather than a hard-wired
// implementation; this package is that seam. Three backends register at
// init:
//
//   - "ttable": the repository's from-scratch T-table AES path — the
//     original keystream.Cipher and mac.Key, unchanged. Portable, no
//     hardware assumptions, and the reference the others are diffed against.
//   - "stdlib": the same constructions over crypto/aes, which picks up
//     AES-NI (and NEON, etc.) via the standard library's assembly.
//   - "batch8": crypto/aes plus batch-8 kernels — pads and MAC PRF blocks
//     for up to 8 data blocks (32 AES lanes) are staged and dispatched as
//     one tight encrypt loop, sized so a 4KB counter-group re-encryption
//     sweep or a write-pipeline flush runs whole groups through the kernel.
//
// Every backend computes bit-identical pads, ciphertexts, and tags: the
// differential conformance suite (conformance_test.go) and the fuzz targets
// hold each pair equal over randomized addr/counter/length grids, so stored
// images written under one backend verify under any other.
//
// Concurrency contract: a Stream or MAC instance is single-owner — the
// non-ttable implementations keep scratch buffers in the instance so the
// hot paths stay allocation-free across the interface boundary (stack
// buffers passed to an interface method would escape). Callers that fan
// out (parallel re-encryption) construct one instance per worker.
package crypto

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"authmem/internal/keystream"
)

// BlockSize is the encryption/MAC granularity in bytes (one cache line).
const BlockSize = 64

// EnvBackend is the environment variable consulted when a backend name is
// empty. The CI test matrix uses it to run the whole suite once per backend
// without threading a flag through every test.
const EnvBackend = "AUTHMEM_CRYPTO_BACKEND"

// DefaultBackend is the backend used when neither the caller nor the
// environment selects one.
const DefaultBackend = "ttable"

// Stream generates and applies 64-byte AES-CTR keystream pads. The method
// set mirrors keystream.Cipher; all implementations produce bit-identical
// pads for the same key and (addr, counter) seeds.
type Stream interface {
	// Pad writes the 64-byte keystream for (addr, counter) into dst.
	Pad(dst []byte, addr, counter uint64) error
	// PadN writes the pads of len(dst)/BlockSize contiguous blocks
	// (block i seeded by addr + i*BlockSize) sharing one counter.
	PadN(dst []byte, addr, counter uint64) error
	// XOR applies the pad for (addr, counter) to one block; dst and src
	// may alias exactly.
	XOR(dst, src []byte, addr, counter uint64) error
	// XORBlocks applies contiguous-block pads to a span; dst and src may
	// alias exactly.
	XORBlocks(dst, src []byte, addr, counter uint64) error
	// PadBatch is the batch kernel for PadN: same contract, but wide
	// backends stage several blocks per cipher dispatch.
	PadBatch(dst []byte, addr, counter uint64) error
	// XORBlocksBatch is the batch kernel for XORBlocks.
	XORBlocksBatch(dst, src []byte, addr, counter uint64) error
	// EnablePadCache attaches a direct-mapped (addr, counter) pad cache
	// of the given power-of-two entry count. All backends share the cache
	// geometry and hit/miss accounting, so PadCacheStats is comparable
	// across backends.
	EnablePadCache(entries int) error
	// CacheStats returns pad-cache hit/miss counts since EnablePadCache.
	CacheStats() keystream.CacheStats
}

// MAC computes the 56-bit Carter-Wegman tag over 64-byte ciphertext blocks.
// The method set mirrors mac.Key; all implementations produce bit-identical
// tags for the same key material.
type MAC interface {
	// Tag computes the tag of one block at (addr, counter).
	Tag(ciphertext []byte, addr, counter uint64) (uint64, error)
	// Verify reports whether tag authenticates the block.
	Verify(ciphertext []byte, addr, counter, tag uint64) (bool, error)
	// TagBatch tags len(tags) contiguous blocks sharing one counter
	// (block i at addr + i*BlockSize) — the seal shape of a group
	// re-encryption sweep or a coalesced span write.
	TagBatch(tags []uint64, ciphertexts []byte, addr, counter uint64) error
	// HashPoint exposes the polynomial-hash point for the MAC-in-ECC
	// flip-and-check contribution tables (see internal/macecc).
	HashPoint() uint64
}

// Backend constructs a matched Stream/MAC pair. Name is the registry key
// and what daemon flags and BENCH reports call the backend.
type Backend interface {
	Name() string
	// NewStream builds a keystream cipher from a 16-byte AES-128 key.
	NewStream(key []byte) (Stream, error)
	// NewMAC builds a MAC from 24 bytes of key material (8-byte hash
	// point seed + 16-byte AES PRF key), matching mac.NewKey.
	NewMAC(material []byte) (MAC, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its Name. Registering a duplicate name
// panics: backends register from init and a collision is a programming
// error, not a runtime condition.
func Register(b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[b.Name()]; dup {
		panic("crypto: duplicate backend " + b.Name())
	}
	registry[b.Name()] = b
}

// Lookup resolves a backend name. An empty name falls back to the
// AUTHMEM_CRYPTO_BACKEND environment variable, then to DefaultBackend.
// Unknown names are an error listing what is registered.
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = os.Getenv(EnvBackend)
	}
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	defer regMu.RUnlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("crypto: unknown backend %q (registered: %v)", name, namesLocked())
}

// Names returns the registered backend names, sorted. The conformance
// suite iterates it so a future backend is covered the moment it registers.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
