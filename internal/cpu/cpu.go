// Package cpu implements the trace-driven multi-core timing model — the
// MARSSx86 substitute of this reproduction.
//
// Each core executes a memory-access trace: non-memory instructions retire
// at the issue width, loads stall until the hierarchy returns data, stores
// retire through a store buffer without stalling (their fills and
// writebacks still generate traffic). Cores share an L3 and the secure
// memory controller; the simulation interleaves cores in global time order,
// so cross-core contention (L3 capacity, DRAM banks and buses, metadata
// cache) emerges naturally and deterministically.
//
// The model is deliberately first-order: the paper's Figure 8 effect is
// "extra DRAM transactions per miss lengthen effective miss latency", which
// a bounded-issue stall model exposes without out-of-order bookkeeping.
package cpu

import (
	"fmt"

	"authmem/internal/cache"
	"authmem/internal/trace"
)

// MemoryBackend is what the hierarchy sits on — in this system, the secure
// memory controller's timing model.
type MemoryBackend interface {
	// ReadMiss returns the cycle at which a missing line is available.
	ReadMiss(now, addr uint64) uint64
	// WriteBack accepts an evicted dirty line.
	WriteBack(now, addr uint64) uint64
}

// Config describes the modeled chip (Table 1).
type Config struct {
	// Cores is the number of cores (= trace streams).
	Cores int
	// IssueWidth is instructions retired per cycle outside stalls.
	IssueWidth int
	// L1, L2 are per-core; L3 is shared.
	L1, L2, L3 cache.Config
	// Hit latencies in cycles. L1 hits are charged on loads.
	L1HitCycles, L2HitCycles, L3HitCycles uint64
	// MLP is the memory-level-parallelism divisor an out-of-order window
	// applies to load-miss stalls: independent misses overlap, so the
	// core observes roughly latency/MLP per miss. 0 or 1 means fully
	// serialized misses.
	MLP int
	// NextLinePrefetch enables a simple next-line prefetcher: every load
	// miss also pulls the following line into the hierarchy without
	// stalling the core. Off by default (the paper's Table 1 does not
	// specify one); useful as an ablation — prefetching amplifies
	// metadata traffic, since speculative lines need verification too.
	NextLinePrefetch bool
}

// Table1 returns the paper's configuration: 4 cores, 4-wide, 32KB L1 /
// 256KB L2 per core, 10MB 16-way shared L3.
func Table1() Config {
	return Config{
		Cores:       4,
		IssueWidth:  4,
		L1:          cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		L2:          cache.Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		L3:          cache.Config{SizeBytes: 10 << 20, LineBytes: 64, Ways: 16},
		L1HitCycles: 1,
		L2HitCycles: 12,
		L3HitCycles: 35,
		MLP:         4,
	}
}

// Result summarizes a run.
type Result struct {
	// Instructions is the total retired across cores.
	Instructions uint64
	// Cycles is the wall-clock of the slowest core.
	Cycles uint64
	// IPC is Instructions / Cycles / Cores — per-core IPC, matching how
	// Figure 8 reports it.
	IPC float64
	// LoadStallCycles accumulates cycles lost to load misses.
	LoadStallCycles uint64
	// L3Misses counts demand misses that reached the controller.
	L3Misses uint64
	// Writebacks counts dirty L3 evictions sent to the controller.
	Writebacks uint64
	// Prefetches counts next-line prefetches issued.
	Prefetches uint64
	// PerCore breaks the run down by core.
	PerCore []CoreResult
}

// CoreResult is one core's share of a run.
type CoreResult struct {
	Instructions uint64
	Cycles       uint64
	IPC          float64
}

type coreState struct {
	gen     trace.Generator
	l1, l2  *cache.Cache
	now     uint64
	retired uint64
	done    bool
}

// System is a multi-core trace-driven simulator.
type System struct {
	cfg   Config
	cores []*coreState
	l3    *cache.Cache
	mem   MemoryBackend
	res   Result
}

// New builds a system. gens supplies one trace per core.
func New(cfg Config, gens []trace.Generator, mem MemoryBackend) (*System, error) {
	if cfg.Cores <= 0 || cfg.IssueWidth <= 0 {
		return nil, fmt.Errorf("cpu: cores and issue width must be positive")
	}
	if len(gens) != cfg.Cores {
		return nil, fmt.Errorf("cpu: %d generators for %d cores", len(gens), cfg.Cores)
	}
	if mem == nil {
		return nil, fmt.Errorf("cpu: nil memory backend")
	}
	s := &System{cfg: cfg, mem: mem}
	l3, err := cache.New(cfg.L3)
	if err != nil {
		return nil, fmt.Errorf("cpu: L3: %w", err)
	}
	s.l3 = l3
	for i := 0; i < cfg.Cores; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("cpu: L1: %w", err)
		}
		l2, err := cache.New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("cpu: L2: %w", err)
		}
		s.cores = append(s.cores, &coreState{gen: gens[i], l1: l1, l2: l2})
	}
	return s, nil
}

// l3Access goes to the shared L3 and, on miss, the memory controller.
// Returns data-ready cycle. Fills propagate; dirty evictions write back.
func (s *System) l3Access(now, addr uint64, dirtyFill bool) uint64 {
	res := s.l3.Access(addr, dirtyFill)
	if res.Evicted && res.EvictedDirty {
		s.res.Writebacks++
		s.mem.WriteBack(now, res.EvictedAddr)
	}
	if res.Hit {
		return now + s.cfg.L3HitCycles
	}
	s.res.L3Misses++
	return s.mem.ReadMiss(now+s.cfg.L3HitCycles, addr)
}

// l2Access goes to a core's L2 and below.
func (s *System) l2Access(c *coreState, now, addr uint64, dirtyFill bool) uint64 {
	res := c.l2.Access(addr, dirtyFill)
	if res.Evicted && res.EvictedDirty {
		// Dirty L2 victim moves into L3.
		s.l3Access(now, res.EvictedAddr, true)
	}
	if res.Hit {
		return now + s.cfg.L2HitCycles
	}
	return s.l3Access(now+s.cfg.L2HitCycles, addr, false)
}

// l1Access performs one memory instruction and returns the data-ready cycle.
func (s *System) l1Access(c *coreState, now, addr uint64, store bool) uint64 {
	res := c.l1.Access(addr, store)
	if res.Evicted && res.EvictedDirty {
		s.l2Access(c, now, res.EvictedAddr, true)
	}
	if res.Hit {
		return now + s.cfg.L1HitCycles
	}
	return s.l2Access(c, now, addr, false)
}

// cacheHasLine probes the core-visible hierarchy without disturbing state.
func (s *System) cacheHasLine(c *coreState, addr uint64) bool {
	return c.l1.Probe(addr) || c.l2.Probe(addr) || s.l3.Probe(addr)
}

// step executes one trace record on a core.
func (s *System) step(c *coreState) {
	rec, ok := c.gen.Next()
	if !ok {
		c.done = true
		return
	}
	// Non-memory instructions retire at the issue width.
	c.now += (uint64(rec.Gap) + uint64(s.cfg.IssueWidth) - 1) / uint64(s.cfg.IssueWidth)
	c.retired += uint64(rec.Gap) + 1

	addr := rec.Addr &^ 63
	if rec.Op == trace.Store {
		// Stores retire through the store buffer: traffic happens,
		// the core does not wait.
		s.l1Access(c, c.now, addr, true)
		c.now++
		return
	}
	hitBefore := s.cacheHasLine(c, addr)
	ready := s.l1Access(c, c.now, addr, false)
	if s.cfg.NextLinePrefetch && !hitBefore {
		// Pull the next line in without stalling; its traffic and
		// fills are real.
		s.l1Access(c, c.now, addr+64, false)
		s.res.Prefetches++
	}
	stall := ready - c.now
	if mlp := uint64(s.cfg.MLP); mlp > 1 && stall > s.cfg.L2HitCycles {
		// Long-latency misses overlap in the OoO window; short on-chip
		// hits are exposed as-is.
		stall = s.cfg.L2HitCycles + (stall-s.cfg.L2HitCycles)/mlp
	}
	if stall > s.cfg.L1HitCycles {
		s.res.LoadStallCycles += stall - s.cfg.L1HitCycles
	}
	c.now += stall
}

// Run executes all traces to completion and returns the result.
func (s *System) Run() Result {
	for {
		// Advance the core with the smallest local clock, keeping
		// shared-resource interleaving causal and deterministic.
		var next *coreState
		for _, c := range s.cores {
			if c.done {
				continue
			}
			if next == nil || c.now < next.now {
				next = c
			}
		}
		if next == nil {
			break
		}
		s.step(next)
	}
	for _, c := range s.cores {
		s.res.Instructions += c.retired
		if c.now > s.res.Cycles {
			s.res.Cycles = c.now
		}
		cr := CoreResult{Instructions: c.retired, Cycles: c.now}
		if c.now > 0 {
			cr.IPC = float64(c.retired) / float64(c.now)
		}
		s.res.PerCore = append(s.res.PerCore, cr)
	}
	if s.res.Cycles > 0 {
		s.res.IPC = float64(s.res.Instructions) / float64(s.res.Cycles) / float64(s.cfg.Cores)
	}
	return s.res
}

// L3Stats exposes shared-cache statistics.
func (s *System) L3Stats() cache.Stats { return s.l3.Stats() }
