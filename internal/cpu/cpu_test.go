package cpu

import (
	"reflect"
	"testing"

	"authmem/internal/cache"
	"authmem/internal/trace"
)

// flatMemory is a fixed-latency backend for isolating core-model behaviour.
type flatMemory struct {
	readLatency uint64
	reads       int
	writebacks  int
}

func (m *flatMemory) ReadMiss(now, addr uint64) uint64 {
	m.reads++
	return now + m.readLatency
}

func (m *flatMemory) WriteBack(now, addr uint64) uint64 {
	m.writebacks++
	return now + 1
}

func tiny() Config {
	return Config{
		Cores:       1,
		IssueWidth:  4,
		L1:          cache.Config{SizeBytes: 1 << 10, LineBytes: 64, Ways: 2},
		L2:          cache.Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4},
		L3:          cache.Config{SizeBytes: 16 << 10, LineBytes: 64, Ways: 4},
		L1HitCycles: 1,
		L2HitCycles: 12,
		L3HitCycles: 35,
	}
}

func TestNewValidation(t *testing.T) {
	mem := &flatMemory{readLatency: 100}
	cfg := tiny()
	if _, err := New(cfg, nil, mem); err == nil {
		t.Fatal("generator count mismatch should fail")
	}
	if _, err := New(cfg, []trace.Generator{&trace.SliceGenerator{}}, nil); err == nil {
		t.Fatal("nil memory should fail")
	}
	bad := cfg
	bad.Cores = 0
	if _, err := New(bad, nil, mem); err == nil {
		t.Fatal("zero cores should fail")
	}
	bad = cfg
	bad.L1.Ways = 0
	if _, err := New(bad, []trace.Generator{&trace.SliceGenerator{}}, mem); err == nil {
		t.Fatal("bad L1 should fail")
	}
}

func TestTable1Builds(t *testing.T) {
	gens := make([]trace.Generator, 4)
	for i := range gens {
		gens[i] = &trace.SliceGenerator{}
	}
	if _, err := New(Table1(), gens, &flatMemory{}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeOnlyIPC(t *testing.T) {
	// 1000 instructions, no memory ops beyond one final load that hits
	// nothing... use gap-only records with one cached address.
	recs := []trace.Record{{Gap: 999, Op: trace.Load, Addr: 0}}
	mem := &flatMemory{readLatency: 0}
	s, err := New(tiny(), []trace.Generator{&trace.SliceGenerator{Records: recs}}, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if res.Instructions != 1000 {
		t.Fatalf("instructions %d", res.Instructions)
	}
	// 999 instructions at width 4 = 250 cycles, plus the load.
	if res.Cycles < 250 || res.Cycles > 300 {
		t.Fatalf("cycles %d", res.Cycles)
	}
	if res.IPC <= 3 || res.IPC > 4 {
		t.Fatalf("IPC %.2f, want close to 4", res.IPC)
	}
}

func TestMemoryLatencyLowersIPC(t *testing.T) {
	mk := func() trace.Generator {
		return trace.NewSynthetic(trace.SyntheticConfig{
			Ops: 5000, MeanGap: 8, Pattern: trace.Random,
			FootprintBytes: 1 << 22, Seed: 1,
		})
	}
	run := func(lat uint64) Result {
		s, err := New(tiny(), []trace.Generator{mk()}, &flatMemory{readLatency: lat})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	fast, slow := run(50), run(500)
	if slow.IPC >= fast.IPC {
		t.Fatalf("IPC %f with 500-cycle memory >= %f with 50-cycle", slow.IPC, fast.IPC)
	}
	if slow.LoadStallCycles <= fast.LoadStallCycles {
		t.Fatal("stall accounting does not track latency")
	}
}

func TestCacheHitsAvoidMemory(t *testing.T) {
	// A footprint that fits in L1 must not reach memory after warmup.
	gen := trace.NewSynthetic(trace.SyntheticConfig{
		Ops: 10000, Pattern: trace.Sequential, FootprintBytes: 512, Seed: 2,
	})
	mem := &flatMemory{readLatency: 200}
	s, err := New(tiny(), []trace.Generator{gen}, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if mem.reads > 8 { // 8 lines of warmup
		t.Fatalf("%d memory reads for an L1-resident footprint", mem.reads)
	}
	if res.L3Misses != uint64(mem.reads) {
		t.Fatalf("L3Misses %d != backend reads %d", res.L3Misses, mem.reads)
	}
}

func TestStoresDoNotStall(t *testing.T) {
	// All-store trace vs all-load trace over an uncacheable footprint:
	// loads must take far longer.
	mk := func(wf float64) trace.Generator {
		return trace.NewSynthetic(trace.SyntheticConfig{
			Ops: 3000, WriteFrac: wf, Pattern: trace.Random,
			FootprintBytes: 1 << 24, Seed: 3,
		})
	}
	run := func(wf float64) Result {
		s, err := New(tiny(), []trace.Generator{mk(wf)}, &flatMemory{readLatency: 400})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	loads, stores := run(0), run(1)
	if stores.Cycles*4 > loads.Cycles {
		t.Fatalf("stores (%d cycles) not much cheaper than loads (%d)", stores.Cycles, loads.Cycles)
	}
}

func TestWritebacksReachMemory(t *testing.T) {
	// A write-streaming footprint much larger than total cache capacity
	// must push dirty lines out to the backend.
	gen := trace.NewSynthetic(trace.SyntheticConfig{
		Ops: 20000, WriteFrac: 1, Pattern: trace.Sequential,
		FootprintBytes: 1 << 21, Seed: 4,
	})
	mem := &flatMemory{readLatency: 100}
	s, err := New(tiny(), []trace.Generator{gen}, mem)
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run()
	if mem.writebacks == 0 || res.Writebacks == 0 {
		t.Fatal("streaming stores produced no writebacks")
	}
	if res.Writebacks != uint64(mem.writebacks) {
		t.Fatalf("writeback accounting mismatch: %d vs %d", res.Writebacks, mem.writebacks)
	}
}

func TestMultiCoreSharesL3(t *testing.T) {
	// Four cores with a shared read-only footprint: after one core warms
	// the L3, others hit it (far fewer memory reads than 4x the solo run).
	mkGens := func(n int) []trace.Generator {
		gens := make([]trace.Generator, n)
		for i := range gens {
			gens[i] = trace.NewSynthetic(trace.SyntheticConfig{
				Ops: 4000, Pattern: trace.Sequential, FootprintBytes: 8 << 10,
				Seed: int64(i),
			})
		}
		return gens
	}
	cfg := tiny()
	solo := &flatMemory{readLatency: 200}
	s1, err := New(cfg, mkGens(1), solo)
	if err != nil {
		t.Fatal(err)
	}
	s1.Run()

	cfg.Cores = 4
	quad := &flatMemory{readLatency: 200}
	s4, err := New(cfg, mkGens(4), quad)
	if err != nil {
		t.Fatal(err)
	}
	s4.Run()
	if quad.reads >= solo.reads*3 {
		t.Fatalf("shared L3 not effective: solo %d reads, quad %d", solo.reads, quad.reads)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() Result {
		gens := make([]trace.Generator, 2)
		for i := range gens {
			gens[i] = trace.NewSynthetic(trace.SyntheticConfig{
				Ops: 5000, MeanGap: 5, WriteFrac: 0.3, Pattern: trace.Hotspot,
				FootprintBytes: 1 << 22, HotFrac: 0.6, HotBytes: 1 << 14, Seed: int64(i + 7),
			})
		}
		cfg := tiny()
		cfg.Cores = 2
		s, err := New(cfg, gens, &flatMemory{readLatency: 150})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	if len(a.PerCore) != 2 {
		t.Fatalf("per-core results missing: %+v", a.PerCore)
	}
	var sum uint64
	for _, c := range a.PerCore {
		sum += c.Instructions
		if c.IPC <= 0 {
			t.Fatalf("core IPC %v", c.IPC)
		}
	}
	if sum != a.Instructions {
		t.Fatal("per-core instructions do not sum to the total")
	}
}

func BenchmarkRunHotspot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		gen := trace.NewSynthetic(trace.SyntheticConfig{
			Ops: 100000, MeanGap: 5, WriteFrac: 0.3, Pattern: trace.Hotspot,
			FootprintBytes: 1 << 24, HotFrac: 0.5, HotBytes: 1 << 16, Seed: 1,
		})
		s, err := New(tiny(), []trace.Generator{gen}, &flatMemory{readLatency: 200})
		if err != nil {
			b.Fatal(err)
		}
		s.Run()
	}
}

func TestNextLinePrefetchHelpsStreams(t *testing.T) {
	// Sequential loads over an uncached footprint: prefetch turns every
	// second miss into a hit, cutting load stalls.
	run := func(prefetch bool) Result {
		gen := trace.NewSynthetic(trace.SyntheticConfig{
			Ops: 8000, Pattern: trace.Sequential, FootprintBytes: 1 << 20, Seed: 5,
		})
		cfg := tiny()
		cfg.NextLinePrefetch = prefetch
		s, err := New(cfg, []trace.Generator{gen}, &flatMemory{readLatency: 300})
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	off, on := run(false), run(true)
	if on.Prefetches == 0 {
		t.Fatal("prefetcher idle on a stream")
	}
	if on.LoadStallCycles >= off.LoadStallCycles {
		t.Fatalf("prefetch did not reduce stalls: %d vs %d",
			on.LoadStallCycles, off.LoadStallCycles)
	}
	if off.Prefetches != 0 {
		t.Fatal("prefetches counted while disabled")
	}
}

func TestNextLinePrefetchTrafficCost(t *testing.T) {
	// Random loads: prefetch buys nothing but issues extra memory reads —
	// the ablation's point about speculative metadata traffic.
	run := func(prefetch bool) int {
		gen := trace.NewSynthetic(trace.SyntheticConfig{
			Ops: 3000, Pattern: trace.Random, FootprintBytes: 1 << 24, Seed: 6,
		})
		cfg := tiny()
		cfg.NextLinePrefetch = prefetch
		mem := &flatMemory{readLatency: 300}
		s, err := New(cfg, []trace.Generator{gen}, mem)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return mem.reads
	}
	off, on := run(false), run(true)
	if on <= off {
		t.Fatalf("prefetch should add traffic on random loads: %d vs %d", on, off)
	}
}
