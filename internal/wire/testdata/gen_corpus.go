//go:build ignore

// gen_corpus.go regenerates the committed seed corpora for
// FuzzWireRoundTrip (internal/wire) and FuzzServerFrame (internal/server):
//
//	go run internal/wire/testdata/gen_corpus.go internal/wire/testdata/fuzz/FuzzWireRoundTrip
//	go run internal/wire/testdata/gen_corpus.go internal/server/testdata/fuzz/FuzzServerFrame
//
// Both targets consume raw frame streams, so they share one seed set.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"authmem/internal/wire"
)

func main() {
	dir := os.Args[1]
	seeds := map[string][]byte{
		"read":            wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRead, ID: 1, Addr: 64, Count: 4}, nil),
		"write":           wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: 2, Count: 1}, make([]byte, wire.BlockBytes)),
		"flush":           wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpFlush, ID: 3}, nil),
		"stats":           wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpStats, ID: 4}, nil),
		"rootdigest":      wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRootDigest, ID: 5}, nil),
		"macfail":         wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRead, Status: wire.StatusMACFail, Flags: wire.FlagQuarantinedNow, ID: 6, Addr: 128}, nil),
		"pipelined":       wire.AppendFrame(wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRead, ID: 7, Count: 1}, nil), wire.Header{Version: wire.Version, Op: wire.OpFlush, ID: 8}, nil),
		"truncated":       wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRead, ID: 9, Count: 1}, nil)[:7],
		"badversion":      wire.AppendFrame(nil, wire.Header{Version: wire.Version + 3, Op: wire.OpRead, ID: 10, Count: 1}, nil),
		"shortlen":        {5, 0, 0, 0, 1, 1, 0, 0, 0},
		"oversizedlen":    {0xff, 0xff, 0xff, 0x7f},
		"giantcount":      wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: 11, Count: 1 << 30}, nil),
		"badop":           wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.Op(77), ID: 12}, nil),
		"unaligned":       wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpRead, ID: 13, Addr: 33, Count: 1}, nil),
		"adjacent-writes": wire.AppendFrame(wire.AppendFrame(nil, wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: 14, Addr: 0, Count: 1}, make([]byte, 64)), wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: 15, Addr: 64, Count: 1}, make([]byte, 64)),
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed_"+name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Println("wrote", len(seeds), "seeds to", dir)
}
