package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xA5}, 3*BlockBytes)
	frames := []struct {
		h       Header
		payload []byte
	}{
		{Header{Version: Version, Op: OpRead, ID: 1, Addr: 0, Count: 1}, nil},
		{Header{Version: Version, Op: OpWrite, ID: 2, Addr: 64, Count: 3}, payload},
		{Header{Version: Version, Op: OpFlush, ID: 3}, nil},
		{Header{Version: Version, Op: OpStats, ID: 4}, nil},
		{Header{Version: Version, Op: OpRootDigest, ID: 1<<64 - 1, Addr: 1<<63 - 64}, nil},
		{Header{Version: Version, Op: OpRead, Status: StatusMACFail, Flags: FlagQuarantinedNow, ID: 9, Addr: 128}, nil},
	}

	var buf bytes.Buffer
	fw := NewWriter(&buf)
	for _, f := range frames {
		fw.WriteFrame(f.h, f.payload)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Stream decode.
	fr := NewReader(bytes.NewReader(buf.Bytes()))
	for i, f := range frames {
		h, p, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if h != f.h {
			t.Fatalf("frame %d: header %+v, want %+v", i, h, f.h)
		}
		if !bytes.Equal(p, f.payload) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := fr.Next(); err != io.EOF {
		t.Fatalf("tail: %v, want io.EOF", err)
	}

	// Buffer decode.
	b := buf.Bytes()
	for i, f := range frames {
		h, p, n, err := ParseFrame(b)
		if err != nil {
			t.Fatalf("parse %d: %v", i, err)
		}
		if h != f.h || !bytes.Equal(p, f.payload) {
			t.Fatalf("parse %d: mismatch", i)
		}
		b = b[n:]
	}
	if len(b) != 0 {
		t.Fatalf("%d trailing bytes", len(b))
	}
}

func TestReaderRejectsMalformed(t *testing.T) {
	frame := func(mut func(b []byte)) []byte {
		b := AppendFrame(nil, Header{Version: Version, Op: OpRead, ID: 7, Count: 1}, nil)
		if mut != nil {
			mut(b)
		}
		return b
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"short length", frame(func(b []byte) { binary.LittleEndian.PutUint32(b, HeaderBytes-1) }), ErrShortFrame},
		{"oversized length", frame(func(b []byte) { binary.LittleEndian.PutUint32(b, MaxFrameBytes+1) }), ErrFrameTooLarge},
		{"bad version", frame(func(b []byte) { b[LengthBytes] = Version + 1 }), ErrVersion},
		{"truncated header", frame(nil)[:10], io.ErrUnexpectedEOF},
		{"truncated payload", AppendFrame(nil, Header{Version: Version, Op: OpWrite, Count: 1}, make([]byte, BlockBytes))[:40], io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		_, _, err := NewReader(bytes.NewReader(tc.in)).Next()
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
		// ParseFrame must agree, modulo incompleteness vs truncation.
		_, _, _, perr := ParseFrame(tc.in)
		if perr == nil {
			t.Errorf("%s: ParseFrame accepted", tc.name)
		}
	}
}

func TestValidateRequest(t *testing.T) {
	ok := func(h Header, n int) {
		t.Helper()
		if err := h.ValidateRequest(n); err != nil {
			t.Errorf("%s: unexpected %v", h.Op, err)
		}
	}
	bad := func(h Header, n int, want error) {
		t.Helper()
		if err := h.ValidateRequest(n); !errors.Is(err, want) {
			t.Errorf("%s: err %v, want %v", h.Op, err, want)
		}
	}
	ok(Header{Op: OpRead, Count: 1}, 0)
	ok(Header{Op: OpRead, Count: MaxSpanBlocks, Addr: 64}, 0)
	ok(Header{Op: OpWrite, Count: 2}, 2*BlockBytes)
	ok(Header{Op: OpFlush}, 0)
	ok(Header{Op: OpStats}, 0)
	ok(Header{Op: OpRootDigest}, 0)
	ok(Header{Op: OpHello}, 0)
	ok(Header{Op: OpRead, Count: 1, Flags: FlagRootPin}, 0)
	ok(Header{Op: OpWrite, Count: 1, Flags: FlagRootPin}, BlockBytes)
	ok(Header{Op: OpFlush, Flags: FlagRootPin}, 0)

	bad(Header{Op: OpHello, Count: 1}, 0, ErrPayloadSize)
	bad(Header{Op: OpHello}, 4, ErrPayloadSize)
	bad(Header{Op: OpHello, Flags: FlagRootPin}, 0, ErrBadFlags)
	bad(Header{Op: OpStats, Flags: FlagRootPin}, 0, ErrBadFlags)
	bad(Header{Op: OpRootDigest, Flags: FlagRootPin}, 0, ErrBadFlags)
	bad(Header{Op: OpRead, Count: 0}, 0, ErrBadSpan)
	bad(Header{Op: OpRead, Count: MaxSpanBlocks + 1}, 0, ErrBadSpan)
	bad(Header{Op: OpRead, Count: 1, Addr: 63}, 0, ErrUnaligned)
	bad(Header{Op: OpRead, Count: 2, Addr: ^uint64(63)}, 0, ErrBadSpan)
	bad(Header{Op: OpRead, Count: 1}, BlockBytes, ErrPayloadSize)
	bad(Header{Op: OpWrite, Count: 2}, BlockBytes, ErrPayloadSize)
	bad(Header{Op: OpFlush, Count: 1}, 0, ErrPayloadSize)
	bad(Header{Op: OpFlush}, 4, ErrPayloadSize)
	bad(Header{Op: Op(0)}, 0, ErrBadOp)
	bad(Header{Op: Op(200)}, 0, ErrBadOp)
}

// TestRootPinnedFrameRoundTrip pins the frame geometry of the cluster
// extensions: a maximum-span read response with a root-pin suffix must fit
// inside MaxFrameBytes, and both decoders must hand the suffix back intact.
func TestRootPinnedFrameRoundTrip(t *testing.T) {
	payload := make([]byte, MaxPayloadBytes+RootPinBytes)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	h := Header{Version: Version, Op: OpRead, Status: StatusOK, Flags: FlagRootPin,
		ID: 42, Count: MaxSpanBlocks}
	b := AppendFrame(nil, h, payload)

	gh, gp, n, err := ParseFrame(b)
	if err != nil {
		t.Fatalf("ParseFrame: %v", err)
	}
	if n != len(b) || gh != h || !bytes.Equal(gp, payload) {
		t.Fatal("ParseFrame mismatch on pinned max-span frame")
	}
	rh, rp, err := NewReader(bytes.NewReader(b)).Next()
	if err != nil {
		t.Fatalf("Reader.Next: %v", err)
	}
	if rh != h || !bytes.Equal(rp, payload) {
		t.Fatal("Reader mismatch on pinned max-span frame")
	}

	// Hello round trip: header-only request, JSON-ish response payload.
	hello := AppendFrame(nil, Header{Version: Version, Op: OpHello, ID: 7}, nil)
	hh, hp, _, err := ParseFrame(hello)
	if err != nil || hh.Op != OpHello || len(hp) != 0 {
		t.Fatalf("hello frame: h=%+v payload=%d err=%v", hh, len(hp), err)
	}
}

func TestStatusTaxonomy(t *testing.T) {
	for _, s := range []Status{StatusOK, StatusRecovered, StatusOverflowSwept} {
		if !s.Success() {
			t.Errorf("%v should be success", s)
		}
		if s.Retryable() {
			t.Errorf("%v should not be retryable", s)
		}
	}
	for _, s := range []Status{StatusBusy, StatusDeadline} {
		if !s.Retryable() || s.Success() {
			t.Errorf("%v should be retryable failure", s)
		}
	}
	for _, s := range []Status{StatusMACFail, StatusQuarantined, StatusBadRequest, StatusShuttingDown, StatusInternal} {
		if s.Retryable() || s.Success() {
			t.Errorf("%v must be a terminal failure", s)
		}
	}
}

func TestWriterZeroAllocSteadyState(t *testing.T) {
	fw := NewWriter(io.Discard)
	payload := make([]byte, BlockBytes)
	h := Header{Version: Version, Op: OpWrite, Count: 1}
	// Warm the buffer.
	fw.WriteFrame(h, payload)
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		fw.WriteFrame(h, payload)
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("writer allocates %.1f/op in steady state", allocs)
	}
}

func TestReaderZeroAllocSteadyState(t *testing.T) {
	var buf bytes.Buffer
	fw := NewWriter(&buf)
	h := Header{Version: Version, Op: OpWrite, Count: MaxSpanBlocks}
	payload := make([]byte, MaxPayloadBytes)
	for i := 0; i < 102; i++ { // 1 warm + AllocsPerRun's warm-up + 100 runs
		fw.WriteFrame(h, payload)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewReader(bytes.NewReader(buf.Bytes()))
	if _, _, err := fr.Next(); err != nil { // warm the payload buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := fr.Next(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reader allocates %.1f/op in steady state", allocs)
	}
}
