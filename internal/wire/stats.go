package wire

import "authmem"

// StatsSnapshot is the JSON payload of an OpStats response: the engine's
// cumulative statistics plus the server's own protocol counters. It is part
// of the wire contract — the client returns it verbatim — so both halves
// live here rather than in the server package.
type StatsSnapshot struct {
	ProtoVersion int                 `json:"proto_version"`
	Server       ServerCounters      `json:"server"`
	Engine       authmem.EngineStats `json:"engine"`
}

// ServerCounters aggregates protocol-level events across every connection
// the server has handled.
type ServerCounters struct {
	ConnsOpened uint64 `json:"conns_opened"`
	ConnsClosed uint64 `json:"conns_closed"`

	// Per-op accepted request counts.
	ReadOps  uint64 `json:"read_ops"`
	WriteOps uint64 `json:"write_ops"`
	FlushOps uint64 `json:"flush_ops"`
	StatsOps uint64 `json:"stats_ops"`
	RootOps  uint64 `json:"root_ops"`
	HelloOps uint64 `json:"hello_ops"`

	// RootPinned counts responses that carried a root-pin suffix
	// (requests asking via FlagRootPin). Each pin forces a flush, so this
	// is also a measure of pin-induced quiescent points.
	RootPinned uint64 `json:"root_pinned"`

	// Data moved, in blocks.
	BlocksRead    uint64 `json:"blocks_read"`
	BlocksWritten uint64 `json:"blocks_written"`

	// Admission-control outcomes.
	BusyRejected     uint64 `json:"busy_rejected"`
	DeadlineRejected uint64 `json:"deadline_rejected"`
	DrainRejected    uint64 `json:"drain_rejected"`
	BadRequests      uint64 `json:"bad_requests"`
	MalformedFrames  uint64 `json:"malformed_frames"`

	// Adjacent-span coalescing: batches executed with more than one
	// request, and the requests absorbed beyond each batch's first.
	CoalescedBatches  uint64 `json:"coalesced_batches"`
	CoalescedRequests uint64 `json:"coalesced_requests"`

	// Shard worker affinity: batches executed on the worker pinned to
	// their shard, and single-shard batches that fell back to the shared
	// pool because the shard's queue was full. Both zero when the backend
	// is unsharded.
	AffinityDispatched uint64 `json:"affinity_dispatched"`
	AffinityBypassed   uint64 `json:"affinity_bypassed"`

	// Engine verdicts surfaced on the wire.
	MACFails      uint64 `json:"mac_fails"`
	Quarantined   uint64 `json:"quarantined"`
	Recovered     uint64 `json:"recovered"`
	OverflowSwept uint64 `json:"overflow_swept"`
}
