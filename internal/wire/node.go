package wire

// NodeInfo is the JSON payload of an OpHello response: the serving node's
// identity and geometry. A cluster client hellos every node at connect time
// to validate that the members agree on protocol and region shape, to learn
// each node's stable identity for placement, and to record the node's epoch
// — a value that changes whenever the node restarts, so a client that later
// observes a different epoch knows the node's volatile state was lost (or
// replaced) and its stripes must be repaired from replicas before its
// answers count toward a quorum again.
type NodeInfo struct {
	// NodeID is the node's stable identity (memserved -node-id). Placement
	// hashes it, so it must be unique and survive restarts.
	NodeID string `json:"node_id"`

	// Epoch identifies this incarnation of the node's in-memory state. It
	// is fresh on every process start; an epoch change between hellos
	// means everything the client believed about the node is void.
	Epoch uint64 `json:"epoch"`

	// ProtoVersion is the wire protocol version the node speaks.
	ProtoVersion int `json:"proto_version"`

	// Size is the node's protected region size in bytes; Shards its shard
	// count; BlockBytes its block granularity. A cluster requires all
	// members to agree on Size and BlockBytes.
	Size       uint64 `json:"size"`
	Shards     int    `json:"shards"`
	BlockBytes int    `json:"block_bytes"`
}
