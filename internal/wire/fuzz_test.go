package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

// FuzzWireRoundTrip throws arbitrary bytes at both decoders (buffer and
// stream) and checks the codec's safety contract: no panics, no
// over-allocation past the frame bounds, incomplete-vs-malformed kept
// distinct, and every frame that decodes re-encodes to the identical bytes.
func FuzzWireRoundTrip(f *testing.F) {
	// Well-formed frames of every op.
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpRead, ID: 1, Addr: 64, Count: 4}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpWrite, ID: 2, Count: 1}, make([]byte, BlockBytes)))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpFlush, ID: 3}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpStats, ID: 4}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpRootDigest, ID: 5}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpHello, ID: 30}, nil))
	// Root-pin asks: legal on READ/WRITE/FLUSH, rejected elsewhere.
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpRead, Flags: FlagRootPin, ID: 31, Addr: 64, Count: 2}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpWrite, Flags: FlagRootPin, ID: 32, Count: 1}, make([]byte, BlockBytes)))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpFlush, Flags: FlagRootPin, ID: 33}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpStats, Flags: FlagRootPin, ID: 34}, nil))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpRead, Status: StatusMACFail, Flags: FlagQuarantinedNow, ID: 6, Addr: 128}, nil))
	// Two frames back to back.
	f.Add(AppendFrame(AppendFrame(nil, Header{Version: Version, Op: OpRead, ID: 7, Count: 1}, nil),
		Header{Version: Version, Op: OpFlush, ID: 8}, nil))
	// Malformed: truncated, bad version, short length, oversized length,
	// giant count, empty.
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpRead, ID: 9, Count: 1}, nil)[:7])
	f.Add(AppendFrame(nil, Header{Version: Version + 3, Op: OpRead, ID: 10, Count: 1}, nil))
	f.Add([]byte{5, 0, 0, 0, 1, 1, 0, 0, 0})
	f.Add(binary.LittleEndian.AppendUint32(nil, MaxFrameBytes+64))
	f.Add(AppendFrame(nil, Header{Version: Version, Op: OpWrite, ID: 11, Count: 1 << 30}, nil))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Buffer decoder: walk every frame in the input.
		rest := data
		var frames int
		for {
			h, payload, n, err := ParseFrame(rest)
			if err != nil {
				if errors.Is(err, ErrIncomplete) && len(rest) > MaxFrameBytes+LengthBytes {
					t.Fatalf("ErrIncomplete with %d buffered bytes", len(rest))
				}
				break
			}
			if n <= 0 || n > len(rest) {
				t.Fatalf("consumed %d of %d", n, len(rest))
			}
			if len(payload) > MaxPayloadBytes {
				t.Fatalf("payload %d exceeds bound", len(payload))
			}
			// Re-encode: must reproduce the consumed bytes exactly.
			re := AppendFrame(nil, h, payload)
			if !bytes.Equal(re, rest[:n]) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, rest[:n])
			}
			// Request validation must never panic, whatever it decides.
			_ = h.ValidateRequest(len(payload))
			rest = rest[n:]
			frames++
		}

		// Stream decoder must agree frame for frame.
		fr := NewReader(bytes.NewReader(data))
		for i := 0; ; i++ {
			h, payload, err := fr.Next()
			if err != nil {
				if i < frames {
					t.Fatalf("stream died at frame %d/%d: %v", i, frames, err)
				}
				if err != io.EOF && i > frames {
					t.Fatalf("stream overshot buffer decoder")
				}
				break
			}
			if i >= frames {
				// The buffer decoder stopped early only on
				// incompleteness; a stream cannot yield a frame the
				// buffer decoder did not.
				t.Fatalf("stream produced extra frame %d (%v)", i, h.Op)
			}
			if len(payload) > MaxPayloadBytes {
				t.Fatalf("stream payload %d exceeds bound", len(payload))
			}
		}
	})
}
