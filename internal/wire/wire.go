// Package wire defines the authmem remote-service protocol: the versioned,
// length-prefixed binary framing shared by the network server
// (internal/server) and the public client package.
//
// Every message — request or response — is one frame:
//
//	offset  size  field
//	0       4     frame length N (little-endian; header + payload, excludes
//	              this prefix; HeaderBytes <= N <= MaxFrameBytes)
//	4       1     protocol version (Version)
//	5       1     op (OpRead..OpHello; responses echo the request op)
//	6       1     status (0/StatusOK in requests; the outcome in responses)
//	7       1     flags (response info bits: FlagRetried, FlagMetaRepaired,
//	              FlagCorrected, FlagQuarantinedNow)
//	8       8     request ID (client-chosen; responses echo it, which is
//	              what lets a connection pipeline and complete out of order)
//	16      8     block-aligned byte address (in error responses, the
//	              address of the failing block within the requested span)
//	24      4     count (blocks requested/carried; 0 for control ops)
//	28      N-24  payload
//
// Payloads: OpWrite requests and successful OpRead responses carry
// count*BlockBytes of block data; OpStats responses carry a JSON
// StatsSnapshot; OpRootDigest responses carry the 32-byte root digest;
// OpHello responses carry a JSON NodeInfo (node identity, epoch, geometry).
// Control requests (OpFlush, OpStats, OpRootDigest, OpHello) are
// header-only. A READ/WRITE/FLUSH request carrying FlagRootPin asks the
// node to append its current trusted root digest (RootPinBytes) after the
// ordinary response payload; the response echoes FlagRootPin to mark the
// suffix present.
//
// The codec is allocation-free in steady state: encoding appends into a
// caller-owned buffer and decoding aliases the Reader's reused buffer.
// Malformed input — truncated frames, bad versions, oversized lengths or
// spans — is rejected with an error before any allocation larger than
// MaxFrameBytes can happen, and never panics (see FuzzWireRoundTrip and the
// server's FuzzServerFrame).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

const (
	// Version is the protocol version this package speaks. A frame with
	// any other version is rejected; there is no negotiation.
	Version = 1

	// BlockBytes is the service's block granularity. It matches the
	// engine's 64-byte protection block (core.BlockBytes; asserted at
	// compile time in internal/server).
	BlockBytes = 64

	// LengthBytes and HeaderBytes fix the frame geometry: a 4-byte length
	// prefix followed by a 24-byte header.
	LengthBytes = 4
	HeaderBytes = 24

	// MaxSpanBlocks bounds one request's span (64KB of data). Larger
	// transfers are split into multiple pipelined requests by the client.
	MaxSpanBlocks = 1024

	// RootPinBytes is the size of a root-pin digest (SHA-256). A response
	// to a request carrying FlagRootPin appends this many bytes — the
	// serving node's current trusted root digest — after the ordinary
	// payload, and echoes FlagRootPin to mark the suffix present.
	RootPinBytes = 32

	// MaxPayloadBytes and MaxFrameBytes bound what a peer can make us
	// buffer: a frame longer than MaxFrameBytes is malformed by
	// definition and rejected before allocation. MaxFrameBytes leaves
	// room for a root-pin suffix on a maximum-span read response.
	MaxPayloadBytes = MaxSpanBlocks * BlockBytes
	MaxFrameBytes   = HeaderBytes + MaxPayloadBytes + RootPinBytes
)

// Op identifies a request kind.
type Op uint8

const (
	OpRead       Op = 1 // read count blocks at addr
	OpWrite      Op = 2 // write count blocks at addr (payload = data)
	OpFlush      Op = 3 // force deferred Merkle maintenance to land
	OpStats      Op = 4 // engine + server statistics snapshot (JSON)
	OpRootDigest Op = 5 // trusted root digest over the current state
	OpHello      Op = 6 // node identity/epoch handshake (JSON NodeInfo)
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "READ"
	case OpWrite:
		return "WRITE"
	case OpFlush:
		return "FLUSH"
	case OpStats:
		return "STATS"
	case OpRootDigest:
		return "ROOT_DIGEST"
	case OpHello:
		return "HELLO"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Status is a response outcome. It maps the engine's verdict taxonomy onto
// the wire: integrity failures and quarantine refusals surface as distinct
// codes rather than collapsing into one opaque error, and the recovery
// ladder's successes are visible too.
type Status uint8

const (
	// StatusOK: the operation completed; read payloads are verified
	// plaintext.
	StatusOK Status = 0

	// StatusMACFail: authentication/freshness verification failed — the
	// stored state is not what the engine last wrote, and recovery (if
	// any) could not salvage the access. Addr names the failing block.
	// Never retried by the client: re-reading tampered memory cannot make
	// it verify.
	StatusMACFail Status = 1

	// StatusQuarantined: the block was poisoned by an earlier exhausted
	// recovery; reads are refused until a fresh write releases it.
	StatusQuarantined Status = 2

	// StatusRecovered: the operation succeeded, but only via the recovery
	// ladder (metadata repair and/or re-read retries; see the flags).
	// Payload-carrying like StatusOK.
	StatusRecovered Status = 3

	// StatusOverflowSwept: the write succeeded and triggered a
	// counter-overflow group re-encryption sweep (advisory; see the
	// server's SweepStatus option).
	StatusOverflowSwept Status = 4

	// StatusBusy: admission control rejected the request — the
	// connection's in-flight window is full. Retryable after backoff.
	StatusBusy Status = 5

	// StatusDeadline: the request waited past the server's per-request
	// deadline before execution started. It was NOT executed; retryable.
	StatusDeadline Status = 6

	// StatusShuttingDown: the server is draining; the request was not
	// executed. Reconnect elsewhere — not retried on this connection.
	StatusShuttingDown Status = 7

	// StatusBadRequest: the frame parsed but the request is semantically
	// invalid (bad op, unaligned address, zero/oversized span, span past
	// the end of the region). Never retried.
	StatusBadRequest Status = 8

	// StatusInternal: the engine returned an error outside the taxonomy.
	StatusInternal Status = 9
)

// String names the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusMACFail:
		return "MAC_FAIL"
	case StatusQuarantined:
		return "QUARANTINED"
	case StatusRecovered:
		return "RECOVERED"
	case StatusOverflowSwept:
		return "OVERFLOW_SWEPT"
	case StatusBusy:
		return "BUSY"
	case StatusDeadline:
		return "DEADLINE"
	case StatusShuttingDown:
		return "SHUTTING_DOWN"
	case StatusBadRequest:
		return "BAD_REQUEST"
	case StatusInternal:
		return "INTERNAL"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Success reports whether the operation completed and any payload is valid.
func (s Status) Success() bool {
	return s == StatusOK || s == StatusRecovered || s == StatusOverflowSwept
}

// Retryable reports whether the request is safe and sensible to retry on
// the same server: it was refused before execution for a transient reason.
// MAC_FAIL and QUARANTINED are never retryable — they are integrity
// verdicts, not transport failures.
func (s Status) Retryable() bool {
	return s == StatusBusy || s == StatusDeadline
}

// Response info flags.
const (
	// FlagRetried: a bounded re-read retry salvaged the access.
	FlagRetried = 1 << 0
	// FlagMetaRepaired: counter metadata was rebuilt from trusted state.
	FlagMetaRepaired = 1 << 1
	// FlagCorrected: ECC corrected at least one stored bit during the
	// access.
	FlagCorrected = 1 << 2
	// FlagQuarantinedNow: this very request exhausted the recovery budget
	// and quarantined the failing block (accompanies StatusMACFail).
	FlagQuarantinedNow = 1 << 3
	// FlagRootPin: in a READ/WRITE/FLUSH request, asks the node to append
	// its current trusted root digest (RootPinBytes) to the response
	// payload; in a response, marks that suffix present. The pin is the
	// node's post-operation attestation anchor — a cluster client stores
	// it per node and folds all pins into the combined cluster digest.
	// Forcing the root is a flush, so pinning is strictly opt-in.
	FlagRootPin = 1 << 4
)

// Header is the fixed 24-byte frame header (everything after the length
// prefix, before the payload).
type Header struct {
	Version uint8
	Op      Op
	Status  Status
	Flags   uint8
	ID      uint64
	Addr    uint64
	Count   uint32
}

// Codec errors. Reader.Next and ParseFrame wrap these with detail; match
// with errors.Is.
var (
	// ErrShortFrame: the declared frame length is shorter than a header.
	ErrShortFrame = errors.New("wire: frame shorter than header")
	// ErrFrameTooLarge: the declared frame length exceeds MaxFrameBytes.
	ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")
	// ErrVersion: the frame speaks a different protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrBadOp: the op is outside the defined range.
	ErrBadOp = errors.New("wire: unknown op")
	// ErrBadSpan: count is zero, exceeds MaxSpanBlocks, or overflows the
	// address space.
	ErrBadSpan = errors.New("wire: invalid block span")
	// ErrUnaligned: the address is not block-aligned.
	ErrUnaligned = errors.New("wire: address not block-aligned")
	// ErrBadFlags: the request carries a flag its op does not support
	// (FlagRootPin outside READ/WRITE/FLUSH).
	ErrBadFlags = errors.New("wire: unsupported request flags")
	// ErrPayloadSize: the payload length does not match the header.
	ErrPayloadSize = errors.New("wire: payload length mismatch")
	// ErrIncomplete: the buffer ends mid-frame (streaming callers should
	// read more; ParseFrame only).
	ErrIncomplete = errors.New("wire: incomplete frame")
)

// PutHeader encodes h into b[0:HeaderBytes]. b must be at least HeaderBytes
// long.
func PutHeader(b []byte, h Header) {
	_ = b[HeaderBytes-1]
	b[0] = h.Version
	b[1] = uint8(h.Op)
	b[2] = uint8(h.Status)
	b[3] = h.Flags
	binary.LittleEndian.PutUint64(b[4:], h.ID)
	binary.LittleEndian.PutUint64(b[12:], h.Addr)
	binary.LittleEndian.PutUint32(b[20:], h.Count)
}

// parseHeader decodes b[0:HeaderBytes] without validation beyond length.
func parseHeader(b []byte) Header {
	return Header{
		Version: b[0],
		Op:      Op(b[1]),
		Status:  Status(b[2]),
		Flags:   b[3],
		ID:      binary.LittleEndian.Uint64(b[4:]),
		Addr:    binary.LittleEndian.Uint64(b[12:]),
		Count:   binary.LittleEndian.Uint32(b[20:]),
	}
}

// AppendFrame appends one encoded frame (length prefix, header, payload) to
// dst and returns the extended slice. It never allocates when dst has
// capacity.
func AppendFrame(dst []byte, h Header, payload []byte) []byte {
	var scratch [LengthBytes + HeaderBytes]byte
	binary.LittleEndian.PutUint32(scratch[:], uint32(HeaderBytes+len(payload)))
	PutHeader(scratch[LengthBytes:], h)
	dst = append(dst, scratch[:]...)
	return append(dst, payload...)
}

// ParseFrame decodes one frame from the front of b. It returns the header,
// the payload (aliasing b), and the total bytes consumed. If b ends
// mid-frame it returns ErrIncomplete with n == 0; a malformed frame returns
// a non-nil error that is NOT ErrIncomplete (the stream cannot be resynced
// and should be torn down).
func ParseFrame(b []byte) (h Header, payload []byte, n int, err error) {
	if len(b) < LengthBytes {
		return Header{}, nil, 0, ErrIncomplete
	}
	frameLen := binary.LittleEndian.Uint32(b)
	if frameLen < HeaderBytes {
		return Header{}, nil, 0, fmt.Errorf("%w: %d bytes", ErrShortFrame, frameLen)
	}
	if frameLen > MaxFrameBytes {
		return Header{}, nil, 0, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, frameLen)
	}
	total := LengthBytes + int(frameLen)
	if len(b) < total {
		return Header{}, nil, 0, ErrIncomplete
	}
	h = parseHeader(b[LengthBytes:])
	if h.Version != Version {
		return Header{}, nil, 0, fmt.Errorf("%w: %d", ErrVersion, h.Version)
	}
	return h, b[LengthBytes+HeaderBytes : total], total, nil
}

// ValidateRequest checks a decoded request header against the request
// grammar: known op, block-aligned non-overflowing span within
// MaxSpanBlocks, and a payload exactly matching the header. Responses are
// not subject to these rules (error responses have Count 0 but echo Addr).
func (h Header) ValidateRequest(payloadLen int) error {
	switch h.Op {
	case OpRead, OpWrite:
		if h.Count == 0 || h.Count > MaxSpanBlocks {
			return fmt.Errorf("%w: %d blocks", ErrBadSpan, h.Count)
		}
		if h.Addr%BlockBytes != 0 {
			return fmt.Errorf("%w: %#x", ErrUnaligned, h.Addr)
		}
		if h.Addr+uint64(h.Count)*BlockBytes < h.Addr {
			return fmt.Errorf("%w: span at %#x overflows", ErrBadSpan, h.Addr)
		}
		want := 0
		if h.Op == OpWrite {
			want = int(h.Count) * BlockBytes
		}
		if payloadLen != want {
			return fmt.Errorf("%w: have %d, want %d", ErrPayloadSize, payloadLen, want)
		}
	case OpFlush, OpStats, OpRootDigest, OpHello:
		if h.Count != 0 || payloadLen != 0 {
			return fmt.Errorf("%w: control op carries data", ErrPayloadSize)
		}
		if h.Op != OpFlush && h.Flags&FlagRootPin != 0 {
			return fmt.Errorf("%w: FlagRootPin on %v", ErrBadFlags, h.Op)
		}
	default:
		return fmt.Errorf("%w: %d", ErrBadOp, uint8(h.Op))
	}
	return nil
}

// SpanBytes returns the request's data length in bytes.
func (h Header) SpanBytes() int { return int(h.Count) * BlockBytes }

// End returns the first byte address past the request's span.
func (h Header) End() uint64 { return h.Addr + uint64(h.Count)*BlockBytes }

// Reader decodes a frame stream. The payload returned by Next aliases an
// internal buffer that is reused by the following call — copy anything that
// must outlive one iteration. A Reader never buffers ahead: it issues
// exactly the reads one frame needs, so it can sit directly on a net.Conn
// and honor read deadlines.
type Reader struct {
	r   io.Reader
	hdr [LengthBytes + HeaderBytes]byte
	buf []byte
}

// NewReader returns a Reader decoding from r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads and decodes one frame. io.EOF is returned only at a clean
// frame boundary; a stream ending mid-frame returns io.ErrUnexpectedEOF.
// Malformed framing (bad length, bad version) returns an error and leaves
// the stream unusable.
func (fr *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Header{}, nil, io.ErrUnexpectedEOF
		}
		return Header{}, nil, err
	}
	frameLen := binary.LittleEndian.Uint32(fr.hdr[:])
	if frameLen < HeaderBytes {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrShortFrame, frameLen)
	}
	if frameLen > MaxFrameBytes {
		return Header{}, nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, frameLen)
	}
	h := parseHeader(fr.hdr[LengthBytes:])
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrVersion, h.Version)
	}
	payloadLen := int(frameLen) - HeaderBytes
	if payloadLen == 0 {
		return h, nil, nil
	}
	if cap(fr.buf) < payloadLen {
		fr.buf = make([]byte, payloadLen, MaxFrameBytes-HeaderBytes)
	}
	fr.buf = fr.buf[:payloadLen]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, err
	}
	return h, fr.buf, nil
}

// Writer encodes frames into an internal buffer and writes them out in
// batches: WriteFrame only appends; Flush performs the single underlying
// write. Interleaving appends with explicit flushes is what lets the
// server's per-connection writer goroutine gather many pipelined responses
// into one syscall. Writer is not safe for concurrent use.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter returns a Writer encoding to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame appends one frame to the output buffer.
func (fw *Writer) WriteFrame(h Header, payload []byte) {
	fw.buf = AppendFrame(fw.buf, h, payload)
}

// Buffered returns the bytes appended and not yet flushed.
func (fw *Writer) Buffered() int { return len(fw.buf) }

// Flush writes the buffered frames out. The buffer's capacity is retained
// up to MaxFrameBytes so steady-state flushing does not allocate.
func (fw *Writer) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	if cap(fw.buf) > 4*MaxFrameBytes {
		fw.buf = nil // a giant batch happened once; don't pin it forever
	} else {
		fw.buf = fw.buf[:0]
	}
	return err
}
