// Package wal implements the sealed append-only delta log behind the
// engine's incremental persistence: a write-ahead log of opaque records
// whose integrity — and whose *position in history* — is cryptographically
// authenticated.
//
// The log lives on untrusted storage, so every property the engine relies
// on must be checkable, not assumed:
//
//   - Torn writes. Records are length-prefixed and CRC-summed, so a crash
//     mid-append leaves a tail that replay detects and cuts at the last
//     whole record (VerdictTruncated), never a misparse.
//   - Tampering and splicing. Each record carries an HMAC-SHA256 seal over
//     a running chain digest: chain_i = SHA256(chain_{i-1} || seq_i ||
//     payload_i). Because the chain folds in every earlier record, a forged,
//     reordered, dropped, or substituted record invalidates every seal from
//     that point on (VerdictCorrupt).
//   - Rollback across logs. The chain is seeded with a caller digest — the
//     root digest of the base snapshot the log extends — and the seed is
//     recorded in the header. A log replayed against the wrong base (an
//     older snapshot, say) fails the seed check before any record applies.
//
// What the log cannot do by itself is prevent an attacker from truncating
// at a record boundary and presenting a shorter-but-valid prefix: that is
// indistinguishable from an honest crash. Callers that need stronger
// freshness pin the last sealed state digest (or epoch count) in trusted
// storage and check it after replay — see core.ResumeIncremental and the
// memserved manifest.
package wal

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// headerMagic identifies delta logs (format version 1).
var headerMagic = [8]byte{'A', 'M', 'E', 'M', 'W', 'A', 'L', '1'}

// SeedSize is the chain-seed digest length (SHA-256).
const SeedSize = sha256.Size

// macSize is the per-record HMAC-SHA256 seal length.
const macSize = sha256.Size

// HeaderSize is the fixed log header length: magic + seed digest.
const HeaderSize = 8 + SeedSize

// recordOverhead is the per-record framing cost beyond the payload:
// u32 length | u64 seq | payload | u32 crc | 32-byte seal.
const recordOverhead = 4 + 8 + 4 + macSize

// MaxPayload bounds a single record so a corrupted length prefix cannot
// drive an unbounded allocation. Core group records are a few KB; 16MB
// leaves room for any future batched record shape.
const MaxPayload = 16 << 20

// RecordOverhead reports the framing bytes each Append adds beyond its
// payload (for storage accounting).
func RecordOverhead() int { return recordOverhead }

// Verdict classifies how a replay ended.
type Verdict int

const (
	// VerdictClean: the log was consumed to EOF at a record boundary and
	// every seal verified.
	VerdictClean Verdict = iota
	// VerdictTruncated: a torn or damaged tail — short read or CRC
	// mismatch at record FailedAt. Records before it replayed cleanly;
	// everything from it on is cut. The expected outcome of a crash.
	VerdictTruncated
	// VerdictCorrupt: a record's chained seal failed with intact framing —
	// forgery, reordering, splicing, or a wrong/rolled-back base seed.
	// Nothing from the failing record on can be trusted.
	VerdictCorrupt
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictClean:
		return "clean"
	case VerdictTruncated:
		return "truncated"
	case VerdictCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// ReplayResult reports how far a replay got and why it stopped.
type ReplayResult struct {
	Verdict Verdict
	// Records is the number of records delivered to the callback.
	Records int
	// FailedAt is the zero-based index of the record replay stopped at
	// (-1 for a clean replay).
	FailedAt int
	// Reason is a human-readable cause for non-clean verdicts.
	Reason string
}

// Writer appends sealed records to a fresh log.
//
// A Writer always starts a new log: the header (magic + chain seed) is
// written by NewWriter, and the chain state lives in the Writer. Continuing
// a log across process restarts is deliberately unsupported — the engine
// folds the log into a new base snapshot on restart instead, which keeps
// the chain state machine single-owner.
type Writer struct {
	w     io.Writer
	seal  sealer
	chain [sha256.Size]byte
	seq   uint64
	off   int64
	buf   []byte
}

// NewWriter writes the log header and returns a Writer whose record chain
// is seeded with seed (the base snapshot's root digest). key is the HMAC
// sealing key; it must be non-empty and is copied.
func NewWriter(w io.Writer, key []byte, seed [SeedSize]byte) (*Writer, error) {
	if len(key) == 0 {
		return nil, fmt.Errorf("wal: sealing key must be non-empty")
	}
	var hdr [HeaderSize]byte
	copy(hdr[:8], headerMagic[:])
	copy(hdr[8:], seed[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("wal: writing header: %w", err)
	}
	return &Writer{
		w:     w,
		seal:  newSealer(key),
		chain: seed,
		off:   HeaderSize,
	}, nil
}

// Append seals payload into the next record and writes it as one
// contiguous write. Payloads must be non-empty and at most MaxPayload.
func (w *Writer) Append(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wal: empty payload")
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: payload %d bytes exceeds cap %d", len(payload), MaxPayload)
	}
	need := recordOverhead + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(buf[4:12], w.seq)
	copy(buf[12:], payload)
	crcEnd := 12 + len(payload)
	binary.LittleEndian.PutUint32(buf[crcEnd:crcEnd+4], crc32.ChecksumIEEE(buf[4:crcEnd]))

	chain := nextChain(w.chain, w.seq, payload)
	w.seal.seal(buf[:crcEnd+4], chain)

	if _, err := w.w.Write(buf); err != nil {
		return fmt.Errorf("wal: appending record %d: %w", w.seq, err)
	}
	w.chain = chain
	w.seq++
	w.off += int64(need)
	return nil
}

// Records returns the number of records appended so far.
func (w *Writer) Records() uint64 { return w.seq }

// Offset returns the log length in bytes (header plus all records).
func (w *Writer) Offset() int64 { return w.off }

// nextChain folds one record into the running chain digest.
func nextChain(prev [sha256.Size]byte, seq uint64, payload []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(prev[:])
	var s [8]byte
	binary.LittleEndian.PutUint64(s[:], seq)
	h.Write(s[:])
	h.Write(payload)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// sealer computes HMAC-SHA256 with the key's inner/outer pad blocks hashed
// once up front (their compression-function states are snapshotted via the
// digest's binary marshalling). The seal input is a fixed 32-byte chain
// value, so the pad hashing is half the per-record MAC cost — precomputing
// it roughly doubles append/replay seal throughput. Output is bit-identical
// to crypto/hmac.
type sealer struct {
	ipad, opad []byte // marshalled sha256 states primed with the key pads
}

func newSealer(key []byte) sealer {
	if len(key) > sha256.BlockSize {
		sum := sha256.Sum256(key)
		key = sum[:]
	}
	var ipad, opad [sha256.BlockSize]byte
	copy(ipad[:], key)
	copy(opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		opad[i] ^= 0x5c
	}
	prime := func(pad []byte) []byte {
		h := sha256.New()
		h.Write(pad)
		state, err := h.(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			panic("wal: sha256 state not marshallable: " + err.Error())
		}
		return state
	}
	return sealer{ipad: prime(ipad[:]), opad: prime(opad[:])}
}

// seal appends HMAC(key, chain) to dst and returns the extended slice.
func (s sealer) seal(dst []byte, chain [sha256.Size]byte) []byte {
	h := sha256.New()
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(s.ipad); err != nil {
		panic("wal: sha256 state not unmarshallable: " + err.Error())
	}
	h.Write(chain[:])
	var inner [sha256.Size]byte
	h.Sum(inner[:0])
	if err := h.(encoding.BinaryUnmarshaler).UnmarshalBinary(s.opad); err != nil {
		panic("wal: sha256 state not unmarshallable: " + err.Error())
	}
	h.Write(inner[:])
	return h.Sum(dst)
}

// Replay reads a log from r, verifying the header seed and every record's
// framing and chained seal, and delivers each verified payload to fn in
// order. It stops at the first defect and reports how via the verdict:
// short reads and CRC failures cut the tail (VerdictTruncated), seal or
// seed failures poison it (VerdictCorrupt). A payload is only ever
// delivered after its seal verifies, so fn never sees unauthenticated
// bytes.
//
// The returned error is non-nil only for callback failures and for I/O
// errors other than EOF; log damage is a verdict, not an error, so callers
// can distinguish "storage said no" from "storage lied".
func Replay(r io.Reader, key []byte, seed [SeedSize]byte, fn func(seq uint64, payload []byte) error) (ReplayResult, error) {
	res := ReplayResult{FailedAt: -1}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			res.Verdict, res.FailedAt, res.Reason = VerdictTruncated, 0, "log header truncated"
			return res, nil
		}
		return res, fmt.Errorf("wal: reading header: %w", err)
	}
	if [8]byte(hdr[:8]) != headerMagic {
		res.Verdict, res.FailedAt, res.Reason = VerdictCorrupt, 0, "not a delta log (bad magic)"
		return res, nil
	}
	if [SeedSize]byte(hdr[8:]) != seed {
		res.Verdict, res.FailedAt, res.Reason = VerdictCorrupt, 0,
			"log seed does not match the base snapshot (wrong or rolled-back base)"
		return res, nil
	}

	chain := seed
	sl := newSealer(key)
	var frame [12]byte
	var tail [4 + macSize]byte
	var want [macSize]byte
	var payload []byte
	for i := 0; ; i++ {
		if _, err := io.ReadFull(r, frame[:]); err != nil {
			if err == io.EOF {
				res.Verdict = VerdictClean
				return res, nil
			}
			if err == io.ErrUnexpectedEOF {
				res.Verdict, res.FailedAt, res.Reason = VerdictTruncated, i, "record frame truncated"
				return res, nil
			}
			return res, fmt.Errorf("wal: reading record %d: %w", i, err)
		}
		plen := binary.LittleEndian.Uint32(frame[0:4])
		seq := binary.LittleEndian.Uint64(frame[4:12])
		if plen == 0 || plen > MaxPayload {
			res.Verdict, res.FailedAt = VerdictTruncated, i
			res.Reason = fmt.Sprintf("record %d length %d implausible", i, plen)
			return res, nil
		}
		if uint64(cap(payload)) < uint64(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Verdict, res.FailedAt, res.Reason = VerdictTruncated, i, "record payload truncated"
				return res, nil
			}
			return res, fmt.Errorf("wal: reading record %d: %w", i, err)
		}
		if _, err := io.ReadFull(r, tail[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				res.Verdict, res.FailedAt, res.Reason = VerdictTruncated, i, "record seal truncated"
				return res, nil
			}
			return res, fmt.Errorf("wal: reading record %d: %w", i, err)
		}
		// CRC localizes accidental damage (torn write, bit rot) cheaply;
		// the seal below is the security check.
		crc := crc32.NewIEEE()
		crc.Write(frame[4:12])
		crc.Write(payload)
		if crc.Sum32() != binary.LittleEndian.Uint32(tail[0:4]) {
			res.Verdict, res.FailedAt = VerdictTruncated, i
			res.Reason = fmt.Sprintf("record %d CRC mismatch (torn write or bit rot)", i)
			return res, nil
		}
		if seq != uint64(i) {
			res.Verdict, res.FailedAt = VerdictCorrupt, i
			res.Reason = fmt.Sprintf("record %d carries sequence %d (reordered or spliced)", i, seq)
			return res, nil
		}
		next := nextChain(chain, seq, payload)
		sl.seal(want[:0], next)
		if !hmac.Equal(want[:], tail[4:]) {
			res.Verdict, res.FailedAt = VerdictCorrupt, i
			res.Reason = fmt.Sprintf("record %d seal mismatch (forged, spliced, or wrong key)", i)
			return res, nil
		}
		if err := fn(seq, payload); err != nil {
			res.FailedAt = i
			return res, fmt.Errorf("wal: applying record %d: %w", i, err)
		}
		chain = next
		res.Records++
	}
}
