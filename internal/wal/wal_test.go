package wal

import (
	"bytes"
	"crypto/hmac"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
)

func testSeed() [SeedSize]byte { return sha256.Sum256([]byte("base snapshot")) }

func testKey() []byte { return bytes.Repeat([]byte{0x5a}, 32) }

// buildLog appends the given payloads and returns the raw log plus the
// record boundary offsets (byte offset where each record ends).
func buildLog(t *testing.T, payloads [][]byte) ([]byte, []int64) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testKey(), testSeed())
	if err != nil {
		t.Fatal(err)
	}
	bounds := []int64{w.Offset()}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, w.Offset())
	}
	if got := int64(buf.Len()); got != w.Offset() {
		t.Fatalf("writer offset %d, buffer %d", w.Offset(), got)
	}
	return buf.Bytes(), bounds
}

func replayAll(t *testing.T, log []byte) (ReplayResult, [][]byte) {
	t.Helper()
	var got [][]byte
	res, err := Replay(bytes.NewReader(log), testKey(), testSeed(), func(seq uint64, payload []byte) error {
		got = append(got, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return res, got
}

func TestRoundTrip(t *testing.T) {
	payloads := [][]byte{
		[]byte("alpha"),
		bytes.Repeat([]byte{0xab}, 4096),
		[]byte{0x00},
		bytes.Repeat([]byte("delta"), 777),
	}
	log, _ := buildLog(t, payloads)
	res, got := replayAll(t, log)
	if res.Verdict != VerdictClean || res.Records != len(payloads) || res.FailedAt != -1 {
		t.Fatalf("unexpected result %+v", res)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestEmptyLogIsClean(t *testing.T) {
	log, _ := buildLog(t, nil)
	res, got := replayAll(t, log)
	if res.Verdict != VerdictClean || res.Records != 0 || len(got) != 0 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestTruncationAtEveryByte(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte("twotwo"), bytes.Repeat([]byte{7}, 100)}
	log, bounds := buildLog(t, payloads)
	boundary := make(map[int64]int) // offset -> records wholly before it
	for i, b := range bounds {
		boundary[b] = i
	}
	for cut := 0; cut <= len(log); cut++ {
		res, got := replayAll(t, log[:cut])
		if n, ok := boundary[int64(cut)]; ok {
			if res.Verdict != VerdictClean || res.Records != n {
				t.Fatalf("cut %d (boundary): want clean/%d, got %+v", cut, n, res)
			}
			continue
		}
		// Mid-record (or mid-header) cut: replay must deliver exactly the
		// records wholly before the cut and report truncation.
		want := 0
		for _, b := range bounds {
			if int64(cut) >= b {
				want = boundary[b]
			}
		}
		if res.Verdict != VerdictTruncated {
			t.Fatalf("cut %d: want truncated, got %+v", cut, res)
		}
		if res.Records != want || len(got) != want {
			t.Fatalf("cut %d: want %d records, got %+v", cut, want, res)
		}
	}
}

func TestBitFlipsNeverReplaySilently(t *testing.T) {
	payloads := [][]byte{[]byte("first record"), []byte("second record"), []byte("third record")}
	log, _ := buildLog(t, payloads)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), log...)
		bit := rng.Intn(len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		var got [][]byte
		res, err := Replay(bytes.NewReader(mut), testKey(), testSeed(), func(seq uint64, payload []byte) error {
			got = append(got, append([]byte(nil), payload...))
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		if res.Verdict == VerdictClean && res.Records == len(payloads) {
			// A flip inside a length prefix can re-frame the log; the seal
			// must still catch it before all records replay as valid.
			same := true
			for i := range payloads {
				if !bytes.Equal(got[i], payloads[i]) {
					same = false
				}
			}
			if !same {
				t.Fatalf("trial %d bit %d: clean verdict with altered payloads", trial, bit)
			}
			t.Fatalf("trial %d bit %d: flip replayed clean", trial, bit)
		}
		// Delivered records must be an exact prefix of the originals.
		for i := range got {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("trial %d bit %d: delivered record %d altered", trial, bit, i)
			}
		}
	}
}

func TestWrongSeedIsCorrupt(t *testing.T) {
	log, _ := buildLog(t, [][]byte{[]byte("x")})
	other := sha256.Sum256([]byte("a different base"))
	res, err := Replay(bytes.NewReader(log), testKey(), other, func(uint64, []byte) error {
		t.Fatal("callback must not run")
		return nil
	})
	if err != nil || res.Verdict != VerdictCorrupt || res.Records != 0 {
		t.Fatalf("unexpected result %+v err %v", res, err)
	}
}

func TestWrongKeyIsCorrupt(t *testing.T) {
	log, _ := buildLog(t, [][]byte{[]byte("x"), []byte("y")})
	res, err := Replay(bytes.NewReader(log), []byte("not the key"), testSeed(), func(uint64, []byte) error {
		t.Fatal("callback must not run")
		return nil
	})
	if err != nil || res.Verdict != VerdictCorrupt || res.Records != 0 || res.FailedAt != 0 {
		t.Fatalf("unexpected result %+v err %v", res, err)
	}
}

func TestSpliceBetweenLogsIsCorrupt(t *testing.T) {
	logA, boundsA := buildLog(t, [][]byte{[]byte("a0"), []byte("a1")})
	logB, boundsB := buildLog(t, [][]byte{[]byte("b0 with other content"), []byte("b1")})
	// Graft log B's record 1 after log A's record 0: framing and sequence
	// are intact, but the chain digest diverges, so the grafted record's
	// seal must fail.
	graft := append(append([]byte(nil), logA[:boundsA[1]]...), logB[boundsB[1]:]...)
	res, err := Replay(bytes.NewReader(graft), testKey(), testSeed(), func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictCorrupt || res.Records != 1 || res.FailedAt != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestDroppedRecordIsDetected(t *testing.T) {
	log, bounds := buildLog(t, [][]byte{[]byte("r0"), []byte("r1"), []byte("r2")})
	// Remove the middle record: sequence numbers and the chain both break.
	cut := append(append([]byte(nil), log[:bounds[1]]...), log[bounds[2]:]...)
	res, err := Replay(bytes.NewReader(cut), testKey(), testSeed(), func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictCorrupt || res.Records != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestCallbackErrorPropagates(t *testing.T) {
	log, _ := buildLog(t, [][]byte{[]byte("r0"), []byte("r1")})
	wantErr := fmt.Errorf("apply failed")
	n := 0
	res, err := Replay(bytes.NewReader(log), testKey(), testSeed(), func(seq uint64, payload []byte) error {
		if seq == 1 {
			return wantErr
		}
		n++
		return nil
	})
	if err == nil || res.Records != 1 || n != 1 || res.FailedAt != 1 {
		t.Fatalf("unexpected result %+v err %v", res, err)
	}
}

func TestAppendRejectsBadPayloads(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testKey(), testSeed())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(nil); err == nil {
		t.Fatal("empty payload accepted")
	}
	if _, err := NewWriter(&buf, nil, testSeed()); err == nil {
		t.Fatal("empty key accepted")
	}
}

// TestSealerMatchesCryptoHMAC pins the precomputed-pad sealer to the
// reference crypto/hmac construction bit for bit — the on-disk seal format
// must never drift from standard HMAC-SHA256.
func TestSealerMatchesCryptoHMAC(t *testing.T) {
	for _, klen := range []int{1, 31, 32, 64, 65, 200} {
		key := bytes.Repeat([]byte{byte(klen)}, klen)
		s := newSealer(key)
		var chain [sha256.Size]byte
		for i := range chain {
			chain[i] = byte(i * 3)
		}
		got := s.seal(nil, chain)
		ref := hmac.New(sha256.New, key)
		ref.Write(chain[:])
		if want := ref.Sum(nil); !bytes.Equal(got, want) {
			t.Fatalf("key len %d: sealer diverges from crypto/hmac", klen)
		}
	}
}
