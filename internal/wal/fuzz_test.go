package wal

import (
	"bytes"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes — and mutated real logs — through
// Replay and checks the parser's safety contract: no panic, no allocation
// blow-up, and any payload delivered to the callback is byte-identical to
// one the Writer actually sealed, in order, as a prefix. The fuzz input
// doubles as a mutation script: the first bytes pick payload shapes for a
// genuine log, the rest choose a mutation (truncate, bit-flip, splice) to
// apply before replay.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("AMEMWAL1 but not really a log header, just bytes"))
	f.Add([]byte{3, 10, 200, 45, 0, 0xff, 7, 7, 7, 7, 1})
	f.Add(bytes.Repeat([]byte{0x41}, 96))

	f.Fuzz(func(t *testing.T, data []byte) {
		key := []byte("fuzz-sealing-key")
		var seed [SeedSize]byte
		for i := range seed {
			seed[i] = byte(i * 7)
		}

		// Raw mode: the input itself is the log. Must never panic and must
		// never deliver a payload (nothing was sealed under this key/seed
		// unless the fuzzer forges HMAC-SHA256).
		res, err := Replay(bytes.NewReader(data), key, seed, func(seq uint64, payload []byte) error {
			t.Fatalf("raw fuzz input replayed a sealed record (seq %d)", seq)
			return nil
		})
		if err == nil && res.Verdict == VerdictClean && len(data) > 0 && res.Records == 0 && len(data) != HeaderSize {
			// A clean verdict on raw input is only possible for the exact
			// untampered header with no records — which requires forging
			// the magic AND the seed; reaching here means the parser
			// accepted garbage as a boundary-clean log.
			t.Fatalf("raw input of %d bytes replayed clean", len(data))
		}

		// Mutation mode: build a genuine log from the input, then corrupt
		// it as the input directs.
		if len(data) < 2 {
			return
		}
		nrec := int(data[0]%4) + 1
		var payloads [][]byte
		var buf bytes.Buffer
		w, werr := NewWriter(&buf, key, seed)
		if werr != nil {
			t.Fatal(werr)
		}
		for i := 0; i < nrec; i++ {
			n := int(data[(i+1)%len(data)])%128 + 1
			p := make([]byte, n)
			for j := range p {
				p[j] = data[(i+j)%len(data)]
			}
			payloads = append(payloads, p)
			if err := w.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		log := buf.Bytes()

		mut := append([]byte(nil), log...)
		switch data[1] % 3 {
		case 0: // truncate
			cut := int(uint32(data[0]) | uint32(data[1])<<8)
			mut = mut[:cut%(len(mut)+1)]
		case 1: // flip one bit
			bit := (int(data[0]) | int(data[1])<<8) % (len(mut) * 8)
			mut[bit/8] ^= 1 << (bit % 8)
		case 2: // overwrite a run with input bytes
			if len(mut) > 0 {
				off := int(data[0]) % len(mut)
				copy(mut[off:], data)
			}
		}

		delivered := 0
		res, err = Replay(bytes.NewReader(mut), key, seed, func(seq uint64, payload []byte) error {
			if delivered >= len(payloads) || !bytes.Equal(payload, payloads[delivered]) {
				t.Fatalf("mutated log delivered a payload the writer never sealed (record %d)", delivered)
			}
			delivered++
			return nil
		})
		if err != nil {
			t.Fatalf("mutated log returned error (want verdict): %v", err)
		}
		if res.Records != delivered {
			t.Fatalf("result says %d records, callback saw %d", res.Records, delivered)
		}
		if bytes.Equal(mut, log) && (res.Verdict != VerdictClean || delivered != len(payloads)) {
			t.Fatalf("identity mutation failed to replay clean: %+v", res)
		}
	})
}
