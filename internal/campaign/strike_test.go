package campaign

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/ctr"
)

// TestStrikeNoSilentEscapes is the lock-free read path's headline claim:
// while readers are served warm plaintext with zero lock acquisitions,
// faults landing on the very lines being read are detected, corrected, or
// repaired — never masked by a stale-but-trusted cache line. Run under
// -race in CI.
func TestStrikeNoSilentEscapes(t *testing.T) {
	for _, scheme := range []ctr.Kind{ctr.Monolithic, ctr.Delta} {
		for _, placement := range []core.MACPlacement{core.MACInline, core.MACInECC} {
			scheme, placement := scheme, placement
			t.Run(scheme.String()+"/"+placement.String(), func(t *testing.T) {
				t.Parallel()
				cfg := DefaultStrike(core.Default(scheme, placement), 2000, 13)
				rep, err := RunStrike(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.Passed() {
					t.Fatalf("strike failed: %d silent escapes, final sweep %s, lock-free hits %d:\n%+v",
						rep.SilentEscapes, rep.FinalSweep, rep.LockFreeHits, rep)
				}
				if rep.FaultEvents == 0 {
					t.Fatal("strike phase injected no faults")
				}
				if rep.Outcomes[Halted.String()]+rep.Outcomes[Corrected.String()]+rep.MetadataRepairs == 0 {
					t.Fatal("no loud outcome observed by any reader and no repair ran; strikes never landed under traffic")
				}
				if rep.SlowPathReads == 0 {
					t.Fatal("no read ever took the locked slow path; faults cannot have evicted warm lines")
				}
			})
		}
	}
}

// TestStrikeValidate pins the parameter checks.
func TestStrikeValidate(t *testing.T) {
	good := DefaultStrike(core.Default(ctr.Delta, core.MACInECC), 100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*StrikeConfig){
		func(c *StrikeConfig) { c.Readers = 0 },
		func(c *StrikeConfig) { c.Strikes = 0 },
		func(c *StrikeConfig) { c.ReadsPerReader = 0 },
		func(c *StrikeConfig) { c.BurstMax = 0 },
		func(c *StrikeConfig) { c.Shards = 3 },
	}
	for i, mut := range bad {
		cfg := good
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}
