package campaign

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// Strike campaign phase: faults under lock-free readers.
//
// The concurrent phase proves the sharded engine's safety bar under locked
// traffic. The strike phase asks the sharper question the lock-free read
// path introduces: while readers are being served warm plaintext with ZERO
// lock acquisitions — straight out of the seqlock-versioned verified-block
// caches — can a fault ever be masked by a stale-but-trusted cache line?
//
// The design puts the reads and the faults on the same lines on purpose. A
// fixed hot set (two groups per shard) is written once and never legally
// changed, so every reader checks against a constant oracle with no write
// ambiguity: any successful read that is not byte-identical to the oracle
// is a silent escape, full stop. A striker goroutine then repeatedly picks
// a hot victim, lands a fault on one of the four planes (ciphertext,
// check lane, counter block, off-chip tree node), recovers the victim
// loudly through the ladder, and restores the oracle bytes — while the
// readers keep hammering the hot set through the lock-free path the whole
// time. The trust-boundary invariant under test: every tamper entry point
// publishes an eviction/epoch-flush through the same generation protocol
// the lock-free probe reads, so from the instant the fault lands, no
// reader can be served the pre-fault plaintext as a cache hit — it must
// fall to the locked slow path and take the detection machinery's verdict
// (loud error, correction, or repair), exactly like a cold read.
//
// The phase fails if any reader observes wrong bytes with a success
// verdict, and it requires the lock-free path to have actually engaged
// (LockFreeHits > 0) so a regression that silently disables the fast path
// cannot vacuously pass.

// StrikeConfig parameterizes the strike phase.
type StrikeConfig struct {
	// Engine is the design point under test (region sized by the runner).
	Engine core.Config
	// Seed makes striker and reader schedules deterministic per goroutine.
	Seed int64
	// Shards is the ShardedEngine partition count (power of two).
	Shards int
	// Readers is the number of lock-free reader goroutines.
	Readers int
	// Strikes is the number of fault events the striker lands.
	Strikes int
	// ReadsPerReader is each reader's minimum operation count; readers keep
	// reading past it until every strike has landed.
	ReadsPerReader int
	// BurstMax bounds bit flips per strike.
	BurstMax int
}

// DefaultStrike returns a strike-phase configuration: 4 shards, 3 readers,
// strikes sized to ops.
func DefaultStrike(engine core.Config, ops int, seed int64) StrikeConfig {
	strikes := ops / 20
	if strikes < 1 {
		strikes = 1
	}
	return StrikeConfig{
		Engine:         engine,
		Seed:           seed,
		Shards:         4,
		Readers:        3,
		Strikes:        strikes,
		ReadsPerReader: ops,
		BurstMax:       4,
	}
}

// Validate checks the strike-phase parameters.
func (c StrikeConfig) Validate() error {
	switch {
	case c.Readers < 1:
		return fmt.Errorf("campaign: Readers must be positive")
	case c.Strikes < 1:
		return fmt.Errorf("campaign: Strikes must be positive")
	case c.ReadsPerReader <= 0:
		return fmt.Errorf("campaign: ReadsPerReader must be positive")
	case c.BurstMax < 1:
		return fmt.Errorf("campaign: BurstMax must be >= 1")
	}
	ecfg := c.Engine
	ecfg.RegionBytes = regionBytes
	return core.ValidateShards(ecfg, c.Shards)
}

// StrikeReport is the strike phase's result.
type StrikeReport struct {
	Scheme    string `json:"scheme"`
	Placement string `json:"placement"`
	Codec     string `json:"codec"`
	Shards    int    `json:"shards"`
	Readers   int    `json:"readers"`
	Seed      int64  `json:"seed"`

	ReadOps     uint64 `json:"read_ops"`
	FaultEvents uint64 `json:"fault_events"`
	BitsFlipped uint64 `json:"bits_flipped"`

	Outcomes      map[string]uint64 `json:"outcomes"`
	SilentEscapes uint64            `json:"silent_escapes"`

	// FinalSweep classifies the post-strike oracle sweep over the hot set.
	FinalSweep string `json:"final_sweep"`

	// Lock-free path engagement during the phase (engine counters).
	LockFreeHits   uint64 `json:"lock_free_hits"`
	SeqlockRetries uint64 `json:"seqlock_retries"`
	SlowPathReads  uint64 `json:"slow_path_reads"`

	MetadataRepairs uint64 `json:"metadata_repairs"`
	RetryRecoveries uint64 `json:"retry_recoveries"`
	Quarantined     uint64 `json:"quarantined"`
}

// Passed reports the safety bar: zero silent escapes live and in the final
// sweep, with the lock-free path genuinely engaged.
func (r *StrikeReport) Passed() bool {
	return r.SilentEscapes == 0 && r.FinalSweep != Silent.String() && r.LockFreeHits > 0
}

// strikeOracle returns the fixed plaintext for a hot block.
func strikeOracle(blk uint64) [core.BlockBytes]byte {
	var b [core.BlockBytes]byte
	x := blk*0x9E3779B97F4A7C15 + 1
	for i := range b {
		x = x*6364136223846793005 + 1442695040888963407
		b[i] = byte(x >> 56)
	}
	return b
}

// RunStrike executes the strike phase and returns its report.
func RunStrike(cfg StrikeConfig) (*StrikeReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.RegionBytes = regionBytes
	ecfg.DisableEncryption = false

	s, err := core.NewShardedEngine(ecfg, cfg.Shards)
	if err != nil {
		return nil, err
	}

	// Hot set: the first two groups of every shard — all shards under
	// attack, all group-aligned so counter strikes stay inside the set.
	shardBlocks := s.ShardBytes() / core.BlockBytes
	var hot []uint64
	for sh := 0; sh < cfg.Shards; sh++ {
		base := uint64(sh) * shardBlocks
		for b := uint64(0); b < 2*ctr.GroupBlocks; b++ {
			hot = append(hot, base+b)
		}
	}
	for _, blk := range hot {
		img := strikeOracle(blk)
		if err := s.Write(blk*core.BlockBytes, img[:]); err != nil {
			return nil, fmt.Errorf("campaign: strike prefill blk %d: %w", blk, err)
		}
	}

	rep := &StrikeReport{
		Scheme:    ecfg.Scheme.String(),
		Placement: ecfg.Placement.String(),
		Codec:     ecfg.CodecName(),
		Shards:    cfg.Shards,
		Readers:   cfg.Readers,
		Seed:      cfg.Seed,
		Outcomes:  make(map[string]uint64),
	}

	var (
		wg          sync.WaitGroup
		strikesDone atomic.Bool
		outcomes    = make([][numOutcomes]uint64, cfg.Readers)
		readOps     = make([]uint64, cfg.Readers)
	)

	for g := 0; g < cfg.Readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(g+1)*0x5851F42D4C957F2D))
			dst := make([]byte, core.BlockBytes)
			for op := 0; op < cfg.ReadsPerReader || !strikesDone.Load(); op++ {
				blk := hot[rng.Intn(len(hot))]
				readOps[g]++
				info, err := s.Read(blk*core.BlockBytes, dst)
				if err != nil {
					outcomes[g][Halted]++ // loud; the striker restores
					continue
				}
				want := strikeOracle(blk)
				if *(*[core.BlockBytes]byte)(dst) != want {
					outcomes[g][Silent]++
					continue
				}
				if info.CorrectedDataBits > 0 || info.CorrectedMACBits > 0 {
					outcomes[g][Corrected]++
				} else {
					outcomes[g][Clean]++
				}
			}
		}(g)
	}

	// The striker: fault, recover loudly, restore the oracle.
	srng := rand.New(rand.NewSource(cfg.Seed ^ 0x53545249))
	dst := make([]byte, core.BlockBytes)
	var strikeErr error
	for i := 0; i < cfg.Strikes; i++ {
		blk := hot[srng.Intn(len(hot))]
		addr := blk * core.BlockBytes
		flips := 1 + srng.Intn(cfg.BurstMax)
		rep.FaultEvents++
		if strikeErr = strikePlane(s, ecfg, addr, i%4, flips, srng, &rep.BitsFlipped); strikeErr != nil {
			break
		}
		// Recover the victim through the ladder: success must return the
		// oracle bytes; failure is loud and the restore below repairs it.
		if _, err := s.ReadRecover(addr, dst); err == nil {
			want := strikeOracle(blk)
			if *(*[core.BlockBytes]byte)(dst) != want {
				rep.SilentEscapes++ // recovery returned wrong bytes
			}
		}
		want := strikeOracle(blk)
		if err := s.Write(addr, want[:]); err != nil {
			strikeErr = fmt.Errorf("campaign: strike restore blk %d: %w", blk, err)
			break
		}
	}
	strikesDone.Store(true)
	wg.Wait()
	if strikeErr != nil {
		return nil, strikeErr
	}

	for g := range outcomes {
		rep.ReadOps += readOps[g]
		for o, n := range outcomes[g] {
			if n > 0 {
				rep.Outcomes[Outcome(o).String()] += n
			}
		}
		rep.SilentEscapes += outcomes[g][Silent]
	}

	// Final sweep: after a last restore pass, every hot block must verify
	// and match the oracle.
	sweep := Clean
	for _, blk := range hot {
		if _, err := s.ReadRecover(blk*core.BlockBytes, dst); err != nil {
			sweep = maxOutcome(sweep, Halted)
			continue
		}
		want := strikeOracle(blk)
		if *(*[core.BlockBytes]byte)(dst) != want {
			sweep = Silent
		}
	}
	rep.FinalSweep = sweep.String()

	st := s.Stats()
	rep.LockFreeHits = st.LockFreeHits
	rep.SeqlockRetries = st.SeqlockRetries
	rep.SlowPathReads = st.SlowPathReads
	rep.MetadataRepairs = st.MetadataRepairs
	rep.RetryRecoveries = st.RetryRecoveries
	rep.Quarantined = st.Quarantined
	return rep, nil
}

// strikePlane lands one fault event on the chosen plane.
func strikePlane(s *core.ShardedEngine, ecfg core.Config, addr uint64, plane, flips int, rng *rand.Rand, bits *uint64) error {
	switch plane {
	case 0: // ciphertext
		for i := 0; i < flips; i++ {
			if err := s.TamperCiphertext(addr, rng.Intn(core.BlockBytes*8)); err != nil {
				return err
			}
			*bits++
		}
	case 1: // check lane
		for i := 0; i < flips; i++ {
			var err error
			if ecfg.Placement == core.MACInECC {
				err = s.TamperECCLane(addr, rng.Intn(64))
			} else {
				err = s.TamperInlineTag(addr, rng.Intn(64))
			}
			if err != nil {
				return err
			}
			*bits++
		}
	case 2: // counter block
		for i := 0; i < flips; i++ {
			if err := s.TamperCounterForAddr(addr, rng.Intn(core.BlockBytes*8)); err != nil {
				return err
			}
			*bits++
		}
	case 3: // off-chip tree node in the owning shard
		shard := s.ShardOf(addr)
		local := addr - uint64(shard)*s.ShardBytes()
		var err error
		s.WithShard(shard, func(eng *core.Engine) {
			tr := eng.Tree()
			off := tr.OffChipLevels()
			if off == 0 {
				return
			}
			leaf := eng.MetaLeaf(eng.MetadataIndex(local))
			level := rng.Intn(off)
			index := leaf
			for k := 0; k <= level; k++ {
				index /= tree.Arity
			}
			id := tree.NodeID{Level: level, Index: index}
			for i := 0; i < flips; i++ {
				if terr := eng.TamperTreeNode(id, rng.Intn(tree.NodeBytes*8)); terr != nil {
					err = terr
					return
				}
				*bits++
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// maxOutcome returns the worse of two outcomes in severity order.
func maxOutcome(a, b Outcome) Outcome {
	if b > a {
		return b
	}
	return a
}
