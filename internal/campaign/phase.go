package campaign

import (
	"bytes"
	"fmt"
	"math/rand"

	"authmem/internal/core"
	"authmem/internal/tree"
	"authmem/internal/workload"
)

// flipRec is one applied data-plane bit flip, remembered so the retry hook
// can model a transient fault clearing on re-read by un-flipping it.
// Counter and tree faults are not tracked: they are repaired wholesale from
// trusted on-chip state, so their bit positions never need reverting.
type flipRec struct {
	plane     Plane // PlaneCiphertext or PlaneECC
	bit       int
	transient bool
}

// phaseRun executes one plane's campaign phase. Each phase gets a fresh
// engine and a fresh oracle so every outcome is attributable to exactly one
// plane.
type phaseRun struct {
	cfg   Config
	ecfg  core.Config
	plane Plane
	rng   *rand.Rand

	eng          *core.Engine
	oracle       map[uint64][core.BlockBytes]byte
	written      []uint64 // distinct written blocks, insertion order
	writtenSet   map[uint64]struct{}
	gen          *workload.WritebackGen
	regionBlocks uint64

	// ledger holds outstanding data-plane flips per block.
	ledger map[uint64][]flipRec

	ops          uint64
	faultEvents  uint64
	bitsFlipped  uint64
	outcomes     [numOutcomes]uint64
	resumeTrials uint64

	// accStats folds in stats from engines retired by persist cycles, so
	// recovery counters survive the engine swap on resume.
	accStats core.EngineStats
}

// stats returns engine counters accumulated across every engine this phase
// has driven (the persist plane retires engines at each clean resume).
func (p *phaseRun) stats() core.EngineStats {
	a := p.accStats
	a.Add(p.eng.Stats())
	return a
}

func runPhase(cfg Config, ecfg core.Config, plane Plane) (*phaseRun, error) {
	p := &phaseRun{
		cfg:          cfg,
		ecfg:         ecfg,
		plane:        plane,
		rng:          rand.New(rand.NewSource(cfg.Seed ^ int64(plane+1)*0x5851F42D4C957F2D)),
		oracle:       make(map[uint64][core.BlockBytes]byte),
		writtenSet:   make(map[uint64]struct{}),
		ledger:       make(map[uint64][]flipRec),
		regionBlocks: ecfg.DataBlocks(),
	}
	app, _ := workload.ByName(cfg.App)
	p.gen = app.WritebackGen(cfg.Seed ^ int64(plane)<<16)

	eng, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	p.attach(eng)

	for op := 0; op < cfg.OpsPerPlane; op++ {
		if p.plane != PlanePersist && p.rng.Float64() < cfg.FaultRate {
			p.injectFault()
		}
		if len(p.written) == 0 || p.rng.Float64() < 0.5 {
			if err := p.doWrite(); err != nil {
				return nil, err
			}
		} else {
			p.doRead(p.written[p.rng.Intn(len(p.written))])
		}
		if cfg.ScrubEvery > 0 && p.ecfg.Placement == core.MACInECC && (op+1)%cfg.ScrubEvery == 0 {
			if _, err := p.eng.Scrub(); err != nil {
				return nil, err
			}
			p.pinLedger()
		}
		if p.plane == PlanePersist && (op+1)%cfg.PersistEvery == 0 {
			if err := p.persistCycle(); err != nil {
				return nil, err
			}
		}
	}

	// Drain: read back every block ever written. Outstanding faults that
	// no mid-run read happened to touch are flushed out here, so nothing
	// corrupt can hide in unread memory at campaign end.
	for _, blk := range p.written {
		p.doRead(blk)
	}
	return p, nil
}

// attach wires the phase's fault model into an engine (fresh or resumed),
// banking the retiring engine's counters first. Every campaign engine runs
// the deferred-Merkle write pipeline: the campaign's job includes proving
// that faults landing in the write-to-flush window are detected, never
// laundered into the tree.
func (p *phaseRun) attach(eng *core.Engine) {
	if p.eng != nil {
		p.accStats = p.stats()
	}
	if err := eng.EnableWritePipeline(0); err != nil {
		panic(fmt.Sprintf("campaign: enable write pipeline: %v", err))
	}
	p.eng = eng
	eng.SetRetryHook(p.onRetry)
}

// onRetry models the memory controller re-reading DRAM: transient flips on
// the failing block clear, persistent ones remain.
func (p *phaseRun) onRetry(blk uint64) {
	recs := p.ledger[blk]
	kept := recs[:0]
	for _, f := range recs {
		if !f.transient {
			kept = append(kept, f)
			continue
		}
		p.applyFlip(blk, f.plane, f.bit)
	}
	if len(kept) == 0 {
		delete(p.ledger, blk)
	} else {
		p.ledger[blk] = kept
	}
}

// pinLedger marks all outstanding flips persistent. Called after a scrub
// pass: the scrub may already have repaired some of them in place, and
// un-flipping a repaired bit would corrupt good data.
func (p *phaseRun) pinLedger() {
	for blk, recs := range p.ledger {
		for i := range recs {
			recs[i].transient = false
		}
		p.ledger[blk] = recs
	}
}

// applyFlip XORs one bit of a data-plane structure (used for both injection
// and transient revert — the operation is its own inverse).
func (p *phaseRun) applyFlip(blk uint64, plane Plane, bit int) {
	addr := blk * core.BlockBytes
	var err error
	switch plane {
	case PlaneCiphertext:
		err = p.eng.TamperCiphertext(addr, bit)
	case PlaneECC:
		switch {
		case p.ecfg.Placement == core.MACInECC:
			err = p.eng.TamperECCLane(addr, bit)
		case bit < 64:
			err = p.eng.TamperInlineTag(addr, bit)
		default:
			// Inline placement: bits past the tag land in the codec's
			// dedicated check storage (see injectFault's bit space).
			err = p.eng.TamperCheckBit(addr, bit-64)
		}
	}
	if err != nil {
		// Targets are always resident written blocks; failure is a
		// campaign bug, not a fault outcome.
		panic(fmt.Sprintf("campaign: flip %s blk %d bit %d: %v", plane, blk, bit, err))
	}
}

// injectFault applies one fault event to this phase's plane.
func (p *phaseRun) injectFault() {
	if len(p.written) == 0 {
		return
	}
	plane := p.plane
	if plane == PlaneMixed {
		plane = Plane(p.rng.Intn(int(PlaneTree) + 1))
	}
	blk := p.written[p.rng.Intn(len(p.written))]
	flips := 1 + p.rng.Intn(p.cfg.BurstMax)
	p.faultEvents++

	switch plane {
	case PlaneCiphertext, PlaneECC:
		bits := core.BlockBytes * 8 // ciphertext bits
		if plane == PlaneECC {
			// ECC lane (MACInECC) or inline tag width; under the inline
			// placement the codec's dedicated check bytes are attackable
			// storage too, addressed as bits 64.. (see applyFlip).
			bits = 64 + p.eng.InlineCheckBits()
		}
		transient := p.rng.Float64() < p.cfg.TransientFrac
		for i := 0; i < flips; i++ {
			bit := p.rng.Intn(bits)
			p.applyFlip(blk, plane, bit)
			p.ledger[blk] = append(p.ledger[blk], flipRec{plane: plane, bit: bit, transient: transient})
			p.bitsFlipped++
		}
	case PlaneCounter:
		midx := p.eng.MetadataIndex(blk * core.BlockBytes)
		for i := 0; i < flips; i++ {
			if err := p.eng.TamperCounterBlock(midx, p.rng.Intn(core.BlockBytes*8)); err != nil {
				panic(fmt.Sprintf("campaign: counter flip midx %d: %v", midx, err))
			}
			p.bitsFlipped++
		}
	case PlaneTree:
		tr := p.eng.Tree()
		off := tr.OffChipLevels()
		if off == 0 {
			return // tree fits on chip: no attacker-reachable nodes
		}
		leaf := p.eng.MetaLeaf(p.eng.MetadataIndex(blk * core.BlockBytes))
		level := p.rng.Intn(off)
		index := leaf
		for k := 0; k <= level; k++ {
			index /= tree.Arity
		}
		id := tree.NodeID{Level: level, Index: index}
		for i := 0; i < flips; i++ {
			if err := p.eng.TamperTreeNode(id, p.rng.Intn(tree.NodeBytes*8)); err != nil {
				panic(fmt.Sprintf("campaign: tree flip %+v: %v", id, err))
			}
			p.bitsFlipped++
		}
	}
}

// doWrite issues the next workload write to both the engine and the oracle.
func (p *phaseRun) doWrite() error {
	blk := p.gen.Next() % p.regionBlocks
	var data [core.BlockBytes]byte
	p.rng.Read(data[:])

	p.ops++
	if err := p.eng.Write(blk*core.BlockBytes, data[:]); err != nil {
		return err
	}
	p.oracle[blk] = data
	// The write overwrote ciphertext and check bits; outstanding flips on
	// this block no longer exist.
	delete(p.ledger, blk)
	if _, ok := p.writtenSet[blk]; !ok {
		p.writtenSet[blk] = struct{}{}
		p.written = append(p.written, blk)
	}
	// Dirty-leaf strike (mixed plane): the write just staged this block's
	// counter image, and with the pipeline on its tree leaf is dirty until
	// the next flush. Hit the staged image *inside* that window — the one
	// state the integrity tree does not yet cover — so the campaign proves
	// deferred maintenance detects write-to-flush faults instead of
	// laundering them on flush.
	if p.plane == PlaneMixed && p.eng.DirtyLeaves() > 0 && p.rng.Float64() < p.cfg.FaultRate {
		midx := p.eng.MetadataIndex(blk * core.BlockBytes)
		if err := p.eng.TamperCounterBlock(midx, p.rng.Intn(core.BlockBytes*8)); err != nil {
			panic(fmt.Sprintf("campaign: dirty-leaf strike midx %d: %v", midx, err))
		}
		p.faultEvents++
		p.bitsFlipped++
	}
	return nil
}

// doRead reads blk through the recovery path, classifies the outcome
// against the oracle, and — after a loud failure — rewrites the block from
// the oracle, as software would after a machine-check on a poisoned line.
func (p *phaseRun) doRead(blk uint64) {
	var dst [core.BlockBytes]byte
	p.ops++
	ri, err := p.eng.ReadRecover(blk*core.BlockBytes, dst[:])
	want := p.oracle[blk]

	if err != nil {
		p.outcomes[Halted]++
		// Resync engine and oracle so later operations (and the drain
		// pass) check this block's fresh contents, not lost ones.
		if werr := p.eng.Write(blk*core.BlockBytes, want[:]); werr != nil {
			panic(fmt.Sprintf("campaign: resync write blk %d: %v", blk, werr))
		}
		delete(p.ledger, blk)
		return
	}
	// Successful reads may have silently consumed (corrected) or simply
	// missed outstanding flips; either way the ledger must not revert
	// them later against a now-healthy block.
	delete(p.ledger, blk)

	if dst != want {
		p.outcomes[Silent]++ // the one unacceptable outcome
		return
	}
	switch {
	case ri.MetadataRepaired || ri.RetryRecovered:
		p.outcomes[Recovered]++
	case ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0:
		p.outcomes[Corrected]++
	default:
		p.outcomes[Clean]++
	}
}

// persistCycle drives the persist plane: snapshot the engine, attack
// corrupted copies of the image through Resume, and continue the run from a
// clean resume — proving the campaign's state survives the round trip.
func (p *phaseRun) persistCycle() error {
	var buf bytes.Buffer
	root, err := p.eng.Persist(&buf)
	if err != nil {
		return err
	}
	img := buf.Bytes()

	for t := 0; t < p.cfg.ResumeTrials; t++ {
		p.resumeTrials++
		p.faultEvents++
		corrupt := make([]byte, len(img))
		copy(corrupt, img)
		if p.rng.Float64() < 0.25 {
			// Truncation: a torn write to the persistent medium.
			corrupt = corrupt[:p.rng.Intn(len(corrupt))]
		} else {
			flips := 1 + p.rng.Intn(p.cfg.BurstMax)
			for i := 0; i < flips; i++ {
				bit := p.rng.Intn(len(corrupt) * 8)
				corrupt[bit/8] ^= 1 << uint(bit%8)
				p.bitsFlipped++
			}
		}
		e2, err := core.Resume(p.ecfg, bytes.NewReader(corrupt), &root)
		if err != nil {
			p.outcomes[Halted]++ // corruption caught at resume time
			continue
		}
		// Resume accepted the image: corruption must have landed in the
		// data section, whose verification is deferred to read time.
		// Sweep every oracle block and classify the trial by its worst
		// per-block outcome.
		p.outcomes[p.sweepResumed(e2)]++
	}

	// Clean resume with the pinned root must always work; the run
	// continues on the resumed engine so later faults hit restored state.
	e2, err := core.Resume(p.ecfg, bytes.NewReader(img), &root)
	if err != nil {
		return fmt.Errorf("clean resume failed: %w", err)
	}
	p.attach(e2)
	return nil
}

// sweepResumed reads every oracle block from a resumed engine and returns
// the worst outcome observed: Silent > Halted > Corrected/Recovered > Clean.
func (p *phaseRun) sweepResumed(e2 *core.Engine) Outcome {
	worst := Clean
	var dst [core.BlockBytes]byte
	for _, blk := range p.written {
		ri, err := e2.ReadRecover(blk*core.BlockBytes, dst[:])
		want := p.oracle[blk]
		switch {
		case err != nil:
			if worst < Halted {
				worst = Halted
			}
		case dst != want:
			return Silent
		case ri.MetadataRepaired || ri.RetryRecovered:
			if worst < Recovered {
				worst = Recovered
			}
		case ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0:
			if worst < Corrected {
				worst = Corrected
			}
		}
	}
	return worst
}

// report flattens the phase counters into the serializable form.
func (p *phaseRun) report() PlaneReport {
	pr := PlaneReport{
		Plane:        p.plane.String(),
		Ops:          p.ops,
		FaultEvents:  p.faultEvents,
		BitsFlipped:  p.bitsFlipped,
		Outcomes:     make(map[string]uint64),
		Quarantines:  p.stats().Quarantined,
		ResumeTrials: p.resumeTrials,
	}
	for _, o := range Outcomes() {
		if n := p.outcomes[o]; n > 0 {
			pr.Outcomes[o.String()] = n
		}
	}
	return pr
}
