// Package campaign runs whole-engine fault-injection campaigns: randomized
// workloads execute against a full core.Engine while faults are injected
// into every attacker-reachable storage plane, and every read is checked
// against a differential shadow oracle — a plain map of plaintext memory
// that receives the same write stream through a path with no cryptography
// to get wrong.
//
// Where internal/fault (Figure 3) injects faults into a single isolated
// block and asks "does the code correct this pattern?", a campaign asks the
// end-to-end question: across thousands of operations, with faults landing
// in ciphertext, ECC/MAC storage, counter blocks, tree nodes, and persisted
// images, does the engine ever *return wrong data as if it were right*?
// Silent corruption — engine output disagreeing with the oracle on a read
// that reported success — is the one outcome no run may contain.
//
// Outcome taxonomy (per read, and per resume trial):
//
//	Clean      — read succeeded, matched the oracle, no repair involved.
//	Corrected  — read succeeded via in-line correction (MAC flip-and-check
//	             or SEC-DED) and matched the oracle.
//	Recovered  — read succeeded via the engine's recovery path (metadata
//	             repair from trusted state, or a retry re-read clearing a
//	             transient fault) and matched the oracle.
//	Halted     — read (or resume) failed loudly: data is lost but the
//	             engine said so. The workload rewrites the block from the
//	             oracle and continues, as real software would after a
//	             machine check.
//	Silent     — read reported success but returned bytes that differ from
//	             the oracle. Automatic campaign failure.
package campaign

import (
	"fmt"

	"authmem/internal/core"
	"authmem/internal/workload"
)

// Plane names an attacker-reachable storage plane.
type Plane int

const (
	// PlaneCiphertext targets stored ciphertext bits.
	PlaneCiphertext Plane = iota
	// PlaneECC targets MAC/check storage: the ECC lane under MACInECC,
	// the inline tag under MACInline.
	PlaneECC
	// PlaneCounter targets counter-block images in DRAM.
	PlaneCounter
	// PlaneTree targets off-chip integrity-tree nodes.
	PlaneTree
	// PlanePersist targets persisted engine images reloaded mid-run.
	PlanePersist
	// PlaneMixed draws each fault's plane at random from the first four.
	PlaneMixed
	numPlanes
)

// Planes lists every campaign plane in report order.
func Planes() []Plane {
	return []Plane{PlaneCiphertext, PlaneECC, PlaneCounter, PlaneTree, PlanePersist, PlaneMixed}
}

// String names the plane.
func (p Plane) String() string {
	switch p {
	case PlaneCiphertext:
		return "ciphertext"
	case PlaneECC:
		return "ecc"
	case PlaneCounter:
		return "counter"
	case PlaneTree:
		return "tree"
	case PlanePersist:
		return "persist"
	case PlaneMixed:
		return "mixed"
	default:
		return fmt.Sprintf("Plane(%d)", int(p))
	}
}

// Outcome classifies one observed read or resume trial.
type Outcome int

const (
	// Clean: success, oracle match, no repair.
	Clean Outcome = iota
	// Corrected: success via in-line correction.
	Corrected
	// Recovered: success via the recovery path (repair or retry).
	Recovered
	// Halted: loud failure; data lost but reported.
	Halted
	// Silent: success reported with wrong data. Campaign failure.
	Silent
	numOutcomes
)

// Outcomes lists the classes in report order.
func Outcomes() []Outcome { return []Outcome{Clean, Corrected, Recovered, Halted, Silent} }

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Clean:
		return "clean"
	case Corrected:
		return "corrected"
	case Recovered:
		return "recovered"
	case Halted:
		return "halted"
	case Silent:
		return "silent"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Config parameterizes one campaign.
type Config struct {
	// Engine is the design point under test.
	Engine core.Config
	// Seed makes the whole campaign deterministic: same seed, same
	// config, same report.
	Seed int64
	// OpsPerPlane is the number of memory operations each plane phase
	// executes.
	OpsPerPlane int
	// FaultRate is the per-operation probability of injecting one fault
	// event before the operation.
	FaultRate float64
	// BurstMax bounds the flips per fault event (uniform 1..BurstMax), so
	// a campaign mixes within-budget and beyond-budget faults.
	BurstMax int
	// TransientFrac is the fraction of ciphertext/ECC fault events that
	// clear on a controller re-read (the retry path's prey). Counter and
	// tree faults are always persistent: they are repaired from trusted
	// state, so transience is irrelevant to them.
	TransientFrac float64
	// App names the workload generator (see internal/workload); its
	// writeback stream, folded into the region, drives write traffic.
	App string
	// ScrubEvery inserts a patrol-scrub pass every N operations under
	// MACInECC (0 disables).
	ScrubEvery int
	// PersistEvery is the persist-plane cycle length: every N operations
	// the engine is persisted, corrupt-image resume trials run, and the
	// run continues from a clean resume.
	PersistEvery int
	// ResumeTrials is the number of corrupt-image resume attempts per
	// persist cycle.
	ResumeTrials int
}

// Default returns a campaign configuration sized so that all six phases
// together execute ops memory operations.
func Default(engine core.Config, ops int, seed int64) Config {
	per := ops / len(Planes())
	if per < 1 {
		per = 1
	}
	return Config{
		Engine:        engine,
		Seed:          seed,
		OpsPerPlane:   per,
		FaultRate:     0.15,
		BurstMax:      4,
		TransientFrac: 0.3,
		App:           "facesim",
		ScrubEvery:    500,
		PersistEvery:  per/3 + 1,
		ResumeTrials:  3,
	}
}

// Validate checks campaign parameters.
func (c Config) Validate() error {
	switch {
	case c.OpsPerPlane <= 0:
		return fmt.Errorf("campaign: OpsPerPlane must be positive")
	case c.FaultRate < 0 || c.FaultRate > 1:
		return fmt.Errorf("campaign: FaultRate %v out of [0,1]", c.FaultRate)
	case c.BurstMax < 1:
		return fmt.Errorf("campaign: BurstMax must be >= 1")
	case c.TransientFrac < 0 || c.TransientFrac > 1:
		return fmt.Errorf("campaign: TransientFrac %v out of [0,1]", c.TransientFrac)
	case c.PersistEvery < 1 || c.ResumeTrials < 0:
		return fmt.Errorf("campaign: persist cycle parameters invalid")
	}
	if _, ok := workload.ByName(c.App); !ok {
		return fmt.Errorf("campaign: unknown workload app %q", c.App)
	}
	return c.Engine.Validate()
}

// PlaneReport is one plane phase's outcome matrix.
type PlaneReport struct {
	Plane       string            `json:"plane"`
	Ops         uint64            `json:"ops"`
	FaultEvents uint64            `json:"fault_events"`
	BitsFlipped uint64            `json:"bits_flipped"`
	Outcomes    map[string]uint64 `json:"outcomes"`
	Quarantines uint64            `json:"quarantines"`
	// ResumeTrials counts corrupt-image resume attempts (persist plane).
	ResumeTrials uint64 `json:"resume_trials,omitempty"`
}

// Report is the campaign result, serialized to JSON by cmd/faultinject.
type Report struct {
	Scheme        string  `json:"scheme"`
	Placement     string  `json:"placement"`
	Codec         string  `json:"codec"`
	CorrectBits   int     `json:"correct_bits"`
	Seed          int64   `json:"seed"`
	App           string  `json:"app"`
	FaultRate     float64 `json:"fault_rate"`
	BurstMax      int     `json:"burst_max"`
	TransientFrac float64 `json:"transient_frac"`

	Ops         uint64 `json:"ops"`
	FaultEvents uint64 `json:"fault_events"`
	BitsFlipped uint64 `json:"bits_flipped"`

	Planes []PlaneReport `json:"planes"`

	// Totals over all planes, keyed by outcome class.
	Totals map[string]uint64 `json:"totals"`
	// SilentEscapes must be zero for the campaign to pass.
	SilentEscapes uint64 `json:"silent_escapes"`

	// PersistCrash is the durability-plane strike phase (base + delta-WAL
	// damage under crash-recovery); nil when the phase did not run. Its
	// silent escapes fail the campaign exactly like live-plane ones.
	PersistCrash *PersistCrashReport `json:"persist_crash,omitempty"`

	// Cluster is the distributed phase (node corruption, rollback, kill,
	// partition, rebalance against the quorum cluster client); nil when
	// the phase did not run. Its silent escapes fail the campaign too.
	Cluster *ClusterReport `json:"cluster,omitempty"`

	// Engine-side recovery counters accumulated across phases.
	RetriedReads    uint64 `json:"retried_reads"`
	RetryRecoveries uint64 `json:"retry_recoveries"`
	MetadataRepairs uint64 `json:"metadata_repairs"`
	Quarantined     uint64 `json:"quarantined"`
	GroupReencrypts uint64 `json:"group_reencrypts"`
	ScrubPasses     uint64 `json:"scrub_passes"`
}

// Passed reports whether the campaign met its safety bar: zero silent
// escapes in the live planes and, when the persist-crash or cluster phases
// ran, zero in those too.
func (r *Report) Passed() bool {
	return r.SilentEscapes == 0 &&
		(r.PersistCrash == nil || r.PersistCrash.Passed()) &&
		(r.Cluster == nil || r.Cluster.Passed())
}

// regionBytes sizes the test region: big enough for several hundred block
// groups (so delta escalation and tree depth are exercised) while keeping a
// 10k-op campaign fast.
const regionBytes = 4 << 20

// Run executes the campaign and returns its report. The only error source
// is configuration; fault outcomes — including silent escapes — are
// reported, not returned, so callers can always persist the report.
func Run(cfg Config) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.RegionBytes = regionBytes
	ecfg.DisableEncryption = false

	rep := &Report{
		Scheme:        ecfg.Scheme.String(),
		Placement:     ecfg.Placement.String(),
		Codec:         ecfg.CodecName(),
		CorrectBits:   ecfg.CorrectBits,
		Seed:          cfg.Seed,
		App:           cfg.App,
		FaultRate:     cfg.FaultRate,
		BurstMax:      cfg.BurstMax,
		TransientFrac: cfg.TransientFrac,
		Totals:        make(map[string]uint64),
	}
	for _, plane := range Planes() {
		pr, err := runPhase(cfg, ecfg, plane)
		if err != nil {
			return nil, fmt.Errorf("campaign: %s phase: %w", plane, err)
		}
		rep.Planes = append(rep.Planes, pr.report())
		rep.Ops += pr.ops
		rep.FaultEvents += pr.faultEvents
		rep.BitsFlipped += pr.bitsFlipped
		for o, n := range pr.outcomes {
			rep.Totals[Outcome(o).String()] += n
		}
		rep.SilentEscapes += pr.outcomes[Silent]
		st := pr.stats()
		rep.RetriedReads += st.RetriedReads
		rep.RetryRecoveries += st.RetryRecoveries
		rep.MetadataRepairs += st.MetadataRepairs
		rep.Quarantined += st.Quarantined
		rep.GroupReencrypts += st.GroupReencrypts
		rep.ScrubPasses += st.ScrubPasses
	}
	return rep, nil
}
