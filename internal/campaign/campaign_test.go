package campaign

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/ctr"
)

func run(t *testing.T, scheme ctr.Kind, placement core.MACPlacement, ops int, seed int64) *Report {
	t.Helper()
	cfg := Default(core.Default(scheme, placement), ops, seed)
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestNoSilentCorruption is the campaign's headline claim across design
// points: whatever faults land in whatever plane, the engine never returns
// wrong data as if it were right.
func TestNoSilentCorruption(t *testing.T) {
	for _, scheme := range []ctr.Kind{ctr.Monolithic, ctr.Split, ctr.Delta, ctr.DualLength} {
		for _, placement := range []core.MACPlacement{MACPlacements()[0], MACPlacements()[1]} {
			scheme, placement := scheme, placement
			t.Run(scheme.String()+"/"+placement.String(), func(t *testing.T) {
				t.Parallel()
				rep := run(t, scheme, placement, 1800, 7)
				if !rep.Passed() {
					t.Fatalf("%d silent escapes:\n%+v", rep.SilentEscapes, rep)
				}
				if rep.FaultEvents == 0 {
					t.Fatal("campaign injected no faults")
				}
			})
		}
	}
}

// MACPlacements lists both placements (helper keeps the test table tidy).
func MACPlacements() []core.MACPlacement {
	return []core.MACPlacement{core.MACInline, core.MACInECC}
}

// TestDeterministicReplay: the same seed and config must reproduce the
// exact outcome matrix — the property that makes failure seeds actionable.
func TestDeterministicReplay(t *testing.T) {
	a := run(t, ctr.Delta, core.MACInECC, 900, 42)
	b := run(t, ctr.Delta, core.MACInECC, 900, 42)
	if a.FaultEvents != b.FaultEvents || a.BitsFlipped != b.BitsFlipped || a.Ops != b.Ops {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Planes {
		pa, pb := a.Planes[i], b.Planes[i]
		if pa.FaultEvents != pb.FaultEvents || pa.BitsFlipped != pb.BitsFlipped {
			t.Fatalf("plane %s diverged: %+v vs %+v", pa.Plane, pa, pb)
		}
		for k, v := range pa.Outcomes {
			if pb.Outcomes[k] != v {
				t.Fatalf("plane %s outcome %s: %d vs %d", pa.Plane, k, v, pb.Outcomes[k])
			}
		}
	}
}

// TestFaultsActuallyBite: with a healthy fault rate the campaign must
// exercise the interesting machinery, not just clean reads — otherwise the
// zero-silent-escape claim is vacuous.
func TestFaultsActuallyBite(t *testing.T) {
	rep := run(t, ctr.Delta, core.MACInECC, 2400, 3)
	tot := rep.Totals
	if tot["halted"] == 0 {
		t.Error("no faults ever halted a read (injection too weak)")
	}
	if tot["corrected"]+tot["recovered"] == 0 {
		t.Error("no faults were ever corrected or recovered")
	}
	if rep.MetadataRepairs == 0 {
		t.Error("counter/tree phases never triggered metadata repair")
	}
	if rep.Quarantined == 0 {
		t.Error("no block was ever quarantined")
	}
	var persist *PlaneReport
	for i := range rep.Planes {
		if rep.Planes[i].Plane == "persist" {
			persist = &rep.Planes[i]
		}
	}
	if persist == nil || persist.ResumeTrials == 0 {
		t.Error("persist plane ran no resume trials")
	} else if persist.Outcomes["halted"] == 0 {
		t.Error("no corrupt image was ever rejected at resume")
	}
}

// TestValidate rejects malformed campaign configs.
func TestValidate(t *testing.T) {
	good := Default(core.Default(ctr.Delta, core.MACInECC), 600, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.OpsPerPlane = 0 },
		func(c *Config) { c.FaultRate = 1.5 },
		func(c *Config) { c.BurstMax = 0 },
		func(c *Config) { c.TransientFrac = -0.1 },
		func(c *Config) { c.PersistEvery = 0 },
		func(c *Config) { c.App = "no-such-app" },
		func(c *Config) { c.Engine.CorrectBits = 9 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
