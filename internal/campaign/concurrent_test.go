package campaign

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/ctr"
)

func runConcurrent(t *testing.T, scheme ctr.Kind, placement core.MACPlacement, ops int, seed int64) *ConcurrentReport {
	t.Helper()
	cfg := DefaultConcurrent(core.Default(scheme, placement), ops, seed)
	rep, err := RunConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestConcurrentNoSilentEscapes is the sharded engine's headline claim:
// under parallel faulted traffic — workers straddling shard boundaries,
// faults landing in all four planes under the shard locks — no read ever
// returns wrong data as if it were right, and the faulted state survives a
// sharded persist/resume round trip.
func TestConcurrentNoSilentEscapes(t *testing.T) {
	for _, scheme := range []ctr.Kind{ctr.Monolithic, ctr.Delta} {
		for _, placement := range []core.MACPlacement{core.MACInline, core.MACInECC} {
			scheme, placement := scheme, placement
			t.Run(scheme.String()+"/"+placement.String(), func(t *testing.T) {
				t.Parallel()
				rep := runConcurrent(t, scheme, placement, 2400, 11)
				if !rep.Passed() {
					t.Fatalf("%d silent escapes, resume %s:\n%+v",
						rep.SilentEscapes, rep.ResumeOutcome, rep)
				}
				if rep.FaultEvents == 0 {
					t.Fatal("concurrent phase injected no faults")
				}
				if rep.SpanReads == 0 {
					t.Fatal("concurrent phase issued no cross-shard span reads")
				}
				if rep.Outcomes["halted"] == 0 && rep.Outcomes["recovered"] == 0 && rep.Outcomes["corrected"] == 0 {
					t.Fatal("faults never bit: all reads were clean")
				}
			})
		}
	}
}

// TestConcurrentWorkersStraddleShards verifies the phase's structural
// premise: with the default 3-workers-over-4-shards layout, worker slices
// cross shard boundaries so span traffic genuinely fans out.
func TestConcurrentWorkersStraddleShards(t *testing.T) {
	cfg := DefaultConcurrent(core.Default(ctr.Delta, core.MACInECC), 300, 1)
	ecfg := cfg.Engine
	ecfg.RegionBytes = regionBytes
	s, err := core.NewShardedEngine(ecfg, cfg.Shards)
	if err != nil {
		t.Fatal(err)
	}
	workers := partitionWorkers(cfg, s, ecfg.DataBlocks())
	if len(workers) != cfg.Workers {
		t.Fatalf("%d workers, want %d", len(workers), cfg.Workers)
	}
	straddlers := 0
	for i, w := range workers {
		if w.lo%ctr.GroupBlocks != 0 {
			t.Errorf("worker %d range not group-aligned", i)
		}
		if i > 0 && w.lo != workers[i-1].hi {
			t.Errorf("worker %d range not contiguous with predecessor", i)
		}
		loShard := s.ShardOf(w.span[0] * core.BlockBytes)
		hiShard := s.ShardOf((w.span[1] - 1) * core.BlockBytes)
		if loShard != hiShard {
			straddlers++
		}
	}
	if workers[len(workers)-1].hi != ecfg.DataBlocks() {
		t.Error("worker ranges do not cover the region")
	}
	if straddlers == 0 {
		t.Fatal("no worker span stripe straddles a shard boundary")
	}
}

// TestConcurrentValidate rejects malformed concurrent configs.
func TestConcurrentValidate(t *testing.T) {
	good := DefaultConcurrent(core.Default(ctr.Delta, core.MACInECC), 600, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*ConcurrentConfig){
		func(c *ConcurrentConfig) { c.Workers = 0 },
		func(c *ConcurrentConfig) { c.OpsPerWorker = 0 },
		func(c *ConcurrentConfig) { c.FaultRate = 2 },
		func(c *ConcurrentConfig) { c.BurstMax = 0 },
		func(c *ConcurrentConfig) { c.Shards = 3 },
		func(c *ConcurrentConfig) { c.Engine.CorrectBits = 9 },
	}
	for i, mut := range bad {
		c := good
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
