package campaign

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"authmem"
	"authmem/client"
	"authmem/cluster"
	"authmem/internal/server"
	"authmem/internal/wire"
)

// Cluster campaign phase: node-level faults against the striped,
// quorum-verified cluster client.
//
// The engine-scoped phases prove a single node never returns wrong data as
// if it were right. The cluster phase lifts the adversary one level: whole
// memserved nodes are corrupted, rolled back behind the cluster's back,
// killed, restarted empty, and partitioned while a randomized workload runs
// through the cluster client — and every successful quorum read is compared
// against a plaintext shadow oracle. The safety bar is unchanged: a read
// that reports success with non-oracle bytes is a silent escape and fails
// the campaign. Outvoted replicas, degraded service, and typed quorum
// errors are all acceptable outcomes; silence is not.
//
// Scenarios (each runs its own traffic slice over a 3-node, R=2 cluster):
//
//	corrupt    — bit flips land in one node's ciphertext/ECC/counter
//	             storage; the node's own MAC condemns the replica and the
//	             quorum outvotes it.
//	rollback   — a rogue client writes one replica directly, producing
//	             MAC-valid divergent state; root-pin or epoch evidence must
//	             outvote it, or the read must fail loudly.
//	kill       — a node is killed mid-traffic and later restarted with a
//	             fresh (empty) memory and a new epoch; the epoch handshake
//	             voids it and repair re-populates it.
//	partition  — a node's transport is severed mid-traffic and later
//	             healed with the same epoch; missed writes are tracked as
//	             dirty stripes and repaired on revival.
//	rebalance  — a node joins and a founding member retires while reads
//	             run concurrently; verified stripe transfers must keep
//	             every answer oracle-exact.
//
// Every scenario ends with a convergence sweep (read the whole region until
// verdicts are clean, repairing via the quorum machinery) and a final
// oracle comparison; failure to converge fails the phase.

// ClusterConfig parameterizes the cluster phase.
type ClusterConfig struct {
	// Seed drives fault placement and the workload. The rebalance
	// scenario's reader runs concurrently, so outcome *counts* there are
	// scheduler-dependent; safety classification is not.
	Seed int64
	// Ops is the total quorum operations, split across the scenarios.
	Ops int
	// Nodes is the member count (minimum 3: kill and rebalance scenarios
	// need a surviving quorum plus a retiring member).
	Nodes int
	// Replication is R, replicas per stripe.
	Replication int
	// FaultRate is the per-operation probability of a fault event in the
	// corrupt and rollback scenarios.
	FaultRate float64
	// BurstMax bounds bit flips per corrupt-scenario fault event.
	BurstMax int
}

// DefaultCluster returns the standard cluster phase: 3 nodes, R=2.
func DefaultCluster(ops int, seed int64) ClusterConfig {
	per := ops / len(clusterScenarios)
	if per < 8 {
		per = 8
	}
	return ClusterConfig{
		Seed:        seed,
		Ops:         per * len(clusterScenarios),
		Nodes:       3,
		Replication: 2,
		FaultRate:   0.2,
		BurstMax:    4,
	}
}

// Validate checks the cluster-phase parameters.
func (c ClusterConfig) Validate() error {
	switch {
	case c.Ops < len(clusterScenarios):
		return fmt.Errorf("campaign: cluster Ops must be at least %d", len(clusterScenarios))
	case c.Nodes < 3:
		return fmt.Errorf("campaign: cluster needs at least 3 nodes, got %d", c.Nodes)
	case c.Replication < 2 || c.Replication > c.Nodes:
		return fmt.Errorf("campaign: Replication %d out of [2, %d]", c.Replication, c.Nodes)
	case c.FaultRate < 0 || c.FaultRate > 1:
		return fmt.Errorf("campaign: FaultRate %v out of [0,1]", c.FaultRate)
	case c.BurstMax < 1:
		return fmt.Errorf("campaign: BurstMax must be >= 1")
	}
	return nil
}

var clusterScenarios = []string{"corrupt", "rollback", "kill", "partition", "rebalance"}

// ClusterScenarios lists the phase's scenario names in run order.
func ClusterScenarios() []string { return append([]string(nil), clusterScenarios...) }

// ClusterScenarioReport is one scenario's outcome matrix.
type ClusterScenarioReport struct {
	Scenario    string            `json:"scenario"`
	Ops         uint64            `json:"ops"`
	FaultEvents uint64            `json:"fault_events"`
	BitsFlipped uint64            `json:"bits_flipped"`
	Outcomes    map[string]uint64 `json:"outcomes"`
	// Converged reports whether the post-scenario sweep reached
	// all-clean verdicts with an oracle-exact region.
	Converged bool `json:"converged"`
}

// ClusterReport is the cluster phase's result.
type ClusterReport struct {
	Nodes       int   `json:"nodes"`
	Replication int   `json:"replication"`
	Seed        int64 `json:"seed"`

	Ops         uint64 `json:"ops"`
	FaultEvents uint64 `json:"fault_events"`
	BitsFlipped uint64 `json:"bits_flipped"`

	Scenarios []ClusterScenarioReport `json:"scenarios"`

	Outcomes      map[string]uint64 `json:"outcomes"`
	SilentEscapes uint64            `json:"silent_escapes"`

	// Stats is the cluster client's own counters: outvote verdicts,
	// repairs, revivals, rebalance volume.
	Stats cluster.Stats `json:"stats"`

	// AttestedRoot is the final cluster-wide combined root (hex), taken
	// after all scenarios converged — proof the run ended at a quiescent,
	// fully attested state.
	AttestedRoot string `json:"attested_root"`
}

// Passed reports the phase safety bar: zero silent escapes and every
// scenario converged back to a clean, oracle-exact cluster.
func (r *ClusterReport) Passed() bool {
	if r.SilentEscapes != 0 {
		return false
	}
	for _, s := range r.Scenarios {
		if !s.Converged {
			return false
		}
	}
	return r.AttestedRoot != ""
}

const (
	clusterRegion  = 1 << 20 // 1 MiB logical region
	clusterStripeB = 16      // 1 KiB stripes -> 1024 stripes
)

// campNode is one in-process memserved node with a severable transport.
type campNode struct {
	name string
	key  []byte

	mu    sync.Mutex
	mem   *authmem.ShardedMemory
	srv   *server.Server
	down  bool
	conns []net.Conn
}

func startCampNode(name string, key []byte, epoch uint64) (*campNode, error) {
	n := &campNode{name: name, key: key}
	return n, n.boot(epoch)
}

func (n *campNode) boot(epoch uint64) error {
	cfg := authmem.DefaultConfig(clusterRegion)
	cfg.Key = n.key
	mem, err := authmem.NewSharded(cfg, 2)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Backend: mem, NodeID: n.name, Epoch: epoch})
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.mem, n.srv, n.down = mem, srv, false
	n.mu.Unlock()
	return nil
}

func (n *campNode) dial() (net.Conn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.down {
		return nil, fmt.Errorf("node %s unreachable", n.name)
	}
	nc, err := n.srv.DialLoopback()
	if err == nil {
		n.conns = append(n.conns, nc)
	}
	return nc, err
}

func (n *campNode) partition() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.down = true
	for _, nc := range n.conns {
		nc.Close()
	}
	n.conns = nil
}

func (n *campNode) heal() {
	n.mu.Lock()
	n.down = false
	n.mu.Unlock()
}

func (n *campNode) kill() {
	n.mu.Lock()
	srv := n.srv
	n.down = true
	n.conns = nil
	n.mu.Unlock()
	srv.Close()
}

func (n *campNode) node() cluster.Node {
	return cluster.Node{Name: n.name, Dial: n.dial}
}

// clusterHarness holds the phase's live state: the nodes, the cluster
// client over them, the plaintext oracle, and the accumulating report.
type clusterHarness struct {
	cfg   ClusterConfig
	rng   *rand.Rand
	key   []byte
	nodes []*campNode
	cl    *cluster.Cluster

	mu     sync.Mutex // guards oracle and the current scenario's counters
	oracle []byte
	sc     *ClusterScenarioReport
	rep    *ClusterReport
}

// RunCluster executes the cluster phase and returns its report. Fault
// outcomes — including silent escapes — are reported, not returned.
func RunCluster(cfg ClusterConfig) (*ClusterReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &clusterHarness{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		oracle: make([]byte, clusterRegion),
		rep: &ClusterReport{
			Nodes:       cfg.Nodes,
			Replication: cfg.Replication,
			Seed:        cfg.Seed,
			Outcomes:    make(map[string]uint64),
		},
	}
	h.key = make([]byte, authmem.KeySize)
	h.rng.Read(h.key)

	var nodes []cluster.Node
	for i := 0; i < cfg.Nodes; i++ {
		n, err := startCampNode(fmt.Sprintf("node%d", i), h.key, uint64(i+1))
		if err != nil {
			return nil, fmt.Errorf("campaign: cluster node %d: %w", i, err)
		}
		h.nodes = append(h.nodes, n)
		nodes = append(nodes, n.node())
	}
	defer func() {
		for _, n := range h.nodes {
			n.mu.Lock()
			if !n.down && n.srv != nil {
				n.srv.Close()
			}
			n.mu.Unlock()
		}
	}()

	cl, err := cluster.New(cluster.Options{
		Nodes:         nodes,
		Size:          clusterRegion,
		StripeBlocks:  clusterStripeB,
		Replication:   cfg.Replication,
		ProbeInterval: 10 * time.Millisecond,
		Client:        client.Options{MaxRetries: 2, RetryBackoff: time.Millisecond},
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: cluster: %w", err)
	}
	defer cl.Close()
	h.cl = cl

	// Pre-fill the region so every scenario reads real data, not zeroes.
	buf := make([]byte, 32*wire.BlockBytes)
	for off := uint64(0); off < clusterRegion; off += uint64(len(buf)) {
		h.rng.Read(buf)
		if _, err := cl.Write(off, buf); err != nil {
			return nil, fmt.Errorf("campaign: cluster pre-fill: %w", err)
		}
		copy(h.oracle[off:], buf)
	}

	per := cfg.Ops / len(clusterScenarios)
	for _, name := range clusterScenarios {
		sc := &ClusterScenarioReport{Scenario: name, Outcomes: make(map[string]uint64)}
		h.sc = sc
		switch name {
		case "corrupt":
			h.runCorrupt(per)
		case "rollback":
			h.runRollback(per)
		case "kill":
			h.runKill(per)
		case "partition":
			h.runPartition(per)
		case "rebalance":
			h.runRebalance(per)
		}
		sc.Converged = h.converge()
		h.rep.Scenarios = append(h.rep.Scenarios, *sc)
		h.rep.Ops += sc.Ops
		h.rep.FaultEvents += sc.FaultEvents
		h.rep.BitsFlipped += sc.BitsFlipped
		for o, c := range sc.Outcomes {
			h.rep.Outcomes[o] += c
		}
		h.rep.SilentEscapes += sc.Outcomes[Silent.String()]
	}

	h.rep.Stats = cl.Stats()
	if att, err := cl.Attest(); err == nil {
		h.rep.AttestedRoot = hex.EncodeToString(att.Combined[:])
	}
	return h.rep, nil
}

// span picks a random block-aligned span of 1..8 blocks.
func (h *clusterHarness) span() (uint64, int) {
	n := (1 + h.rng.Intn(8)) * wire.BlockBytes
	addr := uint64(h.rng.Intn(clusterRegion/wire.BlockBytes)) * wire.BlockBytes
	if addr+uint64(n) > clusterRegion {
		addr = clusterRegion - uint64(n)
	}
	return addr, n
}

// classify scores one quorum read against the oracle and, on a loud
// failure, restores the span through the cluster (as real software would
// re-create lost data) so traffic can continue.
func (h *clusterHarness) classify(addr uint64, got []byte, info cluster.Info, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sc.Ops++
	switch {
	case err != nil:
		h.sc.Outcomes[Halted.String()]++
		h.mu.Unlock()
		h.cl.Write(addr, h.oracle[addr:addr+uint64(len(got))])
		h.mu.Lock()
	case !bytes.Equal(got, h.oracle[addr:addr+uint64(len(got))]):
		h.sc.Outcomes[Silent.String()]++
	case info.Verdict == cluster.VerdictClean && !info.Degraded:
		h.sc.Outcomes[Clean.String()]++
	default:
		// Correct data despite a faulted, absent, stale, or divergent
		// replica: the quorum machinery recovered it.
		h.sc.Outcomes[Recovered.String()]++
	}
}

// readOp performs one classified quorum read.
func (h *clusterHarness) readOp() {
	addr, n := h.span()
	dst := make([]byte, n)
	info, err := h.cl.Read(addr, dst)
	h.classify(addr, dst, info, err)
}

// writeOp performs one quorum write and folds it into the oracle. A loud
// write failure is counted; the oracle keeps the old contents (the cluster
// rejected the write as a whole only if no replica took it).
func (h *clusterHarness) writeOp() {
	addr, n := h.span()
	src := make([]byte, n)
	h.rng.Read(src)
	_, err := h.cl.Write(addr, src)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sc.Ops++
	if err != nil {
		h.sc.Outcomes[Halted.String()]++
		return
	}
	copy(h.oracle[addr:], src)
}

// trafficOp runs one read- or write-heavy workload step.
func (h *clusterHarness) trafficOp() {
	if h.rng.Float64() < 0.65 {
		h.readOp()
	} else {
		h.writeOp()
	}
}

// runCorrupt flips stored bits on one node under live traffic: the node's
// own integrity machinery condemns the replica, the quorum outvotes and
// repairs it.
func (h *clusterHarness) runCorrupt(ops int) {
	for i := 0; i < ops; i++ {
		if h.rng.Float64() < h.cfg.FaultRate {
			victim := h.nodes[h.rng.Intn(len(h.nodes))]
			addr := uint64(h.rng.Intn(clusterRegion/wire.BlockBytes)) * wire.BlockBytes
			flips := 1 + h.rng.Intn(h.cfg.BurstMax)
			h.sc.FaultEvents++
			for f := 0; f < flips; f++ {
				var err error
				switch h.rng.Intn(3) {
				case 0:
					err = victim.mem.FlipDataBit(addr, h.rng.Intn(8*wire.BlockBytes))
				case 1:
					err = victim.mem.FlipECCBit(addr, h.rng.Intn(64))
				default:
					err = victim.mem.FlipCounterBit(addr, h.rng.Intn(512))
				}
				if err == nil {
					h.sc.BitsFlipped++
				}
			}
		}
		h.trafficOp()
	}
}

// runRollback writes one replica directly, behind the cluster's back —
// MAC-valid divergent state, the Byzantine replica the status codes cannot
// condemn — and immediately reads the span through the cluster.
func (h *clusterHarness) runRollback(ops int) {
	rogues := make([]*client.Client, len(h.nodes))
	for i, n := range h.nodes {
		c, err := client.New(client.Options{Dial: n.dial})
		if err != nil {
			continue
		}
		rogues[i] = c
		defer c.Close()
	}
	for i := 0; i < ops; i++ {
		if h.rng.Float64() < h.cfg.FaultRate {
			rogue := rogues[h.rng.Intn(len(rogues))]
			if rogue != nil {
				addr, n := h.span()
				evil := make([]byte, n)
				h.rng.Read(evil)
				if _, err := rogue.Write(addr, evil); err == nil {
					h.sc.FaultEvents++
					h.sc.BitsFlipped += uint64(8 * n) // whole-span tamper
					dst := make([]byte, n)
					info, rerr := h.cl.Read(addr, dst)
					h.classify(addr, dst, info, rerr)
				}
			}
		}
		h.trafficOp()
	}
}

// runKill kills one node a third of the way in and restarts it — empty,
// new epoch — at two thirds; traffic must stay correct throughout.
func (h *clusterHarness) runKill(ops int) {
	victim := h.nodes[h.rng.Intn(len(h.nodes))]
	for i := 0; i < ops; i++ {
		switch i {
		case ops / 3:
			victim.kill()
			h.sc.FaultEvents++
		case 2 * ops / 3:
			if err := victim.boot(uint64(1000 + h.rng.Intn(1 << 20))); err == nil {
				h.sc.FaultEvents++
			}
			time.Sleep(15 * time.Millisecond) // let the probe window lapse
		}
		h.trafficOp()
	}
}

// runPartition severs one node's transport (process and memory intact) and
// heals it with the same epoch; missed writes must be repaired on revival.
func (h *clusterHarness) runPartition(ops int) {
	victim := h.nodes[h.rng.Intn(len(h.nodes))]
	for i := 0; i < ops; i++ {
		switch i {
		case ops / 3:
			victim.partition()
			h.sc.FaultEvents++
		case 2 * ops / 3:
			victim.heal()
			time.Sleep(15 * time.Millisecond)
		}
		h.trafficOp()
	}
}

// runRebalance joins a newcomer and retires a founding member while reads
// run concurrently; every concurrent answer is oracle-checked.
func (h *clusterHarness) runRebalance(ops int) {
	newcomer, err := startCampNode("joiner", h.key, 7777)
	if err != nil {
		return
	}
	h.nodes = append(h.nodes, newcomer)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.readOp()
			}
		}
	}()

	if err := h.cl.AddNode(newcomer.node()); err == nil {
		h.sc.FaultEvents++
	}
	// Retire the first founding member; its stripes re-replicate first.
	if err := h.cl.RemoveNode(h.nodes[0].name); err == nil {
		h.sc.FaultEvents++
	}
	close(stop)
	wg.Wait()

	// The retired node's process stays up (it is simply no longer a
	// member); settle with sequential traffic on the new membership.
	for i := 0; i < ops/4; i++ {
		h.trafficOp()
	}
}

// converge sweeps the whole region until every verdict is clean and the
// data is oracle-exact, letting the quorum repair machinery drain all dirty
// stripes. Loud failures rewrite from the oracle; only running out of time
// fails the sweep.
func (h *clusterHarness) converge() bool {
	const chunk = 64 * wire.BlockBytes
	buf := make([]byte, chunk)
	deadline := time.Now().Add(10 * time.Second)
	for {
		clean := true
		for off := uint64(0); off < clusterRegion; off += chunk {
			info, err := h.cl.Read(off, buf)
			h.classify(off, buf, info, err)
			if err != nil || info.Verdict != cluster.VerdictClean {
				clean = false
				continue
			}
		}
		if clean {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
