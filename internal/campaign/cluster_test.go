package campaign

import (
	"testing"
)

// TestClusterNoSilentEscapes runs the distributed phase at smoke scale:
// node-level corruption, rollback, kill/restart, partition, and a live
// rebalance, every successful read checked against the shadow oracle.
func TestClusterNoSilentEscapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster phase spins up real loopback nodes")
	}
	cfg := DefaultCluster(200, 11)
	rep, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SilentEscapes != 0 {
		t.Fatalf("%d silent escapes", rep.SilentEscapes)
	}
	if !rep.Passed() {
		t.Fatalf("cluster phase failed: %+v", rep)
	}
	if len(rep.Scenarios) != len(clusterScenarios) {
		t.Fatalf("got %d scenario reports, want %d", len(rep.Scenarios), len(clusterScenarios))
	}
	for _, sc := range rep.Scenarios {
		if !sc.Converged {
			t.Fatalf("scenario %q did not converge", sc.Scenario)
		}
		if sc.Ops == 0 {
			t.Fatalf("scenario %q ran no operations", sc.Scenario)
		}
	}
	if rep.AttestedRoot == "" {
		t.Fatal("no final attested root")
	}
	// The corrupt and rollback scenarios must actually land faults at the
	// default rate — a campaign that injects nothing proves nothing.
	if rep.FaultEvents == 0 || rep.BitsFlipped == 0 {
		t.Fatalf("faults did not bite: events=%d bits=%d", rep.FaultEvents, rep.BitsFlipped)
	}
	// Node-level faults must be visible in the quorum stats: replicas were
	// outvoted, not silently believed.
	s := rep.Stats
	outvoted := s.OutvotedFault + s.OutvotedUnreachable + s.OutvotedStale +
		s.OutvotedEpoch + s.OutvotedRoot + s.OutvotedMajority
	if outvoted == 0 {
		t.Fatal("no replica was ever outvoted despite node-level faults")
	}
	if s.Repairs == 0 {
		t.Fatal("no stripe repair ran despite node kills and corruption")
	}
}

func TestClusterValidate(t *testing.T) {
	good := DefaultCluster(100, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*ClusterConfig){
		func(c *ClusterConfig) { c.Ops = 2 },
		func(c *ClusterConfig) { c.Nodes = 2 },
		func(c *ClusterConfig) { c.Replication = 1 },
		func(c *ClusterConfig) { c.Replication = c.Nodes + 1 },
		func(c *ClusterConfig) { c.FaultRate = 1.5 },
		func(c *ClusterConfig) { c.BurstMax = 0 },
	}
	for i, mutate := range cases {
		bad := good
		mutate(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// TestClusterDeterministicReplay pins the phase's replayability: identical
// seeds must produce identical fault schedules. Outcome counts in the
// rebalance scenario depend on goroutine interleaving, so only the
// deterministic scenarios are compared.
func TestClusterDeterministicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster phase spins up real loopback nodes")
	}
	cfg := DefaultCluster(60, 23)
	a, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, sa := range a.Scenarios {
		sb := b.Scenarios[i]
		if sa.Scenario == "rebalance" || sa.Scenario == "kill" || sa.Scenario == "partition" {
			continue // concurrent reader / revival timing varies
		}
		if sa.FaultEvents != sb.FaultEvents || sa.BitsFlipped != sb.BitsFlipped {
			t.Fatalf("scenario %q: fault schedule diverged: %d/%d bits vs %d/%d",
				sa.Scenario, sa.FaultEvents, sa.BitsFlipped, sb.FaultEvents, sb.BitsFlipped)
		}
	}
}
