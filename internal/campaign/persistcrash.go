package campaign

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/wal"
)

// Persist-crash campaign phase: strikes against the incremental-persistence
// artifacts (base snapshot + sealed delta WAL) rather than live DRAM.
//
// The other phases ask whether a faulted *running* engine can be made to
// return wrong data. This phase asks the durability-plane version: after the
// base image and the delta log have been damaged — torn at arbitrary byte
// offsets, bit-flipped, fed garbage tails, or maliciously truncated at a
// record boundary against a pinned root — can ResumeIncremental ever be made
// to hand back a memory whose contents disagree with some committed epoch's
// oracle without saying so?
//
// Two arrangements run the same strike set:
//
//   - flat: one Engine with the write pipeline, checkpointed over several
//     epochs of single-threaded traffic;
//   - sharded: a ShardedEngine with per-shard delta logs, written by
//     concurrent workers between epoch barriers (traffic is parallel, the
//     checkpoint is a quiescent cut — exactly how cmd/memserved drives it).
//
// Outcome mapping (same taxonomy, durability reading):
//
//	Clean      — resume replayed the whole log, state matches the final
//	             epoch's oracle.
//	Corrected  — resume succeeded and some read needed in-line correction
//	             (base-image flips under a correcting codec).
//	Recovered  — a typed truncated/rollback verdict cut the log at an
//	             earlier epoch, and the state matches THAT epoch's oracle
//	             exactly: the crash contract.
//	Halted     — resume (or a post-resume read) refused loudly.
//	Silent     — resume reported success but the state disagrees with the
//	             recovered epoch's oracle, or a pinned rollback was
//	             accepted. Automatic failure.

// Strike kinds, report keys.
const (
	strikeWALTruncate = "wal-truncate" // tear the log at a random byte
	strikeWALBitflip  = "wal-bitflip"  // flip 1..BurstMax log bits
	strikeWALGarbage  = "wal-garbage"  // append a garbage tail
	strikeBaseBitflip = "base-bitflip" // flip 1..BurstMax base-image bits
	strikePinRollback = "pin-rollback" // valid shorter prefix vs pinned root
)

func strikeKinds() []string {
	return []string{strikeWALTruncate, strikeWALBitflip, strikeWALGarbage, strikeBaseBitflip, strikePinRollback}
}

// PersistCrashConfig parameterizes the persist-crash phase.
type PersistCrashConfig struct {
	// Engine is the design point under test (region sized by the runner).
	Engine core.Config
	// Seed makes the phase deterministic.
	Seed int64
	// Epochs is the number of committed checkpoint epochs per arrangement.
	Epochs int
	// WritesPerEpoch is the write traffic between checkpoints.
	WritesPerEpoch int
	// Trials is the number of strikes per arrangement.
	Trials int
	// BurstMax bounds bit flips per corruption strike.
	BurstMax int
	// Shards/Workers shape the sharded arrangement.
	Shards  int
	Workers int
}

// DefaultPersistCrash sizes the phase from a total strike budget.
func DefaultPersistCrash(engine core.Config, trials int, seed int64) PersistCrashConfig {
	per := trials / 2
	if per < len(strikeKinds()) {
		per = len(strikeKinds())
	}
	return PersistCrashConfig{
		Engine:         engine,
		Seed:           seed,
		Epochs:         4,
		WritesPerEpoch: 300,
		Trials:         per,
		BurstMax:       4,
		Shards:         4,
		Workers:        3,
	}
}

// Validate checks the phase parameters.
func (c PersistCrashConfig) Validate() error {
	switch {
	case c.Epochs < 1:
		return fmt.Errorf("campaign: Epochs must be positive")
	case c.WritesPerEpoch < 1:
		return fmt.Errorf("campaign: WritesPerEpoch must be positive")
	case c.Trials < 1:
		return fmt.Errorf("campaign: Trials must be positive")
	case c.BurstMax < 1:
		return fmt.Errorf("campaign: BurstMax must be >= 1")
	case c.Workers < 1:
		return fmt.Errorf("campaign: Workers must be positive")
	}
	ecfg := c.Engine
	ecfg.RegionBytes = regionBytes
	return core.ValidateShards(ecfg, c.Shards)
}

// PersistCrashReport is the phase result, folded into the campaign report.
type PersistCrashReport struct {
	Scheme    string `json:"scheme"`
	Placement string `json:"placement"`
	Codec     string `json:"codec"`
	Seed      int64  `json:"seed"`

	Epochs        int   `json:"epochs"`
	FlatTrials    int   `json:"flat_trials"`
	ShardedTrials int   `json:"sharded_trials"`
	FlatWALBytes  int64 `json:"flat_wal_bytes"`

	// Strikes counts trials by strike kind across both arrangements.
	Strikes map[string]uint64 `json:"strikes"`
	// Outcomes is the taxonomy matrix over all resume trials.
	Outcomes map[string]uint64 `json:"outcomes"`
	// SilentEscapes must be zero for the phase to pass.
	SilentEscapes uint64 `json:"silent_escapes"`
}

// Passed reports whether the phase met the safety bar.
func (r *PersistCrashReport) Passed() bool { return r.SilentEscapes == 0 }

// persistArtifacts is one arrangement's strike surface: the base image, the
// per-log bytes, per-epoch oracles, and the trusted pins.
type persistArtifacts struct {
	base []byte
	logs [][]byte // one per shard (len 1 for flat)
	// epochOracle[k] is the plaintext oracle after k committed epochs.
	epochOracle []map[uint64][core.BlockBytes]byte
	// epochEnds[s][k] is shard s's log length after k committed epochs —
	// the record-boundary cuts an attacker would use.
	epochEnds [][]int64
	// pin is the final combined root (the value trusted storage holds).
	pin core.RootDigest
}

// RunPersistCrash executes the phase and returns its report.
func RunPersistCrash(cfg PersistCrashConfig) (*PersistCrashReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.RegionBytes = regionBytes
	ecfg.DisableEncryption = false

	rep := &PersistCrashReport{
		Scheme:    ecfg.Scheme.String(),
		Placement: ecfg.Placement.String(),
		Codec:     ecfg.CodecName(),
		Seed:      cfg.Seed,
		Epochs:    cfg.Epochs,
		Strikes:   make(map[string]uint64),
		Outcomes:  make(map[string]uint64),
	}

	flat, err := buildFlatArtifacts(cfg, ecfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: persist-crash flat arrangement: %w", err)
	}
	rep.FlatWALBytes = int64(len(flat.logs[0]))
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x70657273697374))
	for trial := 0; trial < cfg.Trials; trial++ {
		kind := strikeKinds()[trial%len(strikeKinds())]
		o := strikeOnce(ecfg, 1, flat, kind, cfg.BurstMax, rng)
		rep.Strikes[kind]++
		rep.Outcomes[o.String()]++
		rep.FlatTrials++
		if o == Silent {
			rep.SilentEscapes++
		}
	}

	sharded, err := buildShardedArtifacts(cfg, ecfg)
	if err != nil {
		return nil, fmt.Errorf("campaign: persist-crash sharded arrangement: %w", err)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		kind := strikeKinds()[trial%len(strikeKinds())]
		o := strikeOnce(ecfg, cfg.Shards, sharded, kind, cfg.BurstMax, rng)
		rep.Strikes[kind]++
		rep.Outcomes[o.String()]++
		rep.ShardedTrials++
		if o == Silent {
			rep.SilentEscapes++
		}
	}
	return rep, nil
}

func copyOracle(m map[uint64][core.BlockBytes]byte) map[uint64][core.BlockBytes]byte {
	c := make(map[uint64][core.BlockBytes]byte, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// buildFlatArtifacts checkpoints a single pipelined engine over cfg.Epochs
// epochs of traffic.
func buildFlatArtifacts(cfg PersistCrashConfig, ecfg core.Config) (*persistArtifacts, error) {
	e, err := core.NewEngine(ecfg)
	if err != nil {
		return nil, err
	}
	if err := e.EnableWritePipeline(0); err != nil {
		return nil, err
	}
	e.EnableDeltaTracking()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x666c6174))
	blocks := int64(ecfg.DataBlocks())
	oracle := make(map[uint64][core.BlockBytes]byte)
	write := func() error {
		blk := uint64(rng.Int63n(blocks))
		var data [core.BlockBytes]byte
		rng.Read(data[:])
		if err := e.Write(blk*core.BlockBytes, data[:]); err != nil {
			return err
		}
		oracle[blk] = data
		return nil
	}
	for i := 0; i < cfg.WritesPerEpoch; i++ {
		if err := write(); err != nil {
			return nil, err
		}
	}
	var base, log bytes.Buffer
	if _, err := e.Persist(&base); err != nil {
		return nil, err
	}
	w, err := e.NewDeltaWriter(&log)
	if err != nil {
		return nil, err
	}
	art := &persistArtifacts{
		base:        base.Bytes(),
		epochOracle: []map[uint64][core.BlockBytes]byte{copyOracle(oracle)},
		epochEnds:   [][]int64{{w.Offset()}},
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		for i := 0; i < cfg.WritesPerEpoch; i++ {
			if err := write(); err != nil {
				return nil, err
			}
		}
		if _, err := e.AppendDelta(w); err != nil {
			return nil, err
		}
		art.epochOracle = append(art.epochOracle, copyOracle(oracle))
		art.epochEnds[0] = append(art.epochEnds[0], w.Offset())
	}
	art.logs = [][]byte{log.Bytes()}
	art.pin = e.RootDigest()
	return art, nil
}

// buildShardedArtifacts checkpoints a ShardedEngine whose traffic comes from
// concurrent workers; each epoch is a barrier cut, as a daemon's checkpoint
// loop would take it.
func buildShardedArtifacts(cfg PersistCrashConfig, ecfg core.Config) (*persistArtifacts, error) {
	s, err := core.NewShardedEngine(ecfg, cfg.Shards)
	if err != nil {
		return nil, err
	}
	s.EnableDeltaTracking()
	blocks := ecfg.DataBlocks()

	// Disjoint group-aligned worker ranges, as in the concurrent phase.
	type pworker struct {
		rng     *rand.Rand
		lo, hi  uint64
		pending map[uint64][core.BlockBytes]byte
		err     error
	}
	per := blocks / uint64(cfg.Workers) / ctr.GroupBlocks * ctr.GroupBlocks
	if per == 0 {
		return nil, fmt.Errorf("region too small for %d workers", cfg.Workers)
	}
	workers := make([]*pworker, cfg.Workers)
	for i := range workers {
		lo, hi := uint64(i)*per, uint64(i+1)*per
		if i == cfg.Workers-1 {
			hi = blocks
		}
		workers[i] = &pworker{
			rng: rand.New(rand.NewSource(cfg.Seed ^ int64(i+1)*0x5851F42D4C957F2D)),
			lo:  lo, hi: hi,
			pending: make(map[uint64][core.BlockBytes]byte),
		}
	}
	runEpochTraffic := func(n int) error {
		var wg sync.WaitGroup
		for _, w := range workers {
			wg.Add(1)
			go func(w *pworker) {
				defer wg.Done()
				for i := 0; i < n; i++ {
					blk := w.lo + uint64(w.rng.Int63n(int64(w.hi-w.lo)))
					var data [core.BlockBytes]byte
					w.rng.Read(data[:])
					if err := s.Write(blk*core.BlockBytes, data[:]); err != nil {
						w.err = err
						return
					}
					w.pending[blk] = data
				}
			}(w)
		}
		wg.Wait()
		for _, w := range workers {
			if w.err != nil {
				return w.err
			}
		}
		return nil
	}

	oracle := make(map[uint64][core.BlockBytes]byte)
	merge := func() {
		for _, w := range workers {
			for blk, data := range w.pending {
				oracle[blk] = data
			}
			w.pending = make(map[uint64][core.BlockBytes]byte)
		}
	}

	if err := runEpochTraffic(cfg.WritesPerEpoch / cfg.Workers); err != nil {
		return nil, err
	}
	merge()
	var base bytes.Buffer
	if _, err := s.Persist(&base); err != nil {
		return nil, err
	}
	logBufs := make([]bytes.Buffer, cfg.Shards)
	art := &persistArtifacts{
		base:        base.Bytes(),
		epochOracle: []map[uint64][core.BlockBytes]byte{copyOracle(oracle)},
		epochEnds:   make([][]int64, cfg.Shards),
	}
	shardWriters := make([]*wal.Writer, cfg.Shards)
	for i := range shardWriters {
		w, err := s.NewShardDeltaWriter(i, &logBufs[i])
		if err != nil {
			return nil, err
		}
		shardWriters[i] = w
		art.epochEnds[i] = []int64{w.Offset()}
	}
	for ep := 0; ep < cfg.Epochs; ep++ {
		if err := runEpochTraffic(cfg.WritesPerEpoch / cfg.Workers); err != nil {
			return nil, err
		}
		merge()
		for i, w := range shardWriters {
			if _, err := s.AppendDeltaShard(i, w); err != nil {
				return nil, err
			}
			art.epochEnds[i] = append(art.epochEnds[i], w.Offset())
		}
		art.epochOracle = append(art.epochOracle, copyOracle(oracle))
	}
	art.logs = make([][]byte, cfg.Shards)
	for i := range art.logs {
		art.logs[i] = logBufs[i].Bytes()
	}
	art.pin = s.RootDigest()
	return art, nil
}

// strikeOnce applies one strike to a fresh copy of the artifacts, resumes,
// and classifies the result. shards==1 uses the flat resume path.
func strikeOnce(ecfg core.Config, shards int, art *persistArtifacts, kind string, burstMax int, rng *rand.Rand) Outcome {
	base := art.base
	logs := make([][]byte, len(art.logs))
	copy(logs, art.logs)
	victim := rng.Intn(len(logs))
	var pin *core.RootDigest
	finalEpoch := len(art.epochOracle) - 1
	expectRefusal := false

	switch kind {
	case strikeWALTruncate:
		cut := rng.Int63n(int64(len(logs[victim])) + 1)
		logs[victim] = logs[victim][:cut]
	case strikeWALBitflip:
		mut := append([]byte(nil), logs[victim]...)
		for i := 0; i < 1+rng.Intn(burstMax); i++ {
			bit := rng.Intn(len(mut) * 8)
			mut[bit/8] ^= 1 << (bit % 8)
		}
		logs[victim] = mut
	case strikeWALGarbage:
		tail := make([]byte, 16+rng.Intn(256))
		rng.Read(tail)
		logs[victim] = append(append([]byte(nil), logs[victim]...), tail...)
	case strikeBaseBitflip:
		mut := append([]byte(nil), base...)
		for i := 0; i < 1+rng.Intn(burstMax); i++ {
			bit := rng.Intn(len(mut) * 8)
			mut[bit/8] ^= 1 << (bit % 8)
		}
		base = mut
	case strikePinRollback:
		// Present a valid log prefix ending at an earlier epoch boundary,
		// against the pinned final root: the truncation attack. Accepting it
		// is a silent escape by definition.
		ep := rng.Intn(finalEpoch) // 0..finalEpoch-1
		logs[victim] = logs[victim][:art.epochEnds[victim][ep]]
		pin = &art.pin
		expectRefusal = true
	}

	if shards == 1 {
		return classifyFlatResume(ecfg, base, logs[0], pin, art, expectRefusal)
	}
	return classifyShardedResume(ecfg, shards, base, logs, pin, art, expectRefusal)
}

// classifyFlatResume resumes and grades the outcome against the per-epoch
// oracles.
func classifyFlatResume(ecfg core.Config, base, log []byte, pin *core.RootDigest, art *persistArtifacts, expectRefusal bool) Outcome {
	e, rep, err := core.ResumeIncremental(ecfg, bytes.NewReader(base), bytes.NewReader(log), pin)
	if err != nil {
		return Halted // every refusal is typed and loud
	}
	if expectRefusal {
		return Silent // a pinned rollback was accepted
	}
	final := len(art.epochOracle) - 1
	if rep.Epochs < 0 || rep.Epochs > final {
		return Silent
	}
	worst := Clean
	if rep.Status != core.RecoveryClean || rep.Epochs != final {
		worst = Recovered
	}
	var dst [core.BlockBytes]byte
	for blk, want := range art.epochOracle[rep.Epochs] {
		ri, err := e.Read(blk*core.BlockBytes, dst[:])
		if err != nil {
			if worst < Halted {
				worst = Halted
			}
			continue
		}
		if dst != want {
			return Silent
		}
		if (ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0) && worst < Corrected {
			worst = Corrected
		}
	}
	return worst
}

// classifyShardedResume is the sharded grading: each shard may legitimately
// recover a different epoch, so every block is checked against its owning
// shard's recovered-epoch oracle.
func classifyShardedResume(ecfg core.Config, shards int, base []byte, logs [][]byte, pin *core.RootDigest, art *persistArtifacts, expectRefusal bool) Outcome {
	wals := make([]io.Reader, len(logs))
	for i := range logs {
		wals[i] = bytes.NewReader(logs[i])
	}
	s, reports, err := core.ResumeShardedIncremental(ecfg, shards, bytes.NewReader(base), wals, pin)
	if err != nil {
		return Halted
	}
	if expectRefusal {
		return Silent
	}
	final := len(art.epochOracle) - 1
	worst := Clean
	for _, rep := range reports {
		if rep.Epochs < 0 || rep.Epochs > final {
			return Silent
		}
		if rep.Status != core.RecoveryClean || rep.Epochs != final {
			worst = Recovered
		}
	}
	var dst [core.BlockBytes]byte
	for blk := range art.epochOracle[final] {
		shard := s.ShardOf(blk * core.BlockBytes)
		ep := reports[shard].Epochs
		want, ok := art.epochOracle[ep][blk]
		if !ok {
			continue // first written after the shard's recovered epoch
		}
		ri, err := s.Read(blk*core.BlockBytes, dst[:])
		if err != nil {
			if worst < Halted {
				worst = Halted
			}
			continue
		}
		if dst != want {
			return Silent
		}
		if (ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0) && worst < Corrected {
			worst = Corrected
		}
	}
	return worst
}
