package campaign

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/ctr"
)

func TestPersistCrashPhase(t *testing.T) {
	for _, pt := range []struct {
		scheme    ctr.Kind
		placement core.MACPlacement
		codec     string
	}{
		{ctr.Delta, core.MACInECC, ""},
		{ctr.Delta, core.MACInline, "residue"},
		{ctr.Monolithic, core.MACInECC, ""},
	} {
		ecfg := core.Default(pt.scheme, pt.placement)
		ecfg.ECCCodec = pt.codec
		t.Run(pt.scheme.String()+"/"+ecfg.CodecName(), func(t *testing.T) {
			cfg := DefaultPersistCrash(ecfg, 20, 7)
			cfg.Epochs = 3
			cfg.WritesPerEpoch = 120
			rep, err := RunPersistCrash(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Passed() {
				t.Fatalf("%d silent escapes in the durability plane", rep.SilentEscapes)
			}
			if rep.FlatTrials != cfg.Trials || rep.ShardedTrials != cfg.Trials {
				t.Fatalf("trial counts %d/%d, want %d each", rep.FlatTrials, rep.ShardedTrials, cfg.Trials)
			}
			// Every strike kind must have run, and strikes that damage
			// sealed state must never all come back Clean.
			for _, kind := range strikeKinds() {
				if rep.Strikes[kind] == 0 {
					t.Fatalf("strike kind %q never ran", kind)
				}
			}
			damaged := rep.Outcomes[Recovered.String()] + rep.Outcomes[Halted.String()] + rep.Outcomes[Corrected.String()]
			if damaged == 0 {
				t.Fatal("no strike was ever observed as damage — the strikes are not landing")
			}
			if rep.FlatWALBytes <= 0 {
				t.Fatal("flat WAL empty")
			}
		})
	}
}

func TestPersistCrashValidate(t *testing.T) {
	ecfg := core.Default(ctr.Delta, core.MACInECC)
	cfg := DefaultPersistCrash(ecfg, 10, 1)
	cfg.Epochs = 0
	if _, err := RunPersistCrash(cfg); err == nil {
		t.Fatal("Epochs=0 accepted")
	}
	cfg = DefaultPersistCrash(ecfg, 10, 1)
	cfg.Shards = 3 // not a power of two
	if _, err := RunPersistCrash(cfg); err == nil {
		t.Fatal("Shards=3 accepted")
	}
}
