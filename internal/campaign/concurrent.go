package campaign

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/tree"
)

// Concurrent campaign phase: parallel faulted traffic against a sharded
// engine.
//
// The single-engine campaign proves the integrity machinery never returns
// wrong data as if it were right — one operation at a time. The concurrent
// phase asks the same question of the ShardedEngine while several workers
// hammer it simultaneously, with faults landing under the same shard locks
// the traffic takes. Each worker owns a disjoint, group-aligned slice of
// the block space and keeps a private shadow oracle for it, so a silent
// escape is detected exactly, with no cross-worker ambiguity. The worker
// count is deliberately chosen so worker slices straddle shard boundaries:
// every worker's span traffic crosses shards, and every shard serves more
// than one worker, which is precisely the contention the per-shard locks
// must survive.
//
// Faults here are persistent only (transient-fault modeling needs the
// retry-hook ledger, which is inherently single-threaded); the ciphertext,
// ECC/MAC, counter, and tree planes are all exercised. Counter faults stay
// inside the owning worker's group-aligned slice; tree faults may collide
// with a neighbouring worker's reads in the same shard, which must surface
// as loud recovery or halts — never silence.
//
// The phase ends with a persist/resume round trip of the faulted, concurrent-
// written state through the sharded v2 image format, re-checking every
// worker's oracle on the resumed engine.

// ConcurrentConfig parameterizes the concurrent phase.
type ConcurrentConfig struct {
	// Engine is the design point under test (region sized by the runner).
	Engine core.Config
	// Seed makes the phase deterministic per worker; cross-worker
	// interleaving is scheduler-dependent, but safety classification is
	// interleaving-independent.
	Seed int64
	// Shards is the ShardedEngine partition count (power of two).
	Shards int
	// Workers is the number of concurrent traffic goroutines. Pick a value
	// that does not divide Shards so worker slices straddle shard
	// boundaries (the Default does).
	Workers int
	// OpsPerWorker is each worker's operation count.
	OpsPerWorker int
	// FaultRate is the per-operation probability of injecting a fault.
	FaultRate float64
	// BurstMax bounds bit flips per fault event.
	BurstMax int
}

// DefaultConcurrent returns a concurrent-phase configuration: 4 shards, 3
// workers (so every worker slice straddles a shard boundary), ops split
// across the workers.
func DefaultConcurrent(engine core.Config, ops int, seed int64) ConcurrentConfig {
	per := ops / 3
	if per < 1 {
		per = 1
	}
	return ConcurrentConfig{
		Engine:       engine,
		Seed:         seed,
		Shards:       4,
		Workers:      3,
		OpsPerWorker: per,
		FaultRate:    0.15,
		BurstMax:     4,
	}
}

// Validate checks the concurrent-phase parameters.
func (c ConcurrentConfig) Validate() error {
	switch {
	case c.Workers < 1:
		return fmt.Errorf("campaign: Workers must be positive")
	case c.OpsPerWorker <= 0:
		return fmt.Errorf("campaign: OpsPerWorker must be positive")
	case c.FaultRate < 0 || c.FaultRate > 1:
		return fmt.Errorf("campaign: FaultRate %v out of [0,1]", c.FaultRate)
	case c.BurstMax < 1:
		return fmt.Errorf("campaign: BurstMax must be >= 1")
	}
	ecfg := c.Engine
	ecfg.RegionBytes = regionBytes
	return core.ValidateShards(ecfg, c.Shards)
}

// ConcurrentReport is the concurrent phase's result.
type ConcurrentReport struct {
	Scheme    string `json:"scheme"`
	Placement string `json:"placement"`
	Codec     string `json:"codec"`
	Shards    int    `json:"shards"`
	Workers   int    `json:"workers"`
	Seed      int64  `json:"seed"`

	Ops         uint64 `json:"ops"`
	SpanReads   uint64 `json:"span_reads"`
	FaultEvents uint64 `json:"fault_events"`
	BitsFlipped uint64 `json:"bits_flipped"`

	Outcomes      map[string]uint64 `json:"outcomes"`
	SilentEscapes uint64            `json:"silent_escapes"`

	// ResumeOutcome classifies the final sharded persist/resume sweep.
	ResumeOutcome string `json:"resume_outcome"`

	RetriedReads    uint64 `json:"retried_reads"`
	RetryRecoveries uint64 `json:"retry_recoveries"`
	MetadataRepairs uint64 `json:"metadata_repairs"`
	Quarantined     uint64 `json:"quarantined"`
}

// Passed reports whether the phase met the safety bar: zero silent escapes,
// both live and across the resume sweep.
func (r *ConcurrentReport) Passed() bool {
	return r.SilentEscapes == 0 && r.ResumeOutcome != Silent.String()
}

// cWorker is one traffic goroutine's private state: a disjoint block range
// and its shadow oracle.
type cWorker struct {
	cfg        ConcurrentConfig
	rng        *rand.Rand
	s          *core.ShardedEngine
	lo         uint64    // first owned block (inclusive), group-aligned
	hi         uint64    // last owned block (exclusive)
	span       [2]uint64 // pre-filled stripe [lo, hi) for span reads
	oracle     map[uint64][core.BlockBytes]byte
	written    []uint64
	writtenSet map[uint64]struct{}

	ops, spanReads, faultEvents, bitsFlipped uint64
	outcomes                                 [numOutcomes]uint64
	err                                      error
}

// RunConcurrent executes the concurrent phase and returns its report.
func RunConcurrent(cfg ConcurrentConfig) (*ConcurrentReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	ecfg.RegionBytes = regionBytes
	ecfg.DisableEncryption = false

	s, err := core.NewShardedEngine(ecfg, cfg.Shards)
	if err != nil {
		return nil, err
	}

	workers := partitionWorkers(cfg, s, ecfg.DataBlocks())

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *cWorker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()

	rep := &ConcurrentReport{
		Scheme:    ecfg.Scheme.String(),
		Placement: ecfg.Placement.String(),
		Codec:     ecfg.CodecName(),
		Shards:    cfg.Shards,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		Outcomes:  make(map[string]uint64),
	}
	for _, w := range workers {
		if w.err != nil {
			return nil, fmt.Errorf("campaign: concurrent worker [%d,%d): %w", w.lo, w.hi, w.err)
		}
		rep.Ops += w.ops
		rep.SpanReads += w.spanReads
		rep.FaultEvents += w.faultEvents
		rep.BitsFlipped += w.bitsFlipped
		for o, n := range w.outcomes {
			if n > 0 {
				rep.Outcomes[Outcome(o).String()] += n
			}
		}
		rep.SilentEscapes += w.outcomes[Silent]
	}
	st := s.Stats()
	rep.RetriedReads = st.RetriedReads
	rep.RetryRecoveries = st.RetryRecoveries
	rep.MetadataRepairs = st.MetadataRepairs
	rep.Quarantined = st.Quarantined

	// Final round trip: the faulted, concurrently-written state must
	// survive the sharded v2 image format, and every worker's oracle must
	// still hold on the resumed engine.
	rep.ResumeOutcome = resumeSweep(ecfg, cfg.Shards, s, workers).String()
	return rep, nil
}

// partitionWorkers slices the block space into group-aligned disjoint
// ranges, one per worker, and positions each worker's span stripe across a
// shard boundary when its range contains one.
func partitionWorkers(cfg ConcurrentConfig, s *core.ShardedEngine, blocks uint64) []*cWorker {
	per := blocks / uint64(cfg.Workers) / ctr.GroupBlocks * ctr.GroupBlocks
	shardBlocks := s.ShardBytes() / core.BlockBytes
	workers := make([]*cWorker, cfg.Workers)
	for i := range workers {
		lo := uint64(i) * per
		hi := lo + per
		if i == cfg.Workers-1 {
			hi = blocks
		}
		w := &cWorker{
			cfg:        cfg,
			rng:        rand.New(rand.NewSource(cfg.Seed ^ int64(i+1)*0x5851F42D4C957F2D)),
			s:          s,
			lo:         lo,
			hi:         hi,
			oracle:     make(map[uint64][core.BlockBytes]byte),
			writtenSet: make(map[uint64]struct{}),
		}
		// Span stripe: 128 blocks centred on a shard boundary inside the
		// range when one exists, else at the range start — so most
		// workers' span reads genuinely fan out across shards.
		const stripe = 128
		w.span = [2]uint64{lo, min(lo+stripe, hi)}
		for b := (lo/shardBlocks + 1) * shardBlocks; b < hi; b += shardBlocks {
			if b >= lo+stripe/2 && b+stripe/2 <= hi {
				w.span = [2]uint64{b - stripe/2, b + stripe/2}
				break
			}
		}
		workers[i] = w
	}
	return workers
}

// run is one worker's traffic loop.
func (w *cWorker) run() {
	// Warm-up: make every stripe block resident so span reads are always
	// legal, and seed some scattered writes.
	for blk := w.span[0]; blk < w.span[1]; blk++ {
		if w.err = w.doWrite(blk); w.err != nil {
			return
		}
	}
	for op := 0; op < w.cfg.OpsPerWorker; op++ {
		if w.rng.Float64() < w.cfg.FaultRate {
			w.injectFault()
		}
		switch {
		case op%8 == 7:
			if w.err = w.doSpanRead(); w.err != nil {
				return
			}
		case w.rng.Float64() < 0.5:
			blk := w.lo + uint64(w.rng.Int63n(int64(w.hi-w.lo)))
			if w.err = w.doWrite(blk); w.err != nil {
				return
			}
		default:
			w.doRead(w.written[w.rng.Intn(len(w.written))])
		}
	}
	// Drain: flush out any outstanding fault no mid-run read touched.
	for _, blk := range w.written {
		w.doRead(blk)
	}
}

func (w *cWorker) doWrite(blk uint64) error {
	var data [core.BlockBytes]byte
	w.rng.Read(data[:])
	w.ops++
	if err := w.s.Write(blk*core.BlockBytes, data[:]); err != nil {
		return err
	}
	w.oracle[blk] = data
	if _, ok := w.writtenSet[blk]; !ok {
		w.writtenSet[blk] = struct{}{}
		w.written = append(w.written, blk)
	}
	return nil
}

func (w *cWorker) doRead(blk uint64) {
	var dst [core.BlockBytes]byte
	w.ops++
	ri, err := w.s.ReadRecover(blk*core.BlockBytes, dst[:])
	want := w.oracle[blk]
	if err != nil {
		w.outcomes[Halted]++
		if werr := w.s.Write(blk*core.BlockBytes, want[:]); werr != nil {
			panic(fmt.Sprintf("campaign: concurrent resync write blk %d: %v", blk, werr))
		}
		return
	}
	if dst != want {
		w.outcomes[Silent]++
		return
	}
	switch {
	case ri.MetadataRepaired || ri.RetryRecovered:
		w.outcomes[Recovered]++
	case ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0:
		w.outcomes[Corrected]++
	default:
		w.outcomes[Clean]++
	}
}

// doSpanRead reads a random sub-span of the worker's pre-filled stripe
// through the fan-out path and checks every byte against the oracle.
func (w *cWorker) doSpanRead() error {
	n := w.span[1] - w.span[0]
	start := w.span[0] + uint64(w.rng.Int63n(int64(n)))
	count := 1 + uint64(w.rng.Int63n(int64(w.span[1]-start)))
	buf := make([]byte, count*core.BlockBytes)
	w.ops++
	w.spanReads++
	if err := w.s.ReadBlocks(start*core.BlockBytes, buf); err != nil {
		// The span path has no recovery ladder: any fault inside is a
		// loud halt. Rewrite the whole stripe from the oracle.
		w.outcomes[Halted]++
		for blk := w.span[0]; blk < w.span[1]; blk++ {
			img := w.oracle[blk]
			if werr := w.s.Write(blk*core.BlockBytes, img[:]); werr != nil {
				return fmt.Errorf("stripe resync blk %d: %w", blk, werr)
			}
		}
		return nil
	}
	for i := uint64(0); i < count; i++ {
		want := w.oracle[start+i]
		if !bytes.Equal(buf[i*core.BlockBytes:(i+1)*core.BlockBytes], want[:]) {
			w.outcomes[Silent]++
			return nil
		}
	}
	w.outcomes[Clean]++
	return nil
}

// injectFault applies one persistent fault event to an own written block,
// under the owning shard's lock (the tamper entry points take it).
func (w *cWorker) injectFault() {
	if len(w.written) == 0 {
		return
	}
	blk := w.written[w.rng.Intn(len(w.written))]
	addr := blk * core.BlockBytes
	flips := 1 + w.rng.Intn(w.cfg.BurstMax)
	w.faultEvents++

	switch w.rng.Intn(4) {
	case 0: // ciphertext
		for i := 0; i < flips; i++ {
			if err := w.s.TamperCiphertext(addr, w.rng.Intn(core.BlockBytes*8)); err != nil {
				panic(fmt.Sprintf("campaign: concurrent ciphertext flip blk %d: %v", blk, err))
			}
			w.bitsFlipped++
		}
	case 1: // ECC lane / inline tag
		var err error
		for i := 0; i < flips; i++ {
			if w.cfg.Engine.Placement == core.MACInECC {
				err = w.s.TamperECCLane(addr, w.rng.Intn(64))
			} else {
				err = w.s.TamperInlineTag(addr, w.rng.Intn(64))
			}
			if err != nil {
				panic(fmt.Sprintf("campaign: concurrent check flip blk %d: %v", blk, err))
			}
			w.bitsFlipped++
		}
	case 2: // counter block (group-aligned ranges keep this inside the worker)
		for i := 0; i < flips; i++ {
			if err := w.s.TamperCounterForAddr(addr, w.rng.Intn(core.BlockBytes*8)); err != nil {
				panic(fmt.Sprintf("campaign: concurrent counter flip blk %d: %v", blk, err))
			}
			w.bitsFlipped++
		}
	case 3: // off-chip tree node in the owning shard
		shard := w.s.ShardOf(addr)
		local := addr - uint64(shard)*w.s.ShardBytes()
		w.s.WithShard(shard, func(eng *core.Engine) {
			tr := eng.Tree()
			off := tr.OffChipLevels()
			if off == 0 {
				return
			}
			leaf := eng.MetaLeaf(eng.MetadataIndex(local))
			level := w.rng.Intn(off)
			index := leaf
			for k := 0; k <= level; k++ {
				index /= tree.Arity
			}
			id := tree.NodeID{Level: level, Index: index}
			for i := 0; i < flips; i++ {
				if err := eng.TamperTreeNode(id, w.rng.Intn(tree.NodeBytes*8)); err != nil {
					panic(fmt.Sprintf("campaign: concurrent tree flip %+v: %v", id, err))
				}
				w.bitsFlipped++
			}
		})
	}
}

// resumeSweep persists the sharded engine through the v2 image format,
// resumes it with the pinned combined root, and re-reads every worker's
// oracle. Returns the worst outcome observed.
func resumeSweep(ecfg core.Config, shards int, s *core.ShardedEngine, workers []*cWorker) Outcome {
	var buf bytes.Buffer
	root, err := s.Persist(&buf)
	if err != nil {
		return Halted
	}
	r, err := core.ResumeSharded(ecfg, shards, bytes.NewReader(buf.Bytes()), &root)
	if err != nil {
		return Halted
	}
	worst := Clean
	var dst [core.BlockBytes]byte
	for _, w := range workers {
		for _, blk := range w.written {
			ri, err := r.ReadRecover(blk*core.BlockBytes, dst[:])
			want := w.oracle[blk]
			switch {
			case err != nil:
				if worst < Halted {
					worst = Halted
				}
			case dst != want:
				return Silent
			case ri.MetadataRepaired || ri.RetryRecovered:
				if worst < Recovered {
					worst = Recovered
				}
			case ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0:
				if worst < Corrected {
					worst = Corrected
				}
			}
		}
	}
	return worst
}
