package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Bars(10) != "(empty)\n" {
		t.Fatal("empty bars wrong")
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("max %d", h.Max())
	}
	want := float64(0+1+2+3+100+1000) / 6
	if h.Mean() != want {
		t.Fatalf("mean %v, want %v", h.Mean(), want)
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	// The reported quantile upper bound must always be >= the true
	// quantile and <= 2x it (power-of-two buckets).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h Histogram
		values := make([]uint64, 1000)
		for i := range values {
			values[i] = uint64(rng.Intn(100000)) + 1
			h.Observe(values[i])
		}
		// True p50 via sort-free selection: count <= bound.
		for _, p := range []float64{0.5, 0.95, 0.99} {
			bound := h.Percentile(p)
			var below uint64
			for _, v := range values {
				if v <= bound {
					below++
				}
			}
			if float64(below) < p*1000 {
				return false // bound excluded part of the quantile
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentileClamps(t *testing.T) {
	var h Histogram
	h.Observe(7)
	if h.Percentile(-1) != h.Percentile(0) {
		t.Fatal("negative p should clamp")
	}
	if h.Percentile(2) != 7 {
		t.Fatal("p>1 should clamp to max")
	}
}

func TestHistogramMaxCapsPercentile(t *testing.T) {
	var h Histogram
	h.Observe(5) // bucket 3 upper bound is 7, but max is 5
	if got := h.Percentile(1); got != 5 {
		t.Fatalf("percentile %d, want capped at 5", got)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	s := h.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "max=20") {
		t.Fatalf("summary %q", s)
	}
}

func TestHistogramBars(t *testing.T) {
	var h Histogram
	for i := 0; i < 8; i++ {
		h.Observe(100)
	}
	h.Observe(3)
	out := h.Bars(20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("bars output:\n%s", out)
	}
	if !strings.Contains(out, "####") {
		t.Fatal("no bars rendered")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i) * 7)
	}
}
