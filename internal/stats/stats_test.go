package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("short", 1)
	tb.AddRow("much-longer-name", 123456)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("have %d lines:\n%s", len(lines), out)
	}
	// All lines same width (right column right-aligned).
	w := len(lines[0])
	for i, l := range lines {
		if len(l) != w {
			t.Fatalf("line %d width %d != %d:\n%s", i, len(l), w, out)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatal("missing underline")
	}
	if !strings.HasPrefix(lines[2], "short") {
		t.Fatal("first column should be left aligned")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("x", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Fatal("extra cell dropped")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		5:      "5",
		-3:     "-3",
		880:    "880",
		113.46: "113.5",
		2.345:  "2.35",
		0.517:  "0.517",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[uint64]string{
		512:       "512B",
		32 << 10:  "32.0KiB",
		512 << 20: "512.0MiB",
		3 << 30:   "3.0GiB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if Pct(21.875) != "21.88%" {
		t.Fatalf("Pct = %q", Pct(21.875))
	}
}
