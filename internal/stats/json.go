package stats

import (
	"encoding/json"
	"os"
)

// WriteJSON writes v to path as indented JSON — the one format every
// tracked result artifact (benchmark baselines, campaign reports) uses, so
// diffs of committed reports stay reviewable.
func WriteJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
