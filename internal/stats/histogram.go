package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram is a power-of-two-bucketed histogram for latency-like values.
// Bucket i collects values whose bit length is i (i.e. [2^(i-1), 2^i - 1]),
// with bucket 0 holding zeros. Observation is O(1) and allocation-free.
type Histogram struct {
	buckets [65]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observed value.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns an upper bound for the p-quantile (0 < p <= 1): the
// top of the bucket containing it. Resolution is a factor of two, which is
// what latency tails need.
func (h *Histogram) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := uint64(p * float64(h.count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			upper := uint64(1)<<uint(i) - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// String renders a compact summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.50), h.Percentile(0.95),
		h.Percentile(0.99), h.max)
}

// Bars renders an ASCII bar chart of the non-empty buckets.
func (h *Histogram) Bars(width int) string {
	if h.count == 0 {
		return "(empty)\n"
	}
	var peak uint64
	lo, hi := -1, 0
	for i, c := range h.buckets {
		if c > 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
			if c > peak {
				peak = c
			}
		}
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		n := int(h.buckets[i] * uint64(width) / peak)
		var upper uint64
		if i > 0 {
			upper = uint64(1)<<uint(i) - 1
		}
		fmt.Fprintf(&b, "%10d  %-*s %d\n", upper, width, strings.Repeat("#", n), h.buckets[i])
	}
	return b.String()
}
