// Package stats provides small reporting helpers shared by the benchmark
// harness and CLI tools: aligned text tables and number formatting.
package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with a header underline and right-aligned
// numeric-looking columns.
func (t *Table) String() string {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			var c string
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	var under []string
	for i := 0; i < cols; i++ {
		under = append(under, strings.Repeat("-", widths[i]))
	}
	writeRow(under)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with enough precision to stay meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Pct renders a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
