package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace file format, for interchange with external tools and for
// replaying captured workloads deterministically:
//
//	header:  4-byte magic "AMT1"
//	records: repeated { gap uint32 | op uint8 | addr uint64 }  little-endian
//
// The format is deliberately flat — 13 bytes per record — so files can be
// produced by anything (a Pin tool, a simulator hook) with no dependencies.

// fileMagic identifies trace files (format version 1).
var fileMagic = [4]byte{'A', 'M', 'T', '1'}

// ErrBadMagic is returned when a trace file does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file?)")

// ErrTruncated is returned when a trace file ends mid-record.
var ErrTruncated = errors.New("trace: truncated record")

const recordBytes = 4 + 1 + 8

// Writer streams records into a trace file.
type Writer struct {
	w   *bufio.Writer
	buf [recordBytes]byte
	n   uint64
}

// NewWriter writes the header and returns a Writer. Call Flush when done.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record.
func (t *Writer) Write(r Record) error {
	binary.LittleEndian.PutUint32(t.buf[0:], r.Gap)
	t.buf[4] = byte(r.Op)
	binary.LittleEndian.PutUint64(t.buf[5:], r.Addr)
	if _, err := t.w.Write(t.buf[:]); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Flush drains buffered records to the underlying writer.
func (t *Writer) Flush() error {
	if err := t.w.Flush(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// Reader streams records from a trace file and implements Generator.
type Reader struct {
	r   *bufio.Reader
	buf [recordBytes]byte
	err error
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at a clean end of file.
func (t *Reader) Read() (Record, error) {
	if t.err != nil {
		return Record{}, t.err
	}
	n, err := io.ReadFull(t.r, t.buf[:])
	switch {
	case err == io.EOF && n == 0:
		t.err = io.EOF
		return Record{}, io.EOF
	case err != nil:
		t.err = ErrTruncated
		return Record{}, ErrTruncated
	}
	op := Op(t.buf[4])
	if op != Load && op != Store {
		t.err = fmt.Errorf("trace: invalid op %d", t.buf[4])
		return Record{}, t.err
	}
	return Record{
		Gap:  binary.LittleEndian.Uint32(t.buf[0:]),
		Op:   op,
		Addr: binary.LittleEndian.Uint64(t.buf[5:]),
	}, nil
}

// Err returns the terminal error after Next reports exhaustion: nil or
// io.EOF for a clean end, something else for corruption.
func (t *Reader) Err() error {
	if t.err == io.EOF {
		return nil
	}
	return t.err
}

// Next implements Generator; errors terminate the stream (check Err).
func (t *Reader) Next() (Record, bool) {
	r, err := t.Read()
	if err != nil {
		return Record{}, false
	}
	return r, true
}

// Copy drains a Generator into a Writer and returns the record count.
func Copy(w *Writer, g Generator) (uint64, error) {
	var n uint64
	for {
		r, ok := g.Next()
		if !ok {
			return n, w.Flush()
		}
		if err := w.Write(r); err != nil {
			return n, err
		}
		n++
	}
}
