// Package trace defines the memory-access trace representation consumed by
// the CPU timing model, plus deterministic synthetic generators.
//
// A Record is one memory instruction with the count of non-memory
// instructions preceding it — the standard compressed trace shape for
// trace-driven simulation. Generators produce records on demand so traces
// never need materializing.
package trace

import (
	"math/rand"
)

// Op is a memory operation kind.
type Op uint8

const (
	// Load is a data read.
	Load Op = iota
	// Store is a data write.
	Store
)

// Record is one memory instruction in a trace.
type Record struct {
	// Gap is the number of non-memory instructions executed since the
	// previous record.
	Gap uint32
	// Op is the access type.
	Op Op
	// Addr is the byte address accessed.
	Addr uint64
}

// Generator produces trace records. Next returns ok=false when the trace is
// exhausted. Generators must be deterministic for a given construction.
type Generator interface {
	Next() (Record, bool)
}

// SliceGenerator replays a fixed record slice; mostly for tests.
type SliceGenerator struct {
	Records []Record
	pos     int
}

// Next implements Generator.
func (g *SliceGenerator) Next() (Record, bool) {
	if g.pos >= len(g.Records) {
		return Record{}, false
	}
	r := g.Records[g.pos]
	g.pos++
	return r, true
}

// Pattern selects how a synthetic generator chooses addresses.
type Pattern int

const (
	// Sequential streams through the footprint block by block.
	Sequential Pattern = iota
	// Strided walks the footprint with a fixed stride.
	Strided
	// Random picks uniformly from the footprint.
	Random
	// Hotspot picks from a small hot set with the configured
	// probability, else uniformly from the footprint.
	Hotspot
)

// SyntheticConfig parameterizes a synthetic trace.
type SyntheticConfig struct {
	// Ops is the number of memory operations to emit.
	Ops uint64
	// MeanGap is the average non-memory instruction count between
	// memory ops (geometric-ish around the mean).
	MeanGap int
	// WriteFrac is the probability an op is a store.
	WriteFrac float64
	// Pattern selects the address distribution.
	Pattern Pattern
	// BaseAddr is the start of the footprint.
	BaseAddr uint64
	// FootprintBytes bounds addresses to [BaseAddr, BaseAddr+Footprint).
	FootprintBytes uint64
	// StrideBytes is the stride for Strided.
	StrideBytes uint64
	// StepBytes is the advance per access for Sequential (default 64).
	// Real streaming code walks arrays in word-sized steps, so several
	// consecutive accesses land in one cache line; set 8 for that.
	StepBytes uint64
	// HotFrac / HotBytes configure Hotspot.
	HotFrac  float64
	HotBytes uint64
	// Seed makes the generator deterministic.
	Seed int64
}

// Synthetic is a deterministic pseudo-random trace generator.
type Synthetic struct {
	cfg     SyntheticConfig
	rng     *rand.Rand
	emitted uint64
	cursor  uint64
}

// NewSynthetic validates nothing beyond zero-value safety: a zero footprint
// collapses to a single block.
func NewSynthetic(cfg SyntheticConfig) *Synthetic {
	if cfg.FootprintBytes < 64 {
		cfg.FootprintBytes = 64
	}
	if cfg.StrideBytes == 0 {
		cfg.StrideBytes = 64
	}
	if cfg.StepBytes == 0 {
		cfg.StepBytes = 64
	}
	if cfg.HotBytes < 64 {
		cfg.HotBytes = 64
	}
	return &Synthetic{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Next implements Generator.
func (g *Synthetic) Next() (Record, bool) {
	if g.emitted >= g.cfg.Ops {
		return Record{}, false
	}
	g.emitted++

	var gap uint32
	if g.cfg.MeanGap > 0 {
		gap = uint32(g.rng.Intn(2*g.cfg.MeanGap + 1))
	}

	op := Load
	if g.rng.Float64() < g.cfg.WriteFrac {
		op = Store
	}

	blocks := g.cfg.FootprintBytes / 64
	var blk uint64
	switch g.cfg.Pattern {
	case Sequential:
		off := (g.cursor * g.cfg.StepBytes) % g.cfg.FootprintBytes
		g.cursor++
		return Record{Gap: gap, Op: op, Addr: g.cfg.BaseAddr + off&^63}, true
	case Strided:
		blk = (g.cursor * (g.cfg.StrideBytes / 64)) % blocks
		g.cursor++
	case Random:
		blk = uint64(g.rng.Int63n(int64(blocks)))
	case Hotspot:
		if g.rng.Float64() < g.cfg.HotFrac {
			hotBlocks := g.cfg.HotBytes / 64
			if hotBlocks > blocks {
				hotBlocks = blocks
			}
			blk = uint64(g.rng.Int63n(int64(hotBlocks)))
		} else {
			blk = uint64(g.rng.Int63n(int64(blocks)))
		}
	}
	return Record{Gap: gap, Op: op, Addr: g.cfg.BaseAddr + blk*64}, true
}

// Interleave merges several generators round-robin into one, for building
// phase-mixed traces.
type Interleave struct {
	Gens []Generator
	next int
}

// Next implements Generator: it rotates over sub-generators, skipping
// exhausted ones, until all are done.
func (g *Interleave) Next() (Record, bool) {
	for tries := 0; tries < len(g.Gens); tries++ {
		gen := g.Gens[g.next]
		g.next = (g.next + 1) % len(g.Gens)
		if r, ok := gen.Next(); ok {
			return r, ok
		}
	}
	return Record{}, false
}
