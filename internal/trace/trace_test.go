package trace

import (
	"testing"
)

func drain(g Generator, max int) []Record {
	var out []Record
	for len(out) < max {
		r, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

func TestSliceGenerator(t *testing.T) {
	recs := []Record{{Gap: 1, Op: Load, Addr: 0}, {Gap: 2, Op: Store, Addr: 64}}
	g := &SliceGenerator{Records: recs}
	out := drain(g, 10)
	if len(out) != 2 || out[0] != recs[0] || out[1] != recs[1] {
		t.Fatalf("replay mismatch: %+v", out)
	}
	if _, ok := g.Next(); ok {
		t.Fatal("exhausted generator yielded a record")
	}
}

func TestSyntheticCount(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 1000, FootprintBytes: 1 << 20, Pattern: Random})
	if n := len(drain(g, 2000)); n != 1000 {
		t.Fatalf("emitted %d records, want 1000", n)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Ops: 500, MeanGap: 10, WriteFrac: 0.3,
		Pattern: Hotspot, FootprintBytes: 1 << 20, HotFrac: 0.5, HotBytes: 4096, Seed: 42}
	a := drain(NewSynthetic(cfg), 1000)
	b := drain(NewSynthetic(cfg), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestSequentialPattern(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 10, Pattern: Sequential, FootprintBytes: 4 * 64, BaseAddr: 1 << 20})
	out := drain(g, 10)
	for i, r := range out {
		want := uint64(1<<20) + uint64(i%4)*64
		if r.Addr != want {
			t.Fatalf("record %d addr %#x, want %#x", i, r.Addr, want)
		}
	}
}

func TestStridedPattern(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 4, Pattern: Strided, FootprintBytes: 1 << 12, StrideBytes: 256})
	out := drain(g, 4)
	for i, r := range out {
		want := uint64(i) * 256 % (1 << 12)
		if r.Addr != want {
			t.Fatalf("record %d addr %#x, want %#x", i, r.Addr, want)
		}
	}
}

func TestRandomStaysInFootprint(t *testing.T) {
	base, fp := uint64(1<<30), uint64(1<<16)
	g := NewSynthetic(SyntheticConfig{Ops: 5000, Pattern: Random, BaseAddr: base, FootprintBytes: fp, Seed: 7})
	for _, r := range drain(g, 5000) {
		if r.Addr < base || r.Addr >= base+fp {
			t.Fatalf("address %#x outside footprint", r.Addr)
		}
		if r.Addr%64 != 0 {
			t.Fatalf("address %#x not block aligned", r.Addr)
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 20000, Pattern: Hotspot,
		FootprintBytes: 1 << 24, HotFrac: 0.9, HotBytes: 1 << 12, Seed: 9})
	hot := 0
	for _, r := range drain(g, 20000) {
		if r.Addr < 1<<12 {
			hot++
		}
	}
	if hot < 17000 {
		t.Fatalf("only %d/20000 accesses hit the hot set", hot)
	}
}

func TestWriteFraction(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 20000, Pattern: Random,
		FootprintBytes: 1 << 20, WriteFrac: 0.25, Seed: 11})
	stores := 0
	for _, r := range drain(g, 20000) {
		if r.Op == Store {
			stores++
		}
	}
	if stores < 4500 || stores > 5500 {
		t.Fatalf("store fraction %d/20000, want ~25%%", stores)
	}
}

func TestMeanGap(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 20000, MeanGap: 20, Pattern: Random,
		FootprintBytes: 1 << 20, Seed: 13})
	var total uint64
	for _, r := range drain(g, 20000) {
		total += uint64(r.Gap)
	}
	mean := float64(total) / 20000
	if mean < 17 || mean > 23 {
		t.Fatalf("mean gap %.1f, want ~20", mean)
	}
}

func TestZeroValueDefaults(t *testing.T) {
	g := NewSynthetic(SyntheticConfig{Ops: 5})
	for _, r := range drain(g, 5) {
		if r.Addr != 0 {
			t.Fatalf("zero-config address %#x", r.Addr)
		}
		if r.Gap != 0 {
			t.Fatalf("zero-config gap %d", r.Gap)
		}
	}
}

func TestInterleave(t *testing.T) {
	a := &SliceGenerator{Records: []Record{{Addr: 1}, {Addr: 2}}}
	b := &SliceGenerator{Records: []Record{{Addr: 10}, {Addr: 20}, {Addr: 30}}}
	g := &Interleave{Gens: []Generator{a, b}}
	var addrs []uint64
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		addrs = append(addrs, r.Addr)
	}
	want := []uint64{1, 10, 2, 20, 30}
	if len(addrs) != len(want) {
		t.Fatalf("got %v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Fatalf("interleave order %v, want %v", addrs, want)
		}
	}
}
