package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFileRoundTrip(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		cfg := SyntheticConfig{
			Ops: uint64(ops)%500 + 1, MeanGap: 7, WriteFrac: 0.4,
			Pattern: Hotspot, FootprintBytes: 1 << 20,
			HotFrac: 0.5, HotBytes: 4096, Seed: seed,
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		n, err := Copy(w, NewSynthetic(cfg))
		if err != nil || n != cfg.Ops || w.Count() != n {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		want := NewSynthetic(cfg)
		for {
			wr, ok := want.Next()
			gr, gok := r.Next()
			if ok != gok {
				return false
			}
			if !ok {
				break
			}
			if wr != gr {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE1234"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("AM"))); err == nil {
		t.Fatal("short header should fail")
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Record{Gap: 1, Op: Store, Addr: 64}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-3]))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("truncated record yielded")
	}
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", r.Err())
	}
}

func TestReaderInvalidOp(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(fileMagic[:])
	buf.Write(make([]byte, 4)) // gap
	buf.WriteByte(9)           // bogus op
	buf.Write(make([]byte, 8)) // addr
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Next(); ok {
		t.Fatal("invalid op yielded")
	}
	if r.Err() == nil {
		t.Fatal("invalid op should surface via Err")
	}
}

func TestReaderCleanEOF(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if r.Err() != nil {
		t.Fatalf("clean EOF should be nil Err, got %v", r.Err())
	}
	// Subsequent reads keep returning EOF.
	if _, err := r.Read(); err != io.EOF {
		t.Fatal("EOF not sticky")
	}
}

func TestReaderIsGenerator(t *testing.T) {
	var _ Generator = (*Reader)(nil)
}

func BenchmarkFileWrite(b *testing.B) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		b.Fatal(err)
	}
	rec := Record{Gap: 5, Op: Load, Addr: 0xDEADBEEF}
	b.SetBytes(recordBytes)
	for i := 0; i < b.N; i++ {
		if err := w.Write(rec); err != nil {
			b.Fatal(err)
		}
		if buf.Len() > 1<<24 {
			buf.Reset()
		}
	}
}
