package trace

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes through the trace-file reader: it must
// never panic, and every record it yields must be well-formed.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Record{Gap: 3, Op: Store, Addr: 128})
	w.Write(Record{Gap: 0, Op: Load, Addr: 1 << 40})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(fileMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		n := 0
		for {
			rec, ok := r.Next()
			if !ok {
				break
			}
			if rec.Op != Load && rec.Op != Store {
				t.Fatalf("reader yielded invalid op %d", rec.Op)
			}
			if n++; n > len(data) {
				t.Fatal("reader yielded more records than the input could hold")
			}
		}
	})
}
