package cluster

import (
	"testing"

	"authmem/internal/wire"
)

func TestGeometry(t *testing.T) {
	g := Geometry{Size: 1 << 20, StripeBlocks: 64}
	if g.StripeBytes() != 4096 {
		t.Fatalf("StripeBytes = %d", g.StripeBytes())
	}
	if g.Stripes() != 256 {
		t.Fatalf("Stripes = %d", g.Stripes())
	}
	if g.StripeOf(0) != 0 || g.StripeOf(4095) != 0 || g.StripeOf(4096) != 1 {
		t.Fatal("StripeOf misassigns boundary addresses")
	}
	lo, hi := g.StripeSpan(255)
	if lo != 255*4096 || hi != 1<<20 {
		t.Fatalf("StripeSpan(255) = [%d, %d)", lo, hi)
	}

	// A short tail stripe is clipped to the region.
	g2 := Geometry{Size: 4096 + 128, StripeBlocks: 64}
	if g2.Stripes() != 2 {
		t.Fatalf("tail: Stripes = %d", g2.Stripes())
	}
	if _, hi := g2.StripeSpan(1); hi != 4096+128 {
		t.Fatalf("tail: hi = %d", hi)
	}

	if err := (Geometry{Size: 1 << 20, StripeBlocks: 0}).Validate(); err == nil {
		t.Fatal("zero StripeBlocks accepted")
	}
	if err := (Geometry{Size: 1 << 20, StripeBlocks: wire.MaxSpanBlocks + 1}).Validate(); err == nil {
		t.Fatal("oversized stripe accepted")
	}
	if err := (Geometry{Size: 100, StripeBlocks: 1}).Validate(); err == nil {
		t.Fatal("unaligned size accepted")
	}
}

func TestOwnersDeterministicAndBalanced(t *testing.T) {
	names := []string{"a", "b", "c", "d", "e"}
	const stripes = 10_000
	load := map[string]int{}
	for s := uint64(0); s < stripes; s++ {
		o1 := Owners(s, names, 2)
		o2 := Owners(s, []string{"e", "d", "c", "b", "a"}, 2) // order-independent
		if len(o1) != 2 || o1[0] == o1[1] {
			t.Fatalf("stripe %d: owners %v", s, o1)
		}
		if o1[0] != o2[0] || o1[1] != o2[1] {
			t.Fatalf("stripe %d: placement depends on member order: %v vs %v", s, o1, o2)
		}
		for _, n := range o1 {
			load[n]++
		}
	}
	// 2*stripes placements over 5 nodes: expect ~4000 each; allow ±25%.
	for n, got := range load {
		if got < 3000 || got > 5000 {
			t.Fatalf("node %s owns %d stripe-replicas; placement badly skewed: %v", n, got, load)
		}
	}
}

// TestOwnersMinimalMovement checks the rendezvous property the rebalancer
// relies on: removing a node only moves stripes that node owned, and adding
// a node only moves stripes the new node wins.
func TestOwnersMinimalMovement(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	const stripes = 5_000
	moved := 0
	for s := uint64(0); s < stripes; s++ {
		before := Owners(s, names, 2)
		after := Owners(s, []string{"a", "b", "c"}, 2) // "d" leaves
		lost := map[string]bool{}
		for _, n := range before {
			lost[n] = true
		}
		for _, n := range after {
			if !lost[n] {
				// A node joined this stripe's replica set. That is only
				// legitimate if "d" was evicted from it.
				if before[0] != "d" && before[1] != "d" {
					t.Fatalf("stripe %d: %v -> %v moved without involving d", s, before, after)
				}
				moved++
			}
		}
	}
	if moved == 0 {
		t.Fatal("no stripes moved when a node left; d owned nothing?")
	}
	// d held ~1/2 of stripe-replicas... 2 slots over 4 nodes = expect
	// ~2500 affected stripes, certainly far fewer than all 2*5000 slots.
	if moved > 3500 {
		t.Fatalf("%d replica slots moved; rendezvous placement should move ~2500", moved)
	}

	// Clamping: r > len(names) returns everyone, best first.
	if got := Owners(0, []string{"x", "y"}, 5); len(got) != 2 {
		t.Fatalf("clamped owners: %v", got)
	}
	if Owners(0, nil, 2) != nil {
		t.Fatal("empty member list must yield no owners")
	}
}
