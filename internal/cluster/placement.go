// Package cluster holds the deterministic machinery under the public
// cluster package: stripe geometry and the rendezvous-hashed stripe-to-node
// placement. Everything here is pure computation — no I/O, no state — so
// every participant that knows the member list derives the same map.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"authmem/internal/wire"
)

// Geometry fixes how a logical region is cut into stripes. A stripe is the
// placement unit: all blocks of one stripe live on the same replica set,
// and rebalancing moves whole stripes.
type Geometry struct {
	// Size is the logical region size in bytes (a multiple of StripeBytes
	// is not required; the last stripe may be short).
	Size uint64
	// StripeBlocks is the stripe length in 64-byte blocks.
	StripeBlocks int
}

// StripeBytes returns the stripe length in bytes.
func (g Geometry) StripeBytes() uint64 {
	return uint64(g.StripeBlocks) * wire.BlockBytes
}

// Stripes returns how many stripes cover the region.
func (g Geometry) Stripes() uint64 {
	sb := g.StripeBytes()
	return (g.Size + sb - 1) / sb
}

// StripeOf maps a block-aligned address to its stripe index.
func (g Geometry) StripeOf(addr uint64) uint64 {
	return addr / g.StripeBytes()
}

// StripeSpan returns the address range [lo, hi) of stripe s, clipped to the
// region.
func (g Geometry) StripeSpan(s uint64) (lo, hi uint64) {
	sb := g.StripeBytes()
	lo = s * sb
	hi = min(lo+sb, g.Size)
	return lo, hi
}

// Validate rejects degenerate geometries.
func (g Geometry) Validate() error {
	if g.StripeBlocks <= 0 || g.StripeBlocks > wire.MaxSpanBlocks {
		return fmt.Errorf("cluster: StripeBlocks %d outside [1, %d]", g.StripeBlocks, wire.MaxSpanBlocks)
	}
	if g.Size == 0 || g.Size%wire.BlockBytes != 0 {
		return fmt.Errorf("cluster: size %d is not a positive multiple of %d", g.Size, wire.BlockBytes)
	}
	return nil
}

// Owners computes the replica set for one stripe by highest-random-weight
// (rendezvous) hashing: every (node, stripe) pair gets a deterministic
// score, and the R highest-scoring nodes own the stripe. The properties
// that matter:
//
//   - Every participant with the same member list derives the same owners,
//     with no coordination and no stored placement table.
//   - Adding or removing one node only moves stripes that gained or lost
//     that node — on average a 1/N fraction — because all other pairwise
//     scores are untouched. Whole-stripe transfer cost on membership
//     change is therefore minimal by construction.
//
// names must be non-empty; r is clamped to len(names). The result is
// ordered best-score-first, so result[0] is the stripe's primary.
func Owners(stripe uint64, names []string, r int) []string {
	if len(names) == 0 {
		return nil
	}
	r = min(r, len(names))
	type scored struct {
		name  string
		score uint64
	}
	sc := make([]scored, len(names))
	for i, n := range names {
		sc[i] = scored{n, score(n, stripe)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].name < sc[j].name // total order even on score ties
	})
	out := make([]string, r)
	for i := range out {
		out[i] = sc[i].name
	}
	return out
}

// score is the rendezvous weight of (name, stripe). FNV-1a is enough: the
// placement needs uniformity, not adversarial collision resistance —
// integrity comes from the per-node Merkle roots, not from where a stripe
// happens to live.
func score(name string, stripe uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [9]byte
	b[0] = 0 // separator: ("ab", 1) and ("a", ...) must not collide trivially
	for i := 0; i < 8; i++ {
		b[i+1] = byte(stripe >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}
