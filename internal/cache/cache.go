// Package cache implements a set-associative, write-back, write-allocate
// cache timing model with true-LRU replacement.
//
// The same model serves four roles in the simulated system: the per-core L1
// and L2 caches, the shared L3, and — centrally for this paper — the 32KB
// 8-way counter/MAC metadata cache inside the memory encryption engine
// (Table 1). The model tracks hit/miss/eviction behaviour, not data
// contents; functional data lives in the backing stores.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity. Must be Ways*LineBytes aligned.
	SizeBytes int
	// LineBytes is the line size (64 for everything in this system).
	LineBytes int
	// Ways is the set associativity.
	Ways int
}

// Stats counts cache events.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// HitRate returns hits / (hits+misses), or 0 when idle.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// AccessResult reports the effect of one access.
type AccessResult struct {
	// Hit is true when the line was present.
	Hit bool
	// Evicted is true when the fill displaced a valid line.
	Evicted bool
	// EvictedAddr is the line address displaced (valid when Evicted).
	EvictedAddr uint64
	// EvictedDirty is true when the displaced line needs a writeback.
	EvictedDirty bool
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // higher = more recently used
}

// Cache is a set-associative cache model. It is not safe for concurrent use;
// the simulator is single-threaded by design (deterministic).
type Cache struct {
	cfg      Config
	sets     [][]line
	numSets  uint64
	lineBits uint
	tick     uint64
	stats    Stats
}

// New validates the geometry and builds the cache.
func New(cfg Config) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: ways %d must be positive", cfg.Ways)
	}
	if cfg.SizeBytes <= 0 || cfg.SizeBytes%(cfg.LineBytes*cfg.Ways) != 0 {
		return nil, fmt.Errorf("cache: size %d not divisible by ways*line (%d)",
			cfg.SizeBytes, cfg.LineBytes*cfg.Ways)
	}
	// Set counts need not be a power of two (e.g. a 10MB 16-way L3 has
	// 10240 sets); indexing uses modulo arithmetic.
	numSets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	c := &Cache{
		cfg:     cfg,
		sets:    make([][]line, numSets),
		numSets: uint64(numSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
	}
	for b := cfg.LineBytes; b > 1; b >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// MustNew is New that panics on bad geometry.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineAddr := addr >> c.lineBits
	return lineAddr % c.numSets, lineAddr / c.numSets
}

// Access looks up addr, allocating on miss (write-allocate). write marks the
// line dirty. The result reports hit/miss and any eviction the fill caused.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	set, tag := c.index(addr)
	c.tick++
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			lines[i].lru = c.tick
			if write {
				lines[i].dirty = true
			}
			c.stats.Hits++
			return AccessResult{Hit: true}
		}
	}
	c.stats.Misses++
	// Fill: pick an invalid way, else the LRU way.
	victim := 0
	for i := range lines {
		if !lines[i].valid {
			victim = i
			break
		}
		if lines[i].lru < lines[victim].lru {
			victim = i
		}
	}
	res := AccessResult{}
	if lines[victim].valid {
		res.Evicted = true
		res.EvictedAddr = c.lineAddrOf(set, lines[victim].tag)
		res.EvictedDirty = lines[victim].dirty
		c.stats.Evictions++
		if lines[victim].dirty {
			c.stats.Writebacks++
		}
	}
	lines[victim] = line{tag: tag, valid: true, dirty: write, lru: c.tick}
	return res
}

// Probe reports whether addr is present without disturbing LRU or stats.
func (c *Cache) Probe(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line containing addr if present, returning whether it
// was dirty (the caller owns any writeback).
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set, tag := c.index(addr)
	lines := c.sets[set]
	for i := range lines {
		if lines[i].valid && lines[i].tag == tag {
			dirty = lines[i].dirty
			lines[i] = line{}
			return true, dirty
		}
	}
	return false, false
}

// Flush invalidates everything, returning the number of dirty lines dropped.
func (c *Cache) Flush() (dirty int) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid && c.sets[s][w].dirty {
				dirty++
			}
			c.sets[s][w] = line{}
		}
	}
	return dirty
}

// Stats returns cumulative event counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters without touching cache contents
// (used to exclude warmup from measurements).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) lineAddrOf(set, tag uint64) uint64 {
	return (tag*c.numSets + set) << c.lineBits
}

// Lines returns the total number of lines the cache can hold.
func (c *Cache) Lines() int { return int(c.numSets) * c.cfg.Ways }
