package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small(t testing.TB) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2}) // 8 sets
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{SizeBytes: 1024, LineBytes: 63, Ways: 2},
		{SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{SizeBytes: 0, LineBytes: 64, Ways: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) should fail", cfg)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad geometry")
		}
	}()
	MustNew(Config{SizeBytes: 1, LineBytes: 64, Ways: 1})
}

func TestTable1Geometries(t *testing.T) {
	// All of Table 1's caches must construct.
	for _, cfg := range []Config{
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},  // L1 + metadata cache
		{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8}, // L2
		{SizeBytes: 10 << 20, LineBytes: 64, Ways: 16}, // L3 10MB
	} {
		c, err := New(cfg)
		if err != nil {
			t.Fatalf("New(%+v): %v", cfg, err)
		}
		if c.Lines() != cfg.SizeBytes/cfg.LineBytes {
			t.Fatalf("Lines() = %d", c.Lines())
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := small(t)
	if r := c.Access(0x1000, false); r.Hit {
		t.Fatal("cold access should miss")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Fatal("second access should hit")
	}
	if r := c.Access(0x1038, false); !r.Hit {
		t.Fatal("same line, different offset should hit")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small(t) // 8 sets, 2 ways; same-set stride = 8*64 = 512
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	r := c.Access(d, false)
	if !r.Evicted || r.EvictedAddr != b {
		t.Fatalf("want eviction of %#x, got %+v", b, r)
	}
	if !c.Probe(a) || c.Probe(b) || !c.Probe(d) {
		t.Fatal("LRU state wrong after eviction")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c := small(t)
	c.Access(0, true) // dirty
	c.Access(512, false)
	r := c.Access(1024, false)
	if !r.Evicted || !r.EvictedDirty || r.EvictedAddr != 0 {
		t.Fatalf("want dirty eviction of 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Fatalf("stats %+v", c.Stats())
	}
}

func TestWriteHitMarksDirty(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(0, true) // hit, marks dirty
	c.Access(512, false)
	r := c.Access(1024, false)
	if !r.EvictedDirty {
		t.Fatal("line written on a hit must be evicted dirty")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := small(t)
	c.Access(0, false)
	c.Access(512, false) // set full; 0 is LRU
	if !c.Probe(0) {
		t.Fatal("probe should find 0")
	}
	// Probe must not refresh 0's LRU position: filling evicts 0.
	r := c.Access(1024, false)
	if r.EvictedAddr != 0 {
		t.Fatalf("probe disturbed LRU: evicted %#x", r.EvictedAddr)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("probe affected stats: %+v", st)
	}
}

func TestInvalidate(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("invalidate: present=%v dirty=%v", present, dirty)
	}
	if c.Probe(0) {
		t.Fatal("line survived invalidate")
	}
	present, _ = c.Invalidate(0x9999000)
	if present {
		t.Fatal("invalidate of absent line reported present")
	}
}

func TestFlush(t *testing.T) {
	c := small(t)
	c.Access(0, true)
	c.Access(64, false)
	c.Access(128, true)
	if d := c.Flush(); d != 2 {
		t.Fatalf("flush dropped %d dirty lines, want 2", d)
	}
	for _, a := range []uint64{0, 64, 128} {
		if c.Probe(a) {
			t.Fatalf("%#x survived flush", a)
		}
	}
}

func TestEvictedAddrRoundTrips(t *testing.T) {
	// The reported eviction address must map back to the same set/tag:
	// re-accessing it must evict the newly filled line, not a third one.
	f := func(addrSeed uint64) bool {
		c := MustNew(Config{SizeBytes: 4096, LineBytes: 64, Ways: 1})
		addr := addrSeed &^ 63
		c.Access(addr, false)
		conflict := addr + 4096 // same set, different tag (64 sets * 64B)
		r := c.Access(conflict, false)
		return r.Evicted && r.EvictedAddr == addr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetFitsHasNoEvictions(t *testing.T) {
	c := MustNew(Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	// Touch exactly the capacity once, then re-touch: all hits.
	for a := uint64(0); a < 32<<10; a += 64 {
		c.Access(a, false)
	}
	c.ResetStats()
	for a := uint64(0); a < 32<<10; a += 64 {
		if r := c.Access(a, false); !r.Hit {
			t.Fatalf("address %#x missed on re-touch", a)
		}
	}
	if st := c.Stats(); st.Misses != 0 || st.Evictions != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("idle hit rate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestRandomizedNoDuplicateLines(t *testing.T) {
	// Property: a line address never occupies two ways at once.
	c := MustNew(Config{SizeBytes: 2048, LineBytes: 64, Ways: 4})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(64)) * 64
		c.Access(addr, rng.Intn(2) == 0)
	}
	for s := range c.sets {
		seen := map[uint64]bool{}
		for _, l := range c.sets[s] {
			if !l.valid {
				continue
			}
			if seen[l.tag] {
				t.Fatalf("set %d holds tag %#x twice", s, l.tag)
			}
			seen[l.tag] = true
		}
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c := MustNew(Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	c.Access(0, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0, false)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c := MustNew(Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, false)
	}
}
