// Package sim wires workloads, the CPU model, and the secure memory
// controller into the paper's two headline experiments:
//
//   - MeasureReencryption drives an application's post-LLC writeback
//     stream through a counter scheme and reports re-encryptions per 10^9
//     cycles (Table 2).
//   - MeasureIPC runs an application's instruction traces on the 4-core
//     system over a full memory-encryption design point and reports IPC
//     (Figure 8).
package sim

import (
	"fmt"

	"authmem/internal/core"
	"authmem/internal/cpu"
	"authmem/internal/ctr"
	"authmem/internal/dram"
	"authmem/internal/trace"
	"authmem/internal/workload"
)

// ReencryptionResult is one Table 2 cell with its supporting events.
type ReencryptionResult struct {
	App        string
	Scheme     string
	Writebacks uint64
	Cycles     float64
	// PerBillionCycles is the Table 2 metric.
	PerBillionCycles float64
	Stats            ctr.Stats
}

// MeasureReencryption streams `writebacks` post-LLC writes of the given
// application through a counter scheme. The application's writeback rate
// converts the event count to the paper's per-10^9-cycles normalization.
func MeasureReencryption(app workload.App, kind ctr.Kind, writebacks uint64, seed int64) (ReencryptionResult, error) {
	if writebacks == 0 {
		return ReencryptionResult{}, fmt.Errorf("sim: need a positive writeback count")
	}
	if app.WB.PerKiloCycle <= 0 {
		return ReencryptionResult{}, fmt.Errorf("sim: app %q has no writeback rate", app.Name)
	}
	scheme, err := ctr.NewScheme(kind)
	if err != nil {
		return ReencryptionResult{}, err
	}
	gen := app.WritebackGen(seed)
	for i := uint64(0); i < writebacks; i++ {
		scheme.Touch(gen.Next())
	}
	cycles := float64(writebacks) * 1000 / app.WB.PerKiloCycle
	st := scheme.Stats()
	return ReencryptionResult{
		App:              app.Name,
		Scheme:           scheme.Name(),
		Writebacks:       writebacks,
		Cycles:           cycles,
		PerBillionCycles: float64(st.Reencryptions) * 1e9 / cycles,
		Stats:            st,
	}, nil
}

// DesignPoint names a memory-encryption configuration for Figure 8.
type DesignPoint struct {
	// Name labels the series in reports.
	Name string
	// Config is the controller design.
	Config core.Config
}

// StandardDesignPoints returns the Figure 8 series:
// the unprotected baseline IPC is normalized against, "bmt" is the
// Bonsai-Merkle-tree baseline (monolithic counters, inline MACs),
// "mac-ecc" adds only the §3 optimization, and "proposed" combines
// MAC-in-ECC with delta-encoded counters.
func StandardDesignPoints() []DesignPoint {
	noEnc := core.Default(ctr.Monolithic, core.MACInline)
	noEnc.DisableEncryption = true
	noEnc.KeyMaterial = nil
	return []DesignPoint{
		{Name: "no-encryption", Config: noEnc},
		{Name: "bmt", Config: core.Default(ctr.Monolithic, core.MACInline)},
		{Name: "mac-ecc", Config: core.Default(ctr.Monolithic, core.MACInECC)},
		{Name: "proposed", Config: core.Default(ctr.Delta, core.MACInECC)},
	}
}

// IPCResult is one Figure 8 measurement.
type IPCResult struct {
	App    string
	Design string
	// IPC is per-core IPC.
	IPC float64
	// CPU carries instruction/cycle/stall detail.
	CPU cpu.Result
	// Timing classifies the controller's DRAM transactions.
	Timing core.TimingStats
	// MetaHitRate is the counter/MAC cache hit rate.
	MetaHitRate float64
	// TreeLevels is the off-chip read depth (+1 for the counter block).
	TreeLevels int
	// DRAM carries device-level statistics (row-buffer behaviour,
	// refresh, average latency).
	DRAM dram.Stats
	// ReadLatencyP50/P95/P99 are DRAM read-latency percentile upper
	// bounds in CPU cycles.
	ReadLatencyP50 uint64
	ReadLatencyP95 uint64
	ReadLatencyP99 uint64
}

// MeasureIPC runs one application on the Table 1 system under the given
// design point. opsPerCore scales simulation length (memory operations per
// core); results are stable above ~10^5 for the bundled workloads.
func MeasureIPC(app workload.App, dp DesignPoint, opsPerCore uint64, seed int64) (IPCResult, error) {
	cfg := dp.Config
	// The protected region must cover the workload footprint.
	if cfg.RegionBytes < app.FootprintBytes {
		cfg.RegionBytes = app.FootprintBytes
	}
	mem := dram.MustNew(dram.DDR3_1600(4))
	tm, err := core.NewTimingModel(cfg, mem)
	if err != nil {
		return IPCResult{}, err
	}
	cpuCfg := cpu.Table1()
	gens := make([]trace.Generator, cpuCfg.Cores)
	for i := range gens {
		gens[i] = app.TraceGen(i, opsPerCore, seed)
	}
	sys, err := cpu.New(cpuCfg, gens, tm)
	if err != nil {
		return IPCResult{}, err
	}
	res := sys.Run()
	lat := mem.ReadLatencyHistogram()
	out := IPCResult{
		App:            app.Name,
		Design:         dp.Name,
		IPC:            res.IPC,
		CPU:            res,
		Timing:         tm.Stats(),
		MetaHitRate:    tm.MetadataCacheStats().HitRate(),
		DRAM:           mem.Stats(),
		ReadLatencyP50: lat.Percentile(0.50),
		ReadLatencyP95: lat.Percentile(0.95),
		ReadLatencyP99: lat.Percentile(0.99),
	}
	if !cfg.DisableEncryption {
		out.TreeLevels = tm.OffChipTreeLevels() + 1
	}
	return out, nil
}

// NormalizedIPC runs all design points for one application and returns
// IPCs normalized to the no-encryption baseline — the exact quantity
// Figure 8 plots.
func NormalizedIPC(app workload.App, points []DesignPoint, opsPerCore uint64, seed int64) (map[string]float64, []IPCResult, error) {
	var results []IPCResult
	var baseline float64
	for _, dp := range points {
		r, err := MeasureIPC(app, dp, opsPerCore, seed)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		if dp.Config.DisableEncryption {
			baseline = r.IPC
		}
	}
	if baseline == 0 {
		return nil, nil, fmt.Errorf("sim: design points must include a no-encryption baseline")
	}
	norm := make(map[string]float64, len(results))
	for _, r := range results {
		norm[r.Design] = r.IPC / baseline
	}
	return norm, results, nil
}
