package sim

import (
	"testing"

	"authmem/internal/core"
	"authmem/internal/ctr"
	"authmem/internal/workload"
)

func app(t testing.TB, name string) workload.App {
	t.Helper()
	a, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("unknown app %q", name)
	}
	return a
}

func TestMeasureReencryptionValidation(t *testing.T) {
	a := app(t, "canneal")
	if _, err := MeasureReencryption(a, ctr.Split, 0, 1); err == nil {
		t.Fatal("zero writebacks should fail")
	}
	bad := a
	bad.WB.PerKiloCycle = 0
	if _, err := MeasureReencryption(bad, ctr.Split, 100, 1); err == nil {
		t.Fatal("zero rate should fail")
	}
	if _, err := MeasureReencryption(a, ctr.Kind(99), 100, 1); err == nil {
		t.Fatal("unknown scheme should fail")
	}
}

func TestMeasureReencryptionNormalization(t *testing.T) {
	a := app(t, "canneal")
	r, err := MeasureReencryption(a, ctr.Split, 1_000_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "canneal" || r.Scheme != "split-7" {
		t.Fatalf("labels %q/%q", r.App, r.Scheme)
	}
	wantCycles := 1_000_000.0 * 1000 / a.WB.PerKiloCycle
	if r.Cycles != wantCycles {
		t.Fatalf("cycles %v, want %v", r.Cycles, wantCycles)
	}
	wantRate := float64(r.Stats.Reencryptions) * 1e9 / wantCycles
	if r.PerBillionCycles != wantRate {
		t.Fatalf("rate %v, want %v", r.PerBillionCycles, wantRate)
	}
}

// TestTable2Ordering verifies the qualitative content of Table 2 on a
// reduced writeback volume: per-app scheme orderings and the headline
// cross-scheme contrasts.
func TestTable2Ordering(t *testing.T) {
	const n = 4_000_000
	// The sweep-class split/delta contrast needs >=128 sequential passes
	// over the sweep region, hence the larger volume for facesim/dedup.
	const nSweep = 14_000_000
	measureN := func(name string, k ctr.Kind, vol uint64) float64 {
		r, err := MeasureReencryption(app(t, name), k, vol, 1)
		if err != nil {
			t.Fatal(err)
		}
		return r.PerBillionCycles
	}
	measure := func(name string, k ctr.Kind) float64 { return measureN(name, k, n) }

	// facesim & dedup: delta crushes split; facesim is the one app where
	// dual-length is worse than delta.
	for _, name := range []string{"facesim", "dedup"} {
		split, delta := measureN(name, ctr.Split, nSweep), measureN(name, ctr.Delta, nSweep)
		if delta*4 > split {
			t.Errorf("%s: delta %f not well below split %f", name, delta, split)
		}
	}
	if fd, fu := measureN("facesim", ctr.Delta, nSweep), measureN("facesim", ctr.DualLength, nSweep); fu <= fd {
		t.Errorf("facesim: dual %f should exceed delta %f", fu, fd)
	}
	if dd, du := measureN("dedup", ctr.Delta, nSweep), measureN("dedup", ctr.DualLength, nSweep); du >= dd {
		t.Errorf("dedup: dual %f should be below delta %f", du, dd)
	}

	// canneal & vips: delta gains nothing over split (within noise),
	// dual-length is somewhat better.
	for _, name := range []string{"canneal", "vips"} {
		split, delta := measure(name, ctr.Split), measure(name, ctr.Delta)
		if delta < split*0.9 || delta > split*1.1 {
			t.Errorf("%s: delta %f should match split %f", name, delta, split)
		}
		if dual := measure(name, ctr.DualLength); dual >= split {
			t.Errorf("%s: dual %f should be below split %f", name, dual, split)
		}
	}

	// Compute-bound apps: nothing re-encrypts.
	for _, name := range []string{"swaptions", "blackscholes", "bodytrack"} {
		for _, k := range []ctr.Kind{ctr.Split, ctr.Delta, ctr.DualLength} {
			if rate := measure(name, k); rate != 0 {
				t.Errorf("%s/%v: rate %f, want 0", name, k, rate)
			}
		}
	}

	// Monolithic counters never re-encrypt anywhere.
	if rate := measure("facesim", ctr.Monolithic); rate != 0 {
		t.Errorf("monolithic re-encrypted: %f", rate)
	}
}

func TestStandardDesignPoints(t *testing.T) {
	pts := StandardDesignPoints()
	if len(pts) != 4 {
		t.Fatalf("%d design points, want 4", len(pts))
	}
	if !pts[0].Config.DisableEncryption {
		t.Fatal("first point should be the no-encryption baseline")
	}
	for _, p := range pts[1:] {
		if p.Config.DisableEncryption {
			t.Fatalf("%s: encryption disabled", p.Name)
		}
		if err := p.Config.Validate(); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
	}
	if pts[3].Config.Scheme != ctr.Delta || pts[3].Config.Placement != core.MACInECC {
		t.Fatal("proposed point should be delta + MAC-in-ECC")
	}
}

// TestFigure8Shape runs the full pipeline on one memory-bound and one
// compute-bound app and checks the paper's qualitative result: encryption
// costs IPC, each optimization recovers some, and compute-bound apps are
// unaffected.
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation")
	}
	points := StandardDesignPoints()

	norm, results, err := NormalizedIPC(app(t, "canneal"), points, 150_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d results", len(results))
	}
	if !(norm["bmt"] < norm["mac-ecc"] && norm["mac-ecc"] < norm["proposed"] && norm["proposed"] < 1) {
		t.Errorf("canneal ordering violated: %+v", norm)
	}
	if norm["bmt"] > 0.9 {
		t.Errorf("canneal bmt %.3f: encryption should hurt a memory-bound app", norm["bmt"])
	}

	// Longer run for the compute-bound app: short runs are cold-miss
	// dominated, which overstates encryption impact.
	flat, _, err := NormalizedIPC(app(t, "swaptions"), points, 500_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if flat["proposed"] < 0.97 {
		t.Errorf("swaptions proposed %.3f: compute-bound app should be unaffected", flat["proposed"])
	}
	if flat["bmt"] < 0.85 {
		t.Errorf("swaptions bmt %.3f: impact should be small", flat["bmt"])
	}
}

func TestMeasureIPCDetail(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation")
	}
	points := StandardDesignPoints()
	r, err := MeasureIPC(app(t, "facesim"), points[1], 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != "facesim" || r.Design != "bmt" {
		t.Fatalf("labels %q/%q", r.App, r.Design)
	}
	if r.IPC <= 0 || r.CPU.Instructions == 0 {
		t.Fatalf("empty result %+v", r)
	}
	if r.TreeLevels != 5 {
		t.Fatalf("bmt tree levels %d, want 5", r.TreeLevels)
	}
	if r.Timing.MACReads == 0 {
		t.Fatal("bmt should fetch MACs")
	}

	rp, err := MeasureIPC(app(t, "facesim"), points[3], 50_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rp.TreeLevels != 4 {
		t.Fatalf("proposed tree levels %d, want 4", rp.TreeLevels)
	}
	if rp.Timing.MACReads != 0 {
		t.Fatal("MAC-in-ECC should not fetch MACs")
	}
	if rp.MetaHitRate <= r.MetaHitRate {
		t.Error("proposed design should improve the metadata cache hit rate")
	}
}

// TestFigure8StableAcrossSeeds guards the headline ordering against
// seed-level flakiness: for three independent trace seeds, the design-point
// ordering must hold every time.
func TestFigure8StableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation")
	}
	points := StandardDesignPoints()
	a := app(t, "ferret")
	for seed := int64(1); seed <= 3; seed++ {
		norm, _, err := NormalizedIPC(a, points, 120_000, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !(norm["bmt"] < norm["mac-ecc"] && norm["mac-ecc"] < norm["proposed"]) {
			t.Errorf("seed %d: ordering violated: %+v", seed, norm)
		}
	}
}

// TestTable2StableAcrossSeeds does the same for the re-encryption contrast.
func TestTable2StableAcrossSeeds(t *testing.T) {
	a := app(t, "canneal")
	for seed := int64(1); seed <= 3; seed++ {
		split, err := MeasureReencryption(a, ctr.Split, 3_000_000, seed)
		if err != nil {
			t.Fatal(err)
		}
		dual, err := MeasureReencryption(a, ctr.DualLength, 3_000_000, seed)
		if err != nil {
			t.Fatal(err)
		}
		if dual.PerBillionCycles >= split.PerBillionCycles {
			t.Errorf("seed %d: dual %f not below split %f", seed,
				dual.PerBillionCycles, split.PerBillionCycles)
		}
	}
}

// TestProposedUsesLessDRAMEnergy checks §4.1's efficiency claim end to end:
// for identical work, the proposed design consumes less DRAM dynamic energy
// than the BMT baseline (fewer transactions, fewer activations).
func TestProposedUsesLessDRAMEnergy(t *testing.T) {
	if testing.Short() {
		t.Skip("full-system simulation")
	}
	points := StandardDesignPoints()
	a := app(t, "canneal")
	_, results, err := NormalizedIPC(a, points, 120_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	energy := map[string]float64{}
	for _, r := range results {
		energy[r.Design] = r.DRAM.EnergyMJ()
	}
	if energy["proposed"] >= energy["bmt"] {
		t.Fatalf("proposed %.3f mJ not below bmt %.3f mJ", energy["proposed"], energy["bmt"])
	}
	if energy["mac-ecc"] >= energy["bmt"] {
		t.Fatalf("mac-ecc %.3f mJ not below bmt %.3f mJ", energy["mac-ecc"], energy["bmt"])
	}
}

func TestNormalizedIPCRequiresBaseline(t *testing.T) {
	pts := StandardDesignPoints()[1:2] // bmt only
	if _, _, err := NormalizedIPC(app(t, "swaptions"), pts, 10_000, 1); err == nil {
		t.Fatal("missing baseline should fail")
	}
}

func BenchmarkMeasureReencryption(b *testing.B) {
	a, _ := workload.ByName("canneal")
	for i := 0; i < b.N; i++ {
		if _, err := MeasureReencryption(a, ctr.Delta, 1_000_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}
