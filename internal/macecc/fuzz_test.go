package macecc

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzVerifyAndCorrect hammers the flip-and-check corrector with arbitrary
// corruption of both the ciphertext and the ECC-lane meta word, at every
// correction budget, and enforces the scheme's two safety properties:
//
//  1. No silent miscorrection: whenever VerifyAndCorrect reports OK, the
//     (possibly repaired) ciphertext must be bit-identical to the sealed
//     original. Returning OK with different bytes would be exactly the
//     Figure 3 "miscorrected" cell the MAC exists to empty.
//  2. No mutation on failure: when it reports Uncorrectable, the
//     ciphertext must be exactly as corrupted — a machine-check path must
//     not scribble on the evidence.
//
// The corruption spec is raw fuzz bytes: each 2-byte little-endian chunk
// addresses one bit of the 576-bit (ciphertext + meta) surface. Duplicate
// positions cancel, so the fuzzer also explores the "corruption that undoes
// itself" edge.
func FuzzVerifyAndCorrect(f *testing.F) {
	f.Add([]byte{}, uint64(0), uint64(1))
	f.Add([]byte{0x00, 0x00}, uint64(64), uint64(2))                              // single data bit
	f.Add([]byte{0x07, 0x00, 0x3A, 0x01}, uint64(128), uint64(3))                 // two data bits
	f.Add([]byte{0x00, 0x02, 0x10, 0x02}, uint64(192), uint64(9))                 // meta bits (tag)
	f.Add([]byte{0x38, 0x02, 0x3F, 0x02}, uint64(256), uint64(1))                 // Hamming/check bits
	f.Add([]byte{0x01, 0x00, 0x01, 0x00}, uint64(0), uint64(5))                   // cancelling pair
	f.Add(bytes.Repeat([]byte{0x11, 0x00, 0x99, 0x01}, 4), uint64(64), uint64(7)) // burst

	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*11 + 5)
	}

	f.Fuzz(func(t *testing.T, spec []byte, addr, counter uint64) {
		addr &= 0xFFFFFF
		for budget := 0; budget <= 2; budget++ {
			v := testVerifier(t, budget)
			original, meta := protect(t, v, int64(counter)^0x5EED, addr, counter)

			// Apply the corruption spec across ciphertext and meta.
			ct := append([]byte(nil), original...)
			for i := 0; i+1 < len(spec); i += 2 {
				bit := int(uint16(spec[i]) | uint16(spec[i+1])<<8)
				bit %= blockBits + 64
				if bit < blockBits {
					ct[bit/8] ^= 1 << uint(bit%8)
				} else {
					meta = meta.Flip(bit - blockBits)
				}
			}
			corrupted := append([]byte(nil), ct...)

			out, err := v.VerifyAndCorrect(ct, &meta, addr, counter)
			if err != nil {
				t.Fatalf("budget %d: unexpected error: %v", budget, err)
			}
			switch out.Status {
			case OK:
				if !bytes.Equal(ct, original) {
					t.Fatalf("budget %d: OK with wrong ciphertext (silent miscorrection)\nspec %x", budget, spec)
				}
				if out.CorrectedDataBits > budget {
					t.Fatalf("budget %d: corrected %d data bits", budget, out.CorrectedDataBits)
				}
			case Uncorrectable:
				if !bytes.Equal(ct, original) && !bytes.Equal(ct, corrupted) {
					t.Fatalf("budget %d: Uncorrectable mutated the ciphertext\nspec %x", budget, spec)
				}
			default:
				t.Fatalf("budget %d: unknown status %v", budget, out.Status)
			}
		}
	})
}

// TestFuzzSeedsExerciseBothStatuses keeps the fuzz harness honest: the
// committed corpus must reach both the corrected and the uncorrectable
// paths even when run as a plain test (CI fuzz smoke runs are short).
func TestFuzzSeedsExerciseBothStatuses(t *testing.T) {
	v := testVerifier(t, 2)
	original, meta := protect(t, v, 1, 64, 9)

	rng := rand.New(rand.NewSource(4))
	var sawOK, sawUncorrectable bool
	for trial := 0; trial < 200; trial++ {
		ct := append([]byte(nil), original...)
		m := meta
		for i := 0; i < 1+rng.Intn(6); i++ {
			bit := rng.Intn(blockBits)
			ct[bit/8] ^= 1 << uint(bit%8)
		}
		out, err := v.VerifyAndCorrect(ct, &m, 64, 9)
		if err != nil {
			t.Fatal(err)
		}
		switch out.Status {
		case OK:
			sawOK = true
			if !bytes.Equal(ct, original) {
				t.Fatalf("trial %d: silent miscorrection", trial)
			}
		case Uncorrectable:
			sawUncorrectable = true
		}
	}
	if !sawOK || !sawUncorrectable {
		t.Fatalf("coverage hole: ok=%v uncorrectable=%v", sawOK, sawUncorrectable)
	}
}
