package macecc

import "authmem/internal/ecc"

// The "macsecded" codec re-homes this package's Verifier behind the
// pluggable ecc.Codec registry: the paper's §3 layout — 56-bit MAC + 7
// SEC-DED(63,56) bits + 1 scrub parity bit packed into the 8-byte ECC
// lane — becomes one MAC-carrying codec among peers, selected by name
// instead of hard-wired into the engine's placement switch.

// codec is the ecc.MACCodec adapter over PackMeta/Verifier.
type codec struct{}

func (codec) Name() string     { return "macsecded" }
func (codec) CheckBytes() int  { return 8 }
func (codec) CarriesMAC() bool { return true }

func (codec) PackLane(tag uint64, ciphertext []byte) uint64 {
	return uint64(PackMeta(tag, ciphertext))
}

func (codec) NewVerifier(key ecc.MACKey, correctBits int) (ecc.LaneVerifier, error) {
	v, err := NewVerifier(key, correctBits)
	if err != nil {
		return nil, err
	}
	return laneVerifier{v}, nil
}

// laneVerifier adapts *Verifier to ecc.LaneVerifier: the lane travels as a
// plain uint64 across the interface and is a Meta inside.
type laneVerifier struct{ v *Verifier }

func (l laneVerifier) VerifyAndCorrect(ciphertext []byte, lane, addr, counter uint64) (uint64, ecc.LaneOutcome, error) {
	m := Meta(lane)
	out, err := l.v.VerifyAndCorrect(ciphertext, &m, addr, counter)
	return uint64(m), ecc.LaneOutcome{
		OK:                out.Status == OK,
		CorrectedDataBits: out.CorrectedDataBits,
		CorrectedMACBits:  out.CorrectedMACBits,
		HardwareChecks:    out.HardwareChecks,
	}, err
}

func (l laneVerifier) ScrubData(ciphertext []byte, lane uint64) bool {
	return Scrub(ciphertext, Meta(lane))
}

func (l laneVerifier) ScrubLane(lane uint64) bool {
	return ScrubMeta(Meta(lane))
}

func init() {
	ecc.Register(codec{})
}
