package macecc

import (
	"bytes"
	"math/rand"
	"testing"

	"authmem/internal/ecc"
	"authmem/internal/mac"
)

func testKey(t testing.TB) *mac.Key {
	t.Helper()
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*11 + 5)
	}
	k, err := mac.NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testVerifier(t testing.TB, correctBits int) *Verifier {
	t.Helper()
	v, err := NewVerifier(testKey(t), correctBits)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// protect builds a (ciphertext, meta) pair for a random block.
func protect(t testing.TB, v *Verifier, seed int64, addr, counter uint64) ([]byte, Meta) {
	t.Helper()
	ct := make([]byte, BlockSize)
	rand.New(rand.NewSource(seed)).Read(ct)
	tag, err := v.key.Tag(ct, addr, counter)
	if err != nil {
		t.Fatal(err)
	}
	return ct, PackMeta(tag, ct)
}

func TestNewVerifierValidation(t *testing.T) {
	if _, err := NewVerifier(nil, 2); err == nil {
		t.Fatal("nil key should fail")
	}
	if _, err := NewVerifier(testKey(t), 3); err == nil {
		t.Fatal("budget 3 should fail")
	}
	if _, err := NewVerifier(testKey(t), -1); err == nil {
		t.Fatal("budget -1 should fail")
	}
}

func TestMetaLayout(t *testing.T) {
	ct := make([]byte, BlockSize)
	ct[0] = 0x01 // odd parity
	tag := uint64(0x00DE_ADBE_EFCA_FEBA)
	m := PackMeta(tag, ct)
	if m.Tag() != tag&mac.TagMask {
		t.Fatalf("Tag() = %#x", m.Tag())
	}
	if m.Check() != ecc.MAC63.Encode(tag&mac.TagMask) {
		t.Fatalf("Check() = %#x", m.Check())
	}
	if m.ScrubParity() != 1 {
		t.Fatalf("ScrubParity() = %d, want 1", m.ScrubParity())
	}
	// All 64 bits accounted for: reconstructing from parts is lossless.
	rebuilt := Meta(m.Tag() | uint64(m.Check())<<56 | uint64(m.ScrubParity())<<63)
	if rebuilt != m {
		t.Fatalf("layout not bijective: %#x vs %#x", rebuilt, m)
	}
}

func TestCleanBlockVerifies(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 1, 0x1000, 7)
	out, err := v.VerifyAndCorrect(ct, &meta, 0x1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || out.CorrectedDataBits != 0 || out.CorrectedMACBits != 0 {
		t.Fatalf("outcome %+v", out)
	}
	if out.HardwareChecks != 1 {
		t.Fatalf("clean pass cost %d checks", out.HardwareChecks)
	}
}

func TestBlockSizeValidation(t *testing.T) {
	v := testVerifier(t, 2)
	var meta Meta
	if _, err := v.VerifyAndCorrect(make([]byte, 32), &meta, 0, 0); err == nil {
		t.Fatal("short block should fail")
	}
}

func TestCorrectsEverySingleDataBit(t *testing.T) {
	v := testVerifier(t, 1)
	ct, meta := protect(t, v, 2, 0x40, 3)
	orig := append([]byte(nil), ct...)
	for bit := 0; bit < blockBits; bit += 13 { // sampled for speed
		bad := append([]byte(nil), ct...)
		bad[bit/8] ^= 1 << uint(bit%8)
		m := meta
		out, err := v.VerifyAndCorrect(bad, &m, 0x40, 3)
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != OK || out.CorrectedDataBits != 1 {
			t.Fatalf("bit %d: outcome %+v", bit, out)
		}
		if !bytes.Equal(bad, orig) {
			t.Fatalf("bit %d: data not restored", bit)
		}
		if out.HardwareChecks > MaxSingleChecks {
			t.Fatalf("bit %d: %d checks exceeds single budget", bit, out.HardwareChecks)
		}
	}
}

func TestCorrectsDoubleDataBits(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 3, 0x80, 9)
	orig := append([]byte(nil), ct...)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 40; trial++ {
		i := rng.Intn(blockBits)
		j := rng.Intn(blockBits)
		for j == i {
			j = rng.Intn(blockBits)
		}
		bad := append([]byte(nil), ct...)
		bad[i/8] ^= 1 << uint(i%8)
		bad[j/8] ^= 1 << uint(j%8)
		m := meta
		out, err := v.VerifyAndCorrect(bad, &m, 0x80, 9)
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != OK || out.CorrectedDataBits != 2 {
			t.Fatalf("bits (%d,%d): outcome %+v", i, j, out)
		}
		if !bytes.Equal(bad, orig) {
			t.Fatalf("bits (%d,%d): data not restored", i, j)
		}
		if out.HardwareChecks > MaxSingleChecks+MaxDoubleChecks {
			t.Fatalf("checks %d out of range", out.HardwareChecks)
		}
	}
}

// TestDoubleErrorInOneWordCorrected is the Figure 3 discriminator: standard
// SEC-DED cannot correct two flips inside one 8-byte word, but MAC-based
// flip-and-check can.
func TestDoubleErrorInOneWordCorrected(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 5, 0, 0)
	orig := append([]byte(nil), ct...)
	ct[8] ^= 0x05 // two flips in word 1

	// Standard SEC-DED: detected, not corrected.
	check, _ := ecc.EncodeBlock(orig)
	seced := append([]byte(nil), ct...)
	outStd, _ := ecc.DecodeBlock(seced, &check)
	if outStd.Clean() {
		t.Fatal("SEC-DED should detect-not-correct a double flip in one word")
	}

	// MAC-in-ECC: corrected.
	out, err := v.VerifyAndCorrect(ct, &meta, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || out.CorrectedDataBits != 2 || !bytes.Equal(ct, orig) {
		t.Fatalf("outcome %+v", out)
	}
}

func TestSingleMACBitFlipCorrected(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 6, 0x100, 2)
	for bit := 0; bit < 63; bit += 5 { // MAC + Hamming bits (not scrub)
		m := meta.Flip(bit)
		out, err := v.VerifyAndCorrect(ct, &m, 0x100, 2)
		if err != nil {
			t.Fatal(err)
		}
		if out.Status != OK || out.CorrectedMACBits != 1 {
			t.Fatalf("meta bit %d: outcome %+v", bit, out)
		}
		if m.Tag() != meta.Tag() || m.Check() != meta.Check() {
			t.Fatalf("meta bit %d: MAC not restored", bit)
		}
	}
}

func TestDoubleMACBitFlipUncorrectable(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 7, 0x140, 1)
	m := meta.Flip(3).Flip(44)
	out, err := v.VerifyAndCorrect(ct, &m, 0x140, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatalf("double MAC corruption: outcome %+v", out)
	}
}

func TestMACFlipPlusDataFlipCorrected(t *testing.T) {
	// Figure 3's combined case: Hamming fixes the MAC, flip-and-check
	// fixes the data.
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 8, 0x180, 4)
	orig := append([]byte(nil), ct...)
	ct[20] ^= 0x08
	m := meta.Flip(30)
	out, err := v.VerifyAndCorrect(ct, &m, 0x180, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || out.CorrectedMACBits != 1 || out.CorrectedDataBits != 1 {
		t.Fatalf("outcome %+v", out)
	}
	if !bytes.Equal(ct, orig) {
		t.Fatal("data not restored")
	}
}

func TestTripleDataFlipDetectedNotCorrected(t *testing.T) {
	// "Full error detection" on data (§3.3): any flip count is detected;
	// beyond the budget it is reported uncorrectable.
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 9, 0x1C0, 5)
	ct[0] ^= 0x01
	ct[17] ^= 0x10
	ct[44] ^= 0x80
	out, err := v.VerifyAndCorrect(ct, &meta, 0x1C0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatalf("triple flip: outcome %+v", out)
	}
	if out.HardwareChecks != MaxSingleChecks+MaxDoubleChecks {
		t.Fatalf("exhaustive search cost %d", out.HardwareChecks)
	}
}

func TestManyBitCorruptionDetected(t *testing.T) {
	// A cold-boot style massive corruption: always detected (budget 0 =>
	// detection only, no search cost beyond the standard check).
	v := testVerifier(t, 0)
	ct, meta := protect(t, v, 10, 0x200, 6)
	rand.New(rand.NewSource(11)).Read(ct[:32])
	out, err := v.VerifyAndCorrect(ct, &meta, 0x200, 6)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatalf("outcome %+v", out)
	}
	if out.HardwareChecks != 1 {
		t.Fatalf("detection-only cost %d checks", out.HardwareChecks)
	}
}

func TestTamperDetected(t *testing.T) {
	// Security, not reliability: replacing the ciphertext wholesale (with
	// a stale or attacker-chosen value) must never verify.
	v := testVerifier(t, 2)
	_, meta := protect(t, v, 12, 0x240, 8)
	forged := make([]byte, BlockSize)
	rand.New(rand.NewSource(13)).Read(forged)
	out, err := v.VerifyAndCorrect(forged, &meta, 0x240, 8)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatal("forged block verified")
	}
}

func TestWrongCounterRejected(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 14, 0x280, 31)
	out, err := v.VerifyAndCorrect(ct, &meta, 0x280, 30) // stale counter
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatal("block verified under the wrong counter")
	}
}

func TestCorrectionBudgetZeroDetectsSingle(t *testing.T) {
	v := testVerifier(t, 0)
	ct, meta := protect(t, v, 15, 0x2C0, 2)
	ct[5] ^= 0x01
	out, err := v.VerifyAndCorrect(ct, &meta, 0x2C0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatal("budget-0 verifier corrected data")
	}
}

func TestCorrectionBudgetOneRejectsDouble(t *testing.T) {
	v := testVerifier(t, 1)
	ct, meta := protect(t, v, 16, 0x300, 2)
	ct[5] ^= 0x03
	out, err := v.VerifyAndCorrect(ct, &meta, 0x300, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatal("budget-1 verifier corrected a double flip")
	}
	if out.HardwareChecks != MaxSingleChecks {
		t.Fatalf("budget-1 exhaustive cost %d", out.HardwareChecks)
	}
}

func TestScrub(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 17, 0x340, 1)
	if !Scrub(ct, meta) {
		t.Fatal("clean block failed scrub")
	}
	ct[9] ^= 0x04
	if Scrub(ct, meta) {
		t.Fatal("single flip passed scrub")
	}
	ct[9] ^= 0x40 // second flip: parity is blind to even flip counts
	if !Scrub(ct, meta) {
		t.Fatal("scrub parity should miss even flip counts")
	}
}

func TestScrubRefreshedAfterCorrection(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 18, 0x380, 3)
	ct[2] ^= 0x02
	if _, err := v.VerifyAndCorrect(ct, &meta, 0x380, 3); err != nil {
		t.Fatal(err)
	}
	if !Scrub(ct, meta) {
		t.Fatal("scrub bit stale after correction")
	}
}

func TestPairRank(t *testing.T) {
	// The rank of the first pair is 1; the last pair is C(512,2).
	if pairRank(0, 1) != 1 {
		t.Fatalf("pairRank(0,1) = %d", pairRank(0, 1))
	}
	if pairRank(blockBits-2, blockBits-1) != MaxDoubleChecks {
		t.Fatalf("pairRank(last) = %d, want %d",
			pairRank(blockBits-2, blockBits-1), MaxDoubleChecks)
	}
	// Strictly increasing in lexicographic order across a sample.
	prev := 0
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			r := pairRank(i, j)
			if r <= prev {
				t.Fatalf("pairRank(%d,%d)=%d not increasing", i, j, r)
			}
			prev = r
		}
	}
}

func TestStatusString(t *testing.T) {
	if OK.String() != "ok" || Uncorrectable.String() != "uncorrectable" {
		t.Fatal("status names wrong")
	}
	if Status(9).String() != "Status(9)" {
		t.Fatal("unknown status name wrong")
	}
}

func BenchmarkVerifyClean(b *testing.B) {
	v := testVerifier(b, 2)
	ct, meta := protect(b, v, 20, 0x400, 1)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := meta
		if _, err := v.VerifyAndCorrect(ct, &m, 0x400, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrectSingleBit(b *testing.B) {
	v := testVerifier(b, 2)
	ct, meta := protect(b, v, 21, 0x440, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bad := append([]byte(nil), ct...)
		bad[37] ^= 0x10
		m := meta
		if _, err := v.VerifyAndCorrect(bad, &m, 0x440, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrectDoubleBit(b *testing.B) {
	v := testVerifier(b, 2)
	ct, meta := protect(b, v, 22, 0x480, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bad := append([]byte(nil), ct...)
		bad[3] ^= 0x01
		bad[60] ^= 0x80
		m := meta
		if _, err := v.VerifyAndCorrect(bad, &m, 0x480, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScrubMeta(t *testing.T) {
	v := testVerifier(t, 2)
	ct, meta := protect(t, v, 30, 0x500, 2)
	_ = ct
	if !ScrubMeta(meta) {
		t.Fatal("clean meta failed scrub")
	}
	// Any single flip in the 63 protected bits toggles the parity.
	for bit := 0; bit < 63; bit++ {
		if ScrubMeta(meta.Flip(bit)) {
			t.Fatalf("meta bit %d flip passed scrub", bit)
		}
	}
	// The data scrub bit (bit 63) is outside the MAC codeword.
	if !ScrubMeta(meta.Flip(63)) {
		t.Fatal("data scrub bit should not affect meta scrub")
	}
	// Even-weight faults evade the parity screen, by design.
	if !ScrubMeta(meta.Flip(3).Flip(44)) {
		t.Fatal("double flip should evade the meta parity screen")
	}
}
