// Package macecc implements the paper's §3 proposal: storing a 56-bit MAC
// plus a 7-bit Hamming code in the 8 ECC bytes an ECC DIMM reserves per
// 64-byte block, so the same bits provide authentication, error detection,
// and error correction.
//
// Layout of the 64 ECC bits (Figure 2):
//
//	bits  0..55  56-bit Carter-Wegman MAC over the ciphertext
//	bits 56..62  SEC-DED(63,56) Hamming check bits over the MAC
//	bit     63   even parity over the 512 ciphertext bits (scrub bit)
//
// Error handling responsibilities:
//
//   - MAC bits flip: the Hamming code corrects a single flip and detects a
//     double, without touching the integrity tree (§3.3 "Corrupted MACs").
//   - Data bits flip: the MAC check fails; brute-force flip-and-check
//     (§3.4) re-tests the MAC with each candidate correction. Any number
//     of data flips is *detected*; up to CorrectBits flips are corrected.
//   - The scrub bit lets patrol scrubbers detect odd-weight data errors
//     without recomputing MACs (§3.3 "Enabling Efficient Scrubbing").
//
// The brute-force search is algebraically accelerated: flipping ciphertext
// bit b of word w shifts the polynomial hash by a key-dependent constant
// contrib[w][b], so candidate corrections are table lookups rather than full
// MAC recomputations. The HardwareChecks cost reported to the timing model
// still reflects what a sequential flip-and-check engine would do, which is
// how §3.4 prices the scheme (one GF-multiply MAC check per cycle).
package macecc

import (
	"fmt"

	"authmem/internal/ecc"
	"authmem/internal/gf64"
	"authmem/internal/mac"
)

// BlockSize is the protected data granularity.
const BlockSize = 64

// blockBits is the number of data bits per block.
const blockBits = BlockSize * 8

// MaxSingleChecks is the worst-case flip-and-check count for single-bit
// correction (§3.4: 512).
const MaxSingleChecks = blockBits

// MaxDoubleChecks is the worst-case flip-and-check count for double-bit
// correction (§3.4: 512 choose 2 = 130,816).
const MaxDoubleChecks = blockBits * (blockBits - 1) / 2

// Meta is the packed 8-byte ECC-lane payload for one block.
type Meta uint64

// PackMeta assembles the ECC-lane bits from a MAC tag and the ciphertext
// (for the scrub parity bit).
func PackMeta(tag uint64, ciphertext []byte) Meta {
	tag &= mac.TagMask
	check := uint64(ecc.MAC63.Encode(tag)) // 7 bits
	scrub := uint64(ecc.ParityBit(ciphertext))
	return Meta(tag | check<<56 | scrub<<63)
}

// Tag returns the stored 56-bit MAC tag.
func (m Meta) Tag() uint64 { return uint64(m) & mac.TagMask }

// Check returns the stored 7 Hamming check bits.
func (m Meta) Check() uint16 { return uint16(uint64(m) >> 56 & 0x7F) }

// ScrubParity returns the stored ciphertext parity bit.
func (m Meta) ScrubParity() uint8 { return uint8(uint64(m) >> 63) }

// withTag returns a Meta with the MAC tag and its Hamming bits replaced.
func (m Meta) withTag(tag uint64) Meta {
	tag &= mac.TagMask
	check := uint64(ecc.MAC63.Encode(tag))
	return Meta(uint64(m)&(1<<63) | tag | check<<56)
}

// Flip returns the Meta with one of its 64 stored bits flipped; the fault
// injector uses it to model ECC-chip faults.
func (m Meta) Flip(bit int) Meta {
	return m ^ Meta(uint64(1)<<uint(bit&63))
}

// Status classifies the outcome of VerifyAndCorrect.
type Status int

const (
	// OK: the block verified, possibly after corrections.
	OK Status = iota
	// Uncorrectable: an error was detected but exceeds the correction
	// budget (or the MAC itself is doubly corrupted). Data cannot be
	// trusted; hardware would raise a machine-check.
	Uncorrectable
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Outcome reports what VerifyAndCorrect did.
type Outcome struct {
	Status Status
	// CorrectedDataBits is the number of ciphertext bits repaired.
	CorrectedDataBits int
	// CorrectedMACBits is the number of MAC/Hamming bits repaired.
	CorrectedMACBits int
	// HardwareChecks is the number of MAC evaluations a sequential
	// flip-and-check engine would have performed (the §3.4 cost model);
	// 1 for a clean pass.
	HardwareChecks int
}

// Key is the slice of the MAC surface the verifier needs: tag computation
// for the integrity check, and the secret hash point for the per-bit
// contribution tables. *mac.Key and every crypto.Backend MAC satisfy it, so
// the verifier is backend-agnostic.
type Key interface {
	Tag(ciphertext []byte, addr, counter uint64) (uint64, error)
	HashPoint() uint64
}

// Verifier verifies MAC-in-ECC blocks and corrects faults.
type Verifier struct {
	key Key
	// CorrectBits bounds the flip-and-check search: 0 disables data
	// correction (detection only), 1 corrects single flips, 2 also
	// corrects double flips. The paper evaluates 2 as the practical
	// limit (§3.4).
	CorrectBits int

	// contrib[w][b] is the tag-space effect of flipping bit b of
	// ciphertext word w; precomputed from the hash key.
	contrib [BlockSize / 8][64]uint64
	// lookup maps a masked contribution back to its (word, bit) origin
	// for O(n) double-error search.
	lookup map[uint64]int
}

// NewVerifier builds a Verifier around a MAC key, precomputing the per-bit
// tag-contribution tables from the key's hash point.
func NewVerifier(key Key, correctBits int) (*Verifier, error) {
	if key == nil {
		return nil, fmt.Errorf("macecc: nil key")
	}
	if correctBits < 0 || correctBits > 2 {
		return nil, fmt.Errorf("macecc: correction budget %d out of range 0..2", correctBits)
	}
	v := &Verifier{key: key, CorrectBits: correctBits}
	// Word w (0-based) carries weight h^(8-w) in the Horner hash.
	nWords := BlockSize / 8
	v.lookup = make(map[uint64]int, blockBits)
	for w := 0; w < nWords; w++ {
		weight := gf64.Pow(key.HashPoint(), uint64(nWords-w))
		for b := 0; b < 64; b++ {
			c := gf64.Mul(uint64(1)<<uint(b), weight)
			v.contrib[w][b] = c
			// Only the low 56 bits are observable in the tag.
			v.lookup[c&mac.TagMask] = w*64 + b
		}
	}
	return v, nil
}

// VerifyAndCorrect authenticates ciphertext against its ECC-lane meta,
// repairing correctable faults in place (both ciphertext and *meta may be
// rewritten). addr and counter are the MAC binding inputs.
func (v *Verifier) VerifyAndCorrect(ciphertext []byte, meta *Meta, addr, counter uint64) (Outcome, error) {
	if len(ciphertext) != BlockSize {
		return Outcome{}, fmt.Errorf("macecc: ciphertext must be %d bytes", BlockSize)
	}
	var out Outcome

	// Step 1 (§3.3): repair the MAC itself with its Hamming code, so a
	// failed tag comparison can be blamed on the data.
	tag, _, res := ecc.MAC63.Decode((*meta).Tag(), (*meta).Check())
	switch res {
	case ecc.OK:
	case ecc.CorrectedData, ecc.CorrectedCheck:
		out.CorrectedMACBits = 1
		*meta = (*meta).withTag(tag)
	default:
		// Double error in the MAC bits: nothing to verify against.
		out.Status = Uncorrectable
		return out, nil
	}

	// Step 2: the standard integrity check.
	want, err := v.key.Tag(ciphertext, addr, counter)
	if err != nil {
		return Outcome{}, err
	}
	out.HardwareChecks = 1
	if want == tag {
		out.Status = OK
		return out, nil
	}

	// Step 3 (§3.4): brute-force flip-and-check. diff is the tag-space
	// discrepancy a candidate correction must explain.
	diff := (want ^ tag) & mac.TagMask

	if v.CorrectBits >= 1 {
		if pos, ok := v.lookup[diff]; ok {
			v.flipData(ciphertext, pos)
			*meta = PackMeta(tag, ciphertext) // refresh scrub bit
			out.CorrectedDataBits = 1
			out.Status = OK
			// A sequential engine would have tried bits 0..pos.
			out.HardwareChecks = pos + 1
			return out, nil
		}
		out.HardwareChecks = MaxSingleChecks
	}

	if v.CorrectBits >= 2 {
		if i, j, ok := v.findPair(diff); ok {
			v.flipData(ciphertext, i)
			v.flipData(ciphertext, j)
			*meta = PackMeta(tag, ciphertext)
			out.CorrectedDataBits = 2
			out.Status = OK
			out.HardwareChecks = MaxSingleChecks + pairRank(i, j)
			return out, nil
		}
		out.HardwareChecks = MaxSingleChecks + MaxDoubleChecks
	}

	out.Status = Uncorrectable
	return out, nil
}

// findPair searches for bit positions i < j whose combined contribution
// equals diff.
func (v *Verifier) findPair(diff uint64) (int, int, bool) {
	for i := 0; i < blockBits; i++ {
		ci := v.contrib[i/64][i%64] & mac.TagMask
		if j, ok := v.lookup[diff^ci]; ok && j > i {
			return i, j, true
		}
	}
	return 0, 0, false
}

// pairRank returns the 1-based position of pair (i, j), i < j, in the
// lexicographic enumeration a hardware engine would follow.
func pairRank(i, j int) int {
	// Pairs starting below i: sum_{k<i} (blockBits-1-k).
	before := i*(blockBits-1) - i*(i-1)/2
	return before + (j - i)
}

func (v *Verifier) flipData(ciphertext []byte, pos int) {
	// Bit b of word w is bit b%8 of byte w*8 + b/8 (little-endian words).
	w, b := pos/64, pos%64
	ciphertext[w*8+b/8] ^= 1 << uint(b%8)
}

// Scrub performs the cheap patrol-scrubber check: it recomputes the parity
// over the ciphertext and compares with the stored scrub bit. A mismatch
// means an odd number of data flips (or a scrub-bit flip); the scrubber
// then triggers a full VerifyAndCorrect.
func Scrub(ciphertext []byte, meta Meta) bool {
	return ecc.ParityBit(ciphertext) == meta.ScrubParity()
}

// ScrubMeta performs §3.3's second cheap check: "the hamming coded MACs can
// also be scrubbed as hamming codes contain a parity bit". The SEC-DED
// code's overall parity bit makes any odd-weight fault in the 63 MAC+check
// bits visible with one XOR tree, no MAC computation.
func ScrubMeta(meta Meta) bool {
	// The 63-bit codeword (56 tag + 7 check bits) has even parity by
	// construction: the 7th check bit is the overall parity.
	var b [8]byte
	v := uint64(meta) &^ (1 << 63) // exclude the data scrub bit
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return ecc.ParityBit(b[:]) == 0
}
