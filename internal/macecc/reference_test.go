package macecc

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestFastMatchesSequential cross-validates the algebraic flip-and-check
// accelerator against the literal brute-force specification on random fault
// patterns: same status, same corrections, same restored data, same
// hardware-cost accounting.
func TestFastMatchesSequential(t *testing.T) {
	fast := testVerifier(t, 2)
	seq := &SequentialVerifier{Inner: fast}
	rng := rand.New(rand.NewSource(42))

	for trial := 0; trial < 60; trial++ {
		ct := make([]byte, BlockSize)
		rng.Read(ct)
		addr, counter := uint64(trial)*64, uint64(trial)
		tag, err := fast.key.Tag(ct, addr, counter)
		if err != nil {
			t.Fatal(err)
		}
		meta := PackMeta(tag, ct)

		// Random fault: 0..3 data flips, 0..1 MAC flips.
		bad := append([]byte(nil), ct...)
		nData := rng.Intn(4)
		for _, b := range rng.Perm(blockBits)[:nData] {
			bad[b/8] ^= 1 << uint(b%8)
		}
		badMeta := meta
		if rng.Intn(2) == 1 {
			badMeta = badMeta.Flip(rng.Intn(63))
		}

		fCT := append([]byte(nil), bad...)
		fMeta := badMeta
		fOut, err := fast.VerifyAndCorrect(fCT, &fMeta, addr, counter)
		if err != nil {
			t.Fatal(err)
		}
		sCT := append([]byte(nil), bad...)
		sMeta := badMeta
		sOut, err := seq.VerifyAndCorrect(sCT, &sMeta, addr, counter)
		if err != nil {
			t.Fatal(err)
		}

		if fOut != sOut {
			t.Fatalf("trial %d (%d data flips): fast %+v, sequential %+v",
				trial, nData, fOut, sOut)
		}
		if !bytes.Equal(fCT, sCT) || fMeta != sMeta {
			t.Fatalf("trial %d: repaired states diverge", trial)
		}
		if fOut.Status == OK && nData <= 2 && !bytes.Equal(fCT, ct) {
			t.Fatalf("trial %d: correction did not restore the original", trial)
		}
	}
}

func TestSequentialValidatesInput(t *testing.T) {
	seq := &SequentialVerifier{Inner: testVerifier(t, 2)}
	var meta Meta
	if _, err := seq.VerifyAndCorrect(make([]byte, 10), &meta, 0, 0); err == nil {
		t.Fatal("short block should fail")
	}
}

func TestSequentialDoubleMACCorruption(t *testing.T) {
	seq := &SequentialVerifier{Inner: testVerifier(t, 2)}
	ct, meta := protect(t, seq.Inner, 99, 0, 0)
	m := meta.Flip(1).Flip(50)
	out, err := seq.VerifyAndCorrect(ct, &m, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != Uncorrectable {
		t.Fatalf("outcome %+v", out)
	}
}
