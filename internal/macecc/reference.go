package macecc

import (
	"fmt"

	"authmem/internal/ecc"
)

// SequentialVerifier is the literal hardware algorithm of §3.4: on a MAC
// mismatch it flips each candidate bit (then each candidate pair) and
// recomputes the full MAC, in the exact order a sequential engine would.
//
// It exists as the executable specification the production Verifier is
// cross-validated against (the fast path replaces MAC recomputation with
// precomputed per-bit tag contributions); use Verifier everywhere else —
// the double-error search here costs up to 130,816 MAC computations.
type SequentialVerifier struct {
	// Inner supplies the key and the correction budget.
	Inner *Verifier
}

// VerifyAndCorrect mirrors Verifier.VerifyAndCorrect bit for bit, including
// the HardwareChecks accounting, but by brute force.
func (v *SequentialVerifier) VerifyAndCorrect(ciphertext []byte, meta *Meta, addr, counter uint64) (Outcome, error) {
	if len(ciphertext) != BlockSize {
		return Outcome{}, fmt.Errorf("macecc: ciphertext must be %d bytes", BlockSize)
	}
	var out Outcome

	tag, _, res := ecc.MAC63.Decode((*meta).Tag(), (*meta).Check())
	switch res {
	case ecc.OK:
	case ecc.CorrectedData, ecc.CorrectedCheck:
		out.CorrectedMACBits = 1
		*meta = (*meta).withTag(tag)
	default:
		out.Status = Uncorrectable
		return out, nil
	}

	check := func() (bool, error) {
		got, err := v.Inner.key.Tag(ciphertext, addr, counter)
		if err != nil {
			return false, err
		}
		return got == tag, nil
	}

	ok, err := check()
	if err != nil {
		return Outcome{}, err
	}
	out.HardwareChecks = 1
	if ok {
		out.Status = OK
		return out, nil
	}

	flip := func(pos int) {
		w, b := pos/64, pos%64
		ciphertext[w*8+b/8] ^= 1 << uint(b%8)
	}

	if v.Inner.CorrectBits >= 1 {
		for i := 0; i < blockBits; i++ {
			flip(i)
			ok, err := check()
			if err != nil {
				return Outcome{}, err
			}
			if ok {
				*meta = PackMeta(tag, ciphertext)
				out.CorrectedDataBits = 1
				out.Status = OK
				out.HardwareChecks = i + 1
				return out, nil
			}
			flip(i)
		}
		out.HardwareChecks = MaxSingleChecks
	}

	if v.Inner.CorrectBits >= 2 {
		rank := 0
		for i := 0; i < blockBits; i++ {
			flip(i)
			for j := i + 1; j < blockBits; j++ {
				rank++
				flip(j)
				ok, err := check()
				if err != nil {
					return Outcome{}, err
				}
				if ok {
					*meta = PackMeta(tag, ciphertext)
					out.CorrectedDataBits = 2
					out.Status = OK
					out.HardwareChecks = MaxSingleChecks + rank
					return out, nil
				}
				flip(j)
			}
			flip(i)
		}
		out.HardwareChecks = MaxSingleChecks + MaxDoubleChecks
	}

	out.Status = Uncorrectable
	return out, nil
}
