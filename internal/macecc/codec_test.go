package macecc

import (
	"bytes"
	"math/rand"
	"testing"

	"authmem/internal/ecc"
)

func lookupMACCodec(t testing.TB) ecc.MACCodec {
	t.Helper()
	cod, err := ecc.Lookup("macsecded")
	if err != nil {
		t.Fatal(err)
	}
	mcod, ok := cod.(ecc.MACCodec)
	if !ok {
		t.Fatalf("macsecded is not a MACCodec")
	}
	return mcod
}

func TestCodecIdentity(t *testing.T) {
	mcod := lookupMACCodec(t)
	if !mcod.CarriesMAC() {
		t.Fatal("macsecded must carry the MAC")
	}
	if mcod.CheckBytes() != 8 {
		t.Fatalf("CheckBytes() = %d, want 8", mcod.CheckBytes())
	}
	if _, err := mcod.NewVerifier(nil, 2); err == nil {
		t.Fatal("nil key should fail")
	}
	if _, err := mcod.NewVerifier(testKey(t), 3); err == nil {
		t.Fatal("budget 3 should fail")
	}
}

// TestCodecAdapterMatchesVerifier pins the ecc.MACCodec adapter to the
// concrete Verifier it wraps: same packed lane, same verdicts, same repaired
// bytes and lanes, same scrub screens — across clean, correctable, and
// uncorrectable inputs.
func TestCodecAdapterMatchesVerifier(t *testing.T) {
	mcod := lookupMACCodec(t)
	for budget := 0; budget <= 2; budget++ {
		direct := testVerifier(t, budget)
		adapted, err := mcod.NewVerifier(testKey(t), budget)
		if err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(int64(budget)*31 + 3))
		for trial := 0; trial < 300; trial++ {
			addr := uint64(trial) * BlockSize
			counter := uint64(trial + 1)
			original, meta := protect(t, direct, int64(trial), addr, counter)

			// PackLane must reproduce PackMeta.
			tag, err := direct.key.Tag(original, addr, counter)
			if err != nil {
				t.Fatal(err)
			}
			if got := mcod.PackLane(tag, original); got != uint64(meta) {
				t.Fatalf("trial %d: PackLane %#x != PackMeta %#x", trial, got, uint64(meta))
			}

			// Corrupt 0..4 bits across the data+lane surface.
			ctA := append([]byte(nil), original...)
			ctB := append([]byte(nil), original...)
			mA, laneB := meta, uint64(meta)
			for i := 0; i < rng.Intn(5); i++ {
				bit := rng.Intn(blockBits + 64)
				if bit < blockBits {
					ctA[bit/8] ^= 1 << uint(bit%8)
					ctB[bit/8] ^= 1 << uint(bit%8)
				} else {
					mA = mA.Flip(bit - blockBits)
					laneB ^= 1 << uint(bit-blockBits)
				}
			}

			// Scrub screens agree before verification.
			if Scrub(ctA, mA) != adapted.ScrubData(ctB, laneB) {
				t.Fatalf("trial %d: ScrubData disagrees", trial)
			}
			if ScrubMeta(mA) != adapted.ScrubLane(laneB) {
				t.Fatalf("trial %d: ScrubLane disagrees", trial)
			}

			outA, err := direct.VerifyAndCorrect(ctA, &mA, addr, counter)
			if err != nil {
				t.Fatal(err)
			}
			laneOut, outB, err := adapted.VerifyAndCorrect(ctB, laneB, addr, counter)
			if err != nil {
				t.Fatal(err)
			}

			if (outA.Status == OK) != outB.OK {
				t.Fatalf("trial %d budget %d: verdict disagrees: %v vs %+v", trial, budget, outA.Status, outB)
			}
			if outA.CorrectedDataBits != outB.CorrectedDataBits ||
				outA.CorrectedMACBits != outB.CorrectedMACBits ||
				outA.HardwareChecks != outB.HardwareChecks {
				t.Fatalf("trial %d budget %d: outcome fields disagree: %+v vs %+v", trial, budget, outA, outB)
			}
			if !bytes.Equal(ctA, ctB) {
				t.Fatalf("trial %d budget %d: repaired ciphertext disagrees", trial, budget)
			}
			if outB.OK && laneOut != uint64(mA) {
				t.Fatalf("trial %d budget %d: repaired lane %#x != meta %#x", trial, budget, laneOut, uint64(mA))
			}
		}
	}
}

// FuzzCodecEquivalence drives every registered codec — secded, residue, and
// macsecded — through the same sealed-block-plus-single-fault scenario and
// enforces the cross-codec contract the engine relies on:
//
//   - an intact block verifies cleanly under every codec;
//   - a single flipped data bit is never a silent escape under any codec:
//     secded and macsecded must repair it exactly, residue must detect it;
//   - whatever a codec reports OK/clean for must leave the data either
//     untouched or repaired to the original bytes (block codecs repair in
//     place; for detection-only codecs the corrupted bytes must still be
//     flagged).
//
// The fuzzer varies the block contents, the fault position, and the MAC
// (addr, counter) binding. It lives in this package because importing it
// links all three codecs into the registry.
func FuzzCodecEquivalence(f *testing.F) {
	f.Add([]byte("seed"), uint16(0), uint64(0), uint64(1))
	f.Add(bytes.Repeat([]byte{0x00}, BlockSize), uint16(511), uint64(64), uint64(2))
	f.Add(bytes.Repeat([]byte{0xFF}, BlockSize), uint16(32), uint64(128), uint64(3))

	f.Fuzz(func(t *testing.T, seed []byte, bit16 uint16, addr, counter uint64) {
		// Expand the fuzz seed into one deterministic 64-byte block.
		data := make([]byte, BlockSize)
		for i := range data {
			data[i] = byte(i * 37)
		}
		copy(data, seed)
		bit := int(bit16) % (8 * BlockSize)
		addr &= 0xFFFFFF
		addr &^= BlockSize - 1
		if counter == 0 {
			counter = 1
		}

		for _, name := range ecc.Names() {
			cod, err := ecc.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			switch c := cod.(type) {
			case ecc.BlockCodec:
				blk := append([]byte(nil), data...)
				check := make([]byte, c.CheckBytes())
				if err := c.EncodeInto(check, blk); err != nil {
					t.Fatalf("%s: encode: %v", name, err)
				}
				out, err := c.DecodeAndCorrect(blk, check)
				if err != nil {
					t.Fatalf("%s: clean decode: %v", name, err)
				}
				if !out.Clean() || !bytes.Equal(blk, data) {
					t.Fatalf("%s: intact block flagged or mutated: %+v", name, out)
				}

				blk[bit/8] ^= 1 << uint(bit%8)
				out, err = c.DecodeAndCorrect(blk, check)
				if err != nil {
					t.Fatalf("%s: faulted decode: %v", name, err)
				}
				// The one universal safety property: a single-bit fault is
				// never silently accepted. Correcting codes must also
				// restore the exact original.
				if out.Clean() && !bytes.Equal(blk, data) {
					t.Fatalf("%s: silent single-bit escape at bit %d", name, bit)
				}
				if out.CorrectedBits > 0 && !bytes.Equal(blk, data) {
					t.Fatalf("%s: correction produced wrong bytes at bit %d", name, bit)
				}

			case ecc.MACCodec:
				ver, err := c.NewVerifier(testKey(t), 2)
				if err != nil {
					t.Fatal(err)
				}
				ct := append([]byte(nil), data...)
				tag, err := testKey(t).Tag(ct, addr, counter)
				if err != nil {
					t.Fatal(err)
				}
				lane := c.PackLane(tag, ct)

				_, out, err := ver.VerifyAndCorrect(ct, lane, addr, counter)
				if err != nil {
					t.Fatalf("%s: clean verify: %v", name, err)
				}
				if !out.OK || !bytes.Equal(ct, data) {
					t.Fatalf("%s: intact block rejected or mutated: %+v", name, out)
				}

				ct[bit/8] ^= 1 << uint(bit%8)
				_, out, err = ver.VerifyAndCorrect(ct, lane, addr, counter)
				if err != nil {
					t.Fatalf("%s: faulted verify: %v", name, err)
				}
				if out.OK && !bytes.Equal(ct, data) {
					t.Fatalf("%s: silent single-bit escape at bit %d", name, bit)
				}
				if !out.OK {
					t.Fatalf("%s: budget-2 verifier failed to correct a single bit (bit %d)", name, bit)
				}
			}
		}
	})
}
