// Package workload models the PARSEC 2.1 applications the paper evaluates
// as deterministic synthetic traffic generators.
//
// PARSEC itself cannot run here (no x86 simulator), so each application is
// reduced to the traffic properties the paper's results actually depend on:
//
//   - For Figure 8 (IPC impact): memory intensity, read/write mix,
//     footprint, and locality structure, expressed as full instruction
//     traces fed to the CPU model.
//
//   - For Table 2 (re-encryption rate): the *post-LLC writeback stream*,
//     modeled as a mixture of group-behavior classes. Which class a
//     block-group falls into decides each counter scheme's fate:
//
//     Sweep     — strict sequential passes over whole groups. Every pass
//     leaves all 64 deltas equal, so delta encoding resets
//     (§4.3) and never re-encrypts; split counters overflow
//     every 128 passes.
//     Balanced  — all 64 blocks written at statistically equal rates in
//     random order. Deltas drift apart by only ~sqrt(n), so
//     at overflow Δmin is large and re-encoding (§4.3) defers
//     re-encryption indefinitely; split counters still
//     overflow every ~128 passes.
//     FewHot    — k hot blocks per group, neighbors never written, so
//     Δmin = 0 and delta encoding degenerates to split
//     behaviour (the canneal case). Dual-length's fate hangs
//     on whether the hot blocks share one 16-block delta
//     subgroup (reserve covers them: ~8x fewer) or span
//     several (reserve spent on the first: ~2x more).
//     Background — cold scatter over many groups; never accumulates
//     enough writes to overflow anything.
//
// Class fractions are derived analytically from the paper's Table 2 rates
// using the steady-state event costs (128 writes/block for a 7-bit
// overflow, ~103 balanced passes for a split overflow at spread ~sqrt(128),
// 1024 writes under an extended dual-length delta) and then verified by
// simulation. Absolute rates depend on write throughput the paper does not
// publish; orderings and ratios are the reproduction target.
package workload

import (
	"math/rand"

	"authmem/internal/ctr"
	"authmem/internal/trace"
)

// Dist is a within-group write distribution.
type Dist int

const (
	// Sweep writes blocks of the class region strictly sequentially.
	Sweep Dist = iota
	// Balanced writes a uniformly random block of a uniformly random
	// group in the class.
	Balanced
	// FewHot writes one of k fixed hot blocks of a random group.
	FewHot
)

// GroupClass is one component of a writeback mixture.
type GroupClass struct {
	// Frac is this class's share of all writebacks.
	Frac float64
	// Groups is the class's region size in block-groups.
	Groups int
	// Dist selects the within-group distribution.
	Dist Dist
	// HotBlocks (FewHot) is the number of hot blocks per group.
	HotBlocks int
	// Subgroups (FewHot) is how many 16-block delta-subgroups the hot
	// blocks span.
	Subgroups int
}

// WritebackShape describes an application's post-LLC write stream.
type WritebackShape struct {
	// PerKiloCycle is the DRAM writeback rate (writes per 1000 cycles),
	// used to normalize event counts to per-10^9-cycle rates.
	PerKiloCycle float64
	// Classes is the mixture; leftover probability scatters uniformly
	// over BackgroundGroups cold groups.
	Classes          []GroupClass
	BackgroundGroups int
}

// App is one synthetic PARSEC-like application.
type App struct {
	// Name matches the paper's tables.
	Name string
	// MemorySensitive marks the seven applications Figure 8 plots;
	// the paper found no measurable encryption impact on the rest.
	MemorySensitive bool

	// Figure 8 trace shape.
	MemFrac        float64 // memory instructions / all instructions
	WriteFrac      float64
	FootprintBytes uint64
	SeqFrac        float64 // streaming share of memory ops
	HotFrac        float64 // hot-set probability for the non-streaming share
	HotBytes       uint64

	// WB is the Table 2 writeback stream shape.
	WB WritebackShape
}

// Apps returns the eleven PARSEC 2.1 applications the paper ran
// (two of the thirteen did not run under MARSSx86; same set here).
func Apps() []App {
	return []App{
		{
			// facesim: physics solver; most write traffic is balanced
			// over mesh regions (delta re-encodes absorb it), with hot
			// boundary blocks spanning two subgroups per group — the
			// case where dual-length's single reserve loses to plain
			// 7-bit deltas (Table 2: 880 / 113 / 176).
			Name: "facesim", MemorySensitive: true,
			MemFrac: 0.33, WriteFrac: 0.45, FootprintBytes: 192 << 20,
			SeqFrac: 0.30, HotFrac: 0.982, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 8.0,
				Classes: []GroupClass{
					{Frac: 0.82, Groups: 512, Dist: Sweep},
					{Frac: 0.09, Groups: 64, Dist: Balanced},
					{Frac: 0.00187, Groups: 24, Dist: FewHot, HotBlocks: 2, Subgroups: 2},
					{Frac: 0.00113, Groups: 12, Dist: FewHot, HotBlocks: 2, Subgroups: 1},
				},
				BackgroundGroups: 16384,
			},
		},
		{
			// dedup: balanced chunk-store writes plus hash-table hot
			// pairs confined to single subgroups, where dual-length's
			// reserve shines (725 / 51 / 14).
			Name: "dedup", MemorySensitive: true,
			MemFrac: 0.30, WriteFrac: 0.40, FootprintBytes: 160 << 20,
			SeqFrac: 0.30, HotFrac: 0.989, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 8.0,
				Classes: []GroupClass{
					{Frac: 0.69, Groups: 448, Dist: Sweep},
					{Frac: 0.00142, Groups: 20, Dist: FewHot, HotBlocks: 2, Subgroups: 1},
					{Frac: 0.00017, Groups: 4, Dist: FewHot, HotBlocks: 2, Subgroups: 2},
				},
				BackgroundGroups: 16384,
			},
		},
		{
			// canneal: random pointer-chasing; writes land on isolated
			// hot blocks whose group neighbors stay cold, so neither
			// resets nor re-encodes help (167 / 167 / 128).
			Name: "canneal", MemorySensitive: true,
			MemFrac: 0.36, WriteFrac: 0.30, FootprintBytes: 256 << 20,
			SeqFrac: 0.05, HotFrac: 0.92, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 4.0,
				Classes: []GroupClass{
					{Frac: 0.003271, Groups: 56, Dist: FewHot, HotBlocks: 1, Subgroups: 1},
					{Frac: 0.003948, Groups: 28, Dist: FewHot, HotBlocks: 2, Subgroups: 2},
				},
				BackgroundGroups: 32768,
			},
		},
		{
			// vips: tiled image pipeline; per-tile accumulator blocks,
			// mostly one per group, a few pairs across subgroups
			// (77 / 77 / 24).
			Name: "vips", MemorySensitive: false,
			MemFrac: 0.26, WriteFrac: 0.38, FootprintBytes: 96 << 20,
			SeqFrac: 0.12, HotFrac: 0.994, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 2.0,
				Classes: []GroupClass{
					{Frac: 0.00437, Groups: 36, Dist: FewHot, HotBlocks: 1, Subgroups: 1},
					{Frac: 0.00106, Groups: 8, Dist: FewHot, HotBlocks: 2, Subgroups: 2},
				},
				BackgroundGroups: 16384,
			},
		},
		{
			// ferret: similarity search; light balanced traffic over
			// feature tables plus a few single-subgroup hot blocks
			// (33 / 23 / 5).
			Name: "ferret", MemorySensitive: true,
			MemFrac: 0.30, WriteFrac: 0.25, FootprintBytes: 128 << 20,
			SeqFrac: 0.15, HotFrac: 0.981, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 1.5,
				Classes: []GroupClass{
					{Frac: 0.0538, Groups: 64, Dist: Sweep},
					{Frac: 0.001852, Groups: 12, Dist: FewHot, HotBlocks: 1, Subgroups: 1},
					{Frac: 0.000209, Groups: 2, Dist: FewHot, HotBlocks: 2, Subgroups: 2},
				},
				BackgroundGroups: 16384,
			},
		},
		{
			// fluidanimate: particle grid; writes spread well, one
			// mildly hot cell block per region (4 / 4 / 0).
			Name: "fluidanimate", MemorySensitive: true,
			MemFrac: 0.28, WriteFrac: 0.35, FootprintBytes: 96 << 20,
			SeqFrac: 0.15, HotFrac: 0.993, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 1.0,
				Classes: []GroupClass{
					{Frac: 0.005, Groups: 128, Dist: Sweep},
					{Frac: 0.000512, Groups: 4, Dist: FewHot, HotBlocks: 1, Subgroups: 1},
				},
				BackgroundGroups: 8192,
			},
		},
		{
			// freqmine: read-dominated FP-growth; the little write
			// traffic is balanced, so only split counters ever
			// re-encrypt (3 / 0 / 0).
			Name: "freqmine", MemorySensitive: true,
			MemFrac: 0.29, WriteFrac: 0.15, FootprintBytes: 64 << 20,
			SeqFrac: 0.10, HotFrac: 0.994, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 0.6,
				Classes: []GroupClass{
					{Frac: 0.041, Groups: 16, Dist: Sweep},
				},
				BackgroundGroups: 8192,
			},
		},
		{
			// raytrace: read-mostly; sparse framebuffer accumulation
			// blocks (2 / 2 / 0).
			Name: "raytrace", MemorySensitive: true,
			MemFrac: 0.27, WriteFrac: 0.10, FootprintBytes: 128 << 20,
			SeqFrac: 0.06, HotFrac: 0.992, HotBytes: 6 << 20,
			WB: WritebackShape{
				PerKiloCycle: 0.5,
				Classes: []GroupClass{
					{Frac: 0.000512, Groups: 2, Dist: FewHot, HotBlocks: 1, Subgroups: 1},
				},
				BackgroundGroups: 16384,
			},
		},
		{
			// swaptions / blackscholes / bodytrack: compute-bound,
			// cache-resident; effectively no DRAM write traffic, so
			// no scheme ever re-encrypts and encryption costs are
			// invisible (the paper omits them from Figure 8).
			Name: "swaptions", MemorySensitive: false,
			MemFrac: 0.18, WriteFrac: 0.20, FootprintBytes: 2 << 20,
			SeqFrac: 0.30, HotFrac: 0.80, HotBytes: 1 << 20,
			WB: WritebackShape{PerKiloCycle: 0.02, BackgroundGroups: 16384},
		},
		{
			Name: "blackscholes", MemorySensitive: false,
			MemFrac: 0.16, WriteFrac: 0.25, FootprintBytes: 4 << 20,
			SeqFrac: 0.60, HotFrac: 0.50, HotBytes: 1 << 20,
			WB: WritebackShape{PerKiloCycle: 0.02, BackgroundGroups: 16384},
		},
		{
			Name: "bodytrack", MemorySensitive: false,
			MemFrac: 0.22, WriteFrac: 0.30, FootprintBytes: 8 << 20,
			SeqFrac: 0.40, HotFrac: 0.60, HotBytes: 2 << 20,
			WB: WritebackShape{PerKiloCycle: 0.03, BackgroundGroups: 16384},
		},
	}
}

// ByName finds an application model.
func ByName(name string) (App, bool) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// TraceGen builds the Figure 8 instruction trace for one core. ops is the
// number of memory operations to emit for this core; seed varies per run.
func (a App) TraceGen(core int, ops uint64, seed int64) trace.Generator {
	meanGap := 0
	if a.MemFrac > 0 {
		meanGap = int(1/a.MemFrac) - 1
	}
	// Per-core footprint slice keeps threads mostly disjoint (PARSEC's
	// data-parallel decomposition) with a shared hot region.
	slice := a.FootprintBytes / 4
	base := uint64(core) * slice

	seqOps := uint64(float64(ops) * a.SeqFrac)
	seq := trace.NewSynthetic(trace.SyntheticConfig{
		Ops: seqOps, MeanGap: meanGap, WriteFrac: a.WriteFrac,
		Pattern: trace.Sequential, BaseAddr: base, FootprintBytes: slice,
		StepBytes: 8, // word-granular streaming: ~8 accesses per line
		Seed:      seed ^ int64(core)<<8,
	})
	rest := trace.NewSynthetic(trace.SyntheticConfig{
		Ops: ops - seqOps, MeanGap: meanGap, WriteFrac: a.WriteFrac,
		Pattern: trace.Hotspot, BaseAddr: 0, FootprintBytes: a.FootprintBytes,
		HotFrac: a.HotFrac, HotBytes: a.HotBytes,
		Seed: seed ^ int64(core)<<8 ^ 0x5DEECE66D,
	})
	return &trace.Interleave{Gens: []trace.Generator{seq, rest}}
}

// WritebackGen emits the application's post-LLC write stream as global
// block indices, for driving counter schemes directly (Table 2).
type WritebackGen struct {
	classes []classState
	cum     []float64
	rng     *rand.Rand

	bgBase   uint64
	bgGroups uint64
}

type classState struct {
	cls    GroupClass
	base   uint64 // first block of this class's region
	cursor uint64 // Sweep position
}

// WritebackGen builds the Table 2 stream generator.
func (a App) WritebackGen(seed int64) *WritebackGen {
	g := &WritebackGen{rng: rand.New(rand.NewSource(seed))}
	var base uint64
	var cum float64
	for _, c := range a.WB.Classes {
		if c.Groups <= 0 {
			continue
		}
		if c.Subgroups <= 0 {
			c.Subgroups = 1
		}
		cum += c.Frac
		g.classes = append(g.classes, classState{cls: c, base: base})
		g.cum = append(g.cum, cum)
		base += uint64(c.Groups) * ctr.GroupBlocks
	}
	g.bgBase = base
	g.bgGroups = uint64(a.WB.BackgroundGroups)
	if g.bgGroups == 0 {
		g.bgGroups = 1
	}
	return g
}

// Blocks returns the number of blocks the stream spans (for sizing regions).
func (g *WritebackGen) Blocks() uint64 {
	return g.bgBase + g.bgGroups*ctr.GroupBlocks
}

// Next returns the next written-back block index. The stream is infinite.
func (g *WritebackGen) Next() uint64 {
	r := g.rng.Float64()
	for i := range g.classes {
		if r >= g.cum[i] {
			continue
		}
		cs := &g.classes[i]
		c := cs.cls
		switch c.Dist {
		case Sweep:
			blk := cs.base + cs.cursor
			cs.cursor = (cs.cursor + 1) % (uint64(c.Groups) * ctr.GroupBlocks)
			return blk
		case Balanced:
			group := uint64(g.rng.Intn(c.Groups))
			return cs.base + group*ctr.GroupBlocks + uint64(g.rng.Intn(ctr.GroupBlocks))
		default: // FewHot
			group := uint64(g.rng.Intn(c.Groups))
			slot := g.rng.Intn(c.HotBlocks)
			sub := slot % c.Subgroups
			off := uint64(sub)*ctr.DeltasPerGroup + uint64(slot/c.Subgroups)
			return cs.base + group*ctr.GroupBlocks + off
		}
	}
	// Background scatter.
	group := uint64(g.rng.Int63n(int64(g.bgGroups)))
	return g.bgBase + group*ctr.GroupBlocks + uint64(g.rng.Intn(ctr.GroupBlocks))
}
