package workload

import (
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/trace"
)

func TestApps(t *testing.T) {
	apps := Apps()
	if len(apps) != 11 {
		t.Fatalf("have %d apps, the paper ran 11", len(apps))
	}
	want := map[string]bool{
		"facesim": true, "dedup": true, "canneal": true, "vips": true,
		"ferret": true, "fluidanimate": true, "freqmine": true,
		"raytrace": true, "swaptions": true, "blackscholes": true,
		"bodytrack": true,
	}
	sensitive := 0
	for _, a := range apps {
		if !want[a.Name] {
			t.Errorf("unexpected app %q", a.Name)
		}
		delete(want, a.Name)
		if a.MemorySensitive {
			sensitive++
		}
		if a.MemFrac <= 0 || a.MemFrac >= 1 {
			t.Errorf("%s: MemFrac %v", a.Name, a.MemFrac)
		}
		if a.WB.PerKiloCycle <= 0 {
			t.Errorf("%s: no writeback rate", a.Name)
		}
		var frac float64
		for _, c := range a.WB.Classes {
			frac += c.Frac
			if c.Groups <= 0 {
				t.Errorf("%s: class with no groups", a.Name)
			}
		}
		if frac > 1 {
			t.Errorf("%s: class fractions sum to %v", a.Name, frac)
		}
	}
	if len(want) != 0 {
		t.Errorf("missing apps: %v", want)
	}
	// Figure 8 plots seven memory-sensitive applications.
	if sensitive != 7 {
		t.Errorf("%d memory-sensitive apps, want 7", sensitive)
	}
}

func TestByName(t *testing.T) {
	if a, ok := ByName("canneal"); !ok || a.Name != "canneal" {
		t.Fatal("ByName(canneal) failed")
	}
	if _, ok := ByName("doom"); ok {
		t.Fatal("ByName(doom) should miss")
	}
}

func TestTraceGenEmitsRequestedOps(t *testing.T) {
	app, _ := ByName("facesim")
	g := app.TraceGen(0, 10000, 7)
	n := 0
	for {
		r, ok := g.Next()
		if !ok {
			break
		}
		if r.Addr >= app.FootprintBytes {
			t.Fatalf("address %#x outside footprint", r.Addr)
		}
		n++
	}
	if n != 10000 {
		t.Fatalf("emitted %d ops, want 10000", n)
	}
}

func TestTraceGenDeterministicPerCore(t *testing.T) {
	app, _ := ByName("dedup")
	drain := func(core int, seed int64) []trace.Record {
		g := app.TraceGen(core, 500, seed)
		var out []trace.Record
		for {
			r, ok := g.Next()
			if !ok {
				return out
			}
			out = append(out, r)
		}
	}
	a, b := drain(1, 3), drain(1, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("trace not deterministic")
		}
	}
	c := drain(2, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different cores produced identical traces")
	}
}

func TestWritebackGenDeterministic(t *testing.T) {
	app, _ := ByName("canneal")
	g1, g2 := app.WritebackGen(9), app.WritebackGen(9)
	for i := 0; i < 10000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatal("writeback stream not deterministic")
		}
	}
}

func TestWritebackGenStaysInRegion(t *testing.T) {
	for _, a := range Apps() {
		g := a.WritebackGen(1)
		limit := g.Blocks()
		for i := 0; i < 20000; i++ {
			if blk := g.Next(); blk >= limit {
				t.Fatalf("%s: block %d beyond region %d", a.Name, blk, limit)
			}
		}
	}
}

func TestWritebackClassRegionsDisjoint(t *testing.T) {
	// FewHot writes must land inside their class's group range: drive a
	// facesim stream and check sweep region blocks are only written
	// sequentially (cursor pattern), i.e. hot blocks never alias into the
	// sweep region.
	app, _ := ByName("facesim")
	sweepGroups := app.WB.Classes[0].Groups
	if app.WB.Classes[0].Dist != Sweep {
		t.Fatal("facesim class 0 should be the sweep class")
	}
	g := app.WritebackGen(2)
	sweepLimit := uint64(sweepGroups) * ctr.GroupBlocks
	var lastSweep uint64
	seen := false
	for i := 0; i < 100000; i++ {
		blk := g.Next()
		if blk < sweepLimit {
			if seen && blk != (lastSweep+1)%sweepLimit {
				t.Fatalf("sweep region written out of order: %d after %d", blk, lastSweep)
			}
			lastSweep, seen = blk, true
		}
	}
}

// TestFewHotSubgroupPlacement validates the structural property Table 2's
// dual-length results hinge on.
func TestFewHotSubgroupPlacement(t *testing.T) {
	mk := func(k, s int) map[uint64]bool {
		app := App{WB: WritebackShape{
			PerKiloCycle: 1,
			Classes: []GroupClass{
				{Frac: 1, Groups: 1, Dist: FewHot, HotBlocks: k, Subgroups: s},
			},
			BackgroundGroups: 1,
		}}
		g := app.WritebackGen(3)
		blocks := map[uint64]bool{}
		for i := 0; i < 10000; i++ {
			blocks[g.Next()] = true
		}
		return blocks
	}
	// k=2, s=1: both hot blocks in delta-subgroup 0.
	for blk := range mk(2, 1) {
		if blk/ctr.DeltasPerGroup != 0 {
			t.Fatalf("s=1 block %d outside subgroup 0", blk)
		}
	}
	// k=2, s=2: blocks span two subgroups.
	subs := map[uint64]bool{}
	for blk := range mk(2, 2) {
		subs[blk/ctr.DeltasPerGroup] = true
	}
	if len(subs) != 2 {
		t.Fatalf("s=2 spans %d subgroups, want 2", len(subs))
	}
}

// TestClassMechanisms verifies each group-behavior class produces its
// designed scheme-level behaviour (the foundation of the Table 2 mixture).
func TestClassMechanisms(t *testing.T) {
	run := func(c GroupClass, kind ctr.Kind, n int) ctr.Stats {
		c.Frac = 1
		app := App{WB: WritebackShape{PerKiloCycle: 1,
			Classes: []GroupClass{c}, BackgroundGroups: 1}}
		g := app.WritebackGen(4)
		s, err := ctr.NewScheme(kind)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			s.Touch(g.Next())
		}
		return s.Stats()
	}
	const n = 2_000_000

	// Sweep: split re-encrypts, delta resets and never does.
	sweep := GroupClass{Groups: 32, Dist: Sweep}
	if st := run(sweep, ctr.Split, n); st.Reencryptions == 0 {
		t.Error("sweep: split should re-encrypt")
	}
	if st := run(sweep, ctr.Delta, n); st.Reencryptions != 0 || st.Resets == 0 {
		t.Errorf("sweep: delta %+v", st)
	}

	// Balanced: split re-encrypts; delta re-encodes instead (>=20x fewer).
	bal := GroupClass{Groups: 32, Dist: Balanced}
	split := run(bal, ctr.Split, n)
	delta := run(bal, ctr.Delta, n)
	if split.Reencryptions == 0 {
		t.Error("balanced: split should re-encrypt")
	}
	if delta.Reencodes == 0 {
		t.Error("balanced: delta should re-encode")
	}
	if delta.Reencryptions*5 > split.Reencryptions {
		t.Errorf("balanced: delta %d vs split %d re-encryptions",
			delta.Reencryptions, split.Reencryptions)
	}

	// FewHot k=1: delta degenerates to split; dual-length ~8x fewer.
	hot := GroupClass{Groups: 8, Dist: FewHot, HotBlocks: 1, Subgroups: 1}
	hs, hd, hu := run(hot, ctr.Split, n), run(hot, ctr.Delta, n), run(hot, ctr.DualLength, n)
	if ratio := float64(hs.Reencryptions) / float64(hd.Reencryptions); ratio < 0.9 || ratio > 1.1 {
		t.Errorf("fewhot k1: split/delta ratio %.2f, want ~1", ratio)
	}
	if ratio := float64(hd.Reencryptions) / float64(hu.Reencryptions); ratio < 6 || ratio > 10 {
		t.Errorf("fewhot k1: delta/dual ratio %.2f, want ~8", ratio)
	}

	// FewHot k=2 spanning 2 subgroups: dual-length is WORSE than delta.
	spread := GroupClass{Groups: 8, Dist: FewHot, HotBlocks: 2, Subgroups: 2}
	sd, su := run(spread, ctr.Delta, n), run(spread, ctr.DualLength, n)
	if su.Reencryptions <= sd.Reencryptions {
		t.Errorf("fewhot k2s2: dual %d should exceed delta %d",
			su.Reencryptions, sd.Reencryptions)
	}
}

func BenchmarkWritebackGen(b *testing.B) {
	app, _ := ByName("facesim")
	g := app.WritebackGen(1)
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= g.Next()
	}
	sink = acc
}

var sink uint64
