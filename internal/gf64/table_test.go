package gf64

import (
	"math/rand"
	"testing"
)

// edgeValues are the operands most likely to expose windowing or reduction
// mistakes: boundary bits, all-ones, the reduction polynomial itself, and
// values with every window populated.
var edgeValues = []uint64{
	0, 1, 2, 3, 0xF, 0x10, 0x8000000000000000, 0xC000000000000000,
	0xFFFFFFFFFFFFFFFF, 0xFFFFFFFF00000000, 0x00000000FFFFFFFF,
	Poly, ^Poly, 0x8888888888888888, 0x1111111111111111,
	0xF0F0F0F0F0F0F0F0, 1 << 63, 1<<63 | 1, 0xFEDCBA9876543210,
}

// TestMulTableMatchesMul proves the table-driven path equivalent to the
// constant-time reference on 10k random pairs plus all edge-value pairs.
func TestMulTableMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		a, x := rng.Uint64(), rng.Uint64()
		tab := NewTable(x)
		if got, want := MulTable(tab, a), Mul(a, x); got != want {
			t.Fatalf("MulTable(%#x * %#x) = %#x, want %#x", a, x, got, want)
		}
	}
	for _, x := range edgeValues {
		tab := NewTable(x)
		for _, a := range edgeValues {
			if got, want := tab.Mul(a), Mul(a, x); got != want {
				t.Fatalf("Table(%#x).Mul(%#x) = %#x, want %#x", x, a, got, want)
			}
		}
	}
}

// TestMulTableReusedAcrossOperands checks one table serves many operands
// (the usage pattern of a per-key table).
func TestMulTableReusedAcrossOperands(t *testing.T) {
	const x = 0x9E3779B97F4A7C15
	tab := NewTable(x)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		a := rng.Uint64()
		if got, want := tab.Mul(a), Mul(a, x); got != want {
			t.Fatalf("tab.Mul(%#x) = %#x, want %#x", a, got, want)
		}
	}
}

func TestHornerTableMatchesHorner(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 1_000; trial++ {
		x := rng.Uint64()
		m := make([]uint64, rng.Intn(12))
		for i := range m {
			m[i] = rng.Uint64()
		}
		tab := NewTable(x)
		if got, want := HornerTable(tab, m), Horner(x, m); got != want {
			t.Fatalf("HornerTable(x=%#x, m=%x) = %#x, want %#x", x, m, got, want)
		}
	}
}

func TestHornerTableEmpty(t *testing.T) {
	if HornerTable(NewTable(0xDEADBEEF), nil) != 0 {
		t.Fatal("HornerTable of empty message should be 0")
	}
}

// TestReduceHighFoldBits exercises the double-fold in Reduce with hi values
// whose top bits (60..63) set — the cases where the first fold of
// hi * (x^4+x^3+x+1) itself overflows past bit 63 and a second fold is
// required. Correctness is pinned against the bit-serial Mul.
func TestReduceHighFoldBits(t *testing.T) {
	cases := []uint64{
		1 << 60, 1 << 61, 1 << 62, 1 << 63,
		0xF << 60, 0xFFFFFFFFFFFFFFFF, 1<<63 | 1, 1<<63 | Poly,
		0xF000000000000001, 0x8000000000000000 | 1<<35,
	}
	for _, hi := range cases {
		for _, lo := range []uint64{0, 1, ^uint64(0), Poly} {
			// (hi, lo) is the unreduced product hi*x^64 + lo; since
			// x^64 ≡ Poly (mod p) and lo is already below x^64, the
			// reduced value is hi*Poly + lo computed in the field.
			want := Mul(hi, Poly) ^ lo
			if got := Reduce(hi, lo); got != want {
				t.Fatalf("Reduce(%#x, %#x) = %#x, want %#x", hi, lo, got, want)
			}
		}
	}
}

// TestReduceSecondFoldMatters proves the comment in Reduce honest: with the
// second fold disabled, high hi bits produce wrong results. This guards
// against "simplifying" the loop to one pass.
func TestReduceSecondFoldMatters(t *testing.T) {
	oneFold := func(hi, lo uint64) uint64 {
		return lo ^ hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4)
	}
	anyDiffer := false
	for _, hi := range []uint64{1 << 60, 1 << 61, 1 << 62, 1 << 63, 0xF << 60} {
		if oneFold(hi, 0) != Reduce(hi, 0) {
			anyDiffer = true
		}
	}
	if !anyDiffer {
		t.Fatal("single fold agreed with Reduce on all high-bit cases; test is vacuous")
	}
}

// TestMulWideConstantDistanceForm cross-checks the mask-accumulate MulWide
// against an independent per-bit accumulation with variable shifts.
func TestMulWideConstantDistanceForm(t *testing.T) {
	ref := func(a, b uint64) (hi, lo uint64) {
		for i := 0; i < 64; i++ {
			if b>>uint(i)&1 == 1 {
				lo ^= a << uint(i)
				if i > 0 {
					hi ^= a >> uint(64-i)
				}
			}
		}
		return hi, lo
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10_000; i++ {
		a, b := rng.Uint64(), rng.Uint64()
		hi, lo := MulWide(a, b)
		whi, wlo := ref(a, b)
		if hi != whi || lo != wlo {
			t.Fatalf("MulWide(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", a, b, hi, lo, whi, wlo)
		}
	}
}

func BenchmarkMulTable(b *testing.B) {
	tab := NewTable(0xDEADBEEFCAFEBABE)
	var acc uint64 = 0x9E3779B97F4A7C15
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc = tab.Mul(acc)
	}
	sink = acc
}

func BenchmarkHornerTable8(b *testing.B) {
	tab := NewTable(0xABCDEF0123456789)
	msg := make([]uint64, 8)
	for i := range msg {
		msg[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ReportAllocs()
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= HornerTable(tab, msg)
	}
	sink = acc
}

func BenchmarkNewTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sinkTable = NewTable(uint64(i) | 1)
	}
}

var sinkTable *Table
