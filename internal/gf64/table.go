package gf64

// This file implements table-driven multiplication by a fixed field point —
// the GHASH trick adapted to GF(2^64). A bit-serial Mul costs 64 dependent
// shift/XOR iterations; when one operand is fixed (the secret MAC hash
// point, or a precomputed power of it) the product is linear in the other
// operand, so it can be assembled from precomputed partial products:
//
//	a * x = XOR over w of ((a >> 4w) & 0xF) << 4w * x
//
// Sixteen 4-bit windows, each with sixteen possible values, give a
// 16x16-entry table (2KB) built once per key. A table multiply is then 16
// loads + 15 XORs with no data-dependent branches on the *variable*
// operand; the table itself is key-dependent, which is the same leakage
// shape as a hardware GHASH multiplier's precomputed key powers.
//
// The bit-serial Mul in gf64.go remains the constant-time reference oracle;
// equivalence is proven in table_test.go.

// windows is the number of 4-bit windows in a 64-bit operand.
const windows = 16

// Table holds the precomputed partial products of one fixed multiplicand.
type Table struct {
	// win[w][v] = (v << 4w) * x for the fixed point x.
	win [windows][16]uint64
}

// NewTable precomputes the windowed multiplication table for the fixed
// point x, so that MulTable(t, a) == Mul(a, x) for every a.
func NewTable(x uint64) *Table {
	t := new(Table)
	for w := 0; w < windows; w++ {
		// Build the window from its doubling basis: entries 1, 2, 4, 8
		// are x * x^(4w) * {1, x, x^2, x^3}; composites are XORs of the
		// basis entries, by linearity of carry-less multiplication.
		base := Mul(uint64(1)<<(4*w), x)
		var basis [4]uint64
		for b := 0; b < 4; b++ {
			basis[b] = base
			base = mulX(base)
		}
		for v := 1; v < 16; v++ {
			var e uint64
			for b := 0; b < 4; b++ {
				if v>>b&1 == 1 {
					e ^= basis[b]
				}
			}
			t.win[w][v] = e
		}
	}
	return t
}

// mulX multiplies a field element by x (a single doubling step).
func mulX(a uint64) uint64 {
	hi := a >> 63
	return (a << 1) ^ (Poly & -hi)
}

// Mul returns a times the table's fixed point.
func (t *Table) Mul(a uint64) uint64 {
	r := t.win[0][a&0xF] ^
		t.win[1][a>>4&0xF] ^
		t.win[2][a>>8&0xF] ^
		t.win[3][a>>12&0xF] ^
		t.win[4][a>>16&0xF] ^
		t.win[5][a>>20&0xF] ^
		t.win[6][a>>24&0xF] ^
		t.win[7][a>>28&0xF]
	r ^= t.win[8][a>>32&0xF] ^
		t.win[9][a>>36&0xF] ^
		t.win[10][a>>40&0xF] ^
		t.win[11][a>>44&0xF] ^
		t.win[12][a>>48&0xF] ^
		t.win[13][a>>52&0xF] ^
		t.win[14][a>>56&0xF] ^
		t.win[15][a>>60&0xF]
	return r
}

// MulTable returns a times the fixed point captured by t. It is the
// table-driven equivalent of Mul(a, x) for t = NewTable(x).
func MulTable(t *Table, a uint64) uint64 { return t.Mul(a) }

// HornerTable evaluates the same polynomial hash as Horner at the point
// captured by t:
//
//	m[0]*x^n + m[1]*x^(n-1) + ... + m[n-1]*x
//
// using one table multiply per coefficient.
func HornerTable(t *Table, m []uint64) uint64 {
	var acc uint64
	for _, v := range m {
		acc = t.Mul(acc ^ v)
	}
	return acc
}
