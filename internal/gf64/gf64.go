// Package gf64 implements arithmetic in the binary Galois field GF(2^64).
//
// The field is realized as GF(2)[x]/(p(x)) with the primitive reduction
// polynomial
//
//	p(x) = x^64 + x^4 + x^3 + x + 1
//
// which is the conventional choice for 64-bit carry-less hashing. Elements
// are represented as uint64 values whose bit i is the coefficient of x^i.
//
// The package underpins the Carter-Wegman MAC in internal/mac: a polynomial
// hash over GF(2^64) is a one-cycle operation in the hardware the paper
// assumes (Intel SGX's multiplier); here it is implemented in portable
// software with constant-time carry-less multiplication.
package gf64

// Poly is the low 64 bits of the reduction polynomial x^64 + x^4 + x^3 + x + 1.
// The x^64 term is implicit.
const Poly uint64 = 0x1B

// Add returns a + b in GF(2^64). Addition is XOR; it is its own inverse.
func Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a * b in GF(2^64), reducing by Poly.
//
// The implementation is a branch-free shift-and-add ("Russian peasant")
// carry-less multiply. It runs in constant time with respect to the values
// of a and b, which matters because one operand is a secret MAC key.
func Mul(a, b uint64) uint64 {
	var r uint64
	for i := 0; i < 64; i++ {
		// Conditionally add a when the low bit of b is set.
		r ^= a & -(b & 1)
		b >>= 1
		// Multiply a by x, reducing modulo p(x) when the x^63 term
		// shifts out.
		hi := a >> 63
		a = (a << 1) ^ (Poly & -hi)
	}
	return r
}

// MulWide returns the 128-bit carry-less product of a and b without
// reduction, as (hi, lo). It is used by tests to cross-check Mul against an
// independent reduce step, and by callers that need raw CLMUL semantics.
//
// The loop is the mask-accumulate form of the schoolbook product: the
// 128-bit value (ahi, alo) tracks a << i across iterations with two
// constant-distance shifts, and a branch-free mask accumulates it whenever
// bit i of b is set. Unlike the earlier variable-shift formulation there is
// no per-iteration shift-by-i, and the iteration count is fixed, keeping
// the routine constant-time in both operands.
func MulWide(a, b uint64) (hi, lo uint64) {
	var ahi, alo uint64 = 0, a
	for i := 0; i < 64; i++ {
		mask := -(b & 1)
		lo ^= alo & mask
		hi ^= ahi & mask
		b >>= 1
		ahi = ahi<<1 | alo>>63
		alo <<= 1
	}
	return hi, lo
}

// Reduce folds a 128-bit carry-less product (hi, lo) into GF(2^64) modulo
// Poly. Combined with MulWide it is equivalent to Mul.
func Reduce(hi, lo uint64) uint64 {
	// Each set bit i of hi contributes x^(64+i) = x^i * p'(x) where
	// p'(x) = x^4+x^3+x+1 (the low part of the reduction polynomial).
	// Folding hi once can carry back into bits >= 64 (at most bit 67),
	// so fold twice.
	for j := 0; j < 2; j++ {
		var carry uint64
		// hi * (x^4 + x^3 + x + 1), tracking overflow back into hi.
		l0 := lo ^ hi ^ (hi << 1) ^ (hi << 3) ^ (hi << 4)
		carry = (hi >> 63) ^ (hi >> 61) ^ (hi >> 60)
		lo = l0
		hi = carry
	}
	return lo
}

// Pow returns a^n in GF(2^64) by square-and-multiply.
func Pow(a uint64, n uint64) uint64 {
	var r uint64 = 1
	for n > 0 {
		if n&1 == 1 {
			r = Mul(r, a)
		}
		a = Mul(a, a)
		n >>= 1
	}
	return r
}

// Inv returns the multiplicative inverse of a in GF(2^64).
// Inv(0) is defined as 0 for convenience (0 has no inverse).
//
// The inverse is a^(2^64-2) by Lagrange's theorem on the multiplicative
// group of order 2^64-1.
func Inv(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	// 2^64 - 2 = 0xFFFFFFFFFFFFFFFE
	return Pow(a, 0xFFFFFFFFFFFFFFFE)
}

// Horner evaluates the polynomial
//
//	m[0]*x^n + m[1]*x^(n-1) + ... + m[n-1]*x
//
// at point x over GF(2^64), where n = len(m). This is the standard
// polynomial-hash shape used by Carter-Wegman MACs (note the trailing
// factor of x, which prevents length-extension of the last block).
func Horner(x uint64, m []uint64) uint64 {
	var acc uint64
	for _, v := range m {
		acc = Mul(acc^v, x)
	}
	return acc
}
