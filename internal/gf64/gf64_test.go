package gf64

import (
	"testing"
	"testing/quick"
)

func TestAddIsXor(t *testing.T) {
	if got := Add(0xF0F0, 0x0FF0); got != 0xFF00 {
		t.Fatalf("Add = %#x, want 0xFF00", got)
	}
}

func TestAddSelfInverse(t *testing.T) {
	f := func(a, b uint64) bool { return Add(Add(a, b), b) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulIdentity(t *testing.T) {
	f := func(a uint64) bool { return Mul(a, 1) == a && Mul(1, a) == a }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulZero(t *testing.T) {
	f := func(a uint64) bool { return Mul(a, 0) == 0 && Mul(0, a) == 0 }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool { return Mul(a, b) == Mul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMulDistributesOverAdd(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulByXShifts(t *testing.T) {
	// Multiplying by x (= 2) is a left shift with conditional reduction.
	f := func(a uint64) bool {
		want := a << 1
		if a>>63 == 1 {
			want ^= Poly
		}
		return Mul(a, 2) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulMatchesWideReduce(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := MulWide(a, b)
		return Reduce(hi, lo) == Mul(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulWideKnownVectors(t *testing.T) {
	cases := []struct {
		a, b, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 63, 2, 1, 0},             // x^63 * x = x^64
		{1 << 63, 1 << 63, 1 << 62, 0}, // x^63 * x^63 = x^126
		{3, 3, 0, 5},                   // (x+1)^2 = x^2+1
	}
	for _, c := range cases {
		hi, lo := MulWide(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("MulWide(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func TestPow(t *testing.T) {
	if Pow(123456789, 0) != 1 {
		t.Fatal("a^0 != 1")
	}
	f := func(a uint64) bool {
		return Pow(a, 3) == Mul(a, Mul(a, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPowAddsExponents(t *testing.T) {
	f := func(a uint64, m, n uint16) bool {
		return Mul(Pow(a, uint64(m)), Pow(a, uint64(n))) == Pow(a, uint64(m)+uint64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInv(t *testing.T) {
	if Inv(0) != 0 {
		t.Fatal("Inv(0) should be 0 by convention")
	}
	f := func(a uint64) bool {
		if a == 0 {
			return true
		}
		return Mul(a, Inv(a)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHornerEmpty(t *testing.T) {
	if Horner(0xDEADBEEF, nil) != 0 {
		t.Fatal("Horner of empty message should be 0")
	}
}

func TestHornerSingleBlock(t *testing.T) {
	// Horner(x, [m]) = m * x
	f := func(x, m uint64) bool {
		return Horner(x, []uint64{m}) == Mul(m, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHornerTwoBlocks(t *testing.T) {
	// Horner(x, [m0, m1]) = m0*x^2 + m1*x
	f := func(x, m0, m1 uint64) bool {
		want := Add(Mul(m0, Mul(x, x)), Mul(m1, x))
		return Horner(x, []uint64{m0, m1}) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHornerSensitiveToOrder(t *testing.T) {
	x := uint64(0x1234_5678_9ABC_DEF1)
	a := Horner(x, []uint64{1, 2})
	b := Horner(x, []uint64{2, 1})
	if a == b {
		t.Fatal("Horner must distinguish block order")
	}
}

func BenchmarkMul(b *testing.B) {
	var acc uint64 = 0x9E3779B97F4A7C15
	for i := 0; i < b.N; i++ {
		acc = Mul(acc, 0xDEADBEEFCAFEBABE)
	}
	sink = acc
}

func BenchmarkHorner8(b *testing.B) {
	msg := make([]uint64, 8)
	for i := range msg {
		msg[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= Horner(0xABCDEF0123456789, msg)
	}
	sink = acc
}

var sink uint64
