// Package fault implements the bit-flip fault models behind Figure 3: it
// injects controlled fault classes into protected blocks and classifies how
// standard SEC-DED ECC and the proposed MAC-in-ECC scheme respond.
//
// Figure 3's point is that neither scheme dominates: SEC-DED corrects one
// flip per 8-byte word (so many spread-out flips are fine) but only
// *detects* two flips in one word and can be defeated by three; MAC-based
// correction is bounded by the flip-and-check budget over the whole block
// (two flips anywhere, in any single word or not) but *detects* arbitrary
// corruption.
package fault

import (
	"fmt"
	"math/rand"

	"authmem/internal/ecc"
	"authmem/internal/mac"
	"authmem/internal/macecc"
)

// Class enumerates the fault patterns of Figure 3.
type Class int

const (
	// SingleBit flips one random data bit.
	SingleBit Class = iota
	// DoubleBitSameWord flips two bits within one 8-byte word.
	DoubleBitSameWord
	// DoubleBitSpread flips two bits in different 8-byte words.
	DoubleBitSpread
	// MultiBitSpread flips one bit in each of four different words.
	MultiBitSpread
	// TripleBitSameWord flips three bits within one word — beyond
	// SEC-DED's guarantee (may silently miscorrect).
	TripleBitSameWord
	// Burst flips eight consecutive bits in one word (a chip-level
	// failure pattern).
	Burst
	// TwoPerWordAll flips two bits in every one of the eight words —
	// §3.3's "up to 16-bit errors" detection bound for standard ECC.
	TwoPerWordAll
	// CheckBitSingle flips one bit of the check storage (ECC byte or
	// MAC/Hamming bits).
	CheckBitSingle
	// CheckBitDouble flips two bits of the check storage.
	CheckBitDouble
)

// Classes lists all fault classes in Figure 3 order.
func Classes() []Class {
	return []Class{SingleBit, DoubleBitSameWord, DoubleBitSpread,
		MultiBitSpread, TripleBitSameWord, Burst, TwoPerWordAll,
		CheckBitSingle, CheckBitDouble}
}

// String names the class.
func (c Class) String() string {
	switch c {
	case SingleBit:
		return "1 bit"
	case DoubleBitSameWord:
		return "2 bits, same word"
	case DoubleBitSpread:
		return "2 bits, 2 words"
	case MultiBitSpread:
		return "4 bits, 4 words"
	case TripleBitSameWord:
		return "3 bits, same word"
	case Burst:
		return "8-bit burst, 1 word"
	case TwoPerWordAll:
		return "2 bits x 8 words"
	case CheckBitSingle:
		return "1 check bit"
	case CheckBitDouble:
		return "2 check bits"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// dataBits returns the data-bit positions this class flips, and how many
// check bits.
func (c Class) plan(rng *rand.Rand) (dataBits []int, checkBits int) {
	word := rng.Intn(8)
	switch c {
	case SingleBit:
		return []int{rng.Intn(512)}, 0
	case DoubleBitSameWord:
		a := rng.Intn(64)
		b := rng.Intn(64)
		for b == a {
			b = rng.Intn(64)
		}
		return []int{word*64 + a, word*64 + b}, 0
	case DoubleBitSpread:
		w2 := rng.Intn(8)
		for w2 == word {
			w2 = rng.Intn(8)
		}
		return []int{word*64 + rng.Intn(64), w2*64 + rng.Intn(64)}, 0
	case MultiBitSpread:
		words := rng.Perm(8)[:4]
		var bits []int
		for _, w := range words {
			bits = append(bits, w*64+rng.Intn(64))
		}
		return bits, 0
	case TripleBitSameWord:
		perm := rng.Perm(64)[:3]
		return []int{word*64 + perm[0], word*64 + perm[1], word*64 + perm[2]}, 0
	case Burst:
		start := rng.Intn(57) // keep all 8 bits within one word
		var bits []int
		for i := 0; i < 8; i++ {
			bits = append(bits, word*64+start+i)
		}
		return bits, 0
	case TwoPerWordAll:
		var bits []int
		for w := 0; w < 8; w++ {
			perm := rng.Perm(64)[:2]
			bits = append(bits, w*64+perm[0], w*64+perm[1])
		}
		return bits, 0
	case CheckBitSingle:
		return nil, 1
	case CheckBitDouble:
		return nil, 2
	}
	return nil, 0
}

// Outcome classifies one trial.
type Outcome int

const (
	// Corrected: the scheme repaired the block exactly.
	Corrected Outcome = iota
	// Detected: the scheme flagged the block uncorrectable (data
	// refused, no silent damage).
	Detected
	// Miscorrected: the scheme accepted or "repaired" the block but the
	// data is wrong — silent corruption, the worst outcome.
	Miscorrected
)

// Result aggregates trials of one (scheme, class) cell.
type Result struct {
	Class        Class
	Trials       int
	Corrected    int
	Detected     int
	Miscorrected int
}

// CorrectedPct is the fraction of trials fully repaired.
func (r Result) CorrectedPct() float64 { return 100 * float64(r.Corrected) / float64(r.Trials) }

// DetectedPct is the fraction refused without correction.
func (r Result) DetectedPct() float64 { return 100 * float64(r.Detected) / float64(r.Trials) }

// MiscorrectedPct is the fraction of silent corruptions.
func (r Result) MiscorrectedPct() float64 {
	return 100 * float64(r.Miscorrected) / float64(r.Trials)
}

// InjectSECDED runs trials of a fault class against standard SEC-DED(72,64)
// per-word ECC, the baseline DIMM behaviour.
func InjectSECDED(class Class, trials int, seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	res := Result{Class: class, Trials: trials}
	data := make([]byte, ecc.BlockSize)
	for t := 0; t < trials; t++ {
		rng.Read(data)
		orig := append([]byte(nil), data...)
		check, err := ecc.EncodeBlock(data)
		if err != nil {
			panic(err)
		}
		bits, checkFlips := class.plan(rng)
		for _, b := range bits {
			data[b/8] ^= 1 << uint(b%8)
		}
		// Flip distinct bits within one word's check byte, mirroring
		// the data-side classes.
		for _, b := range rng.Perm(8)[:checkFlips] {
			check[0] ^= 1 << uint(b)
		}
		out, err := ecc.DecodeBlock(data, &check)
		if err != nil {
			panic(err)
		}
		switch {
		case !out.Clean():
			res.Detected++
		case equal(data, orig):
			res.Corrected++
		default:
			res.Miscorrected++
		}
		copy(data, orig)
	}
	return res
}

// InjectResidue runs trials of a fault class against the detection-only
// residue check code (internal/ecc "residue" codec: one 32-bit residue mod
// 2^32-1 over the block, 4 check bytes). Nothing is ever corrected; the
// interesting rows are the spread fault classes, where opposite-polarity
// flips in one bit column (or a 0x00000000 <-> 0xFFFFFFFF word) alias to
// the same residue and report as Miscorrected — the blind spot the codec's
// documentation (and the engine's end-to-end MAC) accounts for.
func InjectResidue(class Class, trials int, seed int64) Result {
	cod, err := ecc.Lookup("residue")
	if err != nil {
		panic(err)
	}
	bcod := cod.(ecc.BlockCodec)
	rng := rand.New(rand.NewSource(seed))
	res := Result{Class: class, Trials: trials}
	data := make([]byte, ecc.BlockSize)
	check := make([]byte, bcod.CheckBytes())
	for t := 0; t < trials; t++ {
		rng.Read(data)
		orig := append([]byte(nil), data...)
		if err := bcod.EncodeInto(check, data); err != nil {
			panic(err)
		}
		bits, checkFlips := class.plan(rng)
		for _, b := range bits {
			data[b/8] ^= 1 << uint(b%8)
		}
		// Flip distinct bits across the 32-bit check word, mirroring the
		// data-side classes.
		for _, b := range rng.Perm(bcod.CheckBytes() * 8)[:checkFlips] {
			check[b/8] ^= 1 << uint(b%8)
		}
		out, err := bcod.DecodeAndCorrect(data, check)
		if err != nil {
			panic(err)
		}
		switch {
		case !out.Clean():
			res.Detected++
		case equal(data, orig):
			res.Corrected++ // only possible when nothing actually flipped
		default:
			res.Miscorrected++
		}
		copy(data, orig)
	}
	return res
}

// InjectMACECC runs trials of a fault class against the MAC-in-ECC layout
// with the given flip-and-check budget.
func InjectMACECC(class Class, trials int, seed int64, correctBits int) (Result, error) {
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*29 + 7)
	}
	key, err := mac.NewKey(material)
	if err != nil {
		return Result{}, err
	}
	ver, err := macecc.NewVerifier(key, correctBits)
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := Result{Class: class, Trials: trials}
	ct := make([]byte, macecc.BlockSize)
	for t := 0; t < trials; t++ {
		rng.Read(ct)
		orig := append([]byte(nil), ct...)
		addr, counter := uint64(t)*64, uint64(t)
		tag, err := key.Tag(ct, addr, counter)
		if err != nil {
			return res, err
		}
		meta := macecc.PackMeta(tag, ct)

		bits, checkFlips := class.plan(rng)
		for _, b := range bits {
			ct[b/8] ^= 1 << uint(b%8)
		}
		// Flip distinct bits within the 63 MAC+Hamming bits (bit 63 is
		// the scrub parity, outside the protected field).
		for _, b := range rng.Perm(63)[:checkFlips] {
			meta = meta.Flip(b)
		}

		out, err := ver.VerifyAndCorrect(ct, &meta, addr, counter)
		if err != nil {
			return res, err
		}
		switch {
		case out.Status != macecc.OK:
			res.Detected++
		case equal(ct, orig):
			res.Corrected++
		default:
			res.Miscorrected++
		}
		copy(ct, orig)
	}
	return res, nil
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
