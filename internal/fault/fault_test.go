package fault

import "testing"

const trials = 300

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Classes() {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("bad class name %q", s)
		}
		seen[s] = true
	}
	if Class(99).String() != "Class(99)" {
		t.Fatal("unknown class name")
	}
}

func TestResultPercentages(t *testing.T) {
	r := Result{Trials: 200, Corrected: 100, Detected: 60, Miscorrected: 40}
	if r.CorrectedPct() != 50 || r.DetectedPct() != 30 || r.MiscorrectedPct() != 20 {
		t.Fatalf("percentages wrong: %v %v %v",
			r.CorrectedPct(), r.DetectedPct(), r.MiscorrectedPct())
	}
}

// TestFigure3Matrix checks every cell of the Figure 3 comparison.
func TestFigure3Matrix(t *testing.T) {
	mac := func(c Class) Result {
		r, err := InjectMACECC(c, trials, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	sec := func(c Class) Result { return InjectSECDED(c, trials, 1) }

	// Single bit: both correct 100%.
	if r := sec(SingleBit); r.Corrected != trials {
		t.Errorf("SEC-DED single bit: %+v", r)
	}
	if r := mac(SingleBit); r.Corrected != trials {
		t.Errorf("MAC-ECC single bit: %+v", r)
	}

	// Two bits in one word: SEC-DED detects only; MAC-ECC corrects.
	if r := sec(DoubleBitSameWord); r.Detected != trials {
		t.Errorf("SEC-DED double/word should detect-only: %+v", r)
	}
	if r := mac(DoubleBitSameWord); r.Corrected != trials {
		t.Errorf("MAC-ECC double/word should correct: %+v", r)
	}

	// Two bits in two words: both correct (SEC-DED per word, MAC via
	// double flip-and-check).
	if r := sec(DoubleBitSpread); r.Corrected != trials {
		t.Errorf("SEC-DED spread double: %+v", r)
	}
	if r := mac(DoubleBitSpread); r.Corrected != trials {
		t.Errorf("MAC-ECC spread double: %+v", r)
	}

	// Four single-bit flips in four words: SEC-DED corrects all;
	// MAC-ECC exceeds its budget but detects (never silent).
	if r := sec(MultiBitSpread); r.Corrected != trials {
		t.Errorf("SEC-DED 4x1: %+v", r)
	}
	if r := mac(MultiBitSpread); r.Detected != trials {
		t.Errorf("MAC-ECC 4x1 should detect-only: %+v", r)
	}

	// Three bits in one word: SEC-DED may miscorrect (silent corruption);
	// MAC-ECC always detects.
	if r := sec(TripleBitSameWord); r.Miscorrected == 0 {
		t.Errorf("SEC-DED triple/word should sometimes miscorrect: %+v", r)
	}
	if r := mac(TripleBitSameWord); r.Detected != trials {
		t.Errorf("MAC-ECC triple/word should detect: %+v", r)
	}

	// 8-bit burst in one word: SEC-DED unreliable; MAC-ECC detects.
	if r := sec(Burst); r.Corrected != 0 {
		t.Errorf("SEC-DED burst should never fully correct: %+v", r)
	}
	if r := mac(Burst); r.Detected != trials {
		t.Errorf("MAC-ECC burst should detect: %+v", r)
	}

	// Two flips in every word (§3.3's 16-bit bound): SEC-DED detects all
	// of them (2 per word is within its detection guarantee); MAC-in-ECC
	// detects too. Neither corrects, neither is ever silent.
	if r := sec(TwoPerWordAll); r.Detected != trials {
		t.Errorf("SEC-DED 2x8: %+v", r)
	}
	if r := mac(TwoPerWordAll); r.Detected != trials {
		t.Errorf("MAC-ECC 2x8: %+v", r)
	}

	// Check-bit faults: single corrected by both; double detected.
	if r := sec(CheckBitSingle); r.Corrected != trials {
		t.Errorf("SEC-DED 1 check bit: %+v", r)
	}
	if r := mac(CheckBitSingle); r.Corrected != trials {
		t.Errorf("MAC-ECC 1 check bit: %+v", r)
	}
	if r := sec(CheckBitDouble); r.Detected != trials {
		t.Errorf("SEC-DED 2 check bits: %+v", r)
	}
	if r := mac(CheckBitDouble); r.Detected != trials {
		t.Errorf("MAC-ECC 2 check bits: %+v", r)
	}
}

func TestMACECCBudgetZero(t *testing.T) {
	r, err := InjectMACECC(SingleBit, 100, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 100 {
		t.Fatalf("budget 0 should detect-only: %+v", r)
	}
}

func TestMACECCBudgetOne(t *testing.T) {
	r, err := InjectMACECC(DoubleBitSameWord, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Detected != 100 {
		t.Fatalf("budget 1 on double flips should detect-only: %+v", r)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := InjectSECDED(TripleBitSameWord, 500, 7)
	b := InjectSECDED(TripleBitSameWord, 500, 7)
	if a != b {
		t.Fatal("SEC-DED injection not deterministic")
	}
	c, _ := InjectMACECC(DoubleBitSpread, 200, 7, 2)
	d, _ := InjectMACECC(DoubleBitSpread, 200, 7, 2)
	if c != d {
		t.Fatal("MAC-ECC injection not deterministic")
	}
}

func BenchmarkInjectMACECCDouble(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := InjectMACECC(DoubleBitSameWord, 10, int64(i), 2); err != nil {
			b.Fatal(err)
		}
	}
}
