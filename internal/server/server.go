// Package server is the networked authenticated-memory service: a TCP (or
// any net.Conn) front end that exposes a Memory-family device over the
// internal/wire protocol.
//
// The serving model is one reader and one writer goroutine per connection
// with a shared worker pool in between. The reader decodes frames, enforces
// admission control (per-connection in-flight cap, drain state, request
// grammar) and hands accepted requests to a per-connection dispatcher; the
// dispatcher coalesces adjacent same-op spans into single batched engine
// calls and fans batches out to the worker pool; workers complete in
// whatever order the engine serves them, so pipelined requests complete out
// of order and are matched by request ID. The writer gathers completions
// into batched socket writes.
//
// When the backend is sharded (it implements ShardRouter), read/write
// batches whose span lies inside one shard are routed to a worker pinned to
// that shard instead of the shared pool. Affinity turns cross-worker
// contention on a hot shard's lock into queue order on that shard's channel
// — and it keeps each shard's verified caches hot on one worker's timeline.
// A full shard queue never blocks the dispatcher: the batch falls back to
// the shared pool (counted, so the steady-state mix is observable).
//
// Engine verdicts cross the trust boundary as wire statuses: integrity
// failures are MAC_FAIL, quarantine refusals are QUARANTINED, recovery-
// ladder saves are RECOVERED, and (optionally) counter-overflow sweeps are
// OVERFLOW_SWEPT. Nothing is collapsed into an opaque error — zero silent
// escapes through the protocol is a test invariant (see fault_test.go).
//
// Graceful shutdown drains: listeners close, connections stop admitting,
// in-flight requests complete and their responses flush, and the region is
// brought to a FlushAll quiescent point before Shutdown returns.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"authmem"
	"authmem/internal/wire"
)

// The wire protocol's block granularity must be the engine's.
const _ = -uint(wire.BlockBytes - authmem.BlockSize)

// Backend is the device surface the server fronts — exactly the public API
// shared by authmem.SyncMemory and authmem.ShardedMemory. The backend must
// be safe for concurrent use (a bare authmem.Memory is not; wrap it).
type Backend interface {
	Read(addr uint64, dst []byte) (authmem.ReadInfo, error)
	ReadRecover(addr uint64, dst []byte) (authmem.RecoverInfo, error)
	Write(addr uint64, block []byte) error
	ReadBlocks(addr uint64, dst []byte) error
	WriteBlocks(addr uint64, src []byte) error
	FlushAll() error
	Stats() authmem.EngineStats
	RootDigest() authmem.RootDigest
	Size() uint64
}

var (
	_ Backend = (*authmem.SyncMemory)(nil)
	_ Backend = (*authmem.ShardedMemory)(nil)
)

// ShardRouter is the optional backend surface that enables shard worker
// affinity: a backend that can say which shard owns an address gets one
// pinned worker per shard. authmem.ShardedMemory implements it.
type ShardRouter interface {
	Shards() int
	ShardOf(addr uint64) int
}

var _ ShardRouter = (*authmem.ShardedMemory)(nil)

// shardJob is one coalesced batch routed to a pinned shard worker.
type shardJob struct {
	c     *conn
	batch []request
}

// ErrServerClosed is returned by Serve and DialLoopback once Shutdown or
// Close has begun.
var ErrServerClosed = errors.New("server: closed")

// Config configures a Server. Backend is required; zero values elsewhere
// select the defaults noted on each field.
type Config struct {
	// Backend is the device served. Required; must be concurrency-safe.
	Backend Backend

	// NodeID is this node's stable identity, reported in the OpHello
	// handshake. Cluster placement hashes it, so give every member a
	// distinct, restart-stable ID (memserved -node-id). Default: a random
	// hex ID, fine for standalone serving.
	NodeID string

	// Epoch identifies this incarnation of the backend's volatile state,
	// reported in OpHello. A cluster client that observes an epoch change
	// knows the node restarted and its stripes need repair. Default: the
	// process start time in nanoseconds.
	Epoch uint64

	// MaxInflight caps accepted-but-unanswered requests per connection;
	// excess requests are rejected with StatusBusy (default 64).
	MaxInflight int

	// Workers bounds concurrent engine calls across all connections
	// (default GOMAXPROCS, min 2).
	Workers int

	// RequestTimeout is the per-request queue deadline: a request still
	// waiting to execute this long after admission is rejected with
	// StatusDeadline and never executed (default 2s; negative disables).
	RequestTimeout time.Duration

	// DrainGrace is how long a draining connection keeps reading (and
	// answering StatusShuttingDown) before its reader stops, letting
	// responses to already-pipelined requests flush (default 200ms).
	DrainGrace time.Duration

	// SweepStatus enables the advisory StatusOverflowSwept: writes whose
	// engine call raised the group re-encryption count report the sweep.
	// It costs two engine stats merges per write batch, so it is opt-in.
	SweepStatus bool

	// MetricsInterval starts a periodic stats loop when positive; each
	// tick delivers a snapshot to OnMetrics.
	MetricsInterval time.Duration
	OnMetrics       func(wire.StatsSnapshot)

	// Logf receives connection-level diagnostics (default: discarded).
	Logf func(format string, args ...any)
}

// counters is the server's protocol-event ledger. All fields are atomics so
// every connection increments without shared locks.
type counters struct {
	connsOpened, connsClosed                        atomic.Uint64
	readOps, writeOps, flushOps, statsOps, rootOps  atomic.Uint64
	helloOps, rootPinned                            atomic.Uint64
	blocksRead, blocksWritten                       atomic.Uint64
	busyRejected, deadlineRejected, drainRejected   atomic.Uint64
	badRequests, malformedFrames                    atomic.Uint64
	coalescedBatches, coalescedRequests             atomic.Uint64
	affinityDispatched, affinityBypassed            atomic.Uint64
	macFails, quarantined, recovered, overflowSwept atomic.Uint64
}

func (c *counters) snapshot() wire.ServerCounters {
	return wire.ServerCounters{
		ConnsOpened:        c.connsOpened.Load(),
		ConnsClosed:        c.connsClosed.Load(),
		ReadOps:            c.readOps.Load(),
		WriteOps:           c.writeOps.Load(),
		FlushOps:           c.flushOps.Load(),
		StatsOps:           c.statsOps.Load(),
		RootOps:            c.rootOps.Load(),
		HelloOps:           c.helloOps.Load(),
		RootPinned:         c.rootPinned.Load(),
		BlocksRead:         c.blocksRead.Load(),
		BlocksWritten:      c.blocksWritten.Load(),
		BusyRejected:       c.busyRejected.Load(),
		DeadlineRejected:   c.deadlineRejected.Load(),
		DrainRejected:      c.drainRejected.Load(),
		BadRequests:        c.badRequests.Load(),
		MalformedFrames:    c.malformedFrames.Load(),
		CoalescedBatches:   c.coalescedBatches.Load(),
		CoalescedRequests:  c.coalescedRequests.Load(),
		AffinityDispatched: c.affinityDispatched.Load(),
		AffinityBypassed:   c.affinityBypassed.Load(),
		MACFails:           c.macFails.Load(),
		Quarantined:        c.quarantined.Load(),
		Recovered:          c.recovered.Load(),
		OverflowSwept:      c.overflowSwept.Load(),
	}
}

// Server serves one Backend to any number of connections.
type Server struct {
	cfg  Config
	size uint64
	sem  chan struct{} // worker-pool tokens
	ctr  counters

	// Shard worker affinity (nil/empty when the backend is unsharded):
	// one pinned worker goroutine and bounded queue per shard.
	router ShardRouter
	shardQ []chan shardJob

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	draining  bool

	connWG       sync.WaitGroup
	affinityWG   sync.WaitGroup
	affinityOnce sync.Once
	metricsStop  chan struct{}
	metricsWG    sync.WaitGroup
}

// New builds a Server. The metrics loop (if configured) starts immediately;
// connections arrive via Serve, ListenAndServe, ServeConn, or DialLoopback.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, errors.New("server: Config.Backend is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = max(2, runtime.GOMAXPROCS(0))
	}
	switch {
	case cfg.RequestTimeout == 0:
		cfg.RequestTimeout = 2 * time.Second
	case cfg.RequestTimeout < 0:
		cfg.RequestTimeout = 0 // disabled
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 200 * time.Millisecond
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.NodeID == "" {
		var raw [4]byte
		rand.Read(raw[:])
		cfg.NodeID = "node-" + hex.EncodeToString(raw[:])
	}
	if cfg.Epoch == 0 {
		cfg.Epoch = uint64(time.Now().UnixNano())
	}
	s := &Server{
		cfg:       cfg,
		size:      cfg.Backend.Size(),
		sem:       make(chan struct{}, cfg.Workers),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
	}
	if r, ok := cfg.Backend.(ShardRouter); ok && r.Shards() > 1 {
		s.router = r
		s.shardQ = make([]chan shardJob, r.Shards())
		for i := range s.shardQ {
			// One full admission window per shard: a single connection's
			// whole pipeline can pin to one shard without falling back.
			s.shardQ[i] = make(chan shardJob, cfg.MaxInflight)
			s.affinityWG.Add(1)
			go s.shardWorker(s.shardQ[i])
		}
	}
	if cfg.MetricsInterval > 0 {
		s.metricsStop = make(chan struct{})
		s.metricsWG.Add(1)
		go s.metricsLoop()
	}
	return s, nil
}

// Snapshot returns the current stats snapshot — the same document an
// OpStats request receives.
func (s *Server) Snapshot() wire.StatsSnapshot {
	return wire.StatsSnapshot{
		ProtoVersion: wire.Version,
		Server:       s.ctr.snapshot(),
		Engine:       s.cfg.Backend.Stats(),
	}
}

func (s *Server) snapshotJSON() ([]byte, error) { return json.Marshal(s.Snapshot()) }

// NodeInfo returns the identity document an OpHello request receives.
func (s *Server) NodeInfo() wire.NodeInfo {
	shards := 1
	if r, ok := s.cfg.Backend.(ShardRouter); ok {
		shards = r.Shards()
	}
	return wire.NodeInfo{
		NodeID:       s.cfg.NodeID,
		Epoch:        s.cfg.Epoch,
		ProtoVersion: wire.Version,
		Size:         s.size,
		Shards:       shards,
		BlockBytes:   wire.BlockBytes,
	}
}

func (s *Server) nodeInfoJSON() ([]byte, error) { return json.Marshal(s.NodeInfo()) }

func (s *Server) metricsLoop() {
	defer s.metricsWG.Done()
	t := time.NewTicker(s.cfg.MetricsInterval)
	defer t.Stop()
	for {
		select {
		case <-s.metricsStop:
			return
		case <-t.C:
			snap := s.Snapshot()
			if s.cfg.OnMetrics != nil {
				s.cfg.OnMetrics(snap)
			} else {
				s.cfg.Logf("server: reads=%d writes=%d busy=%d macfail=%d quarantined=%d conns=%d",
					snap.Server.ReadOps, snap.Server.WriteOps, snap.Server.BusyRejected,
					snap.Server.MACFails, snap.Server.Quarantined,
					snap.Server.ConnsOpened-snap.Server.ConnsClosed)
			}
		}
	}
}

// ListenAndServe listens on addr (TCP) and serves until Shutdown or a fatal
// accept error.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections from l until Shutdown/Close, returning
// ErrServerClosed on a clean drain.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrServerClosed
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
		l.Close()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return err
		}
		s.connWG.Add(1)
		go func() {
			defer s.connWG.Done()
			s.serveConn(nc)
		}()
	}
}

// ServeConn serves one pre-established connection, blocking until it closes.
// It is how alternative transports (TLS wrappers, unix sockets, test pipes)
// attach.
func (s *Server) ServeConn(nc net.Conn) {
	s.connWG.Add(1)
	defer s.connWG.Done()
	s.serveConn(nc)
}

// DialLoopback returns the client half of an in-process connection served
// by this server — the full protocol stack with no sockets, used by tests
// and the loopback benchmarks.
func (s *Server) DialLoopback() (net.Conn, error) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		return nil, ErrServerClosed
	}
	cs, ss := net.Pipe()
	s.connWG.Add(1)
	go func() {
		defer s.connWG.Done()
		s.serveConn(ss)
	}()
	return cs, nil
}

// Shutdown gracefully drains the server: stop accepting, let every
// connection answer its in-flight requests (new ones get
// StatusShuttingDown), close the connections, and bring the backend to a
// FlushAll quiescent point. If ctx expires first, remaining connections are
// closed hard — but the FlushAll still runs, so the engine's own state is
// consistent either way.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.beginDrain(s.cfg.DrainGrace)
	}
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	var ctxErr error
	select {
	case <-done:
	case <-ctx.Done():
		ctxErr = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.nc.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.stopAffinity()
	s.stopMetrics()
	if err := s.cfg.Backend.FlushAll(); err != nil {
		return err
	}
	return ctxErr
}

// Close aborts: listeners and connections are closed immediately without
// drain. Prefer Shutdown.
func (s *Server) Close() error {
	s.mu.Lock()
	s.draining = true
	for l := range s.listeners {
		l.Close()
	}
	for c := range s.conns {
		c.nc.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.stopAffinity()
	s.stopMetrics()
	return nil
}

// shardWorker is one shard's pinned executor: it serializes every batch
// routed to its shard, so same-shard batches never contend on the shard
// lock across pool workers.
func (s *Server) shardWorker(q chan shardJob) {
	defer s.affinityWG.Done()
	for j := range q {
		j.c.execute(j.batch)
		j.c.workerWG.Done()
	}
}

// shardQueueFor returns the pinned queue for a coalesced batch whose span
// lies inside one shard, or nil when the batch must use the shared pool
// (unsharded backend, non-data op, or a span crossing a shard boundary).
func (s *Server) shardQueueFor(batch []request) chan shardJob {
	if s.shardQ == nil {
		return nil
	}
	h := batch[0].h
	if h.Op != wire.OpRead && h.Op != wire.OpWrite {
		return nil
	}
	sh := s.router.ShardOf(h.Addr)
	if end := batch[len(batch)-1].h.End(); end-1 > h.Addr && s.router.ShardOf(end-1) != sh {
		return nil
	}
	return s.shardQ[sh]
}

// stopAffinity retires the pinned shard workers. Callers must have waited
// for every connection first (connWG): dispatchers are the only senders.
func (s *Server) stopAffinity() {
	s.affinityOnce.Do(func() {
		for _, q := range s.shardQ {
			close(q)
		}
		s.affinityWG.Wait()
	})
}

func (s *Server) stopMetrics() {
	if s.metricsStop != nil {
		s.mu.Lock()
		select {
		case <-s.metricsStop:
		default:
			close(s.metricsStop)
		}
		s.mu.Unlock()
		s.metricsWG.Wait()
	}
}

func (s *Server) register(c *conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	s.ctr.connsOpened.Add(1)
	return true
}

func (s *Server) unregister(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	s.ctr.connsClosed.Add(1)
}
