package server_test

import (
	"bytes"
	"errors"
	"testing"

	"authmem"
	"authmem/client"
	"authmem/internal/server"
	"authmem/internal/wire"
)

func newShardedMem(t testing.TB, size uint64, shards int, scheme authmem.CounterScheme) *authmem.ShardedMemory {
	t.Helper()
	cfg := authmem.DefaultConfig(size)
	cfg.Key = testKey()
	cfg.Scheme = scheme
	m, err := authmem.NewSharded(cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func loopbackClient(t testing.TB, s *server.Server, opts client.Options) *client.Client {
	t.Helper()
	opts.Dial = s.DialLoopback
	c, err := client.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// engineVerdictStatus maps a direct ReadRecover outcome onto the wire status
// the server must report for the same state — the oracle for the
// taxonomy-fidelity assertions below.
func engineVerdictStatus(ri authmem.RecoverInfo, err error) wire.Status {
	if err != nil {
		var qe *authmem.QuarantineError
		var ie *authmem.IntegrityError
		switch {
		case errors.As(err, &qe):
			return wire.StatusQuarantined
		case errors.As(err, &ie):
			return wire.StatusMACFail
		default:
			return wire.StatusInternal
		}
	}
	if ri.RetryRecovered || ri.MetadataRepaired {
		return wire.StatusRecovered
	}
	return wire.StatusOK
}

func clientReadStatus(t *testing.T, c *client.Client, addr uint64, dst []byte) wire.Status {
	t.Helper()
	info, err := c.Read(addr, dst)
	if err == nil {
		return info.Status
	}
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("read at %#x: non-status error %v", addr, err)
	}
	return se.Status
}

// TestFaultTaxonomyOverWire tampers blocks through the engine's fault APIs
// and checks that every verdict the engine would give locally arrives
// verbatim as the documented wire status through the full client/server
// stack. A twin region receives the identical workload and tampering and is
// read directly — it is the oracle for what the engine verdict is.
func TestFaultTaxonomyOverWire(t *testing.T) {
	const size = 1 << 20
	mem := newShardedMem(t, size, 4, authmem.DeltaEncoding)
	twin := newShardedMem(t, size, 4, authmem.DeltaEncoding)

	s := newTestServer(t, server.Config{Backend: mem})
	c := loopbackClient(t, s, client.Options{MaxRetries: 1})

	// Identical workload on both regions.
	shadow := map[uint64][]byte{}
	for i := 0; i < 16; i++ {
		addr := uint64(i) * 4096
		data := pattern(byte(0x40+i), wire.BlockBytes)
		if _, err := c.Write(addr, data); err != nil {
			t.Fatalf("write %#x: %v", addr, err)
		}
		if err := twin.Write(addr, data); err != nil {
			t.Fatal(err)
		}
		shadow[addr] = data
	}

	tampers := []struct {
		name string
		flip func(m *authmem.ShardedMemory, addr uint64) error
	}{
		{"data bit", func(m *authmem.ShardedMemory, addr uint64) error { return m.FlipDataBit(addr, 7) }},
		{"ecc bit", func(m *authmem.ShardedMemory, addr uint64) error { return m.FlipECCBit(addr, 3) }},
		{"data burst", func(m *authmem.ShardedMemory, addr uint64) error {
			// Three flips exceed the 2-bit flip-and-check budget: uncorrectable.
			for _, bit := range []int{11, 97, 203} {
				if err := m.FlipDataBit(addr, bit); err != nil {
					return err
				}
			}
			return nil
		}},
		{"counter bit", func(m *authmem.ShardedMemory, addr uint64) error { return m.FlipCounterBit(addr, 2) }},
	}
	for i, tc := range tampers {
		addr := uint64(i) * 4096
		if err := tc.flip(mem, addr); err != nil {
			t.Fatalf("%s: tamper served region: %v", tc.name, err)
		}
		if err := tc.flip(twin, addr); err != nil {
			t.Fatalf("%s: tamper twin: %v", tc.name, err)
		}

		// The engine verdict, straight from the twin.
		buf := make([]byte, wire.BlockBytes)
		want := engineVerdictStatus(twin.ReadRecover(addr, buf))

		dst := make([]byte, wire.BlockBytes)
		got := clientReadStatus(t, c, addr, dst)
		if got != want {
			t.Fatalf("%s at %#x: wire status %v, engine verdict %v", tc.name, addr, got, want)
		}
		// Zero silent escapes: any successful read must return the true data.
		if got.Success() && !bytes.Equal(dst, shadow[addr]) {
			t.Fatalf("%s at %#x: status %v but wrong bytes (silent escape)", tc.name, addr, got)
		}

		// Second read: quarantined blocks must now answer QUARANTINED; the
		// twin again says which.
		want2 := engineVerdictStatus(twin.ReadRecover(addr, buf))
		got2 := clientReadStatus(t, c, addr, dst)
		if got2 != want2 {
			t.Fatalf("%s at %#x: second read wire status %v, engine verdict %v", tc.name, addr, got2, want2)
		}

		// A fresh write releases quarantine on both sides; the block must
		// then read clean over the wire.
		fresh := pattern(byte(0xC0+i), wire.BlockBytes)
		if _, err := c.Write(addr, fresh); err != nil {
			t.Fatalf("%s at %#x: rewrite: %v", tc.name, addr, err)
		}
		if err := twin.Write(addr, fresh); err != nil {
			t.Fatal(err)
		}
		shadow[addr] = fresh
		info, err := c.Read(addr, dst)
		if err != nil || !bytes.Equal(dst, fresh) {
			t.Fatalf("%s at %#x: read after rewrite: %v (status %v)", tc.name, addr, err, info.Status)
		}
	}

	// Untampered addresses stayed clean throughout.
	for addr, want := range shadow {
		dst := make([]byte, wire.BlockBytes)
		if _, err := c.Read(addr, dst); err != nil {
			t.Fatalf("clean block %#x: %v", addr, err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("clean block %#x returned wrong bytes", addr)
		}
	}

	// The server's ledger must account for every integrity event it reported.
	snap := s.Snapshot()
	if snap.Server.MACFails == 0 && snap.Server.Recovered == 0 && snap.Server.Quarantined == 0 {
		t.Fatal("no integrity events in the server ledger despite tampering")
	}
}

// TestQuarantineLifecycleOverWire pins the full MAC_FAIL → QUARANTINED →
// OK-after-rewrite ladder for a plain data flip, with the quarantined-now
// flag on the first failure.
func TestQuarantineLifecycleOverWire(t *testing.T) {
	mem := newShardedMem(t, 1<<20, 2, authmem.DeltaEncoding)
	s := newTestServer(t, server.Config{Backend: mem})
	c := loopbackClient(t, s, client.Options{})

	const addr = 64 * 1024
	data := pattern(0x77, wire.BlockBytes)
	if _, err := c.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	// One flip would be absorbed by MAC-in-ECC flip-and-check correction;
	// three exceed the budget and must fail authentication.
	for _, bit := range []int{0, 9, 130} {
		if err := mem.FlipDataBit(addr, bit); err != nil {
			t.Fatal(err)
		}
	}

	dst := make([]byte, wire.BlockBytes)
	_, err := c.Read(addr, dst)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != wire.StatusMACFail {
		t.Fatalf("first read after tamper: %v, want MAC_FAIL", err)
	}
	if se.Addr != addr {
		t.Fatalf("MAC_FAIL at %#x, want %#x", se.Addr, uint64(addr))
	}
	if !mem.Quarantined(addr) {
		t.Fatal("engine did not quarantine after exhausting recovery")
	}

	if _, err = c.Read(addr, dst); !errors.As(err, &se) || se.Status != wire.StatusQuarantined {
		t.Fatalf("second read: %v, want QUARANTINED", err)
	}

	if _, err := c.Write(addr, data); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if _, err := c.Read(addr, dst); err != nil {
		t.Fatalf("read after rewrite: %v", err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("read after rewrite returned wrong bytes")
	}

	snap := s.Snapshot()
	if snap.Server.MACFails < 1 || snap.Server.Quarantined < 1 {
		t.Fatalf("ledger: macfails=%d quarantined=%d", snap.Server.MACFails, snap.Server.Quarantined)
	}
}

// TestOverflowSweptStatus hammers one block under the split-counter scheme
// until its 7-bit minor counter overflows; with SweepStatus enabled the
// write that triggered the group re-encryption must report OVERFLOW_SWEPT.
func TestOverflowSweptStatus(t *testing.T) {
	cfg := authmem.DefaultConfig(1 << 20)
	cfg.Key = testKey()
	cfg.Scheme = authmem.SplitCounter
	mem, err := authmem.NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, server.Config{Backend: mem, SweepStatus: true})
	c := loopbackClient(t, s, client.Options{})

	data := pattern(0x5C, wire.BlockBytes)
	swept := false
	for i := 0; i < 300 && !swept; i++ {
		info, err := c.Write(0, data)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if info.Status == wire.StatusOverflowSwept {
			swept = true
		}
	}
	if !swept {
		t.Fatal("minor-counter overflow never surfaced as OVERFLOW_SWEPT")
	}
	if got := s.Snapshot().Server.OverflowSwept; got == 0 {
		t.Fatal("OverflowSwept counter not incremented")
	}
	if mem.Stats().GroupReencrypts == 0 {
		t.Fatal("engine never re-encrypted — test premise broken")
	}
}
