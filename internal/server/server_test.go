package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"authmem"
	"authmem/internal/server"
	"authmem/internal/wire"
)

func testKey() []byte { return bytes.Repeat([]byte{0x5A}, authmem.KeySize) }

func newSyncMem(t testing.TB, size uint64) *authmem.SyncMemory {
	t.Helper()
	cfg := authmem.DefaultConfig(size)
	cfg.Key = testKey()
	m, err := authmem.NewSync(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newTestServer(t testing.TB, cfg server.Config) *server.Server {
	t.Helper()
	if cfg.Backend == nil {
		cfg.Backend = newSyncMem(t, 1<<20)
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// rawConn is a frame-level test client: it speaks the wire protocol directly
// so tests control exactly what bytes hit the server and in what order.
type rawConn struct {
	t  *testing.T
	nc net.Conn
	fr *wire.Reader
	id uint64
}

func dialRaw(t *testing.T, s *server.Server) *rawConn {
	t.Helper()
	nc, err := s.DialLoopback()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	return &rawConn{t: t, nc: nc, fr: wire.NewReader(nc)}
}

// send writes one request frame and returns its ID.
func (rc *rawConn) send(op wire.Op, addr uint64, count uint32, payload []byte) uint64 {
	rc.t.Helper()
	rc.id++
	h := wire.Header{Version: wire.Version, Op: op, ID: rc.id, Addr: addr, Count: count}
	frame := wire.AppendFrame(nil, h, payload)
	if _, err := rc.nc.Write(frame); err != nil {
		rc.t.Fatalf("send %v: %v", op, err)
	}
	return rc.id
}

// sendMany writes several request frames in a single transport write.
func (rc *rawConn) sendMany(reqs ...func() []byte) {
	rc.t.Helper()
	var buf []byte
	for _, f := range reqs {
		buf = append(buf, f()...)
	}
	if _, err := rc.nc.Write(buf); err != nil {
		rc.t.Fatalf("sendMany: %v", err)
	}
}

func (rc *rawConn) frame(op wire.Op, addr uint64, count uint32, payload []byte) func() []byte {
	rc.id++
	h := wire.Header{Version: wire.Version, Op: op, ID: rc.id, Addr: addr, Count: count}
	return func() []byte { return wire.AppendFrame(nil, h, payload) }
}

// recv reads one response frame.
func (rc *rawConn) recv() (wire.Header, []byte) {
	rc.t.Helper()
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	h, payload, err := rc.fr.Next()
	if err != nil {
		rc.t.Fatalf("recv: %v", err)
	}
	return h, payload
}

func pattern(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b ^ byte(i)
	}
	return p
}

// gatedBackend wraps a backend and parks ReadBlocks/ReadRecover calls for
// gated addresses until the gate channel is closed, so tests can hold a
// worker mid-request deterministically.
type gatedBackend struct {
	server.Backend
	gate     chan struct{}
	gateAll  bool
	gateAddr uint64
	hits     chan uint64

	flushes atomic.Int64
}

func newGated(b server.Backend) *gatedBackend {
	return &gatedBackend{Backend: b, gate: make(chan struct{}), hits: make(chan uint64, 64)}
}

func (g *gatedBackend) wait(addr uint64) {
	if g.gateAll || addr == g.gateAddr {
		select {
		case g.hits <- addr:
		default:
		}
		<-g.gate
	}
}

func (g *gatedBackend) ReadBlocks(addr uint64, dst []byte) error {
	g.wait(addr)
	return g.Backend.ReadBlocks(addr, dst)
}

func (g *gatedBackend) ReadRecover(addr uint64, dst []byte) (authmem.RecoverInfo, error) {
	g.wait(addr)
	return g.Backend.ReadRecover(addr, dst)
}

func (g *gatedBackend) FlushAll() error {
	g.flushes.Add(1)
	return g.Backend.FlushAll()
}

func TestLoopbackRoundTrip(t *testing.T) {
	mem := newSyncMem(t, 1<<20)
	s := newTestServer(t, server.Config{Backend: mem})
	rc := dialRaw(t, s)

	data := pattern(0xA1, 2*wire.BlockBytes)
	wid := rc.send(wire.OpWrite, 128, 2, data)
	if h, _ := rc.recv(); h.ID != wid || h.Status != wire.StatusOK {
		t.Fatalf("write response: id=%d status=%v", h.ID, h.Status)
	}

	rid := rc.send(wire.OpRead, 128, 2, nil)
	h, payload := rc.recv()
	if h.ID != rid || h.Status != wire.StatusOK {
		t.Fatalf("read response: id=%d status=%v", h.ID, h.Status)
	}
	if !bytes.Equal(payload, data) {
		t.Fatal("read returned wrong bytes")
	}

	fid := rc.send(wire.OpFlush, 0, 0, nil)
	if h, _ := rc.recv(); h.ID != fid || h.Status != wire.StatusOK {
		t.Fatalf("flush response: id=%d status=%v", h.ID, h.Status)
	}

	sid := rc.send(wire.OpStats, 0, 0, nil)
	h, payload = rc.recv()
	if h.ID != sid || h.Status != wire.StatusOK {
		t.Fatalf("stats response: id=%d status=%v", h.ID, h.Status)
	}
	var snap wire.StatsSnapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if snap.ProtoVersion != wire.Version || snap.Server.WriteOps != 1 || snap.Server.ReadOps != 1 {
		t.Fatalf("snapshot: %+v", snap.Server)
	}
	if snap.Engine.Writes == 0 {
		t.Fatal("engine stats missing from snapshot")
	}

	did := rc.send(wire.OpRootDigest, 0, 0, nil)
	h, payload = rc.recv()
	if h.ID != did || h.Status != wire.StatusOK {
		t.Fatalf("root response: id=%d status=%v", h.ID, h.Status)
	}
	var want authmem.RootDigest
	if len(payload) != len(want) {
		t.Fatalf("root digest is %d bytes, want %d", len(payload), len(want))
	}
	want = mem.RootDigest()
	if !bytes.Equal(payload, want[:]) {
		t.Fatal("root digest over the wire disagrees with the backend")
	}
}

// TestPipelinedOutOfOrderCompletion holds one read in the backend while two
// later pipelined requests complete: the later responses must come back
// first, proving responses are not serialized in request order.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	g := newGated(newSyncMem(t, 1<<20))
	g.gateAddr = 0
	s := newTestServer(t, server.Config{Backend: g, Workers: 4, RequestTimeout: -1})
	rc := dialRaw(t, s)

	slow := rc.send(wire.OpRead, 0, 1, nil)
	<-g.hits // the gated read's worker is parked inside the backend

	w := rc.send(wire.OpWrite, 4096, 1, pattern(0x33, wire.BlockBytes))
	r := rc.send(wire.OpRead, 8192, 1, nil)

	got := []uint64{}
	for i := 0; i < 2; i++ {
		h, _ := rc.recv()
		if h.Status != wire.StatusOK {
			t.Fatalf("response %d: status %v", h.ID, h.Status)
		}
		got = append(got, h.ID)
	}
	for _, id := range got {
		if id == slow {
			t.Fatal("gated request completed before it was released")
		}
		if id != w && id != r {
			t.Fatalf("unexpected response id %d", id)
		}
	}
	close(g.gate)
	if h, _ := rc.recv(); h.ID != slow || h.Status != wire.StatusOK {
		t.Fatalf("gated read: id=%d status=%v", h.ID, h.Status)
	}
}

// TestAdjacentWriteCoalescing parks the single worker, queues three adjacent
// writes, and checks the dispatcher merged the trailing pair into one batch.
func TestAdjacentWriteCoalescing(t *testing.T) {
	g := newGated(newSyncMem(t, 1<<20))
	g.gateAddr = 512
	s := newTestServer(t, server.Config{Backend: g, Workers: 1, RequestTimeout: -1})
	rc := dialRaw(t, s)

	slow := rc.send(wire.OpRead, 512, 1, nil)
	<-g.hits // the only worker is parked; the dispatcher is free

	// First write: dispatcher dequeues it and blocks acquiring the worker.
	w0 := rc.send(wire.OpWrite, 0, 1, pattern(0x10, wire.BlockBytes))
	time.Sleep(20 * time.Millisecond)
	// Next two adjacent writes queue behind it and coalesce when the
	// dispatcher comes back around.
	rc.sendMany(
		rc.frame(wire.OpWrite, 64, 1, pattern(0x20, wire.BlockBytes)),
		rc.frame(wire.OpWrite, 128, 1, pattern(0x30, wire.BlockBytes)),
	)
	time.Sleep(20 * time.Millisecond)
	close(g.gate)

	okIDs := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		h, _ := rc.recv()
		if h.Status != wire.StatusOK {
			t.Fatalf("response %d: status %v", h.ID, h.Status)
		}
		okIDs[h.ID] = true
	}
	if !okIDs[slow] || !okIDs[w0] {
		t.Fatalf("missing responses: got %v", okIDs)
	}

	snap := s.Snapshot()
	if snap.Server.CoalescedBatches != 1 || snap.Server.CoalescedRequests != 1 {
		t.Fatalf("coalescing counters: batches=%d requests=%d, want 1/1",
			snap.Server.CoalescedBatches, snap.Server.CoalescedRequests)
	}

	// The coalesced writes must have landed correctly.
	rid := rc.send(wire.OpRead, 0, 3, nil)
	h, payload := rc.recv()
	if h.ID != rid || h.Status != wire.StatusOK {
		t.Fatalf("verify read: id=%d status=%v", h.ID, h.Status)
	}
	want := append(append(pattern(0x10, wire.BlockBytes), pattern(0x20, wire.BlockBytes)...), pattern(0x30, wire.BlockBytes)...)
	if !bytes.Equal(payload, want) {
		t.Fatal("coalesced writes landed wrong bytes")
	}
}

// TestBusyBackpressure fills the in-flight window with parked reads and
// checks that excess pipelined requests are rejected with StatusBusy without
// being executed.
func TestBusyBackpressure(t *testing.T) {
	g := newGated(newSyncMem(t, 1<<20))
	g.gateAll = true
	s := newTestServer(t, server.Config{Backend: g, MaxInflight: 2, Workers: 4, RequestTimeout: -1})
	rc := dialRaw(t, s)

	// Non-adjacent addresses so nothing coalesces.
	admitted := []uint64{
		rc.send(wire.OpRead, 0, 1, nil),
		rc.send(wire.OpRead, 256, 1, nil),
	}
	rejected := []uint64{
		rc.send(wire.OpRead, 512, 1, nil),
		rc.send(wire.OpRead, 1024, 1, nil),
		rc.send(wire.OpRead, 2048, 1, nil),
	}

	for i := 0; i < len(rejected); i++ {
		h, _ := rc.recv()
		if h.Status != wire.StatusBusy {
			t.Fatalf("overflow request %d: status %v, want BUSY", h.ID, h.Status)
		}
		if h.ID != rejected[i] {
			t.Fatalf("busy rejection for id %d, want %d", h.ID, rejected[i])
		}
	}
	close(g.gate)
	seen := map[uint64]bool{}
	for i := 0; i < len(admitted); i++ {
		h, _ := rc.recv()
		if h.Status != wire.StatusOK {
			t.Fatalf("admitted request %d: status %v", h.ID, h.Status)
		}
		seen[h.ID] = true
	}
	for _, id := range admitted {
		if !seen[id] {
			t.Fatalf("admitted request %d never answered", id)
		}
	}
	if got := s.Snapshot().Server.BusyRejected; got != uint64(len(rejected)) {
		t.Fatalf("BusyRejected = %d, want %d", got, len(rejected))
	}
}

// TestRequestDeadline parks the single worker long enough that a queued
// request exceeds its queue deadline and is rejected, not executed.
func TestRequestDeadline(t *testing.T) {
	g := newGated(newSyncMem(t, 1<<20))
	g.gateAll = true
	s := newTestServer(t, server.Config{Backend: g, Workers: 1, RequestTimeout: 50 * time.Millisecond})
	rc := dialRaw(t, s)

	first := rc.send(wire.OpRead, 0, 1, nil)
	<-g.hits
	second := rc.send(wire.OpRead, 256, 1, nil) // dequeued, waiting for the worker
	time.Sleep(20 * time.Millisecond)
	stale := rc.send(wire.OpRead, 1024, 1, nil) // still queued when the deadline hits
	time.Sleep(150 * time.Millisecond)
	close(g.gate)

	statuses := map[uint64]wire.Status{}
	for i := 0; i < 3; i++ {
		h, _ := rc.recv()
		statuses[h.ID] = h.Status
	}
	if statuses[first] != wire.StatusOK || statuses[second] != wire.StatusOK {
		t.Fatalf("in-flight requests: %v", statuses)
	}
	if statuses[stale] != wire.StatusDeadline {
		t.Fatalf("stale request: status %v, want DEADLINE", statuses[stale])
	}
	if got := s.Snapshot().Server.DeadlineRejected; got != 1 {
		t.Fatalf("DeadlineRejected = %d, want 1", got)
	}
}

// TestGracefulShutdownDrains starts Shutdown with a request parked in the
// backend: the in-flight request must still be answered, new requests must
// be rejected with SHUTTING_DOWN, and the backend must reach its FlushAll
// quiescent point before Shutdown returns.
func TestGracefulShutdownDrains(t *testing.T) {
	g := newGated(newSyncMem(t, 1<<20))
	g.gateAddr = 0
	s := newTestServer(t, server.Config{Backend: g, RequestTimeout: -1, DrainGrace: 300 * time.Millisecond})
	rc := dialRaw(t, s)

	inflight := rc.send(wire.OpRead, 0, 1, nil)
	<-g.hits

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Wait until the drain flag reaches the connection.
	deadline := time.Now().Add(2 * time.Second)
	var lateStatus wire.Status
	for {
		late := rc.send(wire.OpRead, 4096, 1, nil)
		h, _ := rc.recv()
		if h.ID != late {
			// The gated response can interleave only after release; before
			// that the only other traffic is our own rejections.
			t.Fatalf("unexpected response id %d", h.ID)
		}
		lateStatus = h.Status
		if lateStatus == wire.StatusShuttingDown || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if lateStatus != wire.StatusShuttingDown {
		t.Fatalf("request during drain: status %v, want SHUTTING_DOWN", lateStatus)
	}

	close(g.gate)
	h, _ := rc.recv()
	if h.ID != inflight || h.Status != wire.StatusOK {
		t.Fatalf("in-flight during drain: id=%d status=%v", h.ID, h.Status)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if g.flushes.Load() == 0 {
		t.Fatal("Shutdown returned without reaching the FlushAll quiescent point")
	}
	if _, err := s.DialLoopback(); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("DialLoopback after shutdown: %v, want ErrServerClosed", err)
	}
	if err := s.Shutdown(context.Background()); !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("second Shutdown: %v, want ErrServerClosed", err)
	}
}

func TestBadRequestsRejected(t *testing.T) {
	s := newTestServer(t, server.Config{Backend: newSyncMem(t, 1<<20)})
	rc := dialRaw(t, s)

	cases := []struct {
		name  string
		op    wire.Op
		addr  uint64
		count uint32
		data  []byte
	}{
		{"unaligned addr", wire.OpRead, 3, 1, nil},
		{"zero-count read", wire.OpRead, 0, 0, nil},
		{"span past end", wire.OpRead, 1<<20 - 64, 2, nil},
		{"giant span", wire.OpRead, 0, wire.MaxSpanBlocks + 1, nil},
		{"write payload mismatch", wire.OpWrite, 0, 2, make([]byte, wire.BlockBytes)},
		{"unknown op", wire.Op(42), 0, 0, nil},
		{"flush with payload", wire.OpFlush, 0, 0, []byte{1}},
	}
	for _, tc := range cases {
		id := rc.send(tc.op, tc.addr, tc.count, tc.data)
		h, _ := rc.recv()
		if h.ID != id || h.Status != wire.StatusBadRequest {
			t.Fatalf("%s: id=%d status=%v, want BAD_REQUEST", tc.name, h.ID, h.Status)
		}
	}
	if got := s.Snapshot().Server.BadRequests; got != uint64(len(cases)) {
		t.Fatalf("BadRequests = %d, want %d", got, len(cases))
	}
}

// TestMalformedFrameClosesConn sends a bad-version frame and expects the
// server to hang up rather than guess.
func TestMalformedFrameClosesConn(t *testing.T) {
	s := newTestServer(t, server.Config{Backend: newSyncMem(t, 1<<20)})
	rc := dialRaw(t, s)

	h := wire.Header{Version: wire.Version + 1, Op: wire.OpFlush, ID: 1}
	frame := wire.AppendFrame(nil, h, nil)
	if _, err := rc.nc.Write(frame); err != nil {
		t.Fatalf("write: %v", err)
	}
	rc.nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := rc.nc.Read(buf); err == nil {
		t.Fatal("server answered a bad-version frame instead of closing")
	}
	if got := s.Snapshot().Server.MalformedFrames; got != 1 {
		t.Fatalf("MalformedFrames = %d, want 1", got)
	}
}

// TestServeTCPConcurrent drives a real TCP listener with pipelined raw
// clients hammering disjoint regions concurrently, then shuts down cleanly.
func TestServeTCPConcurrent(t *testing.T) {
	mem, err := authmem.NewSharded(func() authmem.Config {
		cfg := authmem.DefaultConfig(1 << 22)
		cfg.Key = testKey()
		return cfg
	}(), 4)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, server.Config{Backend: mem, Workers: 8})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()

	const (
		clients  = 4
		opsEach  = 64
		spanBlks = 4
	)
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			nc, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				errCh <- err
				return
			}
			defer nc.Close()
			fr := wire.NewReader(nc)
			base := uint64(ci) << 20
			// Pipeline all writes, then collect all responses.
			var buf []byte
			for i := 0; i < opsEach; i++ {
				h := wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: uint64(i + 1),
					Addr: base + uint64(i)*spanBlks*wire.BlockBytes, Count: spanBlks}
				buf = wire.AppendFrame(buf, h, pattern(byte(ci*31+i), spanBlks*wire.BlockBytes))
			}
			if _, err := nc.Write(buf); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < opsEach; i++ {
				h, _, err := fr.Next()
				if err != nil || h.Status != wire.StatusOK {
					errCh <- fmt.Errorf("client %d write resp: %v status=%v", ci, err, h.Status)
					return
				}
			}
			// Pipeline all reads and verify against what we wrote,
			// matching responses by ID (they may complete out of order).
			buf = buf[:0]
			for i := 0; i < opsEach; i++ {
				h := wire.Header{Version: wire.Version, Op: wire.OpRead, ID: uint64(1000 + i),
					Addr: base + uint64(i)*spanBlks*wire.BlockBytes, Count: spanBlks}
				buf = wire.AppendFrame(buf, h, nil)
			}
			if _, err := nc.Write(buf); err != nil {
				errCh <- err
				return
			}
			for i := 0; i < opsEach; i++ {
				h, payload, err := fr.Next()
				if err != nil || h.Status != wire.StatusOK {
					errCh <- fmt.Errorf("client %d read resp: %v status=%v", ci, err, h.Status)
					return
				}
				want := pattern(byte(ci*31+int(h.ID-1000)), spanBlks*wire.BlockBytes)
				if !bytes.Equal(payload, want) {
					errCh <- fmt.Errorf("client %d: wrong bytes for id %d", ci, h.ID)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveErr; !errors.Is(err, server.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
}

// TestMetricsLoop checks the periodic snapshot callback fires.
func TestMetricsLoop(t *testing.T) {
	got := make(chan wire.StatsSnapshot, 1)
	s := newTestServer(t, server.Config{
		Backend:         newSyncMem(t, 1<<20),
		MetricsInterval: 10 * time.Millisecond,
		OnMetrics: func(snap wire.StatsSnapshot) {
			select {
			case got <- snap:
			default:
			}
		},
	})
	rc := dialRaw(t, s)
	rc.send(wire.OpWrite, 0, 1, pattern(1, wire.BlockBytes))
	rc.recv()
	select {
	case snap := <-got:
		if snap.ProtoVersion != wire.Version {
			t.Fatalf("snapshot version %d", snap.ProtoVersion)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("metrics callback never fired")
	}
}

// TestShardAffinityRouting checks the pinned-worker path: single-shard
// batches ride the shard worker, cross-shard spans and non-data ops take
// the shared pool, and an unsharded backend never counts affinity at all.
func TestShardAffinityRouting(t *testing.T) {
	mem := newShardedMem(t, 1<<20, 4, authmem.DeltaEncoding)
	s := newTestServer(t, server.Config{Backend: mem})
	rc := dialRaw(t, s)

	shardSize := mem.ShardSize()
	payload := pattern(0x42, 2*wire.BlockBytes)

	// Single-shard writes and reads, one per shard.
	const perShard = 8
	for sh := 0; sh < 4; sh++ {
		base := uint64(sh) * shardSize
		for i := 0; i < perShard; i++ {
			addr := base + uint64(i)*2*wire.BlockBytes
			wid := rc.send(wire.OpWrite, addr, 2, payload)
			if h, _ := rc.recv(); h.ID != wid || h.Status != wire.StatusOK {
				t.Fatalf("write shard %d: %+v", sh, h)
			}
			rid := rc.send(wire.OpRead, addr, 2, nil)
			h, data := rc.recv()
			if h.ID != rid || h.Status != wire.StatusOK {
				t.Fatalf("read shard %d: %+v", sh, h)
			}
			if !bytes.Equal(data, payload) {
				t.Fatalf("read shard %d returned wrong data", sh)
			}
		}
	}
	afterSingle := s.Snapshot().Server
	if want := uint64(4 * perShard * 2); afterSingle.AffinityDispatched != want {
		t.Errorf("AffinityDispatched = %d after single-shard traffic, want %d (bypassed=%d)",
			afterSingle.AffinityDispatched, want, afterSingle.AffinityBypassed)
	}

	// A span straddling the shard 0/1 boundary must bypass the pinned
	// workers (it needs the fan-out) and still serve correct data.
	straddle := shardSize - wire.BlockBytes
	wid := rc.send(wire.OpWrite, straddle, 2, payload)
	if h, _ := rc.recv(); h.ID != wid || h.Status != wire.StatusOK {
		t.Fatalf("straddling write: %+v", h)
	}
	rid := rc.send(wire.OpRead, straddle, 2, nil)
	h, data := rc.recv()
	if h.ID != rid || h.Status != wire.StatusOK || !bytes.Equal(data, payload) {
		t.Fatalf("straddling read: %+v", h)
	}
	afterCross := s.Snapshot().Server
	if afterCross.AffinityDispatched != afterSingle.AffinityDispatched {
		t.Errorf("cross-shard span was affinity-dispatched (%d -> %d)",
			afterSingle.AffinityDispatched, afterCross.AffinityDispatched)
	}

	// Flush is a non-data op: shared pool.
	fid := rc.send(wire.OpFlush, 0, 0, nil)
	if h, _ := rc.recv(); h.ID != fid || h.Status != wire.StatusOK {
		t.Fatalf("flush: %+v", h)
	}
	if got := s.Snapshot().Server.AffinityDispatched; got != afterCross.AffinityDispatched {
		t.Errorf("flush was affinity-dispatched (%d -> %d)", afterCross.AffinityDispatched, got)
	}

	// Clean shutdown must retire the pinned workers without losing responses.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShardAffinityUnsharded pins the counters to zero on a plain SyncMemory.
func TestShardAffinityUnsharded(t *testing.T) {
	s := newTestServer(t, server.Config{})
	rc := dialRaw(t, s)
	payload := pattern(0x21, wire.BlockBytes)
	wid := rc.send(wire.OpWrite, 0, 1, payload)
	if h, _ := rc.recv(); h.ID != wid || h.Status != wire.StatusOK {
		t.Fatalf("write: %+v", h)
	}
	rid := rc.send(wire.OpRead, 0, 1, nil)
	if h, _ := rc.recv(); h.ID != rid || h.Status != wire.StatusOK {
		t.Fatalf("read: %+v", h)
	}
	ctr := s.Snapshot().Server
	if ctr.AffinityDispatched != 0 || ctr.AffinityBypassed != 0 {
		t.Errorf("unsharded backend counted affinity: %+v", ctr)
	}
}

// TestShardAffinityConcurrent hammers a sharded backend from several
// connections at once so pinned workers, pool fallback, and shutdown drain
// all interleave. Run under -race.
func TestShardAffinityConcurrent(t *testing.T) {
	mem := newShardedMem(t, 1<<20, 4, authmem.DeltaEncoding)
	s := newTestServer(t, server.Config{Backend: mem, Workers: 4})
	shardSize := mem.ShardSize()

	const conns = 4
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			nc, err := s.DialLoopback()
			if err != nil {
				errs <- err
				return
			}
			defer nc.Close()
			fr := wire.NewReader(nc)
			payload := pattern(byte(g), wire.BlockBytes)
			for i := 0; i < 100; i++ {
				// Rotate shards; every 8th op straddles a boundary.
				addr := uint64((g+i)%4)*shardSize + uint64(i%16)*wire.BlockBytes
				count := uint32(1)
				if i%8 == 7 {
					addr = shardSize*uint64(1+(g+i)%3) - wire.BlockBytes
					count = 2
				}
				p := payload
				if count == 2 {
					p = pattern(byte(g), 2*wire.BlockBytes)
				}
				h := wire.Header{Version: wire.Version, Op: wire.OpWrite, ID: uint64(i)*2 + 1, Addr: addr, Count: count}
				if _, err := nc.Write(wire.AppendFrame(nil, h, p)); err != nil {
					errs <- err
					return
				}
				h = wire.Header{Version: wire.Version, Op: wire.OpRead, ID: uint64(i)*2 + 2, Addr: addr, Count: count}
				if _, err := nc.Write(wire.AppendFrame(nil, h, nil)); err != nil {
					errs <- err
					return
				}
				nc.SetReadDeadline(time.Now().Add(5 * time.Second))
				for k := 0; k < 2; k++ {
					rh, _, err := fr.Next()
					if err != nil {
						errs <- fmt.Errorf("conn %d: recv: %v", g, err)
						return
					}
					if rh.Status != wire.StatusOK {
						errs <- fmt.Errorf("conn %d: status %v", g, rh.Status)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ctr := s.Snapshot().Server
	if ctr.AffinityDispatched == 0 {
		t.Error("concurrent sharded traffic never used a pinned worker")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
