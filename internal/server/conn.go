package server

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"authmem"
	"authmem/internal/wire"
)

// bufPool recycles payload-sized buffers across requests and responses so
// the data path allocates nothing in steady state beyond what the engine
// itself does.
var bufPool = sync.Pool{
	New: func() any {
		// Room for a maximum span plus a root-pin suffix, so pinned
		// responses never outgrow a pooled buffer.
		b := make([]byte, 0, wire.MaxPayloadBytes+wire.RootPinBytes)
		return &b
	},
}

func getBuf(n int) *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:n]
	return b
}

func putBuf(b *[]byte) {
	if b != nil {
		bufPool.Put(b)
	}
}

// request is an accepted frame queued for execution. data is a pooled copy
// of the write payload (the wire.Reader's buffer is reused per frame, so it
// cannot be referenced past the read loop's iteration).
type request struct {
	h    wire.Header
	data *[]byte
	enq  time.Time
}

// response is a completed or rejected frame awaiting serialization. data
// (when non-nil) is pooled and released by the writer; accepted marks
// responses that retire an admitted request from the in-flight window.
type response struct {
	h        wire.Header
	data     *[]byte
	n        int
	accepted bool
}

type conn struct {
	srv *Server
	nc  netConn

	reqCh  chan request
	respCh chan response

	inflight atomic.Int64
	draining atomic.Bool
	wbroken  bool // writer-side; only the writer goroutine touches it

	workerWG sync.WaitGroup
	batch    []request // dispatcher's reusable coalescing scratch
}

// netConn is the slice of net.Conn the conn machinery uses (all of
// net.Conn, but spelled out so tests can fake it).
type netConn interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	SetReadDeadline(time.Time) error
	Close() error
}

// serveConn runs one connection to completion: reader inline, dispatcher
// and writer as goroutines. It returns when the connection is fully torn
// down with every in-flight response flushed or the transport broken.
func (s *Server) serveConn(nc netConn) {
	c := &conn{
		srv:    s,
		nc:     nc,
		reqCh:  make(chan request, s.cfg.MaxInflight),
		respCh: make(chan response, s.cfg.MaxInflight+16),
	}
	if !s.register(c) {
		nc.Close()
		return
	}
	defer s.unregister(c)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		c.dispatchLoop()
	}()
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()

	c.readLoop()
	close(c.reqCh) // dispatcher drains, waits for workers, closes respCh
	wg.Wait()
	nc.Close()
}

// beginDrain flips the connection into drain mode: new requests are
// answered with StatusShuttingDown, and the reader stops entirely once
// grace elapses (in-flight responses still flush on the way out).
func (c *conn) beginDrain(grace time.Duration) {
	c.draining.Store(true)
	c.nc.SetReadDeadline(time.Now().Add(grace))
}

// readLoop decodes frames and performs admission control. It exits on EOF,
// transport error, malformed framing, or the drain deadline.
func (c *conn) readLoop() {
	fr := wire.NewReader(c.nc)
	for {
		h, payload, err := fr.Next()
		if err != nil {
			if err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
				if errors.Is(err, wire.ErrShortFrame) || errors.Is(err, wire.ErrFrameTooLarge) || errors.Is(err, wire.ErrVersion) {
					c.srv.ctr.malformedFrames.Add(1)
					c.srv.cfg.Logf("server: closing connection: %v", err)
				}
			}
			return
		}
		if verr := h.ValidateRequest(len(payload)); verr != nil {
			c.srv.ctr.badRequests.Add(1)
			c.reject(h, wire.StatusBadRequest)
			continue
		}
		if (h.Op == wire.OpRead || h.Op == wire.OpWrite) && h.End() > c.srv.size {
			c.srv.ctr.badRequests.Add(1)
			c.reject(h, wire.StatusBadRequest)
			continue
		}
		if c.draining.Load() {
			c.srv.ctr.drainRejected.Add(1)
			c.reject(h, wire.StatusShuttingDown)
			continue
		}
		if int(c.inflight.Load()) >= c.srv.cfg.MaxInflight {
			c.srv.ctr.busyRejected.Add(1)
			c.reject(h, wire.StatusBusy)
			continue
		}
		var data *[]byte
		if h.Op == wire.OpWrite {
			data = getBuf(len(payload))
			copy(*data, payload)
		}
		c.inflight.Add(1)
		// Never blocks: in-flight (≤ MaxInflight) bounds queued requests,
		// and reqCh has MaxInflight capacity.
		c.reqCh <- request{h: h, data: data, enq: time.Now()}
	}
}

// reject answers a request without admitting it.
func (c *conn) reject(h wire.Header, st wire.Status) {
	h.Status = st
	h.Count = 0
	h.Flags = 0
	c.respCh <- response{h: h}
}

// dispatchLoop pulls admitted requests, expires stale ones, coalesces runs
// of adjacent same-op spans into one batch, and fans batches out to the
// worker pool. After the request stream ends it waits for outstanding
// workers and closes the response channel, which lets the writer finish.
func (c *conn) dispatchLoop() {
	var pending *request
	open := true
	for open || pending != nil {
		var first request
		switch {
		case pending != nil:
			first, pending = *pending, nil
		default:
			r, ok := <-c.reqCh
			if !ok {
				open = false
				continue
			}
			first = r
		}
		if c.expire(&first) {
			continue
		}
		c.batch = append(c.batch[:0], first)
		if open && (first.h.Op == wire.OpRead || first.h.Op == wire.OpWrite) {
			total := first.h.Count
		collect:
			for total < wire.MaxSpanBlocks {
				select {
				case r2, ok := <-c.reqCh:
					if !ok {
						open = false
						break collect
					}
					if c.expire(&r2) {
						continue
					}
					last := c.batch[len(c.batch)-1]
					if r2.h.Op == first.h.Op && r2.h.Addr == last.h.End() &&
						total+r2.h.Count <= wire.MaxSpanBlocks {
						c.batch = append(c.batch, r2)
						total += r2.h.Count
					} else {
						hold := r2
						pending = &hold
						break collect
					}
				default:
					break collect
				}
			}
		}
		// The worker owns its own copy of the batch slice.
		batch := make([]request, len(c.batch))
		copy(batch, c.batch)
		c.dispatch(batch)
	}
	c.workerWG.Wait()
	close(c.respCh)
}

// dispatch hands a coalesced batch to an executor: the worker pinned to its
// shard when the whole span lives in one shard and that queue has room,
// else a shared-pool goroutine. Enqueueing to a pinned worker never blocks
// — a full queue falls back to the pool so one hot shard cannot stall the
// dispatcher (and with it every other shard's traffic on this connection).
func (c *conn) dispatch(batch []request) {
	c.workerWG.Add(1)
	if q := c.srv.shardQueueFor(batch); q != nil {
		select {
		case q <- shardJob{c: c, batch: batch}:
			c.srv.ctr.affinityDispatched.Add(1)
			return
		default:
			c.srv.ctr.affinityBypassed.Add(1)
		}
	}
	c.srv.sem <- struct{}{}
	go func() {
		defer func() {
			<-c.srv.sem
			c.workerWG.Done()
		}()
		c.execute(batch)
	}()
}

// expire enforces the per-request queue deadline. Expired requests are
// answered with StatusDeadline and never executed.
func (c *conn) expire(r *request) bool {
	d := c.srv.cfg.RequestTimeout
	if d <= 0 || time.Since(r.enq) < d {
		return false
	}
	c.srv.ctr.deadlineRejected.Add(1)
	putBuf(r.data)
	h := r.h
	h.Status = wire.StatusDeadline
	h.Count = 0
	h.Flags = 0
	c.finish(response{h: h, accepted: true})
	return true
}

// maybePin appends the node's current trusted root digest to a successful
// response whose request asked for it with FlagRootPin, and sets the flag
// on the response to mark the suffix present. Failed responses never pin:
// their post-operation root is not an attestation of anything the client
// got. Computing the root forces a flush, which is why pinning is opt-in
// per request.
func (c *conn) maybePin(reqFlags uint8, resp *response) {
	resp.h.Flags &^= wire.FlagRootPin
	if reqFlags&wire.FlagRootPin == 0 || !resp.h.Status.Success() {
		return
	}
	d := c.srv.cfg.Backend.RootDigest()
	if resp.data == nil {
		resp.data = getBuf(0)
	}
	*resp.data = append((*resp.data)[:resp.n], d[:]...)
	resp.n += len(d)
	resp.h.Flags |= wire.FlagRootPin
	c.srv.ctr.rootPinned.Add(1)
}

// finish queues a response and, for admitted requests, retires it from the
// in-flight window.
func (c *conn) finish(resp response) {
	c.respCh <- resp
	if resp.accepted {
		c.inflight.Add(-1)
	}
}

// execute runs one coalesced batch against the backend.
func (c *conn) execute(batch []request) {
	if len(batch) > 1 {
		c.srv.ctr.coalescedBatches.Add(1)
		c.srv.ctr.coalescedRequests.Add(uint64(len(batch) - 1))
	}
	switch batch[0].h.Op {
	case wire.OpRead:
		c.execReads(batch)
	case wire.OpWrite:
		c.execWrites(batch)
	case wire.OpFlush:
		c.srv.ctr.flushOps.Add(1)
		h := batch[0].h
		if err := c.srv.cfg.Backend.FlushAll(); err != nil {
			h.Status = wire.StatusInternal
		} else {
			h.Status = wire.StatusOK
		}
		resp := response{h: h, accepted: true}
		c.maybePin(batch[0].h.Flags, &resp)
		c.finish(resp)
	case wire.OpHello:
		c.srv.ctr.helloOps.Add(1)
		h := batch[0].h
		doc, err := c.srv.nodeInfoJSON()
		if err != nil || len(doc) > wire.MaxPayloadBytes {
			h.Status = wire.StatusInternal
			c.finish(response{h: h, accepted: true})
			return
		}
		data := getBuf(len(doc))
		copy(*data, doc)
		h.Status = wire.StatusOK
		c.finish(response{h: h, data: data, n: len(doc), accepted: true})
	case wire.OpStats:
		c.srv.ctr.statsOps.Add(1)
		h := batch[0].h
		doc, err := c.srv.snapshotJSON()
		if err != nil || len(doc) > wire.MaxPayloadBytes {
			h.Status = wire.StatusInternal
			c.finish(response{h: h, accepted: true})
			return
		}
		data := getBuf(len(doc))
		copy(*data, doc)
		h.Status = wire.StatusOK
		c.finish(response{h: h, data: data, n: len(doc), accepted: true})
	case wire.OpRootDigest:
		c.srv.ctr.rootOps.Add(1)
		h := batch[0].h
		d := c.srv.cfg.Backend.RootDigest()
		data := getBuf(len(d))
		copy(*data, d[:])
		h.Status = wire.StatusOK
		c.finish(response{h: h, data: data, n: len(d), accepted: true})
	}
}

// execReads serves a batch of adjacent read spans with one ReadBlocks call,
// falling back to the per-request recovery path when the fast path fails.
func (c *conn) execReads(batch []request) {
	c.srv.ctr.readOps.Add(uint64(len(batch)))
	total := 0
	for _, r := range batch {
		total += r.h.SpanBytes()
	}
	data := getBuf(total)
	if err := c.srv.cfg.Backend.ReadBlocks(batch[0].h.Addr, *data); err != nil {
		putBuf(data)
		for i := range batch {
			c.execReadRecover(batch[i])
		}
		return
	}
	c.srv.ctr.blocksRead.Add(uint64(total / wire.BlockBytes))
	if len(batch) == 1 {
		h := batch[0].h
		h.Status = wire.StatusOK
		h.Flags = 0
		resp := response{h: h, data: data, n: total, accepted: true}
		c.maybePin(batch[0].h.Flags, &resp)
		c.finish(resp)
		return
	}
	off := 0
	for _, r := range batch {
		n := r.h.SpanBytes()
		part := getBuf(n)
		copy(*part, (*data)[off:off+n])
		off += n
		h := r.h
		h.Status = wire.StatusOK
		h.Flags = 0
		resp := response{h: h, data: part, n: n, accepted: true}
		c.maybePin(r.h.Flags, &resp)
		c.finish(resp)
	}
	putBuf(data)
}

// execReadRecover serves one read span block by block through the recovery
// ladder, mapping the engine's verdict onto the wire status taxonomy.
func (c *conn) execReadRecover(r request) {
	h := r.h
	n := h.SpanBytes()
	data := getBuf(n)
	var flags uint8
	for off := 0; off < n; off += wire.BlockBytes {
		addr := h.Addr + uint64(off)
		ri, err := c.srv.cfg.Backend.ReadRecover(addr, (*data)[off:off+wire.BlockBytes])
		if ri.RetryRecovered {
			flags |= wire.FlagRetried
		}
		if ri.MetadataRepaired {
			flags |= wire.FlagMetaRepaired
		}
		if ri.CorrectedDataBits > 0 || ri.CorrectedMACBits > 0 {
			flags |= wire.FlagCorrected
		}
		if err != nil {
			putBuf(data)
			h.Count = 0
			h.Addr = addr
			h.Flags = flags
			var qe *authmem.QuarantineError
			var ie *authmem.IntegrityError
			switch {
			case errors.As(err, &qe):
				c.srv.ctr.quarantined.Add(1)
				h.Status = wire.StatusQuarantined
			case errors.As(err, &ie):
				c.srv.ctr.macFails.Add(1)
				h.Status = wire.StatusMACFail
				if ri.Quarantined {
					h.Flags |= wire.FlagQuarantinedNow
				}
			default:
				h.Status = wire.StatusInternal
			}
			c.finish(response{h: h, accepted: true})
			return
		}
	}
	c.srv.ctr.blocksRead.Add(uint64(n / wire.BlockBytes))
	h.Flags = flags
	if flags&(wire.FlagRetried|wire.FlagMetaRepaired) != 0 {
		c.srv.ctr.recovered.Add(1)
		h.Status = wire.StatusRecovered
	} else {
		h.Status = wire.StatusOK
	}
	resp := response{h: h, data: data, n: n, accepted: true}
	c.maybePin(r.h.Flags, &resp)
	c.finish(resp)
}

// execWrites serves a batch of adjacent write spans with one WriteBlocks
// call, falling back per request on error to attribute the failure.
func (c *conn) execWrites(batch []request) {
	c.srv.ctr.writeOps.Add(uint64(len(batch)))
	var sweepBase uint64
	if c.srv.cfg.SweepStatus {
		sweepBase = c.srv.cfg.Backend.Stats().GroupReencrypts
	}
	var err error
	if len(batch) == 1 {
		err = c.srv.cfg.Backend.WriteBlocks(batch[0].h.Addr, (*batch[0].data)[:batch[0].h.SpanBytes()])
	} else {
		total := 0
		for _, r := range batch {
			total += r.h.SpanBytes()
		}
		data := getBuf(total)
		off := 0
		for _, r := range batch {
			off += copy((*data)[off:], (*r.data)[:r.h.SpanBytes()])
		}
		err = c.srv.cfg.Backend.WriteBlocks(batch[0].h.Addr, (*data)[:total])
		putBuf(data)
	}
	if err != nil {
		// Re-run request by request so the failure lands on the right
		// response; requests that succeed standalone report success.
		for _, r := range batch {
			werr := c.srv.cfg.Backend.WriteBlocks(r.h.Addr, (*r.data)[:r.h.SpanBytes()])
			c.finishWrite(r, werr, false)
		}
		return
	}
	swept := false
	if c.srv.cfg.SweepStatus && c.srv.cfg.Backend.Stats().GroupReencrypts > sweepBase {
		swept = true
	}
	for _, r := range batch {
		c.finishWrite(r, nil, swept)
	}
}

func (c *conn) finishWrite(r request, err error, swept bool) {
	h := r.h
	h.Flags = 0
	putBuf(r.data)
	switch {
	case err == nil && swept:
		c.srv.ctr.overflowSwept.Add(1)
		c.srv.ctr.blocksWritten.Add(uint64(h.Count))
		h.Status = wire.StatusOverflowSwept
	case err == nil:
		c.srv.ctr.blocksWritten.Add(uint64(h.Count))
		h.Status = wire.StatusOK
	default:
		var ie *authmem.IntegrityError
		if errors.As(err, &ie) {
			c.srv.ctr.macFails.Add(1)
			h.Status = wire.StatusMACFail
			h.Addr = ie.Addr
		} else {
			h.Status = wire.StatusInternal
		}
	}
	h.Count = 0
	resp := response{h: h, accepted: true}
	c.maybePin(r.h.Flags, &resp)
	c.finish(resp)
}

// writeLoop serializes responses, gathering everything immediately
// available into one socket write. A transport error breaks the writer:
// remaining responses are drained and discarded so workers never block.
func (c *conn) writeLoop() {
	fw := wire.NewWriter(c.nc)
	const flushThreshold = 256 << 10
	open := true
	for open {
		resp, ok := <-c.respCh
		if !ok {
			break
		}
		c.emit(fw, resp)
		gather := true
		for gather {
			select {
			case r2, ok2 := <-c.respCh:
				if !ok2 {
					open = false
					gather = false
					break
				}
				c.emit(fw, r2)
				if fw.Buffered() >= flushThreshold {
					c.flushW(fw)
				}
			default:
				gather = false
			}
		}
		c.flushW(fw)
	}
	c.flushW(fw)
}

func (c *conn) emit(fw *wire.Writer, resp response) {
	if !c.wbroken {
		var payload []byte
		if resp.data != nil {
			payload = (*resp.data)[:resp.n]
		}
		resp.h.Version = wire.Version
		fw.WriteFrame(resp.h, payload)
	}
	putBuf(resp.data)
}

func (c *conn) flushW(fw *wire.Writer) {
	if c.wbroken {
		return
	}
	if err := fw.Flush(); err != nil {
		c.wbroken = true
		c.nc.Close() // unblock the reader; the conn is dead
	}
}
