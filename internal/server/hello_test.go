package server_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"authmem/internal/server"
	"authmem/internal/wire"
)

// sendFlags writes one request frame with explicit header flags.
func (rc *rawConn) sendFlags(op wire.Op, flags uint8, addr uint64, count uint32, payload []byte) uint64 {
	rc.t.Helper()
	rc.id++
	h := wire.Header{Version: wire.Version, Op: op, Flags: flags, ID: rc.id, Addr: addr, Count: count}
	frame := wire.AppendFrame(nil, h, payload)
	if _, err := rc.nc.Write(frame); err != nil {
		rc.t.Fatalf("send %v: %v", op, err)
	}
	return rc.id
}

func TestHelloHandshake(t *testing.T) {
	mem := newSyncMem(t, 1<<20)
	s := newTestServer(t, server.Config{Backend: mem, NodeID: "alpha", Epoch: 42})
	rc := dialRaw(t, s)

	rc.send(wire.OpHello, 0, 0, nil)
	h, payload := rc.recv()
	if h.Op != wire.OpHello || h.Status != wire.StatusOK {
		t.Fatalf("hello response: %+v", h)
	}
	var ni wire.NodeInfo
	if err := json.Unmarshal(payload, &ni); err != nil {
		t.Fatalf("hello payload: %v", err)
	}
	want := wire.NodeInfo{
		NodeID: "alpha", Epoch: 42, ProtoVersion: wire.Version,
		Size: 1 << 20, Shards: 1, BlockBytes: wire.BlockBytes,
	}
	if ni != want {
		t.Fatalf("NodeInfo %+v, want %+v", ni, want)
	}

	// Server-side view agrees with what went over the wire.
	if got := s.NodeInfo(); got != want {
		t.Fatalf("Server.NodeInfo %+v, want %+v", got, want)
	}
}

func TestHelloDefaultsGenerated(t *testing.T) {
	s := newTestServer(t, server.Config{Backend: newSyncMem(t, 1<<20)})
	ni := s.NodeInfo()
	if ni.NodeID == "" {
		t.Fatal("default NodeID empty")
	}
	if ni.Epoch == 0 {
		t.Fatal("default Epoch zero")
	}
}

func TestRootPinnedResponses(t *testing.T) {
	mem := newSyncMem(t, 1<<20)
	s := newTestServer(t, server.Config{Backend: mem, RequestTimeout: -1})
	rc := dialRaw(t, s)

	block := bytes.Repeat([]byte{0xC3}, wire.BlockBytes)
	rc.sendFlags(wire.OpWrite, wire.FlagRootPin, 0, 1, block)
	h, payload := rc.recv()
	if h.Status != wire.StatusOK {
		t.Fatalf("pinned write status %v", h.Status)
	}
	if h.Flags&wire.FlagRootPin == 0 {
		t.Fatal("pinned write response lacks FlagRootPin")
	}
	if len(payload) != wire.RootPinBytes {
		t.Fatalf("pinned write payload %d bytes, want %d", len(payload), wire.RootPinBytes)
	}
	root := mem.RootDigest()
	if !bytes.Equal(payload, root[:]) {
		t.Fatal("write pin does not match the backend root digest")
	}
	pinAfterWrite := append([]byte(nil), payload...)

	// Pinned read: payload is data then pin, and the pin still matches.
	rc.sendFlags(wire.OpRead, wire.FlagRootPin, 0, 1, nil)
	h, payload = rc.recv()
	if h.Status != wire.StatusOK || h.Flags&wire.FlagRootPin == 0 {
		t.Fatalf("pinned read: %+v", h)
	}
	if len(payload) != wire.BlockBytes+wire.RootPinBytes {
		t.Fatalf("pinned read payload %d bytes", len(payload))
	}
	if !bytes.Equal(payload[:wire.BlockBytes], block) {
		t.Fatal("pinned read data mismatch")
	}
	if !bytes.Equal(payload[wire.BlockBytes:], pinAfterWrite) {
		t.Fatal("read pin drifted with no intervening write")
	}

	// A write moves the root; the next pin must move with it.
	block2 := bytes.Repeat([]byte{0x11}, wire.BlockBytes)
	rc.sendFlags(wire.OpWrite, wire.FlagRootPin, wire.BlockBytes, 1, block2)
	h, payload = rc.recv()
	if h.Status != wire.StatusOK || !h.Status.Success() {
		t.Fatalf("second pinned write: %+v", h)
	}
	if bytes.Equal(payload, pinAfterWrite) {
		t.Fatal("root pin did not change across a write")
	}

	// Pinned flush: header-only request, pin-only response.
	rc.sendFlags(wire.OpFlush, wire.FlagRootPin, 0, 0, nil)
	h, payload = rc.recv()
	if h.Status != wire.StatusOK || h.Flags&wire.FlagRootPin == 0 || len(payload) != wire.RootPinBytes {
		t.Fatalf("pinned flush: %+v payload=%d", h, len(payload))
	}

	// Unpinned requests never grow a suffix.
	rc.send(wire.OpRead, 0, 1, nil)
	h, payload = rc.recv()
	if h.Flags&wire.FlagRootPin != 0 || len(payload) != wire.BlockBytes {
		t.Fatalf("unpinned read grew a suffix: %+v payload=%d", h, len(payload))
	}

	// FlagRootPin on ops that cannot carry it is a bad request.
	rc.sendFlags(wire.OpHello, wire.FlagRootPin, 0, 0, nil)
	h, _ = rc.recv()
	if h.Status != wire.StatusBadRequest {
		t.Fatalf("hello+pin status %v, want BAD_REQUEST", h.Status)
	}

	snap := s.Snapshot()
	if snap.Server.RootPinned != 4 {
		t.Fatalf("root_pinned = %d, want 4", snap.Server.RootPinned)
	}
	if snap.Server.HelloOps != 0 {
		t.Fatalf("hello_ops = %d, want 0 (the pinned hello was rejected)", snap.Server.HelloOps)
	}
}
