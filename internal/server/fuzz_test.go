package server_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"authmem/internal/server"
	"authmem/internal/wire"
)

// FuzzServerFrame feeds arbitrary byte streams to a live server connection.
// The invariants: the server never panics, answers exactly one well-formed
// response per decodable frame, and hangs up (rather than guessing) on
// malformed framing. The seed corpus in testdata covers every op plus the
// classic framing attacks (truncation, oversized lengths, giant spans, bad
// versions).
func FuzzServerFrame(f *testing.F) {
	mem := newSyncMem(f, 1<<20)
	srv, err := server.New(server.Config{Backend: mem, RequestTimeout: -1})
	if err != nil {
		f.Fatal(err)
	}
	defer srv.Close()

	f.Fuzz(func(t *testing.T, in []byte) {
		// Predict the server reader's view of the stream: it answers every
		// frame wire.Reader yields and tears down at the first decode error.
		expected := 0
		clean := true
		pred := wire.NewReader(bytes.NewReader(in))
		for {
			_, _, err := pred.Next()
			if err != nil {
				clean = err == io.EOF
				break
			}
			expected++
			if expected >= 256 {
				break // cap the work per input
			}
		}

		nc, err := srv.DialLoopback()
		if err != nil {
			t.Skip("server draining")
		}
		defer nc.Close()

		// Writer side: net.Pipe is unbuffered, so pump the input from its
		// own goroutine while the main goroutine consumes responses.
		writeDone := make(chan struct{})
		go func() {
			defer close(writeDone)
			nc.SetWriteDeadline(time.Now().Add(2 * time.Second))
			nc.Write(in) // best effort: the server may hang up mid-stream
		}()

		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		fr := wire.NewReader(nc)
		got := 0
		for got < expected {
			h, payload, err := fr.Next()
			if err != nil {
				// The connection may die early only because the server hung
				// up on a malformed tail (or the 256-frame cap truncated our
				// prediction); a clean bounded input must get every answer.
				if clean && expected < 256 {
					t.Fatalf("got %d responses, want %d: %v", got, expected, err)
				}
				break
			}
			got++
			if h.Version != wire.Version {
				t.Fatalf("response version %d", h.Version)
			}
			if h.Status == wire.StatusOK && h.Op == wire.OpRead {
				want := h.SpanBytes()
				if h.Flags&wire.FlagRootPin != 0 {
					want += wire.RootPinBytes
				}
				if len(payload) != want {
					t.Fatalf("read response: %d payload bytes for %d blocks (flags %#x)", len(payload), h.Count, h.Flags)
				}
			}
			if len(payload) > wire.MaxPayloadBytes {
				t.Fatalf("oversized response payload: %d bytes", len(payload))
			}
		}
		nc.Close()
		<-writeDone
	})
}
