package ecc

import (
	"encoding/binary"
	"math/bits"
)

// BlockSize is the protected granularity: one cache line.
const BlockSize = 64

// WordSize is the ECC word granularity of a 72-bit DIMM: 8 data bytes carry
// 8 check bits.
const WordSize = 8

// WordsPerBlock is the number of ECC words in a 64-byte block.
const WordsPerBlock = BlockSize / WordSize

// EncodeWord computes the 8 SEC-DED(72,64) check bits for one 8-byte word.
func EncodeWord(w uint64) uint8 {
	return uint8(Word72.Encode(w))
}

// DecodeWord verifies and, if possible, corrects one 8-byte word against its
// check byte. It returns the corrected word, corrected check byte, and the
// decode result.
func DecodeWord(w uint64, check uint8) (uint64, uint8, Result) {
	d, c, res := Word72.Decode(w, uint16(check))
	return d, uint8(c), res
}

// EncodeBlock computes the 8 check bytes a standard ECC DIMM stores for a
// 64-byte block: one SEC-DED(72,64) check byte per 8-byte word. data must be
// exactly 64 bytes.
func EncodeBlock(data []byte) ([WordsPerBlock]uint8, error) {
	var out [WordsPerBlock]uint8
	if len(data) != BlockSize {
		return out, ErrBlockSize
	}
	for i := 0; i < WordsPerBlock; i++ {
		w := binary.LittleEndian.Uint64(data[i*WordSize:])
		out[i] = EncodeWord(w)
	}
	return out, nil
}

// BlockOutcome summarizes decoding a full 64-byte block word-by-word.
type BlockOutcome struct {
	// CorrectedBits counts single-bit corrections applied (data or check).
	CorrectedBits int
	// DetectedWords counts words with detected-but-uncorrectable errors
	// (double errors or worse).
	DetectedWords int
	// WorstResult is the most severe per-word result seen.
	WorstResult Result
}

// Clean reports whether the block decoded without any uncorrectable error.
func (o BlockOutcome) Clean() bool {
	return o.DetectedWords == 0
}

// DecodeBlock verifies a 64-byte block against its 8 check bytes, correcting
// single-bit errors per word in place. data must be exactly 64 bytes and is
// modified in place when corrections apply; check bytes are likewise
// corrected in place.
//
// Note the fundamental SEC-DED limitation the paper's Figure 3 exercises:
// each 8-byte word corrects at most one flip and *detects* at most two;
// three or more flips within one word may silently miscorrect. DecodeBlock
// reports what the code believes happened, exactly as hardware would.
func DecodeBlock(data []byte, check *[WordsPerBlock]uint8) (BlockOutcome, error) {
	var out BlockOutcome
	if len(data) != BlockSize {
		return out, ErrBlockSize
	}
	for i := 0; i < WordsPerBlock; i++ {
		w := binary.LittleEndian.Uint64(data[i*WordSize:])
		cw, cc, res := DecodeWord(w, check[i])
		switch res {
		case CorrectedData:
			binary.LittleEndian.PutUint64(data[i*WordSize:], cw)
			out.CorrectedBits++
		case CorrectedCheck:
			check[i] = cc
			out.CorrectedBits++
		case DetectedDouble, Uncorrectable:
			out.DetectedWords++
		}
		if res > out.WorstResult {
			out.WorstResult = res
		}
	}
	return out, nil
}

// ParityBit returns the even parity over an arbitrary byte slice. The
// MAC-in-ECC layout stores one such bit over the 512 ciphertext bits so that
// DRAM scrubbers can scan for single-bit errors without recomputing MACs.
func ParityBit(data []byte) uint8 {
	var x uint64
	for ; len(data) >= 8; data = data[8:] {
		x ^= binary.LittleEndian.Uint64(data)
	}
	for _, b := range data {
		x ^= uint64(b)
	}
	return uint8(bits.OnesCount64(x) & 1)
}
