package ecc

import (
	"fmt"
	"sort"
	"sync"
)

// Pluggable ECC codec layer.
//
// The paper's two protection formats — ordinary SEC-DED(72,64) check bytes
// next to an inline MAC tag, and the §3 MAC-in-ECC layout that folds the MAC
// into the ECC lane itself — were historically two hard-wired code paths.
// This file puts them (and any future code, e.g. the residue check code in
// residue.go) behind one Codec interface with a registry, mirroring the
// internal/crypto backend registry: implementations register from init, the
// engine resolves a name from its Config or the AUTHMEM_ECC_CODEC
// environment variable, and everything downstream (seal, verify, scrub,
// persist, overhead accounting) speaks to the interface.
//
// Two codec families exist, split by where the MAC lives:
//
//   - BlockCodec (CarriesMAC() == false): a pure memory-error code. The MAC
//     tag is stored inline elsewhere (core.MACInline); the codec only
//     detects/corrects DRAM faults on the ciphertext. Implementations:
//     "secded" (8 check bytes, corrects 1 bit per 8-byte word, detects 2)
//     and "residue" (4 check bytes, detection only).
//
//   - MACCodec (CarriesMAC() == true): the check lane *is* the MAC storage
//     (core.MACInECC). The codec packs a 56-bit MAC plus its own protection
//     bits into one 8-byte lane and verifies/corrects data and lane
//     together. Implementation: "macsecded" (internal/macecc).
//
// A Codec is stateless and safe for concurrent use; a LaneVerifier is
// single-owner except for its Scrub methods (see LaneVerifier).

// EnvCodec is the environment variable consulted when Config.ECCCodec is
// empty. The CI codec matrix uses it to run the whole suite once per codec
// without threading a flag through every test. A codec selected through the
// environment that is incompatible with an engine's MAC placement is
// silently ignored in favor of the placement's default, so a matrix run
// does not break tests that pin the other placement.
const EnvCodec = "AUTHMEM_ECC_CODEC"

// DefaultBlockCodec is the inline-MAC placement's default codec.
const DefaultBlockCodec = "secded"

// DefaultMACCodec is the MAC-in-ECC placement's default codec.
const DefaultMACCodec = "macsecded"

// Codec is the surface every ECC codec shares.
type Codec interface {
	// Name is the registry key, what flags/env select, and what persisted
	// images record.
	Name() string
	// CheckBytes is the codec's stored check footprint per 64-byte block.
	// For a MACCodec this is the packed lane (8 bytes); for a BlockCodec
	// it is the dedicated check storage (8 for SEC-DED, 4 for residue).
	CheckBytes() int
	// CarriesMAC reports whether the codec packs the MAC into its check
	// lane (MACCodec) or protects ciphertext only (BlockCodec).
	CarriesMAC() bool
}

// BlockCodec is a pure memory-error code over one 64-byte block, used under
// the inline-MAC placement. Implementations must be stateless: Encode and
// Decode may be called concurrently from scrub/sweep workers.
type BlockCodec interface {
	Codec
	// EncodeInto writes the CheckBytes() check bytes for data (exactly
	// BlockSize bytes) into check (exactly CheckBytes() bytes).
	EncodeInto(check, data []byte) error
	// DecodeAndCorrect verifies data against check, repairing correctable
	// faults in both in place where the code supports correction.
	// Detection-only codes report any mismatch as uncorrectable.
	DecodeAndCorrect(data, check []byte) (BlockOutcome, error)
}

// MACKey is the MAC surface a MACCodec verifier needs: tag computation plus
// the polynomial-hash point for flip-and-check contribution tables. It is
// structurally identical to macecc.Key and satisfied by crypto.MAC.
type MACKey interface {
	Tag(ciphertext []byte, addr, counter uint64) (uint64, error)
	HashPoint() uint64
}

// LaneOutcome reports one MACCodec verification.
type LaneOutcome struct {
	// OK is true when the block authenticated (possibly after repair);
	// false means tampering or an uncorrectable fault.
	OK bool
	// CorrectedDataBits / CorrectedMACBits count repairs applied to the
	// ciphertext and the packed lane.
	CorrectedDataBits int
	CorrectedMACBits  int
	// HardwareChecks is the flip-and-check cost in MAC evaluations.
	HardwareChecks int
}

// LaneVerifier verifies blocks against a MAC-carrying check lane.
//
// Concurrency contract: VerifyAndCorrect mutates internal scratch and is
// single-owner — parallel sweeps build one verifier per worker (see
// MACCodec.NewVerifier). ScrubData and ScrubLane are pure and must be safe
// for concurrent use: ParallelScrub screens chunks from many goroutines
// through one verifier.
type LaneVerifier interface {
	// VerifyAndCorrect authenticates ciphertext against the packed lane,
	// repairing correctable ciphertext faults in place, and returns the
	// (possibly repaired) lane for the caller to write back. The lane
	// travels by value so the hot read path stays allocation-free across
	// the interface boundary.
	VerifyAndCorrect(ciphertext []byte, lane, addr, counter uint64) (uint64, LaneOutcome, error)
	// ScrubData is the patrol scrubber's cheap screen over the ciphertext
	// (true = looks clean). Pure; concurrent-safe.
	ScrubData(ciphertext []byte, lane uint64) bool
	// ScrubLane is the scrubber's screen over the lane itself.
	// Pure; concurrent-safe.
	ScrubLane(lane uint64) bool
}

// MACCodec is a codec whose check lane carries the MAC (the paper's §3
// trick), used under the MAC-in-ECC placement.
type MACCodec interface {
	Codec
	// PackLane builds the stored 8-byte lane from a block's MAC tag and
	// its ciphertext.
	PackLane(tag uint64, ciphertext []byte) uint64
	// NewVerifier builds a verifier around key with the given
	// flip-and-check correction budget (0..2 flipped data/lane bits).
	NewVerifier(key MACKey, correctBits int) (LaneVerifier, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Codec{}
)

// Register adds a codec under its Name. Registering a duplicate name
// panics: codecs register from init and a collision is a programming error.
func Register(c Codec) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic("ecc: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// Lookup resolves a codec name exactly. Unlike crypto.Lookup, the empty
// name is an error here: the default depends on the MAC placement, so
// placement-aware resolution (empty name -> EnvCodec -> DefaultFor) lives
// with the Config that knows it.
func Lookup(name string) (Codec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	if c, ok := registry[name]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("ecc: unknown codec %q (registered: %v)", name, namesLocked())
}

// DefaultFor returns the default codec name for a placement: a MAC-carrying
// codec when the lane holds the MAC, a plain block codec otherwise.
func DefaultFor(carriesMAC bool) string {
	if carriesMAC {
		return DefaultMACCodec
	}
	return DefaultBlockCodec
}

// Names returns the registered codec names, sorted. Conformance suites
// iterate it so a future codec is covered the moment it registers.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// secdedCodec is the "secded" BlockCodec: one SEC-DED(72,64) check byte per
// 8-byte word, exactly the block.go helpers behind the interface.
type secdedCodec struct{}

func (secdedCodec) Name() string     { return "secded" }
func (secdedCodec) CheckBytes() int  { return WordsPerBlock }
func (secdedCodec) CarriesMAC() bool { return false }

func (secdedCodec) EncodeInto(check, data []byte) error {
	if len(check) != WordsPerBlock {
		return fmt.Errorf("ecc: secded check buffer must be %d bytes, got %d", WordsPerBlock, len(check))
	}
	out, err := EncodeBlock(data)
	if err != nil {
		return err
	}
	copy(check, out[:])
	return nil
}

func (secdedCodec) DecodeAndCorrect(data, check []byte) (BlockOutcome, error) {
	if len(check) != WordsPerBlock {
		return BlockOutcome{}, fmt.Errorf("ecc: secded check buffer must be %d bytes, got %d", WordsPerBlock, len(check))
	}
	return DecodeBlock(data, (*[WordsPerBlock]uint8)(check))
}

func init() {
	Register(secdedCodec{})
	Register(residueCodec{})
}
