package ecc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

func TestRegistry(t *testing.T) {
	names := Names()
	for _, want := range []string{"secded", "residue"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Names() = %v, missing %q", names, want)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted: %v", names)
		}
	}
	for _, n := range names {
		c, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != n {
			t.Fatalf("Lookup(%q).Name() = %q", n, c.Name())
		}
		if c.CheckBytes() <= 0 || c.CheckBytes() > 8 {
			t.Fatalf("%s: implausible CheckBytes %d", n, c.CheckBytes())
		}
		// Exactly one of the two family interfaces, matching CarriesMAC.
		_, isBlock := c.(BlockCodec)
		_, isMAC := c.(MACCodec)
		if isBlock == isMAC {
			t.Fatalf("%s: block=%v mac=%v, want exactly one family", n, isBlock, isMAC)
		}
		if isMAC != c.CarriesMAC() {
			t.Fatalf("%s: CarriesMAC()=%v but MACCodec=%v", n, c.CarriesMAC(), isMAC)
		}
	}
}

func TestLookupUnknownAndEmpty(t *testing.T) {
	if _, err := Lookup("no-such-codec"); err == nil || !strings.Contains(err.Error(), "no-such-codec") {
		t.Fatalf("unknown lookup: %v", err)
	}
	// The empty name is an error by design: placement-aware defaulting
	// lives in core.Config, not here.
	if _, err := Lookup(""); err == nil {
		t.Fatal("empty lookup should fail")
	}
}

func TestDefaultFor(t *testing.T) {
	if got := DefaultFor(true); got != DefaultMACCodec {
		t.Fatalf("DefaultFor(true) = %q", got)
	}
	if got := DefaultFor(false); got != DefaultBlockCodec {
		t.Fatalf("DefaultFor(false) = %q", got)
	}
	// Both defaults must resolve, with the right family.
	for _, mac := range []bool{true, false} {
		c, err := Lookup(DefaultFor(mac))
		if err != nil && mac {
			// macsecded registers from internal/macecc; this package's
			// tests may run without it linked.
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if c.CarriesMAC() != mac {
			t.Fatalf("DefaultFor(%v) resolves to CarriesMAC()=%v", mac, c.CarriesMAC())
		}
	}
}

// TestSecdedCodecMatchesBlockHelpers pins the "secded" codec to the legacy
// EncodeBlock/DecodeBlock helpers it wraps: same check bytes, same
// corrections, same verdicts.
func TestSecdedCodecMatchesBlockHelpers(t *testing.T) {
	cod, err := Lookup("secded")
	if err != nil {
		t.Fatal(err)
	}
	bcod := cod.(BlockCodec)
	if bcod.CheckBytes() != WordsPerBlock {
		t.Fatalf("CheckBytes() = %d, want %d", bcod.CheckBytes(), WordsPerBlock)
	}

	rng := rand.New(rand.NewSource(11))
	data := make([]byte, BlockSize)
	check := make([]byte, WordsPerBlock)
	for trial := 0; trial < 200; trial++ {
		rng.Read(data)
		orig := append([]byte(nil), data...)

		if err := bcod.EncodeInto(check, data); err != nil {
			t.Fatal(err)
		}
		legacy, err := EncodeBlock(data)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(check, legacy[:]) {
			t.Fatalf("trial %d: EncodeInto %x != EncodeBlock %x", trial, check, legacy)
		}

		// One data flip: the codec must correct it exactly like the
		// helpers do.
		bit := rng.Intn(8 * BlockSize)
		data[bit/8] ^= 1 << uint(bit%8)
		out, err := bcod.DecodeAndCorrect(data, check)
		if err != nil {
			t.Fatal(err)
		}
		if out.CorrectedBits != 1 || !bytes.Equal(data, orig) {
			t.Fatalf("trial %d: single-bit repair failed: %+v", trial, out)
		}

		// Two flips in one word: detected, never silently accepted.
		word := rng.Intn(WordsPerBlock)
		a, b := rng.Intn(64), rng.Intn(64)
		for b == a {
			b = rng.Intn(64)
		}
		data[word*8+a/8] ^= 1 << uint(a%8)
		data[word*8+b/8] ^= 1 << uint(b%8)
		out, err = bcod.DecodeAndCorrect(data, check)
		if err != nil {
			t.Fatal(err)
		}
		if out.Clean() {
			t.Fatalf("trial %d: double-bit fault reported clean", trial)
		}
		copy(data, orig)
	}

	// Size validation.
	if err := bcod.EncodeInto(check[:4], data); err == nil {
		t.Fatal("short check buffer should fail")
	}
	if _, err := bcod.DecodeAndCorrect(data, check[:4]); err == nil {
		t.Fatal("short check buffer should fail")
	}
}

func TestResidueSingleBitAlwaysDetected(t *testing.T) {
	cod, err := Lookup("residue")
	if err != nil {
		t.Fatal(err)
	}
	bcod := cod.(BlockCodec)
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, BlockSize)
	rng.Read(data)
	check := make([]byte, ResidueCheckBytes)
	if err := bcod.EncodeInto(check, data); err != nil {
		t.Fatal(err)
	}

	// Every one of the 512 data bits.
	for bit := 0; bit < 8*BlockSize; bit++ {
		data[bit/8] ^= 1 << uint(bit%8)
		out, err := bcod.DecodeAndCorrect(data, check)
		if err != nil {
			t.Fatal(err)
		}
		if out.Clean() {
			t.Fatalf("data bit %d: flip not detected", bit)
		}
		data[bit/8] ^= 1 << uint(bit%8)
	}
	// Every one of the 32 check bits.
	for bit := 0; bit < 8*ResidueCheckBytes; bit++ {
		check[bit/8] ^= 1 << uint(bit%8)
		out, err := bcod.DecodeAndCorrect(data, check)
		if err != nil {
			t.Fatal(err)
		}
		if out.Clean() {
			t.Fatalf("check bit %d: flip not detected", bit)
		}
		check[bit/8] ^= 1 << uint(bit%8)
	}
	// And the untouched block still verifies.
	out, err := bcod.DecodeAndCorrect(data, check)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Clean() {
		t.Fatalf("clean block flagged: %+v", out)
	}
}

// TestResidueBlindSpots documents the modulus-2^32-1 aliasing cases the
// codec's comment (and Figure 3's miscorrected cells) promise: they pass the
// residue check undetected, which is why the engine still MACs every block.
func TestResidueBlindSpots(t *testing.T) {
	cod, _ := Lookup("residue")
	bcod := cod.(BlockCodec)
	data := make([]byte, BlockSize)
	rand.New(rand.NewSource(9)).Read(data)
	check := make([]byte, ResidueCheckBytes)

	// Blind spot 1: 0x00000000 <-> 0xFFFFFFFF in one 32-bit word (both are
	// residue class zero).
	binary.LittleEndian.PutUint32(data[8:], 0x00000000)
	if err := bcod.EncodeInto(check, data); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(data[8:], 0xFFFFFFFF)
	out, err := bcod.DecodeAndCorrect(data, check)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Clean() {
		t.Fatal("0->all-ones word aliasing unexpectedly detected (doc comment is wrong)")
	}

	// Blind spot 2: opposite-polarity flips in the same bit column of two
	// words: +2^k and -2^k cancel mod 2^32-1.
	rand.New(rand.NewSource(10)).Read(data)
	const k = 7
	data[0] &^= 1 << k // word 0 column k = 0
	data[32] |= 1 << k // word 4 (byte 32) column k = 1
	if err := bcod.EncodeInto(check, data); err != nil {
		t.Fatal(err)
	}
	data[0] |= 1 << k   // 0 -> 1: +2^k
	data[32] &^= 1 << k // 1 -> 0: -2^k
	out, err = bcod.DecodeAndCorrect(data, check)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Clean() {
		t.Fatal("opposite-polarity column aliasing unexpectedly detected")
	}
}

// TestResidueNonCanonicalCheck accepts 0xFFFFFFFF stored check bytes as
// residue zero: 0 and 2^32-1 are the same class, and a check word written by
// other hardware may use either encoding.
func TestResidueNonCanonicalCheck(t *testing.T) {
	cod, _ := Lookup("residue")
	bcod := cod.(BlockCodec)
	data := make([]byte, BlockSize) // all-zero block: residue 0
	check := make([]byte, ResidueCheckBytes)
	if err := bcod.EncodeInto(check, data); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint32(check); got != 0 {
		t.Fatalf("all-zero block residue = %#x, want 0 (canonical)", got)
	}
	binary.LittleEndian.PutUint32(check, 0xFFFFFFFF)
	out, err := bcod.DecodeAndCorrect(data, check)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Clean() {
		t.Fatal("non-canonical zero check rejected")
	}
}

func TestResidueSizeValidation(t *testing.T) {
	cod, _ := Lookup("residue")
	bcod := cod.(BlockCodec)
	data := make([]byte, BlockSize)
	check := make([]byte, ResidueCheckBytes)
	if err := bcod.EncodeInto(check[:2], data); err == nil {
		t.Fatal("short check should fail")
	}
	if err := bcod.EncodeInto(check, data[:10]); err == nil {
		t.Fatal("short data should fail")
	}
	if _, err := bcod.DecodeAndCorrect(data[:10], check); err == nil {
		t.Fatal("short data should fail")
	}
	if _, err := bcod.DecodeAndCorrect(data, check[:2]); err == nil {
		t.Fatal("short check should fail")
	}
}
