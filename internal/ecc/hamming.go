// Package ecc implements Hamming single-error-correct, double-error-detect
// (SEC-DED) codes as used by commodity ECC DRAM, plus block-level helpers
// that mirror how a 72-bit-wide ECC DIMM lays out check bits.
//
// Two instances matter for the paper:
//
//   - SEC-DED(72,64): 8 check bits per 8-byte word. This is the standard
//     ECC-DRAM configuration and the baseline scheme the paper compares
//     against.
//   - SEC-DED(63,56): 7 check bits over a 56-bit MAC tag. The proposed
//     MAC-in-ECC layout protects the MAC itself with this code so that a
//     failing MAC check can be attributed to either data or MAC corruption.
//
// The codec is a classic extended Hamming code: check bits live at
// power-of-two positions of the codeword, an extra overall parity bit
// distinguishes single from double errors.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Result classifies the outcome of decoding a SEC-DED codeword.
type Result int

const (
	// OK means no error was detected.
	OK Result = iota
	// CorrectedData means a single-bit error in the data bits was corrected.
	CorrectedData
	// CorrectedCheck means a single-bit error in the check bits (including
	// the overall parity bit) was corrected; the data was intact.
	CorrectedCheck
	// DetectedDouble means a double-bit error was detected but cannot be
	// corrected.
	DetectedDouble
	// Uncorrectable means the syndrome is inconsistent with any single or
	// double error the code can attribute (e.g. >=3 flips aliasing onto an
	// unused position). The data must be considered corrupt.
	Uncorrectable
)

// String returns a human-readable name for the result.
func (r Result) String() string {
	switch r {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DetectedDouble:
		return "detected-double"
	case Uncorrectable:
		return "uncorrectable"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// IsCorrected reports whether decoding repaired the word (or found it clean).
func (r Result) IsCorrected() bool {
	return r == OK || r == CorrectedData || r == CorrectedCheck
}

// SECDED is an extended Hamming code over k <= 64 data bits.
//
// Codeword layout (conceptual): positions 1..m hold data and Hamming check
// bits, with check bit i at position 2^i; position 0 holds the overall
// parity bit computed over everything else. Data bits fill the
// non-power-of-two positions in increasing order.
type SECDED struct {
	k int // data bits
	r int // Hamming check bits (excluding overall parity)
	m int // highest used codeword position (1-based)

	dataPos []int // codeword position of data bit i

	// synTab[b][v] is the XOR of the codeword positions of the set bits of
	// byte b of the data word when that byte holds value v. The encode and
	// decode syndromes over the data bits then cost eight table lookups
	// instead of a walk over all k bits — this sits on the per-block seal
	// path (8 words per ECC block), so it is worth the 4KB per code.
	synTab [8][256]uint16
}

// New constructs a SEC-DED code for k data bits (1 <= k <= 64).
// The code uses r Hamming check bits plus one overall parity bit, where r is
// the smallest integer with 2^r - 1 - r >= k.
func New(k int) (*SECDED, error) {
	if k < 1 || k > 64 {
		return nil, fmt.Errorf("ecc: unsupported data width %d (want 1..64)", k)
	}
	r := 2
	for (1<<r)-1-r < k {
		r++
	}
	c := &SECDED{k: k, r: r}
	c.dataPos = make([]int, k)
	pos := 1
	for i := 0; i < k; {
		if pos&(pos-1) != 0 { // not a power of two -> data position
			c.dataPos[i] = pos
			i++
		}
		pos++
	}
	c.m = c.dataPos[k-1]
	// Ensure all r check positions fit below m (they do whenever the last
	// data bit sits above 2^(r-1); for shortened codes the highest check
	// position may exceed the last data position).
	if hp := 1 << (r - 1); hp > c.m {
		c.m = hp
	}
	for b := 0; b < 8; b++ {
		base := b * 8
		for v := 1; v < 256; v++ {
			var s uint16
			for j := 0; j < 8 && base+j < k; j++ {
				if v>>uint(j)&1 == 1 {
					s ^= uint16(c.dataPos[base+j])
				}
			}
			c.synTab[b][v] = s
		}
	}
	return c, nil
}

// MustNew is New that panics on error; for package-level code instances with
// compile-time-known widths.
func MustNew(k int) *SECDED {
	c, err := New(k)
	if err != nil {
		panic(err)
	}
	return c
}

// K returns the number of data bits.
func (c *SECDED) K() int { return c.k }

// CheckBits returns the total number of check bits, including the overall
// parity bit.
func (c *SECDED) CheckBits() int { return c.r + 1 }

// Encode computes the check bits for data (low k bits used). The returned
// value packs the r Hamming check bits in bits 0..r-1 and the overall parity
// bit in bit r.
func (c *SECDED) Encode(data uint64) uint16 {
	data &= c.dataMask()
	// Hamming check bit j makes the parity over all positions with bit j
	// set even; since check positions are powers of two, check bit j is
	// simply bit j of the syndrome over data positions.
	check := c.dataSyn(data) & (uint16(1)<<uint(c.r) - 1)
	// Overall parity over data bits and Hamming check bits.
	p := bits.OnesCount64(data) + bits.OnesCount16(check)
	check |= uint16(p&1) << uint(c.r)
	return check
}

// dataSyn returns the XOR of the codeword positions of the set data bits.
func (c *SECDED) dataSyn(data uint64) uint16 {
	return c.synTab[0][byte(data)] ^
		c.synTab[1][byte(data>>8)] ^
		c.synTab[2][byte(data>>16)] ^
		c.synTab[3][byte(data>>24)] ^
		c.synTab[4][byte(data>>32)] ^
		c.synTab[5][byte(data>>40)] ^
		c.synTab[6][byte(data>>48)] ^
		c.synTab[7][byte(data>>56)]
}

// Decode verifies (data, check) and corrects a single-bit error if present.
// It returns the corrected data and check bits along with the decode Result.
// On DetectedDouble or Uncorrectable the returned data is the input data
// unchanged.
func (c *SECDED) Decode(data uint64, check uint16) (uint64, uint16, Result) {
	data &= c.dataMask()
	check &= c.checkMask()

	syn := int(c.dataSyn(data) ^ check&(uint16(1)<<uint(c.r)-1))
	parity := (bits.OnesCount64(data) + bits.OnesCount16(check)) & 1

	switch {
	case syn == 0 && parity == 0:
		return data, check, OK
	case syn == 0 && parity == 1:
		// Only the overall parity bit is wrong.
		return data, check ^ 1<<uint(c.r), CorrectedCheck
	case parity == 0:
		// Nonzero syndrome with even overall parity: double error.
		return data, check, DetectedDouble
	}
	// Single error at codeword position syn.
	if syn&(syn-1) == 0 {
		// Power-of-two position: a Hamming check bit flipped.
		j := bits.TrailingZeros(uint(syn))
		if j >= c.r {
			return data, check, Uncorrectable
		}
		return data, check ^ 1<<uint(j), CorrectedCheck
	}
	// Data position: find which data bit lives there.
	i := c.dataIndexAt(syn)
	if i < 0 {
		// Syndrome points at an unused (shortened-away) position:
		// cannot be a single error; report uncorrectable.
		return data, check, Uncorrectable
	}
	return data ^ 1<<uint(i), check, CorrectedData
}

// dataIndexAt returns the data-bit index stored at codeword position pos,
// or -1 if pos is not a data position of this (possibly shortened) code.
func (c *SECDED) dataIndexAt(pos int) int {
	if pos < 3 || pos > c.m || pos&(pos-1) == 0 {
		return -1
	}
	// pos - 1 - (number of power-of-two positions <= pos) gives the data
	// index, because data bits fill non-power positions in order.
	powers := bits.Len(uint(pos)) // powers of two in [1, pos]: 1,2,4,... <= pos
	i := pos - 1 - powers
	if i < 0 || i >= c.k || c.dataPos[i] != pos {
		return -1
	}
	return i
}

func (c *SECDED) dataMask() uint64 {
	if c.k == 64 {
		return ^uint64(0)
	}
	return (1 << uint(c.k)) - 1
}

func (c *SECDED) checkMask() uint16 {
	return (1 << uint(c.r+1)) - 1
}

// Word72 is the standard ECC-DRAM code: SEC-DED(72,64), 8 check bits per
// 8-byte word.
var Word72 = MustNew(64)

// MAC63 is the code the paper stores over 56-bit MAC tags: SEC-DED(63,56),
// 7 check bits.
var MAC63 = MustNew(56)

// ErrBlockSize is returned by the block helpers when the data slice is not
// exactly 64 bytes.
var ErrBlockSize = errors.New("ecc: data block must be 64 bytes")
