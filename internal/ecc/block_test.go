package ecc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randBlock(rng *rand.Rand) []byte {
	b := make([]byte, BlockSize)
	rng.Read(b)
	return b
}

func TestEncodeBlockSize(t *testing.T) {
	if _, err := EncodeBlock(make([]byte, 63)); err != ErrBlockSize {
		t.Fatal("short block should be rejected")
	}
	if _, err := EncodeBlock(make([]byte, 65)); err != ErrBlockSize {
		t.Fatal("long block should be rejected")
	}
	if _, err := EncodeBlock(make([]byte, 64)); err != nil {
		t.Fatal("64-byte block should encode")
	}
}

func TestDecodeBlockClean(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 100; trial++ {
		data := randBlock(rng)
		check, err := EncodeBlock(data)
		if err != nil {
			t.Fatal(err)
		}
		orig := append([]byte(nil), data...)
		out, err := DecodeBlock(data, &check)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Clean() || out.CorrectedBits != 0 || out.WorstResult != OK {
			t.Fatalf("clean block reported %+v", out)
		}
		if !bytes.Equal(data, orig) {
			t.Fatal("clean decode modified data")
		}
	}
}

func TestDecodeBlockCorrectsOnePerWord(t *testing.T) {
	// One flip in each of the 8 words: standard ECC corrects all 8.
	rng := rand.New(rand.NewSource(11))
	data := randBlock(rng)
	check, _ := EncodeBlock(data)
	orig := append([]byte(nil), data...)
	for w := 0; w < WordsPerBlock; w++ {
		bit := rng.Intn(64)
		data[w*WordSize+bit/8] ^= 1 << uint(bit%8)
	}
	out, err := DecodeBlock(data, &check)
	if err != nil {
		t.Fatal(err)
	}
	if out.CorrectedBits != WordsPerBlock || !out.Clean() {
		t.Fatalf("want 8 corrections, got %+v", out)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("corrections did not restore original data")
	}
}

func TestDecodeBlockDetectsDoubleInWord(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	data := randBlock(rng)
	check, _ := EncodeBlock(data)
	// Two flips inside word 3.
	data[3*WordSize] ^= 0x03
	out, err := DecodeBlock(data, &check)
	if err != nil {
		t.Fatal(err)
	}
	if out.Clean() || out.DetectedWords != 1 || out.WorstResult != DetectedDouble {
		t.Fatalf("want one detected word, got %+v", out)
	}
}

func TestDecodeBlockMixedFaults(t *testing.T) {
	// Word 0: single flip (corrected); word 5: double flip (detected).
	rng := rand.New(rand.NewSource(13))
	data := randBlock(rng)
	check, _ := EncodeBlock(data)
	data[0] ^= 0x10
	data[5*WordSize+2] ^= 0x41 // two flips in one byte of word 5
	out, err := DecodeBlock(data, &check)
	if err != nil {
		t.Fatal(err)
	}
	if out.CorrectedBits != 1 || out.DetectedWords != 1 {
		t.Fatalf("want 1 corrected + 1 detected, got %+v", out)
	}
}

func TestDecodeBlockWrongSize(t *testing.T) {
	var check [WordsPerBlock]uint8
	if _, err := DecodeBlock(make([]byte, 32), &check); err != ErrBlockSize {
		t.Fatal("short block should be rejected")
	}
}

func TestWordHelpersRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		c := EncodeWord(w)
		d, cc, res := DecodeWord(w, c)
		return res == OK && d == w && cc == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParityBit(t *testing.T) {
	if ParityBit(nil) != 0 {
		t.Fatal("parity of empty slice should be 0")
	}
	if ParityBit([]byte{0x01}) != 1 {
		t.Fatal("parity of one set bit should be 1")
	}
	if ParityBit([]byte{0xFF}) != 0 {
		t.Fatal("parity of 8 set bits should be 0")
	}
	f := func(data []byte, idx uint16) bool {
		if len(data) == 0 {
			return true
		}
		p0 := ParityBit(data)
		i := int(idx) % len(data)
		data[i] ^= 1 << (idx % 8)
		p1 := ParityBit(data)
		return p0 != p1 // any single flip must toggle the parity
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeBlock(b *testing.B) {
	rng := rand.New(rand.NewSource(14))
	data := randBlock(rng)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeBlock(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeBlockClean(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	data := randBlock(rng)
	check, _ := EncodeBlock(data)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := check
		if _, err := DecodeBlock(data, &c); err != nil {
			b.Fatal(err)
		}
	}
}
