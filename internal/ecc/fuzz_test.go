package ecc

import "testing"

// FuzzDecode feeds arbitrary (data, check) pairs — what a hostile DIMM
// could return — through the SEC-DED decoders. Requirements: no panics,
// OK results must be self-consistent (re-encoding reproduces the check
// bits), and corrections must produce valid codewords.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint16(0))
	f.Add(^uint64(0), uint16(0xFFFF))
	f.Add(uint64(0xDEADBEEF), Word72.Encode(0xDEADBEEF))
	f.Fuzz(func(t *testing.T, data uint64, check uint16) {
		for _, code := range []*SECDED{Word72, MAC63} {
			d, c, res := code.Decode(data, check)
			switch res {
			case OK, CorrectedData, CorrectedCheck:
				// The (possibly corrected) pair must be a valid
				// codeword.
				if code.Encode(d) != c {
					t.Fatalf("k=%d: result %v returned invalid codeword", code.K(), res)
				}
				if _, _, res2 := code.Decode(d, c); res2 != OK {
					t.Fatalf("k=%d: corrected word does not re-decode OK", code.K())
				}
			}
		}
	})
}

// FuzzDecodeBlock exercises the block-level decoder on arbitrary 64-byte
// payloads and check bytes.
func FuzzDecodeBlock(f *testing.F) {
	seed := make([]byte, BlockSize)
	f.Add(seed, []byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte, checkBytes []byte) {
		if len(data) != BlockSize {
			return
		}
		var check [WordsPerBlock]uint8
		copy(check[:], checkBytes)
		out, err := DecodeBlock(data, &check)
		if err != nil {
			t.Fatal(err)
		}
		if out.CorrectedBits < 0 || out.DetectedWords > WordsPerBlock {
			t.Fatalf("implausible outcome %+v", out)
		}
		// A clean outcome must re-verify cleanly.
		if out.Clean() {
			check2 := check
			out2, err := DecodeBlock(data, &check2)
			if err != nil {
				t.Fatal(err)
			}
			if out2.CorrectedBits != 0 || !out2.Clean() {
				t.Fatalf("repaired block not stable: %+v", out2)
			}
		}
	})
}
