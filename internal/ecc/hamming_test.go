package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWidths(t *testing.T) {
	cases := []struct {
		k, wantCheck int
	}{
		{56, 7}, // the paper's MAC code: 6 Hamming + 1 overall parity
		{64, 8}, // standard ECC DRAM word
		{8, 5},
		{1, 3},
		{4, 4},
		{11, 5},
		{26, 6},
		{57, 7},
	}
	for _, c := range cases {
		code, err := New(c.k)
		if err != nil {
			t.Fatalf("New(%d): %v", c.k, err)
		}
		if got := code.CheckBits(); got != c.wantCheck {
			t.Errorf("New(%d).CheckBits() = %d, want %d", c.k, got, c.wantCheck)
		}
	}
}

func TestNewRejectsBadWidths(t *testing.T) {
	for _, k := range []int{0, -1, 65, 100} {
		if _, err := New(k); err == nil {
			t.Errorf("New(%d) should fail", k)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(0) should panic")
		}
	}()
	MustNew(0)
}

func TestEncodeDecodeClean(t *testing.T) {
	for _, code := range []*SECDED{Word72, MAC63, MustNew(8)} {
		f := func(data uint64) bool {
			check := code.Encode(data)
			d, c, res := code.Decode(data&maskFor(code), check)
			return res == OK && d == data&maskFor(code) && c == check
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("k=%d: %v", code.K(), err)
		}
	}
}

func maskFor(c *SECDED) uint64 {
	if c.K() == 64 {
		return ^uint64(0)
	}
	return (1 << uint(c.K())) - 1
}

func TestCorrectsEverySingleDataBit(t *testing.T) {
	for _, code := range []*SECDED{Word72, MAC63} {
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			data := rng.Uint64() & maskFor(code)
			check := code.Encode(data)
			for i := 0; i < code.K(); i++ {
				bad := data ^ 1<<uint(i)
				d, c, res := code.Decode(bad, check)
				if res != CorrectedData {
					t.Fatalf("k=%d bit %d: result %v, want CorrectedData", code.K(), i, res)
				}
				if d != data || c != check {
					t.Fatalf("k=%d bit %d: corrected to %#x/%#x, want %#x/%#x",
						code.K(), i, d, c, data, check)
				}
			}
		}
	}
}

func TestCorrectsEverySingleCheckBit(t *testing.T) {
	for _, code := range []*SECDED{Word72, MAC63} {
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 50; trial++ {
			data := rng.Uint64() & maskFor(code)
			check := code.Encode(data)
			for j := 0; j < code.CheckBits(); j++ {
				bad := check ^ 1<<uint(j)
				d, c, res := code.Decode(data, bad)
				if res != CorrectedCheck {
					t.Fatalf("k=%d check bit %d: result %v, want CorrectedCheck", code.K(), j, res)
				}
				if d != data || c != check {
					t.Fatalf("k=%d check bit %d: wrong correction", code.K(), j)
				}
			}
		}
	}
}

func TestDetectsAllDoubleErrors(t *testing.T) {
	// Exhaustive over data-bit pairs for the MAC code; sampled for (72,64).
	code := MAC63
	data := uint64(0x00AB_CDEF_0123_4567)
	check := code.Encode(data)
	for i := 0; i < code.K(); i++ {
		for j := i + 1; j < code.K(); j++ {
			bad := data ^ 1<<uint(i) ^ 1<<uint(j)
			_, _, res := code.Decode(bad, check)
			if res != DetectedDouble {
				t.Fatalf("double flip (%d,%d): result %v, want DetectedDouble", i, j, res)
			}
		}
	}
}

func TestDetectsDoubleAcrossDataAndCheck(t *testing.T) {
	code := Word72
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		data := rng.Uint64()
		check := code.Encode(data)
		i := rng.Intn(code.K())
		j := rng.Intn(code.CheckBits())
		badData := data ^ 1<<uint(i)
		badCheck := check ^ 1<<uint(j)
		_, _, res := code.Decode(badData, badCheck)
		if res != DetectedDouble {
			t.Fatalf("data bit %d + check bit %d: result %v, want DetectedDouble", i, j, res)
		}
	}
}

func TestTripleErrorsMayMiscorrect(t *testing.T) {
	// SEC-DED makes no guarantee beyond 2 flips: a triple error must decode
	// as either a (mis)correction or a detected error, but never as OK.
	code := Word72
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 2000; trial++ {
		data := rng.Uint64()
		check := code.Encode(data)
		bits := rng.Perm(code.K())[:3]
		bad := data
		for _, b := range bits {
			bad ^= 1 << uint(b)
		}
		_, _, res := code.Decode(bad, check)
		if res == OK {
			t.Fatalf("triple flip decoded as OK (flips %v)", bits)
		}
	}
}

func TestResultString(t *testing.T) {
	cases := map[Result]string{
		OK:             "ok",
		CorrectedData:  "corrected-data",
		CorrectedCheck: "corrected-check",
		DetectedDouble: "detected-double",
		Uncorrectable:  "uncorrectable",
		Result(99):     "Result(99)",
	}
	for r, want := range cases {
		if r.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(r), r.String(), want)
		}
	}
	if !OK.IsCorrected() || !CorrectedData.IsCorrected() || DetectedDouble.IsCorrected() {
		t.Error("IsCorrected misclassifies")
	}
}

func BenchmarkEncode64(b *testing.B) {
	var acc uint16
	for i := 0; i < b.N; i++ {
		acc ^= Word72.Encode(uint64(i) * 0x9E3779B97F4A7C15)
	}
	sinkCheck = acc
}

func BenchmarkDecode64Clean(b *testing.B) {
	data := uint64(0xDEADBEEFCAFEBABE)
	check := Word72.Encode(data)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, res := Word72.Decode(data, check)
		if res != OK {
			b.Fatal("unexpected result")
		}
	}
}

var sinkCheck uint16
