package ecc

import (
	"encoding/binary"
	"fmt"
)

// Residue check code, per "Revisiting Residue Codes for Modern Memories"
// (PAPERS.md): instead of per-word Hamming codes, store the residue of the
// data modulo a low-cost check modulus. We use the classic ones'-complement
// modulus 2^32-1 over the block's sixteen little-endian 32-bit words:
// summing with end-around carry is a handful of adds per block, and the
// check word is 4 bytes — half the storage of SEC-DED(72,64) (6.25% of the
// block vs 12.5%), which is the design point's appeal.
//
// Guarantees (exercised by residue_test.go and Figure 3's fault classes):
//
//   - Any single flipped bit — data or check — is always detected: a flip
//     changes the residue by ±2^k mod 2^32-1, which is never zero, and two
//     distinct powers of two cannot differ by the modulus within a word.
//   - Detection only: the residue localizes nothing, so nothing is ever
//     corrected. A mismatch reports one detected (uncorrectable) word.
//   - Known blind spots, inherent to the modulus: a 32-bit word changing
//     between 0x00000000 and 0xFFFFFFFF (both congruent to 0), and
//     opposite-polarity flips in the same bit column of two words (the
//     +2^k and -2^k cancel). Multi-bit spread faults therefore alias with
//     small probability — the honest Miscorrected rows fault.InjectResidue
//     reports. In the engine these escapes are still caught end-to-end by
//     the MAC, exactly as SEC-DED's own triple-bit miscorrections are.

// ResidueCheckBytes is the residue codec's stored check footprint.
const ResidueCheckBytes = 4

// residueModulus is 2^32 - 1, the ones'-complement check modulus.
const residueModulus = 0xFFFFFFFF

// residueSum folds the block's sixteen 32-bit words modulo 2^32-1.
func residueSum(data []byte) uint32 {
	var s uint64
	for i := 0; i < BlockSize; i += 8 {
		w := binary.LittleEndian.Uint64(data[i:])
		s += w & residueModulus
		s += w >> 32
	}
	// End-around-carry fold: the sum of 16 words is < 2^36, so the fold
	// terminates in at most two passes.
	for s>>32 != 0 {
		s = s&residueModulus + s>>32
	}
	// Canonicalize: 0 and 2^32-1 are the same residue class.
	if s == residueModulus {
		s = 0
	}
	return uint32(s)
}

// residueCodec is the "residue" BlockCodec.
type residueCodec struct{}

func (residueCodec) Name() string     { return "residue" }
func (residueCodec) CheckBytes() int  { return ResidueCheckBytes }
func (residueCodec) CarriesMAC() bool { return false }

func (residueCodec) EncodeInto(check, data []byte) error {
	if len(check) != ResidueCheckBytes {
		return fmt.Errorf("ecc: residue check buffer must be %d bytes, got %d", ResidueCheckBytes, len(check))
	}
	if len(data) != BlockSize {
		return ErrBlockSize
	}
	binary.LittleEndian.PutUint32(check, residueSum(data))
	return nil
}

func (residueCodec) DecodeAndCorrect(data, check []byte) (BlockOutcome, error) {
	if len(check) != ResidueCheckBytes {
		return BlockOutcome{}, fmt.Errorf("ecc: residue check buffer must be %d bytes, got %d", ResidueCheckBytes, len(check))
	}
	if len(data) != BlockSize {
		return BlockOutcome{}, ErrBlockSize
	}
	stored := binary.LittleEndian.Uint32(check)
	if stored == residueModulus {
		stored = 0 // accept the non-canonical encoding of residue zero
	}
	if residueSum(data) != stored {
		return BlockOutcome{DetectedWords: 1, WorstResult: Uncorrectable}, nil
	}
	return BlockOutcome{}, nil
}
