package mac

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"authmem/internal/gf64"
)

func testKey(t testing.TB) *Key {
	t.Helper()
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*7 + 3)
	}
	k, err := NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestNewKeyRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, 16, 23, 25, 32} {
		if _, err := NewKey(make([]byte, n)); err == nil {
			t.Errorf("NewKey with %d bytes should fail", n)
		}
	}
}

func TestNewKeyZeroHashPoint(t *testing.T) {
	// All-zero material exercises the h==0 fallback; the key must work.
	k, err := NewKey(make([]byte, 24))
	if err != nil {
		t.Fatal(err)
	}
	tag, err := k.Tag(make([]byte, BlockSize), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := k.Verify(make([]byte, BlockSize), 0, 0, tag)
	if err != nil || !ok {
		t.Fatalf("verify failed: ok=%v err=%v", ok, err)
	}
}

func TestTagFitsIn56Bits(t *testing.T) {
	k := testKey(t)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ct := make([]byte, BlockSize)
		rng.Read(ct)
		tag, err := k.Tag(ct, rng.Uint64(), rng.Uint64())
		if err != nil {
			t.Fatal(err)
		}
		if tag&^TagMask != 0 {
			t.Fatalf("tag %#x exceeds 56 bits", tag)
		}
	}
}

func TestTagRejectsBadBlockSize(t *testing.T) {
	k := testKey(t)
	if _, err := k.Tag(make([]byte, 32), 0, 0); err == nil {
		t.Fatal("short ciphertext should fail")
	}
	if _, err := k.Verify(make([]byte, 128), 0, 0, 0); err == nil {
		t.Fatal("long ciphertext should fail")
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	k := testKey(t)
	f := func(seed int64, addr, counter uint64) bool {
		rng := rand.New(rand.NewSource(seed))
		ct := make([]byte, BlockSize)
		rng.Read(ct)
		tag, err := k.Tag(ct, addr, counter)
		if err != nil {
			return false
		}
		ok, err := k.Verify(ct, addr, counter, tag)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnyBitFlipChangesTag(t *testing.T) {
	k := testKey(t)
	rng := rand.New(rand.NewSource(2))
	ct := make([]byte, BlockSize)
	rng.Read(ct)
	tag, _ := k.Tag(ct, 0x1000, 42)
	for bit := 0; bit < BlockSize*8; bit++ {
		ct[bit/8] ^= 1 << uint(bit%8)
		ok, err := k.Verify(ct, 0x1000, 42, tag)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("flip of ciphertext bit %d went undetected", bit)
		}
		ct[bit/8] ^= 1 << uint(bit%8)
	}
}

func TestTagBoundToAddress(t *testing.T) {
	// Block-swap attack: same ciphertext and counter at a different
	// address must not verify.
	k := testKey(t)
	ct := make([]byte, BlockSize)
	rand.New(rand.NewSource(3)).Read(ct)
	tag, _ := k.Tag(ct, 0x40, 7)
	ok, _ := k.Verify(ct, 0x80, 7, tag)
	if ok {
		t.Fatal("tag verified at a different address")
	}
}

func TestTagBoundToCounter(t *testing.T) {
	// Replay attack: same ciphertext and address at an older counter must
	// not verify once the counter has advanced.
	k := testKey(t)
	ct := make([]byte, BlockSize)
	rand.New(rand.NewSource(4)).Read(ct)
	tag, _ := k.Tag(ct, 0x40, 7)
	ok, _ := k.Verify(ct, 0x40, 8, tag)
	if ok {
		t.Fatal("stale tag verified under a newer counter")
	}
}

func TestDifferentKeysDisagree(t *testing.T) {
	k1 := testKey(t)
	m2 := make([]byte, 24)
	for i := range m2 {
		m2[i] = byte(200 - i)
	}
	k2, err := NewKey(m2)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, BlockSize)
	rand.New(rand.NewSource(5)).Read(ct)
	t1, _ := k1.Tag(ct, 0, 0)
	t2, _ := k2.Tag(ct, 0, 0)
	if t1 == t2 {
		t.Fatal("independent keys produced identical tags")
	}
}

func TestTagDistribution(t *testing.T) {
	// Coarse uniformity check: over 4096 random blocks, every tag byte
	// position should take many distinct values.
	k := testKey(t)
	rng := rand.New(rand.NewSource(6))
	seen := make([]map[byte]bool, 7)
	for i := range seen {
		seen[i] = make(map[byte]bool)
	}
	ct := make([]byte, BlockSize)
	for i := 0; i < 4096; i++ {
		rng.Read(ct)
		tag, _ := k.Tag(ct, uint64(i)*64, uint64(i))
		for b := 0; b < 7; b++ {
			seen[b][byte(tag>>uint(8*b))] = true
		}
	}
	for b, m := range seen {
		if len(m) < 200 {
			t.Errorf("tag byte %d only took %d distinct values", b, len(m))
		}
	}
}

// referenceTag recomputes a tag with the Horner-form hash over the
// bit-serial constant-time gf64.Mul — the oracle the table-driven dot
// product in Tag must match bit-for-bit.
func referenceTag(k *Key, ciphertext []byte, addr, counter uint64) uint64 {
	var words [blockWords]uint64
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(ciphertext[i*8:])
	}
	return (gf64.Horner(k.h, words[:]) ^ k.pad(addr, counter)) & TagMask
}

// TestTagMatchesHornerReference proves the table-driven dot product
// equivalent to the Horner/bit-serial reference on 10k random inputs.
func TestTagMatchesHornerReference(t *testing.T) {
	k := testKey(t)
	rng := rand.New(rand.NewSource(8))
	ct := make([]byte, BlockSize)
	for i := 0; i < 10_000; i++ {
		rng.Read(ct)
		addr, counter := rng.Uint64(), rng.Uint64()
		got, err := k.Tag(ct, addr, counter)
		if err != nil {
			t.Fatal(err)
		}
		if want := referenceTag(k, ct, addr, counter); got != want {
			t.Fatalf("Tag = %#x, reference = %#x (iter %d)", got, want, i)
		}
	}
	// Edge blocks: all-zero, all-ones, single bit set at each word.
	for _, fill := range []byte{0x00, 0xFF} {
		for i := range ct {
			ct[i] = fill
		}
		got, _ := k.Tag(ct, 0x40, 1)
		if want := referenceTag(k, ct, 0x40, 1); got != want {
			t.Fatalf("Tag(fill %#x) = %#x, reference = %#x", fill, got, want)
		}
	}
}

// TestTagZeroAllocs pins the steady-state allocation count of Tag at zero —
// the property the engine's zero-alloc read path depends on.
func TestTagZeroAllocs(t *testing.T) {
	k := testKey(t)
	ct := make([]byte, BlockSize)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := k.Tag(ct, 0x1000, 7); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Tag performed %v allocs/op, want 0", allocs)
	}
}

func BenchmarkTag(b *testing.B) {
	k := testKey(b)
	ct := make([]byte, BlockSize)
	rand.New(rand.NewSource(7)).Read(ct)
	b.SetBytes(BlockSize)
	b.ResetTimer()
	var acc uint64
	for i := 0; i < b.N; i++ {
		tag, err := k.Tag(ct, uint64(i), uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		acc ^= tag
	}
	sink = acc
}

var sink uint64

// TestGoldenTags pins tag values for a fixed key and inputs. Persisted NVMM
// images embed MACs computed by this code, so a change here breaks stored
// images: bump the persistence format if these must move.
func TestGoldenTags(t *testing.T) {
	k := testKey(t)
	ct := make([]byte, BlockSize)
	for i := range ct {
		ct[i] = byte(i)
	}
	golden := []struct {
		addr, ctr, tag uint64
	}{
		{0x0, 0, 0x00e395f701fd4f0d},
		{0x1000, 1, 0x005a8156e4cc7d95},
		{0xffffc0, 123456, 0x0037848c3a55993c},
	}
	for _, g := range golden {
		tag, err := k.Tag(ct, g.addr, g.ctr)
		if err != nil {
			t.Fatal(err)
		}
		if tag != g.tag {
			t.Fatalf("tag(%#x,%d) = %#016x, want %#016x", g.addr, g.ctr, tag, g.tag)
		}
	}
}
