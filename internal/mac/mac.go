// Package mac implements the 56-bit Carter-Wegman message authentication
// code the paper adopts from Intel SGX (Gueron, "Memory Encryption for
// General-Purpose Processors").
//
// The tag for a 64-byte ciphertext block C stored at physical address A
// under write counter CTR is
//
//	tag = truncate56( PolyHash_h(C) XOR PRF_k(A, CTR) )
//
// where PolyHash_h is a polynomial hash over GF(2^64) keyed by the secret
// field point h, and PRF_k is AES-128 over the (address, counter) nonce.
// Binding the counter into the tag is what makes Bonsai Merkle trees sound:
// protecting counter integrity transitively protects data integrity,
// because replaying stale data with the current counter changes the tag.
//
// 56 bits is short by general-purpose MAC standards, but as §3.2 of the
// paper argues (following SGX's analysis), forgery attempts are rate-limited
// by the memory bus of the machine under attack, which pushes expected
// forgery time to millions of years.
//
// Performance: the polynomial hash is evaluated as a table-driven dot
// product. NewKey precomputes one windowed gf64.Table per key power
// h^8..h^1 (the weight of each of the block's eight words), so Tag costs
// eight table multiplies and one AES block instead of eight bit-serial
// GF(2^64) multiplications — the software stand-in for the paper's
// one-cycle hardware Carter-Wegman multiplier. The Horner-form hash over
// the bit-serial gf64.Mul is retained in tests as the reference oracle.
package mac

import (
	"encoding/binary"
	"fmt"

	"authmem/internal/aes"
	"authmem/internal/gf64"
)

// TagBits is the width of a truncated tag.
const TagBits = 56

// TagMask masks a uint64 down to a 56-bit tag.
const TagMask = (uint64(1) << TagBits) - 1

// BlockSize is the protected data granularity in bytes.
const BlockSize = 64

// blockWords is the number of 64-bit words hashed per block.
const blockWords = BlockSize / 8

// Key holds the two secrets of the Carter-Wegman construction: the
// polynomial-hash point and an AES key for the pad PRF.
//
// The prf field is the concrete cipher type rather than cipher.Block: the
// devirtualized call lets the AES input/output buffers stay on the stack,
// which is what makes Tag allocation-free.
type Key struct {
	h   uint64 // GF(2^64) hash point; must be secret and nonzero
	prf *aes.Cipher

	// pow[i] is the windowed multiplication table of h^(blockWords-i),
	// the hash weight of word i; Tag is a dot product over these tables.
	pow [blockWords]*gf64.Table
}

// NewKey derives a MAC key from 24 bytes of key material: the first 8 bytes
// seed the hash point, the remaining 16 form the AES-128 PRF key.
func NewKey(material []byte) (*Key, error) {
	if len(material) != 24 {
		return nil, fmt.Errorf("mac: key material must be 24 bytes, got %d", len(material))
	}
	h := binary.LittleEndian.Uint64(material[:8])
	if h == 0 {
		// A zero hash point would collapse the polynomial hash; any
		// fixed nonzero substitute preserves uniformity of the family.
		h = 1
	}
	blk, err := aes.New(material[8:])
	if err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	k := &Key{h: h, prf: blk}
	for i := 0; i < blockWords; i++ {
		k.pow[i] = gf64.NewTable(gf64.Pow(h, uint64(blockWords-i)))
	}
	return k, nil
}

// HashPoint returns the secret GF(2^64) hash point. It is exposed (within
// this module only) for the MAC-in-ECC flip-and-check accelerator, which
// precomputes per-bit tag contributions from it; hardware would wire the
// same secret into the correction engine.
func (k *Key) HashPoint() uint64 { return k.h }

// Tag computes the 56-bit tag for a 64-byte ciphertext block at the given
// physical block address and counter value. It performs no allocations.
func (k *Key) Tag(ciphertext []byte, addr uint64, counter uint64) (uint64, error) {
	if len(ciphertext) != BlockSize {
		return 0, fmt.Errorf("mac: ciphertext must be %d bytes, got %d", BlockSize, len(ciphertext))
	}
	// Dot product: word i carries hash weight h^(8-i), matching the
	// Horner form sum m[i] * x^(n-i).
	var hash uint64
	for i := 0; i < blockWords; i++ {
		hash ^= k.pow[i].Mul(binary.LittleEndian.Uint64(ciphertext[i*8:]))
	}
	return (hash ^ k.pad(addr, counter)) & TagMask, nil
}

// TagBatch computes the tags of len(tags) contiguous ciphertext blocks
// sharing one counter: block i of ciphertexts is tagged for address
// addr + i*BlockSize. This is the seal shape of a group re-encryption sweep
// and of a coalesced multi-block write; backends with batched PRF kernels
// amortize the pad generation here, and the T-table path simply loops.
// len(ciphertexts) must be len(tags)*BlockSize.
func (k *Key) TagBatch(tags []uint64, ciphertexts []byte, addr uint64, counter uint64) error {
	if len(ciphertexts) != len(tags)*BlockSize {
		return fmt.Errorf("mac: ciphertexts must be %d bytes for %d tags, got %d",
			len(tags)*BlockSize, len(tags), len(ciphertexts))
	}
	for i := range tags {
		t, err := k.Tag(ciphertexts[i*BlockSize:(i+1)*BlockSize], addr+uint64(i*BlockSize), counter)
		if err != nil {
			return err
		}
		tags[i] = t
	}
	return nil
}

// Verify reports whether tag authenticates the ciphertext at (addr, counter).
func (k *Key) Verify(ciphertext []byte, addr, counter, tag uint64) (bool, error) {
	want, err := k.Tag(ciphertext, addr, counter)
	if err != nil {
		return false, err
	}
	return want == tag&TagMask, nil
}

// pad computes PRF_k(addr, counter): one AES block over the nonce,
// truncated to 64 bits.
func (k *Key) pad(addr, counter uint64) uint64 {
	var in, out [16]byte
	binary.LittleEndian.PutUint64(in[:8], addr)
	binary.LittleEndian.PutUint64(in[8:], counter)
	k.prf.Encrypt(out[:], in[:])
	return binary.LittleEndian.Uint64(out[:8])
}
