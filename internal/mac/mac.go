// Package mac implements the 56-bit Carter-Wegman message authentication
// code the paper adopts from Intel SGX (Gueron, "Memory Encryption for
// General-Purpose Processors").
//
// The tag for a 64-byte ciphertext block C stored at physical address A
// under write counter CTR is
//
//	tag = truncate56( PolyHash_h(C) XOR PRF_k(A, CTR) )
//
// where PolyHash_h is a polynomial hash over GF(2^64) keyed by the secret
// field point h, and PRF_k is AES-128 over the (address, counter) nonce.
// Binding the counter into the tag is what makes Bonsai Merkle trees sound:
// protecting counter integrity transitively protects data integrity,
// because replaying stale data with the current counter changes the tag.
//
// 56 bits is short by general-purpose MAC standards, but as §3.2 of the
// paper argues (following SGX's analysis), forgery attempts are rate-limited
// by the memory bus of the machine under attack, which pushes expected
// forgery time to millions of years.
package mac

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"

	"authmem/internal/aes"
	"authmem/internal/gf64"
)

// TagBits is the width of a truncated tag.
const TagBits = 56

// TagMask masks a uint64 down to a 56-bit tag.
const TagMask = (uint64(1) << TagBits) - 1

// BlockSize is the protected data granularity in bytes.
const BlockSize = 64

// Key holds the two secrets of the Carter-Wegman construction: the
// polynomial-hash point and an AES key for the pad PRF.
type Key struct {
	h   uint64 // GF(2^64) hash point; must be secret and nonzero
	prf cipher.Block
}

// NewKey derives a MAC key from 24 bytes of key material: the first 8 bytes
// seed the hash point, the remaining 16 form the AES-128 PRF key.
func NewKey(material []byte) (*Key, error) {
	if len(material) != 24 {
		return nil, fmt.Errorf("mac: key material must be 24 bytes, got %d", len(material))
	}
	h := binary.LittleEndian.Uint64(material[:8])
	if h == 0 {
		// A zero hash point would collapse the polynomial hash; any
		// fixed nonzero substitute preserves uniformity of the family.
		h = 1
	}
	blk, err := aes.New(material[8:])
	if err != nil {
		return nil, fmt.Errorf("mac: %w", err)
	}
	return &Key{h: h, prf: blk}, nil
}

// HashPoint returns the secret GF(2^64) hash point. It is exposed (within
// this module only) for the MAC-in-ECC flip-and-check accelerator, which
// precomputes per-bit tag contributions from it; hardware would wire the
// same secret into the correction engine.
func (k *Key) HashPoint() uint64 { return k.h }

// Tag computes the 56-bit tag for a 64-byte ciphertext block at the given
// physical block address and counter value.
func (k *Key) Tag(ciphertext []byte, addr uint64, counter uint64) (uint64, error) {
	if len(ciphertext) != BlockSize {
		return 0, fmt.Errorf("mac: ciphertext must be %d bytes, got %d", BlockSize, len(ciphertext))
	}
	var words [BlockSize / 8]uint64
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(ciphertext[i*8:])
	}
	hash := gf64.Horner(k.h, words[:])
	return (hash ^ k.pad(addr, counter)) & TagMask, nil
}

// Verify reports whether tag authenticates the ciphertext at (addr, counter).
func (k *Key) Verify(ciphertext []byte, addr, counter, tag uint64) (bool, error) {
	want, err := k.Tag(ciphertext, addr, counter)
	if err != nil {
		return false, err
	}
	return want == tag&TagMask, nil
}

// pad computes PRF_k(addr, counter): one AES block over the nonce,
// truncated to 64 bits.
func (k *Key) pad(addr, counter uint64) uint64 {
	var in, out [16]byte
	binary.LittleEndian.PutUint64(in[:8], addr)
	binary.LittleEndian.PutUint64(in[8:], counter)
	k.prf.Encrypt(out[:], in[:])
	return binary.LittleEndian.Uint64(out[:8])
}
