package mac

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"authmem/internal/gf64"
)

// naiveMulTag is the textbook evaluation of the same construction: a
// Horner-form polynomial hash over the bit-serial gf64.Mul, plus the AES
// pad. It shares no code with the table-driven dot product in Tag (beyond
// the pad PRF, which both must use by definition), so agreement pins the
// windowed-table path — including table construction in NewKey — against
// first principles.
func naiveMulTag(k *Key, ciphertext []byte, addr, counter uint64) uint64 {
	var hash uint64
	for i := 0; i < blockWords; i++ {
		hash = gf64.Mul(hash^binary.LittleEndian.Uint64(ciphertext[i*8:]), k.h)
	}
	return (hash ^ k.pad(addr, counter)) & TagMask
}

// TestTagDifferential cross-checks mac.Tag against the naive reference on
// 10k messages: structured edge patterns first (the all-zero block, single
// nonzero words in each position, short tails where only the first n words
// are populated, single-bit messages, all-ones), then random blocks under
// random addresses and counters.
func TestTagDifferential(t *testing.T) {
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i*29 + 3)
	}
	k, err := NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	// A second key with a different hash point, so agreement is not an
	// artifact of one lucky h.
	material[0] ^= 0xA5
	k2, err := NewKey(material)
	if err != nil {
		t.Fatal(err)
	}

	check := func(msg []byte, addr, counter uint64) {
		t.Helper()
		for _, key := range []*Key{k, k2} {
			got, err := key.Tag(msg, addr, counter)
			if err != nil {
				t.Fatal(err)
			}
			if want := naiveMulTag(key, msg, addr, counter); got != want {
				t.Fatalf("Tag mismatch: got %#x want %#x\nmsg %x addr %#x counter %d", got, want, msg, addr, counter)
			}
		}
	}

	msg := make([]byte, BlockSize)
	cases := 0

	// Empty message.
	check(msg, 0, 0)
	cases++

	// Exactly one nonzero word, in each position, with edge values.
	for w := 0; w < blockWords; w++ {
		for _, v := range []uint64{1, 0x8000000000000000, ^uint64(0), 0x0123456789ABCDEF} {
			clear(msg)
			binary.LittleEndian.PutUint64(msg[w*8:], v)
			check(msg, uint64(w)*64, uint64(v&0xFF))
			cases++
		}
	}

	// Short tails: only the first n words populated, n = 0..8 — the
	// pattern a partially filled cache line produces.
	rng := rand.New(rand.NewSource(77))
	for n := 0; n <= blockWords; n++ {
		clear(msg)
		for w := 0; w < n; w++ {
			binary.LittleEndian.PutUint64(msg[w*8:], rng.Uint64())
		}
		check(msg, uint64(n), uint64(n)<<32)
		cases++
	}
	// And the mirror image: only the last n words populated.
	for n := 0; n <= blockWords; n++ {
		clear(msg)
		for w := blockWords - n; w < blockWords; w++ {
			binary.LittleEndian.PutUint64(msg[w*8:], rng.Uint64())
		}
		check(msg, uint64(n)<<20, uint64(n))
		cases++
	}

	// Every single-bit message.
	for bit := 0; bit < BlockSize*8; bit++ {
		clear(msg)
		msg[bit/8] = 1 << uint(bit%8)
		check(msg, 0x1000, uint64(bit))
		cases++
	}

	// Random blocks to 10k total, with random (addr, counter) including
	// extremes.
	for ; cases < 10_000; cases++ {
		rng.Read(msg)
		addr := rng.Uint64()
		counter := rng.Uint64()
		switch cases % 97 {
		case 0:
			addr, counter = 0, 0
		case 1:
			addr, counter = ^uint64(0), ^uint64(0)
		}
		check(msg, addr, counter)
	}
}

// TestTagRejectsBadLength pins the only input the reference cannot model:
// Tag must refuse non-block-sized messages rather than guess a padding.
func TestTagRejectsBadLength(t *testing.T) {
	material := make([]byte, 24)
	for i := range material {
		material[i] = byte(i + 1)
	}
	k, err := NewKey(material)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 63, 65, 128} {
		if _, err := k.Tag(make([]byte, n), 0, 0); err == nil {
			t.Errorf("Tag accepted %d-byte message", n)
		}
	}
}
