package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHex(t testing.TB, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSBoxProperties(t *testing.T) {
	// Known anchor values from FIPS-197.
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7C || sbox[0x53] != 0xED || sbox[0xFF] != 0x16 {
		t.Fatalf("sbox anchors wrong: %#x %#x %#x %#x",
			sbox[0x00], sbox[0x01], sbox[0x53], sbox[0xFF])
	}
	// Bijective.
	var seen [256]bool
	for _, v := range sbox {
		if seen[v] {
			t.Fatal("sbox not a permutation")
		}
		seen[v] = true
	}
	// No fixed points or anti-fixed points (classic AES property).
	for i, v := range sbox {
		if int(v) == i || int(v) == i^0xFF {
			t.Fatalf("sbox fixed point at %#x", i)
		}
	}
}

func TestRcon(t *testing.T) {
	want := []byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}
	for i, w := range want {
		if rcon[i] != w {
			t.Fatalf("rcon[%d] = %#x, want %#x", i, rcon[i], w)
		}
	}
}

// TestFIPS197Vectors pins the appendix-C known-answer tests for all three
// key sizes.
func TestFIPS197Vectors(t *testing.T) {
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	cases := []struct{ key, ct string }{
		{"000102030405060708090a0b0c0d0e0f",
			"69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617",
			"dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		blk, err := New(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		blk.Encrypt(got, pt)
		if !bytes.Equal(got, mustHex(t, c.ct)) {
			t.Fatalf("key %s: got %x, want %s", c.key, got, c.ct)
		}
	}
}

// TestAppendixB pins the FIPS-197 appendix-B worked example.
func TestAppendixB(t *testing.T) {
	blk, err := New(mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	blk.Encrypt(got, mustHex(t, "3243f6a8885a308d313198a2e0370734"))
	if want := mustHex(t, "3925841d02dc09fbdc118597196a0b32"); !bytes.Equal(got, want) {
		t.Fatalf("got %x, want %x", got, want)
	}
}

// TestMatchesStdlib cross-validates against crypto/aes over random keys and
// blocks for every key size.
func TestMatchesStdlib(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		keyLen := keyLen
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, keyLen)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)
			ours, err := New(key)
			if err != nil {
				return false
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				return false
			}
			a := make([]byte, 16)
			b := make([]byte, 16)
			ours.Encrypt(a, pt)
			ref.Encrypt(b, pt)
			return bytes.Equal(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("key size %d: %v", keyLen, err)
		}
	}
}

// TestEncryptMatchesReference holds the T-table fast path equal to the
// byte-wise FIPS-197 round sequence it was derived from, across key sizes.
func TestEncryptMatchesReference(t *testing.T) {
	for _, keyLen := range []int{16, 24, 32} {
		keyLen := keyLen
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			key := make([]byte, keyLen)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)
			c, err := New(key)
			if err != nil {
				return false
			}
			fast := make([]byte, 16)
			ref := make([]byte, 16)
			c.Encrypt(fast, pt)
			c.encryptReference(ref, pt)
			return bytes.Equal(fast, ref)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("key size %d: %v", keyLen, err)
		}
	}
}

func TestNewRejectsBadKeys(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 31, 33} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("key size %d accepted", n)
		}
	}
}

func TestEncryptInPlace(t *testing.T) {
	blk, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	buf := mustHex(t, "00112233445566778899aabbccddeeff")
	want := make([]byte, 16)
	blk.Encrypt(want, buf)
	blk.Encrypt(buf, buf) // aliased
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place encryption differs")
	}
}

func TestShortBlockPanics(t *testing.T) {
	blk, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("short block should panic (cipher.Block contract)")
		}
	}()
	blk.Encrypt(make([]byte, 8), make([]byte, 8))
}

func TestDecryptPanics(t *testing.T) {
	blk, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("Decrypt should panic: not implemented by design")
		}
	}()
	blk.Decrypt(make([]byte, 16), make([]byte, 16))
}

func TestBlockSize(t *testing.T) {
	blk, _ := New(make([]byte, 16))
	if blk.BlockSize() != 16 {
		t.Fatal("block size wrong")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	blk, _ := New(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		blk.Encrypt(buf, buf)
	}
}
