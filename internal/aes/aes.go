// Package aes is a from-scratch implementation of the AES block cipher
// (FIPS-197), encryption direction only — counter-mode memory encryption
// and the MAC's PRF never decrypt a block, so the inverse cipher is
// deliberately omitted.
//
// Everything is derived, not transcribed: the S-box is computed from the
// GF(2^8) multiplicative inverse and the affine transform at package init,
// and the round constants from repeated doubling. Tests pin the FIPS-197
// vectors and cross-validate against crypto/aes over random inputs.
//
// Security note: like almost all table-based software AES, lookups are
// data-dependent and therefore not constant-time. The hardware this
// simulates (AES units in memory controllers) is; treat this package as a
// functional model, which is all the simulator needs.
package aes

import (
	"crypto/cipher"
	"encoding/binary"
	"fmt"
)

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox is the SubBytes table, generated in init from first principles.
var sbox [256]byte

// rcon holds the key-schedule round constants.
var rcon [11]byte

// te0..te3 are the combined SubBytes+ShiftRows+MixColumns round tables
// ("T-tables"), derived from sbox at init. te0[x] packs the MixColumns
// column (2s, s, s, 3s) of s = sbox[x] big-endian; te1..te3 are byte
// rotations of te0, one per state row. A full round is then four table
// lookups and three XORs per column instead of byte-wise SubBytes,
// ShiftRows, and MixColumns passes.
var te0, te1, te2, te3 [256]uint32

func init() {
	// GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1 (0x11B).
	mul := func(a, b byte) byte {
		var p byte
		for i := 0; i < 8; i++ {
			if b&1 == 1 {
				p ^= a
			}
			hi := a & 0x80
			a <<= 1
			if hi != 0 {
				a ^= 0x1B
			}
			b >>= 1
		}
		return p
	}
	// Multiplicative inverses by brute force (init-time only).
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if mul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	// Affine transform: s = b ^ rot(b,4) ^ rot(b,5) ^ rot(b,6) ^ rot(b,7) ^ 0x63.
	rotl := func(x byte, n uint) byte { return x<<n | x>>(8-n) }
	for i := 0; i < 256; i++ {
		b := inv[i]
		sbox[i] = b ^ rotl(b, 1) ^ rotl(b, 2) ^ rotl(b, 3) ^ rotl(b, 4) ^ 0x63
	}
	// Round constants: rcon[i] = x^(i-1) in GF(2^8).
	c := byte(1)
	for i := 1; i < len(rcon); i++ {
		rcon[i] = c
		c = mul(c, 2)
	}
	// Round tables from the derived S-box.
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

// Cipher is an AES encryption-only block cipher. It implements
// cipher.Block's BlockSize and Encrypt; Decrypt panics.
type Cipher struct {
	rounds int
	rk     [][4]uint32 // round keys as column words
}

var _ cipher.Block = (*Cipher)(nil)

// New expands an AES-128/192/256 key.
func New(key []byte) (*Cipher, error) {
	var rounds int
	switch len(key) {
	case 16:
		rounds = 10
	case 24:
		rounds = 12
	case 32:
		rounds = 14
	default:
		return nil, fmt.Errorf("aes: invalid key size %d", len(key))
	}
	nk := len(key) / 4
	total := 4 * (rounds + 1)
	w := make([]uint32, total)
	for i := 0; i < nk; i++ {
		w[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	subWord := func(x uint32) uint32 {
		return uint32(sbox[x>>24])<<24 | uint32(sbox[x>>16&0xFF])<<16 |
			uint32(sbox[x>>8&0xFF])<<8 | uint32(sbox[x&0xFF])
	}
	for i := nk; i < total; i++ {
		t := w[i-1]
		switch {
		case i%nk == 0:
			t = subWord(t<<8|t>>24) ^ uint32(rcon[i/nk])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c := &Cipher{rounds: rounds, rk: make([][4]uint32, rounds+1)}
	for r := 0; r <= rounds; r++ {
		copy(c.rk[r][:], w[4*r:4*r+4])
	}
	return c, nil
}

// BlockSize implements cipher.Block.
func (c *Cipher) BlockSize() int { return BlockSize }

// xtime doubles a GF(2^8) element.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1B
	}
	return b << 1
}

// Encrypt implements cipher.Block: dst = AES(src). dst and src must be 16
// bytes and may alias.
//
// The rounds run on four big-endian column words through the T-tables; the
// byte-wise round primitives survive in encryptReference, which tests hold
// equal to this path (and both to crypto/aes).
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	rk := c.rk
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ rk[0][0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ rk[0][1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ rk[0][2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ rk[0][3]
	for r := 1; r < c.rounds; r++ {
		k := &rk[r]
		t0 := te0[s0>>24] ^ te1[s1>>16&0xFF] ^ te2[s2>>8&0xFF] ^ te3[s3&0xFF] ^ k[0]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xFF] ^ te2[s3>>8&0xFF] ^ te3[s0&0xFF] ^ k[1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xFF] ^ te2[s0>>8&0xFF] ^ te3[s1&0xFF] ^ k[2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xFF] ^ te2[s1>>8&0xFF] ^ te3[s2&0xFF] ^ k[3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	k := &rk[c.rounds]
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xFF])<<16 |
		uint32(sbox[s2>>8&0xFF])<<8 | uint32(sbox[s3&0xFF])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xFF])<<16 |
		uint32(sbox[s3>>8&0xFF])<<8 | uint32(sbox[s0&0xFF])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xFF])<<16 |
		uint32(sbox[s0>>8&0xFF])<<8 | uint32(sbox[s1&0xFF])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xFF])<<16 |
		uint32(sbox[s1>>8&0xFF])<<8 | uint32(sbox[s2&0xFF])
	binary.BigEndian.PutUint32(dst[0:4], t0^k[0])
	binary.BigEndian.PutUint32(dst[4:8], t1^k[1])
	binary.BigEndian.PutUint32(dst[8:12], t2^k[2])
	binary.BigEndian.PutUint32(dst[12:16], t3^k[3])
}

// encryptReference is the byte-wise FIPS-197 round sequence the T-table
// path was derived from; tests pin Encrypt against it.
func (c *Cipher) encryptReference(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: short block")
	}
	// State as 16 bytes in column-major order (FIPS-197 layout:
	// state[r][c] = in[r + 4c]).
	var s [16]byte
	copy(s[:], src[:16])
	addRoundKey(&s, &c.rk[0])
	for r := 1; r < c.rounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, &c.rk[r])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, &c.rk[c.rounds])
	copy(dst[:16], s[:])
}

// Decrypt implements cipher.Block but is intentionally unavailable:
// counter-mode encryption and PRF evaluation only ever run the forward
// cipher.
func (c *Cipher) Decrypt(dst, src []byte) {
	panic("aes: decryption not implemented (CTR/PRF use only the forward cipher)")
}

func addRoundKey(s *[16]byte, rk *[4]uint32) {
	for col := 0; col < 4; col++ {
		w := rk[col]
		s[4*col+0] ^= byte(w >> 24)
		s[4*col+1] ^= byte(w >> 16)
		s[4*col+2] ^= byte(w >> 8)
		s[4*col+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i, b := range s {
		s[i] = sbox[b]
	}
}

// shiftRows rotates row r left by r; with column-major state, row r is
// bytes r, r+4, r+8, r+12.
func shiftRows(s *[16]byte) {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}
