package ctr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements the exact bit-level storage layouts of the counter
// metadata blocks. The layouts matter for two reasons: (1) the integrity
// tree MACs counter *blocks*, so the engine needs a canonical byte image of
// each group's state, and (2) the decode path (reference + bit-extracted
// delta) is the hardware the paper synthesized; reproducing it bit-exactly
// lets tests validate the decode unit against the scheme state.
//
// Layouts (bit offsets, little-endian bit order within the 512-bit block):
//
//	split-7:      [ 0..63] major, [64..511] 64×7-bit minors
//	delta-7:      [ 0..55] ref,   [56..503] 64×7-bit deltas, [504..511] pad
//	dual-length:  [ 0..55] ref,   [56..439] 64×6-bit deltas,
//	              [440] ext-in-use, [441..442] ext group index,
//	              [443..506] 16×4-bit extension nibbles, [507..511] spare
//	monolithic:   8×64-bit counter slots (one of 8 blocks per 64 counters)

// ErrCorruptMetadata is returned when unpacking detects an impossible
// encoding (e.g. a nonzero pad).
var ErrCorruptMetadata = errors.New("ctr: corrupt metadata block")

// bitString provides LSB-first bit field access over a 64-byte block.
type bitString struct {
	b [MetadataBlockBytes]byte
}

func (s *bitString) put(off, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := (v >> uint(i)) & 1
		pos := off + i
		if bit == 1 {
			s.b[pos/8] |= 1 << uint(pos%8)
		} else {
			s.b[pos/8] &^= 1 << uint(pos%8)
		}
	}
}

func (s *bitString) get(off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		pos := off + i
		v |= uint64(s.b[pos/8]>>uint(pos%8)&1) << uint(i)
	}
	return v
}

// PackSplit serializes a split-counter group (major, 64 minors) into a
// 64-byte metadata block.
func PackSplit(major uint64, minors *[GroupBlocks]uint16) [MetadataBlockBytes]byte {
	var s bitString
	s.put(0, 64, major)
	for i, m := range minors {
		s.put(64+i*MinorBits, MinorBits, uint64(m))
	}
	return s.b
}

// UnpackSplit deserializes a split-counter metadata block.
func UnpackSplit(blk [MetadataBlockBytes]byte) (major uint64, minors [GroupBlocks]uint16) {
	s := bitString{b: blk}
	major = s.get(0, 64)
	for i := range minors {
		minors[i] = uint16(s.get(64+i*MinorBits, MinorBits))
	}
	return major, minors
}

// PackDelta serializes a 7-bit delta group (56-bit ref, 64 deltas) into a
// 64-byte metadata block. Deltas must fit in 7 bits and ref in 56.
func PackDelta(ref uint64, deltas *[GroupBlocks]uint16) ([MetadataBlockBytes]byte, error) {
	var s bitString
	if ref >= 1<<RefBits {
		return s.b, fmt.Errorf("ctr: reference %#x exceeds %d bits", ref, RefBits)
	}
	s.put(0, RefBits, ref)
	for i, d := range deltas {
		if d > deltaMax {
			return s.b, fmt.Errorf("ctr: delta[%d]=%d exceeds %d bits", i, d, DeltaBits)
		}
		s.put(RefBits+i*DeltaBits, DeltaBits, uint64(d))
	}
	return s.b, nil
}

// UnpackDelta deserializes a 7-bit delta metadata block.
func UnpackDelta(blk [MetadataBlockBytes]byte) (ref uint64, deltas [GroupBlocks]uint16, err error) {
	s := bitString{b: blk}
	ref = s.get(0, RefBits)
	for i := range deltas {
		deltas[i] = uint16(s.get(RefBits+i*DeltaBits, DeltaBits))
	}
	if pad := s.get(RefBits+GroupBlocks*DeltaBits, 8); pad != 0 {
		return 0, deltas, ErrCorruptMetadata
	}
	return ref, deltas, nil
}

// Dual-length layout offsets.
const (
	dualDeltaOff  = RefBits
	dualExtInUse  = dualDeltaOff + GroupBlocks*ShortDeltaBits // bit 440
	dualExtGroup  = dualExtInUse + 1                          // bits 441..442
	dualExtFields = dualExtGroup + 2                          // bits 443..506
	dualSpare     = dualExtFields + DeltasPerGroup*ExtensionBits
)

// PackDualLength serializes a dual-length group. extended is the delta-group
// index holding the reserve bits, or -1. Deltas in the extended group may use
// 10 bits; all others must fit in 6.
func PackDualLength(ref uint64, deltas *[GroupBlocks]uint16, extended int8) ([MetadataBlockBytes]byte, error) {
	var s bitString
	if ref >= 1<<RefBits {
		return s.b, fmt.Errorf("ctr: reference %#x exceeds %d bits", ref, RefBits)
	}
	if extended < -1 || extended >= DeltaGroups {
		return s.b, fmt.Errorf("ctr: extended group %d out of range", extended)
	}
	s.put(0, RefBits, ref)
	for i, d := range deltas {
		lim := uint16(shortMax)
		if extended == int8(i/DeltasPerGroup) {
			lim = longMax
		}
		if d > lim {
			return s.b, fmt.Errorf("ctr: delta[%d]=%d exceeds limit %d", i, d, lim)
		}
		// Low 6 bits in the dense delta array.
		s.put(dualDeltaOff+i*ShortDeltaBits, ShortDeltaBits, uint64(d&shortMax))
		// High 4 bits in the extension nibble when this group owns it.
		if extended == int8(i/DeltasPerGroup) {
			s.put(dualExtFields+(i%DeltasPerGroup)*ExtensionBits, ExtensionBits,
				uint64(d>>ShortDeltaBits))
		}
	}
	if extended >= 0 {
		s.put(dualExtInUse, 1, 1)
		s.put(dualExtGroup, 2, uint64(extended))
	}
	return s.b, nil
}

// UnpackDualLength deserializes a dual-length metadata block, reassembling
// extended deltas by concatenating their 4-bit extension with the 6-bit base
// (the concatenation the paper's 2-cycle decode unit performs).
func UnpackDualLength(blk [MetadataBlockBytes]byte) (ref uint64, deltas [GroupBlocks]uint16, extended int8, err error) {
	s := bitString{b: blk}
	ref = s.get(0, RefBits)
	extended = -1
	if s.get(dualExtInUse, 1) == 1 {
		extended = int8(s.get(dualExtGroup, 2))
	}
	for i := range deltas {
		d := uint16(s.get(dualDeltaOff+i*ShortDeltaBits, ShortDeltaBits))
		if extended == int8(i/DeltasPerGroup) {
			hi := uint16(s.get(dualExtFields+(i%DeltasPerGroup)*ExtensionBits, ExtensionBits))
			d |= hi << ShortDeltaBits
		}
		deltas[i] = d
	}
	if extended < 0 {
		// Group-index and extension fields must be zero when the
		// reserve is unassigned (canonical encoding).
		if s.get(dualExtGroup, 2) != 0 {
			return 0, deltas, -1, ErrCorruptMetadata
		}
		for i := 0; i < DeltasPerGroup; i++ {
			if s.get(dualExtFields+i*ExtensionBits, ExtensionBits) != 0 {
				return 0, deltas, -1, ErrCorruptMetadata
			}
		}
	}
	if s.get(dualSpare, MetadataBlockBytes*8-dualSpare) != 0 {
		return 0, deltas, -1, ErrCorruptMetadata
	}
	return ref, deltas, extended, nil
}

// PackMonolithic serializes 8 consecutive 64-bit counters into one metadata
// block (the SGX-style layout: one counter per aligned 8-byte slot).
func PackMonolithic(counters *[CountersPerMetadataBlock]uint64) [MetadataBlockBytes]byte {
	var b [MetadataBlockBytes]byte
	for i, c := range counters {
		binary.LittleEndian.PutUint64(b[i*8:], c)
	}
	return b
}

// UnpackMonolithic deserializes a monolithic counter metadata block.
func UnpackMonolithic(blk [MetadataBlockBytes]byte) (counters [CountersPerMetadataBlock]uint64) {
	for i := range counters {
		counters[i] = binary.LittleEndian.Uint64(blk[i*8:])
	}
	return counters
}

// DecodeCounter extracts block index i's full counter from a packed delta-7
// metadata block: the bit-extraction + addition the paper's decode unit does
// in 2 cycles.
func DecodeCounter(blk [MetadataBlockBytes]byte, i int) (uint64, error) {
	if i < 0 || i >= GroupBlocks {
		return 0, fmt.Errorf("ctr: block index %d out of group range", i)
	}
	s := bitString{b: blk}
	ref := s.get(0, RefBits)
	d := s.get(RefBits+i*DeltaBits, DeltaBits)
	return ref + d, nil
}

// DecodeDualCounter extracts block index i's full counter from a packed
// dual-length metadata block.
func DecodeDualCounter(blk [MetadataBlockBytes]byte, i int) (uint64, error) {
	if i < 0 || i >= GroupBlocks {
		return 0, fmt.Errorf("ctr: block index %d out of group range", i)
	}
	s := bitString{b: blk}
	ref := s.get(0, RefBits)
	d := s.get(dualDeltaOff+i*ShortDeltaBits, ShortDeltaBits)
	if s.get(dualExtInUse, 1) == 1 && s.get(dualExtGroup, 2) == uint64(i/DeltasPerGroup) {
		hi := s.get(dualExtFields+(i%DeltasPerGroup)*ExtensionBits, ExtensionBits)
		d |= hi << ShortDeltaBits
	}
	return ref + d, nil
}
