package ctr

// MonolithicScheme stores a full 56-bit counter per 64-byte block, as Intel
// SGX does. It never re-encrypts (a 56-bit counter cannot realistically
// overflow), at the cost of ~11% counter storage overhead: the reference
// point the paper's Figure 1 starts from.
type MonolithicScheme struct {
	counters map[uint64]uint64
	stats    Stats
}

// CountersPerMetadataBlock is how many monolithic counters fit in one
// 64-byte metadata block. Counters occupy aligned 64-bit slots (56-bit value
// in a 64-bit field), matching SGX's layout.
const CountersPerMetadataBlock = MetadataBlockBytes / 8

// NewMonolithic creates a monolithic counter store with all counters zero.
func NewMonolithic() *MonolithicScheme {
	return &MonolithicScheme{counters: make(map[uint64]uint64)}
}

// Name implements Scheme.
func (s *MonolithicScheme) Name() string { return "monolithic-56" }

// GroupSize implements Scheme: every block is independent.
func (s *MonolithicScheme) GroupSize() int { return 1 }

// Counter implements Scheme.
func (s *MonolithicScheme) Counter(block uint64) uint64 { return s.counters[block] }

// Touch implements Scheme.
func (s *MonolithicScheme) Touch(block uint64) WriteOutcome {
	s.counters[block]++
	s.stats.Writes++
	return WriteOutcome{Counter: s.counters[block]}
}

// MetadataBits implements Scheme: a 64-bit slot per block.
func (s *MonolithicScheme) MetadataBits() float64 { return 64 }

// MetadataBlock implements Scheme: 8 counters per metadata block.
func (s *MonolithicScheme) MetadataBlock(block uint64) uint64 {
	return block / CountersPerMetadataBlock
}

// MetadataBlocks implements Scheme.
func (s *MonolithicScheme) MetadataBlocks(n uint64) uint64 {
	return (n + CountersPerMetadataBlock - 1) / CountersPerMetadataBlock
}

// Stats implements Scheme.
func (s *MonolithicScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme; the monolithic scheme never re-encrypts,
// so the hook is accepted and never called.
func (s *MonolithicScheme) OnReencrypt(ReencryptFunc) {}
