package ctr

import (
	"math/rand"
	"testing"
)

func allSchemes() []Scheme {
	return []Scheme{NewMonolithic(), NewSplit(), NewDelta(), NewDualLength()}
}

func TestNewScheme(t *testing.T) {
	for _, k := range []Kind{Monolithic, Split, Delta, DualLength} {
		s, err := NewScheme(k)
		if err != nil {
			t.Fatalf("NewScheme(%v): %v", k, err)
		}
		if s.Name() != k.String() {
			t.Errorf("Name %q != Kind %q", s.Name(), k)
		}
	}
	if _, err := NewScheme(Kind(99)); err == nil {
		t.Fatal("unknown kind should fail")
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("Kind(99).String() = %q", got)
	}
}

func TestCountersStartAtZero(t *testing.T) {
	for _, s := range allSchemes() {
		for _, b := range []uint64{0, 1, 63, 64, 1000} {
			if c := s.Counter(b); c != 0 {
				t.Errorf("%s: fresh counter of block %d = %d", s.Name(), b, c)
			}
		}
	}
}

// TestCounterStrictlyIncreasesOnWrite checks the nonce-freshness invariant:
// each write to a block must advance that block's counter.
func TestCounterStrictlyIncreasesOnWrite(t *testing.T) {
	for _, s := range allSchemes() {
		rng := rand.New(rand.NewSource(1))
		last := make(map[uint64]uint64)
		for i := 0; i < 50000; i++ {
			b := uint64(rng.Intn(256)) // 4 groups' worth of blocks
			out := s.Touch(b)
			if prev, seen := last[b]; seen && out.Counter <= prev {
				t.Fatalf("%s: block %d counter went %d -> %d", s.Name(), b, prev, out.Counter)
			}
			last[b] = out.Counter
			if got := s.Counter(b); got != out.Counter {
				t.Fatalf("%s: Counter(%d)=%d after Touch returned %d", s.Name(), b, got, out.Counter)
			}
		}
	}
}

// TestNoNonceReuseAcrossGroupEvents hammers one group and asserts that no
// (block, counter) pair is ever used twice for an encryption: write counters
// and re-encryption counters all land on fresh values per block.
func TestNoNonceReuseAcrossGroupEvents(t *testing.T) {
	for _, s := range allSchemes() {
		used := make(map[[2]uint64]bool)
		record := func(block, counter uint64) {
			k := [2]uint64{block, counter}
			if used[k] {
				t.Fatalf("%s: nonce reuse on block %d counter %d", s.Name(), block, counter)
			}
			used[k] = true
		}
		s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
			for j := range old {
				record(start+uint64(j), newCounter)
			}
		})
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 30000; i++ {
			b := uint64(rng.Intn(GroupBlocks)) // a single group
			out := s.Touch(b)
			if !out.Reencrypted {
				record(b, out.Counter)
			}
			// On re-encryption the hook already recorded the shared
			// counter for every block, including the written one.
		}
	}
}

func TestReencryptHookCounters(t *testing.T) {
	// The hook must see pre-re-encryption counters and a strictly larger
	// shared new counter.
	for _, s := range []Scheme{NewSplit(), NewDelta(), NewDualLength()} {
		var calls int
		s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
			calls++
			if start%GroupBlocks != 0 {
				t.Fatalf("%s: group start %d not aligned", s.Name(), start)
			}
			if len(old) != GroupBlocks {
				t.Fatalf("%s: old counters length %d", s.Name(), len(old))
			}
			for j, c := range old {
				if c >= newCounter {
					t.Fatalf("%s: old[%d]=%d >= new %d", s.Name(), j, c, newCounter)
				}
			}
		})
		// Hammer block 0 only: delta/dual Δmin stays 0 (other blocks
		// never written), so overflow must re-encrypt.
		for i := 0; i < 5000; i++ {
			s.Touch(0)
		}
		if calls == 0 {
			t.Fatalf("%s: no re-encryption after 5000 writes to one block", s.Name())
		}
		if s.Stats().Reencryptions != uint64(calls) {
			t.Fatalf("%s: stats/hook mismatch", s.Name())
		}
	}
}

func TestMonolithicNeverReencrypts(t *testing.T) {
	s := NewMonolithic()
	s.OnReencrypt(func(uint64, []uint64, uint64) {
		t.Fatal("monolithic scheme invoked re-encryption")
	})
	for i := 0; i < 100000; i++ {
		s.Touch(5)
	}
	if s.Counter(5) != 100000 {
		t.Fatalf("counter = %d, want 100000", s.Counter(5))
	}
	if st := s.Stats(); st.Reencryptions != 0 || st.Writes != 100000 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSplitReencryptsEvery127Writes(t *testing.T) {
	// A 7-bit minor overflows after 127 increments; write 128 times.
	s := NewSplit()
	for i := 0; i < 127; i++ {
		if out := s.Touch(0); out.Reencrypted {
			t.Fatalf("premature re-encryption at write %d", i)
		}
	}
	if out := s.Touch(0); !out.Reencrypted {
		t.Fatal("write 128 should overflow the 7-bit minor")
	}
	if s.Stats().Reencryptions != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestSplitCounterConcatenation(t *testing.T) {
	s := NewSplit()
	s.Touch(3)
	s.Touch(3)
	if c := s.Counter(3); c != 2 {
		t.Fatalf("counter = %d, want 2 (major 0, minor 2)", c)
	}
	// Force a group re-encryption via block 0 and check block 3's counter
	// jumped to major 1, minor 0.
	for i := 0; i < 128; i++ {
		s.Touch(0)
	}
	if c := s.Counter(3); c != 1<<MinorBits {
		t.Fatalf("after group re-encrypt, counter = %d, want %d", c, 1<<MinorBits)
	}
}

func TestDeltaResetOnConvergence(t *testing.T) {
	// Sequential sweeps: all deltas converge to the same value, which must
	// trigger resets and prevent re-encryption entirely (Figure 5b).
	s := NewDelta()
	for sweep := 0; sweep < 1000; sweep++ {
		for b := uint64(0); b < GroupBlocks; b++ {
			out := s.Touch(b)
			if b == GroupBlocks-1 && !out.Reset {
				t.Fatalf("sweep %d: last write should trigger reset", sweep)
			}
			if out.Reencrypted {
				t.Fatalf("sweep %d: sequential writes must never re-encrypt", sweep)
			}
		}
	}
	st := s.Stats()
	if st.Resets != 1000 || st.Reencryptions != 0 {
		t.Fatalf("stats %+v", st)
	}
	// Counters must equal the number of writes per block.
	for b := uint64(0); b < GroupBlocks; b++ {
		if c := s.Counter(b); c != 1000 {
			t.Fatalf("block %d counter = %d, want 1000", b, c)
		}
	}
}

func TestDeltaReencode(t *testing.T) {
	// Write every block once (deltas all 1 would reset; avoid by writing
	// block 0 twice first so deltas are unequal).
	s := NewDelta()
	s.Touch(0) // delta[0]=1
	s.Touch(0) // delta[0]=2
	for b := uint64(1); b < GroupBlocks; b++ {
		s.Touch(b) // deltas: [2,1,1,...,1]
	}
	// Now hammer block 0 to the 7-bit limit; Δmin = 1 > 0, so the first
	// overflow must re-encode, not re-encrypt.
	var sawReencode bool
	for i := 0; i < 126; i++ {
		out := s.Touch(0)
		if out.Reencrypted {
			t.Fatal("re-encryption despite Δmin > 0")
		}
		if out.Reencoded {
			sawReencode = true
		}
	}
	if !sawReencode {
		t.Fatal("expected a re-encode")
	}
	if s.Stats().Reencodes == 0 {
		t.Fatal("stats missed the re-encode")
	}
}

func TestDeltaReencodePreservesCounters(t *testing.T) {
	s := NewDelta()
	// Build unequal deltas with Δmin > 0.
	for b := uint64(0); b < GroupBlocks; b++ {
		s.Touch(b)
	}
	// All deltas now reset to 0 (they converged). Build again unevenly.
	s.Touch(0)
	s.Touch(0)
	for b := uint64(1); b < GroupBlocks; b++ {
		s.Touch(b)
	}
	want := make([]uint64, GroupBlocks)
	for b := range want {
		want[b] = s.Counter(uint64(b))
	}
	// Push block 0 to overflow → re-encode. Every other block's counter
	// must be unchanged.
	for s.Stats().Reencodes == 0 {
		s.Touch(0)
		want[0]++
	}
	for b := 1; b < GroupBlocks; b++ {
		if got := s.Counter(uint64(b)); got != want[b] {
			t.Fatalf("re-encode changed block %d counter %d -> %d", b, want[b], got)
		}
	}
	if got := s.Counter(0); got != want[0] {
		t.Fatalf("block 0 counter = %d, want %d", got, want[0])
	}
}

func TestDeltaReencryptWhenMinZero(t *testing.T) {
	// Only block 0 is ever written: Δmin stays 0, so overflow at 127
	// writes must re-encrypt with the overflowing counter as reference.
	s := NewDelta()
	var reenc int
	s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
		reenc++
		if newCounter != 128 {
			t.Fatalf("new counter = %d, want 128", newCounter)
		}
		if old[0] != 127 {
			t.Fatalf("old[0] = %d, want 127", old[0])
		}
		if old[1] != 0 {
			t.Fatalf("old[1] = %d, want 0", old[1])
		}
	})
	for i := 0; i < 127; i++ {
		if out := s.Touch(0); out.Reencrypted {
			t.Fatalf("premature re-encryption at write %d", i)
		}
	}
	out := s.Touch(0)
	if !out.Reencrypted || out.Counter != 128 {
		t.Fatalf("write 128: %+v", out)
	}
	if reenc != 1 {
		t.Fatalf("hook calls = %d", reenc)
	}
	// Untouched blocks jumped to the new reference.
	if c := s.Counter(1); c != 128 {
		t.Fatalf("block 1 counter = %d, want 128", c)
	}
}

func TestDeltaBeatsSplitOnSequentialWrites(t *testing.T) {
	// The headline property behind Table 2: spatially local writes cause
	// split-counter re-encryptions but zero delta re-encryptions.
	split, delta := NewSplit(), NewDelta()
	for sweep := 0; sweep < 200; sweep++ {
		for b := uint64(0); b < GroupBlocks; b++ {
			split.Touch(b)
			delta.Touch(b)
		}
	}
	if split.Stats().Reencryptions == 0 {
		t.Fatal("split counters should re-encrypt under 200 sweeps")
	}
	if delta.Stats().Reencryptions != 0 {
		t.Fatalf("delta re-encrypted %d times on sequential writes", delta.Stats().Reencryptions)
	}
}

func TestDualLengthExtension(t *testing.T) {
	s := NewDualLength()
	// 63 writes fill the 6-bit delta; the 64th must extend, not re-encrypt.
	for i := 0; i < shortMax; i++ {
		out := s.Touch(0)
		if out.Extended || out.Reencrypted {
			t.Fatalf("write %d: %+v", i, out)
		}
	}
	out := s.Touch(0)
	if !out.Extended || out.Reencrypted {
		t.Fatalf("write 64 should extend: %+v", out)
	}
	if s.Stats().Extensions != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
	// With 10-bit room, writes continue to 1023 before trouble.
	for i := shortMax + 1; i < longMax; i++ {
		out := s.Touch(0)
		if out.Reencrypted || out.Extended {
			t.Fatalf("write %d: %+v", i, out)
		}
	}
	out = s.Touch(0)
	if !out.Reencrypted {
		t.Fatal("10-bit overflow with Δmin=0 must re-encrypt")
	}
	if got := s.Counter(0); got != longMax+1 {
		t.Fatalf("counter = %d, want %d", got, longMax+1)
	}
}

func TestDualLengthSecondGroupOverflowReencrypts(t *testing.T) {
	// Fill block 0 (delta-group 0) past 6 bits -> extension assigned.
	// Then fill block 16 (delta-group 1) past 6 bits: reserve is spent and
	// Δmin = 0, so re-encryption is forced. This is the facesim pathology
	// the paper describes for Table 2.
	s := NewDualLength()
	for i := 0; i <= shortMax; i++ {
		s.Touch(0)
	}
	if s.Stats().Extensions != 1 {
		t.Fatal("extension not assigned")
	}
	var reencrypted bool
	for i := 0; i <= shortMax; i++ {
		if out := s.Touch(16); out.Reencrypted {
			reencrypted = true
		}
	}
	if !reencrypted {
		t.Fatal("second delta-group overflow should re-encrypt")
	}
}

func TestDualLengthResetFreesReserve(t *testing.T) {
	s := NewDualLength()
	// Assign the reserve to delta-group 0 via block 0 (64 writes).
	for i := 0; i <= shortMax; i++ {
		s.Touch(0)
	}
	// Bring every other block to delta 63. Block 0 stays at 64, so no
	// all-equal reset can fire yet.
	for b := uint64(1); b < GroupBlocks; b++ {
		for i := 0; i < shortMax; i++ {
			s.Touch(b)
		}
	}
	// One more write to block 16 overflows its 6-bit slot; Δmin is 63, so
	// it re-encodes: deltas become [1, 0, ..., 0], then delta[16] = 1.
	if out := s.Touch(16); !out.Reencoded || out.Reencrypted {
		t.Fatalf("expected re-encode, got %+v", out)
	}
	// Touch every block except 0 and 16 once: all deltas converge to 1 and
	// the reset must fire, freeing the reserve.
	for b := uint64(1); b < GroupBlocks; b++ {
		if b == 16 {
			continue
		}
		s.Touch(b)
	}
	if s.Stats().Resets == 0 {
		t.Fatal("expected a reset")
	}
	// After the reset, a fresh overflow in delta-group 1 must get the
	// reserve instead of re-encrypting.
	before := s.Stats().Extensions
	for i := 0; i <= shortMax; i++ {
		if out := s.Touch(20); out.Reencrypted {
			t.Fatal("re-encrypted despite freed reserve")
		}
	}
	if s.Stats().Extensions != before+1 {
		t.Fatal("reset did not free the reserve")
	}
}

func TestMetadataGeometry(t *testing.T) {
	cases := []struct {
		s            Scheme
		bits         float64
		groupSize    int
		metaOf70     uint64
		blocksFor100 uint64
	}{
		{NewMonolithic(), 64, 1, 8, 13},
		{NewSplit(), 8, GroupBlocks, 1, 2},
		{NewDelta(), 7.875, GroupBlocks, 1, 2},
		{NewDualLength(), 8, GroupBlocks, 1, 2},
	}
	for _, c := range cases {
		if got := c.s.MetadataBits(); got != c.bits {
			t.Errorf("%s MetadataBits = %v, want %v", c.s.Name(), got, c.bits)
		}
		if got := c.s.GroupSize(); got != c.groupSize {
			t.Errorf("%s GroupSize = %d, want %d", c.s.Name(), got, c.groupSize)
		}
		if got := c.s.MetadataBlock(70); got != c.metaOf70 {
			t.Errorf("%s MetadataBlock(70) = %d, want %d", c.s.Name(), got, c.metaOf70)
		}
		if got := c.s.MetadataBlocks(100); got != c.blocksFor100 {
			t.Errorf("%s MetadataBlocks(100) = %d, want %d", c.s.Name(), got, c.blocksFor100)
		}
	}
}

func TestStatsWritesCount(t *testing.T) {
	for _, s := range allSchemes() {
		for i := 0; i < 1234; i++ {
			s.Touch(uint64(i % 100))
		}
		if w := s.Stats().Writes; w != 1234 {
			t.Errorf("%s: writes = %d", s.Name(), w)
		}
	}
}

func BenchmarkTouchDelta(b *testing.B) {
	s := NewDelta()
	for i := 0; i < b.N; i++ {
		s.Touch(uint64(i) % 4096)
	}
}

func BenchmarkTouchSplit(b *testing.B) {
	s := NewSplit()
	for i := 0; i < b.N; i++ {
		s.Touch(uint64(i) % 4096)
	}
}

func BenchmarkTouchDualLength(b *testing.B) {
	s := NewDualLength()
	for i := 0; i < b.N; i++ {
		s.Touch(uint64(i) % 4096)
	}
}
