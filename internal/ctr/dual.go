package ctr

// DualLengthScheme implements the dual-length delta encoding of §4.3 and
// Figure 6. Deltas start at 6 bits; the 72 bits saved relative to 7-bit
// deltas are held in reserve. The 64 deltas form four delta-groups of 16.
// The first time a delta overflows its 6-bit storage, the reserve is
// assigned to that delta-group: each of its 16 deltas gains 4 bits (6 → 10).
// The reserve can be assigned only once; a later overflow in any other
// group — or of a 10-bit extended delta — falls back to the re-encode /
// re-encrypt machinery shared with the plain delta scheme.
//
// The reserve assignment is cleared whenever all deltas return to zero
// (after a reset or a re-encryption), making the bits available again.
//
// Layout check (Figure 6): 56-bit reference + 64×6-bit deltas = 440 bits,
// leaving 72 reserved bits: 64 extension bits + 2 group-index bits +
// 1 in-use bit + 5 spare = 512 bits total, one metadata block.
type DualLengthScheme struct {
	groups map[uint64]*dualGroup
	stats  Stats
	hook   ReencryptFunc
}

// ShortDeltaBits is the default dual-length delta width.
const ShortDeltaBits = 6

// ExtensionBits is the per-delta widening granted to the extended group.
const ExtensionBits = 4

// DeltaGroups is the number of logical delta-groups per block-group.
const DeltaGroups = 4

// DeltasPerGroup is the number of deltas per delta-group.
const DeltasPerGroup = GroupBlocks / DeltaGroups

// shortMax is the largest 6-bit delta.
const shortMax = (1 << ShortDeltaBits) - 1

// longMax is the largest extended (6+4 = 10-bit) delta.
const longMax = (1 << (ShortDeltaBits + ExtensionBits)) - 1

type dualGroup struct {
	ref      uint64
	deltas   [GroupBlocks]uint16
	extended int8 // delta-group index holding the reserve, or -1
}

// NewDualLength creates a dual-length delta counter store with all counters
// zero and the reserve unassigned.
func NewDualLength() *DualLengthScheme {
	return &DualLengthScheme{groups: make(map[uint64]*dualGroup)}
}

// Name implements Scheme.
func (s *DualLengthScheme) Name() string { return "dual-length" }

// GroupSize implements Scheme.
func (s *DualLengthScheme) GroupSize() int { return GroupBlocks }

func (s *DualLengthScheme) group(block uint64) (*dualGroup, uint64, int) {
	gid := block / GroupBlocks
	g := s.groups[gid]
	if g == nil {
		g = &dualGroup{extended: -1}
		s.groups[gid] = g
	}
	return g, gid, int(block % GroupBlocks)
}

// limit returns the current capacity of delta slot i.
func (g *dualGroup) limit(i int) uint16 {
	if g.extended == int8(i/DeltasPerGroup) {
		return longMax
	}
	return shortMax
}

// Counter implements Scheme.
func (s *DualLengthScheme) Counter(block uint64) uint64 {
	g, _, i := s.group(block)
	return g.ref + uint64(g.deltas[i])
}

// Touch implements Scheme.
func (s *DualLengthScheme) Touch(block uint64) WriteOutcome {
	g, gid, i := s.group(block)
	s.stats.Writes++
	var out WriteOutcome

	if g.deltas[i] == g.limit(i) {
		switch {
		case g.extended < 0:
			// First overflow in the block-group: hand the reserve
			// bits to this delta-group (Figure 6).
			g.extended = int8(i / DeltasPerGroup)
			s.stats.Extensions++
			out.Extended = true
		default:
			// Reserve already spent (or this is the extended group
			// hitting 10 bits): re-encode if possible, else
			// re-encrypt.
			if dmin := g.minDelta(); dmin > 0 {
				g.reencode(dmin)
				s.stats.Reencodes++
				out.Reencoded = true
			} else {
				// Unlike the uniform-width delta scheme, the
				// overflowing short delta need not be the group
				// maximum — an extended 10-bit delta can exceed
				// it. Re-encrypt under max+1 to keep every nonce
				// fresh.
				newRef := g.ref + uint64(g.maxDelta()) + 1
				s.reencrypt(gid, g, newRef)
				out.Reencrypted = true
				out.Counter = newRef
				return out
			}
		}
	}

	g.deltas[i]++
	out.Counter = g.ref + uint64(g.deltas[i])

	if d := g.allEqual(); d > 0 {
		g.ref += uint64(d)
		clear(g.deltas[:])
		g.extended = -1 // all-zero deltas free the reserve
		s.stats.Resets++
		out.Reset = true
	}
	return out
}

func (g *dualGroup) minDelta() uint16 {
	m := g.deltas[0]
	for _, d := range g.deltas[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

func (g *dualGroup) maxDelta() uint16 {
	m := g.deltas[0]
	for _, d := range g.deltas[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

func (g *dualGroup) allEqual() uint16 {
	d := g.deltas[0]
	if d == 0 {
		return 0
	}
	for _, v := range g.deltas[1:] {
		if v != d {
			return 0
		}
	}
	return d
}

func (g *dualGroup) reencode(dmin uint16) {
	g.ref += uint64(dmin)
	for j := range g.deltas {
		g.deltas[j] -= dmin
	}
}

func (s *DualLengthScheme) reencrypt(gid uint64, g *dualGroup, newRef uint64) {
	if s.hook != nil {
		old := make([]uint64, GroupBlocks)
		for j := range old {
			old[j] = g.ref + uint64(g.deltas[j])
		}
		s.hook(gid*GroupBlocks, old, newRef)
	}
	g.ref = newRef
	clear(g.deltas[:])
	g.extended = -1
	s.stats.Reencryptions++
	s.stats.ReencryptedBlocks += GroupBlocks
}

// MetadataBits implements Scheme: the full 512-bit metadata block is
// committed (reference + short deltas + reserve), i.e. 8 bits per block.
func (s *DualLengthScheme) MetadataBits() float64 {
	return float64(MetadataBlockBytes*8) / GroupBlocks
}

// MetadataBlock implements Scheme.
func (s *DualLengthScheme) MetadataBlock(block uint64) uint64 { return block / GroupBlocks }

// MetadataBlocks implements Scheme.
func (s *DualLengthScheme) MetadataBlocks(n uint64) uint64 {
	return (n + GroupBlocks - 1) / GroupBlocks
}

// Stats implements Scheme.
func (s *DualLengthScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme.
func (s *DualLengthScheme) OnReencrypt(f ReencryptFunc) { s.hook = f }
