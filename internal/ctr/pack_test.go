package ctr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPackSplitRoundTrip(t *testing.T) {
	f := func(major uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var minors [GroupBlocks]uint16
		for i := range minors {
			minors[i] = uint16(rng.Intn(minorMax + 1))
		}
		blk := PackSplit(major, &minors)
		gotMajor, gotMinors := UnpackSplit(blk)
		return gotMajor == major && gotMinors == minors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackDeltaRoundTrip(t *testing.T) {
	f := func(refSeed uint64, seed int64) bool {
		ref := refSeed & ((1 << RefBits) - 1)
		rng := rand.New(rand.NewSource(seed))
		var deltas [GroupBlocks]uint16
		for i := range deltas {
			deltas[i] = uint16(rng.Intn(deltaMax + 1))
		}
		blk, err := PackDelta(ref, &deltas)
		if err != nil {
			return false
		}
		gotRef, gotDeltas, err := UnpackDelta(blk)
		return err == nil && gotRef == ref && gotDeltas == deltas
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPackDeltaRejectsOutOfRange(t *testing.T) {
	var deltas [GroupBlocks]uint16
	if _, err := PackDelta(1<<RefBits, &deltas); err == nil {
		t.Fatal("57-bit reference should fail")
	}
	deltas[3] = deltaMax + 1
	if _, err := PackDelta(0, &deltas); err == nil {
		t.Fatal("8-bit delta should fail")
	}
}

func TestUnpackDeltaDetectsPadCorruption(t *testing.T) {
	var deltas [GroupBlocks]uint16
	blk, err := PackDelta(42, &deltas)
	if err != nil {
		t.Fatal(err)
	}
	blk[63] ^= 0x80 // bit 511 lives in the 8-bit pad
	if _, _, err := UnpackDelta(blk); err != ErrCorruptMetadata {
		t.Fatalf("want ErrCorruptMetadata, got %v", err)
	}
}

func TestPackDualLengthRoundTrip(t *testing.T) {
	f := func(refSeed uint64, seed int64, extSel uint8) bool {
		ref := refSeed & ((1 << RefBits) - 1)
		extended := int8(extSel%5) - 1 // -1..3
		rng := rand.New(rand.NewSource(seed))
		var deltas [GroupBlocks]uint16
		for i := range deltas {
			if extended == int8(i/DeltasPerGroup) {
				deltas[i] = uint16(rng.Intn(longMax + 1))
			} else {
				deltas[i] = uint16(rng.Intn(shortMax + 1))
			}
		}
		blk, err := PackDualLength(ref, &deltas, extended)
		if err != nil {
			return false
		}
		gotRef, gotDeltas, gotExt, err := UnpackDualLength(blk)
		return err == nil && gotRef == ref && gotDeltas == deltas && gotExt == extended
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPackDualLengthRejectsOutOfRange(t *testing.T) {
	var deltas [GroupBlocks]uint16
	if _, err := PackDualLength(1<<RefBits, &deltas, -1); err == nil {
		t.Fatal("57-bit reference should fail")
	}
	if _, err := PackDualLength(0, &deltas, 4); err == nil {
		t.Fatal("extended group 4 should fail")
	}
	if _, err := PackDualLength(0, &deltas, -2); err == nil {
		t.Fatal("extended group -2 should fail")
	}
	deltas[0] = shortMax + 1
	if _, err := PackDualLength(0, &deltas, -1); err == nil {
		t.Fatal("7-bit delta without extension should fail")
	}
	// The same value packs fine when the delta's group holds the reserve.
	if _, err := PackDualLength(0, &deltas, 0); err != nil {
		t.Fatalf("extended delta rejected: %v", err)
	}
	deltas[0] = longMax + 1
	if _, err := PackDualLength(0, &deltas, 0); err == nil {
		t.Fatal("11-bit delta should fail even with extension")
	}
}

func TestUnpackDualLengthDetectsSpareCorruption(t *testing.T) {
	var deltas [GroupBlocks]uint16
	blk, err := PackDualLength(7, &deltas, -1)
	if err != nil {
		t.Fatal(err)
	}
	blk[63] ^= 0x80 // bit 511 is spare
	if _, _, _, err := UnpackDualLength(blk); err != ErrCorruptMetadata {
		t.Fatalf("want ErrCorruptMetadata, got %v", err)
	}
	// Nonzero extension nibble with reserve unassigned is also corrupt.
	blk2, err := PackDualLength(7, &deltas, -1)
	if err != nil {
		t.Fatal(err)
	}
	blk2[dualExtFields/8] |= 1 << uint(dualExtFields%8)
	if _, _, _, err := UnpackDualLength(blk2); err != ErrCorruptMetadata {
		t.Fatalf("want ErrCorruptMetadata, got %v", err)
	}
}

func TestPackMonolithicRoundTrip(t *testing.T) {
	f := func(a, b, c, d, e, f2, g, h uint64) bool {
		in := [CountersPerMetadataBlock]uint64{a, b, c, d, e, f2, g, h}
		return UnpackMonolithic(PackMonolithic(&in)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCounterMatchesScheme(t *testing.T) {
	// Drive a DeltaScheme with random writes; the hardware decode path
	// over the packed image must agree with the scheme's Counter().
	s := NewDelta()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		s.Touch(uint64(rng.Intn(GroupBlocks)))
	}
	blk := s.PackMetadata(0)
	for i := 0; i < GroupBlocks; i++ {
		got, err := DecodeCounter(blk, i)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.Counter(uint64(i)); got != want {
			t.Fatalf("block %d: decode %d, scheme %d", i, got, want)
		}
	}
}

func TestDecodeDualCounterMatchesScheme(t *testing.T) {
	s := NewDualLength()
	rng := rand.New(rand.NewSource(10))
	// Skewed writes to exercise the extension path.
	for i := 0; i < 20000; i++ {
		b := uint64(rng.Intn(GroupBlocks))
		if rng.Intn(3) != 0 {
			b = uint64(rng.Intn(4)) // hot blocks in delta-group 0
		}
		s.Touch(b)
	}
	blk := s.PackMetadata(0)
	for i := 0; i < GroupBlocks; i++ {
		got, err := DecodeDualCounter(blk, i)
		if err != nil {
			t.Fatal(err)
		}
		if want := s.Counter(uint64(i)); got != want {
			t.Fatalf("block %d: decode %d, scheme %d", i, got, want)
		}
	}
}

func TestDecodeCounterBounds(t *testing.T) {
	var blk [MetadataBlockBytes]byte
	if _, err := DecodeCounter(blk, -1); err == nil {
		t.Fatal("negative index should fail")
	}
	if _, err := DecodeCounter(blk, GroupBlocks); err == nil {
		t.Fatal("index 64 should fail")
	}
	if _, err := DecodeDualCounter(blk, GroupBlocks); err == nil {
		t.Fatal("index 64 should fail")
	}
}

func TestPackMetadataFreshBlocks(t *testing.T) {
	// Metadata images of never-written groups must be all-zero except for
	// structural bits (which are zero for all four layouts).
	var zero [MetadataBlockBytes]byte
	for _, s := range []MetadataPacker{NewMonolithic(), NewSplit(), NewDelta(), NewDualLength()} {
		if s.PackMetadata(12345) != zero {
			t.Errorf("%T: fresh metadata block not zero", s)
		}
	}
}

func TestPackMetadataChangesOnWrite(t *testing.T) {
	for _, k := range []Kind{Monolithic, Split, Delta, DualLength} {
		s, _ := NewScheme(k)
		p := s.(MetadataPacker)
		before := p.PackMetadata(0)
		s.Touch(0)
		if p.PackMetadata(0) == before {
			t.Errorf("%s: metadata image unchanged by a write", s.Name())
		}
	}
}

func TestSplitPackMetadataMatchesState(t *testing.T) {
	s := NewSplit()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		s.Touch(uint64(rng.Intn(GroupBlocks)))
	}
	major, minors := UnpackSplit(s.PackMetadata(0))
	for i := 0; i < GroupBlocks; i++ {
		want := s.Counter(uint64(i))
		got := major<<MinorBits | uint64(minors[i])
		if got != want {
			t.Fatalf("block %d: packed %d, scheme %d", i, got, want)
		}
	}
}

func BenchmarkPackDelta(b *testing.B) {
	s := NewDelta()
	for i := 0; i < 5000; i++ {
		s.Touch(uint64(i % GroupBlocks))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.PackMetadata(0)
	}
}

func BenchmarkDecodeCounter(b *testing.B) {
	s := NewDelta()
	for i := 0; i < 5000; i++ {
		s.Touch(uint64(i % GroupBlocks))
	}
	blk := s.PackMetadata(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeCounter(blk, i%GroupBlocks); err != nil {
			b.Fatal(err)
		}
	}
}
