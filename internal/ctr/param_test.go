package ctr

import (
	"math/rand"
	"testing"
)

func TestNewDeltaParamValidation(t *testing.T) {
	bad := []struct {
		w uint
		g int
	}{
		{1, 64},   // width too small
		{16, 16},  // width too large
		{7, 1},    // group too small
		{8, 64},   // 56 + 512 = 568 bits > 512
		{7, 66},   // 56 + 462 = 518 bits > 512
		{15, 256}, // way over
	}
	for _, c := range bad {
		if _, err := NewDeltaParam(c.w, c.g); err == nil {
			t.Errorf("NewDeltaParam(%d, %d) should fail", c.w, c.g)
		}
	}
	good := []struct {
		w uint
		g int
	}{
		{5, 64}, {6, 64}, {7, 64}, {8, 56}, {12, 38}, {2, 228},
	}
	for _, c := range good {
		if _, err := NewDeltaParam(c.w, c.g); err != nil {
			t.Errorf("NewDeltaParam(%d, %d) failed", c.w, c.g)
		}
	}
}

func TestNewSplitParamValidation(t *testing.T) {
	if _, err := NewSplitParam(7, 64); err != nil {
		t.Fatal("the paper's 7-bit/64-block split config must fit")
	}
	if _, err := NewSplitParam(8, 64); err == nil {
		t.Fatal("64 + 512 bits should exceed the metadata block")
	}
	if _, err := NewSplitParam(1, 64); err == nil {
		t.Fatal("1-bit minors should be rejected")
	}
	if _, err := NewSplitParam(7, 1); err == nil {
		t.Fatal("group of 1 should be rejected")
	}
}

func TestParamDeltaMatchesFixedDelta(t *testing.T) {
	// With width 7 and group 64, the parameterized scheme must behave
	// identically to the hand-written DeltaScheme.
	param, err := NewDeltaParam(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	fixed := NewDelta()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 300000; i++ {
		b := uint64(rng.Intn(512))
		po, fo := param.Touch(b), fixed.Touch(b)
		if po != fo {
			t.Fatalf("write %d to block %d: param %+v, fixed %+v", i, b, po, fo)
		}
	}
	if param.Stats() != fixed.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", param.Stats(), fixed.Stats())
	}
	for b := uint64(0); b < 512; b++ {
		if param.Counter(b) != fixed.Counter(b) {
			t.Fatalf("block %d: counters diverged", b)
		}
	}
}

func TestParamSplitMatchesFixedSplit(t *testing.T) {
	param, err := NewSplitParam(7, 64)
	if err != nil {
		t.Fatal(err)
	}
	fixed := NewSplit()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 300000; i++ {
		b := uint64(rng.Intn(512))
		po, fo := param.Touch(b), fixed.Touch(b)
		if po != fo {
			t.Fatalf("write %d to block %d: param %+v, fixed %+v", i, b, po, fo)
		}
	}
	if param.Stats() != fixed.Stats() {
		t.Fatalf("stats diverged")
	}
}

func TestParamDeltaNonceFreshness(t *testing.T) {
	// The nonce-freshness invariant must hold at every width.
	for _, w := range []uint{3, 5, 8} {
		g := 64
		if w == 8 {
			g = 56
		}
		s, err := NewDeltaParam(w, g)
		if err != nil {
			t.Fatal(err)
		}
		used := make(map[[2]uint64]bool)
		record := func(block, counter uint64) {
			k := [2]uint64{block, counter}
			if used[k] {
				t.Fatalf("width %d: nonce reuse on block %d counter %d", w, block, counter)
			}
			used[k] = true
		}
		s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
			for j := range old {
				record(start+uint64(j), newCounter)
			}
		})
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < 50000; i++ {
			b := uint64(rng.Intn(g))
			out := s.Touch(b)
			if !out.Reencrypted {
				record(b, out.Counter)
			}
		}
	}
}

// TestWiderDeltasReencryptLess verifies the fundamental width trade-off the
// paper's §4.2 design choice sits on: more delta bits mean fewer overflows
// (but more storage).
func TestWiderDeltasReencryptLess(t *testing.T) {
	rates := map[uint]uint64{}
	for _, w := range []uint{5, 6, 7} {
		s, err := NewDeltaParam(w, 64)
		if err != nil {
			t.Fatal(err)
		}
		// Hot single block: Δmin stays 0, overflow every 2^w writes.
		for i := 0; i < 1<<14; i++ {
			s.Touch(0)
		}
		rates[w] = s.Stats().Reencryptions
	}
	if !(rates[5] > rates[6] && rates[6] > rates[7]) {
		t.Fatalf("re-encryptions not decreasing with width: %v", rates)
	}
	// Exact expectation: 2^14 writes, overflow period 2^w.
	for _, w := range []uint{5, 6, 7} {
		want := uint64(1) << (14 - w)
		// The first overflow needs 2^w - 1 increments, so allow +/-1.
		if diff := int64(rates[w]) - int64(want); diff < -1 || diff > 1 {
			t.Errorf("width %d: %d re-encryptions, want ~%d", w, rates[w], want)
		}
	}
}

// TestSmallerGroupsLocalizeReencryption checks the group-size trade-off:
// smaller groups re-encrypt fewer blocks per overflow.
func TestSmallerGroupsLocalizeReencryption(t *testing.T) {
	for _, g := range []int{16, 32, 64} {
		s, err := NewDeltaParam(7, g)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 128; i++ {
			s.Touch(0)
		}
		st := s.Stats()
		if st.Reencryptions != 1 {
			t.Fatalf("g=%d: %d re-encryptions", g, st.Reencryptions)
		}
		if st.ReencryptedBlocks != uint64(g) {
			t.Fatalf("g=%d: %d blocks re-encrypted", g, st.ReencryptedBlocks)
		}
	}
}

func TestParamSchemeGeometry(t *testing.T) {
	d, err := NewDeltaParam(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if bits := d.MetadataBits(); bits != (56.0+64*5)/64 {
		t.Fatalf("delta-5 bits/block = %v", bits)
	}
	if d.Name() != "delta-5/g64" {
		t.Fatalf("name %q", d.Name())
	}
	if d.MetadataBlock(129) != 2 || d.MetadataBlocks(129) != 3 {
		t.Fatal("metadata mapping wrong")
	}
	sp, err := NewSplitParam(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name() != "split-4/g100" {
		t.Fatalf("name %q", sp.Name())
	}
	if sp.GroupSize() != 100 {
		t.Fatal("group size wrong")
	}
}

func TestParamSplitCounterConcatenation(t *testing.T) {
	s, err := NewSplitParam(3, 32) // tiny minors: overflow every 7 writes
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if out := s.Touch(0); out.Reencrypted {
			t.Fatalf("premature re-encryption at write %d", i)
		}
	}
	out := s.Touch(0)
	if !out.Reencrypted {
		t.Fatal("8th write should overflow a 3-bit minor")
	}
	// major 1, minor 1 -> counter 1<<3 | 1 = 9.
	if out.Counter != 9 {
		t.Fatalf("counter = %d, want 9", out.Counter)
	}
}

func BenchmarkParamDeltaTouch(b *testing.B) {
	s, err := NewDeltaParam(6, 64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.Touch(uint64(i) % 4096)
	}
}
