package ctr

import "testing"

// TestExhaustiveDeltaModelCheck model-checks a down-scaled delta scheme
// (2-bit deltas, 3-block groups) over EVERY write sequence of length 9 —
// 3^9 = 19,683 sequences, each replayed from a fresh scheme. The small
// delta width makes every interesting transition (reset, re-encode,
// re-encrypt) reachable within the horizon. Checked invariants:
//
//  1. No nonce reuse: every (block, counter) pair used for encryption —
//     write outcomes and re-encryption sweeps — is globally fresh within a
//     sequence.
//  2. Per-block counters never decrease and never fall behind the block's
//     write count (re-encryption may push them ahead, never behind).
//  3. The scheme's stats add up: every overflow resolves as exactly one of
//     re-encode or re-encrypt.
func TestExhaustiveDeltaModelCheck(t *testing.T) {
	const (
		blocks = 3
		depth  = 9
		width  = 2
	)
	total := 1
	for i := 0; i < depth; i++ {
		total *= blocks
	}

	seq := make([]uint64, depth)
	for n := 0; n < total; n++ {
		x := n
		for i := range seq {
			seq[i] = uint64(x % blocks)
			x /= blocks
		}
		checkDeltaSequence(t, width, blocks, seq)
	}
}

func checkDeltaSequence(t *testing.T, width uint, blocks int, seq []uint64) {
	t.Helper()
	s, err := NewDeltaParam(width, blocks)
	if err != nil {
		t.Fatal(err)
	}
	used := map[[2]uint64]bool{}
	record := func(block, counter uint64) {
		k := [2]uint64{block, counter}
		if used[k] {
			t.Fatalf("seq %v: nonce reuse on block %d counter %d", seq, block, counter)
		}
		used[k] = true
	}
	s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
		for j, oc := range old {
			if oc >= newCounter {
				t.Fatalf("seq %v: re-encrypt counter %d not above old[%d]=%d",
					seq, newCounter, j, oc)
			}
			record(start+uint64(j), newCounter)
		}
	})

	writes := make([]uint64, blocks)
	last := make([]uint64, blocks)
	for _, b := range seq {
		out := s.Touch(b)
		writes[b]++
		if !out.Reencrypted {
			record(b, out.Counter)
		}
		if out.Counter <= last[b] && last[b] != 0 {
			t.Fatalf("seq %v: block %d counter went %d -> %d", seq, b, last[b], out.Counter)
		}
		last[b] = out.Counter
		// An outcome is at most one of the structural events.
		events := 0
		for _, e := range []bool{out.Reencoded, out.Reencrypted} {
			if e {
				events++
			}
		}
		if events > 1 {
			t.Fatalf("seq %v: outcome %+v claims multiple overflow resolutions", seq, out)
		}
		for blk := 0; blk < blocks; blk++ {
			if c := s.Counter(uint64(blk)); c < writes[blk] {
				t.Fatalf("seq %v: block %d counter %d behind %d writes",
					seq, blk, c, writes[blk])
			}
		}
	}
}

// TestExhaustiveSplitModelCheck applies the same model checking to a
// down-scaled split-counter scheme (2-bit minors, 3-block groups).
func TestExhaustiveSplitModelCheck(t *testing.T) {
	const (
		blocks = 3
		depth  = 9
	)
	total := 1
	for i := 0; i < depth; i++ {
		total *= blocks
	}
	seq := make([]uint64, depth)
	for n := 0; n < total; n++ {
		x := n
		for i := range seq {
			seq[i] = uint64(x % blocks)
			x /= blocks
		}

		s, err := NewSplitParam(2, blocks)
		if err != nil {
			t.Fatal(err)
		}
		used := map[[2]uint64]bool{}
		record := func(block, counter uint64) {
			k := [2]uint64{block, counter}
			if used[k] {
				t.Fatalf("seq %v: nonce reuse on block %d counter %d", seq, block, counter)
			}
			used[k] = true
		}
		s.OnReencrypt(func(start uint64, old []uint64, newCounter uint64) {
			for j := range old {
				record(start+uint64(j), newCounter)
			}
		})
		writes := make([]uint64, blocks)
		for _, b := range seq {
			out := s.Touch(b)
			writes[b]++
			if !out.Reencrypted {
				record(b, out.Counter)
			}
		}
		// Counter value semantics: major*4 + minor >= writes.
		for blk := 0; blk < blocks; blk++ {
			if c := s.Counter(uint64(blk)); c < writes[blk] {
				t.Fatalf("seq %v: block %d counter %d behind %d writes", seq, blk, c, writes[blk])
			}
		}
	}
}
