package ctr

// DeltaScheme implements §4's frame-of-reference delta encoding: each 4KB
// block-group stores one 56-bit reference counter and a 7-bit delta per
// block; a block's encryption counter is reference + delta.
//
// Three mechanisms keep small deltas from forcing re-encryptions:
//
//  1. Reset (Figure 5b): after every increment, if all 64 deltas hold the
//     same nonzero value d, fold d into the reference and zero the deltas.
//     No counter value changes, so no re-encryption is needed. This
//     exploits spatially local write streams whose deltas grow in lockstep.
//  2. Re-encode (Figure 5c): on overflow, subtract the group's minimum
//     delta Δmin from every delta and add it to the reference. Again no
//     counter changes. Effective only when Δmin > 0.
//  3. Re-encrypt (Figure 5a): when Δmin = 0, re-encrypt the whole group
//     under the overflowing counter's next value, make it the new
//     reference, and zero all deltas.
//
// Storage: 56 + 64*7 = 504 bits per group, padded to one 64-byte metadata
// block — the same footprint as split counters but with far fewer
// re-encryptions (Table 2).
type DeltaScheme struct {
	groups map[uint64]*deltaGroup
	stats  Stats
	hook   ReencryptFunc
}

// DeltaBits is the delta width evaluated in the paper.
const DeltaBits = 7

// deltaMax is the largest representable 7-bit delta.
const deltaMax = (1 << DeltaBits) - 1

// RefBits is the reference-counter width; like SGX's 56-bit counters it
// cannot realistically overflow within a machine's lifetime.
const RefBits = 56

type deltaGroup struct {
	ref    uint64
	deltas [GroupBlocks]uint16
}

// NewDelta creates a delta-encoded counter store with all counters zero
// (reference = 0, deltas = 0, as in Figure 5a's initial state).
func NewDelta() *DeltaScheme {
	return &DeltaScheme{groups: make(map[uint64]*deltaGroup)}
}

// Name implements Scheme.
func (s *DeltaScheme) Name() string { return "delta-7" }

// GroupSize implements Scheme.
func (s *DeltaScheme) GroupSize() int { return GroupBlocks }

func (s *DeltaScheme) group(block uint64) (*deltaGroup, uint64, int) {
	gid := block / GroupBlocks
	g := s.groups[gid]
	if g == nil {
		g = &deltaGroup{}
		s.groups[gid] = g
	}
	return g, gid, int(block % GroupBlocks)
}

// Counter implements Scheme.
func (s *DeltaScheme) Counter(block uint64) uint64 {
	g, _, i := s.group(block)
	return g.ref + uint64(g.deltas[i])
}

// Touch implements Scheme. It follows the hardware flow of Figure 7: the
// increment-and-reset unit checks for overflow before incrementing, applies
// the increment, then checks for an all-equal reset; the re-encode/
// re-encrypt unit handles overflows.
func (s *DeltaScheme) Touch(block uint64) WriteOutcome {
	g, gid, i := s.group(block)
	s.stats.Writes++
	var out WriteOutcome

	if g.deltas[i] == deltaMax {
		// Overflow. Try the cheap fix first: re-encode with a larger
		// reference (Figure 5c).
		if dmin := g.minDelta(); dmin > 0 {
			g.reencode(dmin)
			s.stats.Reencodes++
			out.Reencoded = true
		} else {
			// Δmin = 0: re-encryption is unavoidable (Figure 5a).
			// The overflowing counter is the largest in the group;
			// its next value becomes the shared new counter and the
			// new reference.
			newRef := g.ref + deltaMax + 1
			s.reencrypt(gid, g, newRef)
			out.Reencrypted = true
			out.Counter = newRef
			return out
		}
	}

	g.deltas[i]++
	out.Counter = g.ref + uint64(g.deltas[i])

	// Reset check (Figure 5b): fires on the increment path, after the
	// write, as done by the increment-and-reset unit.
	if d := g.allEqual(); d > 0 {
		g.ref += uint64(d)
		clear(g.deltas[:])
		s.stats.Resets++
		out.Reset = true
	}
	return out
}

func (g *deltaGroup) minDelta() uint16 {
	m := g.deltas[0]
	for _, d := range g.deltas[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// allEqual returns the common delta value when every delta in the group is
// identical and nonzero, else 0.
func (g *deltaGroup) allEqual() uint16 {
	d := g.deltas[0]
	if d == 0 {
		return 0
	}
	for _, v := range g.deltas[1:] {
		if v != d {
			return 0
		}
	}
	return d
}

func (g *deltaGroup) reencode(dmin uint16) {
	g.ref += uint64(dmin)
	for j := range g.deltas {
		g.deltas[j] -= dmin
	}
}

func (s *DeltaScheme) reencrypt(gid uint64, g *deltaGroup, newRef uint64) {
	if s.hook != nil {
		old := make([]uint64, GroupBlocks)
		for j := range old {
			old[j] = g.ref + uint64(g.deltas[j])
		}
		s.hook(gid*GroupBlocks, old, newRef)
	}
	g.ref = newRef
	clear(g.deltas[:])
	s.stats.Reencryptions++
	s.stats.ReencryptedBlocks += GroupBlocks
}

// MetadataBits implements Scheme: (56 + 64*7)/64 = 7.875 bits per block.
func (s *DeltaScheme) MetadataBits() float64 {
	return float64(RefBits+GroupBlocks*DeltaBits) / GroupBlocks
}

// MetadataBlock implements Scheme.
func (s *DeltaScheme) MetadataBlock(block uint64) uint64 { return block / GroupBlocks }

// MetadataBlocks implements Scheme.
func (s *DeltaScheme) MetadataBlocks(n uint64) uint64 {
	return (n + GroupBlocks - 1) / GroupBlocks
}

// Stats implements Scheme.
func (s *DeltaScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme.
func (s *DeltaScheme) OnReencrypt(f ReencryptFunc) { s.hook = f }
