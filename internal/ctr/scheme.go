// Package ctr implements the per-block write-counter schemes studied in the
// paper:
//
//   - Monolithic: one 56-bit counter per 64-byte block (the SGX baseline).
//   - Split counters (Yan et al., ISCA'06): a shared 64-bit major counter
//     plus a 7-bit minor counter per block; minor overflow re-encrypts the
//     whole block-group.
//   - Delta encoding (§4): a 56-bit reference plus a 7-bit delta per block,
//     with two overflow-avoidance optimizations — resetting deltas when they
//     all converge to the same value, and re-encoding by subtracting the
//     minimum delta — before falling back to group re-encryption.
//   - Dual-length delta encoding (§4.3): 6-bit deltas in four delta-groups
//     of 16, with 72 reserved bits that can extend exactly one delta-group
//     by 4 bits per delta upon overflow.
//
// Counters are the nonces of counter-mode memory encryption; the scheme's
// one hard invariant is that a block's counter strictly increases on every
// write to it (no nonce reuse). A group re-encryption additionally bumps the
// counters of every other block in the group, which is why re-encryption
// rate (Table 2) is the figure of merit.
package ctr

import "fmt"

// BlockBytes is the data-block granularity counters are tracked at.
const BlockBytes = 64

// GroupBlocks is the block-group size shared by the grouped schemes:
// 64 blocks = 4KB, matching the paper's evaluation.
const GroupBlocks = 64

// MetadataBlockBytes is the size of one counter-storage block. Every grouped
// scheme packs a whole group's counters into a single 64-byte block, which is
// the property that lets the decryption pipeline fetch reference + deltas in
// one read (§4.2).
const MetadataBlockBytes = 64

// DecodeCycles is the counter-decode latency the paper measured by
// synthesizing the decode unit to IBM 45nm SOI: 2 cycles at up to 4GHz
// (§5.3). The timing model charges this on metadata reads for delta schemes.
const DecodeCycles = 2

// WriteOutcome describes what a counter increment did.
type WriteOutcome struct {
	// Counter is the block's new counter value; the write must be
	// encrypted under it.
	Counter uint64
	// Reset is true when the all-deltas-equal reset optimization fired.
	Reset bool
	// Reencoded is true when the Δmin re-encode optimization fired.
	Reencoded bool
	// Extended is true when dual-length encoding assigned the overflow
	// bits to a delta-group.
	Extended bool
	// Reencrypted is true when the write forced a group re-encryption.
	Reencrypted bool
}

// Stats aggregates scheme events over a run.
type Stats struct {
	Writes        uint64 // counter increments
	Resets        uint64 // all-deltas-equal resets
	Reencodes     uint64 // Δmin re-encodes
	Extensions    uint64 // dual-length group extensions
	Reencryptions uint64 // group re-encryptions
	// ReencryptedBlocks counts data blocks rewritten by re-encryptions;
	// this is the NVMM write-amplification metric of §2.2.
	ReencryptedBlocks uint64
}

// ReencryptFunc is invoked when a scheme must re-encrypt a block-group.
// groupStart is the global index of the group's first block, oldCounters
// holds the pre-re-encryption counter of each block in the group (length =
// group size), and newCounter is the single counter every block is
// re-encrypted under. The hook runs before the scheme commits its new state,
// so implementations can still decrypt with the old counters.
type ReencryptFunc func(groupStart uint64, oldCounters []uint64, newCounter uint64)

// Scheme is a per-block write-counter store.
type Scheme interface {
	// Name identifies the scheme in tables and logs.
	Name() string
	// GroupSize returns the number of data blocks sharing metadata
	// (1 for the monolithic scheme).
	GroupSize() int
	// Counter returns the current counter of a data block.
	Counter(block uint64) uint64
	// Touch increments the counter of a data block for a write and
	// reports what happened.
	Touch(block uint64) WriteOutcome
	// MetadataBits returns the counter-storage bits consumed per data
	// block, including shared reference/major counters.
	MetadataBits() float64
	// MetadataBlock maps a data block to the index of the 64-byte
	// metadata block holding its counter state.
	MetadataBlock(block uint64) uint64
	// MetadataBlocks returns how many metadata blocks cover n data blocks.
	MetadataBlocks(n uint64) uint64
	// Stats returns cumulative event counts.
	Stats() Stats
	// OnReencrypt registers a hook called for every group re-encryption.
	OnReencrypt(ReencryptFunc)
}

// Kind selects a scheme in configuration structs.
type Kind int

const (
	// Monolithic is one full-width counter per block.
	Monolithic Kind = iota
	// Split is the split-counter baseline of Yan et al.
	Split
	// Delta is 7-bit frame-of-reference delta encoding with reset and
	// re-encode optimizations.
	Delta
	// DualLength is 6-bit deltas with one 4-bit-per-delta group extension.
	DualLength
)

// String returns the display name of the kind.
func (k Kind) String() string {
	switch k {
	case Monolithic:
		return "monolithic-56"
	case Split:
		return "split-7"
	case Delta:
		return "delta-7"
	case DualLength:
		return "dual-length"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NewScheme constructs a counter scheme of the given kind.
func NewScheme(k Kind) (Scheme, error) {
	switch k {
	case Monolithic:
		return NewMonolithic(), nil
	case Split:
		return NewSplit(), nil
	case Delta:
		return NewDelta(), nil
	case DualLength:
		return NewDualLength(), nil
	default:
		return nil, fmt.Errorf("ctr: unknown scheme kind %d", int(k))
	}
}
