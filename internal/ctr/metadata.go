package ctr

// PackMetadata methods return the canonical 64-byte storage image of a
// metadata block. The integrity tree (internal/tree) MACs these images, so
// they must be deterministic functions of scheme state. Indexing matches
// MetadataBlock: for grouped schemes metadata block m holds group m; for the
// monolithic scheme it holds counters 8m..8m+7.

// PackMetadata implements the metadata-image contract for MonolithicScheme.
func (s *MonolithicScheme) PackMetadata(m uint64) [MetadataBlockBytes]byte {
	var c [CountersPerMetadataBlock]uint64
	for i := range c {
		c[i] = s.counters[m*CountersPerMetadataBlock+uint64(i)]
	}
	return PackMonolithic(&c)
}

// PackMetadata implements the metadata-image contract for SplitScheme.
func (s *SplitScheme) PackMetadata(m uint64) [MetadataBlockBytes]byte {
	g := s.groups[m]
	if g == nil {
		g = &splitGroup{}
	}
	return PackSplit(g.major, &g.minors)
}

// PackMetadata implements the metadata-image contract for DeltaScheme.
func (s *DeltaScheme) PackMetadata(m uint64) [MetadataBlockBytes]byte {
	g := s.groups[m]
	if g == nil {
		g = &deltaGroup{}
	}
	blk, err := PackDelta(g.ref, &g.deltas)
	if err != nil {
		// Scheme invariants guarantee packable state; a failure here is
		// a bug, not an input error.
		panic(err)
	}
	return blk
}

// PackMetadata implements the metadata-image contract for DualLengthScheme.
func (s *DualLengthScheme) PackMetadata(m uint64) [MetadataBlockBytes]byte {
	g := s.groups[m]
	if g == nil {
		g = &dualGroup{extended: -1}
	}
	blk, err := PackDualLength(g.ref, &g.deltas, g.extended)
	if err != nil {
		panic(err)
	}
	return blk
}

// LoadMetadata methods restore scheme state from a stored 64-byte image —
// the inverse of PackMetadata, used when resuming a persistent (NVMM)
// memory: counters survive power-off in DRAM/NVMM form and the state
// machine is rebuilt from them. Non-canonical images are rejected.

// LoadMetadata implements the metadata-restore contract for
// MonolithicScheme.
func (s *MonolithicScheme) LoadMetadata(m uint64, img [MetadataBlockBytes]byte) error {
	counters := UnpackMonolithic(img)
	for i, c := range counters {
		blk := m*CountersPerMetadataBlock + uint64(i)
		if c == 0 {
			delete(s.counters, blk)
			continue
		}
		s.counters[blk] = c
	}
	return nil
}

// LoadMetadata implements the metadata-restore contract for SplitScheme.
func (s *SplitScheme) LoadMetadata(m uint64, img [MetadataBlockBytes]byte) error {
	major, minors := UnpackSplit(img)
	s.groups[m] = &splitGroup{major: major, minors: minors}
	return nil
}

// LoadMetadata implements the metadata-restore contract for DeltaScheme.
func (s *DeltaScheme) LoadMetadata(m uint64, img [MetadataBlockBytes]byte) error {
	ref, deltas, err := UnpackDelta(img)
	if err != nil {
		return err
	}
	s.groups[m] = &deltaGroup{ref: ref, deltas: deltas}
	return nil
}

// LoadMetadata implements the metadata-restore contract for
// DualLengthScheme.
func (s *DualLengthScheme) LoadMetadata(m uint64, img [MetadataBlockBytes]byte) error {
	ref, deltas, extended, err := UnpackDualLength(img)
	if err != nil {
		return err
	}
	s.groups[m] = &dualGroup{ref: ref, deltas: deltas, extended: extended}
	return nil
}

// MetadataPacker is implemented by all schemes in this package; the engine
// asserts to it when it needs storage images for tree hashing.
type MetadataPacker interface {
	PackMetadata(m uint64) [MetadataBlockBytes]byte
}

// MetadataLoader is the restore-side counterpart of MetadataPacker.
type MetadataLoader interface {
	LoadMetadata(m uint64, img [MetadataBlockBytes]byte) error
}

var (
	_ MetadataPacker = (*MonolithicScheme)(nil)
	_ MetadataPacker = (*SplitScheme)(nil)
	_ MetadataPacker = (*DeltaScheme)(nil)
	_ MetadataPacker = (*DualLengthScheme)(nil)

	_ MetadataLoader = (*MonolithicScheme)(nil)
	_ MetadataLoader = (*SplitScheme)(nil)
	_ MetadataLoader = (*DeltaScheme)(nil)
	_ MetadataLoader = (*DualLengthScheme)(nil)

	_ Scheme = (*MonolithicScheme)(nil)
	_ Scheme = (*SplitScheme)(nil)
	_ Scheme = (*DeltaScheme)(nil)
	_ Scheme = (*DualLengthScheme)(nil)
)
