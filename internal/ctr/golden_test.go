package ctr

import (
	"encoding/hex"
	"testing"
)

// Golden images pin the metadata storage formats: the integrity tree MACs
// these bytes and the persistence format embeds them, so any layout change
// silently breaks stored images. If one of these tests fails, the format
// changed — bump the persistence magic and write a migration, don't update
// the golden value casually.

func TestGoldenDeltaLayout(t *testing.T) {
	var deltas [GroupBlocks]uint16
	for i := range deltas {
		deltas[i] = uint16(i % (deltaMax + 1))
	}
	blk, err := PackDelta(0x00AB_CDEF_0123_45, &deltas)
	if err != nil {
		t.Fatal(err)
	}
	const want = "452301efcdab008080604028180e888462c168381e90886442a9582e988c66c3" +
		"e9783ea09068442a994ea8946ac56ab95eb0986c46abd96eb89c6ec7ebf97e00"
	if got := hex.EncodeToString(blk[:]); got != want {
		t.Fatalf("delta-7 layout changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenDualLengthLayout(t *testing.T) {
	var deltas [GroupBlocks]uint16
	for i := range deltas {
		deltas[i] = uint16(i % (shortMax + 1))
	}
	deltas[16] = longMax // in extended group 1
	if _, err := PackDualLength(0x7F, &deltas, -1); err == nil {
		t.Fatal("10-bit delta must not pack without the extension assigned")
	}
	blk, err := PackDualLength(0x7F, &deltas, 1)
	if err != nil {
		t.Fatal(err)
	}
	const want = "7f00000000000040200c44611c48a22c4ce33c7f244d54655d58a66d5ce77d60" +
		"288e64699e68aaae6cebbe702ccf746ddf78aeef7cefff7b0000000000000000"
	if got := hex.EncodeToString(blk[:]); got != want {
		t.Fatalf("dual-length layout changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenSplitLayout(t *testing.T) {
	var minors [GroupBlocks]uint16
	for i := range minors {
		minors[i] = uint16((i * 3) % (minorMax + 1))
	}
	blk := PackSplit(0xDEADBEEF, &minors)
	const want = "efbeadde00000000808121c178482a988d27443aa95ab0992dc7fb098bc8a533" +
		"4abd6abbe0b139cd7ecbebf8bd3f4038281a908925c3f9884aa8952b46bbe97a"
	if got := hex.EncodeToString(blk[:]); got != want {
		t.Fatalf("split layout changed:\n got %s\nwant %s", got, want)
	}
}
