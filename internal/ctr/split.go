package ctr

// SplitScheme implements the split-counter baseline of Yan et al. (ISCA'06):
// each 4KB block-group shares a 64-bit major counter M, and each block keeps
// a 7-bit minor counter m. A block's encryption counter is the concatenation
// M||m. When a minor counter overflows, the major counter is incremented,
// every minor counter resets to zero, and the entire group must be
// re-encrypted under the new counters.
//
// Storage: 64 + 64*7 = 512 bits per group — exactly one 64-byte metadata
// block, an 8x reduction over 64-bit-per-block counters. The paper's Table 2
// uses this scheme (with 7-bit minors) as the re-encryption-rate baseline.
type SplitScheme struct {
	groups map[uint64]*splitGroup
	stats  Stats
	hook   ReencryptFunc
}

// MinorBits is the minor-counter width evaluated in the paper.
const MinorBits = 7

// minorMax is the largest representable minor counter value.
const minorMax = (1 << MinorBits) - 1

type splitGroup struct {
	major  uint64
	minors [GroupBlocks]uint16
}

// NewSplit creates a split-counter store with all counters zero.
func NewSplit() *SplitScheme {
	return &SplitScheme{groups: make(map[uint64]*splitGroup)}
}

// Name implements Scheme.
func (s *SplitScheme) Name() string { return "split-7" }

// GroupSize implements Scheme.
func (s *SplitScheme) GroupSize() int { return GroupBlocks }

func (s *SplitScheme) group(block uint64) (*splitGroup, uint64, int) {
	gid := block / GroupBlocks
	g := s.groups[gid]
	if g == nil {
		g = &splitGroup{}
		s.groups[gid] = g
	}
	return g, gid, int(block % GroupBlocks)
}

// counterOf assembles the full counter M||m for one slot.
func (g *splitGroup) counterOf(i int) uint64 {
	return g.major<<MinorBits | uint64(g.minors[i])
}

// Counter implements Scheme.
func (s *SplitScheme) Counter(block uint64) uint64 {
	g, _, i := s.group(block)
	return g.counterOf(i)
}

// Touch implements Scheme.
func (s *SplitScheme) Touch(block uint64) WriteOutcome {
	g, gid, i := s.group(block)
	s.stats.Writes++
	if g.minors[i] < minorMax {
		g.minors[i]++
		return WriteOutcome{Counter: g.counterOf(i)}
	}
	// Minor overflow: re-encrypt the whole group under major+1, minors 0.
	old := make([]uint64, GroupBlocks)
	for j := range old {
		old[j] = g.counterOf(j)
	}
	newMajor := g.major + 1
	newCounter := newMajor << MinorBits
	if s.hook != nil {
		s.hook(gid*GroupBlocks, old, newCounter)
	}
	g.major = newMajor
	clear(g.minors[:])
	// The triggering block still gets its write: increment its fresh minor.
	g.minors[i] = 1
	s.stats.Reencryptions++
	s.stats.ReencryptedBlocks += GroupBlocks
	return WriteOutcome{Counter: g.counterOf(i), Reencrypted: true}
}

// MetadataBits implements Scheme: (64 + 64*7)/64 = 8 bits per block.
func (s *SplitScheme) MetadataBits() float64 {
	return float64(64+GroupBlocks*MinorBits) / GroupBlocks
}

// MetadataBlock implements Scheme: one metadata block per group.
func (s *SplitScheme) MetadataBlock(block uint64) uint64 { return block / GroupBlocks }

// MetadataBlocks implements Scheme.
func (s *SplitScheme) MetadataBlocks(n uint64) uint64 {
	return (n + GroupBlocks - 1) / GroupBlocks
}

// Stats implements Scheme.
func (s *SplitScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme.
func (s *SplitScheme) OnReencrypt(f ReencryptFunc) { s.hook = f }
