package ctr

import (
	"testing"
)

// Fuzz targets: metadata blocks arrive from attacker-controlled DRAM, so
// the unpackers must behave on arbitrary bytes — no panics, and anything
// accepted must re-pack to the same image (canonical encodings only).

func to64(b []byte) (out [MetadataBlockBytes]byte) {
	copy(out[:], b)
	return out
}

func FuzzUnpackDelta(f *testing.F) {
	var deltas [GroupBlocks]uint16
	deltas[0], deltas[63] = 1, deltaMax
	seed, _ := PackDelta(123456, &deltas)
	f.Add(seed[:])
	f.Add(make([]byte, MetadataBlockBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		blk := to64(data)
		ref, d, err := UnpackDelta(blk)
		if err != nil {
			return
		}
		back, err := PackDelta(ref, &d)
		if err != nil {
			t.Fatalf("accepted image failed to re-pack: %v", err)
		}
		if back != blk {
			t.Fatal("unpack/pack not canonical")
		}
	})
}

func FuzzUnpackDualLength(f *testing.F) {
	var deltas [GroupBlocks]uint16
	deltas[5] = shortMax
	deltas[17] = longMax
	seed, _ := PackDualLength(99, &deltas, 1)
	f.Add(seed[:])
	f.Add(make([]byte, MetadataBlockBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		blk := to64(data)
		ref, d, ext, err := UnpackDualLength(blk)
		if err != nil {
			return
		}
		back, err := PackDualLength(ref, &d, ext)
		if err != nil {
			t.Fatalf("accepted image failed to re-pack: %v", err)
		}
		if back != blk {
			t.Fatal("unpack/pack not canonical")
		}
	})
}

func FuzzUnpackSplit(f *testing.F) {
	var minors [GroupBlocks]uint16
	minors[3] = minorMax
	seed := PackSplit(7, &minors)
	f.Add(seed[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		blk := to64(data)
		major, m := UnpackSplit(blk)
		if PackSplit(major, &m) != blk {
			t.Fatal("split unpack/pack not canonical")
		}
	})
}

func FuzzDecodeCounter(f *testing.F) {
	f.Add(make([]byte, MetadataBlockBytes), 0)
	f.Add(make([]byte, MetadataBlockBytes), 63)
	f.Fuzz(func(t *testing.T, data []byte, idx int) {
		blk := to64(data)
		// Must never panic, whatever the index.
		c1, err1 := DecodeCounter(blk, idx)
		c2, err2 := DecodeDualCounter(blk, idx)
		if (err1 == nil) != (err2 == nil) {
			t.Fatal("decoders disagree on index validity")
		}
		if err1 != nil {
			return
		}
		_ = c1
		_ = c2
	})
}
