package ctr

import "fmt"

// This file generalizes the two compact counter schemes over their design
// space. §4.2 of the paper notes that "there are multiple block group and
// delta size combinations" satisfying the one-metadata-block constraint;
// the paper evaluates 7-bit deltas over 64-block groups, and these
// parameterized schemes let the ablation benches sweep the alternatives
// (e.g. 5/6/7-bit deltas at group 64, or 8-bit deltas at group 56).

// ParamDeltaScheme is DeltaScheme with configurable delta width and group
// size. The reference stays 56 bits; the constraint RefBits + G*W <= 512
// keeps a group's counters within one 64-byte metadata block, which §4.2
// requires so reference and deltas load with a single read.
type ParamDeltaScheme struct {
	width  uint // delta bits
	group  int  // blocks per group
	max    uint16
	groups map[uint64]*paramDeltaGroup
	stats  Stats
	hook   ReencryptFunc
}

type paramDeltaGroup struct {
	ref    uint64
	deltas []uint16
}

// NewDeltaParam builds a delta scheme with the given delta width (2..15
// bits) and group size.
func NewDeltaParam(widthBits uint, groupBlocks int) (*ParamDeltaScheme, error) {
	if widthBits < 2 || widthBits > 15 {
		return nil, fmt.Errorf("ctr: delta width %d out of range 2..15", widthBits)
	}
	if groupBlocks < 2 {
		return nil, fmt.Errorf("ctr: group size %d too small", groupBlocks)
	}
	if bits := RefBits + groupBlocks*int(widthBits); bits > MetadataBlockBytes*8 {
		return nil, fmt.Errorf("ctr: %d-bit deltas x %d blocks need %d bits, exceeding one %d-byte metadata block",
			widthBits, groupBlocks, bits, MetadataBlockBytes)
	}
	return &ParamDeltaScheme{
		width:  widthBits,
		group:  groupBlocks,
		max:    uint16(1)<<widthBits - 1,
		groups: make(map[uint64]*paramDeltaGroup),
	}, nil
}

// Name implements Scheme.
func (s *ParamDeltaScheme) Name() string {
	return fmt.Sprintf("delta-%d/g%d", s.width, s.group)
}

// GroupSize implements Scheme.
func (s *ParamDeltaScheme) GroupSize() int { return s.group }

func (s *ParamDeltaScheme) groupOf(block uint64) (*paramDeltaGroup, uint64, int) {
	gid := block / uint64(s.group)
	g := s.groups[gid]
	if g == nil {
		g = &paramDeltaGroup{deltas: make([]uint16, s.group)}
		s.groups[gid] = g
	}
	return g, gid, int(block % uint64(s.group))
}

// Counter implements Scheme.
func (s *ParamDeltaScheme) Counter(block uint64) uint64 {
	g, _, i := s.groupOf(block)
	return g.ref + uint64(g.deltas[i])
}

// Touch implements Scheme with the same reset / re-encode / re-encrypt
// policy as the fixed-width DeltaScheme.
func (s *ParamDeltaScheme) Touch(block uint64) WriteOutcome {
	g, gid, i := s.groupOf(block)
	s.stats.Writes++
	var out WriteOutcome

	if g.deltas[i] == s.max {
		dmin := g.deltas[0]
		for _, d := range g.deltas[1:] {
			if d < dmin {
				dmin = d
			}
		}
		if dmin > 0 {
			g.ref += uint64(dmin)
			for j := range g.deltas {
				g.deltas[j] -= dmin
			}
			s.stats.Reencodes++
			out.Reencoded = true
		} else {
			newRef := g.ref + uint64(s.max) + 1
			if s.hook != nil {
				old := make([]uint64, s.group)
				for j := range old {
					old[j] = g.ref + uint64(g.deltas[j])
				}
				s.hook(gid*uint64(s.group), old, newRef)
			}
			g.ref = newRef
			clear(g.deltas)
			s.stats.Reencryptions++
			s.stats.ReencryptedBlocks += uint64(s.group)
			out.Reencrypted = true
			out.Counter = newRef
			return out
		}
	}

	g.deltas[i]++
	out.Counter = g.ref + uint64(g.deltas[i])

	// All-equal reset.
	d := g.deltas[0]
	equal := d > 0
	if equal {
		for _, v := range g.deltas[1:] {
			if v != d {
				equal = false
				break
			}
		}
	}
	if equal {
		g.ref += uint64(d)
		clear(g.deltas)
		s.stats.Resets++
		out.Reset = true
	}
	return out
}

// MetadataBits implements Scheme.
func (s *ParamDeltaScheme) MetadataBits() float64 {
	return float64(RefBits+s.group*int(s.width)) / float64(s.group)
}

// MetadataBlock implements Scheme.
func (s *ParamDeltaScheme) MetadataBlock(block uint64) uint64 {
	return block / uint64(s.group)
}

// MetadataBlocks implements Scheme.
func (s *ParamDeltaScheme) MetadataBlocks(n uint64) uint64 {
	g := uint64(s.group)
	return (n + g - 1) / g
}

// Stats implements Scheme.
func (s *ParamDeltaScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme.
func (s *ParamDeltaScheme) OnReencrypt(f ReencryptFunc) { s.hook = f }

// ParamSplitScheme generalizes split counters over minor width and group
// size, under the same one-metadata-block constraint (64-bit major +
// G*minor <= 512 bits).
type ParamSplitScheme struct {
	width  uint
	group  int
	max    uint16
	groups map[uint64]*paramSplitGroup
	stats  Stats
	hook   ReencryptFunc
}

type paramSplitGroup struct {
	major  uint64
	minors []uint16
}

// NewSplitParam builds a split-counter scheme with the given minor width
// (2..15 bits) and group size.
func NewSplitParam(widthBits uint, groupBlocks int) (*ParamSplitScheme, error) {
	if widthBits < 2 || widthBits > 15 {
		return nil, fmt.Errorf("ctr: minor width %d out of range 2..15", widthBits)
	}
	if groupBlocks < 2 {
		return nil, fmt.Errorf("ctr: group size %d too small", groupBlocks)
	}
	if bits := 64 + groupBlocks*int(widthBits); bits > MetadataBlockBytes*8 {
		return nil, fmt.Errorf("ctr: %d-bit minors x %d blocks need %d bits, exceeding one %d-byte metadata block",
			widthBits, groupBlocks, bits, MetadataBlockBytes)
	}
	return &ParamSplitScheme{
		width:  widthBits,
		group:  groupBlocks,
		max:    uint16(1)<<widthBits - 1,
		groups: make(map[uint64]*paramSplitGroup),
	}, nil
}

// Name implements Scheme.
func (s *ParamSplitScheme) Name() string {
	return fmt.Sprintf("split-%d/g%d", s.width, s.group)
}

// GroupSize implements Scheme.
func (s *ParamSplitScheme) GroupSize() int { return s.group }

func (s *ParamSplitScheme) groupOf(block uint64) (*paramSplitGroup, uint64, int) {
	gid := block / uint64(s.group)
	g := s.groups[gid]
	if g == nil {
		g = &paramSplitGroup{minors: make([]uint16, s.group)}
		s.groups[gid] = g
	}
	return g, gid, int(block % uint64(s.group))
}

func (s *ParamSplitScheme) counterOf(g *paramSplitGroup, i int) uint64 {
	return g.major<<s.width | uint64(g.minors[i])
}

// Counter implements Scheme.
func (s *ParamSplitScheme) Counter(block uint64) uint64 {
	g, _, i := s.groupOf(block)
	return s.counterOf(g, i)
}

// Touch implements Scheme.
func (s *ParamSplitScheme) Touch(block uint64) WriteOutcome {
	g, gid, i := s.groupOf(block)
	s.stats.Writes++
	if g.minors[i] < s.max {
		g.minors[i]++
		return WriteOutcome{Counter: s.counterOf(g, i)}
	}
	newMajor := g.major + 1
	newCounter := newMajor << s.width
	if s.hook != nil {
		old := make([]uint64, s.group)
		for j := range old {
			old[j] = s.counterOf(g, j)
		}
		s.hook(gid*uint64(s.group), old, newCounter)
	}
	g.major = newMajor
	clear(g.minors)
	g.minors[i] = 1
	s.stats.Reencryptions++
	s.stats.ReencryptedBlocks += uint64(s.group)
	return WriteOutcome{Counter: s.counterOf(g, i), Reencrypted: true}
}

// MetadataBits implements Scheme.
func (s *ParamSplitScheme) MetadataBits() float64 {
	return float64(64+s.group*int(s.width)) / float64(s.group)
}

// MetadataBlock implements Scheme.
func (s *ParamSplitScheme) MetadataBlock(block uint64) uint64 {
	return block / uint64(s.group)
}

// MetadataBlocks implements Scheme.
func (s *ParamSplitScheme) MetadataBlocks(n uint64) uint64 {
	g := uint64(s.group)
	return (n + g - 1) / g
}

// Stats implements Scheme.
func (s *ParamSplitScheme) Stats() Stats { return s.stats }

// OnReencrypt implements Scheme.
func (s *ParamSplitScheme) OnReencrypt(f ReencryptFunc) { s.hook = f }

var (
	_ Scheme = (*ParamDeltaScheme)(nil)
	_ Scheme = (*ParamSplitScheme)(nil)
)
