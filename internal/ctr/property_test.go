package ctr

import (
	"math/rand"
	"testing"
)

// Property tests for the one invariant counter-mode encryption cannot
// survive losing: a (block, counter) pair — the CTR nonce — is used for
// encryption at most once, and a block's counter never moves backwards.
//
// Encryption happens at two points: a write encrypts its block under the
// counter Touch returns, and a group re-encryption re-encrypts every block
// of the group under the hook's newCounter. The shadow tracker below
// records the highest counter each block has ever been encrypted under,
// across both paths, and fails the moment any path re-uses or regresses
// one — through every escalation step (reset, re-encode, dual-length
// extension, re-encryption) a random write sequence can provoke.

// shadowTracker mirrors the counters a scheme hands out.
type shadowTracker struct {
	t *testing.T
	// lastUsed[b] is the highest counter block b was ever encrypted
	// under; the pad-reuse invariant is "every new encryption of b uses a
	// strictly larger counter", which subsumes a global used-pair set.
	lastUsed map[uint64]uint64
	// counter[b] mirrors what Counter(b) must report.
	counter map[uint64]uint64
	// pending is the block whose Touch is in flight. When its group
	// re-encrypts mid-Touch, the hook lists it, but a consumer must NOT
	// encrypt its stale data under the new counter: the fresh write that
	// triggered the overflow is about to use that same counter, and
	// installing both would be a two-time pad between old and new data.
	// (core.Engine implements exactly this skip; see reencryptGroup.)
	pending    uint64
	hasPending bool
}

func newShadow(t *testing.T) *shadowTracker {
	return &shadowTracker{t: t, lastUsed: make(map[uint64]uint64), counter: make(map[uint64]uint64)}
}

// encrypt records an encryption of blk under c, failing on any pad reuse.
func (s *shadowTracker) encrypt(blk, c uint64) {
	if last, ok := s.lastUsed[blk]; ok && c <= last {
		s.t.Fatalf("pad reuse: block %d encrypted under counter %d after %d", blk, c, last)
	}
	s.lastUsed[blk] = c
	s.counter[blk] = c
}

// hook audits a group re-encryption: the scheme's view of the old counters
// must match the shadow (no counter value lost), and the new shared counter
// must be fresh for every block it re-encrypts.
func (s *shadowTracker) hook(groupStart uint64, oldCounters []uint64, newCounter uint64) {
	for j, old := range oldCounters {
		blk := groupStart + uint64(j)
		if want := s.counter[blk]; old != want {
			s.t.Fatalf("re-encryption of group %d reports old counter %d for block %d, shadow says %d",
				groupStart/GroupBlocks, old, blk, want)
		}
		if s.hasPending && blk == s.pending {
			continue // skipped at install; its Touch encrypts it instead
		}
		s.encrypt(blk, newCounter)
	}
}

// drive runs ops random writes against the scheme, checking counters and
// pads after every step.
func (s *shadowTracker) drive(sch Scheme, rng *rand.Rand, blocks []uint64, ops int) {
	stats := sch.Stats()
	for i := 0; i < ops; i++ {
		blk := blocks[rng.Intn(len(blocks))]
		s.pending, s.hasPending = blk, true
		out := sch.Touch(blk)
		s.hasPending = false
		s.encrypt(blk, out.Counter)

		// The outcome flags must agree with the stats counters.
		next := sch.Stats()
		if out.Reset != (next.Resets == stats.Resets+1) && out.Reset {
			s.t.Fatalf("op %d: Reset flag without Resets increment", i)
		}
		if out.Reencrypted != (next.Reencryptions == stats.Reencryptions+1) {
			s.t.Fatalf("op %d: Reencrypted flag disagrees with stats (%v, %d -> %d)",
				i, out.Reencrypted, stats.Reencryptions, next.Reencryptions)
		}
		stats = next

		// Counter must report exactly what the write was encrypted
		// under, for every block we track (spot-check a few).
		if got := sch.Counter(blk); got != s.counter[blk] {
			s.t.Fatalf("op %d: Counter(%d) = %d, shadow says %d", i, blk, got, s.counter[blk])
		}
	}
	// Final sweep: no block's counter regressed or drifted.
	for _, blk := range blocks {
		if got, want := sch.Counter(blk), s.counter[blk]; got != want {
			s.t.Fatalf("final: Counter(%d) = %d, shadow says %d", blk, got, want)
		}
	}
}

// kindsUnderTest covers every scheme through its full escalation ladder.
var kindsUnderTest = []Kind{Monolithic, Split, Delta, DualLength}

// TestPropertyNoPadReuse drives each scheme with several adversarial write
// mixes — hot single blocks (fast overflow), hot pairs in one and several
// delta-subgroups (extension vs re-encode), balanced groups (reset/
// re-encode), and uniform scatter — and asserts the nonce invariants hold
// through every escalation.
func TestPropertyNoPadReuse(t *testing.T) {
	mixes := []struct {
		name   string
		blocks func(rng *rand.Rand) []uint64
	}{
		{"hot-single", func(*rand.Rand) []uint64 { return []uint64{5} }},
		{"hot-pair-one-subgroup", func(*rand.Rand) []uint64 { return []uint64{3, 7} }},
		{"hot-pair-two-subgroups", func(*rand.Rand) []uint64 { return []uint64{3, DeltasPerGroup + 2} }},
		{"whole-group", func(*rand.Rand) []uint64 {
			blocks := make([]uint64, GroupBlocks)
			for i := range blocks {
				blocks[i] = uint64(i)
			}
			return blocks
		}},
		{"two-groups-skewed", func(rng *rand.Rand) []uint64 {
			var blocks []uint64
			for i := 0; i < GroupBlocks*2; i++ {
				blocks = append(blocks, uint64(i))
			}
			// Duplicate a few entries so some blocks run hot.
			for i := 0; i < 8; i++ {
				blocks = append(blocks, uint64(rng.Intn(GroupBlocks)))
			}
			return blocks
		}},
	}
	for _, kind := range kindsUnderTest {
		for _, mix := range mixes {
			for seed := int64(1); seed <= 3; seed++ {
				kind, mix, seed := kind, mix, seed
				t.Run(kind.String()+"/"+mix.name, func(t *testing.T) {
					t.Parallel()
					sch, err := NewScheme(kind)
					if err != nil {
						t.Fatal(err)
					}
					shadow := newShadow(t)
					sch.OnReencrypt(shadow.hook)
					rng := rand.New(rand.NewSource(seed))
					// Enough writes to overflow 7-bit deltas many
					// times over even spread across a whole group.
					shadow.drive(sch, rng, mix.blocks(rng), 40_000)
				})
			}
		}
	}
}

// TestPropertyEscalationLadder checks that the adversarial mixes actually
// reach the escalation machinery they were designed to reach — otherwise
// TestPropertyNoPadReuse would be vacuously passing on the easy paths.
func TestPropertyEscalationLadder(t *testing.T) {
	drive := func(kind Kind, blocks []uint64, ops int) Stats {
		sch, err := NewScheme(kind)
		if err != nil {
			t.Fatal(err)
		}
		shadow := newShadow(t)
		sch.OnReencrypt(shadow.hook)
		rng := rand.New(rand.NewSource(9))
		shadow.drive(sch, rng, blocks, ops)
		return sch.Stats()
	}

	// A lone hot block defeats both delta optimizations: re-encryption.
	if s := drive(Delta, []uint64{5}, 10_000); s.Reencryptions == 0 {
		t.Error("delta: hot single block never re-encrypted")
	}
	// A whole group written uniformly converges: resets or re-encodes
	// must absorb the overflow traffic.
	if s := drive(Delta, seqBlocks(GroupBlocks), 60_000); s.Resets+s.Reencodes == 0 {
		t.Error("delta: balanced group never reset or re-encoded")
	}
	// Dual-length extends exactly once per overflow episode for a hot
	// block confined to one subgroup.
	if s := drive(DualLength, []uint64{3, 7}, 10_000); s.Extensions == 0 {
		t.Error("dual-length: single-subgroup hot pair never extended")
	}
	// Split counters have no escape hatch: minor overflow re-encrypts.
	if s := drive(Split, []uint64{5}, 1_000); s.Reencryptions == 0 {
		t.Error("split: hot block never re-encrypted")
	}
	// Monolithic 56-bit counters never overflow in any feasible run.
	if s := drive(Monolithic, []uint64{5}, 10_000); s.Reencryptions != 0 {
		t.Error("monolithic: impossible re-encryption")
	}
}

func seqBlocks(n int) []uint64 {
	blocks := make([]uint64, n)
	for i := range blocks {
		blocks[i] = uint64(i)
	}
	return blocks
}
