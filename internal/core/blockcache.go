package core

import (
	"encoding/binary"
	"sync/atomic"
)

// Verified-block cache: the functional analogue of the on-chip cache slice
// that sits above the memory-encryption engine.
//
// A data block that passed MAC verification and was decrypted is trusted
// plaintext; in hardware it lives in the processor's cache hierarchy, inside
// the trust boundary, and later hits never reach the encryption engine at
// all. The counter cache (countercache.go) already models the metadata half
// of that boundary; this cache models the data half. On a hit a read pays
// neither the tree walk nor the MAC nor the AES pad — exactly like an LLC
// hit bypassing the memory controller.
//
// Concurrency: entries are epoch-versioned seqlocks, so a warm hit needs no
// lock at all. Every field of an entry is an atomic word; writers (always
// under the owning shard's lock, so at most one at a time) bump the entry's
// generation counter to an odd value, mutate, and bump it back to even.
// A lock-free reader snapshots the generation, copies the payload with
// atomic loads, and re-checks the generation: any torn read — a writer
// started or finished mid-copy — shows up as an odd or changed generation
// and the reader retries, falling back to the locked slow path after a
// bounded number of attempts. Because payload words are only ever accessed
// atomically, the protocol is race-detector-clean, and the double generation
// check makes a multi-word copy consistent without a lock.
//
// Whole-cache invalidation (tree-node tamper, metadata repair) is an O(1)
// epoch bump: entries stamp the cache epoch at install, and a probe treats
// any entry from an older epoch as empty. Eviction and epoch publication
// both run under the writer protocol, which is what keeps the lock-free
// path coherent with the fault model: every tamper/quarantine/repair path
// evicts or epoch-flushes the affected lines *before* the fault lands in
// DRAM state, so a probe that overlaps the eviction either retries (it saw
// the generation move) or is linearized before the fault landed. A reader
// can never observe stale-but-trusted plaintext after a fault is in place.
//
// Consistency points, all internal to the engine:
//   - storeBlock installs the fresh plaintext (write-allocate, so a
//     read-after-write hits);
//   - readVerified installs the just-decrypted plaintext on success;
//   - tamper/replay APIs evict or flush — injected faults land in DRAM, and
//     the campaign's job is to exercise the detection path a cold cache
//     would take, not to mask faults behind a warm one;
//   - repairMetadata flushes, so post-repair reads re-verify end to end;
//   - quarantineBlock evicts, so a poisoned block never serves cached
//     plaintext — which is also why the lock-free probe needs no quarantine
//     check: a quarantined block is by invariant never resident;
//   - a resumed engine starts cold.
//
// Group re-encryption changes ciphertext but not plaintext, so resident
// lines stay valid across counter-overflow sweeps — including the parallel
// sweep (reencrypt.go), whose workers never touch the cache; only the
// serial epilogue evicts the lines of blocks it quarantines.
//
// The cache is off by default (nil); ShardedEngine enables one per shard.
// That is the architectural point of the sharded design: each shard brings a
// private cache slice, so the aggregate trusted on-chip state — and with it
// lock-free read throughput over a fixed hot set — scales linearly with the
// partition count.

// blockCacheWords is the payload size in 64-bit words.
const blockCacheWords = BlockBytes / 8

// seqlockMaxRetries bounds a probe's retry loop. A retry only happens while
// a writer is mid-update on the same line, so more than a couple of retries
// means the line is contended and the locked slow path (which waits properly
// instead of spinning) is the right place to be.
const seqlockMaxRetries = 4

// blockCacheEntry is one direct-mapped, seqlock-protected line of verified
// plaintext.
type blockCacheEntry struct {
	// gen is the seqlock generation: odd while a writer is mid-update, even
	// and stable otherwise.
	gen atomic.Uint64
	// tag is the owning block number +1; 0 means empty.
	tag atomic.Uint64
	// epoch stamps the cache epoch at install; entries from older epochs are
	// treated as empty (O(1) whole-cache flush).
	epoch atomic.Uint64
	// pt is the verified plaintext, word-wise so lock-free readers can copy
	// it with atomic loads.
	pt [blockCacheWords]atomic.Uint64
}

// blockCache is a direct-mapped cache of verified, decrypted data blocks.
type blockCache struct {
	entries []blockCacheEntry
	mask    uint64
	epoch   atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// newBlockCache builds a cache with the given power-of-two entry count.
func newBlockCache(entries int) *blockCache {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil
	}
	return &blockCache{
		entries: make([]blockCacheEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// probe copies blk's verified plaintext into dst if resident, without taking
// any lock. retries reports how many torn-read restarts the seqlock needed
// (0 on the uncontended path). probe does not touch the hit/miss counters —
// the caller banks the outcome, since a miss here is re-probed by the locked
// slow path and must not be double-counted.
//
// Indexing is by the block number directly (like a physically-indexed
// cache), so a contiguous hot region up to the cache size is conflict-free.
func (c *blockCache) probe(blk uint64, dst []byte) (hit bool, retries int) {
	e := &c.entries[blk&c.mask]
	epoch := c.epoch.Load()
	for ; retries <= seqlockMaxRetries; retries++ {
		g := e.gen.Load()
		if g&1 == 1 {
			continue // writer mid-update; retry
		}
		if e.tag.Load() != blk+1 || e.epoch.Load() != epoch {
			return false, retries
		}
		var w [blockCacheWords]uint64
		for i := range w {
			w[i] = e.pt[i].Load()
		}
		if e.gen.Load() != g {
			continue // torn read; retry
		}
		for i, v := range w {
			binary.LittleEndian.PutUint64(dst[i*8:], v)
		}
		return true, retries
	}
	// Retry budget exhausted: a writer owns the line right now. Treat as a
	// miss; the locked slow path serializes behind it.
	return false, retries
}

// lookup serves blk into dst under the owning lock, banking the hit/miss
// counters. With the lock held no writer can race the probe, so the copy
// succeeds on the first attempt.
func (c *blockCache) lookup(blk uint64, dst []byte) bool {
	hit, _ := c.probe(blk, dst)
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return hit
}

// insert installs a copy of blk's verified plaintext, displacing whatever
// shared its slot. Caller holds the owning lock; the generation bumps
// publish the update to lock-free probes.
func (c *blockCache) insert(blk uint64, pt []byte) {
	e := &c.entries[blk&c.mask]
	e.gen.Add(1) // odd: writer in progress
	e.tag.Store(blk + 1)
	e.epoch.Store(c.epoch.Load())
	for i := 0; i < blockCacheWords; i++ {
		e.pt[i].Store(binary.LittleEndian.Uint64(pt[i*8:]))
	}
	e.gen.Add(1) // even: published
}

// evict drops blk's line if resident. Caller holds the owning lock. The
// generation protocol guarantees a concurrent probe either retries or
// completed before the eviction — it can never half-see it.
func (c *blockCache) evict(blk uint64) {
	e := &c.entries[blk&c.mask]
	if e.tag.Load() != blk+1 {
		return
	}
	e.gen.Add(1)
	e.tag.Store(0)
	e.gen.Add(1)
}

// flush empties the cache in O(1) by advancing the epoch: every resident
// entry is now stamped with an older epoch and probes treat it as empty.
// Probes already in flight that sampled the old epoch complete against
// pre-flush state, which linearizes them before the flush — the flush
// callers (tamper APIs, repairMetadata) all flush *before* mutating DRAM
// state, so no probe can pair stale cache contents with a landed fault.
func (c *blockCache) flush() {
	c.epoch.Add(1)
}
