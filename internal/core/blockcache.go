package core

// Verified-block cache: the functional analogue of the on-chip cache slice
// that sits above the memory-encryption engine.
//
// A data block that passed MAC verification and was decrypted is trusted
// plaintext; in hardware it lives in the processor's cache hierarchy, inside
// the trust boundary, and later hits never reach the encryption engine at
// all. The counter cache (countercache.go) already models the metadata half
// of that boundary; this cache models the data half. On a hit a read pays
// neither the tree walk nor the MAC nor the AES pad — exactly like an LLC
// hit bypassing the memory controller.
//
// Consistency points, all internal to the engine:
//   - storeBlock installs the fresh plaintext (write-allocate, so a
//     read-after-write hits);
//   - readVerified installs the just-decrypted plaintext on success;
//   - tamper/replay APIs evict or flush — injected faults land in DRAM, and
//     the campaign's job is to exercise the detection path a cold cache
//     would take, not to mask faults behind a warm one;
//   - repairMetadata flushes, so post-repair reads re-verify end to end;
//   - a resumed engine starts cold.
//
// Group re-encryption changes ciphertext but not plaintext, so resident
// lines stay valid across counter-overflow sweeps — including the parallel
// sweep (reencrypt.go), whose workers never touch the cache; only the
// serial epilogue evicts the lines of blocks it quarantines.
//
// The cache is off by default (nil); ShardedEngine enables one per shard.
// That is the architectural point of the sharded design on a single core:
// each shard brings a private cache slice, so the aggregate trusted on-chip
// state — and with it read throughput over a fixed hot set — scales
// linearly with the partition count, before any lock-level parallelism.

// blockCacheEntry is one direct-mapped line of verified plaintext.
type blockCacheEntry struct {
	blk uint64 // +1; 0 means empty
	pt  [BlockBytes]byte
}

// blockCache is a direct-mapped cache of verified, decrypted data blocks.
type blockCache struct {
	entries []blockCacheEntry
	mask    uint64
	hits    uint64
	misses  uint64
}

// newBlockCache builds a cache with the given power-of-two entry count.
func newBlockCache(entries int) *blockCache {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil
	}
	return &blockCache{
		entries: make([]blockCacheEntry, entries),
		mask:    uint64(entries - 1),
	}
}

// lookup returns the entry holding blk, or nil on miss. Indexing is by the
// block number directly (like a physically-indexed cache), so a contiguous
// hot region up to the cache size is conflict-free.
func (c *blockCache) lookup(blk uint64) *blockCacheEntry {
	e := &c.entries[blk&c.mask]
	if e.blk == blk+1 {
		c.hits++
		return e
	}
	c.misses++
	return nil
}

// insert installs a copy of blk's verified plaintext, displacing whatever
// shared its slot.
func (c *blockCache) insert(blk uint64, pt []byte) {
	e := &c.entries[blk&c.mask]
	e.blk = blk + 1
	copy(e.pt[:], pt)
}

// evict drops blk's line if resident.
func (c *blockCache) evict(blk uint64) {
	e := &c.entries[blk&c.mask]
	if e.blk == blk+1 {
		e.blk = 0
	}
}

// flush empties the cache.
func (c *blockCache) flush() {
	clear(c.entries)
}
