package core

import (
	"errors"
	"fmt"
	"sort"
)

// Recovery path for reads that fail verification.
//
// The engine distinguishes three tiers of response to a failed read, in the
// order a memory controller escalates:
//
//  1. Metadata repair. The counter state machine and the tree's top level
//     live inside the trust boundary (see Engine). When the DRAM copy of a
//     counter block or an off-chip tree node is corrupted, the truth is
//     still on-chip: the engine re-derives every resident counter image
//     from the scheme and rebuilds the integrity tree from the re-derived
//     images. Nothing attacker-reachable is ever re-authenticated — the
//     rebuild sources are trusted state only — so repair cannot be abused
//     to launder tampered metadata.
//
//  2. Bounded re-read retries. A transient bus or cell fault clears when
//     the controller re-issues the DRAM transaction; the retry hook lets a
//     fault model (internal/campaign) decide whether the fault was
//     transient. Persistent faults keep failing and fall through.
//
//  3. Quarantine. A block whose data-plane fault exceeds the correction
//     budget is poisoned: further reads fail fast with a QuarantineError
//     (machine-check "poison" semantics) until software rewrites the block
//     with fresh data, which releases it. Data in a quarantined block is
//     lost — but loudly, never silently.

// RecoveryPolicy bounds the retry-then-repair read path.
type RecoveryPolicy struct {
	// MaxRetries is the number of re-read attempts after a failed
	// verification (0 disables retries).
	MaxRetries int
	// RepairMetadata enables rebuilding counter images and the integrity
	// tree from trusted on-chip state when a counter-stage check fails.
	RepairMetadata bool
}

// DefaultRecoveryPolicy mirrors a controller that retries a failed read
// twice before raising a machine check, with metadata repair enabled.
func DefaultRecoveryPolicy() RecoveryPolicy {
	return RecoveryPolicy{MaxRetries: 2, RepairMetadata: true}
}

// SetRecoveryPolicy replaces the engine's recovery policy.
func (e *Engine) SetRecoveryPolicy(p RecoveryPolicy) {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	e.recovery = p
}

// RecoveryPolicy returns the active policy.
func (e *Engine) RecoveryPolicy() RecoveryPolicy { return e.recovery }

// SetRetryHook registers f, called with the failing block index before each
// retry re-read. It models the memory controller re-issuing the DRAM
// transaction: a fault injector reverts transient faults here, so the
// retry observes what a re-read of the physical medium would.
func (e *Engine) SetRetryHook(f func(blk uint64)) { e.retryHook = f }

// QuarantineError is returned for reads of a quarantined block: a previous
// access exhausted the correction budget and the block's contents cannot be
// trusted until rewritten.
type QuarantineError struct {
	// Addr is the byte address of the refused access.
	Addr uint64
}

// Error implements error.
func (e *QuarantineError) Error() string {
	return fmt.Sprintf("core: block at %#x is quarantined (uncorrectable fault; rewrite to release)", e.Addr)
}

// RecoverInfo extends ReadInfo with what the recovery path did.
type RecoverInfo struct {
	ReadInfo
	// Retries is the number of re-read attempts performed.
	Retries int
	// RetryRecovered is true when a retry re-read succeeded.
	RetryRecovered bool
	// MetadataRepaired is true when counter images and the tree were
	// rebuilt from trusted state during this read.
	MetadataRepaired bool
	// Quarantined is true when this read exhausted the policy and added
	// the block to the quarantine list.
	Quarantined bool
}

// ReadRecover is Read with the engine's recovery policy applied: on a
// failed verification it attempts metadata repair (counter-stage failures),
// then bounded re-read retries, and finally quarantines the block. The
// returned error is nil exactly when dst holds verified plaintext.
func (e *Engine) ReadRecover(addr uint64, dst []byte) (RecoverInfo, error) {
	var ri RecoverInfo
	info, err := e.Read(addr, dst)
	ri.ReadInfo = info
	if err == nil || e.cfg.DisableEncryption {
		return ri, err
	}
	var qe *QuarantineError
	if errors.As(err, &qe) {
		return ri, err // already poisoned: fail fast, no more work
	}
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		return ri, err // structural errors (bad address etc.) propagate
	}
	blk := addr / BlockBytes

	// Tier 1: counter-plane failures are repairable from trusted state.
	if e.recovery.RepairMetadata && ie.Stage == StageCounter {
		if rerr := e.repairMetadata(); rerr == nil {
			e.stats.MetadataRepairs.Add(1)
			ri.MetadataRepaired = true
			info, err = e.Read(addr, dst)
			ri.ReadInfo = info
			if err == nil {
				return ri, nil
			}
		}
	}

	// Tier 2: bounded re-read retries for transient faults.
	for t := 0; t < e.recovery.MaxRetries; t++ {
		e.stats.RetriedReads.Add(1)
		ri.Retries++
		if e.retryHook != nil {
			e.retryHook(blk)
		}
		info, err = e.Read(addr, dst)
		ri.ReadInfo = info
		if err == nil {
			e.stats.RetryRecoveries.Add(1)
			ri.RetryRecovered = true
			return ri, nil
		}
	}

	// Tier 3: the block is beyond recovery; poison it.
	e.quarantineBlock(blk)
	ri.Quarantined = true
	return ri, err
}

// quarantineBlock adds blk to the quarantine list.
func (e *Engine) quarantineBlock(blk uint64) {
	if e.bc != nil {
		e.bc.evict(blk) // a poisoned block must never serve cached plaintext
	}
	if e.quarantine == nil {
		e.quarantine = make(map[uint64]struct{})
	}
	if _, ok := e.quarantine[blk]; !ok {
		e.quarantine[blk] = struct{}{}
		e.stats.Quarantined.Add(1)
	}
}

// Quarantined reports whether the block at addr is quarantined.
func (e *Engine) Quarantined(addr uint64) bool {
	_, ok := e.quarantine[addr/BlockBytes]
	return ok
}

// QuarantineCount returns the number of quarantined blocks without
// allocating.
func (e *Engine) QuarantineCount() int { return len(e.quarantine) }

// QuarantineList returns the quarantined block indices in ascending order.
func (e *Engine) QuarantineList() []uint64 {
	if len(e.quarantine) == 0 {
		return nil
	}
	blks := make([]uint64, 0, len(e.quarantine))
	for blk := range e.quarantine {
		blks = append(blks, blk)
	}
	sort.Slice(blks, func(i, j int) bool { return blks[i] < blks[j] })
	return blks
}

// MetadataIndex returns the index of the counter block covering addr, for
// fault targeting and reporting.
func (e *Engine) MetadataIndex(addr uint64) uint64 {
	return e.scheme.MetadataBlock(addr / BlockBytes)
}

// MetaLeaf returns the tree-leaf index holding the given counter block, for
// targeting faults at a specific block's verification path.
func (e *Engine) MetaLeaf(midx uint64) uint64 { return e.metaLeaf(midx) }

// repairMetadata re-derives every resident counter-block image from the
// trusted scheme state machine and rebuilds the integrity tree from the
// re-derived images — the recovery analogue of a write-back metadata cache
// flushing clean copies over a corrupted DRAM line. Only trusted sources
// feed the rebuild, so attacker-modified bytes are never re-authenticated.
func (e *Engine) repairMetadata() error {
	// The cache may hold lines verified against the pre-repair tree; start
	// cold so every post-repair read re-verifies against the rebuilt one.
	if e.cc != nil {
		e.cc.flush()
	}
	if e.bc != nil {
		e.bc.flush()
	}
	// Re-packing every image and rebuilding the tree below subsumes any
	// deferred Merkle maintenance; drop the dirty set rather than flushing
	// leaves the rebuild is about to recompute anyway.
	if e.wp != nil {
		e.wp.reset()
	}
	e.images.forEach(func(midx uint64, img []byte) {
		packed := e.packer.PackMetadata(midx)
		copy(img, packed[:])
	})
	zero := make([]byte, BlockBytes)
	return e.tr.Rebuild(func(leaf uint64) []byte {
		if e.cfg.DataTree {
			if leaf < e.cfg.DataBlocks() {
				if ct := e.store.Ciphertext(leaf); ct != nil {
					return ct
				}
				return zero
			}
			return e.images.Load(leaf - e.cfg.DataBlocks())
		}
		return e.images.Load(leaf)
	})
}
