package core

import (
	"authmem/internal/ctr"
	"authmem/internal/mac"
)

// Overhead breaks down the DRAM storage cost of a design point, in bytes,
// for the Figure 1 accounting. The baseline (monolithic counters + inline
// MACs) lands around 22% of the protected region; the proposed combination
// (delta counters + MAC-in-ECC) lands around 2%.
type Overhead struct {
	// RegionBytes is the protected data size.
	RegionBytes uint64
	// CounterBytes is the counter-metadata storage.
	CounterBytes uint64
	// TreeBytes is the off-chip integrity-tree node storage.
	TreeBytes uint64
	// MACBytes is dedicated MAC storage (zero under MAC-in-ECC).
	MACBytes uint64
	// ECCBytes is the selected codec's check-bit provisioning: CheckBytes
	// per 64-byte block (12.5% for the 8-byte SEC-DED and MAC-in-ECC
	// lanes, 6.25% for the 4-byte residue code). It is reported for
	// context but not charged to the encryption scheme: a standard ECC
	// DIMM provisions it whether or not encryption is on. A narrower
	// codec (residue) quantifies how much of that provisioning the design
	// point actually needs.
	ECCBytes uint64
	// Codec is the resolved ECC codec name ("" with encryption disabled,
	// where the default DIMM provisioning is still reported).
	Codec string
	// TreeLevels is the off-chip read depth (node levels + the counter
	// block itself).
	TreeLevels int
}

// EncryptionOverheadBytes is the storage attributable to authenticated
// encryption: counters + tree + dedicated MACs.
func (o Overhead) EncryptionOverheadBytes() uint64 {
	return o.CounterBytes + o.TreeBytes + o.MACBytes
}

// EncryptionOverheadPct is EncryptionOverheadBytes relative to the region.
func (o Overhead) EncryptionOverheadPct() float64 {
	return 100 * float64(o.EncryptionOverheadBytes()) / float64(o.RegionBytes)
}

// ComputeOverhead derives the storage breakdown for a configuration without
// building any model state.
func ComputeOverhead(cfg Config) (Overhead, error) {
	if err := cfg.Validate(); err != nil {
		return Overhead{}, err
	}
	o := Overhead{RegionBytes: cfg.RegionBytes}
	if cfg.DisableEncryption {
		// No codec is selected; report the standard DIMM's 8-byte
		// SEC-DED provisioning for the Figure 1 baseline row.
		o.ECCBytes = cfg.DataBlocks() * 8
		return o, nil
	}
	cod, err := cfg.resolveCodec()
	if err != nil {
		return Overhead{}, err
	}
	o.Codec = cod.Name()
	o.ECCBytes = cfg.DataBlocks() * uint64(cod.CheckBytes())
	scheme, err := ctr.NewScheme(cfg.Scheme)
	if err != nil {
		return Overhead{}, err
	}
	metaBlocks := scheme.MetadataBlocks(cfg.DataBlocks())

	// Figure 1 counts raw metadata bits, as the paper does (56-bit
	// counters = 10.9%, not the 64-bit slots they occupy): grouped
	// schemes genuinely commit whole 64-byte blocks, the monolithic
	// baseline is charged its 56 counter bits.
	bitsPerBlock := scheme.MetadataBits()
	if cfg.Scheme == ctr.Monolithic {
		bitsPerBlock = ctr.RefBits
	}
	o.CounterBytes = uint64(float64(cfg.DataBlocks()) * bitsPerBlock / 8)

	leaves := metaBlocks
	if cfg.DataTree {
		leaves += cfg.DataBlocks()
	}
	geom := newTreeGeometry(leaves, cfg.OnChipTreeBytes)
	o.TreeBytes = geom.offChipNodes() * BlockBytes
	o.TreeLevels = geom.offChipLevels() + 1 // + the counter-block read

	if cfg.Placement == MACInline {
		// 56-bit tags per 64-byte block (SGX's ~11%).
		o.MACBytes = cfg.DataBlocks() * mac.TagBits / 8
	}
	return o, nil
}
