package core

import (
	"bytes"
	"sync"
	"testing"

	"authmem/internal/ctr"
)

// persistFixture is a known-good persisted engine image built once and
// shared by every fuzz execution: the engine, its plaintexts, the image
// bytes, and the pinned root digest.
type persistFixture struct {
	cfg   Config
	img   []byte
	root  RootDigest
	data  map[uint64][]byte // blk -> plaintext
	blkIx []uint64
}

var (
	fixtureOnce sync.Once
	fixture     persistFixture
	fixtureErr  error
)

func buildFixture() {
	cfg := smallCfg(ctr.Delta, MACInECC)
	e, err := NewEngine(cfg)
	if err != nil {
		fixtureErr = err
		return
	}
	data := make(map[uint64][]byte)
	var blks []uint64
	// A spread of blocks across several groups, some rewritten so
	// counters move past zero.
	for i := 0; i < 48; i++ {
		blk := uint64(i * 37 % 1024)
		pt := block(int64(i + 100))
		if err := e.Write(blk*BlockBytes, pt); err != nil {
			fixtureErr = err
			return
		}
		if _, seen := data[blk]; !seen {
			blks = append(blks, blk)
		}
		data[blk] = pt
	}
	var buf bytes.Buffer
	root, err := e.Persist(&buf)
	if err != nil {
		fixtureErr = err
		return
	}
	fixture = persistFixture{cfg: cfg, img: buf.Bytes(), root: root, data: data, blkIx: blks}
}

// FuzzPersistRoundTrip mutates a known-good persisted image — bit flips
// and truncations — and enforces the resume safety contract: a damaged
// image either fails Resume loudly, or resumes into an engine whose every
// read returns the original plaintext or a loud error. No mutation may
// produce an engine that silently serves wrong data.
//
// The spec bytes select flips (2-byte little-endian chunks addressing bits
// of the image); trunc shortens the image by trunc%len bytes. trunc==0 and
// an empty spec must round-trip perfectly — the fixture's own regression
// guard.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{}, uint16(1))                                   // drop one trailing byte
	f.Add([]byte{}, uint16(4096))                                // deep truncation
	f.Add([]byte{0x00, 0x00}, uint16(0))                         // magic bit
	f.Add([]byte{0x48, 0x00}, uint16(0))                         // config header bit
	f.Add([]byte{0x00, 0x04}, uint16(0))                         // data section bit
	f.Add([]byte{0xF0, 0x7F}, uint16(0))                         // late-image (tree) bit
	f.Add([]byte{0x20, 0x03, 0x21, 0x03, 0x22, 0x03}, uint16(0)) // burst
	f.Add([]byte{0x10, 0x01}, uint16(64))                        // flip + truncate together

	f.Fuzz(func(t *testing.T, spec []byte, trunc uint16) {
		fixtureOnce.Do(buildFixture)
		if fixtureErr != nil {
			t.Fatal(fixtureErr)
		}
		fx := &fixture

		img := append([]byte(nil), fx.img...)
		mutated := false
		for i := 0; i+1 < len(spec); i += 2 {
			bit := int(uint16(spec[i]) | uint16(spec[i+1])<<8)
			bit %= len(img) * 8
			img[bit/8] ^= 1 << uint(bit%8)
			mutated = true
		}
		if cut := int(trunc) % (len(img) + 1); cut > 0 {
			img = img[:len(img)-cut]
			mutated = true
		}

		root := fx.root
		e, err := Resume(fx.cfg, bytes.NewReader(img), &root)
		if err != nil {
			return // loud rejection: the safe outcome
		}
		// Resume accepted the image. Every stored block must now read
		// back correctly or fail loudly; silence plus wrong bytes is the
		// one forbidden result.
		dst := make([]byte, BlockBytes)
		for _, blk := range fx.blkIx {
			if _, err := e.Read(blk*BlockBytes, dst); err != nil {
				continue // detected at read time: loud
			}
			if !bytes.Equal(dst, fx.data[blk]) {
				t.Fatalf("silently wrong data at block %d after resume\nspec %x trunc %d", blk, spec, trunc)
			}
		}
		if !mutated {
			// The identity mutation must resume with zero read errors.
			for _, blk := range fx.blkIx {
				if _, err := e.Read(blk*BlockBytes, dst); err != nil {
					t.Fatalf("clean image: read %d failed: %v", blk, err)
				}
			}
		}
	})
}
