package core

import (
	"fmt"
	"sync"

	"authmem/internal/crypto"
	"authmem/internal/ctr"
	"authmem/internal/ecc"
)

// Parallel group re-encryption.
//
// A counter-overflow sweep re-encrypts a whole 64-block group while the
// writer waits — the longest synchronous stall on the write path. The sweep
// is embarrassingly parallel per block (verify + decrypt under the old
// counter, re-pad under the new, reseal), so it fans out across a bounded
// worker pool when enabled.
//
// Concurrency audit, because the serial engine shares mutable state freely:
//   - Crypto instances are single-owner: the pluggable backends keep
//     scratch buffers inside Stream/MAC instances (and the engine's main
//     Stream additionally holds the pad cache), so NOTHING crypto is shared
//     across workers. Each worker owns a full reencCrypto context — a
//     pad-cache-free Stream, a MAC, and (under MAC-in-ECC) a Verifier built
//     around that MAC — constructed once at EnableParallelReencrypt.
//   - blockStore.Materialize mutates the chunk table and presence bitmap
//     (shared words), so every block is materialized serially BEFORE the
//     fan-out; workers then only touch disjoint per-block arena slices
//     (ciphertext, meta lane, check bytes).
//   - Per-worker EngineStats bank correction events; merged after the join.
//   - The quarantine map and the block cache are only mutated after the
//     join, from the workers' skip verdicts.
//   - The classic data-tree design is excluded: its sealBlock refreshes
//     tree leaves whose interior nodes are shared between workers.

// reencParallelMinBlocks gates the fan-out: below this the per-goroutine
// overhead beats the MAC work saved.
const reencParallelMinBlocks = 16

// reencCrypto is one worker's private crypto context.
type reencCrypto struct {
	ks  crypto.Stream
	key crypto.MAC
	ver ecc.LaneVerifier // nil unless the codec carries the MAC
}

// EnableParallelReencrypt fans group re-encryption sweeps across up to
// workers goroutines (capped at the group size). workers < 2 disables the
// fan-out and returns to the serial sweep. The classic data-tree design is
// rejected: its per-block reseal updates shared tree nodes.
func (e *Engine) EnableParallelReencrypt(workers int) error {
	if workers < 0 {
		return fmt.Errorf("core: negative re-encryption worker count %d", workers)
	}
	if e.cfg.DisableEncryption {
		return nil // no counters, no sweeps
	}
	if workers < 2 {
		e.reencWorkers, e.reencCtx, e.reencStats = 0, nil, nil
		return nil
	}
	if e.cfg.DataTree {
		return fmt.Errorf("core: parallel re-encryption is unsupported with the classic data tree")
	}
	if workers > ctr.GroupBlocks {
		workers = ctr.GroupBlocks
	}
	ctxs := make([]reencCrypto, workers)
	for i := range ctxs {
		ks, err := e.be.NewStream(e.cfg.KeyMaterial[24:40])
		if err != nil {
			return err
		}
		// Deliberately no pad cache: the worker's stream must only carry
		// its own scratch, owned by that worker for the sweep.
		key, err := e.be.NewMAC(e.cfg.KeyMaterial[:24])
		if err != nil {
			return err
		}
		var ver ecc.LaneVerifier
		if e.mcod != nil {
			ver, err = e.mcod.NewVerifier(key, e.cfg.CorrectBits)
			if err != nil {
				return err
			}
		}
		ctxs[i] = reencCrypto{ks: ks, key: key, ver: ver}
	}
	e.reencCtx = ctxs
	e.reencStats = make([]EngineStats, workers)
	e.reencWorkers = workers
	return nil
}

// ReencryptWorkers returns the configured parallel-sweep worker count (0
// when the serial sweep is active).
func (e *Engine) ReencryptWorkers() int { return e.reencWorkers }

// reencryptGroupParallel is the fan-out body of reencryptGroup; it produces
// bit-identical arena state to the serial sweep. The dispatcher has already
// bumped GroupReencrypts, clamped n to the region, and sized groupBuf.
func (e *Engine) reencryptGroupParallel(groupStart uint64, oldCounters []uint64, newCounter uint64) {
	n := len(oldCounters)
	buf := e.groupBuf[:n*BlockBytes]

	// Serial prologue: classify blocks and materialize every slot the sweep
	// will install into, so workers never mutate shared store structure.
	// In-flight writes keep their slots untouched (fresh data follows);
	// never-written blocks become encrypted zeros, exactly as in the serial
	// sweep.
	var fresh, pend, skip [ctr.GroupBlocks]bool
	for j := 0; j < n; j++ {
		blk := groupStart + uint64(j)
		if e.pending(blk) {
			pend[j] = true
			continue
		}
		if e.store.Ciphertext(blk) == nil {
			fresh[j] = true
		}
		e.store.Materialize(blk)
	}

	workers := e.reencWorkers
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	used := 0
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		used++
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			st := &e.reencStats[w]
			cx := &e.reencCtx[w]
			// Stage: authenticate and decrypt this worker's blocks under
			// their old counters (same laundering rule as the serial sweep:
			// unverifiable blocks keep their old sealed bits).
			for j := lo; j < hi; j++ {
				blk := groupStart + uint64(j)
				pt := buf[j*BlockBytes : (j+1)*BlockBytes]
				if pend[j] || fresh[j] {
					clear(pt)
					continue
				}
				ct := e.store.Ciphertext(blk)
				if !e.verifyStoredWith(cx.key, cx.ver, blk, ct, oldCounters[j], st) {
					skip[j] = true
					clear(pt)
					continue
				}
				if err := cx.ks.XOR(pt, ct, blk*BlockBytes, oldCounters[j]); err != nil {
					panic(err) // sizes are fixed; cannot fail
				}
			}
			// Re-pad this worker's contiguous span under the new counter
			// through the batch kernel, tag it with one batched MAC sweep,
			// and reinstall.
			span := buf[lo*BlockBytes : hi*BlockBytes]
			spanAddr := (groupStart + uint64(lo)) * BlockBytes
			if err := cx.ks.XORBlocksBatch(span, span, spanAddr, newCounter); err != nil {
				panic(err)
			}
			var tags [ctr.GroupBlocks]uint64
			if err := cx.key.TagBatch(tags[:hi-lo], span, spanAddr, newCounter); err != nil {
				panic(err)
			}
			for j := lo; j < hi; j++ {
				blk := groupStart + uint64(j)
				if pend[j] || skip[j] {
					continue
				}
				ct := e.store.Ciphertext(blk) // materialized in the prologue
				copy(ct, buf[j*BlockBytes:(j+1)*BlockBytes])
				if err := e.sealBlockTagged(blk, ct, tags[j-lo]); err != nil {
					panic(err)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	// Serial epilogue: merge worker stats and apply quarantine verdicts
	// (map + block-cache mutations stay single-threaded).
	for w := 0; w < used; w++ {
		e.stats.merge(e.reencStats[w])
		e.reencStats[w] = EngineStats{}
	}
	e.stats.ParallelReencryptWorkers.Add(uint64(used))
	for j := 0; j < n; j++ {
		if skip[j] {
			e.quarantineBlock(groupStart + uint64(j))
		}
	}
	// The caller (Touch -> Write) commits the metadata image afterwards.
}
