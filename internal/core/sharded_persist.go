package core

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"io"

	"authmem/internal/tree"
)

// Sharded NVMM image format (version 2).
//
// A v2 image is a small header followed by the complete v1 engine image of
// every shard, in shard order:
//
//	magic "AMEMPST2" | u64 shardCount | shard0 v1 image | shard1 v1 image | ...
//
// Each section is exactly what Engine.Persist writes, so a shard restores
// through the ordinary Resume path with its ordinary per-counter-block tree
// verification. The trusted digest returned by PersistSharded pins the
// COMBINED root (tree.CombineRoots over the per-shard roots), so resuming
// with a pinned root detects rollback of any single shard section, not just
// of the whole file.
//
// ResumeSharded also accepts a v1 (monolithic) image when the shard count
// is 1 — the single-shard configuration derives no keys and combines no
// roots, so it is bit-compatible with the monolithic engine and its images.

// persistMagic2 identifies sharded engine images (format version 2).
var persistMagic2 = [8]byte{'A', 'M', 'E', 'M', 'P', 'S', 'T', '2'}

// Persist writes the sharded engine's full state to w and returns the
// combined root digest. All shards are locked for a consistent snapshot.
func (s *ShardedEngine) Persist(w io.Writer) (RootDigest, error) {
	var digest RootDigest
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	if len(s.shards) == 1 {
		// Bit-compatible with the monolithic format; the combined root
		// is the shard root.
		return s.shards[0].eng.Persist(w)
	}
	// Engine.Persist wraps its writer in bufio.NewWriter, which passes an
	// existing *bufio.Writer of sufficient size through unchanged — so the
	// per-shard sections land back-to-back on this one buffered stream.
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(persistMagic2[:]); err != nil {
		return digest, err
	}
	if err := writeU64(bw, uint64(len(s.shards))); err != nil {
		return digest, err
	}
	roots := make([][sha256.Size]byte, len(s.shards))
	for i, sh := range s.shards {
		r, err := sh.eng.Persist(bw)
		if err != nil {
			return digest, fmt.Errorf("core: persisting shard %d: %w", i, err)
		}
		roots[i] = r
	}
	digest = tree.CombineRoots(roots)
	return digest, bw.Flush()
}

// ResumeSharded rebuilds a sharded engine from a persisted image. cfg and
// shards must match the persisting configuration. If expectRoot is non-nil,
// the combined root recomputed from the restored shards must equal it —
// the rollback defense, now covering per-shard-section rollback too.
//
// With shards == 1, both v1 (monolithic) and v2 images are accepted.
func ResumeSharded(cfg Config, shards int, r io.Reader, expectRoot *RootDigest) (*ShardedEngine, error) {
	if err := ValidateShards(cfg, shards); err != nil {
		return nil, err
	}
	if cfg.DisableEncryption {
		return nil, fmt.Errorf("core: cannot resume with encryption disabled")
	}
	// Engine.Resume wraps its reader in bufio.NewReader, which passes an
	// existing *bufio.Reader of sufficient size through unchanged — each
	// shard section is consumed exactly, leaving the stream positioned at
	// the next one.
	br := bufio.NewReaderSize(r, 1<<16)
	magic, err := br.Peek(8)
	if err != nil {
		return nil, fmt.Errorf("core: reading image header: %w", err)
	}

	if [8]byte(magic) == persistMagic {
		// Monolithic v1 image: only a 1-shard engine is bit-compatible.
		if shards != 1 {
			return nil, fmt.Errorf("core: v1 image holds one shard, config asks for %d", shards)
		}
		eng, err := Resume(shardConfig(cfg, 1, 0), br, expectRoot)
		if err != nil {
			return nil, err
		}
		return wrapResumed(cfg, []*Engine{eng})
	}
	if [8]byte(magic) != persistMagic2 {
		return nil, fmt.Errorf("core: not an engine image")
	}
	if _, err := br.Discard(8); err != nil {
		return nil, err
	}
	gotShards, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if gotShards != uint64(shards) {
		return nil, fmt.Errorf("core: image holds %d shards, config asks for %d", gotShards, shards)
	}

	engines := make([]*Engine, shards)
	roots := make([][sha256.Size]byte, shards)
	for i := range engines {
		// Per-shard roots are checked jointly via the combined digest
		// below, so individual sections resume unpinned.
		eng, err := Resume(shardConfig(cfg, shards, i), br, nil)
		if err != nil {
			return nil, fmt.Errorf("core: resuming shard %d: %w", i, err)
		}
		engines[i] = eng
		roots[i] = eng.RootDigest()
	}
	if expectRoot != nil {
		if got := tree.CombineRoots(roots); got != *expectRoot {
			return nil, &IntegrityError{
				Reason: "persistent image combined root digest mismatch (rollback or corruption)",
				Stage:  StageResume,
			}
		}
	}
	return wrapResumed(cfg, engines)
}

// wrapResumed assembles a ShardedEngine around already-restored per-shard
// engines, re-enabling each shard's caches and write pipeline.
func wrapResumed(cfg Config, engines []*Engine) (*ShardedEngine, error) {
	s := &ShardedEngine{
		cfg:        cfg,
		shards:     make([]*engineShard, len(engines)),
		shardBytes: cfg.RegionBytes / uint64(len(engines)),
	}
	for i, eng := range engines {
		if err := eng.EnableCounterCache(shardCounterCacheEntries); err != nil {
			return nil, err
		}
		if err := eng.EnableBlockCache(shardBlockCacheEntries); err != nil {
			return nil, err
		}
		if err := enableShardPipeline(eng); err != nil {
			return nil, err
		}
		s.shards[i] = &engineShard{eng: eng, base: uint64(i) * s.shardBytes}
	}
	return s, nil
}
