package core

import (
	"fmt"
	"sync/atomic"
)

// Write pipeline: deferred Merkle maintenance with dirty-leaf write
// combining.
//
// The eager write path pays a root-to-leaf tree update (4-5 MACs for the
// paper's 512MB region) inside every Write. But the tree only has to be
// current when its state crosses the trust boundary — when a cold read must
// verify a counter image against it, when the root is exported, when an
// image is persisted. Between those points, N writes that land in the same
// counter-metadata leaf need only N cheap image re-packs and ONE deferred
// path recompute. That is the amortization argument of the paper's delta
// counters applied to the tree itself.
//
// Mechanics. A write still does everything the eager path does *except* the
// tree update: the counter image is re-packed from the trusted scheme state
// machine into the stored (DRAM) copy and the counter cache, and the leaf is
// marked dirty in a bounded per-engine dirty set. The deferred tree work
// runs at flush time, batched through tree.UpdateLeaves so leaves sharing
// interior nodes rehash them once.
//
// Flush triggers (the safety invariant: a flush always runs before tree
// state leaves the trust boundary):
//   - the dirty set reaching its epoch bound (maxDirty);
//   - a cold read of a dirty leaf (read-after-write; single-leaf flush);
//   - Persist and RootDigest — a persisted image or exported root always
//     reflects every accepted write;
//   - Scrub/ParallelScrub, whose correction path decodes stored images;
//   - an explicit Flush() call (the sharded engine's FlushAll).
//
// What a dirty window means for faults: while a leaf is dirty its stored
// image is attacker-reachable but not yet covered by the tree, so a cold
// read of it cannot use the tree walk. Instead the stored image is compared
// byte-for-byte against a fresh re-pack of the trusted state machine — a
// fault injected between write and flush is therefore *detected* (counter-
// stage IntegrityError, repairable from trusted state), never laundered: the
// tree is only ever fed images re-derived from the trusted scheme, so
// tampered DRAM bytes cannot be re-authenticated by a flush either.
//
// The pipeline is off by default (nil); ShardedEngine enables one per shard,
// giving the per-shard dirty sets their own epoch clocks.

// defaultMaxDirtyLeaves bounds the dirty set when the caller does not: one
// group's worth of leaves, i.e. at most one batched tree pass per 4KB of
// distinct touched groups.
const defaultMaxDirtyLeaves = 64

// writePipe is the deferred-maintenance state: a bounded dirty set over
// counter-metadata block indices, as a list (flush order) plus a bitset
// (membership), both preallocated so the write fast path never allocates.
type writePipe struct {
	maxDirty int
	dirty    []uint64 // dirty metadata-block indices, unordered
	bits     []uint64 // membership bitset over metadata blocks
	leafBuf  []uint64 // scratch for the batched tree update
	// pending mirrors len(dirty) atomically, so ShardedEngine.FlushAll can
	// skip quiescent shards without taking their locks (and without
	// allocating flush goroutines when the whole region is clean).
	pending atomic.Uint64
}

func newWritePipe(metaBlocks uint64, maxDirty int) *writePipe {
	return &writePipe{
		maxDirty: maxDirty,
		dirty:    make([]uint64, 0, maxDirty),
		bits:     make([]uint64, (metaBlocks+63)/64),
		leafBuf:  make([]uint64, 0, maxDirty),
	}
}

// isDirty reports whether midx has deferred tree maintenance pending.
func (p *writePipe) isDirty(midx uint64) bool {
	return p.bits[midx/64]>>(midx%64)&1 == 1
}

// markDirty records midx. combined reports that the leaf was already dirty
// (the write combined into a pending flush); full reports that the dirty
// set reached the epoch bound and the caller must flush.
func (p *writePipe) markDirty(midx uint64) (combined, full bool) {
	if p.isDirty(midx) {
		return true, false
	}
	p.bits[midx/64] |= 1 << (midx % 64)
	p.dirty = append(p.dirty, midx)
	p.pending.Store(uint64(len(p.dirty)))
	return false, len(p.dirty) >= p.maxDirty
}

// clear removes midx from the dirty set (single-leaf flush). The list is
// bounded by maxDirty, so the swap-remove scan is O(epoch bound).
func (p *writePipe) clear(midx uint64) {
	p.bits[midx/64] &^= 1 << (midx % 64)
	for i, m := range p.dirty {
		if m == midx {
			last := len(p.dirty) - 1
			p.dirty[i] = p.dirty[last]
			p.dirty = p.dirty[:last]
			p.pending.Store(uint64(last))
			return
		}
	}
}

// reset empties the dirty set without flushing — for callers that have just
// rebuilt the tree from trusted state (repairMetadata), which subsumes any
// pending flush.
func (p *writePipe) reset() {
	for _, m := range p.dirty {
		p.bits[m/64] &^= 1 << (m % 64)
	}
	p.dirty = p.dirty[:0]
	p.pending.Store(0)
}

// EnableWritePipeline attaches the deferred-maintenance write pipeline with
// the given dirty-set epoch bound (maxDirty <= 0 selects the default).
// Writes then mark counter leaves dirty instead of recomputing the tree
// path per block; see the file comment for the flush triggers and the
// safety invariant. Call before any traffic.
func (e *Engine) EnableWritePipeline(maxDirty int) error {
	if e.cfg.DisableEncryption {
		return nil // no metadata, nothing to defer
	}
	if maxDirty <= 0 {
		maxDirty = defaultMaxDirtyLeaves
	}
	e.wp = newWritePipe(e.scheme.MetadataBlocks(e.cfg.DataBlocks()), maxDirty)
	return nil
}

// DirtyLeaves returns the number of counter leaves with deferred tree
// maintenance pending (0 without a pipeline).
func (e *Engine) DirtyLeaves() int {
	if e.wp == nil {
		return 0
	}
	return len(e.wp.dirty)
}

// flushPending reports, without any lock, whether this engine has deferred
// Merkle maintenance outstanding. A false answer is a stable quiescence
// witness for operations that happened-before the call; writes landing
// concurrently may dirty leaves afterwards, exactly as they may after a
// locked flush returns.
func (e *Engine) flushPending() bool {
	return e.wp != nil && e.wp.pending.Load() > 0
}

// deferCommit is the pipeline's counterpart of commitMetadata: it stages
// midx's image from the trusted scheme state machine into the stored copy
// and the counter cache, marks the leaf dirty, and defers the tree path
// recompute. Reaching the epoch bound flushes inline.
func (e *Engine) deferCommit(midx uint64) error {
	img := e.packer.PackMetadata(midx)
	copy(e.images.Store(midx), img[:])
	if e.cc != nil {
		e.cc.update(midx, img[:])
	}
	if e.delta != nil {
		e.delta.mark(midx)
	}
	combined, full := e.wp.markDirty(midx)
	if combined {
		e.stats.WriteCombines.Add(1)
	}
	if full {
		return e.Flush()
	}
	return nil
}

// Flush writes back all deferred Merkle maintenance: every dirty leaf's
// image is re-packed from the trusted scheme state machine — the stored
// copy is attacker-reachable while dirty and must never feed the tree —
// and the tree paths above all dirty leaves are recomputed in one batched
// tree.UpdateLeaves pass. No-op without a pipeline or with a clean set.
func (e *Engine) Flush() error {
	if e.wp == nil || len(e.wp.dirty) == 0 {
		return nil
	}
	wp := e.wp
	wp.leafBuf = wp.leafBuf[:0]
	for _, midx := range wp.dirty {
		img := e.packer.PackMetadata(midx)
		copy(e.images.Store(midx), img[:])
		if e.cc != nil {
			e.cc.update(midx, img[:])
		}
		wp.leafBuf = append(wp.leafBuf, e.metaLeaf(midx))
	}
	e.stats.DeferredLeafFlushes.Add(uint64(len(wp.dirty)))
	wp.reset()
	return e.tr.UpdateLeaves(wp.leafBuf, e.leafImage)
}

// leafImage resolves a tree leaf to its stored image, inverting metaLeaf.
// Flush only passes leaves it has just re-packed from trusted state.
func (e *Engine) leafImage(leaf uint64) []byte {
	if e.cfg.DataTree {
		return e.images.Load(leaf - e.cfg.DataBlocks())
	}
	return e.images.Load(leaf)
}

// flushDirtyLeaf establishes trust in a dirty leaf on a cold read — the
// read-after-write flush trigger. The stale tree cannot vouch for the
// stored image, so it is compared byte-for-byte against a fresh re-pack of
// the trusted state machine: a mismatch means a fault landed in the dirty
// window and the read must fail (counter stage, repairable from trusted
// state; the leaf stays dirty for the repair path). On a match the leaf's
// tree path is recomputed and the leaf leaves the dirty set.
func (e *Engine) flushDirtyLeaf(midx uint64) ([]byte, bool) {
	img := e.packer.PackMetadata(midx)
	stored := e.images.Store(midx)
	if *(*[BlockBytes]byte)(stored) != img {
		return nil, false
	}
	e.wp.clear(midx)
	e.stats.DeferredLeafFlushes.Add(1)
	if err := e.tr.UpdateLeafFast(e.metaLeaf(midx), stored); err != nil {
		panic(fmt.Errorf("core: dirty-leaf flush: %w", err)) // geometry is fixed; cannot fail
	}
	return stored, true
}

// loadVerifiedImage fetches midx's stored image and establishes trust in it:
// dirty leaves take the trusted-state comparison and single-leaf flush;
// clean leaves take the ordinary integrity-tree walk. addr attributes any
// failure to the access that triggered the load.
func (e *Engine) loadVerifiedImage(addr, midx uint64) ([]byte, error) {
	if e.wp != nil && e.wp.isDirty(midx) {
		img, ok := e.flushDirtyLeaf(midx)
		if !ok {
			return nil, &IntegrityError{Addr: addr, Reason: "dirty counter metadata does not match trusted state (fault before flush)", Stage: StageCounter}
		}
		return img, nil
	}
	img := e.images.Load(midx)
	if err := e.tr.VerifyLeafFast(e.metaLeaf(midx), img); err != nil {
		return nil, &IntegrityError{Addr: addr, Reason: "counter metadata failed integrity tree check: " + err.Error(), Stage: StageCounter}
	}
	return img, nil
}
