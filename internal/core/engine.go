package core

import (
	"fmt"

	"authmem/internal/crypto"
	"authmem/internal/ctr"
	"authmem/internal/ecc"
	"authmem/internal/keystream"
	"authmem/internal/tree"
)

// padCacheEntries sizes the engine's keystream pad cache (64B per entry).
// One group re-encryption touches ctr.GroupBlocks pads; 1024 entries keep
// several recent groups plus ordinary read/write reuse resident.
const padCacheEntries = 1024

// Engine is a functional authenticated encrypted memory.
//
// The "DRAM contents" an attacker can touch are: ciphertext blocks, their
// ECC-lane bits (MAC-in-ECC) or inline MAC tags + SEC-DED bytes (baseline),
// counter-block images, and off-chip tree nodes. All are exposed through
// tamper APIs. The trust boundary holds the keys, the scheme state machine,
// and the top tree level.
//
// Uninitialized blocks read as zeros. When a group re-encryption sweeps
// over a block that was never written, the engine materializes it as an
// encrypted zero block — exactly the write traffic a hardware re-encryption
// engine would emit, which is what the NVMM wear accounting (§2.2) counts.
type Engine struct {
	cfg    Config
	scheme ctr.Scheme
	packer ctr.MetadataPacker
	tr     *tree.Tree

	// be is the selected crypto backend (cfg.CryptoBackend); ks and key
	// are its stream/MAC instances. Both are single-owner (the engine
	// serializes all accesses); parallel sweeps build per-worker
	// instances from be (see reencrypt.go).
	be  crypto.Backend
	ks  crypto.Stream
	key crypto.MAC

	// codec is the resolved check-lane codec (cfg.ECCCodec). Exactly one
	// of mcod/bcod is non-nil: mcod when the codec carries the MAC in the
	// 8-byte lane (MACInECC), bcod when the lane holds an inline tag and
	// the codec protects ciphertext only (MACInline). ver is mcod's
	// engine-owned verifier; parallel sweeps build per-worker verifiers
	// from mcod (see reencrypt.go).
	codec ecc.Codec
	mcod  ecc.MACCodec
	bcod  ecc.BlockCodec
	ver   ecc.LaneVerifier

	// store holds ciphertext plus the per-block metadata lane (ECC-lane
	// image under MACInECC, MAC tag under MACInline) and SEC-DED bytes;
	// images holds counter-block images. Both are chunked flat arenas
	// indexed by block number — see blockstore.go.
	store  *blockStore
	images *imageStore

	// groupBuf is the reusable plaintext staging buffer for group
	// re-encryption sweeps; spanBuf stages ciphertext runs for the batched
	// WriteBlocks seal path; tagBuf stages their batch-computed MAC tags.
	groupBuf []byte
	spanBuf  []byte
	tagBuf   [ctr.GroupBlocks]uint64

	// [pendingFirst, pendingLast] is the contiguous block span currently
	// being written (one block for Write, up to a metadata leaf's worth for
	// WriteBlocks), so the re-encryption hook does not emit stale
	// ciphertext for in-flight blocks under the new counter (hardware
	// merges the in-flight write instead).
	pendingFirst    uint64
	pendingLast     uint64
	hasPendingWrite bool

	// recovery configures the retry-then-repair read path; quarantine
	// holds blocks that exhausted it (see recovery.go). retryHook models
	// the controller re-issuing a DRAM read on retry.
	recovery   RecoveryPolicy
	quarantine map[uint64]struct{}
	retryHook  func(blk uint64)

	// cc is the optional verified-counter cache (countercache.go), nil
	// unless EnableCounterCache was called. ShardedEngine enables one per
	// shard.
	cc *counterCache

	// bc is the optional verified-block cache (blockcache.go), nil unless
	// EnableBlockCache was called. ShardedEngine enables one per shard.
	bc *blockCache

	// wp is the optional deferred-maintenance write pipeline
	// (writepipe.go), nil unless EnableWritePipeline was called.
	// ShardedEngine enables one per shard.
	wp *writePipe

	// delta is the optional dirty-group set behind incremental
	// persistence (persistinc.go), nil unless EnableDeltaTracking was
	// called. Marked at the metadata commit points, drained by
	// AppendDelta.
	delta *deltaTracker

	// Parallel group re-encryption (reencrypt.go): reencWorkers > 1 fans
	// the overflow sweep across a worker pool; reencCtx are the per-worker
	// crypto contexts (stream, MAC, verifier — single-owner, so one set
	// per worker) and reencStats the per-worker event counters merged
	// after each sweep.
	reencWorkers int
	reencCtx     []reencCrypto
	reencStats   []EngineStats

	// stats is the atomic event bank (stats.go): the lock-free read path and
	// stats snapshots touch it concurrently with locked traffic.
	stats engineCounters
}

// EngineStats aggregates functional-engine events.
type EngineStats struct {
	Reads             uint64
	Writes            uint64
	FreshReads        uint64 // reads of never-written blocks
	IntegrityFailures uint64
	CorrectedDataBits uint64
	CorrectedMACBits  uint64
	SECDEDCorrected   uint64 // baseline word corrections
	ScrubPasses       uint64
	ScrubFlagged      uint64
	GroupReencrypts   uint64 // counter-overflow group re-encryption sweeps

	// Recovery-path events (see recovery.go).
	RetriedReads       uint64 // re-read attempts after a failed verify
	RetryRecoveries    uint64 // reads salvaged by a retry re-read
	MetadataRepairs    uint64 // counter/tree repairs from trusted state
	Quarantined        uint64 // blocks added to the quarantine list
	QuarantineRefusals uint64 // reads refused because the block is quarantined

	// Verified-counter cache events (zero unless EnableCounterCache).
	MetaCacheHits   uint64 // reads that skipped the tree walk
	MetaCacheMisses uint64 // reads that walked the tree and filled the cache

	// Verified-block cache events (zero unless EnableBlockCache).
	DataCacheHits   uint64 // reads served as trusted plaintext, engine bypassed
	DataCacheMisses uint64 // reads that verified, decrypted, and filled the cache

	// Write-pipeline events (zero unless EnableWritePipeline).
	WriteCombines       uint64 // writes absorbed into an already-dirty counter leaf
	DeferredLeafFlushes uint64 // dirty counter leaves flushed (epoch + read-triggered)

	// Parallel re-encryption events (zero unless EnableParallelReencrypt).
	ParallelReencryptWorkers uint64 // workers dispatched by parallel group sweeps

	// Lock-free read-path events (see blockcache.go and ShardedEngine).
	LockFreeHits   uint64 // warm reads served with zero lock acquisitions
	SeqlockRetries uint64 // torn-read restarts across all seqlock probes
	SlowPathReads  uint64 // sharded reads that had to take a shard lock
}

// Add folds o's counts into s. Per-shard stats merge through this on read,
// so aggregation never becomes a serialization point.
func (s *EngineStats) Add(o EngineStats) {
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.FreshReads += o.FreshReads
	s.IntegrityFailures += o.IntegrityFailures
	s.CorrectedDataBits += o.CorrectedDataBits
	s.CorrectedMACBits += o.CorrectedMACBits
	s.SECDEDCorrected += o.SECDEDCorrected
	s.ScrubPasses += o.ScrubPasses
	s.ScrubFlagged += o.ScrubFlagged
	s.GroupReencrypts += o.GroupReencrypts
	s.RetriedReads += o.RetriedReads
	s.RetryRecoveries += o.RetryRecoveries
	s.MetadataRepairs += o.MetadataRepairs
	s.Quarantined += o.Quarantined
	s.QuarantineRefusals += o.QuarantineRefusals
	s.MetaCacheHits += o.MetaCacheHits
	s.MetaCacheMisses += o.MetaCacheMisses
	s.DataCacheHits += o.DataCacheHits
	s.DataCacheMisses += o.DataCacheMisses
	s.WriteCombines += o.WriteCombines
	s.DeferredLeafFlushes += o.DeferredLeafFlushes
	s.ParallelReencryptWorkers += o.ParallelReencryptWorkers
	s.LockFreeHits += o.LockFreeHits
	s.SeqlockRetries += o.SeqlockRetries
	s.SlowPathReads += o.SlowPathReads
}

// ReadInfo describes one successful read.
type ReadInfo struct {
	// Fresh is true when the block was never written (zeros returned).
	Fresh bool
	// CorrectedDataBits / CorrectedMACBits report repairs applied.
	CorrectedDataBits int
	CorrectedMACBits  int
	// HardwareChecks is the flip-and-check cost (MAC-in-ECC only).
	HardwareChecks int
}

// NewEngine builds a functional engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{cfg: cfg, recovery: DefaultRecoveryPolicy()}
	checkBytes := 0
	if !cfg.DisableEncryption {
		cod, err := cfg.resolveCodec() // Validate already vetted it
		if err != nil {
			return nil, err
		}
		e.codec = cod
		switch c := cod.(type) {
		case ecc.MACCodec:
			e.mcod = c
		case ecc.BlockCodec:
			e.bcod = c
			checkBytes = c.CheckBytes()
		default:
			return nil, fmt.Errorf("core: codec %q is neither a block nor a MAC codec", cod.Name())
		}
	}
	e.store = newBlockStore(cfg.DataBlocks(), checkBytes)
	if cfg.DisableEncryption {
		return e, nil
	}

	scheme, err := ctr.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	e.scheme = scheme
	packer, ok := scheme.(ctr.MetadataPacker)
	if !ok {
		return nil, fmt.Errorf("core: scheme %s cannot pack metadata", scheme.Name())
	}
	e.packer = packer

	e.be, err = crypto.Lookup(cfg.CryptoBackend)
	if err != nil {
		return nil, err
	}
	e.key, err = e.be.NewMAC(cfg.KeyMaterial[:24])
	if err != nil {
		return nil, err
	}
	e.ks, err = e.be.NewStream(cfg.KeyMaterial[24:40])
	if err != nil {
		return nil, err
	}
	// The engine serializes all cipher accesses, so the (non-concurrent)
	// pad cache is safe to enable here.
	if err := e.ks.EnablePadCache(padCacheEntries); err != nil {
		return nil, err
	}
	if e.mcod != nil {
		e.ver, err = e.mcod.NewVerifier(e.key, cfg.CorrectBits)
		if err != nil {
			return nil, err
		}
	}

	leaves := scheme.MetadataBlocks(cfg.DataBlocks())
	if cfg.DataTree {
		// Classic design: data blocks are leaves too; counter blocks
		// follow them in the leaf index space.
		leaves += cfg.DataBlocks()
	}
	e.tr, err = tree.New(e.key, leaves, cfg.OnChipTreeBytes)
	if err != nil {
		return nil, err
	}
	zero := make([]byte, BlockBytes)
	if err := e.tr.Rebuild(func(uint64) []byte { return zero }); err != nil {
		return nil, err
	}
	e.images = newImageStore(e.tr.Leaves())

	scheme.OnReencrypt(e.reencryptGroup)
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns cumulative event counts. Every counter is atomic, so the
// snapshot never takes a lock and never contends with the read path.
func (e *Engine) Stats() EngineStats {
	s := e.stats.snapshot()
	if e.cc != nil {
		s.MetaCacheHits = e.cc.hits.Load()
		s.MetaCacheMisses = e.cc.misses.Load()
	}
	if e.bc != nil {
		s.DataCacheHits = e.bc.hits.Load()
		s.DataCacheMisses = e.bc.misses.Load()
	}
	return s
}

// EnableCounterCache attaches a verified-counter cache with the given
// power-of-two entry count (see countercache.go). Counter blocks that passed
// their integrity-tree walk stay trusted until evicted, so resident reads
// skip the walk — the functional analogue of Table 1's on-chip metadata
// cache. Call before any traffic; entries must be a power of two.
func (e *Engine) EnableCounterCache(entries int) error {
	if e.cfg.DisableEncryption {
		return nil // no metadata to cache
	}
	cc := newCounterCache(entries)
	if cc == nil {
		return fmt.Errorf("core: counter cache entries %d not a positive power of two", entries)
	}
	e.cc = cc
	return nil
}

// EnableBlockCache attaches a verified-block cache with the given
// power-of-two entry count (see blockcache.go). Decrypted blocks that
// passed MAC verification stay trusted until evicted, so resident reads
// bypass the engine entirely — the functional analogue of the on-chip
// cache slice above the memory controller. Call before any traffic.
func (e *Engine) EnableBlockCache(entries int) error {
	if e.cfg.DisableEncryption {
		return nil // reads are already raw copies
	}
	bc := newBlockCache(entries)
	if bc == nil {
		return fmt.Errorf("core: block cache entries %d not a positive power of two", entries)
	}
	e.bc = bc
	return nil
}

// readCached serves blk from the verified-block cache when resident and not
// quarantined, copying the trusted plaintext into dst. Quarantined blocks
// always fall through to the verifying path so they are refused loudly.
// Caller holds the owning lock (or owns the engine outright).
func (e *Engine) readCached(blk uint64, dst []byte) bool {
	if e.bc == nil {
		return false
	}
	if e.quarantine != nil {
		if _, bad := e.quarantine[blk]; bad {
			return false
		}
	}
	return e.bc.lookup(blk, dst)
}

// ReadLockFree attempts to serve the (checked, shard-local) address from the
// verified-block cache without taking any lock, banking the read into the
// atomic counters on success. It is the ShardedEngine warm-read fast path:
// a hit costs zero lock acquisitions and zero allocations. A miss — cold
// line, epoch-flushed line, or a seqlock retry budget exhausted under an
// active writer — returns false and the caller takes the locked slow path.
//
// No quarantine check is needed: quarantineBlock evicts the line under the
// writer protocol before the block is poisoned, and every insert path first
// releases the block from quarantine, so a resident line implies a healthy
// block (see blockcache.go).
func (e *Engine) ReadLockFree(addr uint64, dst []byte) bool {
	if e.bc == nil || len(dst) != BlockBytes {
		return false
	}
	hit, retries := e.bc.probe(addr/BlockBytes, dst)
	if retries > 0 {
		e.stats.SeqlockRetries.Add(uint64(retries))
	}
	if !hit {
		return false
	}
	e.stats.Reads.Add(1)
	e.stats.LockFreeHits.Add(1)
	e.bc.hits.Add(1)
	return true
}

// SchemeStats returns the counter scheme's event counts (re-encryptions,
// resets, re-encodes, extensions).
func (e *Engine) SchemeStats() ctr.Stats {
	if e.scheme == nil {
		return ctr.Stats{}
	}
	return e.scheme.Stats()
}

// Tree exposes the integrity tree for attack experiments.
func (e *Engine) Tree() *tree.Tree { return e.tr }

// CryptoBackend returns the name of the selected crypto backend, or "" for
// an encryption-disabled engine.
func (e *Engine) CryptoBackend() string {
	if e.be == nil {
		return ""
	}
	return e.be.Name()
}

// ECCCodec returns the name of the resolved check-lane codec, or "" for an
// encryption-disabled engine.
func (e *Engine) ECCCodec() string {
	if e.codec == nil {
		return ""
	}
	return e.codec.Name()
}

// InlineCheckBits returns the number of stored check bits per block under
// the inline placement (the block codec's CheckBytes * 8), or 0 when the
// MAC-carrying lane is the only check storage. Fault campaigns use it to
// size the attackable ECC bit space.
func (e *Engine) InlineCheckBits() int {
	if e.bcod == nil {
		return 0
	}
	return e.bcod.CheckBytes() * 8
}

// PadCacheStats reports the keystream pad cache's hit/miss counts.
func (e *Engine) PadCacheStats() keystream.CacheStats {
	if e.ks == nil {
		return keystream.CacheStats{}
	}
	return e.ks.CacheStats()
}

func (e *Engine) checkAddr(addr uint64) error {
	if addr%BlockBytes != 0 {
		return fmt.Errorf("core: address %#x not %d-byte aligned", addr, BlockBytes)
	}
	if addr >= e.cfg.RegionBytes {
		return fmt.Errorf("core: address %#x outside %d-byte region", addr, e.cfg.RegionBytes)
	}
	return nil
}

// Write encrypts and stores one 64-byte block at the (aligned) address.
func (e *Engine) Write(addr uint64, plaintext []byte) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if len(plaintext) != BlockBytes {
		return fmt.Errorf("core: write must be %d bytes, got %d", BlockBytes, len(plaintext))
	}
	blk := addr / BlockBytes
	e.stats.Writes.Add(1)

	if e.cfg.DisableEncryption {
		copy(e.store.Materialize(blk), plaintext)
		return nil
	}

	e.pendingFirst, e.pendingLast, e.hasPendingWrite = blk, blk, true
	out := e.scheme.Touch(blk)
	e.hasPendingWrite = false

	if err := e.storeBlock(blk, plaintext, out.Counter); err != nil {
		return err
	}
	midx := e.scheme.MetadataBlock(blk)
	if e.wp != nil {
		return e.deferCommit(midx)
	}
	return e.commitMetadata(midx)
}

// pending reports whether blk is inside the in-flight write span.
func (e *Engine) pending(blk uint64) bool {
	return e.hasPendingWrite && blk >= e.pendingFirst && blk <= e.pendingLast
}

// storeBlock encrypts plaintext under counter directly into the block's
// arena slot and seals it (MAC, ECC bytes, data-tree leaf). Fresh data
// releases the block from quarantine: the faulty contents are overwritten.
func (e *Engine) storeBlock(blk uint64, plaintext []byte, counter uint64) error {
	delete(e.quarantine, blk)
	ct := e.store.Materialize(blk)
	if err := e.ks.XOR(ct, plaintext, blk*BlockBytes, counter); err != nil {
		return err
	}
	if err := e.sealBlock(blk, ct, counter); err != nil {
		return err
	}
	if e.bc != nil {
		e.bc.insert(blk, plaintext) // write-allocate: read-after-write hits
	}
	return nil
}

// sealBlock installs the MAC (and, in baseline mode, SEC-DED bytes) for the
// already-encrypted arena slice ct of block blk. Under the classic
// data-tree design it also refreshes the block's tree leaf.
func (e *Engine) sealBlock(blk uint64, ct []byte, counter uint64) error {
	addr := blk * BlockBytes
	tag, err := e.key.Tag(ct, addr, counter)
	if err != nil {
		return err
	}
	return e.sealBlockTagged(blk, ct, tag)
}

// sealBlockTagged is sealBlock with the MAC tag already computed — the
// install half of the batched seal paths, whose tags come from one
// TagBatch call over a whole span instead of per-block Tag calls.
func (e *Engine) sealBlockTagged(blk uint64, ct []byte, tag uint64) error {
	if e.mcod != nil {
		e.store.SetMeta(blk, e.mcod.PackLane(tag, ct))
	} else {
		e.store.SetMeta(blk, tag)
		if err := e.bcod.EncodeInto(e.store.Check(blk), ct); err != nil {
			return err
		}
	}
	if e.cfg.DataTree {
		if err := e.tr.UpdateLeafFast(blk, ct); err != nil {
			return err
		}
	}
	return nil
}

// metaLeaf maps a metadata block index to its tree leaf. Under the classic
// data-tree design, data blocks occupy leaves [0, DataBlocks) and counter
// blocks follow.
func (e *Engine) metaLeaf(midx uint64) uint64 {
	if e.cfg.DataTree {
		return e.cfg.DataBlocks() + midx
	}
	return midx
}

// commitMetadata refreshes the stored counter-block image and the tree path
// above it. The packed image comes from the trusted scheme state machine, so
// a resident counter-cache line is refreshed in place (write-back).
func (e *Engine) commitMetadata(midx uint64) error {
	img := e.packer.PackMetadata(midx)
	copy(e.images.Store(midx), img[:])
	if e.cc != nil {
		e.cc.update(midx, img[:])
	}
	if e.delta != nil {
		e.delta.mark(midx)
	}
	return e.tr.UpdateLeafFast(e.metaLeaf(midx), img[:])
}

// reencryptGroup is the scheme's re-encryption hook: decrypt every block of
// the group under its old counter, re-pad the whole group under the shared
// new counter in one batched XORBlocks sweep, and reinstall the results.
func (e *Engine) reencryptGroup(groupStart uint64, oldCounters []uint64, newCounter uint64) {
	e.stats.GroupReencrypts.Add(1)
	n := len(oldCounters)
	if rem := e.cfg.DataBlocks() - groupStart; uint64(n) > rem {
		n = int(rem)
	}
	if e.groupBuf == nil {
		e.groupBuf = make([]byte, ctr.GroupBlocks*BlockBytes)
	}
	if e.reencWorkers > 1 && n >= reencParallelMinBlocks {
		e.reencryptGroupParallel(groupStart, oldCounters[:n], newCounter)
		return
	}
	buf := e.groupBuf[:n*BlockBytes]

	// Recover each block's plaintext under its old counter. Never-written
	// blocks materialize as zeros; the in-flight write's slot is staged as
	// zeros too but skipped at install time (its fresh data follows).
	//
	// Each stored block is authenticated (and repaired, if correctable)
	// before it is decrypted: re-sealing an unverified ciphertext would
	// launder a memory fault into a validly-MACed block — a silent
	// corruption no later read could catch. Blocks that fail verification
	// keep their old sealed bits and are quarantined; with the group now
	// on the new counter, any read of them fails the MAC until software
	// rewrites the block.
	var skip [ctr.GroupBlocks]bool
	var vst EngineStats // correction events, published once after the loop
	for j := 0; j < n; j++ {
		blk := groupStart + uint64(j)
		pt := buf[j*BlockBytes : (j+1)*BlockBytes]
		ct := e.store.Ciphertext(blk)
		if ct == nil || e.pending(blk) {
			clear(pt)
			continue
		}
		if !e.verifyStored(blk, ct, oldCounters[j], &vst) {
			e.quarantineBlock(blk)
			skip[j] = true
			clear(pt)
			continue
		}
		if err := e.ks.XOR(pt, ct, blk*BlockBytes, oldCounters[j]); err != nil {
			panic(err) // sizes are fixed; cannot fail
		}
	}
	e.stats.merge(vst)

	// One batched pad sweep re-encrypts the whole group in place, and one
	// batched MAC sweep computes every block's tag; the per-block loop
	// only installs. (Skipped/pending slots get tags too — they hold
	// encrypted zeros — but the waste is a couple of blocks per sweep and
	// keeps the kernel a single contiguous dispatch.)
	if err := e.ks.XORBlocksBatch(buf, buf, groupStart*BlockBytes, newCounter); err != nil {
		panic(err)
	}
	if err := e.key.TagBatch(e.tagBuf[:n], buf, groupStart*BlockBytes, newCounter); err != nil {
		panic(err)
	}

	for j := 0; j < n; j++ {
		blk := groupStart + uint64(j)
		if e.pending(blk) {
			continue // the in-flight write supplies fresh data
		}
		if skip[j] {
			continue // quarantined: old sealed bits stay, reads must fail
		}
		ct := e.store.Materialize(blk)
		copy(ct, buf[j*BlockBytes:(j+1)*BlockBytes])
		if err := e.sealBlockTagged(blk, ct, e.tagBuf[j]); err != nil {
			panic(err)
		}
	}
	// The caller (Touch -> Write) commits the metadata image afterwards.
}

// verifyStored authenticates a resident block's stored bits under counter,
// repairing correctable faults in place exactly as a read would; false
// means the block is uncorrectable and must not be trusted. Correction
// events land in st so parallel sweep workers can bank them race-free.
func (e *Engine) verifyStored(blk uint64, ct []byte, counter uint64, st *EngineStats) bool {
	return e.verifyStoredWith(e.key, e.ver, blk, ct, counter, st)
}

// verifyStoredWith is verifyStored against an explicit MAC/verifier pair:
// parallel sweep workers pass their own single-owner instances instead of
// the engine's (see reencrypt.go).
func (e *Engine) verifyStoredWith(key crypto.MAC, ver ecc.LaneVerifier, blk uint64, ct []byte, counter uint64, st *EngineStats) bool {
	if e.mcod != nil {
		lane, out, err := ver.VerifyAndCorrect(ct, e.store.Meta(blk), blk*BlockBytes, counter)
		if err != nil {
			panic(err) // sizes are fixed; cannot fail
		}
		if !out.OK {
			return false
		}
		st.CorrectedDataBits += uint64(out.CorrectedDataBits)
		st.CorrectedMACBits += uint64(out.CorrectedMACBits)
		e.store.SetMeta(blk, lane)
		return true
	}
	outcome, err := e.bcod.DecodeAndCorrect(ct, e.store.Check(blk))
	if err != nil {
		panic(err)
	}
	if !outcome.Clean() {
		return false
	}
	st.SECDEDCorrected += uint64(outcome.CorrectedBits)
	ok, err := key.Verify(ct, blk*BlockBytes, counter, e.store.Meta(blk))
	if err != nil {
		panic(err)
	}
	return ok
}

// Read verifies, decrypts, and returns one 64-byte block.
// Correctable memory faults are repaired in place (write-back scrubbing);
// integrity violations return an *IntegrityError.
func (e *Engine) Read(addr uint64, dst []byte) (ReadInfo, error) {
	var info ReadInfo
	if err := e.checkAddr(addr); err != nil {
		return info, err
	}
	if len(dst) != BlockBytes {
		return info, fmt.Errorf("core: read buffer must be %d bytes, got %d", BlockBytes, len(dst))
	}
	blk := addr / BlockBytes
	e.stats.Reads.Add(1)

	if e.cfg.DisableEncryption {
		if ct := e.store.Ciphertext(blk); ct != nil {
			copy(dst, ct)
		} else {
			clear(dst)
			info.Fresh = true
		}
		return info, nil
	}

	// A verified-block cache hit is trusted plaintext: no counter fetch,
	// no tree walk, no MAC, no decryption.
	if e.readCached(blk, dst) {
		return info, nil
	}

	// Fetch and freshness-check the counter. A counter-cache hit serves
	// the already-verified image and skips the tree walk.
	midx := e.scheme.MetadataBlock(blk)
	if e.cc != nil {
		if ent := e.cc.lookup(midx); ent != nil {
			counter, err := ent.counter(e, blk)
			if err != nil {
				e.stats.IntegrityFailures.Add(1)
				return info, &IntegrityError{Addr: addr, Reason: "counter metadata undecodable: " + err.Error(), Stage: StageCounter}
			}
			return e.readVerified(blk, counter, dst)
		}
	}
	img, verr := e.loadVerifiedImage(addr, midx)
	if verr != nil {
		e.stats.IntegrityFailures.Add(1)
		return info, verr
	}
	if e.cc != nil {
		e.cc.insert(midx, img)
	}
	counter, err := e.decodeCounter(img, blk)
	if err != nil {
		e.stats.IntegrityFailures.Add(1)
		return info, &IntegrityError{Addr: addr, Reason: "counter metadata undecodable: " + err.Error(), Stage: StageCounter}
	}
	return e.readVerified(blk, counter, dst)
}

// readVerified finishes a read whose counter has already been fetched and
// tree-verified: it authenticates the ciphertext (repairing correctable
// faults in place) and decrypts into dst.
func (e *Engine) readVerified(blk, counter uint64, dst []byte) (ReadInfo, error) {
	var info ReadInfo
	addr := blk * BlockBytes

	if e.quarantine != nil {
		if _, bad := e.quarantine[blk]; bad {
			e.stats.QuarantineRefusals.Add(1)
			return info, &QuarantineError{Addr: addr}
		}
	}

	ct := e.store.Ciphertext(blk)
	if ct == nil {
		if counter != 0 {
			e.stats.IntegrityFailures.Add(1)
			return info, &IntegrityError{Addr: addr, Reason: "counter advanced but block missing", Stage: StageData}
		}
		clear(dst)
		info.Fresh = true
		e.stats.FreshReads.Add(1)
		return info, nil
	}

	if e.mcod != nil {
		lane, out, err := e.ver.VerifyAndCorrect(ct, e.store.Meta(blk), addr, counter)
		if err != nil {
			return info, err
		}
		info.HardwareChecks = out.HardwareChecks
		if !out.OK {
			e.stats.IntegrityFailures.Add(1)
			return info, &IntegrityError{Addr: addr, Reason: "MAC verification failed (tamper or uncorrectable fault)", Stage: StageData}
		}
		info.CorrectedDataBits = out.CorrectedDataBits
		info.CorrectedMACBits = out.CorrectedMACBits
		e.stats.CorrectedDataBits.Add(uint64(out.CorrectedDataBits))
		e.stats.CorrectedMACBits.Add(uint64(out.CorrectedMACBits))
		e.store.SetMeta(blk, lane) // corrected bits written back

	} else { // MACInline baseline: the block codec first, then the MAC.
		outcome, err := e.bcod.DecodeAndCorrect(ct, e.store.Check(blk))
		if err != nil {
			return info, err
		}
		if !outcome.Clean() {
			e.stats.IntegrityFailures.Add(1)
			return info, &IntegrityError{Addr: addr, Reason: "uncorrectable " + e.bcod.Name() + " memory error", Stage: StageData}
		}
		info.CorrectedDataBits = outcome.CorrectedBits
		e.stats.SECDEDCorrected.Add(uint64(outcome.CorrectedBits))
		okTag, err := e.key.Verify(ct, addr, counter, e.store.Meta(blk))
		if err != nil {
			return info, err
		}
		if !okTag {
			e.stats.IntegrityFailures.Add(1)
			return info, &IntegrityError{Addr: addr, Reason: "MAC verification failed", Stage: StageData}
		}
	}

	// Classic data-tree design: the (possibly just-repaired) ciphertext
	// must also verify against its tree leaf — this is the per-access
	// tree walk BMTs exist to avoid.
	if e.cfg.DataTree {
		if err := e.tr.VerifyLeafFast(blk, ct); err != nil {
			e.stats.IntegrityFailures.Add(1)
			return info, &IntegrityError{Addr: addr, Reason: "data block failed integrity tree check: " + err.Error(), Stage: StageDataTree}
		}
	}

	if err := e.ks.XOR(dst, ct, addr, counter); err != nil {
		return info, err
	}
	if e.bc != nil {
		e.bc.insert(blk, dst)
	}
	return info, nil
}

// counterSlot returns blk's counter index within its metadata block, for
// per-slot decode memoization.
func (e *Engine) counterSlot(blk uint64) int {
	if e.cfg.Scheme == ctr.Monolithic {
		return int(blk % ctr.CountersPerMetadataBlock)
	}
	return int(blk % uint64(e.scheme.GroupSize()))
}

// decodeCounter extracts a block's counter from the stored (attacker-
// reachable) metadata image, using the scheme's hardware decode path.
func (e *Engine) decodeCounter(img []byte, blk uint64) (uint64, error) {
	image := *(*[BlockBytes]byte)(img)
	slot := int(blk % uint64(e.scheme.GroupSize()))
	switch e.cfg.Scheme {
	case ctr.Monolithic:
		counters := ctr.UnpackMonolithic(image)
		return counters[blk%ctr.CountersPerMetadataBlock], nil
	case ctr.Split:
		major, minors := ctr.UnpackSplit(image)
		return major<<ctr.MinorBits | uint64(minors[slot]), nil
	case ctr.Delta:
		return ctr.DecodeCounter(image, slot)
	case ctr.DualLength:
		return ctr.DecodeDualCounter(image, slot)
	default:
		return 0, fmt.Errorf("core: unknown scheme kind")
	}
}
