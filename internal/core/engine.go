package core

import (
	"fmt"

	"authmem/internal/ctr"
	"authmem/internal/ecc"
	"authmem/internal/keystream"
	"authmem/internal/mac"
	"authmem/internal/macecc"
	"authmem/internal/tree"
)

// Engine is a functional authenticated encrypted memory.
//
// The "DRAM contents" an attacker can touch are: ciphertext blocks, their
// ECC-lane bits (MAC-in-ECC) or inline MAC tags + SEC-DED bytes (baseline),
// counter-block images, and off-chip tree nodes. All are exposed through
// tamper APIs. The trust boundary holds the keys, the scheme state machine,
// and the top tree level.
//
// Uninitialized blocks read as zeros. When a group re-encryption sweeps
// over a block that was never written, the engine materializes it as an
// encrypted zero block — exactly the write traffic a hardware re-encryption
// engine would emit, which is what the NVMM wear accounting (§2.2) counts.
type Engine struct {
	cfg    Config
	scheme ctr.Scheme
	packer ctr.MetadataPacker
	tr     *tree.Tree
	ks     *keystream.Cipher
	key    *mac.Key
	ver    *macecc.Verifier

	data       map[uint64]*[BlockBytes]byte // ciphertext per block index
	eccMeta    map[uint64]macecc.Meta       // MAC-in-ECC lane bits
	inlineTag  map[uint64]uint64            // baseline MAC tags
	dataCheck  map[uint64]*[8]uint8         // baseline SEC-DED bytes
	metaImages map[uint64]*[BlockBytes]byte // counter-block storage

	// pendingWrite is the block index currently being written, so the
	// re-encryption hook does not emit a stale ciphertext for it under
	// the new counter (hardware merges the in-flight write instead).
	pendingWrite    uint64
	hasPendingWrite bool

	stats EngineStats
}

// EngineStats aggregates functional-engine events.
type EngineStats struct {
	Reads             uint64
	Writes            uint64
	FreshReads        uint64 // reads of never-written blocks
	IntegrityFailures uint64
	CorrectedDataBits uint64
	CorrectedMACBits  uint64
	SECDEDCorrected   uint64 // baseline word corrections
	ScrubPasses       uint64
	ScrubFlagged      uint64
}

// ReadInfo describes one successful read.
type ReadInfo struct {
	// Fresh is true when the block was never written (zeros returned).
	Fresh bool
	// CorrectedDataBits / CorrectedMACBits report repairs applied.
	CorrectedDataBits int
	CorrectedMACBits  int
	// HardwareChecks is the flip-and-check cost (MAC-in-ECC only).
	HardwareChecks int
}

// NewEngine builds a functional engine for the configuration.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:        cfg,
		data:       make(map[uint64]*[BlockBytes]byte),
		eccMeta:    make(map[uint64]macecc.Meta),
		inlineTag:  make(map[uint64]uint64),
		dataCheck:  make(map[uint64]*[8]uint8),
		metaImages: make(map[uint64]*[BlockBytes]byte),
	}
	if cfg.DisableEncryption {
		return e, nil
	}

	scheme, err := ctr.NewScheme(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	e.scheme = scheme
	packer, ok := scheme.(ctr.MetadataPacker)
	if !ok {
		return nil, fmt.Errorf("core: scheme %s cannot pack metadata", scheme.Name())
	}
	e.packer = packer

	e.key, err = mac.NewKey(cfg.KeyMaterial[:24])
	if err != nil {
		return nil, err
	}
	e.ks, err = keystream.New(cfg.KeyMaterial[24:40])
	if err != nil {
		return nil, err
	}
	if cfg.Placement == MACInECC {
		e.ver, err = macecc.NewVerifier(e.key, cfg.CorrectBits)
		if err != nil {
			return nil, err
		}
	}

	leaves := scheme.MetadataBlocks(cfg.DataBlocks())
	if cfg.DataTree {
		// Classic design: data blocks are leaves too; counter blocks
		// follow them in the leaf index space.
		leaves += cfg.DataBlocks()
	}
	e.tr, err = tree.New(e.key, leaves, cfg.OnChipTreeBytes)
	if err != nil {
		return nil, err
	}
	zero := make([]byte, BlockBytes)
	if err := e.tr.Rebuild(func(uint64) []byte { return zero }); err != nil {
		return nil, err
	}

	scheme.OnReencrypt(e.reencryptGroup)
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns cumulative event counts.
func (e *Engine) Stats() EngineStats { return e.stats }

// SchemeStats returns the counter scheme's event counts (re-encryptions,
// resets, re-encodes, extensions).
func (e *Engine) SchemeStats() ctr.Stats {
	if e.scheme == nil {
		return ctr.Stats{}
	}
	return e.scheme.Stats()
}

// Tree exposes the integrity tree for attack experiments.
func (e *Engine) Tree() *tree.Tree { return e.tr }

func (e *Engine) checkAddr(addr uint64) error {
	if addr%BlockBytes != 0 {
		return fmt.Errorf("core: address %#x not %d-byte aligned", addr, BlockBytes)
	}
	if addr >= e.cfg.RegionBytes {
		return fmt.Errorf("core: address %#x outside %d-byte region", addr, e.cfg.RegionBytes)
	}
	return nil
}

// Write encrypts and stores one 64-byte block at the (aligned) address.
func (e *Engine) Write(addr uint64, plaintext []byte) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if len(plaintext) != BlockBytes {
		return fmt.Errorf("core: write must be %d bytes, got %d", BlockBytes, len(plaintext))
	}
	blk := addr / BlockBytes
	e.stats.Writes++

	if e.cfg.DisableEncryption {
		var buf [BlockBytes]byte
		copy(buf[:], plaintext)
		e.data[blk] = &buf
		return nil
	}

	e.pendingWrite, e.hasPendingWrite = blk, true
	out := e.scheme.Touch(blk)
	e.hasPendingWrite = false

	if err := e.storeBlock(blk, plaintext, out.Counter); err != nil {
		return err
	}
	return e.commitMetadata(e.scheme.MetadataBlock(blk))
}

// storeBlock encrypts plaintext under counter and installs ciphertext + MAC
// (and, in baseline mode, SEC-DED bytes). Under the classic data-tree
// design it also refreshes the block's tree leaf.
func (e *Engine) storeBlock(blk uint64, plaintext []byte, counter uint64) error {
	addr := blk * BlockBytes
	buf := new([BlockBytes]byte)
	if err := e.ks.XOR(buf[:], plaintext, addr, counter); err != nil {
		return err
	}
	tag, err := e.key.Tag(buf[:], addr, counter)
	if err != nil {
		return err
	}
	e.data[blk] = buf
	if e.cfg.Placement == MACInECC {
		e.eccMeta[blk] = macecc.PackMeta(tag, buf[:])
	} else {
		e.inlineTag[blk] = tag
		check, err := ecc.EncodeBlock(buf[:])
		if err != nil {
			return err
		}
		e.dataCheck[blk] = &check
	}
	if e.cfg.DataTree {
		if _, err := e.tr.UpdateLeaf(blk, buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// metaLeaf maps a metadata block index to its tree leaf. Under the classic
// data-tree design, data blocks occupy leaves [0, DataBlocks) and counter
// blocks follow.
func (e *Engine) metaLeaf(midx uint64) uint64 {
	if e.cfg.DataTree {
		return e.cfg.DataBlocks() + midx
	}
	return midx
}

// commitMetadata refreshes the stored counter-block image and the tree path
// above it.
func (e *Engine) commitMetadata(midx uint64) error {
	img := e.packer.PackMetadata(midx)
	stored := new([BlockBytes]byte)
	copy(stored[:], img[:])
	e.metaImages[midx] = stored
	_, err := e.tr.UpdateLeaf(e.metaLeaf(midx), img[:])
	return err
}

// reencryptGroup is the scheme's re-encryption hook: decrypt every block of
// the group under its old counter and re-encrypt under the shared new one.
func (e *Engine) reencryptGroup(groupStart uint64, oldCounters []uint64, newCounter uint64) {
	for j, oldCtr := range oldCounters {
		blk := groupStart + uint64(j)
		if blk >= e.cfg.DataBlocks() {
			break
		}
		if e.hasPendingWrite && blk == e.pendingWrite {
			continue // the in-flight write supplies fresh data
		}
		var pt [BlockBytes]byte
		if ct, ok := e.data[blk]; ok {
			addr := blk * BlockBytes
			if err := e.ks.XOR(pt[:], ct[:], addr, oldCtr); err != nil {
				panic(err) // sizes are fixed; cannot fail
			}
		}
		// Never-written blocks materialize as encrypted zeros.
		if err := e.storeBlock(blk, pt[:], newCounter); err != nil {
			panic(err)
		}
	}
	// The caller (Touch -> Write) commits the metadata image afterwards.
}

// Read verifies, decrypts, and returns one 64-byte block.
// Correctable memory faults are repaired in place (write-back scrubbing);
// integrity violations return an *IntegrityError.
func (e *Engine) Read(addr uint64, dst []byte) (ReadInfo, error) {
	var info ReadInfo
	if err := e.checkAddr(addr); err != nil {
		return info, err
	}
	if len(dst) != BlockBytes {
		return info, fmt.Errorf("core: read buffer must be %d bytes, got %d", BlockBytes, len(dst))
	}
	blk := addr / BlockBytes
	e.stats.Reads++

	if e.cfg.DisableEncryption {
		if ct, ok := e.data[blk]; ok {
			copy(dst, ct[:])
		} else {
			zeroFill(dst)
			info.Fresh = true
		}
		return info, nil
	}

	// Fetch and freshness-check the counter.
	midx := e.scheme.MetadataBlock(blk)
	img := e.metaImage(midx)
	if _, err := e.tr.VerifyLeaf(e.metaLeaf(midx), img[:]); err != nil {
		e.stats.IntegrityFailures++
		return info, &IntegrityError{Addr: addr, Reason: "counter metadata failed integrity tree check: " + err.Error()}
	}
	counter, err := e.decodeCounter(img, blk)
	if err != nil {
		e.stats.IntegrityFailures++
		return info, &IntegrityError{Addr: addr, Reason: "counter metadata undecodable: " + err.Error()}
	}

	ct, ok := e.data[blk]
	if !ok {
		if counter != 0 {
			e.stats.IntegrityFailures++
			return info, &IntegrityError{Addr: addr, Reason: "counter advanced but block missing"}
		}
		zeroFill(dst)
		info.Fresh = true
		e.stats.FreshReads++
		return info, nil
	}

	switch e.cfg.Placement {
	case MACInECC:
		meta := e.eccMeta[blk]
		out, err := e.ver.VerifyAndCorrect(ct[:], &meta, addr, counter)
		if err != nil {
			return info, err
		}
		info.HardwareChecks = out.HardwareChecks
		if out.Status != macecc.OK {
			e.stats.IntegrityFailures++
			return info, &IntegrityError{Addr: addr, Reason: "MAC verification failed (tamper or uncorrectable fault)"}
		}
		info.CorrectedDataBits = out.CorrectedDataBits
		info.CorrectedMACBits = out.CorrectedMACBits
		e.stats.CorrectedDataBits += uint64(out.CorrectedDataBits)
		e.stats.CorrectedMACBits += uint64(out.CorrectedMACBits)
		e.eccMeta[blk] = meta // corrected bits written back

	default: // MACInline baseline: SEC-DED first, then the MAC.
		check := e.dataCheck[blk]
		if check == nil {
			check = new([8]uint8)
		}
		outcome, err := ecc.DecodeBlock(ct[:], check)
		if err != nil {
			return info, err
		}
		if !outcome.Clean() {
			e.stats.IntegrityFailures++
			return info, &IntegrityError{Addr: addr, Reason: "uncorrectable SEC-DED memory error"}
		}
		info.CorrectedDataBits = outcome.CorrectedBits
		e.stats.SECDEDCorrected += uint64(outcome.CorrectedBits)
		okTag, err := e.key.Verify(ct[:], addr, counter, e.inlineTag[blk])
		if err != nil {
			return info, err
		}
		if !okTag {
			e.stats.IntegrityFailures++
			return info, &IntegrityError{Addr: addr, Reason: "MAC verification failed"}
		}
	}

	// Classic data-tree design: the (possibly just-repaired) ciphertext
	// must also verify against its tree leaf — this is the per-access
	// tree walk BMTs exist to avoid.
	if e.cfg.DataTree {
		if _, err := e.tr.VerifyLeaf(blk, ct[:]); err != nil {
			e.stats.IntegrityFailures++
			return info, &IntegrityError{Addr: addr, Reason: "data block failed integrity tree check: " + err.Error()}
		}
	}

	if err := e.ks.XOR(dst, ct[:], addr, counter); err != nil {
		return info, err
	}
	return info, nil
}

func (e *Engine) metaImage(midx uint64) *[BlockBytes]byte {
	if img, ok := e.metaImages[midx]; ok {
		return img
	}
	return new([BlockBytes]byte)
}

// decodeCounter extracts a block's counter from the stored (attacker-
// reachable) metadata image, using the scheme's hardware decode path.
func (e *Engine) decodeCounter(img *[BlockBytes]byte, blk uint64) (uint64, error) {
	slot := int(blk % uint64(e.scheme.GroupSize()))
	switch e.cfg.Scheme {
	case ctr.Monolithic:
		counters := ctr.UnpackMonolithic(*img)
		return counters[blk%ctr.CountersPerMetadataBlock], nil
	case ctr.Split:
		major, minors := ctr.UnpackSplit(*img)
		return major<<ctr.MinorBits | uint64(minors[slot]), nil
	case ctr.Delta:
		return ctr.DecodeCounter(*img, slot)
	case ctr.DualLength:
		return ctr.DecodeDualCounter(*img, slot)
	default:
		return 0, fmt.Errorf("core: unknown scheme kind")
	}
}

func zeroFill(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
