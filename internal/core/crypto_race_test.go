package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"authmem/internal/ctr"
)

// TestCryptoBackendSweepRace is the -race stress for the batch crypto
// backends against the lock-free read path: seqlock readers probe warm lines
// while writers hammer split-counter groups hard enough that the 7-bit minor
// counter overflows every 128 rewrites — each overflow re-encrypting a whole
// 64-block group through the backend's batched XORBlocksBatch/TagBatch
// kernels (and, on half the shards, through the parallel re-encrypt pool's
// per-worker crypto contexts). Version-stamped blocks make the forbidden
// outcomes visible: a torn read (seqlock failure) or a stale read (trusted
// plaintext surviving a re-encryption that should have retired the line).
// Blocks the writer never touches must come back bit-identical after their
// group is swept — the direct differential check that a batch kernel resealed
// them with the same bits the scalar path would have.
func TestCryptoBackendSweepRace(t *testing.T) {
	for _, backend := range []string{"batch8", "stdlib"} {
		t.Run(backend, func(t *testing.T) {
			cfg := smallCfg(ctr.Split, MACInECC)
			cfg.CryptoBackend = backend
			s := newSharded(t, cfg, 4)
			s.SetLockFreeReads(true)
			// Parallel re-encrypt on shards 0 and 1: sweeps there fan out to
			// per-worker backend crypto contexts; shards 2 and 3 sweep serially.
			for shard := 0; shard < 2; shard++ {
				s.WithShard(shard, func(eng *Engine) {
					if err := eng.EnableParallelReencrypt(2); err != nil {
						t.Error(err)
					}
				})
			}

			shardBlocks := s.ShardBytes() / BlockBytes
			writerOps, readerOps := 1200, 4000
			if testing.Short() {
				writerOps, readerOps = 600, 800
			}

			// One group per shard; the writer rewrites only a 4-block hot set
			// at the group's base — writerOps/4 rewrites per hot block, several
			// 7-bit minor-counter overflows each — so the other 60 blocks must
			// ride every sweep unchanged.
			const hotBlocks = 4
			groups := make([]uint64, 4)
			for i := range groups {
				groups[i] = (uint64(i)*shardBlocks + shardBlocks/2) / ctr.GroupBlocks * ctr.GroupBlocks
			}

			buf := make([]byte, BlockBytes)
			for _, g := range groups {
				for blk := g; blk < g+ctr.GroupBlocks; blk++ {
					stamp(buf, blk, 0)
					if err := s.Write(blk*BlockBytes, buf); err != nil {
						t.Fatal(err)
					}
				}
			}

			var (
				wg       sync.WaitGroup
				failed   atomic.Bool
				mu       sync.Mutex
				failures []string
			)
			fail := func(msg string) {
				failed.Store(true)
				mu.Lock()
				if len(failures) < 10 {
					failures = append(failures, msg)
				}
				mu.Unlock()
			}

			// Writers: each hammers its group's hot set. writerOps/hotBlocks
			// rewrites per block at 128 rewrites per overflow forces several
			// whole-group sweeps per writer through the batch kernels.
			for w := 0; w < len(groups); w++ {
				wg.Add(1)
				go func(g uint64, seed uint64) {
					defer wg.Done()
					buf := make([]byte, BlockBytes)
					versions := make(map[uint64]uint64)
					x := seed
					for op := 0; op < writerOps && !failed.Load(); op++ {
						x = x*6364136223846793005 + 1442695040888963407
						blk := g + x>>33%hotBlocks
						versions[blk]++
						stamp(buf, blk, versions[blk])
						if err := s.Write(blk*BlockBytes, buf); err != nil {
							fail("writer: " + err.Error())
							return
						}
					}
				}(groups[w], uint64(w+1))
			}

			// Readers: mix of hot written blocks (torn/stale stamp checks) and
			// never-written blocks, which must stay bit-identical to their seed
			// image across every re-encryption.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					dst := make([]byte, BlockBytes)
					want := make([]byte, BlockBytes)
					lastSeen := make(map[uint64]uint64)
					x := seed
					for op := 0; op < readerOps && !failed.Load(); op++ {
						x = x*6364136223846793005 + 1442695040888963407
						g := groups[x>>60%4]
						blk := g + x>>33%ctr.GroupBlocks
						if _, err := s.Read(blk*BlockBytes, dst); err != nil {
							fail("reader: " + err.Error())
							return
						}
						gotBlk, v, torn := parseStamp(dst)
						if torn {
							fail("torn read under re-encryption")
							return
						}
						if gotBlk != blk {
							fail("read returned another block's stamp")
							return
						}
						if blk >= g+hotBlocks {
							// Untouched tail: every sweep reseals it through the
							// batch kernels; the plaintext must never drift.
							stamp(want, blk, 0)
							if string(dst) != string(want) {
								fail("untouched block drifted across a batched re-encryption")
								return
							}
							continue
						}
						if last, ok := lastSeen[blk]; ok && v < last {
							fail("stale read: version regressed")
							return
						}
						lastSeen[blk] = v
					}
				}(uint64(r + 77))
			}

			wg.Wait()
			for _, f := range failures {
				t.Error(f)
			}
			st := s.Stats()
			if st.LockFreeHits == 0 {
				t.Error("stress ran without a single lock-free hit; fast path never engaged")
			}
			if st.GroupReencrypts == 0 {
				t.Error("stress forced no group re-encryptions; batch kernels never ran under contention")
			}
			t.Logf("backend=%s lockFreeHits=%d groupReencrypts=%d seqlockRetries=%d",
				backend, st.LockFreeHits, st.GroupReencrypts, st.SeqlockRetries)

			// Quiesce: every block in every group must still verify and carry
			// either its seed image or a stamp a writer legitimately produced.
			if err := s.FlushAll(); err != nil {
				t.Fatal(err)
			}
			for _, g := range groups {
				for blk := g; blk < g+ctr.GroupBlocks; blk++ {
					if _, err := s.Read(blk*BlockBytes, buf); err != nil {
						t.Fatalf("final sweep blk %d: %v", blk, err)
					}
					gotBlk, _, torn := parseStamp(buf)
					if torn || gotBlk != blk {
						t.Fatalf("final sweep blk %d: corrupt stamp (torn=%v got=%d)", blk, torn, gotBlk)
					}
				}
			}
		})
	}
}
