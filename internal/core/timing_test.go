package core

import (
	"testing"

	"authmem/internal/ctr"
	"authmem/internal/dram"
)

func newTM(t testing.TB, cfg Config) *TimingModel {
	t.Helper()
	tm, err := NewTimingModel(cfg, dram.MustNew(dram.DDR3_1600(4)))
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func paperCfg(scheme ctr.Kind, placement MACPlacement) Config {
	return Default(scheme, placement) // full 512MB region
}

func TestNewTimingModelValidation(t *testing.T) {
	if _, err := NewTimingModel(Config{}, dram.MustNew(dram.DDR3_1600(1))); err == nil {
		t.Fatal("invalid config should fail")
	}
	if _, err := NewTimingModel(paperCfg(ctr.Delta, MACInECC), nil); err == nil {
		t.Fatal("nil DRAM should fail")
	}
}

// TestTreeDepthMatchesPaper reproduces §5.2: 5 off-chip levels (counting the
// counter block) for the monolithic baseline, 4 for delta encoding, over a
// 512MB region with a 3KB on-chip root.
func TestTreeDepthMatchesPaper(t *testing.T) {
	mono := newTM(t, paperCfg(ctr.Monolithic, MACInline))
	if got := mono.OffChipTreeLevels() + 1; got != 5 {
		t.Errorf("monolithic depth = %d, want 5", got)
	}
	delta := newTM(t, paperCfg(ctr.Delta, MACInECC))
	if got := delta.OffChipTreeLevels() + 1; got != 4 {
		t.Errorf("delta depth = %d, want 4", got)
	}
	split := newTM(t, paperCfg(ctr.Split, MACInline))
	if got := split.OffChipTreeLevels() + 1; got != 4 {
		t.Errorf("split depth = %d, want 4", got)
	}
}

func TestDisabledEncryptionIsRawDRAM(t *testing.T) {
	cfg := paperCfg(ctr.Delta, MACInECC)
	cfg.DisableEncryption = true
	cfg.KeyMaterial = nil
	tm := newTM(t, cfg)
	mem := dram.MustNew(dram.DDR3_1600(4))
	want := mem.Access(0, 0x1000, false)
	if got := tm.ReadMiss(0, 0x1000); got != want {
		t.Fatalf("disabled read = %d, raw DRAM = %d", got, want)
	}
	if tm.OffChipTreeLevels() != 0 {
		t.Fatal("disabled model should have no tree")
	}
}

func TestColdReadMissCosts(t *testing.T) {
	// A cold read under the baseline pays: data read + counter read +
	// full tree walk + MAC read. Under MAC-in-ECC with the same state it
	// skips the MAC transaction.
	base := newTM(t, paperCfg(ctr.Monolithic, MACInline))
	base.ReadMiss(0, 0x10000)
	bs := base.Stats()
	if bs.DataReads != 1 || bs.CounterReads != 1 || bs.MACReads != 1 {
		t.Fatalf("baseline stats %+v", bs)
	}
	if bs.TreeReads != uint64(base.OffChipTreeLevels()) {
		t.Fatalf("cold walk read %d tree nodes, want %d", bs.TreeReads, base.OffChipTreeLevels())
	}

	ecc := newTM(t, paperCfg(ctr.Monolithic, MACInECC))
	ecc.ReadMiss(0, 0x10000)
	es := ecc.Stats()
	if es.MACReads != 0 {
		t.Fatalf("MAC-in-ECC issued %d MAC reads", es.MACReads)
	}
	if es.Transactions() >= bs.Transactions() {
		t.Fatalf("MAC-in-ECC (%d txns) not cheaper than baseline (%d)",
			es.Transactions(), bs.Transactions())
	}
}

func TestWarmReadHitsMetadataCache(t *testing.T) {
	tm := newTM(t, paperCfg(ctr.Delta, MACInECC))
	tm.ReadMiss(0, 0x2000)
	before := tm.Stats().Transactions()
	// Same block again: counter + tree path now cached; only data read.
	tm.ReadMiss(100000, 0x2000)
	after := tm.Stats()
	if after.Transactions() != before+1 {
		t.Fatalf("warm read issued %d extra transactions, want 1",
			after.Transactions()-before)
	}
	if after.DataReads != 2 {
		t.Fatalf("stats %+v", after)
	}
}

func TestWarmReadLatencyLowerThanCold(t *testing.T) {
	tm := newTM(t, paperCfg(ctr.Delta, MACInline))
	coldDone := tm.ReadMiss(0, 0x3000)
	// Re-access within the first refresh interval (tREFI = 6240 memory
	// cycles = ~25k CPU cycles), so the row buffer is still warm.
	start := uint64(10000)
	warmDone := tm.ReadMiss(start, 0x3000)
	if warmDone-start >= coldDone {
		t.Fatalf("warm latency %d not below cold %d", warmDone-start, coldDone)
	}
}

func TestDeltaPacksMoreCountersPerCacheLine(t *testing.T) {
	// 64 consecutive block-groups' counters fit 8x fewer metadata lines
	// under delta encoding, so a scan's counter-read traffic drops.
	runScan := func(kind ctr.Kind) uint64 {
		tm := newTM(t, paperCfg(kind, MACInECC))
		for i := uint64(0); i < 4096; i++ {
			tm.ReadMiss(i*1000, i*BlockBytes)
		}
		return tm.Stats().CounterReads
	}
	mono := runScan(ctr.Monolithic)
	delta := runScan(ctr.Delta)
	if delta*7 > mono {
		t.Fatalf("delta counter reads %d vs monolithic %d: want ~8x fewer", delta, mono)
	}
}

func TestWriteBackTouchesCounter(t *testing.T) {
	tm := newTM(t, paperCfg(ctr.Delta, MACInECC))
	tm.WriteBack(0, 0x4000)
	if tm.Scheme().Stats().Writes != 1 {
		t.Fatal("writeback did not touch the counter")
	}
	st := tm.Stats()
	if st.DataWrites != 1 || st.CounterReads != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestWriteBackInlineMACTraffic(t *testing.T) {
	inline := newTM(t, paperCfg(ctr.Delta, MACInline))
	inline.WriteBack(0, 0x5000)
	if inline.Stats().MACReads != 1 {
		t.Fatalf("inline writeback stats %+v", inline.Stats())
	}
	ecc := newTM(t, paperCfg(ctr.Delta, MACInECC))
	ecc.WriteBack(0, 0x5000)
	if ecc.Stats().MACReads != 0 {
		t.Fatalf("mac-in-ecc writeback stats %+v", ecc.Stats())
	}
}

func TestReencryptionChargesTraffic(t *testing.T) {
	cfg := paperCfg(ctr.Split, MACInECC)
	tm := newTM(t, cfg)
	// 128 writebacks to one block overflow the 7-bit minor counter.
	var now uint64
	for i := 0; i < 128; i++ {
		now = tm.WriteBack(now, 0x8000)
	}
	st := tm.Stats()
	if st.ReencryptOps != 1 {
		t.Fatalf("re-encryptions = %d, want 1", st.ReencryptOps)
	}
	if st.ReencryptRead != ctr.GroupBlocks || st.ReencryptWrit != ctr.GroupBlocks {
		t.Fatalf("re-encrypt traffic %+v", st)
	}
}

func TestReencryptTrafficCanBeDisabled(t *testing.T) {
	tm := newTM(t, paperCfg(ctr.Split, MACInECC))
	tm.ChargeReencryptTraffic = false
	var now uint64
	for i := 0; i < 128; i++ {
		now = tm.WriteBack(now, 0x8000)
	}
	st := tm.Stats()
	if st.ReencryptOps != 1 || st.ReencryptRead != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestOverflowBufferBackpressure(t *testing.T) {
	// A tiny overflow buffer plus a storm of overflows in quick
	// succession must stall writes; an unbounded buffer must not.
	storm := func(depth int) TimingStats {
		tm := newTM(t, paperCfg(ctr.Split, MACInECC))
		tm.OverflowBufferGroups = depth
		var now uint64
		// Alternate hot blocks across many groups so overflows land
		// back to back at nearly the same cycle.
		for round := 0; round < 130; round++ {
			for g := uint64(0); g < 8; g++ {
				tm.WriteBack(now, g*ctr.GroupBlocks*BlockBytes)
				now += 2
			}
		}
		return tm.Stats()
	}
	bounded := storm(1)
	unbounded := storm(0)
	if bounded.ReencryptOps == 0 {
		t.Fatal("storm produced no re-encryptions; test is vacuous")
	}
	if bounded.ReencStallCycles == 0 {
		t.Fatal("depth-1 overflow buffer never stalled a write")
	}
	if unbounded.ReencStallCycles != 0 {
		t.Fatal("unbounded buffer should never stall")
	}
	if unbounded.MaxReencBacklog <= 1 {
		t.Fatalf("unbounded backlog %d should exceed 1", unbounded.MaxReencBacklog)
	}
}

func TestOverflowBufferDefaultDepth(t *testing.T) {
	tm := newTM(t, paperCfg(ctr.Split, MACInECC))
	if tm.OverflowBufferGroups != 4 {
		t.Fatalf("default overflow buffer depth %d, want 4", tm.OverflowBufferGroups)
	}
}

func TestDecodeCyclesDefaults(t *testing.T) {
	if tm := newTM(t, paperCfg(ctr.Delta, MACInECC)); tm.DecodeCycles != ctr.DecodeCycles {
		t.Fatalf("delta decode cycles = %d", tm.DecodeCycles)
	}
	if tm := newTM(t, paperCfg(ctr.DualLength, MACInECC)); tm.DecodeCycles != ctr.DecodeCycles {
		t.Fatalf("dual decode cycles = %d", tm.DecodeCycles)
	}
	if tm := newTM(t, paperCfg(ctr.Monolithic, MACInline)); tm.DecodeCycles != 0 {
		t.Fatalf("monolithic decode cycles = %d", tm.DecodeCycles)
	}
}

func TestMetadataCachePressureInlineVsECC(t *testing.T) {
	// The paper: storing MACs as ECC bits frees metadata-cache space.
	// Under a working set that thrashes the 32KB cache, the MAC-in-ECC
	// model must see a better counter hit rate.
	run := func(p MACPlacement) float64 {
		tm := newTM(t, paperCfg(ctr.Monolithic, p))
		var now uint64
		for rep := 0; rep < 4; rep++ {
			for i := uint64(0); i < 6000; i++ {
				now = tm.ReadMiss(now, i*BlockBytes*8) // spread over counter blocks
			}
		}
		return tm.MetadataCacheStats().HitRate()
	}
	inline, ecc := run(MACInline), run(MACInECC)
	if ecc <= inline {
		t.Fatalf("metadata hit rate: inline %.3f, mac-in-ecc %.3f — expected improvement", inline, ecc)
	}
}

func TestOverheadFigure1(t *testing.T) {
	// Baseline: 56-bit counters (in 64-bit slots) + inline MACs + tree.
	base, err := ComputeOverhead(paperCfg(ctr.Monolithic, MACInline))
	if err != nil {
		t.Fatal(err)
	}
	pct := base.EncryptionOverheadPct()
	if pct < 21 || pct > 26 {
		t.Fatalf("baseline overhead %.1f%%, want ~22-24%%", pct)
	}
	// Counters alone ~10.9% (56-bit per block); MACs the same.
	if got := 100 * float64(base.CounterBytes) / float64(base.RegionBytes); got < 10.5 || got > 11.5 {
		t.Fatalf("counter overhead %.1f%%", got)
	}
	if base.MACBytes != base.CounterBytes {
		t.Fatalf("baseline MAC bytes %d != counter bytes %d", base.MACBytes, base.CounterBytes)
	}

	// Proposed: delta counters + MAC-in-ECC.
	prop, err := ComputeOverhead(paperCfg(ctr.Delta, MACInECC))
	if err != nil {
		t.Fatal(err)
	}
	if prop.MACBytes != 0 {
		t.Fatal("MAC-in-ECC should have no dedicated MAC storage")
	}
	if got := prop.EncryptionOverheadPct(); got > 3 {
		t.Fatalf("proposed overhead %.2f%%, want ~2%%", got)
	}
	// The paper's ~10x reduction.
	if ratio := base.EncryptionOverheadPct() / prop.EncryptionOverheadPct(); ratio < 8 {
		t.Fatalf("overhead reduction %.1fx, want ~10x", ratio)
	}
	if prop.TreeLevels != 4 || base.TreeLevels != 5 {
		t.Fatalf("tree levels: base %d (want 5), prop %d (want 4)", base.TreeLevels, prop.TreeLevels)
	}
}

func TestOverheadDisabled(t *testing.T) {
	cfg := paperCfg(ctr.Delta, MACInECC)
	cfg.DisableEncryption = true
	cfg.KeyMaterial = nil
	o, err := ComputeOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if o.EncryptionOverheadBytes() != 0 {
		t.Fatalf("disabled overhead %+v", o)
	}
	if o.ECCBytes != cfg.RegionBytes/8 {
		t.Fatal("ECC provisioning should be reported regardless")
	}
}

func TestTimingDeterminism(t *testing.T) {
	run := func() (uint64, TimingStats) {
		tm := newTM(t, paperCfg(ctr.Delta, MACInECC))
		var now uint64
		for i := 0; i < 5000; i++ {
			a := uint64(i*2654435761%100000) * BlockBytes
			if i%3 == 0 {
				now = tm.WriteBack(now, a)
			} else {
				now = tm.ReadMiss(now, a)
			}
		}
		return now, tm.Stats()
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || s1 != s2 {
		t.Fatal("timing model is not deterministic")
	}
}

func BenchmarkReadMissCold(b *testing.B) {
	tm, err := NewTimingModel(paperCfg(ctr.Delta, MACInECC), dram.MustNew(dram.DDR3_1600(4)))
	if err != nil {
		b.Fatal(err)
	}
	var now uint64
	for i := 0; i < b.N; i++ {
		now = tm.ReadMiss(now, uint64(i)%(512<<20)/64*64)
	}
}

func BenchmarkWriteBack(b *testing.B) {
	tm, err := NewTimingModel(paperCfg(ctr.Delta, MACInECC), dram.MustNew(dram.DDR3_1600(4)))
	if err != nil {
		b.Fatal(err)
	}
	var now uint64
	for i := 0; i < b.N; i++ {
		now = tm.WriteBack(now, uint64(i%100000)*BlockBytes)
	}
}
