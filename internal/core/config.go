// Package core implements the paper's memory encryption engine: the
// integration of counter-mode encryption, MAC-based integrity, the Bonsai
// Merkle tree, the counter/MAC metadata cache, and the two proposed
// optimizations (MAC-in-ECC and delta-encoded counters).
//
// The package provides two cooperating models:
//
//   - Engine (engine.go): a *functional* authenticated encrypted memory.
//     Real AES-CTR encryption, real Carter-Wegman MACs, a real Merkle tree
//     over real counter-block images. It exposes attacker/fault APIs
//     (tamper with ciphertext, ECC bits, counter blocks, tree nodes) so
//     security and reliability claims are testable, not asserted.
//
//   - TimingModel (timing.go): a cycle-level cost model of the same design
//     used by the full-system simulator (internal/sim). It executes the
//     metadata state machines (counter schemes, caches, tree geometry) and
//     prices every DRAM transaction through internal/dram, but skips the
//     cryptography, making billion-access simulations tractable.
//
// Both models are configured by the same Config so experiments exercise one
// consistent design point.
package core

import (
	"fmt"
	"os"

	"authmem/internal/crypto"
	"authmem/internal/ctr"
	"authmem/internal/ecc"

	// The MAC-carrying "macsecded" codec registers itself with the ecc
	// registry from init; the engine only ever speaks to the interface, so
	// this blank import is what keeps the codec linked in.
	_ "authmem/internal/macecc"
)

// BlockBytes is the protection granularity (one cache line).
const BlockBytes = 64

// MACPlacement selects where MAC tags live.
type MACPlacement int

const (
	// MACInline is the baseline: MACs are stored in a dedicated DRAM
	// region (8 tags per 64-byte block) and fetching one costs a DRAM
	// transaction (mitigated by the metadata cache). Data blocks are
	// separately protected by standard SEC-DED(72,64) ECC.
	MACInline MACPlacement = iota
	// MACInECC is the paper's §3 scheme: the 8 ECC bytes per block carry
	// a 56-bit MAC + 7 Hamming bits + 1 scrub parity bit. MACs arrive on
	// the ECC lane in parallel with data (no extra transaction, no cache
	// space) and double as the error-detection/correction code.
	MACInECC
)

// String names the placement for tables.
func (p MACPlacement) String() string {
	switch p {
	case MACInline:
		return "inline-mac"
	case MACInECC:
		return "mac-in-ecc"
	default:
		return fmt.Sprintf("MACPlacement(%d)", int(p))
	}
}

// Config describes one memory-encryption design point.
type Config struct {
	// RegionBytes is the protected-region size (Table 1: 512MB).
	RegionBytes uint64
	// Scheme selects the counter representation.
	Scheme ctr.Kind
	// Placement selects MAC storage.
	Placement MACPlacement
	// MetadataCacheBytes / MetadataCacheWays size the on-chip
	// counter/MAC cache (Table 1: 32KB, 8-way).
	MetadataCacheBytes int
	MetadataCacheWays  int
	// OnChipTreeBytes is the SRAM budget for the trusted top tree level
	// (Table 1: 3KB).
	OnChipTreeBytes int
	// CorrectBits bounds MAC-in-ECC flip-and-check correction (0..2).
	CorrectBits int
	// KeyMaterial seeds the MAC key (24 bytes) and the encryption key
	// (16 bytes): 40 bytes total.
	KeyMaterial []byte
	// DisableEncryption turns the engine into plain memory — the
	// no-protection baseline Figure 8 normalizes against.
	DisableEncryption bool
	// DataTree switches from the Bonsai Merkle tree (over counter
	// blocks) to the classic pre-BMT design §2.2 contrasts against: the
	// integrity tree spans the data blocks themselves (plus the counter
	// blocks). This inflates the tree ~60x and adds a full tree walk to
	// every data access — the overhead Rogers et al.'s observation
	// removed.
	DataTree bool
	// CryptoBackend names the cipher/MAC implementation (see
	// internal/crypto: "ttable", "stdlib", "batch8"). Empty selects the
	// AUTHMEM_CRYPTO_BACKEND environment variable, then "ttable". All
	// backends are bit-compatible, so the choice affects speed only.
	CryptoBackend string
	// ECCCodec names the check-lane codec (see internal/ecc: "secded" and
	// "residue" for the inline placement, "macsecded" for MAC-in-ECC).
	// Unlike crypto backends, codecs are NOT interchangeable — they change
	// the stored format and the detection/correction guarantees — so an
	// explicit name incompatible with Placement is a Validate error.
	// Empty consults the AUTHMEM_ECC_CODEC environment variable; an
	// environment selection incompatible with Placement is ignored in
	// favor of the placement's default, so codec-matrix test runs do not
	// break tests pinned to the other placement.
	ECCCodec string
}

// KeyMaterialLen is the required KeyMaterial length.
const KeyMaterialLen = 40

// Default returns the paper's Table 1 configuration with the given scheme
// and placement.
func Default(scheme ctr.Kind, placement MACPlacement) Config {
	return Config{
		RegionBytes:        512 << 20,
		Scheme:             scheme,
		Placement:          placement,
		MetadataCacheBytes: 32 << 10,
		MetadataCacheWays:  8,
		OnChipTreeBytes:    3 << 10,
		CorrectBits:        2,
		KeyMaterial:        DefaultKeyMaterial(),
	}
}

// DefaultKeyMaterial returns a fixed, obviously-non-secret development key.
// Production users must supply their own.
func DefaultKeyMaterial() []byte {
	m := make([]byte, KeyMaterialLen)
	for i := range m {
		m[i] = byte(i*37 + 11)
	}
	return m
}

// Validate checks structural requirements.
func (c Config) Validate() error {
	switch {
	case c.RegionBytes == 0 || c.RegionBytes%BlockBytes != 0:
		return fmt.Errorf("core: region size %d not a multiple of %d", c.RegionBytes, BlockBytes)
	case c.RegionBytes < uint64(ctr.GroupBlocks*BlockBytes):
		return fmt.Errorf("core: region smaller than one block-group")
	case !c.DisableEncryption && len(c.KeyMaterial) != KeyMaterialLen:
		return fmt.Errorf("core: key material must be %d bytes, got %d", KeyMaterialLen, len(c.KeyMaterial))
	case c.MetadataCacheBytes <= 0 || c.MetadataCacheWays <= 0:
		return fmt.Errorf("core: metadata cache geometry invalid")
	case c.OnChipTreeBytes < 64:
		return fmt.Errorf("core: on-chip tree budget below one node")
	case c.CorrectBits < 0 || c.CorrectBits > 2:
		return fmt.Errorf("core: correction budget %d out of range", c.CorrectBits)
	}
	if !c.DisableEncryption {
		if _, err := crypto.Lookup(c.CryptoBackend); err != nil {
			return err
		}
		if _, err := c.resolveCodec(); err != nil {
			return err
		}
	}
	return nil
}

// resolveCodec maps the configuration to its ECC codec. An explicit
// ECCCodec must exist and match the MAC placement (a MAC-carrying codec
// under MACInECC, a plain block codec under MACInline). An empty name
// consults $AUTHMEM_ECC_CODEC, falling back to the placement's default when
// the environment names an incompatible (but known) codec — see the
// ECCCodec field comment.
func (c Config) resolveCodec() (ecc.Codec, error) {
	wantMAC := c.Placement == MACInECC
	if c.ECCCodec != "" {
		cod, err := ecc.Lookup(c.ECCCodec)
		if err != nil {
			return nil, err
		}
		if cod.CarriesMAC() != wantMAC {
			return nil, fmt.Errorf("core: ECC codec %q is incompatible with placement %s", cod.Name(), c.Placement)
		}
		return cod, nil
	}
	if env := os.Getenv(ecc.EnvCodec); env != "" {
		cod, err := ecc.Lookup(env)
		if err != nil {
			return nil, err // a typo in the environment should fail loudly
		}
		if cod.CarriesMAC() == wantMAC {
			return cod, nil
		}
	}
	return ecc.Lookup(ecc.DefaultFor(wantMAC))
}

// CodecName returns the resolved ECC codec name for the configuration, or
// "" when encryption is disabled (no check lane exists). It is what
// persisted image headers record and campaign reports print.
func (c Config) CodecName() string {
	if c.DisableEncryption {
		return ""
	}
	cod, err := c.resolveCodec()
	if err != nil {
		return c.ECCCodec // unresolvable; Validate reports the real error
	}
	return cod.Name()
}

// DataBlocks returns the number of protected 64-byte blocks.
func (c Config) DataBlocks() uint64 { return c.RegionBytes / BlockBytes }

// FailStage identifies which verification stage detected an integrity
// violation. The recovery path keys off it: counter-stage failures are
// repairable from the trusted on-chip state machine, data-stage failures
// are not.
type FailStage int

const (
	// StageUnknown is the zero value for errors predating staging.
	StageUnknown FailStage = iota
	// StageCounter: the counter-block image failed its tree check or
	// could not be decoded.
	StageCounter
	// StageData: the ciphertext failed MAC verification or SEC-DED
	// decoding beyond the correction budget.
	StageData
	// StageDataTree: the classic data-tree design's per-block tree check
	// failed.
	StageDataTree
	// StageResume: a persisted image failed validation while resuming.
	StageResume
)

// String names the stage.
func (s FailStage) String() string {
	switch s {
	case StageCounter:
		return "counter"
	case StageData:
		return "data"
	case StageDataTree:
		return "data-tree"
	case StageResume:
		return "resume"
	default:
		return "unknown"
	}
}

// IntegrityError reports a failed authentication or freshness check.
type IntegrityError struct {
	// Addr is the byte address of the offending access.
	Addr uint64
	// Reason describes which check failed.
	Reason string
	// Stage is the verification stage that detected the violation.
	Stage FailStage
}

// Error implements error.
func (e *IntegrityError) Error() string {
	return fmt.Sprintf("core: integrity violation at %#x: %s", e.Addr, e.Reason)
}
