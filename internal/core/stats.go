package core

import "sync/atomic"

// engineCounters is the engine's internal, concurrency-safe event bank.
//
// The lock-free read path (blockcache.go probe + ShardedEngine fast path)
// banks events while other goroutines mutate the same engine under its shard
// lock, and Stats() snapshots shards without taking any lock at all — so
// every counter is an atomic word. EngineStats stays a plain value struct:
// it is the public snapshot type (aliased as authmem.EngineStats) and is
// returned by value, merged with EngineStats.Add, and banked per worker by
// the parallel re-encryption sweep.
//
// On the locked paths the atomics replace unsynchronized ++ with uncontended
// atomic adds; on the lock-free path they are the only correct choice. Either
// way a snapshot never contends with traffic.
type engineCounters struct {
	Reads             atomic.Uint64
	Writes            atomic.Uint64
	FreshReads        atomic.Uint64
	IntegrityFailures atomic.Uint64
	CorrectedDataBits atomic.Uint64
	CorrectedMACBits  atomic.Uint64
	SECDEDCorrected   atomic.Uint64
	ScrubPasses       atomic.Uint64
	ScrubFlagged      atomic.Uint64
	GroupReencrypts   atomic.Uint64

	RetriedReads       atomic.Uint64
	RetryRecoveries    atomic.Uint64
	MetadataRepairs    atomic.Uint64
	Quarantined        atomic.Uint64
	QuarantineRefusals atomic.Uint64

	WriteCombines       atomic.Uint64
	DeferredLeafFlushes atomic.Uint64

	ParallelReencryptWorkers atomic.Uint64

	LockFreeHits   atomic.Uint64
	SeqlockRetries atomic.Uint64
	SlowPathReads  atomic.Uint64
}

// snapshot returns a plain copy of the counters. Individual loads are
// atomic; the snapshot as a whole is not a single linearization point, which
// is the usual (and honest) contract for performance counters read while
// traffic is in flight.
func (c *engineCounters) snapshot() EngineStats {
	return EngineStats{
		Reads:                    c.Reads.Load(),
		Writes:                   c.Writes.Load(),
		FreshReads:               c.FreshReads.Load(),
		IntegrityFailures:        c.IntegrityFailures.Load(),
		CorrectedDataBits:        c.CorrectedDataBits.Load(),
		CorrectedMACBits:         c.CorrectedMACBits.Load(),
		SECDEDCorrected:          c.SECDEDCorrected.Load(),
		ScrubPasses:              c.ScrubPasses.Load(),
		ScrubFlagged:             c.ScrubFlagged.Load(),
		GroupReencrypts:          c.GroupReencrypts.Load(),
		RetriedReads:             c.RetriedReads.Load(),
		RetryRecoveries:          c.RetryRecoveries.Load(),
		MetadataRepairs:          c.MetadataRepairs.Load(),
		Quarantined:              c.Quarantined.Load(),
		QuarantineRefusals:       c.QuarantineRefusals.Load(),
		WriteCombines:            c.WriteCombines.Load(),
		DeferredLeafFlushes:      c.DeferredLeafFlushes.Load(),
		ParallelReencryptWorkers: c.ParallelReencryptWorkers.Load(),
		LockFreeHits:             c.LockFreeHits.Load(),
		SeqlockRetries:           c.SeqlockRetries.Load(),
		SlowPathReads:            c.SlowPathReads.Load(),
	}
}

// merge folds a plain snapshot into the counters — the bridge for code that
// banks events into a private EngineStats first (parallel re-encryption
// workers, the serial sweep's correction loop) and publishes once.
func (c *engineCounters) merge(s EngineStats) {
	if s.Reads != 0 {
		c.Reads.Add(s.Reads)
	}
	if s.Writes != 0 {
		c.Writes.Add(s.Writes)
	}
	if s.FreshReads != 0 {
		c.FreshReads.Add(s.FreshReads)
	}
	if s.IntegrityFailures != 0 {
		c.IntegrityFailures.Add(s.IntegrityFailures)
	}
	if s.CorrectedDataBits != 0 {
		c.CorrectedDataBits.Add(s.CorrectedDataBits)
	}
	if s.CorrectedMACBits != 0 {
		c.CorrectedMACBits.Add(s.CorrectedMACBits)
	}
	if s.SECDEDCorrected != 0 {
		c.SECDEDCorrected.Add(s.SECDEDCorrected)
	}
	if s.ScrubPasses != 0 {
		c.ScrubPasses.Add(s.ScrubPasses)
	}
	if s.ScrubFlagged != 0 {
		c.ScrubFlagged.Add(s.ScrubFlagged)
	}
	if s.GroupReencrypts != 0 {
		c.GroupReencrypts.Add(s.GroupReencrypts)
	}
	if s.RetriedReads != 0 {
		c.RetriedReads.Add(s.RetriedReads)
	}
	if s.RetryRecoveries != 0 {
		c.RetryRecoveries.Add(s.RetryRecoveries)
	}
	if s.MetadataRepairs != 0 {
		c.MetadataRepairs.Add(s.MetadataRepairs)
	}
	if s.Quarantined != 0 {
		c.Quarantined.Add(s.Quarantined)
	}
	if s.QuarantineRefusals != 0 {
		c.QuarantineRefusals.Add(s.QuarantineRefusals)
	}
	if s.WriteCombines != 0 {
		c.WriteCombines.Add(s.WriteCombines)
	}
	if s.DeferredLeafFlushes != 0 {
		c.DeferredLeafFlushes.Add(s.DeferredLeafFlushes)
	}
	if s.ParallelReencryptWorkers != 0 {
		c.ParallelReencryptWorkers.Add(s.ParallelReencryptWorkers)
	}
	if s.LockFreeHits != 0 {
		c.LockFreeHits.Add(s.LockFreeHits)
	}
	if s.SeqlockRetries != 0 {
		c.SeqlockRetries.Add(s.SeqlockRetries)
	}
	if s.SlowPathReads != 0 {
		c.SlowPathReads.Add(s.SlowPathReads)
	}
}
