package core

import (
	"fmt"

	"authmem/internal/ctr"
)

// Batched multi-block read/write paths. A span of contiguous blocks shares
// counter metadata: one counter block covers ctr.CountersPerMetadataBlock
// (or a group's worth of) data blocks, so a streaming access that verifies
// the tree leaf once per metadata block — instead of once per data block —
// drops most of the per-access tree-walk cost, just as a real controller
// caches the verified counter line. Writes similarly commit each touched
// counter block once, after all its blocks are stored.

func (e *Engine) checkSpan(addr uint64, n int, what string) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if n == 0 || n%BlockBytes != 0 {
		return fmt.Errorf("core: %s length %d not a positive multiple of %d", what, n, BlockBytes)
	}
	if addr+uint64(n) > e.cfg.RegionBytes {
		return fmt.Errorf("core: %s span [%#x, %#x) outside %d-byte region", what, addr, addr+uint64(n), e.cfg.RegionBytes)
	}
	return nil
}

// ReadBlocks verifies and decrypts len(dst)/BlockBytes contiguous blocks
// starting at addr into dst. Counter metadata is fetched and tree-verified
// once per covering metadata block rather than once per data block; each
// block's ciphertext is then authenticated and decrypted exactly as Read
// does. The first failing block aborts the batch with its error; blocks
// before it have already been decrypted into dst.
func (e *Engine) ReadBlocks(addr uint64, dst []byte) error {
	if err := e.checkSpan(addr, len(dst), "read"); err != nil {
		return err
	}
	first := addr / BlockBytes
	n := uint64(len(dst)) / BlockBytes

	if e.cfg.DisableEncryption {
		for j := uint64(0); j < n; j++ {
			e.stats.Reads.Add(1)
			out := dst[j*BlockBytes : (j+1)*BlockBytes]
			if ct := e.store.Ciphertext(first + j); ct != nil {
				copy(out, ct)
			} else {
				clear(out)
			}
		}
		return nil
	}

	curMidx := ^uint64(0)
	var img []byte
	for j := uint64(0); j < n; j++ {
		blk := first + j
		e.stats.Reads.Add(1)
		if e.readCached(blk, dst[j*BlockBytes:(j+1)*BlockBytes]) {
			continue
		}
		if midx := e.scheme.MetadataBlock(blk); midx != curMidx {
			img = nil
			if e.cc != nil {
				if ent := e.cc.lookup(midx); ent != nil {
					img = ent.img[:] // already tree-verified
				}
			}
			if img == nil {
				var verr error
				img, verr = e.loadVerifiedImage(blk*BlockBytes, midx)
				if verr != nil {
					e.stats.IntegrityFailures.Add(1)
					return verr
				}
				if e.cc != nil {
					e.cc.insert(midx, img)
				}
			}
			curMidx = midx
		}
		counter, err := e.decodeCounter(img, blk)
		if err != nil {
			e.stats.IntegrityFailures.Add(1)
			return &IntegrityError{Addr: blk * BlockBytes, Reason: "counter metadata undecodable: " + err.Error(), Stage: StageCounter}
		}
		if _, err := e.readVerified(blk, counter, dst[j*BlockBytes:(j+1)*BlockBytes]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks encrypts and stores len(src)/BlockBytes contiguous blocks
// starting at addr. The span is carved into chunks covered by one counter-
// metadata block each; a chunk touches all its counters first (so a
// mid-chunk overflow sweep merges the whole in-flight span), seals runs of
// equal counters with one batched keystream sweep per run, and commits —
// or, with the write pipeline, defers — its metadata exactly once.
func (e *Engine) WriteBlocks(addr uint64, src []byte) error {
	if err := e.checkSpan(addr, len(src), "write"); err != nil {
		return err
	}
	first := addr / BlockBytes
	n := uint64(len(src)) / BlockBytes

	if e.cfg.DisableEncryption {
		for j := uint64(0); j < n; j++ {
			e.stats.Writes.Add(1)
			copy(e.store.Materialize(first+j), src[j*BlockBytes:(j+1)*BlockBytes])
		}
		return nil
	}

	for done := uint64(0); done < n; {
		blk := first + done
		midx := e.scheme.MetadataBlock(blk)
		run := uint64(1)
		for done+run < n && e.scheme.MetadataBlock(blk+run) == midx {
			run++
		}
		if err := e.writeChunk(blk, midx, src[done*BlockBytes:(done+run)*BlockBytes]); err != nil {
			return err
		}
		done += run
	}
	return nil
}

// writeChunk writes a contiguous span of blocks covered by a single
// counter-metadata block. A chunk never exceeds ctr.GroupBlocks blocks (one
// metadata block covers at most a group).
func (e *Engine) writeChunk(first, midx uint64, src []byte) error {
	n := len(src) / BlockBytes
	var counters [ctr.GroupBlocks]uint64

	// Touch every counter with the whole chunk as the in-flight span: a
	// mid-chunk overflow sweep must not reseal blocks this chunk is about
	// to overwrite (their stored bits predate the earlier touches).
	e.pendingFirst, e.pendingLast, e.hasPendingWrite = first, first+uint64(n)-1, true
	reenc := false
	for j := 0; j < n; j++ {
		e.stats.Writes.Add(1)
		out := e.scheme.Touch(first + uint64(j))
		counters[j] = out.Counter
		if out.Reencrypted {
			reenc = true
		}
	}
	e.hasPendingWrite = false
	if reenc {
		// An overflow sweep re-based the group mid-chunk, so counters
		// recorded before it are stale. Re-derive every counter from the
		// trusted state machine's final image.
		img := e.packer.PackMetadata(midx)
		for j := 0; j < n; j++ {
			c, err := e.decodeCounter(img[:], first+uint64(j))
			if err != nil {
				return err
			}
			counters[j] = c
		}
	}

	// Seal: contiguous blocks sharing a counter value — the common case for
	// streaming writes into one group — are padded with one batched
	// keystream sweep and tagged with one batched MAC sweep instead of one
	// pad lookup + Tag call per block.
	if e.spanBuf == nil {
		e.spanBuf = make([]byte, ctr.GroupBlocks*BlockBytes)
	}
	for j := 0; j < n; {
		r := j + 1
		for r < n && counters[r] == counters[j] {
			r++
		}
		span := e.spanBuf[:(r-j)*BlockBytes]
		spanAddr := (first + uint64(j)) * BlockBytes
		if err := e.ks.XORBlocksBatch(span, src[j*BlockBytes:r*BlockBytes], spanAddr, counters[j]); err != nil {
			return err
		}
		if err := e.key.TagBatch(e.tagBuf[:r-j], span, spanAddr, counters[j]); err != nil {
			return err
		}
		for k := j; k < r; k++ {
			blk := first + uint64(k)
			delete(e.quarantine, blk)
			ct := e.store.Materialize(blk)
			copy(ct, span[(k-j)*BlockBytes:(k-j+1)*BlockBytes])
			if err := e.sealBlockTagged(blk, ct, e.tagBuf[k-j]); err != nil {
				return err
			}
			if e.bc != nil {
				e.bc.insert(blk, src[k*BlockBytes:(k+1)*BlockBytes])
			}
		}
		j = r
	}

	if e.wp != nil {
		return e.deferCommit(midx)
	}
	return e.commitMetadata(midx)
}
