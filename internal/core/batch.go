package core

import "fmt"

// Batched multi-block read/write paths. A span of contiguous blocks shares
// counter metadata: one counter block covers ctr.CountersPerMetadataBlock
// (or a group's worth of) data blocks, so a streaming access that verifies
// the tree leaf once per metadata block — instead of once per data block —
// drops most of the per-access tree-walk cost, just as a real controller
// caches the verified counter line. Writes similarly commit each touched
// counter block once, after all its blocks are stored.

func (e *Engine) checkSpan(addr uint64, n int, what string) error {
	if err := e.checkAddr(addr); err != nil {
		return err
	}
	if n == 0 || n%BlockBytes != 0 {
		return fmt.Errorf("core: %s length %d not a positive multiple of %d", what, n, BlockBytes)
	}
	if addr+uint64(n) > e.cfg.RegionBytes {
		return fmt.Errorf("core: %s span [%#x, %#x) outside %d-byte region", what, addr, addr+uint64(n), e.cfg.RegionBytes)
	}
	return nil
}

// ReadBlocks verifies and decrypts len(dst)/BlockBytes contiguous blocks
// starting at addr into dst. Counter metadata is fetched and tree-verified
// once per covering metadata block rather than once per data block; each
// block's ciphertext is then authenticated and decrypted exactly as Read
// does. The first failing block aborts the batch with its error; blocks
// before it have already been decrypted into dst.
func (e *Engine) ReadBlocks(addr uint64, dst []byte) error {
	if err := e.checkSpan(addr, len(dst), "read"); err != nil {
		return err
	}
	first := addr / BlockBytes
	n := uint64(len(dst)) / BlockBytes

	if e.cfg.DisableEncryption {
		for j := uint64(0); j < n; j++ {
			e.stats.Reads++
			out := dst[j*BlockBytes : (j+1)*BlockBytes]
			if ct := e.store.Ciphertext(first + j); ct != nil {
				copy(out, ct)
			} else {
				clear(out)
			}
		}
		return nil
	}

	curMidx := ^uint64(0)
	var img []byte
	for j := uint64(0); j < n; j++ {
		blk := first + j
		e.stats.Reads++
		if e.readCached(blk, dst[j*BlockBytes:(j+1)*BlockBytes]) {
			continue
		}
		if midx := e.scheme.MetadataBlock(blk); midx != curMidx {
			img = nil
			if e.cc != nil {
				if ent := e.cc.lookup(midx); ent != nil {
					img = ent.img[:] // already tree-verified
				}
			}
			if img == nil {
				img = e.images.Load(midx)
				if err := e.tr.VerifyLeafFast(e.metaLeaf(midx), img); err != nil {
					e.stats.IntegrityFailures++
					return &IntegrityError{Addr: blk * BlockBytes, Reason: "counter metadata failed integrity tree check: " + err.Error(), Stage: StageCounter}
				}
				if e.cc != nil {
					e.cc.insert(midx, img)
				}
			}
			curMidx = midx
		}
		counter, err := e.decodeCounter(img, blk)
		if err != nil {
			e.stats.IntegrityFailures++
			return &IntegrityError{Addr: blk * BlockBytes, Reason: "counter metadata undecodable: " + err.Error(), Stage: StageCounter}
		}
		if _, err := e.readVerified(blk, counter, dst[j*BlockBytes:(j+1)*BlockBytes]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlocks encrypts and stores len(src)/BlockBytes contiguous blocks
// starting at addr. Each touched counter block is committed (image +
// integrity-tree path) once, after the last write it covers, instead of
// once per block.
func (e *Engine) WriteBlocks(addr uint64, src []byte) error {
	if err := e.checkSpan(addr, len(src), "write"); err != nil {
		return err
	}
	first := addr / BlockBytes
	n := uint64(len(src)) / BlockBytes

	if e.cfg.DisableEncryption {
		for j := uint64(0); j < n; j++ {
			e.stats.Writes++
			copy(e.store.Materialize(first+j), src[j*BlockBytes:(j+1)*BlockBytes])
		}
		return nil
	}

	curMidx := ^uint64(0)
	for j := uint64(0); j < n; j++ {
		blk := first + j
		e.stats.Writes++
		midx := e.scheme.MetadataBlock(blk)
		if midx != curMidx && curMidx != ^uint64(0) {
			if err := e.commitMetadata(curMidx); err != nil {
				return err
			}
		}
		curMidx = midx

		e.pendingWrite, e.hasPendingWrite = blk, true
		out := e.scheme.Touch(blk)
		e.hasPendingWrite = false
		if err := e.storeBlock(blk, src[j*BlockBytes:(j+1)*BlockBytes], out.Counter); err != nil {
			return err
		}
	}
	return e.commitMetadata(curMidx)
}
